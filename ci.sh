#!/usr/bin/env bash
# ci.sh — the checks every PR must keep green.
#
#   ./ci.sh        vet + build (all packages, including cmd/rrserve)
#                  + full test suite + race-exercised concurrency tests
#   ./ci.sh -short skips the race pass
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build (all packages and binaries) =="
go build ./...

echo "== go test =="
go test ./...

if [[ "${1:-}" != "-short" ]]; then
    # The concurrency-sensitive packages: the root package (batch
    # work-stealing, dynamic snapshots) and the serving subsystem
    # (snapshot swaps, result cache, metrics).
    echo "== go test -race (concurrency surfaces) =="
    go test -race . ./internal/server ./internal/metrics ./internal/core
fi

echo "CI OK"
