#!/usr/bin/env bash
# ci.sh — the checks every PR must keep green.
#
#   ./ci.sh        vet + rrlint + build (all packages, including
#                  cmd/rrserve) + full test suite + fuzz seed corpora
#                  + race-exercised concurrency tests
#                  + trace-overhead benchmark under -race
#                  + rrbench -json smoke run
#   ./ci.sh -short skips the race passes
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== rrlint =="
go run ./cmd/rrlint ./...

echo "== go build (all packages and binaries) =="
go build ./...

echo "== go test =="
go test ./...

# The fuzz harnesses double as invariant suites: every seed (valid and
# corrupted index images, parity networks) runs through the deep
# validators and the BFS oracle. This replays the committed corpora —
# including regression inputs under testdata/fuzz — without fuzzing.
echo "== fuzz (seed corpus) =="
go test -run 'Fuzz' .

if [[ "${1:-}" != "-short" ]]; then
    # The concurrency-sensitive packages: the root package (batch
    # work-stealing, dynamic snapshots), the serving subsystem
    # (snapshot swaps, result cache, metrics) and the adaptive planner
    # (lock-free coefficient EMA, pin state, concurrent Auto routing —
    # including the parity suite in ./internal/core).
    echo "== go test -race (concurrency surfaces) =="
    go test -race . ./internal/server ./internal/metrics ./internal/core ./internal/planner

    # The trace hook sits on every query's hot path; run the overhead
    # benchmark under the race detector so the instrumentation itself is
    # exercised for data races (the timings are not meaningful here).
    echo "== trace-overhead benchmark under -race =="
    go test -race -run '^$' -bench BenchmarkTraceOverhead -benchtime 50x .
fi

echo "== rrbench -json smoke =="
go run ./cmd/rrbench -exp table3 -scale 0.05 -queries 20 \
    -datasets weeplaces-like -json /tmp/rrbench-smoke.json >/dev/null
python3 -c "import json; json.load(open('/tmp/rrbench-smoke.json'))" 2>/dev/null \
    || grep -q '"schema": "rrbench/v2"' /tmp/rrbench-smoke.json
# The adaptive composite must appear both as a method row and in the
# region sweep (the planner's acceptance surface).
grep -q '"method": "Auto"' /tmp/rrbench-smoke.json
grep -q '"region_sweep"' /tmp/rrbench-smoke.json

echo "CI OK"
