#!/usr/bin/env bash
# ci.sh — the checks every PR must keep green.
#
#   ./ci.sh        vet + rrlint + build (all packages, including
#                  cmd/rrserve) + full test suite + fuzz seed corpora
#                  + race-exercised concurrency tests
#                  + trace-overhead benchmark under -race
#                  + coverage floor + rrbench smoke + bench regression
#   ./ci.sh -short skips the race passes, coverage and the bench gate
set -euo pipefail
cd "$(dirname "$0")"

# Minimum total statement coverage (percent). The suite sits at ~82%;
# the floor leaves headroom for legitimate churn while catching a PR
# that lands a subsystem without tests.
COVERAGE_FLOOR=75

echo "== go vet =="
go vet ./...

echo "== rrlint =="
go run ./cmd/rrlint ./...

# The machine-readable surface is an API: one analyzer, -json, zero
# findings, v1 schema. A schema drift or a single-analyzer regression
# fails here even when the full text run above stays green.
echo "== rrlint -only/-json smoke =="
go run ./cmd/rrlint -only lockorder -json ./... > /tmp/rrlint-smoke.json
grep -q '"schema": "rrlint/v1"' /tmp/rrlint-smoke.json
grep -q '"name": "lockorder"' /tmp/rrlint-smoke.json
grep -q '"findings": \[\]' /tmp/rrlint-smoke.json

# govulncheck is not vendored and CI images may lack it; run it when
# present, skip loudly when not. It needs network for the vuln DB, so
# a failure to *reach* the DB is also non-fatal.
echo "== govulncheck (best effort) =="
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./... || echo "govulncheck reported issues (non-fatal: advisory stage)" >&2
else
    echo "govulncheck not installed; skipping"
fi

echo "== go build (all packages and binaries) =="
go build ./...

echo "== go test =="
go test ./...

# The fuzz harnesses double as invariant suites: every seed (valid and
# corrupted index images, parity networks) runs through the deep
# validators and the BFS oracle. This replays the committed corpora —
# including regression inputs under testdata/fuzz — without fuzzing.
echo "== fuzz (seed corpus) =="
go test -run 'Fuzz' .

# The format-compatibility gate: the committed v1 and v2 golden
# fixtures under testdata/format must keep loading and answering the
# pinned queries, save(load(v2)) must stay byte-identical, and the
# mmap path must survive systematic corruption and serve queries in
# full parity with the decoder. Regenerate fixtures only on deliberate
# format changes: go test -run TestFormatCompatGolden -update-format .
echo "== format compat =="
go test -run 'TestFormat|TestOpenMapped|TestSaveLoadV2' -count=1 .

if [[ "${1:-}" != "-short" ]]; then
    # The concurrency-sensitive packages: the root package (batch
    # work-stealing, dynamic snapshots, parallel-vs-sequential build
    # determinism), the worker pool the parallel build pipeline fans
    # out on, the serving subsystem (snapshot swaps, result cache,
    # metrics), the adaptive planner (lock-free coefficient EMA,
    # pin state, concurrent Auto routing — including the parity suite
    # in ./internal/core), the sharded-serving tier (scatter-gather
    # fan-out, hedging, health mark-down, shard partitioning), and the
    # incremental-maintenance engine (randomized update-stream
    # equivalence against a from-scratch oracle), and the analysis
    # engine itself (the whole-module driver type-checks packages that
    # the analyzers then walk; the suite's own fixtures run under it).
    echo "== go test -race (concurrency surfaces) =="
    go test -race . ./internal/pool ./internal/server ./internal/metrics ./internal/core ./internal/planner ./internal/router ./internal/shard ./internal/incr ./internal/lint/... ./internal/flatbuf

    # The trace hook sits on every query's hot path; run the overhead
    # benchmark under the race detector so the instrumentation itself is
    # exercised for data races (the timings are not meaningful here).
    echo "== trace-overhead benchmark under -race =="
    go test -race -run '^$' -bench BenchmarkTraceOverhead -benchtime 50x .

    echo "== coverage (floor ${COVERAGE_FLOOR}%) =="
    go test -coverprofile=/tmp/rr-cover.out ./... > /tmp/rr-cover.txt
    grep -E 'coverage: [0-9.]+% of statements' /tmp/rr-cover.txt || true
    total=$(go tool cover -func=/tmp/rr-cover.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    echo "total coverage: ${total}%"
    awk -v t="$total" -v floor="$COVERAGE_FLOOR" 'BEGIN { exit !(t >= floor) }' \
        || { echo "coverage ${total}% is below the ${COVERAGE_FLOOR}% floor" >&2; exit 1; }
fi

echo "== rrbench -json smoke =="
go run ./cmd/rrbench -exp table3 -scale 0.05 -queries 20 \
    -datasets weeplaces-like -json /tmp/rrbench-smoke.json >/dev/null
# Schema and JSON validity via the rrbench checker itself — a report
# always matches itself, while a truncated or mis-schema'd file fails
# hard. No python dependency: the old `python3 -c … || grep` fallback
# silently passed valid-prefix garbage wherever python3 was missing.
go run ./cmd/rrbench -compare /tmp/rrbench-smoke.json /tmp/rrbench-smoke.json >/dev/null
grep -q '"schema": "rrbench/v5"' /tmp/rrbench-smoke.json
# The cold-start section must carry both load modes; the compare call
# above also enforces the mmap-vs-decode load-time gate over it.
grep -q '"mode": "mmap"' /tmp/rrbench-smoke.json
grep -q '"mode": "decode"' /tmp/rrbench-smoke.json
# The adaptive composite must appear both as a method row and in the
# region sweep (the planner's acceptance surface).
grep -q '"method": "Auto"' /tmp/rrbench-smoke.json
grep -q '"region_sweep"' /tmp/rrbench-smoke.json

if [[ "${1:-}" != "-short" ]]; then
    # Two smoke runs, best-of per (dataset, method) p50, against the
    # committed PR 3 baseline. The 3x factor plus the absolute noise
    # floor means only order-of-magnitude regressions fail the gate —
    # shared CI runners jitter far too much for tighter thresholds.
    echo "== bench regression =="
    go run ./cmd/rrbench -exp table3 -scale 0.05 -queries 20 \
        -datasets weeplaces-like -json /tmp/rrbench-smoke2.json >/dev/null
    go run ./cmd/rrbench -compare BENCH_PR3.json \
        /tmp/rrbench-smoke.json /tmp/rrbench-smoke2.json
fi

if [[ "${1:-}" != "-short" ]]; then
    # Sharded-serving smoke: boot a live 2-shard cluster behind
    # rrrouter and drive it with the open-loop harness for a few
    # seconds. Any request error fails the gate; the p99 SLO is set far
    # above healthy latency (~3ms on an idle runner) so only a wedged
    # cluster trips it.
    echo "== sharded serving smoke =="
    SMOKE_DIR=$(mktemp -d /tmp/rr-shard-smoke.XXXXXX)
    SMOKE_PIDS=""
    cleanup_smoke() {
        # shellcheck disable=SC2086
        [ -n "$SMOKE_PIDS" ] && kill $SMOKE_PIDS 2>/dev/null
        wait 2>/dev/null
        rm -rf "$SMOKE_DIR"
    }
    trap cleanup_smoke EXIT
    go build -o "$SMOKE_DIR" ./cmd/rrgen ./cmd/rrserve ./cmd/rrrouter \
        ./cmd/rrload ./cmd/rrquery ./cmd/rrtop
    "$SMOKE_DIR/rrgen" -preset gowalla-like -scale 0.2 -seed 3 \
        -o "$SMOKE_DIR/smoke.gsn" -shards 2 -index 3dreach 2>/dev/null
    B1=http://127.0.0.1:18741
    B2=http://127.0.0.1:18742
    # The ring decides which backend serves which shard; boot each
    # rrserve with the shard file its placement expects, tagged with its
    # shard id so logs and metrics carry cluster-correlation fields.
    "$SMOKE_DIR/rrrouter" -shardmap "$SMOKE_DIR/smoke.shardmap.json" \
        -backends "$B1,$B2" -print-placement | while read -r sid backend; do
        port=${backend##*:}
        "$SMOKE_DIR/rrserve" -net "$SMOKE_DIR/smoke.shard$sid.gsn" \
            -load-index "$SMOKE_DIR/smoke.shard$sid.gsn.idx" -mmap \
            -addr "127.0.0.1:$port" -shard "$sid" -log off &
        echo $! >> "$SMOKE_DIR/pids"
    done
    SMOKE_PIDS=$(tr '\n' ' ' < "$SMOKE_DIR/pids")
    # The trace ring must hold every forced trace the load run below
    # generates (rate x duration = 600), or the slowest one may be
    # evicted before rrload fetches its breakdown.
    "$SMOKE_DIR/rrrouter" -shardmap "$SMOKE_DIR/smoke.shardmap.json" \
        -backends "$B1,$B2" -addr 127.0.0.1:18740 -log off -wait-backends 30s \
        -trace-ring 1024 &
    SMOKE_PIDS="$SMOKE_PIDS $!"
    "$SMOKE_DIR/rrload" -target http://127.0.0.1:18740 -rate 200 -duration 3s \
        -wait 30s -fail-on-error -slo 500ms -trace -json \
        > "$SMOKE_DIR/load.json" 2> "$SMOKE_DIR/load.err"
    grep -q '"schema": "rrload/v1"' "$SMOKE_DIR/load.json"
    grep -q '"slowest_trace_id"' "$SMOKE_DIR/load.json"
    # The stitched breakdown of the slowest request (stderr under -json).
    grep -q 'slowest trace .* endpoint=query status=200' "$SMOKE_DIR/load.err"
    grep -q 'span name=shard_call' "$SMOKE_DIR/load.err"

    # Distributed-trace smoke: one traced query through the live
    # cluster, stitched by the router and fetched back from
    # /v1/trace/{id}. A whole-space region touches every shard, so the
    # trace must contain the router's own orchestration spans plus one
    # shard_call span per shard.
    echo "== cluster trace smoke =="
    "$SMOKE_DIR/rrquery" -target http://127.0.0.1:18740 -trace \
        -q "0 -180 -90 180 90" > "$SMOKE_DIR/trace.txt"
    grep -q 'span name=placement tier=router' "$SMOKE_DIR/trace.txt"
    grep -q 'span name=fanout tier=router' "$SMOKE_DIR/trace.txt"
    grep -q 'span name=shard_call tier=shard shard=0' "$SMOKE_DIR/trace.txt"
    grep -q 'span name=shard_call tier=shard shard=1' "$SMOKE_DIR/trace.txt"

    # Update-churn smoke: a standalone dynamic rrserve absorbs a mixed
    # closed-loop update stream while queries run. -check-publish
    # deep-validates every published snapshot, so an incremental-
    # maintenance bug surfaces as a 5xx that -fail-on-error turns into
    # a CI failure; rrload independently fails the run when the index
    # generation ever regresses across update responses.
    echo "== update churn =="
    "$SMOKE_DIR/rrserve" -synthetic gowalla-like -scale 0.2 -seed 3 \
        -dynamic -check-publish -addr 127.0.0.1:18750 -log off &
    SMOKE_PIDS="$SMOKE_PIDS $!"
    "$SMOKE_DIR/rrload" -target http://127.0.0.1:18750 -rate 150 \
        -update-rate 50 -duration 3s -wait 30s -fail-on-error \
        -space 0,0,100,100 -json > "$SMOKE_DIR/churn.json"
    grep -q '"gen_monotonic": true' "$SMOKE_DIR/churn.json"
    ! grep -q '"update_errors"' "$SMOKE_DIR/churn.json"

    # Live inspector in its script mode: one ANSI-free snapshot whose
    # shard table shows both shards scraped and healthy.
    echo "== rrtop -once smoke =="
    "$SMOKE_DIR/rrtop" -target http://127.0.0.1:18740 -once > "$SMOKE_DIR/top.txt"
    grep -q 'status=ok shards=2 backends=2' "$SMOKE_DIR/top.txt"
    grep -q "$B1" "$SMOKE_DIR/top.txt"
    grep -q "$B2" "$SMOKE_DIR/top.txt"
    ! grep -q 'DOWN' "$SMOKE_DIR/top.txt"
    cleanup_smoke
    trap - EXIT
fi

echo "CI OK"
