package rangereach_test

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	rangereach "repro"
)

// parallelTestNetwork builds a random geosocial network big enough to
// engage every parallel build path (multi-level DAG, thousands of
// spatial vertices).
func parallelTestNetwork(t *testing.T, seed int64) *rangereach.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	users, venues := 3000, 2000
	n := users + venues
	b := rangereach.NewNetworkBuilder(n).SetName("parallel-determinism")
	for v := users; v < n; v++ {
		b.SetPoint(v, rng.Float64()*1000, rng.Float64()*1000)
	}
	for i := 0; i < 6*n; i++ {
		u := rng.Intn(users)
		var w int
		if rng.Float64() < 0.3 {
			w = users + rng.Intn(venues) // check-in
		} else {
			w = rng.Intn(users) // follow
		}
		if u != w {
			b.AddEdge(u, w)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestParallelBuildByteIdentical is the end-to-end determinism gate for
// the parallel build pipeline: for every persistable method, an index
// built with 8 workers must serialize to exactly the bytes of the
// sequential build, and must pass deep validation. Auto runs with
// calibration disabled — its persisted cost coefficients are
// timing-derived, the one part of an index that is *meant* to differ
// between runs.
func TestParallelBuildByteIdentical(t *testing.T) {
	net := parallelTestNetwork(t, 17)
	methods := append(append([]rangereach.Method(nil), rangereach.Methods...), rangereach.MethodAuto)
	for _, m := range methods {
		opts := []rangereach.Option{rangereach.WithParallelism(1)}
		if m == rangereach.MethodAuto {
			opts = append(opts, rangereach.WithAutoCalibration(-1, 0))
		}
		seq, err := net.Build(m, opts...)
		if err != nil {
			t.Fatalf("%v: sequential build: %v", m, err)
		}
		var want bytes.Buffer
		if err := seq.Save(&want); err != nil {
			t.Fatalf("%v: save sequential: %v", m, err)
		}
		for _, par := range []int{2, 8} {
			popts := append(append([]rangereach.Option(nil), opts[1:]...), rangereach.WithParallelism(par))
			idx, err := net.Build(m, popts...)
			if err != nil {
				t.Fatalf("%v par %d: %v", m, par, err)
			}
			if err := idx.Validate(); err != nil {
				t.Fatalf("%v par %d: validation: %v", m, par, err)
			}
			var got bytes.Buffer
			if err := idx.Save(&got); err != nil {
				t.Fatalf("%v par %d: save: %v", m, par, err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("%v: parallelism %d serializes differently from sequential (%d vs %d bytes)",
					m, par, got.Len(), want.Len())
			}
		}
	}
}

// TestParallelBuildAnswersMatch cross-checks parallel-built indexes of
// the non-persistable methods (no bytes to compare) against their
// sequential builds on a query workload.
func TestParallelBuildAnswersMatch(t *testing.T) {
	net := parallelTestNetwork(t, 23)
	rng := rand.New(rand.NewSource(29))
	for _, m := range rangereach.ExtendedMethods {
		seq, err := net.Build(m, rangereach.WithParallelism(1))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		par, err := net.Build(m, rangereach.WithParallelism(8))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for q := 0; q < 200; q++ {
			v := rng.Intn(net.NumVertices())
			x, y := rng.Float64()*1000, rng.Float64()*1000
			r := rangereach.NewRect(x, y, x+rng.Float64()*200, y+rng.Float64()*200)
			if seq.RangeReach(v, r) != par.RangeReach(v, r) {
				t.Fatalf("%v: sequential and parallel builds disagree on query %d", m, q)
			}
		}
	}
}

// TestDynamicConcurrentRebuild races the dynamic writer — inserting
// enough venues to cross the overlay threshold repeatedly, so the base
// tree rebuilds (in parallel) mid-run — against reader goroutines
// querying published snapshots. Run under -race this certifies the
// snapshot-swap contract survives parallel base rebuilds.
func TestDynamicConcurrentRebuild(t *testing.T) {
	net := figure1(t)
	idx := net.BuildDynamic(rangereach.WithParallelism(4))
	region := rangereach.NewRect(0, 0, 1000, 1000)

	var current atomic.Pointer[rangereach.DynamicSnapshot]
	current.Store(idx.Snapshot())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := current.Load()
				v := rng.Intn(s.NumVertices())
				s.RangeReach(v, region)
			}
		}(g)
	}
	// Writer: 2000 venues with edges from existing users forces several
	// base rebuilds (overlay threshold is an eighth of all entries).
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		v := idx.AddVenue(rng.Float64()*1000, rng.Float64()*1000)
		if err := idx.AddEdge(rng.Intn(4), v); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			current.Store(idx.Snapshot())
		}
	}
	close(stop)
	wg.Wait()

	final := idx.Snapshot()
	if !final.RangeReach(0, region) {
		t.Fatal("user 0 should reach some venue after 2000 check-ins")
	}
}

// TestBuildPhasesReported asserts that Stats().Phases attributes the
// build to named phases for both sequential and parallel builds.
func TestBuildPhasesReported(t *testing.T) {
	net := figure1(t)
	for _, par := range []int{1, 4} {
		idx, err := net.Build(rangereach.ThreeDReach, rangereach.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		phases := idx.Stats().Phases
		names := map[string]bool{}
		for _, ph := range phases {
			names[ph.Name] = true
		}
		if !names["labeling"] || !names["spatial"] {
			t.Errorf("parallelism %d: phases %v missing labeling/spatial", par, phases)
		}
	}
}
