package rangereach

import "repro/internal/dataset"

// SyntheticConfig parameterizes the synthetic geosocial network
// generator, the stand-in for the paper's proprietary check-in datasets
// (see DESIGN.md §3).
type SyntheticConfig struct {
	// Name labels the dataset.
	Name string
	// Users and Venues are the social and spatial vertex counts.
	Users, Venues int
	// AvgFriends and AvgCheckins are mean per-user out-degrees for
	// friendship and check-in edges.
	AvgFriends, AvgCheckins float64
	// GiantSCC forces all users into one strongly connected component
	// (the Gowalla/WeePlaces regime); otherwise only CoreFraction of the
	// users form the largest SCC (the Foursquare/Yelp regime).
	GiantSCC bool
	// CoreFraction is the core size for the fragmented regime (default
	// 0.5).
	CoreFraction float64
	// Clusters is the number of spatial clusters venues are drawn from.
	Clusters int
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateSynthetic builds a synthetic geosocial network.
func GenerateSynthetic(cfg SyntheticConfig) *Network {
	regime := dataset.Fragmented
	if cfg.GiantSCC {
		regime = dataset.GiantSCC
	}
	return wrap(dataset.Generate(dataset.GenConfig{
		Name:         cfg.Name,
		Users:        cfg.Users,
		Venues:       cfg.Venues,
		AvgFriends:   cfg.AvgFriends,
		AvgCheckins:  cfg.AvgCheckins,
		Regime:       regime,
		CoreFraction: cfg.CoreFraction,
		Clusters:     cfg.Clusters,
		Seed:         cfg.Seed,
	}))
}

// The four preset generators mirror the structure of the paper's
// evaluation datasets (Table 3) at roughly 1% scale when scale == 1.

// FoursquareLike generates a Foursquare-structured network: user-heavy
// with 87% of the users in the largest SCC.
func FoursquareLike(scale float64, seed int64) *Network {
	return wrap(dataset.FoursquareLike(scale, seed))
}

// GowallaLike generates a Gowalla-structured network: venue-heavy with
// all users in one giant SCC.
func GowallaLike(scale float64, seed int64) *Network {
	return wrap(dataset.GowallaLike(scale, seed))
}

// WeeplacesLike generates a WeePlaces-structured network: an extreme
// venue-to-user ratio with a single giant user SCC.
func WeeplacesLike(scale float64, seed int64) *Network {
	return wrap(dataset.WeeplacesLike(scale, seed))
}

// YelpLike generates a Yelp-structured network: very user-heavy with
// only 45% of users in the largest SCC.
func YelpLike(scale float64, seed int64) *Network {
	return wrap(dataset.YelpLike(scale, seed))
}
