package rangereach_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	rangereach "repro"
)

func batchNetwork(t *testing.T) *rangereach.Network {
	t.Helper()
	return rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name: "batch", Users: 500, Venues: 300, AvgFriends: 4, AvgCheckins: 2,
		CoreFraction: 0.5, Seed: 77,
	})
}

func randomQueries(net *rangereach.Network, n int, seed int64) []rangereach.Query {
	rng := rand.New(rand.NewSource(seed))
	space := net.Space()
	qs := make([]rangereach.Query, n)
	for i := range qs {
		w := rng.Float64() * (space.MaxX - space.MinX) / 3
		h := rng.Float64() * (space.MaxY - space.MinY) / 3
		x := space.MinX + rng.Float64()*(space.MaxX-space.MinX-w)
		y := space.MinY + rng.Float64()*(space.MaxY-space.MinY-h)
		qs[i] = rangereach.Query{
			Vertex: rng.Intn(net.NumVertices()),
			Region: rangereach.NewRect(x, y, x+w, y+h),
		}
	}
	return qs
}

// TestBatchMatchesSequential exercises every method concurrently; run
// with -race to validate thread safety of the engines.
func TestBatchMatchesSequential(t *testing.T) {
	net := batchNetwork(t)
	qs := randomQueries(net, 300, 5)
	methods := append(append([]rangereach.Method(nil), rangereach.Methods...),
		rangereach.ExtendedMethods...)
	for _, m := range methods {
		idx := net.MustBuild(m)
		want := idx.RangeReachBatch(qs, 1)
		got := idx.RangeReachBatch(qs, 8)
		for i := range qs {
			if got[i] != want[i] {
				t.Fatalf("%v: parallel result %d differs", m, i)
			}
		}
	}
}

func TestBatchEdgeCases(t *testing.T) {
	net := batchNetwork(t)
	idx := net.MustBuild(rangereach.ThreeDReach)
	if out := idx.RangeReachBatch(nil, 4); len(out) != 0 {
		t.Error("empty batch returned results")
	}
	one := randomQueries(net, 1, 9)
	if out := idx.RangeReachBatch(one, 100); len(out) != 1 {
		t.Error("single-query batch wrong")
	}
	// Default parallelism path.
	many := randomQueries(net, 50, 11)
	if out := idx.RangeReachBatch(many, 0); len(out) != 50 {
		t.Error("default parallelism wrong")
	}
}

// TestBatchContextCancel pins the cancellation contract: a dead
// context aborts the batch with its error, a live one yields exactly
// the RangeReachBatch answers.
func TestBatchContextCancel(t *testing.T) {
	net := batchNetwork(t)
	idx := net.MustBuild(rangereach.ThreeDReach)
	qs := randomQueries(net, 200, 13)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		if out, err := idx.RangeReachBatchContext(ctx, qs, par); err != context.Canceled || out != nil {
			t.Fatalf("parallelism %d: canceled batch returned (%v, %v), want (nil, context.Canceled)", par, out, err)
		}
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := idx.RangeReachBatchContext(expired, qs, 4); err != context.DeadlineExceeded {
		t.Fatalf("expired batch returned %v, want context.DeadlineExceeded", err)
	}

	want := idx.RangeReachBatch(qs, 1)
	got, err := idx.RangeReachBatchContext(context.Background(), qs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("live-context result %d differs", i)
		}
	}
}
