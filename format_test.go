package rangereach_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rangereach "repro"
)

// -update-format regenerates the golden fixtures under testdata/format/
// from the current code. Run it only when the format deliberately
// changes, and commit the new files — the whole point of the fixtures
// is that unintended byte changes fail TestFormatCompatGolden.
var updateFormat = flag.Bool("update-format", false, "regenerate testdata/format golden fixtures")

// fixtureMethods are the persistable methods the golden fixtures pin,
// covering every section family: interval labels + 3D segments
// (3dreach), labels + BFL bitsets + 2D R-tree (spareach-bfl), the
// SPA-Graph grid columns (georeach) and the composite container (auto).
var fixtureMethods = []struct {
	slug string
	m    rangereach.Method
}{
	{"3dreach", rangereach.ThreeDReach},
	{"spareach-bfl", rangereach.SpaReachBFL},
	{"georeach", rangereach.GeoReach},
	{"auto", rangereach.MethodAuto},
}

// fixtureOptions make the fixture builds deterministic: Auto's
// calibration microbenchmark is timing-dependent, so it is skipped and
// the coefficients stay at their documented defaults.
func fixtureOptions() []rangereach.Option {
	return []rangereach.Option{rangereach.WithAutoCalibration(-1, 0)}
}

func fixturePath(slug, version string) string {
	return filepath.Join("testdata", "format", slug+"-"+version+".idx")
}

// fixtureQueries is the pinned query set every loaded fixture must
// answer exactly; derived from the paper's running example (figure 1).
// The region covers venues 4 (70,80) and 7 (80,60): vertex 0 reaches
// both, vertex 2's downstream venues (5, 8, 11) all lie outside.
func fixtureQueries(t *testing.T, idx *rangereach.Index, name string) {
	t.Helper()
	region := rangereach.NewRect(60, 55, 90, 95)
	cases := []struct {
		vertex int
		region rangereach.Rect
		want   bool
	}{
		{0, region, true},
		{1, region, true},
		{2, region, false},
		{9, region, true},
		{5, region, false},
		{2, rangereach.NewRect(0, 0, 100, 100), true},
		{2, rangereach.NewRect(15, 85, 25, 95), true},
		{3, rangereach.NewRect(0, 0, 100, 100), false},
	}
	for _, c := range cases {
		if got := idx.RangeReach(c.vertex, c.region); got != c.want {
			t.Errorf("%s: RangeReach(%d, %v) = %v, want %v", name, c.vertex, c.region, got, c.want)
		}
	}
}

// TestFormatCompatGolden loads the committed v1 and v2 fixture files
// and checks they still validate and answer the pinned queries. This is
// the compatibility contract: a change that breaks decoding of
// yesterday's files fails here, in CI, before it ships. With
// -update-format it instead rewrites the fixtures from the current
// builder.
func TestFormatCompatGolden(t *testing.T) {
	net := fuzzNet()
	if *updateFormat {
		if err := os.MkdirAll(filepath.Join("testdata", "format"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, fm := range fixtureMethods {
			idx, err := net.Build(fm.m, fixtureOptions()...)
			if err != nil {
				t.Fatalf("%s: %v", fm.slug, err)
			}
			var v1, v2 bytes.Buffer
			if err := idx.SaveV1(&v1); err != nil {
				t.Fatalf("%s: %v", fm.slug, err)
			}
			if err := idx.Save(&v2); err != nil {
				t.Fatalf("%s: %v", fm.slug, err)
			}
			if err := os.WriteFile(fixturePath(fm.slug, "v1"), v1.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(fixturePath(fm.slug, "v2"), v2.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: wrote v1 (%d bytes) and v2 (%d bytes)", fm.slug, v1.Len(), v2.Len())
		}
	}
	for _, fm := range fixtureMethods {
		for _, version := range []string{"v1", "v2"} {
			name := fm.slug + "-" + version
			t.Run(name, func(t *testing.T) {
				path := fixturePath(fm.slug, version)
				idx, err := net.LoadIndexFile(path)
				if err != nil {
					t.Fatalf("loading golden fixture %s: %v", path, err)
				}
				if idx.Method() != fm.m {
					t.Fatalf("fixture decoded as %v, want %v", idx.Method(), fm.m)
				}
				fixtureQueries(t, idx, name+"/decode")

				if version == "v2" {
					mapped, err := net.OpenMapped(path)
					if err != nil {
						t.Fatalf("mapping golden fixture %s: %v", path, err)
					}
					defer mapped.Close()
					if err := mapped.Validate(); err != nil {
						t.Fatalf("mapped fixture fails validation: %v", err)
					}
					fixtureQueries(t, mapped, name+"/mmap")
				}
			})
		}
	}
}

// TestSaveLoadV2ByteIdentical pins the no-stale-re-encode property:
// saving an index loaded (or mapped) from a v2 file reproduces the
// file byte for byte. Save re-emits the index's own columns — which
// for a mapped index are the mapped sections themselves — so a
// re-save can never silently re-encode from stale or rebuilt state.
func TestSaveLoadV2ByteIdentical(t *testing.T) {
	net := fuzzNet()
	dir := t.TempDir()
	for _, fm := range fixtureMethods {
		idx, err := net.Build(fm.m, fixtureOptions()...)
		if err != nil {
			t.Fatalf("%s: %v", fm.slug, err)
		}
		path := filepath.Join(dir, fm.slug+".idx")
		if err := idx.SaveFile(path); err != nil {
			t.Fatalf("%s: %v", fm.slug, err)
		}
		original, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		loaded, err := net.LoadIndexFile(path)
		if err != nil {
			t.Fatalf("%s: %v", fm.slug, err)
		}
		var resaved bytes.Buffer
		if err := loaded.Save(&resaved); err != nil {
			t.Fatalf("%s: %v", fm.slug, err)
		}
		if !bytes.Equal(resaved.Bytes(), original) {
			t.Errorf("%s: save(load(file)) differs from file (%d vs %d bytes)",
				fm.slug, resaved.Len(), len(original))
		}

		mapped, err := net.OpenMapped(path)
		if err != nil {
			t.Fatalf("%s: %v", fm.slug, err)
		}
		resaved.Reset()
		err = mapped.Save(&resaved)
		if cerr := mapped.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err != nil {
			t.Fatalf("%s: %v", fm.slug, err)
		}
		if !bytes.Equal(resaved.Bytes(), original) {
			t.Errorf("%s: save(openMapped(file)) differs from file (%d vs %d bytes)",
				fm.slug, resaved.Len(), len(original))
		}
	}
}

// TestOpenMappedParity checks full query parity between a built index,
// its streaming-decoded load and its zero-copy mapped open, across
// every persistable method, both SCC policies and the composite.
func TestOpenMappedParity(t *testing.T) {
	net := fuzzNet()
	dir := t.TempDir()
	configs := []struct {
		name string
		m    rangereach.Method
		opts []rangereach.Option
	}{
		{"3dreach", rangereach.ThreeDReach, nil},
		{"3dreach-mbr", rangereach.ThreeDReach, []rangereach.Option{rangereach.WithMBRPolicy()}},
		{"3dreach-rev", rangereach.ThreeDReachRev, nil},
		{"socreach", rangereach.SocReach, nil},
		{"spareach-bfl", rangereach.SpaReachBFL, nil},
		{"spareach-bfl-mbr", rangereach.SpaReachBFL, []rangereach.Option{rangereach.WithMBRPolicy()}},
		{"spareach-int", rangereach.SpaReachINT, nil},
		{"georeach", rangereach.GeoReach, nil},
		{"auto", rangereach.MethodAuto, fixtureOptions()},
	}
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) {
			built, err := net.Build(c.m, c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, c.name+".idx")
			if err := built.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			decoded, err := net.LoadIndexFile(path, c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := net.OpenMapped(path, c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer mapped.Close()
			if err := mapped.Validate(); err != nil {
				t.Fatalf("mapped index fails deep validation: %v", err)
			}
			// Every vertex × a grid of regions, including degenerate and
			// out-of-space rectangles.
			regions := []rangereach.Rect{
				rangereach.NewRect(60, 55, 90, 95),
				rangereach.NewRect(0, 0, 100, 100),
				rangereach.NewRect(15, 85, 25, 95),
				rangereach.NewRect(70, 80, 70, 80),
				rangereach.NewRect(200, 200, 300, 300),
				rangereach.NewRect(0, 0, 5, 5),
			}
			for v := 0; v < net.NumVertices(); v++ {
				for ri, r := range regions {
					want := built.RangeReach(v, r)
					if got := decoded.RangeReach(v, r); got != want {
						t.Errorf("decode: RangeReach(%d, region %d) = %v, want %v", v, ri, got, want)
					}
					if got := mapped.RangeReach(v, r); got != want {
						t.Errorf("mmap: RangeReach(%d, region %d) = %v, want %v", v, ri, got, want)
					}
				}
			}
		})
	}
}

// TestOpenMappedV1Rejected pins the targeted error for mapping a v1
// file: the message must name the actual problem (format v1) and the
// fix (LoadIndex / re-save), not a generic bad-magic complaint.
func TestOpenMappedV1Rejected(t *testing.T) {
	net := fuzzNet()
	idx, err := net.Build(rangereach.ThreeDReach)
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := idx.SaveV1(&v1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v1.idx")
	if err := os.WriteFile(path, v1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := net.LoadIndexFile(path); err != nil {
		t.Fatalf("v1 file no longer stream-loads: %v", err)
	}
	_, err = net.OpenMapped(path)
	if err == nil {
		t.Fatal("OpenMapped accepted a v1 file")
	}
	if !strings.Contains(err.Error(), "v1") {
		t.Errorf("v1 mapping error %q does not mention the format version", err)
	}
}

// TestFormatV2CorruptionMapped drives the mmap load path through the
// same systematic corruption the streaming path faces in
// TestLoadCorrupted: truncations at every boundary and a byte flip at
// every offset, each written to a real file and opened via OpenMapped.
// Every case must fail with a wrapped error or produce an index whose
// pinned queries can run — never a panic, even though the mapped path
// skips deep validation.
func TestFormatV2CorruptionMapped(t *testing.T) {
	net := fuzzNet()
	region := rangereach.NewRect(60, 55, 90, 95)
	dir := t.TempDir()
	for _, fm := range fixtureMethods {
		idx, err := net.Build(fm.m, fixtureOptions()...)
		if err != nil {
			t.Fatalf("%s: %v", fm.slug, err)
		}
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			t.Fatalf("%s: %v", fm.slug, err)
		}
		valid := buf.Bytes()
		path := filepath.Join(dir, "mutant.idx")

		open := func(name string, data []byte) {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s/%s: OpenMapped panicked: %v", fm.slug, name, r)
				}
			}()
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			mapped, err := net.OpenMapped(path)
			if err != nil {
				if !strings.Contains(err.Error(), ":") {
					t.Errorf("%s/%s: unwrapped error %q", fm.slug, name, err)
				}
				return
			}
			// Accepted corruption may answer wrongly but must not crash.
			mapped.RangeReach(0, region)
			mapped.RangeReach(2, region)
			_ = mapped.Close()
		}

		for cut := 0; cut < len(valid); cut += 1 {
			open(fmt.Sprintf("truncate@%d", cut), valid[:cut])
		}
		mutant := make([]byte, len(valid))
		for off := 0; off < len(valid); off++ {
			copy(mutant, valid)
			mutant[off] ^= 0x41
			open(fmt.Sprintf("flip@%d", off), mutant)
		}
		open("doubled", append(append([]byte(nil), valid...), valid...))
	}
}

// TestOpenMappedAllocs pins the O(1)-allocations property of the
// mapped load: opening a 4× larger index must not allocate
// meaningfully more than opening the small one, because every column
// overlays the mapped pages instead of being decoded into fresh
// slices. GeoReach is excluded by design — its grid cell-sets rehydrate
// into hash maps (DESIGN.md §17) — so the methods here are the ones the
// guarantee covers.
func TestOpenMappedAllocs(t *testing.T) {
	dir := t.TempDir()
	build := func(n int) (*rangereach.Network, string) {
		b := rangereach.NewNetworkBuilder(n)
		for v := 0; v + 1 < n; v++ {
			b.AddEdge(v, v+1)
			if v%7 == 0 {
				b.AddEdge(v, (v*13+5)%n)
			}
			if v%3 == 0 {
				b.SetPoint(v, float64(v%100), float64((v*37)%100))
			}
		}
		net, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		idx, err := net.Build(rangereach.ThreeDReach)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("alloc-%d.idx", n))
		if err := idx.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		return net, path
	}
	measure := func(net *rangereach.Network, path string) float64 {
		return testing.AllocsPerRun(10, func() {
			mapped, err := net.OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			_ = mapped.Close()
		})
	}
	netSmall, pathSmall := build(400)
	netBig, pathBig := build(1600)
	small := measure(netSmall, pathSmall)
	big := measure(netBig, pathBig)
	// The counts need not be exactly equal (map headers, error paths),
	// but they must not scale with the index: allow a fixed slack.
	if big > small+16 {
		t.Errorf("mapped open allocations scale with index size: %v at n=400, %v at n=1600", small, big)
	}
	t.Logf("mapped open: %.0f allocs at n=400, %.0f at n=1600", small, big)
}
