package rangereach

import (
	"fmt"

	"repro/internal/core"
)

// Validate deep-checks the index's structural invariants: the interval
// labeling's post-order bijection onto 1..n, well-formed (lo ≤ hi,
// sorted, disjoint) and properly nested label sets, acyclicity of the
// SCC condensation, and the spatial index's R-tree MBR containment or
// k-d ordering. It returns nil for a well-formed index and a
// descriptive error naming the first violated invariant otherwise.
//
// Validation runs in time linear in the index size. LoadIndex runs it
// automatically; tests and rrserve's -check flag call it directly.
func (idx *Index) Validate() error {
	if err := core.ValidateEngine(idx.engine); err != nil {
		return fmt.Errorf("rangereach: %w", err)
	}
	return nil
}

// Validate deep-checks the dynamic index's structural invariants: the
// live SCC condensation (component partition, sparse post uniqueness,
// label nesting, DAG-refcount agreement with the accumulated edges,
// acyclicity), the base R-tree, and the base/overlay/tombstone
// bookkeeping — every venue exactly once at z = post of its component.
// Call it from the writer, like any other access.
func (idx *DynamicIndex) Validate() error {
	if err := idx.engine.Validate(); err != nil {
		return fmt.Errorf("rangereach: %w", err)
	}
	return nil
}

// Validate deep-checks the snapshot's captured state: the captured
// labels and posts, the shared base tree and the overlay/tombstone
// bookkeeping. Snapshots are immutable, so it may run concurrently
// with anything — rrserve's -check-publish runs it on every publish.
func (s *DynamicSnapshot) Validate() error {
	if err := s.snap.Validate(); err != nil {
		return fmt.Errorf("rangereach: %w", err)
	}
	return nil
}
