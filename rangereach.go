// Package rangereach is a library for fast geosocial reachability
// queries, reproducing "Fast Geosocial Reachability Queries" (Bouros,
// Chondrogiannis, Kowalski; EDBT 2025).
//
// A geosocial network is a directed graph whose vertices may carry a
// point in the plane (venues); the RangeReach(G, v, R) query asks
// whether vertex v can reach — through any directed path — some spatial
// vertex whose point lies inside the rectangular region R.
//
// The library implements the paper's two novel methods, 3DReach and
// SocReach, its strongest baseline configuration SpaReach-BFL, the
// interval-labeled spatial-first variant SpaReach-INT, the line-based
// 3DReach-Rev, and the prior state of the art GeoReach — all behind one
// Index interface:
//
//	net, _ := rangereach.LoadNetwork("checkins.gsn")
//	idx, _ := net.Build(rangereach.ThreeDReach)
//	ok := idx.RangeReach(42, rangereach.NewRect(13.3, 52.4, 13.5, 52.6))
//
// Arbitrary (cyclic) networks are handled transparently: strongly
// connected components are condensed and their spatial extent modeled
// under the Replicate policy by default (paper §5).
package rangereach

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
)

// Rect is an axis-aligned query region, boundary inclusive.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect builds a region from two corner points in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	r := geom.NewRect(x1, y1, x2, y2)
	return Rect{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y}
}

func (r Rect) internal() geom.Rect {
	return geom.Rect{Min: geom.Pt(r.MinX, r.MinY), Max: geom.Pt(r.MaxX, r.MaxY)}
}

// Method selects a RangeReach evaluation method.
type Method int

// The available methods, named as in the paper.
const (
	// ThreeDReach is the paper's primary contribution: spatial vertices
	// become (x, y, post) points in a 3D R-tree and a query becomes one
	// 3D range query per reachability label. The fastest method overall.
	ThreeDReach Method = iota
	// ThreeDReachRev is the line-based variant: reversed labels turn
	// spatial vertices into vertical segments and a query into a single
	// plane-shaped 3D range query.
	ThreeDReachRev
	// SocReach is the social-first method: enumerate descendants from
	// the interval labels, then test their points.
	SocReach
	// SpaReachBFL is the strongest spatial-first baseline: 2D R-tree
	// range query plus BFL reachability probes.
	SpaReachBFL
	// SpaReachINT is the spatial-first baseline with interval-label
	// probes.
	SpaReachINT
	// GeoReach is the prior state of the art (Sarwat and Sun's
	// SPA-Graph).
	GeoReach
	// Naive answers queries by plain BFS with no index; useful as a
	// correctness oracle and for tiny networks.
	Naive
	// SpaReachPLL is the spatial-first baseline with 2-hop (pruned
	// landmark labeling) reachability probes — the first SpaReach
	// variant of Sarwat and Sun's original paper.
	SpaReachPLL
	// SpaReachFeline is the spatial-first baseline with Feline probes —
	// the second SpaReach variant of Sarwat and Sun's original paper.
	SpaReachFeline
	// SpaReachGRAIL is the spatial-first baseline with GRAIL randomized
	// interval-label probes.
	SpaReachGRAIL
	// MethodAuto is the adaptive composite: it builds a small set of
	// complementary engines (SocReach + 3DReach-Rev + SpaReach-INT by
	// default, see WithAutoMembers) over shared labeling state and
	// routes each query to the engine a cost model predicts to be
	// cheapest, refining the model online from observed latencies.
	MethodAuto
)

// Methods lists the indexed methods of the paper's evaluation
// (excluding Naive and the extended SpaReach variants).
var Methods = []Method{ThreeDReach, ThreeDReachRev, SocReach, SpaReachBFL, SpaReachINT, GeoReach}

// ExtendedMethods lists the additional SpaReach reachability backends:
// PLL and Feline (the variants of the original GeoReach paper) and
// GRAIL.
var ExtendedMethods = []Method{SpaReachPLL, SpaReachFeline, SpaReachGRAIL}

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case ThreeDReach:
		return "3DReach"
	case ThreeDReachRev:
		return "3DReach-Rev"
	case SocReach:
		return "SocReach"
	case SpaReachBFL:
		return "SpaReach-BFL"
	case SpaReachINT:
		return "SpaReach-INT"
	case GeoReach:
		return "GeoReach"
	case Naive:
		return "NaiveBFS"
	case SpaReachPLL:
		return "SpaReach-PLL"
	case SpaReachFeline:
		return "SpaReach-Feline"
	case SpaReachGRAIL:
		return "SpaReach-GRAIL"
	case MethodAuto:
		return "Auto"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

func (m Method) internal() (core.Method, bool) {
	switch m {
	case ThreeDReach:
		return core.MethodThreeDReach, true
	case ThreeDReachRev:
		return core.MethodThreeDReachRev, true
	case SocReach:
		return core.MethodSocReach, true
	case SpaReachBFL:
		return core.MethodSpaReachBFL, true
	case SpaReachINT:
		return core.MethodSpaReachINT, true
	case GeoReach:
		return core.MethodGeoReach, true
	case SpaReachPLL:
		return core.MethodSpaReachPLL, true
	case SpaReachFeline:
		return core.MethodSpaReachFeline, true
	case SpaReachGRAIL:
		return core.MethodSpaReachGRAIL, true
	case MethodAuto:
		return core.MethodAuto, true
	default:
		return 0, false
	}
}

// Network is an immutable geosocial network ready for index construction.
type Network struct {
	net  *dataset.Network
	prep *dataset.Prepared
}

// NetworkBuilder assembles a geosocial network vertex by vertex.
type NetworkBuilder struct {
	gb      *graph.Builder
	spatial []bool
	points  []geom.Point
	extents []geom.Rect
	name    string
	err     error
}

// NewNetworkBuilder starts a network over n vertices, identified by the
// dense ids 0..n-1.
func NewNetworkBuilder(n int) *NetworkBuilder {
	if n < 0 {
		return &NetworkBuilder{err: fmt.Errorf("rangereach: negative vertex count %d", n)}
	}
	return &NetworkBuilder{
		gb:      graph.NewBuilder(n),
		spatial: make([]bool, n),
		points:  make([]geom.Point, n),
	}
}

// SetName labels the network in reports.
func (b *NetworkBuilder) SetName(name string) *NetworkBuilder {
	b.name = name
	return b
}

// AddEdge records the directed edge (from, to) — a follows/checks-in
// relationship. Out-of-range endpoints surface as an error from Build.
func (b *NetworkBuilder) AddEdge(from, to int) *NetworkBuilder {
	if b.err != nil {
		return b
	}
	if from < 0 || from >= len(b.spatial) || to < 0 || to >= len(b.spatial) {
		b.err = fmt.Errorf("rangereach: edge (%d,%d) out of range [0,%d)", from, to, len(b.spatial))
		return b
	}
	b.gb.AddEdge(from, to)
	return b
}

// SetPoint marks v as a spatial vertex located at (x, y).
func (b *NetworkBuilder) SetPoint(v int, x, y float64) *NetworkBuilder {
	if b.err != nil {
		return b
	}
	if v < 0 || v >= len(b.spatial) {
		b.err = fmt.Errorf("rangereach: vertex %d out of range [0,%d)", v, len(b.spatial))
		return b
	}
	b.spatial[v] = true
	b.points[v] = geom.Pt(x, y)
	return b
}

// SetRect marks v as a spatial vertex with a rectangular extent — the
// paper's footnote 1 generalization to arbitrary geometries. An extended
// vertex witnesses a query when its rectangle intersects the region.
func (b *NetworkBuilder) SetRect(v int, r Rect) *NetworkBuilder {
	if b.err != nil {
		return b
	}
	if v < 0 || v >= len(b.spatial) {
		b.err = fmt.Errorf("rangereach: vertex %d out of range [0,%d)", v, len(b.spatial))
		return b
	}
	rect := r.internal()
	if !rect.Valid() {
		b.err = fmt.Errorf("rangereach: vertex %d has invalid extent %+v", v, r)
		return b
	}
	if b.extents == nil {
		b.extents = make([]geom.Rect, len(b.spatial))
	}
	b.spatial[v] = true
	b.points[v] = rect.Center()
	b.extents[v] = rect
	return b
}

// Build finalizes the network, condensing strongly connected components.
func (b *NetworkBuilder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	net := &dataset.Network{
		Name:    b.name,
		Graph:   b.gb.Build(),
		Spatial: b.spatial,
		Points:  b.points,
		Extents: b.extents,
	}
	return wrap(net), nil
}

func wrap(net *dataset.Network) *Network {
	return &Network{net: net, prep: dataset.Prepare(net)}
}

// LoadNetwork reads a network from a file in the geosocial text format
// (see the dataset documentation and the rrgen tool).
func LoadNetwork(path string) (*Network, error) {
	net, err := dataset.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return wrap(net), nil
}

// ReadNetwork reads a network in the geosocial text format from r.
func ReadNetwork(r io.Reader) (*Network, error) {
	net, err := dataset.Load(r)
	if err != nil {
		return nil, err
	}
	return wrap(net), nil
}

// Save writes the network in the geosocial text format.
func (n *Network) Save(w io.Writer) error { return dataset.Save(w, n.net) }

// NumVertices returns |V|.
func (n *Network) NumVertices() int { return n.net.NumVertices() }

// NumEdges returns |E| (deduplicated directed edges).
func (n *Network) NumEdges() int { return n.net.NumEdges() }

// NumSpatial returns |P|, the number of spatial vertices.
func (n *Network) NumSpatial() int { return n.net.NumSpatial() }

// Name returns the network's label.
func (n *Network) Name() string { return n.net.Name }

// IsSpatial reports whether v carries a point.
func (n *Network) IsSpatial(v int) bool { return n.net.Spatial[v] }

// PointOf returns the coordinates of the spatial vertex v; ok is false
// for social vertices.
func (n *Network) PointOf(v int) (x, y float64, ok bool) {
	if !n.net.Spatial[v] {
		return 0, 0, false
	}
	p := n.net.Points[v]
	return p.X, p.Y, true
}

// OutDegree returns the number of outgoing edges of v.
func (n *Network) OutDegree(v int) int { return n.net.Graph.OutDegree(v) }

// Space returns the bounding rectangle of all spatial vertices.
func (n *Network) Space() Rect {
	s := n.net.Space()
	return Rect{s.Min.X, s.Min.Y, s.Max.X, s.Max.Y}
}

// Stats summarizes the network the way the paper's Table 3 does.
type Stats struct {
	Name       string
	Users      int // social vertices
	Venues     int // spatial vertices
	Checkins   int
	Vertices   int
	Edges      int
	SCCs       int
	LargestSCC int
}

// Stats computes the Table 3 row for the network.
func (n *Network) Stats() Stats {
	s := n.net.ComputeStats()
	return Stats{
		Name:       s.Name,
		Users:      s.Users,
		Venues:     s.Venues,
		Checkins:   s.Checkins,
		Vertices:   s.Vertices,
		Edges:      s.Edges,
		SCCs:       s.SCCs,
		LargestSCC: s.LargestSCC,
	}
}
