package rangereach

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Option customizes index construction; see WithMBRPolicy and friends.
type Option func(*buildConfig)

type buildConfig struct {
	opts core.BuildOptions
	// dynFullRebuild switches BuildDynamic to the old full-rebuild
	// update path (see WithFullRebuildUpdates).
	dynFullRebuild bool
}

// WithMBRPolicy switches the SCC spatial policy from the default
// Replicate to MBR: every strongly connected component is represented by
// the bounding rectangle of its member points instead of the points
// themselves (paper §5). Only SpaReach and 3DReach variants support it;
// Build returns an error otherwise.
func WithMBRPolicy() Option {
	return func(c *buildConfig) { c.opts.Policy = dataset.MBR }
}

// WithParallelism bounds the number of workers the build pipeline may
// use: independent phases (labeling vs. spatial bulk load, Auto
// members) run concurrently and the index structures parallelize
// internally. The default is runtime.NumCPU(); 1 forces the exact
// sequential code path. Parallel construction is deterministic — the
// built index, and its SaveFile bytes, are identical at any setting
// (see DESIGN.md §12).
func WithParallelism(n int) Option {
	return func(c *buildConfig) {
		if n < 1 {
			n = 1
		}
		c.opts.Parallelism = n
	}
}

// WithFullRebuildUpdates makes a DynamicIndex absorb updates by
// rebuilding everything from the accumulated graph before the next
// query or snapshot, instead of patching the condensation, labels and
// spatial state incrementally. Queries answer identically either way;
// the rebuild path exists for A/B comparison (rrbench's update-churn
// experiment measures both) and as a maximally-simple reference.
// Static Build ignores it.
func WithFullRebuildUpdates() Option {
	return func(c *buildConfig) { c.dynFullRebuild = true }
}

// WithRTreeFanout sets the fan-out of the spatial R-trees (default 16).
func WithRTreeFanout(fanout int) Option {
	return func(c *buildConfig) {
		c.opts.SpaReach.Fanout = fanout
		c.opts.ThreeD.Fanout = fanout
	}
}

// WithBFLBits sets the Bloom-filter width of SpaReach-BFL in bits
// (default 256; rounded up to a multiple of 64).
func WithBFLBits(bits int) Option {
	return func(c *buildConfig) { c.opts.SpaReach.BFLBits = bits }
}

// SpatialBackend selects the 3D point index behind ThreeDReach under the
// default Replicate policy.
type SpatialBackend = core.SpatialBackend

// The available 3DReach spatial backends.
const (
	// BackendRTree is the paper's choice (default).
	BackendRTree = core.BackendRTree
	// BackendKDTree uses a balanced k-d tree.
	BackendKDTree = core.BackendKDTree
	// BackendGrid uses a uniform 3D grid.
	BackendGrid = core.BackendGrid
)

// WithSpatialBackend swaps the 3D point index of ThreeDReach; the paper
// (§7.2) notes the R-tree is replaceable by any 3D-capable structure.
func WithSpatialBackend(b SpatialBackend) Option {
	return func(c *buildConfig) { c.opts.ThreeD.Backend = b }
}

// WithAutoMembers selects the member engines of a MethodAuto composite
// (default: SocReach, ThreeDReachRev, SpaReachINT). Naive and
// MethodAuto itself are not valid members; at most eight members are
// supported. Duplicates and unknown methods surface as a Build error.
func WithAutoMembers(members ...Method) Option {
	return func(c *buildConfig) {
		c.opts.Auto.Members = nil
		for _, m := range members {
			if cm, ok := m.internal(); ok {
				c.opts.Auto.Members = append(c.opts.Auto.Members, cm)
			} else {
				// Invalid members become MethodAuto, which BuildAuto
				// rejects with a clear error instead of silently dropping.
				c.opts.Auto.Members = append(c.opts.Auto.Members, core.MethodAuto)
			}
		}
	}
}

// WithAutoExplore sets MethodAuto's exploration cadence: every Nth
// query is routed round-robin instead of by predicted cost, so members
// the model currently disfavors keep their coefficients fresh. n = 0
// keeps the default (every 64th query); n < 0 disables exploration for
// fully deterministic routing.
func WithAutoExplore(n int) Option {
	return func(c *buildConfig) { c.opts.Auto.Explore = n }
}

// WithAutoCalibration sets the number of microbenchmark queries run at
// build time to seed MethodAuto's per-member cost coefficients
// (default 32). n < 0 skips calibration; seed makes the calibration
// workload deterministic.
func WithAutoCalibration(n int, seed int64) Option {
	return func(c *buildConfig) {
		c.opts.Auto.Calibrate = n
		c.opts.Auto.Seed = seed
	}
}

// WithGeoReachParams tunes the SPA-Graph construction: maxRMBR is the
// maximum RMBR extent as a fraction of the space, maxReachGrids the
// ReachGrid cardinality limit, and mergeCount the sibling-merge
// threshold (paper §2.2.2). Zero values keep the defaults.
func WithGeoReachParams(maxRMBR float64, maxReachGrids, mergeCount int) Option {
	return func(c *buildConfig) {
		c.opts.GeoReach.Params.MaxRMBRFraction = maxRMBR
		c.opts.GeoReach.Params.MaxReachGrids = maxReachGrids
		c.opts.GeoReach.Params.MergeCount = mergeCount
	}
}

// Index answers RangeReach queries for one network with one method.
type Index struct {
	net    *Network
	method Method
	engine core.Engine
	stats  IndexStats

	// mapping owns the memory map of an index opened with OpenMapped;
	// nil for built or stream-loaded indexes. See Index.Close.
	mapping io.Closer
	mapped  bool
	mappedB int64
}

// Close releases the memory map of an index opened with
// Network.OpenMapped. The index must not be queried afterwards — its
// structures overlay the mapped pages. Close is a no-op (and returns
// nil) for built or stream-loaded indexes, so deferring it
// unconditionally is safe.
func (idx *Index) Close() error {
	if idx.mapping == nil {
		return nil
	}
	m := idx.mapping
	idx.mapping = nil
	return m.Close()
}

// Mapped reports whether the index's structures overlay a live memory
// map (true only for OpenMapped indexes on platforms with mmap; the
// portable fallback reads into memory and reports false).
func (idx *Index) Mapped() bool { return idx.mapped }

// MappedBytes returns the image size of an OpenMapped index, 0
// otherwise.
func (idx *Index) MappedBytes() int64 { return idx.mappedB }

// BuildPhase attributes part of an index build to one named pipeline
// phase ("labeling", "spatial", "reach", …).
type BuildPhase struct {
	// Name identifies the phase.
	Name string
	// Duration is the accumulated work time of the phase. Under
	// parallel builds concurrent phases accumulate independently, so
	// the sum over phases can exceed the wall-clock BuildTime.
	Duration time.Duration
}

// IndexStats reports the offline costs of an index (the paper's
// Tables 4 and 5).
type IndexStats struct {
	// Method is the evaluation method the index implements.
	Method Method
	// BuildTime is the wall-clock construction time.
	BuildTime time.Duration
	// Bytes is the approximate in-memory footprint of the index
	// structures (the shared network itself is not counted).
	Bytes int64
	// Phases attributes the build to named pipeline phases, sorted by
	// name. Empty for Naive (no index is built).
	Phases []BuildPhase
}

// Build constructs a RangeReach index over the network.
func (n *Network) Build(m Method, options ...Option) (*Index, error) {
	var cfg buildConfig
	for _, o := range options {
		o(&cfg)
	}
	if cfg.opts.Parallelism == 0 {
		cfg.opts.Parallelism = runtime.NumCPU()
	}
	if m == Naive {
		return &Index{
			net:    n,
			method: m,
			engine: core.NewNaiveBFS(n.net),
			stats:  IndexStats{Method: m},
		}, nil
	}
	cm, ok := m.internal()
	if !ok {
		return nil, fmt.Errorf("rangereach: unknown method %v", m)
	}
	res, err := core.BuildMethod(n.prep, cm, cfg.opts)
	if err != nil {
		return nil, err
	}
	phases := make([]BuildPhase, len(res.Phases))
	for i, ph := range res.Phases {
		phases[i] = BuildPhase{Name: ph.Name, Duration: ph.Duration}
	}
	return &Index{
		net:    n,
		method: m,
		engine: res.Engine,
		stats: IndexStats{
			Method:    m,
			BuildTime: res.BuildTime,
			Bytes:     res.Bytes,
			Phases:    phases,
		},
	}, nil
}

// MustBuild is Build for static configurations known to be valid; it
// panics on error.
func (n *Network) MustBuild(m Method, options ...Option) *Index {
	idx, err := n.Build(m, options...)
	if err != nil {
		panic(err)
	}
	return idx
}

// Method returns the evaluation method of the index.
func (idx *Index) Method() Method { return idx.method }

// Stats returns the offline costs of the index.
func (idx *Index) Stats() IndexStats { return idx.stats }

// RangeReach reports whether vertex v can reach — along directed edges —
// any spatial vertex whose point lies inside r. It panics if v is out of
// range, mirroring slice semantics.
func (idx *Index) RangeReach(v int, r Rect) bool {
	if v < 0 || v >= idx.net.NumVertices() {
		panic(fmt.Sprintf("rangereach: vertex %d out of range [0,%d)", v, idx.net.NumVertices()))
	}
	return idx.engine.RangeReach(v, r.internal())
}

// Network returns the network the index was built over.
func (idx *Index) Network() *Network { return idx.net }

// PlannerMembers returns the member engine names of a MethodAuto index
// in routing order, and nil for fixed-method indexes.
func (idx *Index) PlannerMembers() []string {
	auto, ok := idx.engine.(*core.Auto)
	if !ok {
		return nil
	}
	members := auto.Members()
	names := make([]string, len(members))
	for i, e := range members {
		names[i] = e.Name()
	}
	return names
}

// PlannerChoices returns how many queries the planner has routed to
// each member so far, aligned with PlannerMembers. Nil for fixed-method
// indexes.
func (idx *Index) PlannerChoices() []int64 {
	auto, ok := idx.engine.(*core.Auto)
	if !ok {
		return nil
	}
	return auto.Choices()
}
