// Benchmarks regenerating the paper's evaluation artifacts (one bench
// per table and figure; see DESIGN.md §4 for the experiment index).
//
// Run all:      go test -bench=. -benchmem
// One artifact: go test -bench=BenchmarkFig7Methods -benchmem
//
// The benchmarks run at a reduced dataset scale so `go test -bench=.`
// stays laptop-friendly; cmd/rrbench runs the same experiments at any
// scale and prints paper-style tables.
package rangereach_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/incr"
	"repro/internal/labeling"
	"repro/internal/workload"
)

// benchScale keeps `go test -bench=.` in the seconds range per bench.
const benchScale = 0.25

var (
	benchOnce  sync.Once
	benchNets  []*dataset.Network
	benchPreps []*dataset.Prepared
	benchGens  []*workload.Generator

	benchEngineMu sync.Mutex
	benchEngines  = map[string]core.BuildResult{}
)

func benchSetup() {
	benchOnce.Do(func() {
		benchNets = dataset.Presets(benchScale, 1)
		for _, net := range benchNets {
			prep := dataset.Prepare(net)
			benchPreps = append(benchPreps, prep)
			benchGens = append(benchGens, workload.NewGenerator(net, 99))
		}
	})
}

func benchEngine(b *testing.B, ds int, m core.Method, p dataset.SCCPolicy) core.Engine {
	b.Helper()
	benchEngineMu.Lock()
	defer benchEngineMu.Unlock()
	key := benchNets[ds].Name + "/" + m.String() + "/" + p.String()
	if res, ok := benchEngines[key]; ok {
		return res.Engine
	}
	res, err := core.BuildMethod(benchPreps[ds], m, core.BuildOptions{Policy: p})
	if err != nil {
		b.Fatal(err)
	}
	benchEngines[key] = res
	return res.Engine
}

func runQueries(b *testing.B, e core.Engine, qs []workload.Query) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		e.RangeReach(q.Vertex, q.Region)
	}
}

// BenchmarkTable3Stats regenerates Table 3: the structural statistics of
// the four datasets (SCC computation dominates).
func BenchmarkTable3Stats(b *testing.B) {
	benchSetup()
	for ds, net := range benchNets {
		b.Run(net.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := benchNets[ds].ComputeStats()
				if st.Vertices == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkTable4IndexSize regenerates Table 4: it builds each index and
// reports its footprint as the index-bytes metric.
func BenchmarkTable4IndexSize(b *testing.B) {
	benchSetup()
	for ds, net := range benchNets {
		for _, m := range core.AllMethods {
			b.Run(net.Name+"/"+m.String(), func(b *testing.B) {
				var bytes int64
				for i := 0; i < b.N; i++ {
					res, err := core.BuildMethod(benchPreps[ds], m, core.BuildOptions{})
					if err != nil {
						b.Fatal(err)
					}
					bytes = res.Bytes
				}
				b.ReportMetric(float64(bytes), "index-bytes")
			})
		}
	}
}

// BenchmarkTable5IndexBuild regenerates Table 5: per-method index
// construction time (the benchmark time itself is the artifact).
func BenchmarkTable5IndexBuild(b *testing.B) {
	benchSetup()
	for ds, net := range benchNets {
		for _, m := range core.AllMethods {
			b.Run(net.Name+"/"+m.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.BuildMethod(benchPreps[ds], m, core.BuildOptions{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable6Labels regenerates Table 6: interval-labeling
// construction with the uncompressed and compressed label counts as
// metrics, for the forward and reversed schemes.
func BenchmarkTable6Labels(b *testing.B) {
	benchSetup()
	for ds, net := range benchNets {
		for _, dir := range []string{"forward", "reversed"} {
			b.Run(net.Name+"/"+dir, func(b *testing.B) {
				g := benchPreps[ds].DAG
				if dir == "reversed" {
					g = g.Reverse()
				}
				var l *labeling.Labeling
				for i := 0; i < b.N; i++ {
					l = labeling.Build(g, labeling.Options{})
				}
				b.ReportMetric(float64(l.UncompressedCount), "labels-uncompressed")
				b.ReportMetric(float64(l.CompressedCount), "labels-compressed")
			})
		}
	}
}

// BenchmarkFig5MBRPolicy regenerates Figure 5: SpaReach-INT queries
// under the Replicate (non-MBR) vs MBR SCC policies at the default
// workload parameters.
func BenchmarkFig5MBRPolicy(b *testing.B) {
	benchSetup()
	for ds, net := range benchNets {
		qs := benchGens[ds].Batch(256, workload.DefaultExtent, workload.DefaultDegreeBucket)
		for _, p := range []dataset.SCCPolicy{dataset.Replicate, dataset.MBR} {
			b.Run(net.Name+"/"+p.String(), func(b *testing.B) {
				runQueries(b, benchEngine(b, ds, core.MethodSpaReachINT, p), qs)
			})
		}
	}
}

// BenchmarkFig6SpaReach regenerates Figure 6: SpaReach-BFL vs
// SpaReach-INT across the extent axis.
func BenchmarkFig6SpaReach(b *testing.B) {
	benchSetup()
	for ds, net := range benchNets {
		for _, extent := range []float64{1, workload.DefaultExtent, 20} {
			qs := benchGens[ds].Batch(256, extent, workload.DefaultDegreeBucket)
			for _, m := range []core.Method{core.MethodSpaReachBFL, core.MethodSpaReachINT} {
				b.Run(net.Name+"/"+m.String()+"/extent-"+pct(extent), func(b *testing.B) {
					runQueries(b, benchEngine(b, ds, m, dataset.Replicate), qs)
				})
			}
		}
	}
}

// BenchmarkFig7Methods regenerates Figure 7: the main method comparison
// across the extent axis (rrbench -exp fig7 covers the degree and
// selectivity axes at full resolution).
func BenchmarkFig7Methods(b *testing.B) {
	benchSetup()
	methods := []core.Method{
		core.MethodSpaReachBFL, core.MethodGeoReach, core.MethodSocReach,
		core.MethodThreeDReach, core.MethodThreeDReachRev,
	}
	for ds, net := range benchNets {
		for _, extent := range []float64{1, workload.DefaultExtent, 20} {
			qs := benchGens[ds].Batch(256, extent, workload.DefaultDegreeBucket)
			for _, m := range methods {
				b.Run(net.Name+"/"+m.String()+"/extent-"+pct(extent), func(b *testing.B) {
					runQueries(b, benchEngine(b, ds, m, dataset.Replicate), qs)
				})
			}
		}
	}
}

// BenchmarkFig7Selectivity covers Figure 7's selectivity axis for the
// two ends of the range, where the paper's crossover behaviour shows.
func BenchmarkFig7Selectivity(b *testing.B) {
	benchSetup()
	methods := []core.Method{
		core.MethodSpaReachBFL, core.MethodSocReach, core.MethodThreeDReach,
	}
	for ds, net := range benchNets {
		for _, sel := range []float64{0.001, 1} {
			qs := benchGens[ds].SelectivityBatch(128, sel, workload.DefaultDegreeBucket)
			for _, m := range methods {
				b.Run(net.Name+"/"+m.String()+"/sel-"+pct(sel), func(b *testing.B) {
					runQueries(b, benchEngine(b, ds, m, dataset.Replicate), qs)
				})
			}
		}
	}
}

// BenchmarkDynamicUpdates measures the incremental engine's update
// throughput (paper §8 future work): alternating edge insertions,
// deletions and queries on a changing network.
func BenchmarkDynamicUpdates(b *testing.B) {
	benchSetup()
	ds := 2 // weeplaces-like, the smallest preset
	for _, op := range []string{"add-edge", "del-edge", "add-venue", "query"} {
		b.Run(benchNets[ds].Name+"/"+op, func(b *testing.B) {
			e := incr.New(benchPreps[ds], incr.Options{})
			qs := benchGens[ds].Batch(256, workload.DefaultExtent, workload.DefaultDegreeBucket)
			n := e.NumVertices()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch op {
				case "add-edge":
					_ = e.AddEdge(i%n, (i*7+1)%n)
				case "del-edge":
					// Insert-then-delete so every iteration has an edge
					// to remove.
					_ = e.AddEdge(i%n, (i*11+3)%n)
					_ = e.DeleteEdge(i%n, (i*11+3)%n)
				case "add-venue":
					e.AddVenue(float64(i%100), float64((i*13)%100))
				default:
					q := qs[i%len(qs)]
					e.RangeReach(q.Vertex, q.Region)
				}
			}
		})
	}
}

// BenchmarkBatchParallel measures batch-query scaling across goroutines
// on the fastest engine.
func BenchmarkBatchParallel(b *testing.B) {
	benchSetup()
	ds := 1 // gowalla-like
	e := benchEngine(b, ds, core.MethodThreeDReach, dataset.Replicate)
	qs := benchGens[ds].Batch(512, workload.DefaultExtent, workload.DefaultDegreeBucket)
	b.Run("sequential", func(b *testing.B) {
		runQueries(b, e, qs)
	})
	b.Run("parallel", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				q := qs[i%len(qs)]
				e.RangeReach(q.Vertex, q.Region)
				i++
			}
		})
	})
}

func pct(v float64) string {
	switch {
	case v >= 1:
		return itoa(int(v))
	case v == 0.001:
		return "0.001"
	case v == 0.01:
		return "0.01"
	case v == 0.1:
		return "0.1"
	default:
		return "x"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
