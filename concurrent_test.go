package rangereach_test

import (
	"math/rand"
	"sync"
	"testing"

	rangereach "repro"
)

// TestConcurrentBatchAndStats hammers RangeReachBatch on every static
// method from several goroutines while another goroutine polls Stats(),
// asserting results stay identical to a serial evaluation. Run under
// -race (ci.sh does) this pins down the static read path's lock-free
// concurrency contract.
func TestConcurrentBatchAndStats(t *testing.T) {
	net := rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name: "concurrent", Users: 250, Venues: 120,
		AvgFriends: 4, AvgCheckins: 3, Clusters: 4, Seed: 11,
	})
	space := net.Space()
	rng := rand.New(rand.NewSource(5))
	queries := make([]rangereach.Query, 300)
	for i := range queries {
		w := (space.MaxX - space.MinX) * (0.05 + 0.25*rng.Float64())
		h := (space.MaxY - space.MinY) * (0.05 + 0.25*rng.Float64())
		x := space.MinX + rng.Float64()*(space.MaxX-space.MinX-w)
		y := space.MinY + rng.Float64()*(space.MaxY-space.MinY-h)
		queries[i] = rangereach.Query{
			Vertex: rng.Intn(net.NumVertices()),
			Region: rangereach.NewRect(x, y, x+w, y+h),
		}
	}

	methods := append(append([]rangereach.Method{}, rangereach.Methods...), rangereach.ExtendedMethods...)
	for _, m := range methods {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			idx, err := net.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			want := idx.RangeReachBatch(queries, 1) // serial reference

			stop := make(chan struct{})
			var statsWG sync.WaitGroup
			statsWG.Add(1)
			go func() {
				defer statsWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if st := idx.Stats(); st.Method != m {
						t.Errorf("Stats().Method = %v, want %v", st.Method, m)
						return
					}
				}
			}()

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for round := 0; round < 3; round++ {
						got := idx.RangeReachBatch(queries, 4)
						for i := range got {
							if got[i] != want[i] {
								t.Errorf("concurrent batch diverged at query %d: got %v, want %v", i, got[i], want[i])
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			statsWG.Wait()
		})
	}
}

// TestDynamicSnapshot verifies snapshots are immutable point-in-time
// views: updates after Snapshot() are invisible to it, and a snapshot
// answers concurrently while the writer keeps updating.
func TestDynamicSnapshot(t *testing.T) {
	net := figure1(t)
	idx := net.BuildDynamic()
	region := rangereach.NewRect(60, 55, 90, 95)

	before := idx.Snapshot()
	if before.NumVertices() != net.NumVertices() {
		t.Fatalf("snapshot NumVertices = %d, want %d", before.NumVertices(), net.NumVertices())
	}
	if !before.RangeReach(0, region) || before.RangeReach(2, region) {
		t.Fatal("snapshot disagrees with index before updates")
	}

	// Mutate: c (2) checks in at a new venue inside the region.
	venue := idx.AddVenue(75, 70)
	if err := idx.AddEdge(2, venue); err != nil {
		t.Fatal(err)
	}
	if !idx.RangeReach(2, region) {
		t.Fatal("live index should see the update")
	}
	if before.RangeReach(2, region) {
		t.Error("old snapshot sees an update made after capture")
	}
	after := idx.Snapshot()
	if !after.RangeReach(2, region) {
		t.Error("new snapshot misses the update")
	}

	// Readers on a snapshot race-free while the writer keeps going.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !after.RangeReach(2, region) {
					t.Error("snapshot answer changed")
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		v := idx.AddVenue(float64(i), float64(i))
		if err := idx.AddEdge(0, v); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()

	if after.NumVertices() != 13 {
		t.Errorf("snapshot NumVertices drifted to %d, want 13", after.NumVertices())
	}
	if idx.NumVertices() != 63 {
		t.Errorf("live NumVertices = %d, want 63", idx.NumVertices())
	}
}
