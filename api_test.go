package rangereach_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	rangereach "repro"
)

// figure1 builds the paper's running example through the public API.
func figure1(t *testing.T) *rangereach.Network {
	t.Helper()
	b := rangereach.NewNetworkBuilder(12).SetName("figure-1")
	for _, e := range [][2]int{
		{0, 1}, {0, 3}, {0, 9},
		{1, 4}, {1, 11}, {1, 3},
		{2, 8}, {2, 10}, {2, 3},
		{4, 5}, {6, 8}, {8, 5}, {9, 6}, {9, 7}, {11, 7},
	} {
		b.AddEdge(e[0], e[1])
	}
	b.SetPoint(4, 70, 80).SetPoint(7, 80, 60).SetPoint(5, 10, 10).
		SetPoint(8, 20, 90).SetPoint(11, 40, 20)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPublicAPIPaperExample(t *testing.T) {
	net := figure1(t)
	region := rangereach.NewRect(60, 55, 90, 95)
	all := append([]rangereach.Method{rangereach.Naive}, rangereach.Methods...)
	all = append(all, rangereach.ExtendedMethods...)
	for _, m := range all {
		idx, err := net.Build(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !idx.RangeReach(0, region) {
			t.Errorf("%v: RangeReach(a, R) = false", m)
		}
		if idx.RangeReach(2, region) {
			t.Errorf("%v: RangeReach(c, R) = true", m)
		}
		if idx.Method() != m {
			t.Errorf("Method() = %v, want %v", idx.Method(), m)
		}
		if idx.Network() != net {
			t.Error("Network() does not round-trip")
		}
	}
}

func TestNetworkAccessors(t *testing.T) {
	net := figure1(t)
	if net.Name() != "figure-1" {
		t.Errorf("Name = %q", net.Name())
	}
	if net.NumVertices() != 12 || net.NumSpatial() != 5 {
		t.Error("counts wrong")
	}
	if net.NumEdges() != 15 {
		t.Errorf("NumEdges = %d", net.NumEdges())
	}
	if !net.IsSpatial(4) || net.IsSpatial(0) {
		t.Error("IsSpatial wrong")
	}
	if x, y, ok := net.PointOf(4); !ok || x != 70 || y != 80 {
		t.Errorf("PointOf(4) = %g,%g,%v", x, y, ok)
	}
	if _, _, ok := net.PointOf(0); ok {
		t.Error("PointOf(social) returned a point")
	}
	if net.OutDegree(0) != 3 {
		t.Errorf("OutDegree(0) = %d", net.OutDegree(0))
	}
	s := net.Space()
	if s.MinX != 10 || s.MaxX != 80 || s.MinY != 10 || s.MaxY != 90 {
		t.Errorf("Space = %+v", s)
	}
	st := net.Stats()
	if st.Users != 7 || st.Venues != 5 || st.Vertices != 12 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := rangereach.NewNetworkBuilder(-1).Build(); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := rangereach.NewNetworkBuilder(2).AddEdge(0, 5).Build(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := rangereach.NewNetworkBuilder(2).SetPoint(9, 1, 1).Build(); err == nil {
		t.Error("out-of-range point accepted")
	}
	// Errors stick: later valid calls must not clear them.
	b := rangereach.NewNetworkBuilder(2).AddEdge(0, 5).AddEdge(0, 1).SetPoint(1, 2, 2)
	if _, err := b.Build(); err == nil {
		t.Error("sticky error cleared")
	}
}

func TestSaveAndRead(t *testing.T) {
	net := figure1(t)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := rangereach.ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 12 || got.NumSpatial() != 5 || got.Name() != "figure-1" {
		t.Error("round trip lost data")
	}
	if _, err := rangereach.ReadNetwork(strings.NewReader("junk")); err == nil {
		t.Error("junk accepted")
	}
	if _, err := rangereach.LoadNetwork("/definitely/missing.gsn"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOptions(t *testing.T) {
	net := figure1(t)
	for _, m := range []rangereach.Method{rangereach.SpaReachBFL, rangereach.SpaReachINT,
		rangereach.ThreeDReach, rangereach.ThreeDReachRev} {
		idx, err := net.Build(m, rangereach.WithMBRPolicy(), rangereach.WithRTreeFanout(8))
		if err != nil {
			t.Fatalf("%v with MBR: %v", m, err)
		}
		if !idx.RangeReach(0, rangereach.NewRect(60, 55, 90, 95)) {
			t.Errorf("%v/MBR wrong answer", m)
		}
	}
	if _, err := net.Build(rangereach.SocReach, rangereach.WithMBRPolicy()); err == nil {
		t.Error("SocReach+MBR accepted")
	}
	if _, err := net.Build(rangereach.GeoReach, rangereach.WithMBRPolicy()); err == nil {
		t.Error("GeoReach+MBR accepted")
	}
	if _, err := net.Build(rangereach.Method(99)); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := net.Build(rangereach.SpaReachBFL, rangereach.WithBFLBits(64)); err != nil {
		t.Error(err)
	}
	if _, err := net.Build(rangereach.GeoReach, rangereach.WithGeoReachParams(0.5, 16, 2)); err != nil {
		t.Error(err)
	}
	// All three spatial backends answer identically.
	region := rangereach.NewRect(60, 55, 90, 95)
	for _, b := range []rangereach.SpatialBackend{
		rangereach.BackendRTree, rangereach.BackendKDTree, rangereach.BackendGrid,
	} {
		idx, err := net.Build(rangereach.ThreeDReach, rangereach.WithSpatialBackend(b))
		if err != nil {
			t.Fatalf("backend %v: %v", b, err)
		}
		if !idx.RangeReach(0, region) || idx.RangeReach(2, region) {
			t.Errorf("backend %v wrong answers", b)
		}
	}
}

func TestSetRectGeometries(t *testing.T) {
	// Footnote 1: venues with rectangular extents. User 0 checks into a
	// mall spanning [40,60]²; every method answers by intersection.
	b := rangereach.NewNetworkBuilder(3).SetName("extents")
	b.AddEdge(0, 1).AddEdge(0, 2)
	b.SetRect(1, rangereach.NewRect(40, 40, 60, 60))
	b.SetPoint(2, 90, 90)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	clip := rangereach.NewRect(58, 58, 70, 70)    // clips the mall corner
	outside := rangereach.NewRect(61, 61, 70, 70) // misses everything
	all := append([]rangereach.Method{rangereach.Naive}, rangereach.Methods...)
	all = append(all, rangereach.ExtendedMethods...)
	for _, m := range all {
		idx, err := net.Build(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !idx.RangeReach(0, clip) {
			t.Errorf("%v: clipping region should witness the extent", m)
		}
		if idx.RangeReach(0, outside) {
			t.Errorf("%v: disjoint region answered TRUE", m)
		}
	}
	// The dynamic index handles the extent-built network too.
	dyn := net.BuildDynamic()
	if !dyn.RangeReach(0, clip) || dyn.RangeReach(0, outside) {
		t.Error("dynamic index wrong on extents")
	}
	// Invalid extents surface as build errors.
	bad := rangereach.NewNetworkBuilder(1)
	bad.SetRect(0, rangereach.Rect{MinX: 5, MinY: 0, MaxX: 1, MaxY: 1})
	if _, err := bad.Build(); err == nil {
		t.Error("invalid extent accepted")
	}
	if _, err := rangereach.NewNetworkBuilder(1).SetRect(5, rangereach.NewRect(0, 0, 1, 1)).Build(); err == nil {
		t.Error("out-of-range SetRect accepted")
	}
}

func TestMustBuildPanics(t *testing.T) {
	net := figure1(t)
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	net.MustBuild(rangereach.SocReach, rangereach.WithMBRPolicy())
}

func TestRangeReachPanicsOutOfRange(t *testing.T) {
	idx := figure1(t).MustBuild(rangereach.ThreeDReach)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	idx.RangeReach(99, rangereach.NewRect(0, 0, 1, 1))
}

func TestMethodStrings(t *testing.T) {
	want := map[rangereach.Method]string{
		rangereach.ThreeDReach:    "3DReach",
		rangereach.ThreeDReachRev: "3DReach-Rev",
		rangereach.SocReach:       "SocReach",
		rangereach.SpaReachBFL:    "SpaReach-BFL",
		rangereach.SpaReachINT:    "SpaReach-INT",
		rangereach.GeoReach:       "GeoReach",
		rangereach.Naive:          "NaiveBFS",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if rangereach.Method(77).String() == "" {
		t.Error("unknown method string empty")
	}
}

func TestSyntheticAndPresets(t *testing.T) {
	net := rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name: "s", Users: 300, Venues: 200, AvgFriends: 4, AvgCheckins: 2,
		GiantSCC: true, Seed: 5,
	})
	st := net.Stats()
	if st.LargestSCC != 300 {
		t.Errorf("giant SCC = %d, want 300", st.LargestSCC)
	}

	for _, gen := range []func(float64, int64) *rangereach.Network{
		rangereach.FoursquareLike, rangereach.GowallaLike,
		rangereach.WeeplacesLike, rangereach.YelpLike,
	} {
		n := gen(0.02, 3)
		if n.NumVertices() < 4 {
			t.Error("preset too small")
		}
	}
}

func TestPublicEnginesAgreeOnSynthetic(t *testing.T) {
	net := rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name: "agree", Users: 400, Venues: 250, AvgFriends: 4, AvgCheckins: 2,
		CoreFraction: 0.4, Seed: 11,
	})
	oracle := net.MustBuild(rangereach.Naive)
	var indexes []*rangereach.Index
	for _, m := range rangereach.Methods {
		indexes = append(indexes, net.MustBuild(m))
	}
	rng := rand.New(rand.NewSource(13))
	space := net.Space()
	for q := 0; q < 60; q++ {
		v := rng.Intn(net.NumVertices())
		w := rng.Float64() * (space.MaxX - space.MinX) / 2
		h := rng.Float64() * (space.MaxY - space.MinY) / 2
		x := space.MinX + rng.Float64()*(space.MaxX-space.MinX-w)
		y := space.MinY + rng.Float64()*(space.MaxY-space.MinY-h)
		r := rangereach.NewRect(x, y, x+w, y+h)
		want := oracle.RangeReach(v, r)
		for _, idx := range indexes {
			if got := idx.RangeReach(v, r); got != want {
				t.Fatalf("%v(%d, %+v) = %v, want %v", idx.Method(), v, r, got, want)
			}
		}
	}
}

func TestIndexStats(t *testing.T) {
	net := figure1(t)
	idx := net.MustBuild(rangereach.ThreeDReach)
	st := idx.Stats()
	if st.Bytes <= 0 {
		t.Errorf("Bytes = %d", st.Bytes)
	}
	if st.Method != rangereach.ThreeDReach {
		t.Error("Stats method wrong")
	}
	naive := net.MustBuild(rangereach.Naive)
	if naive.Stats().Bytes != 0 {
		t.Error("naive index should report zero bytes")
	}
}
