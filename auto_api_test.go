package rangereach_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rangereach "repro"
)

// autoNet is the synthetic network the public Auto tests share.
func autoNet() *rangereach.Network {
	return rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name: "auto-api", Users: 300, Venues: 200, AvgFriends: 4, AvgCheckins: 2,
		CoreFraction: 0.3, Seed: 17,
	})
}

func TestAutoPublicParity(t *testing.T) {
	net := autoNet()
	oracle := net.MustBuild(rangereach.Naive)
	idx, err := net.Build(rangereach.MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Method() != rangereach.MethodAuto {
		t.Errorf("Method() = %v, want MethodAuto", idx.Method())
	}
	if got := idx.Method().String(); got != "Auto" {
		t.Errorf("MethodAuto.String() = %q", got)
	}
	rng := rand.New(rand.NewSource(19))
	space := net.Space()
	for q := 0; q < 80; q++ {
		v := rng.Intn(net.NumVertices())
		w := rng.Float64() * (space.MaxX - space.MinX) / 2
		h := rng.Float64() * (space.MaxY - space.MinY) / 2
		x := space.MinX + rng.Float64()*(space.MaxX-space.MinX-w)
		y := space.MinY + rng.Float64()*(space.MaxY-space.MinY-h)
		r := rangereach.NewRect(x, y, x+w, y+h)
		if got, want := idx.RangeReach(v, r), oracle.RangeReach(v, r); got != want {
			t.Fatalf("Auto(%d, %+v) = %v, want %v", v, r, got, want)
		}
	}

	members := idx.PlannerMembers()
	if len(members) != 3 {
		t.Fatalf("PlannerMembers = %v, want the default trio", members)
	}
	choices := idx.PlannerChoices()
	var total int64
	for _, c := range choices {
		total += c
	}
	if total != 80 {
		t.Errorf("PlannerChoices sum to %d, want 80", total)
	}

	// Fixed-method indexes expose no planner.
	fixed := net.MustBuild(rangereach.SocReach)
	if fixed.PlannerMembers() != nil || fixed.PlannerChoices() != nil {
		t.Error("fixed-method index reports planner state")
	}
}

func TestAutoPublicOptions(t *testing.T) {
	net := autoNet()
	idx, err := net.Build(rangereach.MethodAuto,
		rangereach.WithAutoMembers(rangereach.SpaReachBFL, rangereach.ThreeDReach),
		rangereach.WithAutoExplore(8),
		rangereach.WithAutoCalibration(4, 42),
	)
	if err != nil {
		t.Fatal(err)
	}
	members := idx.PlannerMembers()
	if len(members) != 2 || members[0] != "SpaReach-BFL" || members[1] != "3DReach" {
		t.Errorf("PlannerMembers = %v", members)
	}

	// Auto composes with the MBR policy (members without an MBR variant
	// run Replicate internally).
	if _, err := net.Build(rangereach.MethodAuto, rangereach.WithMBRPolicy()); err != nil {
		t.Errorf("Auto+MBR: %v", err)
	}

	// Invalid members surface as build errors, not silent drops.
	if _, err := net.Build(rangereach.MethodAuto,
		rangereach.WithAutoMembers(rangereach.MethodAuto)); err == nil {
		t.Error("self-referential member accepted")
	}
	if _, err := net.Build(rangereach.MethodAuto,
		rangereach.WithAutoMembers(rangereach.Method(99))); err == nil {
		t.Error("unknown member accepted")
	}
}

func TestAutoPublicExplain(t *testing.T) {
	net := autoNet()
	idx := net.MustBuild(rangereach.MethodAuto)
	_, qs := idx.Explain(3, rangereach.NewRect(10, 10, 60, 60))
	if qs.Plan == nil {
		t.Fatal("Explain on Auto left Plan nil")
	}
	if qs.Plan.Method == "" || qs.Plan.Predicted <= 0 {
		t.Errorf("plan incomplete: %+v", qs.Plan)
	}
	if len(qs.Plan.Candidates) != len(idx.PlannerMembers()) {
		t.Errorf("plan has %d candidates, want %d", len(qs.Plan.Candidates), len(idx.PlannerMembers()))
	}
	if s := qs.String(); !strings.Contains(s, "plan="+qs.Plan.Method) {
		t.Errorf("QueryStats.String() misses the plan: %q", s)
	}

	// Fixed methods keep a nil plan.
	_, qs = net.MustBuild(rangereach.SocReach).Explain(3, rangereach.NewRect(10, 10, 60, 60))
	if qs.Plan != nil {
		t.Error("SocReach Explain reported a plan")
	}
}

func TestAutoPublicPersistRoundtrip(t *testing.T) {
	net := autoNet()
	idx := net.MustBuild(rangereach.MethodAuto)
	path := filepath.Join(t.TempDir(), "auto.idx")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := net.LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Method() != rangereach.MethodAuto {
		t.Fatalf("loaded method %v", loaded.Method())
	}
	rng := rand.New(rand.NewSource(23))
	for q := 0; q < 40; q++ {
		v := rng.Intn(net.NumVertices())
		r := rangereach.NewRect(rng.Float64()*50, rng.Float64()*50,
			50+rng.Float64()*50, 50+rng.Float64()*50)
		if loaded.RangeReach(v, r) != idx.RangeReach(v, r) {
			t.Fatalf("loaded Auto disagrees at (%d, %+v)", v, r)
		}
	}
}
