package rangereach

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/trace"
)

// QueryStats is the execution profile of a single RangeReach query, as
// produced by the Explain variants. All counters are exact for the work
// the query actually performed — early termination at the first witness
// is visible as small counts.
//
// The counters mean slightly different things per method; see each
// engine's documentation (and DESIGN.md §9) for the exact semantics.
// Counters irrelevant to a method are always zero and omitted from the
// JSON encoding.
type QueryStats struct {
	// Method is the evaluation method that executed the query.
	Method string `json:"method"`
	// Duration is the wall-clock time of the traced execution. Tracing
	// adds counter updates and stage clock reads, so it runs slightly
	// slower than a plain RangeReach.
	Duration time.Duration `json:"duration_ns"`
	// CacheHit reports that the answer came from a result cache and the
	// engine never ran; all work counters are zero then. Only rrserve
	// sets it — direct Explain calls always execute the engine.
	CacheHit bool `json:"cache_hit,omitempty"`

	// Labels is the number of interval labels of the query vertex that
	// were inspected (3DReach: one cuboid query each; SocReach: one
	// range scan each; SpaReach-INT/BFL: labels consulted by probes).
	Labels int64 `json:"labels,omitempty"`
	// IndexNodes and IndexLeaves count the internal and leaf nodes of
	// the spatial index (R-tree, k-d tree, grid) whose bounds
	// intersected a query box and were therefore expanded.
	IndexNodes  int64 `json:"index_nodes,omitempty"`
	IndexLeaves int64 `json:"index_leaves,omitempty"`
	// IndexEntries counts leaf entries tested against a query box,
	// including the dynamic engine's overlay scans.
	IndexEntries int64 `json:"index_entries,omitempty"`
	// Candidates is the number of spatial candidates SpaReach pulled
	// out of its phase-1 range query.
	Candidates int64 `json:"candidates,omitempty"`
	// ReachProbes is the number of point-to-point reachability probes
	// SpaReach issued against its reachability index.
	ReachProbes int64 `json:"reach_probes,omitempty"`
	// GraphVisited counts graph vertices expanded by a traversal: the
	// Naive BFS, GeoReach's SPA-Graph BFS, or a pruned-DFS fallback
	// inside a BFL/Feline/GRAIL probe.
	GraphVisited int64 `json:"graph_visited,omitempty"`
	// Enumerated is the number of descendants SocReach enumerated.
	Enumerated int64 `json:"enumerated,omitempty"`
	// Members counts exact geometry tests of individual spatial
	// vertices (MBR-policy confirmations, SocReach/GeoReach witness
	// tests).
	Members int64 `json:"members,omitempty"`

	// Stages breaks Duration down by pipeline stage. Only stages that
	// ran appear; stage timings are disjoint, but untimed glue code
	// means they need not sum exactly to Duration.
	Stages []StageStat `json:"stages,omitempty"`

	// Plan is the adaptive planner's routing decision — only present on
	// MethodAuto indexes. Compare Plan.Predicted against Duration to
	// judge the cost model's accuracy on this query.
	Plan *PlanStats `json:"plan,omitempty"`
}

// PlanStats describes how the adaptive planner routed one query.
type PlanStats struct {
	// Method is the member engine the query was routed to.
	Method string `json:"method"`
	// Predicted is the cost model's latency prediction for that member.
	Predicted time.Duration `json:"predicted_ns"`
	// Explored reports the pick was an exploration tick (round-robin)
	// rather than the cost-model argmin.
	Explored bool `json:"explored,omitempty"`
	// Candidates holds every member's work estimate and prediction, in
	// routing order.
	Candidates []PlanCandidate `json:"candidates,omitempty"`
}

// PlanCandidate is one member engine's entry in a routing decision.
type PlanCandidate struct {
	Method string `json:"method"`
	// Work is the planner's work estimate for this member (descendant
	// mass, region candidates, cuboid count — per the member's kind).
	Work float64 `json:"work"`
	// Predicted is the modeled latency at that work.
	Predicted time.Duration `json:"predicted_ns"`
}

// StageStat is one pipeline stage's share of a query's execution.
type StageStat struct {
	// Stage names the pipeline stage: "labels", "spatial", "reach",
	// "verify", "traverse" or "enumerate".
	Stage string `json:"stage"`
	// Duration is the total wall-clock time spent in the stage.
	Duration time.Duration `json:"duration_ns"`
}

// statsFromSpan converts a completed trace span into the public stats.
// It takes the span by value: the query has finished, so the copy is
// cheap and there is no nil pointer to guard against.
func statsFromSpan(method string, sp trace.Span, total time.Duration) QueryStats {
	qs := QueryStats{
		Method:       method,
		Duration:     total,
		Labels:       sp.Labels,
		IndexNodes:   sp.IndexNodes,
		IndexLeaves:  sp.IndexLeaves,
		IndexEntries: sp.IndexEntries,
		Candidates:   sp.Candidates,
		ReachProbes:  sp.ReachProbes,
		GraphVisited: sp.GraphVisited,
		Enumerated:   sp.Enumerated,
		Members:      sp.Members,
	}
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		if d := sp.Durations[st]; d > 0 {
			qs.Stages = append(qs.Stages, StageStat{Stage: st.String(), Duration: d})
		}
	}
	if sp.Plan != nil {
		ps := &PlanStats{
			Method:     sp.Plan.Method,
			Predicted:  sp.Plan.Predicted,
			Explored:   sp.Plan.Explored,
			Candidates: make([]PlanCandidate, len(sp.Plan.Candidates)),
		}
		for i, c := range sp.Plan.Candidates {
			ps.Candidates[i] = PlanCandidate{Method: c.Method, Work: c.Work, Predicted: c.Predicted}
		}
		qs.Plan = ps
	}
	return qs
}

// String renders the stats as a compact single-line summary, e.g. for
// logs. Zero counters are omitted.
func (qs QueryStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v", qs.Method, qs.Duration)
	if qs.CacheHit {
		b.WriteString(" cache-hit")
	}
	appendCount := func(name string, v int64) {
		if v != 0 {
			fmt.Fprintf(&b, " %s=%d", name, v)
		}
	}
	appendCount("labels", qs.Labels)
	appendCount("nodes", qs.IndexNodes)
	appendCount("leaves", qs.IndexLeaves)
	appendCount("entries", qs.IndexEntries)
	appendCount("candidates", qs.Candidates)
	appendCount("probes", qs.ReachProbes)
	appendCount("visited", qs.GraphVisited)
	appendCount("enumerated", qs.Enumerated)
	appendCount("members", qs.Members)
	for _, st := range qs.Stages {
		fmt.Fprintf(&b, " %s=%v", st.Stage, st.Duration)
	}
	if qs.Plan != nil {
		fmt.Fprintf(&b, " plan=%s predicted=%v", qs.Plan.Method, qs.Plan.Predicted)
		if qs.Plan.Explored {
			b.WriteString(" explored")
		}
	}
	return b.String()
}

// Explain answers RangeReach(v, r) like Index.RangeReach and returns
// the execution profile alongside the answer. It panics if v is out of
// range, mirroring RangeReach.
//
// Explain allocates only the returned stats: the engine runs with a
// stack-local trace span, so it is cheap enough for sampled production
// use (rrserve's -trace-sample).
func (idx *Index) Explain(v int, r Rect) (bool, QueryStats) {
	if v < 0 || v >= idx.net.NumVertices() {
		panic(fmt.Sprintf("rangereach: vertex %d out of range [0,%d)", v, idx.net.NumVertices()))
	}
	var sp trace.Span
	start := time.Now()
	ok := idx.engine.RangeReachTraced(v, r.internal(), &sp)
	return ok, statsFromSpan(idx.engine.Name(), sp, time.Since(start))
}

// Explain answers RangeReach(v, r) against the current dynamic state
// and returns the execution profile alongside the answer.
func (idx *DynamicIndex) Explain(v int, r Rect) (bool, QueryStats) {
	var sp trace.Span
	start := time.Now()
	ok := idx.engine.RangeReachTraced(v, r.internal(), &sp)
	return ok, statsFromSpan(idx.engine.Name(), sp, time.Since(start))
}

// Explain answers RangeReach(v, r) against the captured state and
// returns the execution profile alongside the answer.
func (s *DynamicSnapshot) Explain(v int, r Rect) (bool, QueryStats) {
	var sp trace.Span
	start := time.Now()
	ok := s.snap.RangeReachTraced(v, r.internal(), &sp)
	return ok, statsFromSpan("3DReach-Dynamic", sp, time.Since(start))
}
