package rangereach_test

import (
	"os"
	"path/filepath"
	"testing"

	rangereach "repro"
)

// TestFullPipeline exercises the whole library surface end to end, the
// way a downstream application would: generate → save → reload → build
// every method → cross-check answers → persist an index → reload it →
// batch-query it → grow the network dynamically.
func TestFullPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist a dataset.
	net := rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name: "pipeline", Users: 600, Venues: 400,
		AvgFriends: 5, AvgCheckins: 3, CoreFraction: 0.5, Clusters: 8, Seed: 31,
	})
	netPath := filepath.Join(dir, "net.gsn")
	f, err := os.Create(netPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. Reload it; structure must survive.
	loaded, err := rangereach.LoadNetwork(netPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != net.NumVertices() || loaded.NumEdges() != net.NumEdges() {
		t.Fatal("network round trip lost structure")
	}

	// 3. Build every method over the reloaded network and cross-check
	// against the oracle on a workload.
	oracle := loaded.MustBuild(rangereach.Naive)
	queries := randomQueries(loaded, 120, 17)
	indexes := map[rangereach.Method]*rangereach.Index{}
	for _, m := range append(append([]rangereach.Method(nil), rangereach.Methods...),
		rangereach.ExtendedMethods...) {
		indexes[m] = loaded.MustBuild(m)
	}
	for _, q := range queries {
		want := oracle.RangeReach(q.Vertex, q.Region)
		for m, idx := range indexes {
			if got := idx.RangeReach(q.Vertex, q.Region); got != want {
				t.Fatalf("%v disagrees with oracle at %+v", m, q)
			}
		}
	}

	// 4. Persist the winner, reload, batch-query in parallel.
	idxPath := filepath.Join(dir, "3dreach.rrx")
	if err := indexes[rangereach.ThreeDReach].SaveFile(idxPath); err != nil {
		t.Fatal(err)
	}
	reloaded, err := loaded.LoadIndexFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	parallel := reloaded.RangeReachBatch(queries, 4)
	for i, q := range queries {
		if parallel[i] != oracle.RangeReach(q.Vertex, q.Region) {
			t.Fatalf("reloaded batch answer %d wrong", i)
		}
	}

	// 5. Grow the network dynamically and verify the new reachability.
	dyn := loaded.BuildDynamic()
	venue := dyn.AddVenue(50, 50)
	follower := dyn.AddUser()
	if err := dyn.AddEdge(follower, 0); err != nil {
		t.Fatal(err)
	}
	if err := dyn.AddEdge(0, venue); err != nil {
		t.Fatal(err)
	}
	around := rangereach.NewRect(49, 49, 51, 51)
	if !dyn.RangeReach(follower, around) {
		t.Fatal("dynamic growth did not propagate reachability")
	}
}
