// Command rrquery loads a geosocial network, builds a RangeReach index
// and answers queries from the command line or from a batch file.
//
// Usage:
//
//	rrquery -net foursquare.gsn -method 3dreach -q "42 13.3 52.4 13.5 52.6"
//	rrquery -net foursquare.gsn -method spareach-bfl -batch queries.txt
//
// Each query is `vertex xmin ymin xmax ymax`; the batch file holds one
// query per line ('#' comments allowed). The answer is TRUE when the
// vertex reaches a spatial vertex inside the region.
//
// With -explain each query also prints its execution profile: the work
// counters relevant to the chosen method (labels inspected, index nodes
// visited, candidates probed, ...) and the per-stage timing breakdown.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	rangereach "repro"
)

func main() {
	var (
		netPath = flag.String("net", "", "network file in geosocial format (required)")
		method  = flag.String("method", "3dreach", "3dreach, 3dreach-rev, socreach, spareach-bfl, spareach-int, spareach-pll, spareach-feline, spareach-grail, georeach, naive, auto")
		mbr     = flag.Bool("mbr", false, "use the MBR SCC policy (SpaReach/3DReach only)")
		query   = flag.String("q", "", "single query: `vertex xmin ymin xmax ymax`")
		batch   = flag.String("batch", "", "file with one query per line")
		verbose = flag.Bool("v", false, "print index build stats")
		explain = flag.Bool("explain", false, "print each query's execution profile")
		saveIdx = flag.String("save-index", "", "after building, persist the index to this file")
		loadIdx = flag.String("load-index", "", "load a persisted index instead of building (-method is ignored)")
	)
	flag.Parse()

	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "rrquery: -net is required")
		os.Exit(2)
	}
	m, ok := methodByName(*method)
	if !ok {
		fmt.Fprintf(os.Stderr, "rrquery: unknown method %q\n", *method)
		os.Exit(2)
	}

	net, err := rangereach.LoadNetwork(*netPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
		os.Exit(1)
	}
	var opts []rangereach.Option
	if *mbr {
		opts = append(opts, rangereach.WithMBRPolicy())
	}
	var idx *rangereach.Index
	if *loadIdx != "" {
		idx, err = net.LoadIndexFile(*loadIdx)
	} else {
		idx, err = net.Build(m, opts...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
		os.Exit(1)
	}
	if *saveIdx != "" {
		if err := idx.SaveFile(*saveIdx); err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "rrquery: index saved to %s\n", *saveIdx)
		}
	}
	if *verbose {
		st := idx.Stats()
		fmt.Fprintf(os.Stderr, "rrquery: %s over %q (|V|=%d |E|=%d |P|=%d): built in %v, %d bytes\n",
			st.Method, net.Name(), net.NumVertices(), net.NumEdges(), net.NumSpatial(),
			st.BuildTime, st.Bytes)
	}

	run := func(line string) error {
		v, r, err := parseQuery(line)
		if err != nil {
			return err
		}
		if v < 0 || v >= net.NumVertices() {
			return fmt.Errorf("vertex %d out of range [0,%d)", v, net.NumVertices())
		}
		if *explain {
			ans, qs := idx.Explain(v, r)
			fmt.Printf("RangeReach(%d, [%g,%g]x[%g,%g]) = %v  (%v)\n",
				v, r.MinX, r.MaxX, r.MinY, r.MaxY, ans, qs.Duration)
			printStats(qs)
			return nil
		}
		start := time.Now()
		ans := idx.RangeReach(v, r)
		fmt.Printf("RangeReach(%d, [%g,%g]x[%g,%g]) = %v  (%v)\n",
			v, r.MinX, r.MaxX, r.MinY, r.MaxY, ans, time.Since(start))
		return nil
	}

	switch {
	case *query != "":
		if err := run(*query); err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
	case *batch != "":
		f, err := os.Open(*batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if err := run(line); err != nil {
				fmt.Fprintf(os.Stderr, "rrquery: line %d: %v\n", lineNo, err)
				os.Exit(1)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "rrquery: need -q or -batch")
		os.Exit(2)
	}
}

// printStats pretty-prints the EXPLAIN profile: the method, the
// non-zero work counters, and the stage timing breakdown.
func printStats(qs rangereach.QueryStats) {
	fmt.Printf("  method           %s\n", qs.Method)
	rows := []struct {
		name string
		v    int64
	}{
		{"labels inspected", qs.Labels},
		{"index nodes", qs.IndexNodes},
		{"index leaves", qs.IndexLeaves},
		{"index entries", qs.IndexEntries},
		{"candidates", qs.Candidates},
		{"reach probes", qs.ReachProbes},
		{"graph visited", qs.GraphVisited},
		{"enumerated", qs.Enumerated},
		{"member tests", qs.Members},
	}
	for _, row := range rows {
		if row.v != 0 {
			fmt.Printf("  %-16s %d\n", row.name, row.v)
		}
	}
	for _, st := range qs.Stages {
		fmt.Printf("  stage %-10s %v\n", st.Stage, st.Duration)
	}
	if qs.Plan != nil {
		picked := ""
		if qs.Plan.Explored {
			picked = "  (exploration)"
		}
		fmt.Printf("  plan: routed to %s, predicted %v, actual %v%s\n",
			qs.Plan.Method, qs.Plan.Predicted, qs.Duration, picked)
		for _, c := range qs.Plan.Candidates {
			fmt.Printf("    candidate %-16s work=%-10.1f predicted=%v\n", c.Method, c.Work, c.Predicted)
		}
	}
}

func methodByName(name string) (rangereach.Method, bool) {
	switch strings.ToLower(name) {
	case "3dreach":
		return rangereach.ThreeDReach, true
	case "3dreach-rev":
		return rangereach.ThreeDReachRev, true
	case "socreach":
		return rangereach.SocReach, true
	case "spareach-bfl":
		return rangereach.SpaReachBFL, true
	case "spareach-int":
		return rangereach.SpaReachINT, true
	case "georeach":
		return rangereach.GeoReach, true
	case "spareach-pll":
		return rangereach.SpaReachPLL, true
	case "spareach-feline":
		return rangereach.SpaReachFeline, true
	case "spareach-grail":
		return rangereach.SpaReachGRAIL, true
	case "naive":
		return rangereach.Naive, true
	case "auto":
		return rangereach.MethodAuto, true
	default:
		return 0, false
	}
}

func parseQuery(s string) (int, rangereach.Rect, error) {
	fields := strings.Fields(s)
	if len(fields) != 5 {
		return 0, rangereach.Rect{}, fmt.Errorf("want `vertex xmin ymin xmax ymax`, got %q", s)
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, rangereach.Rect{}, fmt.Errorf("bad vertex %q", fields[0])
	}
	var coords [4]float64
	for i, f := range fields[1:] {
		coords[i], err = strconv.ParseFloat(f, 64)
		if err != nil {
			return 0, rangereach.Rect{}, fmt.Errorf("bad coordinate %q", f)
		}
	}
	return v, rangereach.NewRect(coords[0], coords[1], coords[2], coords[3]), nil
}
