// Command rrquery loads a geosocial network, builds a RangeReach index
// and answers queries from the command line or from a batch file.
//
// Usage:
//
//	rrquery -net foursquare.gsn -method 3dreach -q "42 13.3 52.4 13.5 52.6"
//	rrquery -net foursquare.gsn -method spareach-bfl -batch queries.txt
//
// Each query is `vertex xmin ymin xmax ymax`; the batch file holds one
// query per line ('#' comments allowed). The answer is TRUE when the
// vertex reaches a spatial vertex inside the region.
//
// With -explain each query also prints its execution profile: the work
// counters relevant to the chosen method (labels inspected, index nodes
// visited, candidates probed, ...) and the per-stage timing breakdown.
//
// With -target the query goes to a running rrserve or rrrouter over
// HTTP instead of building an index locally:
//
//	rrquery -target http://127.0.0.1:18740 -q "42 13.3 52.4 13.5 52.6"
//	rrquery -target http://127.0.0.1:18740 -trace -q "42 13.3 52.4 13.5 52.6"
//
// -trace sends a W3C traceparent with the query and prints the stitched
// cluster trace fetched back from the router's /v1/trace/{id}: one
// greppable `span name=... tier=... shard=...` line per span, with each
// shard's engine counters indented under its shard_call span.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	rangereach "repro"
	"repro/internal/trace"
)

func main() {
	var (
		netPath = flag.String("net", "", "network file in geosocial format (required)")
		method  = flag.String("method", "3dreach", "3dreach, 3dreach-rev, socreach, spareach-bfl, spareach-int, spareach-pll, spareach-feline, spareach-grail, georeach, naive, auto")
		mbr     = flag.Bool("mbr", false, "use the MBR SCC policy (SpaReach/3DReach only)")
		query   = flag.String("q", "", "single query: `vertex xmin ymin xmax ymax`")
		batch   = flag.String("batch", "", "file with one query per line")
		verbose = flag.Bool("v", false, "print index build stats")
		explain = flag.Bool("explain", false, "print each query's execution profile")
		saveIdx = flag.String("save-index", "", "after building, persist the index to this file")
		loadIdx = flag.String("load-index", "", "load a persisted index instead of building (-method is ignored)")
		mmapIdx = flag.Bool("mmap", false, "open -load-index by zero-copy mmap instead of decoding (v2 index files only)")
		target  = flag.String("target", "", "query a running rrserve/rrrouter at this base URL instead of building locally")
		doTrace = flag.Bool("trace", false, "with -target: send a traceparent and print the stitched cluster trace")
	)
	flag.Parse()

	if *target != "" {
		runRemote(strings.TrimRight(*target, "/"), *query, *batch, *doTrace)
		return
	}
	if *doTrace {
		fmt.Fprintln(os.Stderr, "rrquery: -trace needs -target (local runs use -explain)")
		os.Exit(2)
	}
	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "rrquery: -net is required")
		os.Exit(2)
	}
	m, ok := methodByName(*method)
	if !ok {
		fmt.Fprintf(os.Stderr, "rrquery: unknown method %q\n", *method)
		os.Exit(2)
	}

	net, err := rangereach.LoadNetwork(*netPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
		os.Exit(1)
	}
	var opts []rangereach.Option
	if *mbr {
		opts = append(opts, rangereach.WithMBRPolicy())
	}
	if *mmapIdx && *loadIdx == "" {
		fmt.Fprintln(os.Stderr, "rrquery: -mmap requires -load-index")
		os.Exit(2)
	}
	var idx *rangereach.Index
	switch {
	case *loadIdx != "" && *mmapIdx:
		idx, err = net.OpenMapped(*loadIdx)
	case *loadIdx != "":
		idx, err = net.LoadIndexFile(*loadIdx)
	default:
		idx, err = net.Build(m, opts...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
		os.Exit(1)
	}
	defer idx.Close()
	if *saveIdx != "" {
		if err := idx.SaveFile(*saveIdx); err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "rrquery: index saved to %s\n", *saveIdx)
		}
	}
	if *verbose {
		st := idx.Stats()
		fmt.Fprintf(os.Stderr, "rrquery: %s over %q (|V|=%d |E|=%d |P|=%d): built in %v, %d bytes\n",
			st.Method, net.Name(), net.NumVertices(), net.NumEdges(), net.NumSpatial(),
			st.BuildTime, st.Bytes)
	}

	run := func(line string) error {
		v, r, err := parseQuery(line)
		if err != nil {
			return err
		}
		if v < 0 || v >= net.NumVertices() {
			return fmt.Errorf("vertex %d out of range [0,%d)", v, net.NumVertices())
		}
		if *explain {
			ans, qs := idx.Explain(v, r)
			fmt.Printf("RangeReach(%d, [%g,%g]x[%g,%g]) = %v  (%v)\n",
				v, r.MinX, r.MaxX, r.MinY, r.MaxY, ans, qs.Duration)
			printStats(qs)
			return nil
		}
		start := time.Now()
		ans := idx.RangeReach(v, r)
		fmt.Printf("RangeReach(%d, [%g,%g]x[%g,%g]) = %v  (%v)\n",
			v, r.MinX, r.MaxX, r.MinY, r.MaxY, ans, time.Since(start))
		return nil
	}

	switch {
	case *query != "":
		if err := run(*query); err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
	case *batch != "":
		f, err := os.Open(*batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if err := run(line); err != nil {
				fmt.Fprintf(os.Stderr, "rrquery: line %d: %v\n", lineNo, err)
				os.Exit(1)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "rrquery: need -q or -batch")
		os.Exit(2)
	}
}

// printStats pretty-prints the EXPLAIN profile: the method, the
// non-zero work counters, and the stage timing breakdown.
func printStats(qs rangereach.QueryStats) {
	fmt.Printf("  method           %s\n", qs.Method)
	rows := []struct {
		name string
		v    int64
	}{
		{"labels inspected", qs.Labels},
		{"index nodes", qs.IndexNodes},
		{"index leaves", qs.IndexLeaves},
		{"index entries", qs.IndexEntries},
		{"candidates", qs.Candidates},
		{"reach probes", qs.ReachProbes},
		{"graph visited", qs.GraphVisited},
		{"enumerated", qs.Enumerated},
		{"member tests", qs.Members},
	}
	for _, row := range rows {
		if row.v != 0 {
			fmt.Printf("  %-16s %d\n", row.name, row.v)
		}
	}
	for _, st := range qs.Stages {
		fmt.Printf("  stage %-10s %v\n", st.Stage, st.Duration)
	}
	if qs.Plan != nil {
		picked := ""
		if qs.Plan.Explored {
			picked = "  (exploration)"
		}
		fmt.Printf("  plan: routed to %s, predicted %v, actual %v%s\n",
			qs.Plan.Method, qs.Plan.Predicted, qs.Duration, picked)
		for _, c := range qs.Plan.Candidates {
			fmt.Printf("    candidate %-16s work=%-10.1f predicted=%v\n", c.Method, c.Work, c.Predicted)
		}
	}
}

func methodByName(name string) (rangereach.Method, bool) {
	switch strings.ToLower(name) {
	case "3dreach":
		return rangereach.ThreeDReach, true
	case "3dreach-rev":
		return rangereach.ThreeDReachRev, true
	case "socreach":
		return rangereach.SocReach, true
	case "spareach-bfl":
		return rangereach.SpaReachBFL, true
	case "spareach-int":
		return rangereach.SpaReachINT, true
	case "georeach":
		return rangereach.GeoReach, true
	case "spareach-pll":
		return rangereach.SpaReachPLL, true
	case "spareach-feline":
		return rangereach.SpaReachFeline, true
	case "spareach-grail":
		return rangereach.SpaReachGRAIL, true
	case "naive":
		return rangereach.Naive, true
	case "auto":
		return rangereach.MethodAuto, true
	default:
		return 0, false
	}
}

// ---- remote mode (-target) ----

// remoteResponse covers both rrserve's and rrrouter's /v1/query wire
// formats.
type remoteResponse struct {
	Reachable bool                   `json:"reachable"`
	Micros    int64                  `json:"micros"`
	Shards    int                    `json:"shards"`
	Partial   bool                   `json:"partial,omitempty"`
	TraceID   string                 `json:"trace_id,omitempty"`
	Stats     *rangereach.QueryStats `json:"stats,omitempty"`
}

// runRemote answers -q or -batch against a running server.
func runRemote(target, query, batch string, doTrace bool) {
	client := &http.Client{Timeout: 30 * time.Second}
	run := func(line string) error {
		v, r, err := parseQuery(line)
		if err != nil {
			return err
		}
		return queryRemote(client, target, v, r, doTrace)
	}
	switch {
	case query != "":
		if err := run(query); err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
	case batch != "":
		f, err := os.Open(batch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if err := run(line); err != nil {
				fmt.Fprintf(os.Stderr, "rrquery: line %d: %v\n", lineNo, err)
				os.Exit(1)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "rrquery: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "rrquery: need -q or -batch")
		os.Exit(2)
	}
}

func queryRemote(client *http.Client, target string, v int, r rangereach.Rect, doTrace bool) error {
	body, err := json.Marshal(map[string]any{
		"vertex": v, "region": [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY},
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, target+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	var tid string
	if doTrace {
		tid = trace.NewTraceID()
		req.Header.Set(trace.TraceparentHeader, trace.FormatTraceparent(tid, trace.NewSpanID()))
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var qr remoteResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		return fmt.Errorf("bad response %q: %v", data, err)
	}
	extra := ""
	if qr.Shards > 0 {
		extra = fmt.Sprintf("  [%d shards]", qr.Shards)
	}
	if qr.Partial {
		extra += "  [partial]"
	}
	fmt.Printf("RangeReach(%d, [%g,%g]x[%g,%g]) = %v  (%v)%s\n",
		v, r.MinX, r.MaxX, r.MinY, r.MaxY, qr.Reachable, time.Since(start).Round(time.Microsecond), extra)
	if !doTrace {
		return nil
	}
	if tr, err := fetchTrace(client, target, tid); err == nil {
		printClusterTrace(tr)
		return nil
	}
	// A single rrserve target has no /v1/trace endpoint but returns its
	// stats inline on traced requests.
	if qr.Stats != nil {
		fmt.Printf("trace %s (shard-local stats; target has no /v1/trace)\n", tid)
		printStats(*qr.Stats)
		return nil
	}
	return fmt.Errorf("trace %s not retrievable from %s", tid, target)
}

// fetchTrace pulls /v1/trace/{id}, retrying briefly: early-exit traces
// are finished asynchronously after the response is written.
func fetchTrace(client *http.Client, target, id string) (*trace.ClusterTrace, error) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := client.Get(target + "/v1/trace/" + id)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		_ = resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			var tr trace.ClusterTrace
			if err := json.Unmarshal(data, &tr); err != nil {
				return nil, err
			}
			return &tr, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// printClusterTrace renders a stitched trace, one greppable line per
// span plus each shard's engine counters.
func printClusterTrace(tr *trace.ClusterTrace) {
	fmt.Printf("trace %s endpoint=%s status=%d reason=%s duration=%v spans=%d\n",
		tr.TraceID, tr.Endpoint, tr.Status, tr.Reason,
		time.Duration(tr.DurationNS).Round(time.Microsecond), len(tr.Spans))
	for _, sp := range tr.Spans {
		shard := "-"
		if sp.Shard != trace.NoShard {
			shard = strconv.Itoa(sp.Shard)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "  span name=%s tier=%s shard=%s start=%v dur=%v",
			sp.Name, sp.Tier, shard,
			time.Duration(sp.StartNS).Round(time.Microsecond),
			time.Duration(sp.DurationNS).Round(time.Microsecond))
		if sp.Err != "" {
			fmt.Fprintf(&b, " err=%q", sp.Err)
		}
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, sp.Attrs[k])
		}
		fmt.Println(b.String())
		if len(sp.Stats) > 0 {
			var qs rangereach.QueryStats
			if err := json.Unmarshal(sp.Stats, &qs); err == nil {
				printShardStats(qs)
			}
		}
	}
}

// printShardStats is the compact one-line-per-fact stats rendering
// under a shard_call span.
func printShardStats(qs rangereach.QueryStats) {
	var b strings.Builder
	fmt.Fprintf(&b, "    stats method=%s engine=%v", qs.Method, qs.Duration.Round(time.Microsecond))
	if qs.CacheHit {
		b.WriteString(" cache_hit=true")
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"labels", qs.Labels}, {"index_nodes", qs.IndexNodes},
		{"index_leaves", qs.IndexLeaves}, {"index_entries", qs.IndexEntries},
		{"candidates", qs.Candidates}, {"reach_probes", qs.ReachProbes},
		{"graph_visited", qs.GraphVisited}, {"enumerated", qs.Enumerated},
		{"members", qs.Members},
	} {
		if c.v != 0 {
			fmt.Fprintf(&b, " %s=%d", c.name, c.v)
		}
	}
	for _, st := range qs.Stages {
		fmt.Fprintf(&b, " stage.%s=%v", st.Stage, st.Duration.Round(time.Microsecond))
	}
	fmt.Println(b.String())
}

func parseQuery(s string) (int, rangereach.Rect, error) {
	fields := strings.Fields(s)
	if len(fields) != 5 {
		return 0, rangereach.Rect{}, fmt.Errorf("want `vertex xmin ymin xmax ymax`, got %q", s)
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, rangereach.Rect{}, fmt.Errorf("bad vertex %q", fields[0])
	}
	var coords [4]float64
	for i, f := range fields[1:] {
		coords[i], err = strconv.ParseFloat(f, 64)
		if err != nil {
			return 0, rangereach.Rect{}, fmt.Errorf("bad coordinate %q", f)
		}
	}
	return v, rangereach.NewRect(coords[0], coords[1], coords[2], coords[3]), nil
}
