package main

import (
	"testing"

	rangereach "repro"
)

func TestParseQuery(t *testing.T) {
	v, r, err := parseQuery("42 1.5 2.5 10 20")
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("vertex = %d", v)
	}
	if r != rangereach.NewRect(1.5, 2.5, 10, 20) {
		t.Errorf("rect = %+v", r)
	}
	// Corners normalize.
	_, r, err = parseQuery("0 10 20 1 2")
	if err != nil {
		t.Fatal(err)
	}
	if r.MinX != 1 || r.MaxY != 20 {
		t.Errorf("unnormalized rect %+v", r)
	}

	for _, bad := range []string{
		"", "1 2 3 4", "1 2 3 4 5 6", "x 1 2 3 4", "1 a 2 3 4",
	} {
		if _, _, err := parseQuery(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestMethodByName(t *testing.T) {
	want := map[string]rangereach.Method{
		"3dreach":         rangereach.ThreeDReach,
		"3DReach":         rangereach.ThreeDReach, // case-insensitive
		"3dreach-rev":     rangereach.ThreeDReachRev,
		"socreach":        rangereach.SocReach,
		"spareach-bfl":    rangereach.SpaReachBFL,
		"spareach-int":    rangereach.SpaReachINT,
		"spareach-pll":    rangereach.SpaReachPLL,
		"spareach-feline": rangereach.SpaReachFeline,
		"spareach-grail":  rangereach.SpaReachGRAIL,
		"georeach":        rangereach.GeoReach,
		"naive":           rangereach.Naive,
	}
	for name, m := range want {
		got, ok := methodByName(name)
		if !ok || got != m {
			t.Errorf("methodByName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := methodByName("quantum"); ok {
		t.Error("unknown method accepted")
	}
}
