// Command rrserve is a long-lived RangeReach query server: it loads a
// geosocial network (or generates a synthetic preset), builds an index
// — or loads a persisted one — and answers queries over an HTTP/JSON
// API until terminated.
//
// Usage:
//
//	rrserve -net foursquare.gsn -method 3dreach -addr :8080
//	rrserve -net foursquare.gsn -load-index foursquare.idx
//	rrserve -synthetic gowalla-like -scale 0.5 -dynamic
//
// Endpoints:
//
//	POST /v1/query   {"vertex":42,"region":[13.3,52.4,13.5,52.6]}
//	POST /v1/batch   {"queries":[{"vertex":42,"region":[...]}, ...]}
//	POST /v1/update  {"op":"add_venue","x":13.4,"y":52.5}   (dynamic mode)
//	GET  /healthz
//	GET  /metrics    Prometheus text format
//
// Static mode (-method) serves reads lock-free; dynamic mode (-dynamic)
// serializes updates onto a single writer and publishes immutable
// snapshots, so queries never block on updates. SIGINT/SIGTERM triggers
// a graceful shutdown that drains in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	rangereach "repro"
	"repro/internal/server"
)

func main() {
	var (
		netPath   = flag.String("net", "", "network file in geosocial format")
		synthetic = flag.String("synthetic", "", "generate a preset instead: foursquare-like, gowalla-like, weeplaces-like, yelp-like")
		scale     = flag.Float64("scale", 0.1, "synthetic preset scale")
		seed      = flag.Int64("seed", 1, "synthetic preset seed")
		method    = flag.String("method", "3dreach", "3dreach, 3dreach-rev, socreach, spareach-bfl, spareach-int, spareach-pll, spareach-feline, spareach-grail, georeach, naive")
		dynamic   = flag.Bool("dynamic", false, "serve the updatable 3DReach index (enables /v1/update)")
		loadIdx   = flag.String("load-index", "", "load a persisted index instead of building (-method is ignored)")
		addr      = flag.String("addr", ":8080", "listen address")
		cacheN    = flag.Int("cache", 4096, "result cache entries (negative disables)")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-request budget")
		par       = flag.Int("parallelism", 0, "static batch fan-out (0 = GOMAXPROCS)")
	)
	flag.Parse()

	net, err := loadNetwork(*netPath, *synthetic, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		os.Exit(2)
	}

	cfg := server.Config{
		CacheEntries: *cacheN,
		QueryTimeout: *timeout,
		Parallelism:  *par,
	}
	mode := "static"
	switch {
	case *dynamic:
		mode = "dynamic"
		cfg.Dynamic = net.BuildDynamic()
	case *loadIdx != "":
		cfg.Index, err = net.LoadIndexFile(*loadIdx)
	default:
		m, ok := methodByName(*method)
		if !ok {
			fmt.Fprintf(os.Stderr, "rrserve: unknown method %q\n", *method)
			os.Exit(2)
		}
		cfg.Index, err = net.Build(m)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		os.Exit(1)
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rrserve: serving %q (%s, |V|=%d |E|=%d |P|=%d) on %s\n",
		net.Name(), mode, net.NumVertices(), net.NumEdges(), net.NumSpatial(), *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests,
		// then stop the update goroutine (srv.Close via defer).
		fmt.Fprintln(os.Stderr, "rrserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "rrserve: shutdown: %v\n", err)
		}
	}
}

// loadNetwork resolves -net / -synthetic into a network.
func loadNetwork(path, synthetic string, scale float64, seed int64) (*rangereach.Network, error) {
	switch {
	case path != "" && synthetic != "":
		return nil, errors.New("-net and -synthetic are mutually exclusive")
	case path != "":
		return rangereach.LoadNetwork(path)
	case synthetic != "":
		switch strings.ToLower(synthetic) {
		case "foursquare-like":
			return rangereach.FoursquareLike(scale, seed), nil
		case "gowalla-like":
			return rangereach.GowallaLike(scale, seed), nil
		case "weeplaces-like":
			return rangereach.WeeplacesLike(scale, seed), nil
		case "yelp-like":
			return rangereach.YelpLike(scale, seed), nil
		default:
			return nil, fmt.Errorf("unknown preset %q", synthetic)
		}
	default:
		return nil, errors.New("need -net or -synthetic")
	}
}

func methodByName(name string) (rangereach.Method, bool) {
	switch strings.ToLower(name) {
	case "3dreach":
		return rangereach.ThreeDReach, true
	case "3dreach-rev":
		return rangereach.ThreeDReachRev, true
	case "socreach":
		return rangereach.SocReach, true
	case "spareach-bfl":
		return rangereach.SpaReachBFL, true
	case "spareach-int":
		return rangereach.SpaReachINT, true
	case "georeach":
		return rangereach.GeoReach, true
	case "spareach-pll":
		return rangereach.SpaReachPLL, true
	case "spareach-feline":
		return rangereach.SpaReachFeline, true
	case "spareach-grail":
		return rangereach.SpaReachGRAIL, true
	case "naive":
		return rangereach.Naive, true
	default:
		return 0, false
	}
}
