// Command rrserve is a long-lived RangeReach query server: it loads a
// geosocial network (or generates a synthetic preset), builds an index
// — or loads a persisted one — and answers queries over an HTTP/JSON
// API until terminated.
//
// Usage:
//
//	rrserve -net foursquare.gsn -method 3dreach -addr :8080
//	rrserve -net foursquare.gsn -load-index foursquare.idx
//	rrserve -synthetic gowalla-like -scale 0.5 -dynamic
//
// Endpoints:
//
//	POST /v1/query   {"vertex":42,"region":[13.3,52.4,13.5,52.6]}
//	POST /v1/batch   {"queries":[{"vertex":42,"region":[...]}, ...]}
//	POST /v1/update  {"op":"add_venue","x":13.4,"y":52.5}   (dynamic mode)
//	GET  /v1/explain?vertex=42&region=13.3,52.4,13.5,52.6
//	GET  /healthz
//	GET  /metrics    Prometheus text format
//
// Static mode (-method) serves reads lock-free; dynamic mode (-dynamic)
// serializes updates onto a single writer and publishes immutable
// snapshots, so queries never block on updates. SIGINT/SIGTERM triggers
// a graceful shutdown that drains in-flight requests.
//
// -check deep-validates the index invariants (interval labels,
// condensation acyclicity, spatial tree containment) after the build or
// load and refuses to start if any fail — useful when serving an index
// file of uncertain provenance. -check-publish extends that to dynamic
// mode at runtime: every snapshot is validated before it is published,
// so a patching bug can never become visible to readers. -full-rebuild-updates
// switches the dynamic index to the full-rebuild reference arm (A/B
// against incremental patching).
//
// Observability: -log picks the request-log format (text, json, off),
// -slow-query elevates slow requests to warnings, -trace-sample N runs
// every Nth query through the tracing path (feeding the
// rr_stage_seconds histograms on /metrics), and -debug-addr exposes
// net/http/pprof on a separate listener that should stay private.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	rangereach "repro"
	"repro/internal/server"
)

func main() {
	var (
		netPath   = flag.String("net", "", "network file in geosocial format")
		synthetic = flag.String("synthetic", "", "generate a preset instead: foursquare-like, gowalla-like, weeplaces-like, yelp-like")
		scale     = flag.Float64("scale", 0.1, "synthetic preset scale")
		seed      = flag.Int64("seed", 1, "synthetic preset seed")
		method    = flag.String("method", "3dreach", "3dreach, 3dreach-rev, socreach, spareach-bfl, spareach-int, spareach-pll, spareach-feline, spareach-grail, georeach, naive, auto")
		dynamic   = flag.Bool("dynamic", false, "serve the updatable 3DReach index (enables /v1/update)")
		loadIdx   = flag.String("load-index", "", "load a persisted index instead of building (-method is ignored)")
		mmapIdx   = flag.Bool("mmap", false, "open -load-index by zero-copy mmap instead of decoding (v2 index files only; near-instant cold start)")
		addr      = flag.String("addr", ":8080", "listen address")
		cacheN    = flag.Int("cache", 4096, "result cache entries (negative disables)")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-request budget")
		par       = flag.Int("parallelism", 0, "static batch fan-out (0 = GOMAXPROCS)")
		maxBody   = flag.Int64("max-body", 8<<20, "request body cap in bytes; oversized bodies get 413 (negative disables)")
		buildJ    = flag.Int("j", 0, "worker bound for the index build (0 = all CPUs, 1 = sequential; the built index is identical at any setting)")
		logMode   = flag.String("log", "text", "request log format: text, json, off")
		slowQ     = flag.Duration("slow-query", 250*time.Millisecond, "elevate slower requests to warnings (0 disables)")
		traceN    = flag.Int("trace-sample", 0, "trace every Nth query into the rr_stage_seconds histograms (0 disables)")
		debugAddr = flag.String("debug-addr", "", "listen address for net/http/pprof (empty disables; keep private)")
		checkIdx  = flag.Bool("check", false, "deep-validate index invariants before serving; refuse to start on failure")
		checkPub  = flag.Bool("check-publish", false, "deep-validate every dynamic snapshot before publishing it (requires -dynamic); failing batches get 500 and readers keep the last good snapshot")
		fullRB    = flag.Bool("full-rebuild-updates", false, "absorb dynamic updates by full rebuild instead of incremental patching (requires -dynamic); the A/B reference arm")
		shardID   = flag.Int("shard", -1, "shard id this process serves in a cluster; tags logs and metrics (-1 = standalone)")
	)
	flag.Parse()

	logger, err := buildLogger(*logMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		os.Exit(2)
	}

	net, err := loadNetwork(*netPath, *synthetic, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		os.Exit(2)
	}

	cfg := server.Config{
		CacheEntries: *cacheN,
		QueryTimeout: *timeout,
		Parallelism:  *par,
		MaxBodyBytes: *maxBody,
		Logger:       logger,
		SlowQuery:    *slowQ,
		TraceSample:  *traceN,
	}
	if *shardID >= 0 {
		cfg.ShardID = strconv.Itoa(*shardID)
	}
	if (*checkPub || *fullRB) && !*dynamic {
		fmt.Fprintln(os.Stderr, "rrserve: -check-publish and -full-rebuild-updates require -dynamic")
		os.Exit(2)
	}
	if *mmapIdx && *loadIdx == "" {
		fmt.Fprintln(os.Stderr, "rrserve: -mmap requires -load-index")
		os.Exit(2)
	}
	cfg.CheckPublish = *checkPub
	mode := "static"
	var buildOpts []rangereach.Option
	if *buildJ > 0 {
		buildOpts = append(buildOpts, rangereach.WithParallelism(*buildJ))
	}
	switch {
	case *dynamic:
		mode = "dynamic"
		if *fullRB {
			buildOpts = append(buildOpts, rangereach.WithFullRebuildUpdates())
		}
		cfg.Dynamic = net.BuildDynamic(buildOpts...)
	case *loadIdx != "":
		if *mmapIdx {
			cfg.Index, err = net.OpenMapped(*loadIdx)
		} else {
			cfg.Index, err = net.LoadIndexFile(*loadIdx)
		}
	default:
		m, ok := methodByName(*method)
		if !ok {
			fmt.Fprintf(os.Stderr, "rrserve: unknown method %q\n", *method)
			os.Exit(2)
		}
		cfg.Index, err = net.Build(m, buildOpts...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		os.Exit(1)
	}
	if cfg.Index != nil {
		defer cfg.Index.Close()
	}

	if *checkIdx {
		var verr error
		if cfg.Dynamic != nil {
			verr = cfg.Dynamic.Validate()
		} else {
			verr = cfg.Index.Validate()
		}
		if verr != nil {
			fmt.Fprintf(os.Stderr, "rrserve: index failed validation, refusing to serve: %v\n", verr)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "rrserve: index invariants validated")
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, debugMux()); err != nil {
				fmt.Fprintf(os.Stderr, "rrserve: debug listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "rrserve: pprof on %s/debug/pprof/\n", *debugAddr)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rrserve: serving %q (%s, |V|=%d |E|=%d |P|=%d) on %s\n",
		net.Name(), mode, net.NumVertices(), net.NumEdges(), net.NumSpatial(), *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests,
		// then stop the update goroutine (srv.Close via defer).
		fmt.Fprintln(os.Stderr, "rrserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "rrserve: shutdown: %v\n", err)
		}
	}
}

// buildLogger resolves the -log flag. Logs go to stderr, keeping stdout
// free for redirection.
func buildLogger(mode string) (*slog.Logger, error) {
	switch strings.ToLower(mode) {
	case "off", "none", "":
		return nil, nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log mode %q (want text, json or off)", mode)
	}
}

// debugMux serves net/http/pprof on its own mux: the profiling surface
// never touches the query listener, so -addr can stay public while
// -debug-addr binds to localhost.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// loadNetwork resolves -net / -synthetic into a network.
func loadNetwork(path, synthetic string, scale float64, seed int64) (*rangereach.Network, error) {
	switch {
	case path != "" && synthetic != "":
		return nil, errors.New("-net and -synthetic are mutually exclusive")
	case path != "":
		return rangereach.LoadNetwork(path)
	case synthetic != "":
		switch strings.ToLower(synthetic) {
		case "foursquare-like":
			return rangereach.FoursquareLike(scale, seed), nil
		case "gowalla-like":
			return rangereach.GowallaLike(scale, seed), nil
		case "weeplaces-like":
			return rangereach.WeeplacesLike(scale, seed), nil
		case "yelp-like":
			return rangereach.YelpLike(scale, seed), nil
		default:
			return nil, fmt.Errorf("unknown preset %q", synthetic)
		}
	default:
		return nil, errors.New("need -net or -synthetic")
	}
}

func methodByName(name string) (rangereach.Method, bool) {
	switch strings.ToLower(name) {
	case "3dreach":
		return rangereach.ThreeDReach, true
	case "3dreach-rev":
		return rangereach.ThreeDReachRev, true
	case "socreach":
		return rangereach.SocReach, true
	case "spareach-bfl":
		return rangereach.SpaReachBFL, true
	case "spareach-int":
		return rangereach.SpaReachINT, true
	case "georeach":
		return rangereach.GeoReach, true
	case "spareach-pll":
		return rangereach.SpaReachPLL, true
	case "spareach-feline":
		return rangereach.SpaReachFeline, true
	case "spareach-grail":
		return rangereach.SpaReachGRAIL, true
	case "naive":
		return rangereach.Naive, true
	case "auto":
		return rangereach.MethodAuto, true
	default:
		return 0, false
	}
}
