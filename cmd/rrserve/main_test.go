package main

import (
	"testing"

	rangereach "repro"
)

func TestLoadNetwork(t *testing.T) {
	if _, err := loadNetwork("", "", 1, 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadNetwork("x.gsn", "yelp-like", 1, 1); err == nil {
		t.Error("both sources accepted")
	}
	if _, err := loadNetwork("", "atlantis-like", 1, 1); err == nil {
		t.Error("unknown preset accepted")
	}
	net, err := loadNetwork("", "Gowalla-Like", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumVertices() == 0 {
		t.Error("empty synthetic network")
	}
}

func TestMethodByName(t *testing.T) {
	got, ok := methodByName("SpaReach-BFL")
	if !ok || got != rangereach.SpaReachBFL {
		t.Errorf("methodByName(SpaReach-BFL) = %v,%v", got, ok)
	}
	if _, ok := methodByName("quantum"); ok {
		t.Error("unknown method accepted")
	}
}
