package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// compareReport is the subset of the rrbench -json schema the regression
// gate reads. It parses every schema since rrbench/v1 — the fields here
// have only ever been added to.
type compareReport struct {
	Schema   string `json:"schema"`
	Datasets []struct {
		Name    string `json:"name"`
		Methods []struct {
			Method    string  `json:"method"`
			P50Micros float64 `json:"p50_us"`
		} `json:"methods"`
	} `json:"datasets"`
	ColdStart []struct {
		Dataset    string  `json:"dataset"`
		Method     string  `json:"method"`
		Mode       string  `json:"mode"`
		LoadMillis float64 `json:"load_ms"`
	} `json:"cold_start"`
}

func loadCompareReport(path string) (compareReport, error) {
	var r compareReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	if !strings.HasPrefix(r.Schema, "rrbench/v") {
		return r, fmt.Errorf("%s: unrecognized schema %q", path, r.Schema)
	}
	return r, nil
}

// p50Table flattens a report to (dataset, method) → p50 µs.
func p50Table(r compareReport) map[string]float64 {
	t := make(map[string]float64)
	for _, ds := range r.Datasets {
		for _, m := range ds.Methods {
			t[ds.Name+"/"+m.Method] = m.P50Micros
		}
	}
	return t
}

// runCompare is the bench-regression gate: it compares per-method p50
// latencies of one or more candidate runs against a committed baseline
// and fails (exit 1) only on order-of-magnitude regressions — a
// candidate must exceed factor× the baseline AND the absolute noise
// floor to count. Taking the min across candidate runs (CI runs the
// smoke config twice, interleaved) filters one-off scheduler spikes;
// the floor filters jitter on sub-floor latencies, which dominate
// small smoke configs. Methods present only on one side are skipped:
// the gate must survive methods being added or retired.
func runCompare(baselinePath string, candidatePaths []string, factor, floorUs float64) int {
	if len(candidatePaths) == 0 {
		fmt.Fprintln(os.Stderr, "rrbench: -compare needs candidate report paths as arguments")
		return 2
	}
	base, err := loadCompareReport(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrbench: baseline: %v\n", err)
		return 2
	}
	baseP50 := p50Table(base)

	// Best (minimum) p50 per key across all candidate runs.
	candP50 := make(map[string]float64)
	for _, path := range candidatePaths {
		cand, err := loadCompareReport(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrbench: candidate: %v\n", err)
			return 2
		}
		for key, p50 := range p50Table(cand) {
			if prev, ok := candP50[key]; !ok || p50 < prev {
				candP50[key] = p50
			}
		}
	}

	compared, regressed := 0, 0
	for key, cand := range candP50 {
		baseV, ok := baseP50[key]
		if !ok {
			continue
		}
		compared++
		if cand > baseV*factor && cand > baseV+floorUs {
			regressed++
			fmt.Fprintf(os.Stderr, "REGRESSION %s: p50 %.2fµs vs baseline %.2fµs (>%.1fx, floor %.0fµs)\n",
				key, cand, baseV, factor, floorUs)
		}
	}
	regressed += coldStartGate(candidatePaths)
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "rrbench: -compare matched no (dataset, method) rows — wrong baseline?")
		return 2
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "rrbench: %d/%d rows regressed beyond %.1fx\n", regressed, compared, factor)
		return 1
	}
	fmt.Printf("rrbench: no regressions in %d rows (threshold %.1fx, floor %.0fµs)\n", compared, factor, floorUs)
	return 0
}

// Cold-start gate thresholds: the mmap open of an index file must not
// cost more than coldStartFactor× its streaming decode plus the
// coldStartFloorMs noise floor. The decode path reads and rebuilds
// every structure while the mmap path only maps the file and validates
// section headers, so mmap slower than 10× decode (beyond jitter on
// millisecond-scale smoke files) means the zero-copy path started
// re-materializing — exactly the regression the format is meant to
// prevent. The candidate report carries both modes for the same file,
// so this gate is self-contained and needs no baseline row.
const (
	coldStartFactor  = 10.0
	coldStartFloorMs = 50.0
)

// coldStartGate checks every candidate's cold_start rows and returns
// the number of (dataset, method) pairs whose mmap open exceeded the
// decode-relative threshold in all candidate runs (taking the best
// mmap and worst decode across runs mirrors the p50 gate's noise
// filtering). Reports without a cold_start section pass vacuously —
// pre-v5 baselines and reduced runs must not fail the gate.
func coldStartGate(candidatePaths []string) int {
	bestMmap := make(map[string]float64)
	worstDecode := make(map[string]float64)
	for _, path := range candidatePaths {
		cand, err := loadCompareReport(path)
		if err != nil {
			continue // already surfaced by the p50 pass
		}
		for _, row := range cand.ColdStart {
			key := row.Dataset + "/" + row.Method
			switch row.Mode {
			case "mmap":
				if prev, ok := bestMmap[key]; !ok || row.LoadMillis < prev {
					bestMmap[key] = row.LoadMillis
				}
			case "decode":
				if prev, ok := worstDecode[key]; !ok || row.LoadMillis > prev {
					worstDecode[key] = row.LoadMillis
				}
			}
		}
	}
	failed := 0
	for key, mmapMs := range bestMmap {
		decodeMs, ok := worstDecode[key]
		if !ok {
			continue
		}
		if limit := decodeMs*coldStartFactor + coldStartFloorMs; mmapMs > limit {
			failed++
			fmt.Fprintf(os.Stderr, "COLD-START REGRESSION %s: mmap open %.2fms vs decode load %.2fms (limit %.2fms)\n",
				key, mmapMs, decodeMs, limit)
		}
	}
	return failed
}
