// Command rrbench regenerates the paper's evaluation artifacts over the
// calibrated synthetic datasets: Tables 3–6 and Figures 5–7, plus the
// ablations documented in DESIGN.md.
//
// Usage:
//
//	rrbench [-exp all|table3|table4|table5|table6|fig5|fig6|fig7|ablation-forest|ablation-compression|ablation-socreach|ablation-spareach|ablation-3d|ablation-streaming|latency|negative|update-churn]
//	        [-scale 1.0] [-queries 200] [-seed 1] [-j N] [-datasets foursquare-like,gowalla-like,...]
//	        [-csv figures.csv] [-json bench.json]
//	rrbench -compare baseline.json candidate.json [candidate2.json ...]
//
// -json writes a machine-readable performance report (per dataset and
// method: build time, per-phase build breakdown, index size, latency
// percentiles) regardless of -exp; use it to track regressions across
// commits.
//
// -compare switches to the regression-gate mode ci.sh uses: candidate
// reports are checked against the baseline per (dataset, method) — best
// p50 across the candidates — and the exit status is 1 only when a row
// regresses beyond -compare-factor AND the -compare-floor noise floor.
//
// Absolute latencies depend on the host; the paper's findings are about
// ordering and trend shapes, which EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, table3, table4, table5, table6, fig5, fig6, fig7, ablation-forest, ablation-compression, ablation-socreach, ablation-spareach, ablation-3d, ablation-streaming, latency, negative, update-churn, cold-start")
		scale    = flag.Float64("scale", 1.0, "dataset scale (1.0 ≈ 1% of the paper's sizes)")
		queries  = flag.Int("queries", 200, "queries averaged per data point (paper: 1000)")
		seed     = flag.Int64("seed", 1, "random seed for datasets and workloads")
		datasets = flag.String("datasets", "", "comma-separated preset subset (default: all four)")
		csvPath  = flag.String("csv", "", "also write figure series to this CSV file (tidy long format)")
		jsonPath = flag.String("json", "", "write a machine-readable perf report (build/size/latency per method) to this file")
		par      = flag.Int("j", runtime.NumCPU(), "worker bound per index build (1 = sequential; builds are deterministic at any setting)")

		compare       = flag.String("compare", "", "baseline perf report: compare the candidate report arguments against it and exit nonzero on p50 regressions")
		compareFactor = flag.Float64("compare-factor", 3.0, "with -compare, the p50 ratio a row must exceed to fail")
		compareFloor  = flag.Float64("compare-floor", 25, "with -compare, the absolute p50 increase in µs a row must also exceed to fail")
	)
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, flag.Args(), *compareFactor, *compareFloor))
	}

	cfg := bench.Config{
		Scale:       *scale,
		Seed:        *seed,
		Queries:     *queries,
		Parallelism: *par,
		Out:         os.Stdout,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	fmt.Printf("rrbench: scale=%.2f queries=%d seed=%d\n", *scale, *queries, *seed)
	s := bench.NewSuite(cfg)
	if len(s.Datasets()) == 0 {
		fmt.Fprintln(os.Stderr, "rrbench: no datasets selected (check -datasets names)")
		os.Exit(2)
	}

	run := func(name string, fn func()) {
		if *exp == "all" || *exp == name {
			fn()
		}
	}
	known := map[string]bool{
		"all": true, "table3": true, "table4": true, "table5": true,
		"table6": true, "fig5": true, "fig6": true, "fig7": true,
		"ablation-forest": true, "ablation-compression": true, "ablation-socreach": true, "ablation-spareach": true, "ablation-3d": true, "latency": true, "negative": true, "ablation-streaming": true, "update-churn": true, "cold-start": true,
	}
	if !known[*exp] {
		fmt.Fprintf(os.Stderr, "rrbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	var figures = map[string][]bench.FigureResult{}
	run("table3", func() { s.Table3() })
	// Tables 4 and 5 come from the same builds.
	if *exp == "all" || *exp == "table4" || *exp == "table5" {
		s.Table4And5()
	}
	run("table6", func() { s.Table6() })
	run("fig5", func() { figures["fig5"] = s.Figure5() })
	run("fig6", func() { figures["fig6"] = s.Figure6() })
	run("fig7", func() { figures["fig7"] = s.Figure7() })
	run("ablation-forest", func() { s.AblationForest() })
	run("ablation-compression", func() { s.AblationCompression() })
	run("ablation-socreach", func() { s.AblationSocReach() })
	run("ablation-spareach", func() { s.AblationSpaReach() })
	run("ablation-3d", func() { s.Ablation3DBackend() })
	run("ablation-streaming", func() { s.AblationStreaming() })
	run("latency", func() { s.LatencyProfile() })
	run("negative", func() { s.NegativeProfile() })
	run("update-churn", func() { s.UpdateChurn() })
	run("cold-start", func() { s.ColdStart() })
	if *exp == "all" {
		s.PositiveRates()
	}
	if *csvPath != "" && len(figures) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrbench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteFiguresCSV(f, figures); err != nil {
			_ = f.Close()
			fmt.Fprintf(os.Stderr, "rrbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rrbench: figure data written to %s\n", *csvPath)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrbench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WritePerfJSON(f, s.PerfReport()); err != nil {
			_ = f.Close()
			fmt.Fprintf(os.Stderr, "rrbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rrbench: perf report written to %s\n", *jsonPath)
	}
}
