// Command rrrouter fronts a sharded rrserve cluster: it loads a shard
// map (written by rrgen -shards), places each shard on a backend via
// consistent hashing, and serves the same /v1/query and /v1/batch API
// as rrserve by scatter-gathering over the shards.
//
// Usage:
//
//	rrrouter -shardmap net.shardmap.json -backends http://127.0.0.1:18741,http://127.0.0.1:18742
//	rrrouter -shardmap net.shardmap.json -backends ... -partial degrade -hedge 20ms
//	rrrouter -shardmap net.shardmap.json -backends ... -print-placement
//
// -print-placement writes one "shard<TAB>backend" line per shard and
// exits; launch scripts use it to start each rrserve process with the
// shard file the ring expects it to hold. -wait-backends polls every
// backend's /healthz before serving, so the router can be started
// concurrently with the shards.
//
// Endpoints:
//
//	POST /v1/query      same wire format as rrserve
//	POST /v1/batch      same wire format as rrserve (plus "partial" flag)
//	POST /v1/update     same wire format as rrserve; routed to the owning shard(s)
//	GET  /v1/trace/{id} one stitched cluster trace (router + shard spans)
//	GET  /v1/traces     recent retained traces, newest first
//	GET  /v1/cluster    federated cluster view (per-shard health, p99, generations, planner mix)
//	GET  /healthz       topology + per-shard down list
//	GET  /metrics       Prometheus text format (per-shard labels + federated rr_cluster_*)
//
// A request carrying a W3C traceparent header is always traced: the
// router propagates the trace id to every shard call, stitches the
// shards' execution stats into one trace, and serves it from
// /v1/trace/{id}. -trace-sample N additionally collects every request
// and retains all slow or errored traces plus 1 in N healthy ones.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/shard"
)

func main() {
	var (
		mapPath   = flag.String("shardmap", "", "shard map JSON written by rrgen -shards (required)")
		backends  = flag.String("backends", "", "comma-separated rrserve base URLs (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-shard request budget")
		hedge     = flag.Duration("hedge", 0, "hedge a shard call with a second request after this long (0 disables)")
		partial   = flag.String("partial", "fail", "partial-failure policy when a shard is unreachable: fail, degrade")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per backend on the placement ring (0 = default)")
		maxBody   = flag.Int64("max-body", 8<<20, "request body cap in bytes; oversized bodies get 413 (negative disables)")
		maxBatch  = flag.Int("max-batch", 8192, "queries accepted per batch request")
		downAfter = flag.Int("down-after", 3, "consecutive failures before a shard is marked down")
		cooldown  = flag.Duration("down-cooldown", 2*time.Second, "how long a marked-down shard is skipped before a half-open trial")
		logMode   = flag.String("log", "text", "request log format: text, json, off")
		printOnly = flag.Bool("print-placement", false, "print shard-to-backend placement and exit")
		waitFor   = flag.Duration("wait-backends", 0, "poll backend /healthz for up to this long before serving (0 disables)")

		traceSample = flag.Int("trace-sample", 0, "ambient trace collection: keep all slow/error traces plus 1 in N healthy ones (0 = only client-forced traceparent requests)")
		traceSlow   = flag.Duration("trace-slow", 100*time.Millisecond, "latency at which a collected trace is always retained")
		traceRing   = flag.Int("trace-ring", 256, "retained traces served by /v1/trace/{id}")
		federate    = flag.Duration("federate", 0, "scrape shard /metrics into rr_cluster_* on this interval (0 = on demand when /v1/cluster is hit)")
	)
	flag.Parse()

	if *mapPath == "" || *backends == "" {
		fmt.Fprintln(os.Stderr, "rrrouter: need -shardmap and -backends")
		os.Exit(2)
	}
	urls := splitBackends(*backends)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "rrrouter: -backends is empty")
		os.Exit(2)
	}

	m, err := shard.LoadMapFile(*mapPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrrouter: %v\n", err)
		os.Exit(1)
	}

	if *printOnly {
		placement := router.Placement(len(m.Shards), urls, *vnodes)
		for sid, backend := range placement {
			fmt.Printf("%d\t%s\n", sid, backend)
		}
		return
	}

	policy, err := router.ParsePolicy(*partial)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrrouter: %v\n", err)
		os.Exit(2)
	}
	logger, err := buildLogger(*logMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrrouter: %v\n", err)
		os.Exit(2)
	}

	if *waitFor > 0 {
		if err := waitBackends(urls, *waitFor); err != nil {
			fmt.Fprintf(os.Stderr, "rrrouter: %v\n", err)
			os.Exit(1)
		}
	}

	rt, err := router.New(router.Config{
		Map:          m,
		Backends:     urls,
		VNodes:       *vnodes,
		ShardTimeout: *timeout,
		Hedge:        *hedge,
		Policy:       policy,
		MaxBatch:     *maxBatch,
		MaxBodyBytes: *maxBody,
		DownAfter:    *downAfter,
		DownCooldown: *cooldown,
		Logger:       logger,
		TraceSample:  *traceSample,
		TraceSlow:    *traceSlow,
		TraceRing:    *traceRing,
		Federate:     *federate,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrrouter: %v\n", err)
		os.Exit(1)
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rrrouter: routing %q (%d shards, %s partition) across %d backends on %s\n",
		m.Name, len(m.Shards), m.Strategy, len(urls), *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "rrrouter: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rrrouter: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "rrrouter: shutdown: %v\n", err)
		}
	}
}

func splitBackends(s string) []string {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			urls = append(urls, strings.TrimRight(part, "/"))
		}
	}
	return urls
}

// waitBackends polls every backend's /healthz until all answer 200 or
// the deadline passes, so `rrrouter -wait-backends 30s` can be launched
// in the same breath as its shards.
func waitBackends(urls []string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	pending := make(map[string]bool, len(urls))
	for _, u := range urls {
		pending[u] = true
	}
	for len(pending) > 0 {
		for u := range pending {
			resp, err := client.Get(u + "/healthz")
			if err == nil {
				_ = resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					delete(pending, u)
				}
			}
		}
		if len(pending) == 0 {
			break
		}
		if time.Now().After(deadline) {
			var left []string
			for u := range pending {
				left = append(left, u)
			}
			return fmt.Errorf("backends not healthy after %s: %s", budget, strings.Join(left, ", "))
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil
}

// buildLogger resolves the -log flag; logs go to stderr so stdout stays
// clean for -print-placement consumers.
func buildLogger(mode string) (*slog.Logger, error) {
	switch strings.ToLower(mode) {
	case "off", "none", "":
		return nil, nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log mode %q (want text, json or off)", mode)
	}
}
