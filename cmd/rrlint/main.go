// Command rrlint runs the project's static-analysis suite
// (internal/lint) over the whole module: stdlib-only analyzers for
// 64-bit atomic alignment, nil-safe trace spans, clock-free hot paths,
// deterministic randomness, checked errors, lock discipline, and
// engine/persistence parity.
//
// Usage:
//
//	go run ./cmd/rrlint ./...
//	go run ./cmd/rrlint -list
//
// The package pattern argument is accepted for familiarity but the
// whole module is always analyzed — the cross-package checks
// (parityguard) need every package anyway. Exit status: 0 clean, 1
// findings, 2 load failure.
//
// Suppress an individual finding with a justified directive on the
// offending line or the line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	var (
		list = flag.Bool("list", false, "list the analyzers and exit")
		only = flag.String("only", "", "run a single analyzer by name")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		a := lint.ByName(*only)
		if a == nil {
			fmt.Fprintf(os.Stderr, "rrlint: unknown analyzer %q\n", *only)
			os.Exit(2)
		}
		analyzers = []*lint.Analyzer{a}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(mod, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "rrlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
