// Command rrlint runs the project's static-analysis suite
// (internal/lint) over the whole module: stdlib-only analyzers for
// 64-bit atomic alignment, nil-safe trace spans, clock-free hot paths,
// deterministic randomness, checked errors, lock discipline, and
// engine/persistence parity.
//
// Usage:
//
//	go run ./cmd/rrlint ./...
//	go run ./cmd/rrlint -list
//	go run ./cmd/rrlint -only lockorder -json ./...
//
// The package pattern argument is accepted for familiarity but the
// whole module is always analyzed — the cross-package checks
// (parityguard, lockorder) need every package anyway. Exit status: 0
// clean, 1 findings, 2 load failure.
//
// -json emits the stable rrlint/v1 schema on stdout: findings plus a
// per-analyzer report (finding count, wall millis), machine-readable
// for CI and editor integrations. -timing prints the per-analyzer
// wall-time table to stderr in text mode.
//
// Suppress an individual finding with a justified directive on the
// offending line or the line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

// jsonSchema is the version tag of the -json output. Bump only on
// incompatible shape changes; additive fields keep v1.
const jsonSchema = "rrlint/v1"

// jsonReport is the -json output shape.
type jsonReport struct {
	Schema    string         `json:"schema"`
	Findings  []jsonFinding  `json:"findings"`
	Analyzers []jsonAnalyzer `json:"analyzers"`
}

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonAnalyzer struct {
	Name     string  `json:"name"`
	Findings int     `json:"findings"`
	Millis   float64 `json:"millis"`
}

func main() {
	var (
		list   = flag.Bool("list", false, "list the analyzers and exit")
		only   = flag.String("only", "", "run a single analyzer by name")
		asJSON = flag.Bool("json", false, "emit the rrlint/v1 JSON report on stdout")
		timing = flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		a := lint.ByName(*only)
		if a == nil {
			fmt.Fprintf(os.Stderr, "rrlint: unknown analyzer %q\n", *only)
			os.Exit(2)
		}
		analyzers = []*lint.Analyzer{a}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		os.Exit(2)
	}
	findings, timings := lint.RunTimed(mod, analyzers)

	if *asJSON {
		report := jsonReport{
			Schema:   jsonSchema,
			Findings: make([]jsonFinding, 0, len(findings)),
		}
		for _, f := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		for _, tm := range timings {
			report.Analyzers = append(report.Analyzers, jsonAnalyzer{
				Name:     tm.Name,
				Findings: tm.Findings,
				Millis:   float64(tm.Duration.Microseconds()) / 1000,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "%-14s %4d finding(s) %8.1fms\n",
				tm.Name, tm.Findings, float64(tm.Duration.Microseconds())/1000)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "rrlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
