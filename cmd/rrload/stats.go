package main

import (
	"sort"
	"time"
)

// summary holds exact latency percentiles computed from the full
// sample set — no histogram buckets, no approximation, since the
// harness keeps every sample in memory anyway.
type summary struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// summarize sorts samples in place and extracts the percentile set.
// Empty input yields a zero summary.
func summarize(samples []time.Duration) summary {
	if len(samples) == 0 {
		return summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	return summary{
		Count: len(samples),
		Mean:  total / time.Duration(len(samples)),
		P50:   percentile(samples, 0.50),
		P95:   percentile(samples, 0.95),
		P99:   percentile(samples, 0.99),
		P999:  percentile(samples, 0.999),
		Max:   samples[len(samples)-1],
	}
}

// percentile returns the exact q-quantile of a sorted sample set using
// the nearest-rank method: the smallest value such that at least q of
// the samples are <= it.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*q+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
