// Command rrload is an open-loop load harness for rrrouter and rrserve.
// It fires /v1/query requests on a fixed schedule — arrivals do not
// wait for earlier responses — and measures each latency from the
// request's *intended* send time, so a stalled server inflates the
// reported percentiles instead of silently slowing the offered rate
// (no coordinated omission).
//
// Usage:
//
//	rrload -target http://127.0.0.1:8080 -rate 500 -duration 30s
//	rrload -target ... -zipf-s 1.3 -hot-frac 0.5 -slo 50ms -fail-on-error
//
// The workload skews like production traffic: vertex popularity is
// zipfian (a random rank-to-vertex mapping keeps hot vertices spread
// across the id space) and -hot-frac sends that fraction of queries
// into a small hot sub-region of the space. Vertex count and spatial
// extent are discovered from the target's /healthz and can be
// overridden with -vertices / -space.
//
// Exit status: 0 on success, 1 when -slo is exceeded or -fail-on-error
// saw request errors, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

type queryBody struct {
	Vertex int        `json:"vertex"`
	Region [4]float64 `json:"region"`
}

type report struct {
	Target       string        `json:"target"`
	Rate         float64       `json:"rate_rps"`
	Duration     time.Duration `json:"duration_ns"`
	Sent         int           `json:"sent"`
	OK           int           `json:"ok"`
	Errors       int           `json:"errors"`
	Positives    int           `json:"positives"`
	AchievedRate float64       `json:"achieved_rps"`
	// Latency summarizes successful requests only; failures are counted
	// in Errors, not mixed into the percentiles.
	Latency       summary       `json:"latency"`
	MaxSchedLag   time.Duration `json:"max_sched_lag_ns"`
	SLO           time.Duration `json:"slo_ns,omitempty"`
	SLOViolated   bool          `json:"slo_violated"`
	ErrorExamples []string      `json:"error_examples,omitempty"`
}

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "rrrouter or rrserve base URL")
		rate     = flag.Float64("rate", 200, "offered request rate per second (open loop)")
		duration = flag.Duration("duration", 10*time.Second, "test length")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		vertices = flag.Int("vertices", 0, "vertex id space (0 = discover from /healthz)")
		spaceStr = flag.String("space", "", "query space minx,miny,maxx,maxy (default: discover from /healthz)")
		extent   = flag.Float64("extent", 0.05, "query region side length as a fraction of the space")
		zipfS    = flag.Float64("zipf-s", 1.2, "zipf exponent for vertex popularity (must be > 1)")
		hotFrac  = flag.Float64("hot-frac", 0, "fraction of queries aimed at the hot sub-region")
		hotSize  = flag.Float64("hot-size", 0.1, "hot sub-region side length as a fraction of the space")
		seed     = flag.Int64("seed", 1, "workload seed")
		wait     = flag.Duration("wait", 0, "poll target /healthz for up to this long before starting")
		slo      = flag.Duration("slo", 0, "exit 1 when p99 latency exceeds this (0 disables)")
		failErr  = flag.Bool("fail-on-error", false, "exit 1 when any request fails")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON on stdout")
	)
	flag.Parse()

	if *rate <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "rrload: -rate and -duration must be positive")
		os.Exit(2)
	}
	if *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "rrload: -zipf-s must be > 1")
		os.Exit(2)
	}
	base := strings.TrimRight(*target, "/")

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	if *wait > 0 {
		if err := waitHealthy(client, base, *wait); err != nil {
			fmt.Fprintf(os.Stderr, "rrload: %v\n", err)
			os.Exit(1)
		}
	}

	nv, space, err := discover(client, base, *vertices, *spaceStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrload: %v\n", err)
		os.Exit(1)
	}

	payloads := buildPayloads(workload{
		vertices: nv,
		space:    space,
		extent:   *extent,
		zipfS:    *zipfS,
		hotFrac:  *hotFrac,
		hotSize:  *hotSize,
		seed:     *seed,
		n:        int(*rate * duration.Seconds()),
	})
	if len(payloads) == 0 {
		fmt.Fprintln(os.Stderr, "rrload: rate*duration yields zero requests")
		os.Exit(2)
	}

	rep := run(client, base+"/v1/query", payloads, *rate)
	rep.Target = base
	rep.Rate = *rate
	rep.Duration = *duration
	rep.SLO = *slo
	rep.SLOViolated = *slo > 0 && rep.Latency.P99 > *slo

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Print(formatReport(rep))
	}

	switch {
	case rep.SLOViolated:
		fmt.Fprintf(os.Stderr, "rrload: SLO violated: p99 %v > %v\n", rep.Latency.P99, *slo)
		os.Exit(1)
	case *failErr && rep.Errors > 0:
		fmt.Fprintf(os.Stderr, "rrload: %d request errors\n", rep.Errors)
		os.Exit(1)
	}
}

// workload parameterizes payload generation.
type workload struct {
	vertices int
	space    [4]float64
	extent   float64
	zipfS    float64
	hotFrac  float64
	hotSize  float64
	seed     int64
	n        int
}

// buildPayloads pre-marshals every request body so the hot loop does no
// allocation-heavy JSON work that would distort latency measurements.
func buildPayloads(w workload) [][]byte {
	rng := rand.New(rand.NewSource(w.seed))
	zipf := rand.NewZipf(rng, w.zipfS, 1, uint64(w.vertices-1))
	// The zipf draw returns a popularity *rank*; a random permutation
	// maps ranks to vertex ids so the hot set is not just ids 0..k.
	rankToVertex := rng.Perm(w.vertices)

	width := w.space[2] - w.space[0]
	height := w.space[3] - w.space[1]
	rw, rh := width*w.extent, height*w.extent
	// Hot region anchored at a random offset, once per run.
	hw, hh := width*w.hotSize, height*w.hotSize
	hx := w.space[0] + rng.Float64()*(width-hw)
	hy := w.space[1] + rng.Float64()*(height-hh)

	payloads := make([][]byte, w.n)
	for i := range payloads {
		var x, y float64
		if rng.Float64() < w.hotFrac {
			x = hx + rng.Float64()*(hw-min(rw, hw))
			y = hy + rng.Float64()*(hh-min(rh, hh))
		} else {
			x = w.space[0] + rng.Float64()*(width-rw)
			y = w.space[1] + rng.Float64()*(height-rh)
		}
		body, err := json.Marshal(queryBody{
			Vertex: rankToVertex[int(zipf.Uint64())],
			Region: [4]float64{x, y, x + rw, y + rh},
		})
		if err != nil {
			panic(err) // struct marshal cannot fail
		}
		payloads[i] = body
	}
	return payloads
}

// run fires payloads on the open-loop schedule and aggregates results.
// Each request's latency clock starts at its scheduled send time: if
// the harness (or the server) falls behind, the delay is charged to the
// measurement rather than hidden by a slowed arrival rate.
func run(client *http.Client, url string, payloads [][]byte, rate float64) report {
	interval := time.Duration(float64(time.Second) / rate)
	type outcome struct {
		latency time.Duration
		lag     time.Duration
		ok      bool
		pos     bool
		errMsg  string
	}
	results := make([]outcome, len(payloads))
	start := time.Now().Add(50 * time.Millisecond) // headroom so request 0 is not late by construction
	var wg sync.WaitGroup
	for i := range payloads {
		sched := start.Add(time.Duration(i) * interval)
		time.Sleep(time.Until(sched))
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			results[i].lag = time.Since(sched)
			resp, err := client.Post(url, "application/json", bytes.NewReader(payloads[i]))
			if err != nil {
				results[i].latency = time.Since(sched)
				results[i].errMsg = err.Error()
				return
			}
			var qr struct {
				Reachable bool `json:"reachable"`
			}
			decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&qr)
			_ = resp.Body.Close()
			results[i].latency = time.Since(sched)
			switch {
			case resp.StatusCode != http.StatusOK:
				results[i].errMsg = "status " + strconv.Itoa(resp.StatusCode)
			case decErr != nil:
				results[i].errMsg = "decode: " + decErr.Error()
			default:
				results[i].ok = true
				results[i].pos = qr.Reachable
			}
		}(i, sched)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := report{Sent: len(payloads)}
	// Only successful requests feed the percentile set: a fast failure
	// (connection refused in microseconds) would otherwise deflate
	// p50/p99 and let the -slo gate pass while the backend is falling
	// over. Errors stay visible through the error count.
	latencies := make([]time.Duration, 0, len(results))
	for _, r := range results {
		if r.lag > rep.MaxSchedLag {
			rep.MaxSchedLag = r.lag
		}
		switch {
		case r.ok:
			rep.OK++
			latencies = append(latencies, r.latency)
			if r.pos {
				rep.Positives++
			}
		default:
			rep.Errors++
			if len(rep.ErrorExamples) < 3 {
				rep.ErrorExamples = append(rep.ErrorExamples, r.errMsg)
			}
		}
	}
	rep.Latency = summarize(latencies)
	if wall > 0 {
		rep.AchievedRate = float64(len(payloads)) / wall.Seconds()
	}
	return rep
}

func formatReport(r report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "target     %s\n", r.Target)
	fmt.Fprintf(&b, "offered    %.0f req/s for %v (%d requests)\n", r.Rate, r.Duration, r.Sent)
	fmt.Fprintf(&b, "achieved   %.1f req/s\n", r.AchievedRate)
	fmt.Fprintf(&b, "ok         %d (%d positive)\n", r.OK, r.Positives)
	fmt.Fprintf(&b, "errors     %d\n", r.Errors)
	for _, e := range r.ErrorExamples {
		fmt.Fprintf(&b, "  e.g. %s\n", e)
	}
	fmt.Fprintf(&b, "latency    p50=%v p95=%v p99=%v p999=%v max=%v\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.P999, r.Latency.Max)
	fmt.Fprintf(&b, "sched lag  max=%v\n", r.MaxSchedLag)
	if r.SLO > 0 {
		verdict := "met"
		if r.SLOViolated {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(&b, "slo        p99 <= %v: %s\n", r.SLO, verdict)
	}
	return b.String()
}

// discover fills vertex count and space extent from the target's
// /healthz, honoring explicit flag overrides. rrrouter reports both;
// plain rrserve reports only the vertex count, so -space is required
// when load-testing a single shard directly.
func discover(client *http.Client, base string, vertices int, spaceStr string) (int, [4]float64, error) {
	var space [4]float64
	haveSpace := false
	if spaceStr != "" {
		parts := strings.Split(spaceStr, ",")
		if len(parts) != 4 {
			return 0, space, fmt.Errorf("-space wants minx,miny,maxx,maxy, got %q", spaceStr)
		}
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return 0, space, fmt.Errorf("-space: %v", err)
			}
			space[i] = v
		}
		haveSpace = true
	}
	if vertices > 0 && haveSpace {
		return vertices, space, nil
	}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, space, fmt.Errorf("discover: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return 0, space, fmt.Errorf("discover: healthz status %d", resp.StatusCode)
	}
	var hz struct {
		Vertices int        `json:"vertices"`
		Space    [4]float64 `json:"space"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hz); err != nil {
		return 0, space, fmt.Errorf("discover: %v", err)
	}
	if vertices <= 0 {
		vertices = hz.Vertices
	}
	if !haveSpace {
		space = hz.Space
	}
	if vertices <= 0 {
		return 0, space, fmt.Errorf("target did not report a vertex count; pass -vertices")
	}
	if space[2] <= space[0] || space[3] <= space[1] {
		return 0, space, fmt.Errorf("target did not report a usable space extent; pass -space")
	}
	return vertices, space, nil
}

func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("target not healthy after %v", budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
