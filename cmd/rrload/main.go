// Command rrload is an open-loop load harness for rrrouter and rrserve.
// It fires /v1/query requests on a fixed schedule — arrivals do not
// wait for earlier responses — and measures each latency from the
// request's *intended* send time, so a stalled server inflates the
// reported percentiles instead of silently slowing the offered rate
// (no coordinated omission).
//
// Usage:
//
//	rrload -target http://127.0.0.1:8080 -rate 500 -duration 30s
//	rrload -target ... -zipf-s 1.3 -hot-frac 0.5 -slo 50ms -fail-on-error
//	rrload -target ... -rate 200 -update-rate 50 -fail-on-error
//
// The workload skews like production traffic: vertex popularity is
// zipfian (a random rank-to-vertex mapping keeps hot vertices spread
// across the id space) and -hot-frac sends that fraction of queries
// into a small hot sub-region of the space. Vertex count and spatial
// extent are discovered from the target's /healthz and can be
// overridden with -vertices / -space.
//
// -update-rate N runs a concurrent update stream against the same
// target's /v1/update (rrserve -dynamic, or rrrouter fronting dynamic
// shards) while the query load is in flight. Unlike the query stream
// it is closed-loop — each op waits for its response, because later
// ops depend on earlier answers (deletes target edges the stream
// added, moves target venues it created, new vertex ids widen the id
// space). The stream asserts that the published generation in every
// response is non-decreasing; a regression fails the run regardless
// of -fail-on-error, since it means readers saw time go backwards.
//
// -json emits the report as a single "rrload/v1" JSON document on
// stdout: achieved rate, per-outcome counts (ok, status_NNN, timeout,
// network, decode), exact percentiles from the full sample set, and
// the SLO verdict. Update-stream fields (updates, update_errors,
// last_gen, gen_monotonic) are additive, so the schema stays v1. -trace sends a W3C traceparent with every request
// so a fronting rrrouter collects all of them, then fetches the
// slowest request's stitched trace from /v1/trace/{id} and prints the
// per-shard breakdown (to stderr under -json, keeping stdout machine
// readable).
//
// Exit status: 0 on success, 1 when -slo is exceeded or -fail-on-error
// saw request errors, 2 on usage errors.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

type queryBody struct {
	Vertex int        `json:"vertex"`
	Region [4]float64 `json:"region"`
}

// reportSchema names the -json wire format so downstream tooling can
// reject a report produced by an incompatible rrload.
const reportSchema = "rrload/v1"

type report struct {
	Schema       string        `json:"schema"`
	Target       string        `json:"target"`
	Rate         float64       `json:"rate_rps"`
	Duration     time.Duration `json:"duration_ns"`
	Sent         int           `json:"sent"`
	OK           int           `json:"ok"`
	Errors       int           `json:"errors"`
	Positives    int           `json:"positives"`
	AchievedRate float64       `json:"achieved_rps"`
	// Outcomes counts every request by disposition: "ok", "status_NNN"
	// (non-200 HTTP answer), "timeout" (client deadline), "network"
	// (dial/transport failure), "decode" (unparseable 200 body). The
	// values always sum to Sent.
	Outcomes map[string]int64 `json:"outcomes"`
	// Latency summarizes successful requests only; failures are counted
	// in Errors, not mixed into the percentiles.
	Latency       summary       `json:"latency"`
	MaxSchedLag   time.Duration `json:"max_sched_lag_ns"`
	SLO           time.Duration `json:"slo_ns,omitempty"`
	SLOViolated   bool          `json:"slo_violated"`
	ErrorExamples []string      `json:"error_examples,omitempty"`
	// SlowestTraceID is the trace id of the slowest request when -trace
	// is on; fetch it from the router's /v1/trace/{id} for the stitched
	// per-shard breakdown.
	SlowestTraceID string `json:"slowest_trace_id,omitempty"`
	// Update-stream fields, populated when -update-rate > 0. These are
	// additive to the v1 schema: a plain query run omits them.
	Updates        int              `json:"updates,omitempty"`
	UpdateErrors   int              `json:"update_errors,omitempty"`
	UpdateOutcomes map[string]int64 `json:"update_outcomes,omitempty"`
	LastGen        uint64           `json:"last_gen,omitempty"`
	// GenMonotonic is false when any update response reported a lower
	// generation than an earlier one — a serving bug, and an exit-1
	// condition independent of -fail-on-error. True when no updates ran.
	GenMonotonic bool `json:"gen_monotonic"`
}

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "rrrouter or rrserve base URL")
		rate     = flag.Float64("rate", 200, "offered request rate per second (open loop)")
		duration = flag.Duration("duration", 10*time.Second, "test length")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		vertices = flag.Int("vertices", 0, "vertex id space (0 = discover from /healthz)")
		spaceStr = flag.String("space", "", "query space minx,miny,maxx,maxy (default: discover from /healthz)")
		extent   = flag.Float64("extent", 0.05, "query region side length as a fraction of the space")
		zipfS    = flag.Float64("zipf-s", 1.2, "zipf exponent for vertex popularity (must be > 1)")
		hotFrac  = flag.Float64("hot-frac", 0, "fraction of queries aimed at the hot sub-region")
		hotSize  = flag.Float64("hot-size", 0.1, "hot sub-region side length as a fraction of the space")
		seed     = flag.Int64("seed", 1, "workload seed")
		wait     = flag.Duration("wait", 0, "poll target /healthz for up to this long before starting")
		slo      = flag.Duration("slo", 0, "exit 1 when p99 latency exceeds this (0 disables)")
		failErr  = flag.Bool("fail-on-error", false, "exit 1 when any request fails")
		jsonOut  = flag.Bool("json", false, "emit the report as rrload/v1 JSON on stdout")
		doTrace  = flag.Bool("trace", false, "send a traceparent with every request and print the slowest request's stitched trace (target must be rrrouter)")
		updRate  = flag.Float64("update-rate", 0, "offered update ops per second against /v1/update while queries run (0 disables; target must serve a dynamic index)")
	)
	flag.Parse()

	if *rate <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "rrload: -rate and -duration must be positive")
		os.Exit(2)
	}
	if *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "rrload: -zipf-s must be > 1")
		os.Exit(2)
	}
	base := strings.TrimRight(*target, "/")

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	if *wait > 0 {
		if err := waitHealthy(client, base, *wait); err != nil {
			fmt.Fprintf(os.Stderr, "rrload: %v\n", err)
			os.Exit(1)
		}
	}

	nv, space, err := discover(client, base, *vertices, *spaceStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrload: %v\n", err)
		os.Exit(1)
	}

	payloads := buildPayloads(workload{
		vertices: nv,
		space:    space,
		extent:   *extent,
		zipfS:    *zipfS,
		hotFrac:  *hotFrac,
		hotSize:  *hotSize,
		seed:     *seed,
		n:        int(*rate * duration.Seconds()),
	})
	if len(payloads) == 0 {
		fmt.Fprintln(os.Stderr, "rrload: rate*duration yields zero requests")
		os.Exit(2)
	}

	var (
		updSt   updateStats
		updStop chan struct{}
		updDone chan struct{}
	)
	if *updRate > 0 {
		updStop, updDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(updDone)
			updSt = runUpdates(client, base, *updRate, nv, space, *seed, updStop)
		}()
	}

	rep := run(client, base+"/v1/query", payloads, *rate, *doTrace)
	rep.GenMonotonic = true
	if *updRate > 0 {
		close(updStop)
		<-updDone
		rep.Updates = updSt.sent
		rep.UpdateErrors = updSt.errors
		rep.UpdateOutcomes = updSt.outcomes
		rep.LastGen = updSt.lastGen
		rep.GenMonotonic = updSt.monotonic
		rep.ErrorExamples = append(rep.ErrorExamples, updSt.examples...)
	}
	rep.Schema = reportSchema
	rep.Target = base
	rep.Rate = *rate
	rep.Duration = *duration
	rep.SLO = *slo
	rep.SLOViolated = *slo > 0 && rep.Latency.P99 > *slo

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Print(formatReport(rep))
	}

	if *doTrace && rep.SlowestTraceID != "" {
		// Under -json the breakdown goes to stderr so stdout stays a
		// single parseable document.
		out := io.Writer(os.Stdout)
		if *jsonOut {
			out = os.Stderr
		}
		printSlowestTrace(client, base, rep.SlowestTraceID, out)
	}

	switch {
	case !rep.GenMonotonic:
		fmt.Fprintln(os.Stderr, "rrload: update generation regressed — readers observed time going backwards")
		os.Exit(1)
	case rep.SLOViolated:
		fmt.Fprintf(os.Stderr, "rrload: SLO violated: p99 %v > %v\n", rep.Latency.P99, *slo)
		os.Exit(1)
	case *failErr && (rep.Errors > 0 || rep.UpdateErrors > 0):
		fmt.Fprintf(os.Stderr, "rrload: %d query errors, %d update errors\n", rep.Errors, rep.UpdateErrors)
		os.Exit(1)
	}
}

// workload parameterizes payload generation.
type workload struct {
	vertices int
	space    [4]float64
	extent   float64
	zipfS    float64
	hotFrac  float64
	hotSize  float64
	seed     int64
	n        int
}

// buildPayloads pre-marshals every request body so the hot loop does no
// allocation-heavy JSON work that would distort latency measurements.
func buildPayloads(w workload) [][]byte {
	rng := rand.New(rand.NewSource(w.seed))
	zipf := rand.NewZipf(rng, w.zipfS, 1, uint64(w.vertices-1))
	// The zipf draw returns a popularity *rank*; a random permutation
	// maps ranks to vertex ids so the hot set is not just ids 0..k.
	rankToVertex := rng.Perm(w.vertices)

	width := w.space[2] - w.space[0]
	height := w.space[3] - w.space[1]
	rw, rh := width*w.extent, height*w.extent
	// Hot region anchored at a random offset, once per run.
	hw, hh := width*w.hotSize, height*w.hotSize
	hx := w.space[0] + rng.Float64()*(width-hw)
	hy := w.space[1] + rng.Float64()*(height-hh)

	payloads := make([][]byte, w.n)
	for i := range payloads {
		var x, y float64
		if rng.Float64() < w.hotFrac {
			x = hx + rng.Float64()*(hw-min(rw, hw))
			y = hy + rng.Float64()*(hh-min(rh, hh))
		} else {
			x = w.space[0] + rng.Float64()*(width-rw)
			y = w.space[1] + rng.Float64()*(height-rh)
		}
		body, err := json.Marshal(queryBody{
			Vertex: rankToVertex[int(zipf.Uint64())],
			Region: [4]float64{x, y, x + rw, y + rh},
		})
		if err != nil {
			panic(err) // struct marshal cannot fail
		}
		payloads[i] = body
	}
	return payloads
}

// run fires payloads on the open-loop schedule and aggregates results.
// Each request's latency clock starts at its scheduled send time: if
// the harness (or the server) falls behind, the delay is charged to the
// measurement rather than hidden by a slowed arrival rate.
func run(client *http.Client, url string, payloads [][]byte, rate float64, traced bool) report {
	interval := time.Duration(float64(time.Second) / rate)
	type outcome struct {
		latency time.Duration
		lag     time.Duration
		kind    string // "ok", "status_NNN", "timeout", "network", "decode"
		pos     bool
		errMsg  string
		traceID string
	}
	results := make([]outcome, len(payloads))
	start := time.Now().Add(50 * time.Millisecond) // headroom so request 0 is not late by construction
	var wg sync.WaitGroup
	for i := range payloads {
		sched := start.Add(time.Duration(i) * interval)
		time.Sleep(time.Until(sched))
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			results[i].lag = time.Since(sched)
			req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payloads[i]))
			if err != nil {
				results[i].kind, results[i].errMsg = "network", err.Error()
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if traced {
				// Every request gets its own trace id; a fronting
				// rrrouter treats the header as a forced trace and
				// retains the stitched result in its ring.
				tid := trace.NewTraceID()
				req.Header.Set(trace.TraceparentHeader, trace.FormatTraceparent(tid, trace.NewSpanID()))
				results[i].traceID = tid
			}
			resp, err := client.Do(req)
			if err != nil {
				results[i].latency = time.Since(sched)
				results[i].kind, results[i].errMsg = errKind(err), err.Error()
				return
			}
			var qr struct {
				Reachable bool `json:"reachable"`
			}
			decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&qr)
			_ = resp.Body.Close()
			results[i].latency = time.Since(sched)
			switch {
			case resp.StatusCode != http.StatusOK:
				results[i].kind = "status_" + strconv.Itoa(resp.StatusCode)
				results[i].errMsg = "status " + strconv.Itoa(resp.StatusCode)
			case decErr != nil:
				results[i].kind = "decode"
				results[i].errMsg = "decode: " + decErr.Error()
			default:
				results[i].kind = "ok"
				results[i].pos = qr.Reachable
			}
		}(i, sched)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := report{Sent: len(payloads), Outcomes: make(map[string]int64)}
	// Only successful requests feed the percentile set: a fast failure
	// (connection refused in microseconds) would otherwise deflate
	// p50/p99 and let the -slo gate pass while the backend is falling
	// over. Errors stay visible through the error count.
	latencies := make([]time.Duration, 0, len(results))
	var slowest time.Duration
	for _, r := range results {
		if r.lag > rep.MaxSchedLag {
			rep.MaxSchedLag = r.lag
		}
		rep.Outcomes[r.kind]++
		// The slowest request overall — errored or not — is the one
		// whose stitched trace explains where time went; errored traces
		// are always retained by the router's tail sampler.
		if r.traceID != "" && r.latency >= slowest {
			slowest, rep.SlowestTraceID = r.latency, r.traceID
		}
		switch {
		case r.kind == "ok":
			rep.OK++
			latencies = append(latencies, r.latency)
			if r.pos {
				rep.Positives++
			}
		default:
			rep.Errors++
			if len(rep.ErrorExamples) < 3 {
				rep.ErrorExamples = append(rep.ErrorExamples, r.errMsg)
			}
		}
	}
	rep.Latency = summarize(latencies)
	if wall > 0 {
		rep.AchievedRate = float64(len(payloads)) / wall.Seconds()
	}
	return rep
}

// updateBody is the /v1/update wire format shared by rrserve and
// rrrouter.
type updateBody struct {
	Op     string  `json:"op"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	Vertex int     `json:"vertex"`
}

// updateStats aggregates the closed-loop update stream's outcome.
type updateStats struct {
	sent      int
	errors    int
	outcomes  map[string]int64
	lastGen   uint64
	monotonic bool
	examples  []string
}

// runUpdates drives a closed-loop update stream against /v1/update at
// roughly rate ops/sec until stop closes. Closed-loop is deliberate:
// the op mix is stateful — deletes target edges this stream added,
// moves target venues it created, and new vertex ids from add_user /
// add_venue widen the id space for later edges — so each op needs its
// predecessor's answer. If the server can't keep up, the achieved
// update rate degrades instead of requests piling up.
//
// Every 200 response carries the published snapshot generation; the
// stream records the high-water mark and flags any regression, which
// would mean the server published snapshots out of order.
func runUpdates(client *http.Client, base string, rate float64, nv int, space [4]float64, seed int64, stop <-chan struct{}) updateStats {
	st := updateStats{outcomes: make(map[string]int64), monotonic: true}
	rng := rand.New(rand.NewSource(seed + 0x5eed))
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()

	var (
		edges    [][2]int        // edges this stream added and has not yet deleted
		edgeSeen map[[2]int]bool // engines dedup edges, so the tracked set must too
		venues   []int           // venue ids this stream created (safe move targets)
	)
	edgeSeen = make(map[[2]int]bool)
	randPoint := func() (float64, float64) {
		return space[0] + rng.Float64()*(space[2]-space[0]),
			space[1] + rng.Float64()*(space[3]-space[1])
	}

	for {
		select {
		case <-stop:
			return st
		case <-tick.C:
		}

		var body updateBody
		switch k := rng.Intn(10); {
		case k < 1:
			body = updateBody{Op: "add_user"}
		case k < 3:
			x, y := randPoint()
			body = updateBody{Op: "add_venue", X: x, Y: y}
		case k < 5 && len(edges) > 0:
			i := rng.Intn(len(edges))
			e := edges[i]
			edges[i] = edges[len(edges)-1]
			edges = edges[:len(edges)-1]
			delete(edgeSeen, e)
			body = updateBody{Op: "del_edge", From: e[0], To: e[1]}
		case k < 7 && len(venues) > 0:
			x, y := randPoint()
			body = updateBody{Op: "move_venue", Vertex: venues[rng.Intn(len(venues))], X: x, Y: y}
		default:
			u, v := rng.Intn(nv), rng.Intn(nv)
			body = updateBody{Op: "add_edge", From: u, To: v}
		}

		st.sent++
		buf, err := json.Marshal(body)
		if err != nil {
			panic(err) // struct marshal cannot fail
		}
		resp, err := client.Post(base+"/v1/update", "application/json", bytes.NewReader(buf))
		if err != nil {
			st.errors++
			st.outcomes[errKind(err)]++
			if len(st.examples) < 3 {
				st.examples = append(st.examples, "update: "+err.Error())
			}
			continue
		}
		var ur struct {
			ID  *int   `json:"id"`
			Gen uint64 `json:"gen"`
		}
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ur)
		_ = resp.Body.Close()
		switch {
		case resp.StatusCode != http.StatusOK:
			st.errors++
			st.outcomes["status_"+strconv.Itoa(resp.StatusCode)]++
			if len(st.examples) < 3 {
				st.examples = append(st.examples, "update "+body.Op+": status "+strconv.Itoa(resp.StatusCode))
			}
		case decErr != nil:
			st.errors++
			st.outcomes["decode"]++
			if len(st.examples) < 3 {
				st.examples = append(st.examples, "update decode: "+decErr.Error())
			}
		default:
			st.outcomes["ok"]++
			if ur.Gen < st.lastGen {
				st.monotonic = false
			}
			if ur.Gen > st.lastGen {
				st.lastGen = ur.Gen
			}
			switch body.Op {
			case "add_user", "add_venue":
				if ur.ID != nil {
					if *ur.ID >= nv {
						nv = *ur.ID + 1
					}
					if body.Op == "add_venue" {
						venues = append(venues, *ur.ID)
					}
				}
			case "add_edge":
				// Engines drop self-loops and duplicate edges, so only a
				// novel non-loop edge is a safe future delete target.
				e := [2]int{body.From, body.To}
				if e[0] != e[1] && !edgeSeen[e] {
					edgeSeen[e] = true
					edges = append(edges, e)
				}
			}
		}
	}
}

// errKind classifies a transport-level failure: a client-side deadline
// reads "timeout", everything else (refused connection, reset, DNS)
// reads "network".
func errKind(err error) string {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout"
	}
	return "network"
}

// printSlowestTrace fetches the stitched cluster trace of the slowest
// request and prints a per-span breakdown. The router finishes
// early-exit traces asynchronously, so a short retry window covers
// stragglers; a plain rrserve target (no /v1/trace) or an evicted
// entry degrades to a note rather than an error — the load report
// already stood on its own.
func printSlowestTrace(client *http.Client, base, id string, w io.Writer) {
	var ct trace.ClusterTrace
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := client.Get(base + "/v1/trace/" + id)
		if err == nil {
			decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ct)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK && decErr == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			_, _ = fmt.Fprintf(w, "slowest trace %s: not available from %s/v1/trace (target is not rrrouter, or the entry was evicted from the ring)\n", id, base)
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	_, _ = fmt.Fprintf(w, "slowest trace %s endpoint=%s status=%d reason=%s duration=%v spans=%d\n",
		ct.TraceID, ct.Endpoint, ct.Status, ct.Reason, time.Duration(ct.DurationNS), len(ct.Spans))
	for _, sp := range ct.Spans {
		shard := "-"
		if sp.Shard != trace.NoShard {
			shard = strconv.Itoa(sp.Shard)
		}
		_, _ = fmt.Fprintf(w, "  span name=%s tier=%s shard=%s start=%v dur=%v",
			sp.Name, sp.Tier, shard, time.Duration(sp.StartNS), time.Duration(sp.DurationNS))
		if sp.Err != "" {
			_, _ = fmt.Fprintf(w, " err=%q", sp.Err)
		}
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			_, _ = fmt.Fprintf(w, " %s=%s", k, sp.Attrs[k])
		}
		_, _ = fmt.Fprintln(w)
	}
}

func formatReport(r report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "target     %s\n", r.Target)
	fmt.Fprintf(&b, "offered    %.0f req/s for %v (%d requests)\n", r.Rate, r.Duration, r.Sent)
	fmt.Fprintf(&b, "achieved   %.1f req/s\n", r.AchievedRate)
	fmt.Fprintf(&b, "ok         %d (%d positive)\n", r.OK, r.Positives)
	fmt.Fprintf(&b, "errors     %d\n", r.Errors)
	for _, e := range r.ErrorExamples {
		fmt.Fprintf(&b, "  e.g. %s\n", e)
	}
	if len(r.Outcomes) > 1 || r.Errors > 0 {
		kinds := make([]string, 0, len(r.Outcomes))
		for k := range r.Outcomes {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		b.WriteString("outcomes  ")
		for _, k := range kinds {
			fmt.Fprintf(&b, " %s=%d", k, r.Outcomes[k])
		}
		b.WriteByte('\n')
	}
	if r.Updates > 0 {
		verdict := "monotonic"
		if !r.GenMonotonic {
			verdict = "REGRESSED"
		}
		fmt.Fprintf(&b, "updates    %d (%d errors) last_gen=%d generation %s\n",
			r.Updates, r.UpdateErrors, r.LastGen, verdict)
	}
	fmt.Fprintf(&b, "latency    p50=%v p95=%v p99=%v p999=%v max=%v\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.P999, r.Latency.Max)
	fmt.Fprintf(&b, "sched lag  max=%v\n", r.MaxSchedLag)
	if r.SLO > 0 {
		verdict := "met"
		if r.SLOViolated {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(&b, "slo        p99 <= %v: %s\n", r.SLO, verdict)
	}
	return b.String()
}

// discover fills vertex count and space extent from the target's
// /healthz, honoring explicit flag overrides. rrrouter reports both;
// plain rrserve reports only the vertex count, so -space is required
// when load-testing a single shard directly.
func discover(client *http.Client, base string, vertices int, spaceStr string) (int, [4]float64, error) {
	var space [4]float64
	haveSpace := false
	if spaceStr != "" {
		parts := strings.Split(spaceStr, ",")
		if len(parts) != 4 {
			return 0, space, fmt.Errorf("-space wants minx,miny,maxx,maxy, got %q", spaceStr)
		}
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return 0, space, fmt.Errorf("-space: %v", err)
			}
			space[i] = v
		}
		haveSpace = true
	}
	if vertices > 0 && haveSpace {
		return vertices, space, nil
	}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, space, fmt.Errorf("discover: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return 0, space, fmt.Errorf("discover: healthz status %d", resp.StatusCode)
	}
	var hz struct {
		Vertices int        `json:"vertices"`
		Space    [4]float64 `json:"space"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hz); err != nil {
		return 0, space, fmt.Errorf("discover: %v", err)
	}
	if vertices <= 0 {
		vertices = hz.Vertices
	}
	if !haveSpace {
		space = hz.Space
	}
	if vertices <= 0 {
		return 0, space, fmt.Errorf("target did not report a vertex count; pass -vertices")
	}
	if space[2] <= space[0] || space[3] <= space[1] {
		return 0, space, fmt.Errorf("target did not report a usable space extent; pass -space")
	}
	return vertices, space, nil
}

func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("target not healthy after %v", budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
