package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunExcludesErrorsFromLatency: fast failures must not feed the
// percentile set — a backend answering most requests with an instant
// 500 would otherwise deflate p50/p99 and let an SLO gate pass while
// the cluster is falling over.
func TestRunExcludesErrorsFromLatency(t *testing.T) {
	const serverDelay = 20 * time.Millisecond
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Two out of three requests fail instantly; the successes are slow.
		if n.Add(1)%3 != 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		time.Sleep(serverDelay)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"reachable":true}`)
	}))
	defer ts.Close()

	payloads := make([][]byte, 12)
	for i := range payloads {
		payloads[i] = []byte(`{"vertex":1,"region":[0,0,1,1]}`)
	}
	rep := run(ts.Client(), ts.URL+"/v1/query", payloads, 2000)
	if rep.OK == 0 || rep.Errors == 0 || rep.OK+rep.Errors != rep.Sent {
		t.Fatalf("ok=%d errors=%d sent=%d: want a mix covering all requests", rep.OK, rep.Errors, rep.Sent)
	}
	// With the instant failures excluded, every sampled latency is at
	// least the server delay; if they leaked in, the majority-failure
	// mix would drag p50 to microseconds.
	if rep.Latency.P50 < serverDelay {
		t.Fatalf("p50 %v < server delay %v: failed requests leaked into the latency summary", rep.Latency.P50, serverDelay)
	}
	if rep.Latency.Max < serverDelay {
		t.Fatalf("max %v < server delay %v", rep.Latency.Max, serverDelay)
	}
}
