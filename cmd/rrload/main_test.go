package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestRunExcludesErrorsFromLatency: fast failures must not feed the
// percentile set — a backend answering most requests with an instant
// 500 would otherwise deflate p50/p99 and let an SLO gate pass while
// the cluster is falling over.
func TestRunExcludesErrorsFromLatency(t *testing.T) {
	const serverDelay = 20 * time.Millisecond
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Two out of three requests fail instantly; the successes are slow.
		if n.Add(1)%3 != 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		time.Sleep(serverDelay)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"reachable":true}`)
	}))
	defer ts.Close()

	payloads := make([][]byte, 12)
	for i := range payloads {
		payloads[i] = []byte(`{"vertex":1,"region":[0,0,1,1]}`)
	}
	rep := run(ts.Client(), ts.URL+"/v1/query", payloads, 2000, false)
	if rep.OK == 0 || rep.Errors == 0 || rep.OK+rep.Errors != rep.Sent {
		t.Fatalf("ok=%d errors=%d sent=%d: want a mix covering all requests", rep.OK, rep.Errors, rep.Sent)
	}
	if rep.Outcomes["ok"] != int64(rep.OK) || rep.Outcomes["status_500"] != int64(rep.Errors) {
		t.Fatalf("outcomes %v inconsistent with ok=%d errors=%d", rep.Outcomes, rep.OK, rep.Errors)
	}
	// With the instant failures excluded, every sampled latency is at
	// least the server delay; if they leaked in, the majority-failure
	// mix would drag p50 to microseconds.
	if rep.Latency.P50 < serverDelay {
		t.Fatalf("p50 %v < server delay %v: failed requests leaked into the latency summary", rep.Latency.P50, serverDelay)
	}
	if rep.Latency.Max < serverDelay {
		t.Fatalf("max %v < server delay %v", rep.Latency.Max, serverDelay)
	}
}

// TestOutcomeClassification: every request lands in exactly one
// outcome bucket and the buckets sum to Sent, so a consumer of the
// rrload/v1 report can account for all traffic without cross-checking
// other fields.
func TestOutcomeClassification(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 3 {
		case 0:
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
		case 1:
			fmt.Fprint(w, "{not json") // 200 with a garbage body
		default:
			fmt.Fprint(w, `{"reachable":false}`)
		}
	}))
	defer ts.Close()

	payloads := make([][]byte, 12)
	for i := range payloads {
		payloads[i] = []byte(`{"vertex":1,"region":[0,0,1,1]}`)
	}
	rep := run(ts.Client(), ts.URL+"/v1/query", payloads, 2000, false)
	var total int64
	for _, c := range rep.Outcomes {
		total += c
	}
	if total != int64(rep.Sent) {
		t.Fatalf("outcome counts %v sum to %d, want Sent=%d", rep.Outcomes, total, rep.Sent)
	}
	for _, kind := range []string{"ok", "status_503", "decode"} {
		if rep.Outcomes[kind] == 0 {
			t.Fatalf("outcomes %v missing %q", rep.Outcomes, kind)
		}
	}

	// A dead target classifies as a network failure, not a status code.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	client := dead.Client()
	dead.Close()
	rep = run(client, dead.URL+"/v1/query", payloads[:3], 2000, false)
	if rep.Outcomes["network"] != 3 {
		t.Fatalf("dead target outcomes %v, want network=3", rep.Outcomes)
	}
}

// TestReportJSONSchema: the -json document carries the schema marker
// and the per-outcome map, so downstream tooling can hard-fail on a
// report from an incompatible harness version.
func TestReportJSONSchema(t *testing.T) {
	rep := report{Schema: reportSchema, Sent: 1, Outcomes: map[string]int64{"ok": 1}}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["schema"] != "rrload/v1" {
		t.Fatalf("schema = %v, want rrload/v1", decoded["schema"])
	}
	for _, key := range []string{"outcomes", "achieved_rps", "latency", "slo_violated"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("report JSON missing %q: %s", key, raw)
		}
	}
}

// TestTracedRunTracksSlowestRequest: with -trace on, every request
// carries a distinct traceparent and the report names the trace id of
// the request that actually measured slowest — the one worth pulling
// a stitched breakdown for.
func TestTracedRunTracksSlowestRequest(t *testing.T) {
	var n atomic.Int64
	var slowTrace atomic.Value // trace id of the one deliberately slow request
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tp := r.Header.Get("traceparent")
		tid, _, ok := trace.ParseTraceparent(tp)
		if !ok {
			t.Errorf("request without valid traceparent: %q", tp)
		}
		if n.Add(1) == 5 {
			slowTrace.Store(tid)
			time.Sleep(60 * time.Millisecond)
		}
		fmt.Fprint(w, `{"reachable":true}`)
	}))
	defer ts.Close()

	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = []byte(`{"vertex":1,"region":[0,0,1,1]}`)
	}
	// Low rate so the slow request's sleep dominates its own latency
	// rather than queueing delay inflating a neighbour's.
	rep := run(ts.Client(), ts.URL+"/v1/query", payloads, 500, true)
	if rep.OK != rep.Sent {
		t.Fatalf("ok=%d sent=%d errors=%v", rep.OK, rep.Sent, rep.ErrorExamples)
	}
	want, _ := slowTrace.Load().(string)
	if want == "" || rep.SlowestTraceID != want {
		t.Fatalf("SlowestTraceID = %q, want the delayed request's trace id %q", rep.SlowestTraceID, want)
	}
}

// TestPrintSlowestTrace: the breakdown printer renders one greppable
// span line per stitched span, and degrades to a note when the target
// has no /v1/trace endpoint.
func TestPrintSlowestTrace(t *testing.T) {
	ct := trace.ClusterTrace{
		TraceID:    "0af7651916cd43dd8448eb211c80319c",
		Endpoint:   "query",
		DurationNS: int64(3 * time.Millisecond),
		Status:     200,
		Reason:     "forced",
		Spans: []trace.ClusterSpan{
			{Name: "placement", Tier: trace.TierRouter, Shard: trace.NoShard, DurationNS: 1000},
			{Name: "shard_call", Tier: trace.TierShard, Shard: 1, DurationNS: 2000, Attrs: map[string]string{"backend": "http://s1"}},
		},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/trace/"+ct.TraceID {
			http.NotFound(w, r)
			return
		}
		_ = json.NewEncoder(w).Encode(ct)
	}))
	defer ts.Close()

	var buf bytes.Buffer
	printSlowestTrace(ts.Client(), ts.URL, ct.TraceID, &buf)
	out := buf.String()
	for _, want := range []string{
		"slowest trace " + ct.TraceID,
		"reason=forced",
		"span name=placement tier=router shard=-",
		"span name=shard_call tier=shard shard=1",
		"backend=http://s1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, out)
		}
	}

	// Plain rrserve target: no /v1/trace route. The printer must note
	// the absence quickly rather than fail the whole load run.
	plain := httptest.NewServer(http.NotFoundHandler())
	defer plain.Close()
	buf.Reset()
	done := make(chan struct{})
	go func() {
		printSlowestTrace(plain.Client(), plain.URL, "deadbeef", &buf)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("printSlowestTrace did not give up on a traceless target")
	}
	if !strings.Contains(buf.String(), "not available") {
		t.Fatalf("want degradation note, got:\n%s", buf.String())
	}
}
