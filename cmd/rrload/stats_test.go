package main

import (
	"testing"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	s := summarize(nil)
	if s.Count != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	// 1ms..1000ms: nearest-rank percentiles are exactly identifiable.
	samples := make([]time.Duration, 1000)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	s := summarize(samples)
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	want := map[string][2]time.Duration{
		"p50":  {s.P50, 500 * time.Millisecond},
		"p95":  {s.P95, 950 * time.Millisecond},
		"p99":  {s.P99, 990 * time.Millisecond},
		"p999": {s.P999, 999 * time.Millisecond},
		"max":  {s.Max, 1000 * time.Millisecond},
	}
	for name, pair := range want {
		if pair[0] != pair[1] {
			t.Errorf("%s = %v, want %v", name, pair[0], pair[1])
		}
	}
	if s.Mean != 500500*time.Microsecond {
		t.Errorf("mean = %v, want 500.5ms", s.Mean)
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	s := summarize([]time.Duration{7 * time.Millisecond})
	if s.P50 != 7*time.Millisecond || s.P999 != 7*time.Millisecond || s.Max != 7*time.Millisecond {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestSummarizeUnsortedInput(t *testing.T) {
	s := summarize([]time.Duration{30, 10, 20})
	if s.P50 != 20 || s.Max != 30 {
		t.Fatalf("unsorted input mishandled: %+v", s)
	}
}
