package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fixtureRouter serves the three endpoints rrtop polls, with the
// shard query counters scaled by mult so tests can fake load between
// polls.
func fixtureRouter(mult int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","shards":2,"backends":2,"vertices":100,"strategy":"grid","down":[1]}`)
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{
		  "shards":[
		    {"id":0,"backend":"http://s0","down":false,"scrape_age_ms":150,"queries_total":%d,
		     "inflight":1,"cache_hit_ratio":0.25,"p50_micros":800,"p99_micros":4200,
		     "planner":{"3dreach":90,"naive":10}},
		    {"id":1,"backend":"http://s1","down":true,"scrape_error":"connection refused",
		     "scrape_age_ms":-1,"queries_total":0,"inflight":0,"cache_hit_ratio":-1,
		     "p50_micros":0,"p99_micros":0}
		  ],
		  "router":{"requests_total":500,"errors_total":3,"hedges_total":7,"early_exits_total":11,
		    "pruned_shards_total":40,"inflight":2,"p50_micros":900,"p99_micros":5100,
		    "traces_total":500,"traces_kept_total":21},
		  "cluster_p99_micros":4500
		}`, 1000*mult)
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"traces":[
		  {"trace_id":"0af7651916cd43dd8448eb211c80319c","endpoint":"query",
		   "start":"2026-08-08T12:00:00Z","duration_ns":12300000,"status":200,"reason":"slow","spans":7}
		]}`)
	})
	return mux
}

// TestOnceSnapshot: a single poll renders every surface — cluster
// header, router line, both shard rows with health states, planner
// mix, and the retained-trace list — with no ANSI escapes, so -once
// output is grep-safe in CI logs.
func TestOnceSnapshot(t *testing.T) {
	ts := httptest.NewServer(fixtureRouter(1))
	defer ts.Close()

	snap, err := poll(ts.Client(), ts.URL, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	render(&buf, ts.URL, nil, snap, 0)
	out := buf.String()

	for _, want := range []string{
		"status=ok shards=2 backends=2",
		"reqs=500 errs=3",
		"cluster_p99=4.5ms",
		"http://s0",
		"3dreach:90% naive:10%",
		"DOWN",
		"0af7651916cd43dd8448eb211c80319c",
		"7 spans  slow",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Fatalf("-once style render must not emit ANSI escapes:\n%q", out)
	}
	// First frame has no qps baseline.
	if !strings.Contains(out, " - ") {
		t.Fatalf("first frame should render qps as '-':\n%s", out)
	}
}

// TestQPSFromDeltas: the qps column is the queries_total delta between
// two polls divided by the poll interval, computed per shard.
func TestQPSFromDeltas(t *testing.T) {
	first := httptest.NewServer(fixtureRouter(1))
	defer first.Close()
	second := httptest.NewServer(fixtureRouter(3))
	defer second.Close()

	prev, err := poll(first.Client(), first.URL, 5)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := poll(second.Client(), second.URL, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	render(&buf, second.URL, prev, cur, 2*time.Second)
	// Shard 0 went 1000 -> 3000 queries over a 2s interval: 1000 qps.
	if !strings.Contains(buf.String(), "1000.0") {
		t.Fatalf("want shard 0 qps 1000.0 from (3000-1000)/2s:\n%s", buf.String())
	}
}

// TestPollUnreachable: a dead target reports an error instead of a
// zero-valued snapshot that would render as a healthy empty cluster.
func TestPollUnreachable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	client := dead.Client()
	dead.Close()
	if _, err := poll(client, dead.URL, 5); err == nil {
		t.Fatal("poll of a dead target must error")
	}
}

func TestPlannerMix(t *testing.T) {
	if got := plannerMix(nil); got != "-" {
		t.Fatalf("empty mix = %q, want -", got)
	}
	got := plannerMix(map[string]int64{"a": 1, "b": 3})
	if got != "b:75% a:25%" {
		t.Fatalf("mix = %q, want largest first with shares", got)
	}
}
