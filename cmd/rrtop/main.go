// Command rrtop is a live terminal inspector for a sharded RangeReach
// cluster. It polls a rrrouter's /healthz, /v1/cluster and /v1/traces
// endpoints and renders one screen per poll: per-shard health, qps
// (computed from queries_total deltas between polls), latency
// percentiles, cache hit ratios, planner-choice mix, and the most
// recently retained traces.
//
// Usage:
//
//	rrtop -target http://127.0.0.1:8080
//	rrtop -target http://127.0.0.1:8080 -interval 1s
//	rrtop -target http://127.0.0.1:8080 -once
//
// -once prints a single snapshot without ANSI escapes and exits —
// suitable for scripts, CI logs, and piping to grep. Live mode
// redraws in place every -interval until interrupted.
//
// Exit status: 0 on success, 1 when the target cannot be polled,
// 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// The decode structs mirror rrrouter's JSON responses field for field;
// unknown fields are ignored so an older rrtop keeps working against a
// newer router.

type healthz struct {
	Status   string `json:"status"`
	Shards   int    `json:"shards"`
	Backends int    `json:"backends"`
	Vertices int    `json:"vertices"`
	Strategy string `json:"strategy"`
	Down     []int  `json:"down"`
}

type shardRow struct {
	ID              int              `json:"id"`
	Backend         string           `json:"backend"`
	Down            bool             `json:"down"`
	ScrapeError     string           `json:"scrape_error"`
	ScrapeAgeMillis int64            `json:"scrape_age_ms"`
	Queries         int64            `json:"queries_total"`
	Inflight        int64            `json:"inflight"`
	CacheHitRatio   float64          `json:"cache_hit_ratio"`
	P50Micros       float64          `json:"p50_micros"`
	P99Micros       float64          `json:"p99_micros"`
	Planner         map[string]int64 `json:"planner"`
}

type routerRow struct {
	Requests   int64   `json:"requests_total"`
	Errors     int64   `json:"errors_total"`
	Hedges     int64   `json:"hedges_total"`
	EarlyExits int64   `json:"early_exits_total"`
	Pruned     int64   `json:"pruned_shards_total"`
	Inflight   int64   `json:"inflight"`
	P50Micros  float64 `json:"p50_micros"`
	P99Micros  float64 `json:"p99_micros"`
	Traces     int64   `json:"traces_total"`
	TracesKept int64   `json:"traces_kept_total"`
}

type clusterView struct {
	Shards           []shardRow `json:"shards"`
	Router           routerRow  `json:"router"`
	ClusterP99Micros float64    `json:"cluster_p99_micros"`
}

type traceRow struct {
	TraceID    string    `json:"trace_id"`
	Endpoint   string    `json:"endpoint"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Status     int       `json:"status"`
	Reason     string    `json:"reason"`
	Spans      int       `json:"spans"`
}

// snapshot is one poll of the whole cluster surface.
type snapshot struct {
	At      time.Time
	Health  healthz
	Cluster clusterView
	Traces  []traceRow
}

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "rrrouter base URL")
		interval = flag.Duration("interval", 2*time.Second, "poll and redraw period in live mode")
		once     = flag.Bool("once", false, "print one snapshot without ANSI escapes and exit (for scripts and CI)")
		nTraces  = flag.Int("traces", 5, "recent retained traces to list")
	)
	flag.Parse()

	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "rrtop: -interval must be positive")
		os.Exit(2)
	}
	base := strings.TrimRight(*target, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	if *once {
		snap, err := poll(client, base, *nTraces)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrtop: %v\n", err)
			os.Exit(1)
		}
		render(os.Stdout, base, nil, snap, 0)
		return
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	var prev *snapshot
	for {
		snap, err := poll(client, base, *nTraces)
		fmt.Print("\x1b[H\x1b[2J") // cursor home + clear: redraw in place
		if err != nil {
			fmt.Printf("rrtop: %s unreachable: %v\n", base, err)
		} else {
			render(os.Stdout, base, prev, snap, *interval)
			prev = snap
		}
		select {
		case <-sigc:
			fmt.Println()
			return
		case <-ticker.C:
		}
	}
}

// poll fetches one consistent-enough snapshot: three GETs back to
// back. /v1/cluster triggers the router's on-demand federation scrape
// when no -federate loop is running, so the shard rows are at most a
// couple of seconds stale.
func poll(client *http.Client, base string, nTraces int) (*snapshot, error) {
	snap := &snapshot{At: time.Now()}
	if err := getJSON(client, base+"/healthz", &snap.Health); err != nil {
		return nil, err
	}
	if err := getJSON(client, base+"/v1/cluster", &snap.Cluster); err != nil {
		return nil, err
	}
	var tr struct {
		Traces []traceRow `json:"traces"`
	}
	if err := getJSON(client, base+"/v1/traces?n="+strconv.Itoa(nTraces), &tr); err != nil {
		return nil, err
	}
	snap.Traces = tr.Traces
	return snap, nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out)
}

// render writes one screenful. prev supplies the queries_total
// baseline for qps; when nil (first frame, -once) the qps column shows
// "-" rather than a number computed from an arbitrary epoch.
func render(w io.Writer, base string, prev, cur *snapshot, interval time.Duration) {
	h, c := cur.Health, cur.Cluster
	_, _ = fmt.Fprintf(w, "rrtop  %s  %s\n", base, cur.At.Format(time.RFC3339))
	_, _ = fmt.Fprintf(w, "cluster   status=%s shards=%d backends=%d vertices=%d strategy=%s down=%d\n",
		h.Status, h.Shards, h.Backends, h.Vertices, h.Strategy, len(h.Down))
	_, _ = fmt.Fprintf(w, "router    reqs=%d errs=%d inflight=%d p50=%s p99=%s hedges=%d early_exit=%d pruned=%d traces=%d kept=%d\n",
		c.Router.Requests, c.Router.Errors, c.Router.Inflight,
		fmtMicros(c.Router.P50Micros), fmtMicros(c.Router.P99Micros),
		c.Router.Hedges, c.Router.EarlyExits, c.Router.Pruned,
		c.Router.Traces, c.Router.TracesKept)
	_, _ = fmt.Fprintf(w, "merged    cluster_p99=%s\n\n", fmtMicros(c.ClusterP99Micros))

	// Per-shard table. Columns are fixed-width so live redraws do not
	// shimmer as values change length.
	_, _ = fmt.Fprintf(w, "%-5s %-28s %-7s %8s %10s %8s %6s %9s %9s %7s  %s\n",
		"shard", "backend", "health", "qps", "queries", "inflight", "hit%", "p50", "p99", "age", "planner")
	prevQ := map[int]int64{}
	if prev != nil {
		for _, s := range prev.Cluster.Shards {
			prevQ[s.ID] = s.Queries
		}
	}
	for _, s := range c.Shards {
		health := "up"
		switch {
		case s.Down:
			health = "DOWN"
		case s.ScrapeError != "":
			health = "scrape!"
		}
		qps := "-"
		if q, ok := prevQ[s.ID]; ok && interval > 0 && s.Queries >= q {
			qps = fmt.Sprintf("%.1f", float64(s.Queries-q)/interval.Seconds())
		}
		hit := "-"
		if s.CacheHitRatio >= 0 {
			hit = fmt.Sprintf("%.1f", s.CacheHitRatio*100)
		}
		age := "-"
		if s.ScrapeAgeMillis >= 0 {
			age = (time.Duration(s.ScrapeAgeMillis) * time.Millisecond).Truncate(100 * time.Millisecond).String()
		}
		_, _ = fmt.Fprintf(w, "%-5d %-28s %-7s %8s %10d %8d %6s %9s %9s %7s  %s\n",
			s.ID, s.Backend, health, qps, s.Queries, s.Inflight, hit,
			fmtMicros(s.P50Micros), fmtMicros(s.P99Micros), age, plannerMix(s.Planner))
	}

	_, _ = fmt.Fprintf(w, "\nrecent traces (newest first)\n")
	if len(cur.Traces) == 0 {
		_, _ = fmt.Fprintln(w, "  none retained — send a traceparent or set rrrouter -trace-sample")
		return
	}
	for _, t := range cur.Traces {
		_, _ = fmt.Fprintf(w, "  %s  %s  %-5s  %d  %9s  %d spans  %s\n",
			t.Start.Format("15:04:05.000"), t.TraceID, t.Endpoint, t.Status,
			time.Duration(t.DurationNS).Truncate(time.Microsecond), t.Spans, t.Reason)
	}
}

// plannerMix renders a shard's planner-choice counters as a compact
// "method:share%" list, largest first.
func plannerMix(counts map[string]int64) string {
	if len(counts) == 0 {
		return "-"
	}
	var total int64
	methods := make([]string, 0, len(counts))
	for m, n := range counts {
		total += n
		methods = append(methods, m)
	}
	if total == 0 {
		return "-"
	}
	sort.Slice(methods, func(i, j int) bool {
		if counts[methods[i]] != counts[methods[j]] {
			return counts[methods[i]] > counts[methods[j]]
		}
		return methods[i] < methods[j]
	})
	parts := make([]string, len(methods))
	for i, m := range methods {
		parts[i] = fmt.Sprintf("%s:%.0f%%", m, 100*float64(counts[m])/float64(total))
	}
	return strings.Join(parts, " ")
}

// fmtMicros renders a microsecond value as a human duration; zero and
// negative read as absent.
func fmtMicros(us float64) string {
	if us <= 0 {
		return "-"
	}
	return time.Duration(us * float64(time.Microsecond)).Truncate(time.Microsecond).String()
}
