// Command rrgen generates synthetic geosocial networks in the library's
// text format, either from the four presets calibrated to the paper's
// datasets or from explicit parameters.
//
// Usage:
//
//	rrgen -preset foursquare-like -scale 1.0 -seed 1 -o foursquare.gsn
//	rrgen -users 10000 -venues 5000 -friends 7 -checkins 3 -giant-scc -o custom.gsn
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/workload"
)

func main() {
	var (
		preset   = flag.String("preset", "", "preset: foursquare-like, gowalla-like, weeplaces-like, yelp-like")
		scale    = flag.Float64("scale", 1.0, "preset scale (1.0 ≈ 1% of the paper's sizes)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default: stdout)")
		users    = flag.Int("users", 0, "custom: number of users")
		venues   = flag.Int("venues", 0, "custom: number of venues")
		friends  = flag.Float64("friends", 7, "custom: average friendship out-degree")
		checkins = flag.Float64("checkins", 3, "custom: average check-ins per user")
		giant    = flag.Bool("giant-scc", false, "custom: put all users in one SCC")
		core     = flag.Float64("core", 0.5, "custom: core fraction for the fragmented regime")
		clusters = flag.Int("clusters", 32, "custom: number of venue clusters")
		stats    = flag.Bool("stats", false, "print the Table 3 row of the generated network to stderr")
		emitQ    = flag.Int("emit-queries", 0, "also generate this many workload queries (rrquery -batch format)")
		extent   = flag.Float64("extent", 5, "query-region extent in percent of the space (with -emit-queries)")
		queriesO = flag.String("queries-o", "", "output file for generated queries (default: stderr-adjacent <o>.queries)")
	)
	flag.Parse()

	var net *dataset.Network
	switch *preset {
	case "foursquare-like":
		net = dataset.FoursquareLike(*scale, *seed)
	case "gowalla-like":
		net = dataset.GowallaLike(*scale, *seed)
	case "weeplaces-like":
		net = dataset.WeeplacesLike(*scale, *seed)
	case "yelp-like":
		net = dataset.YelpLike(*scale, *seed)
	case "":
		if *users <= 0 || *venues <= 0 {
			fmt.Fprintln(os.Stderr, "rrgen: need -preset or both -users and -venues")
			os.Exit(2)
		}
		regime := dataset.Fragmented
		if *giant {
			regime = dataset.GiantSCC
		}
		net = dataset.Generate(dataset.GenConfig{
			Name:         "custom",
			Users:        *users,
			Venues:       *venues,
			AvgFriends:   *friends,
			AvgCheckins:  *checkins,
			Regime:       regime,
			CoreFraction: *core,
			Clusters:     *clusters,
			Seed:         *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "rrgen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	if *stats {
		s := net.ComputeStats()
		fmt.Fprintf(os.Stderr,
			"%s: users=%d venues=%d checkins=%d |V|=%d |E|=%d SCCs=%d largest=%d\n",
			s.Name, s.Users, s.Venues, s.Checkins, s.Vertices, s.Edges, s.SCCs, s.LargestSCC)
	}

	if *emitQ > 0 {
		if err := emitQueries(net, *emitQ, *extent, *seed, *queriesO, *out); err != nil {
			fmt.Fprintf(os.Stderr, "rrgen: %v\n", err)
			os.Exit(1)
		}
	}

	if *out == "" {
		if err := dataset.Save(os.Stdout, net); err != nil {
			fmt.Fprintf(os.Stderr, "rrgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := dataset.SaveFile(*out, net); err != nil {
		fmt.Fprintf(os.Stderr, "rrgen: %v\n", err)
		os.Exit(1)
	}
}

// emitQueries writes an rrquery batch file drawn from the paper's
// default workload parameters (degree bucket 50–99).
func emitQueries(net *dataset.Network, n int, extent float64, seed int64, path, netPath string) error {
	if path == "" {
		if netPath == "" {
			return fmt.Errorf("-emit-queries needs -queries-o or -o")
		}
		path = netPath + ".queries"
	}
	gen := workload.NewGenerator(net, seed+1000)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# %d queries, %g%% extent, degree bucket %s\n",
		n, extent, workload.DefaultDegreeBucket)
	for _, q := range gen.Batch(n, extent, workload.DefaultDegreeBucket) {
		fmt.Fprintf(w, "%d %g %g %g %g\n",
			q.Vertex, q.Region.Min.X, q.Region.Min.Y, q.Region.Max.X, q.Region.Max.Y)
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
