// Command rrgen generates synthetic geosocial networks in the library's
// text format, either from the four presets calibrated to the paper's
// datasets or from explicit parameters.
//
// Usage:
//
//	rrgen -preset foursquare-like -scale 1.0 -seed 1 -o foursquare.gsn
//	rrgen -users 10000 -venues 5000 -friends 7 -checkins 3 -giant-scc -o custom.gsn
//	rrgen -preset gowalla-like -o gowalla.gsn -index 3dreach -j 4
//	rrgen -preset gowalla-like -o gowalla.gsn -shards 4 -index 3dreach
//
// -index additionally builds and persists a ready-to-serve index over
// the generated network (rrserve -load-index skips the build on
// startup); -j bounds the build workers — the emitted index bytes are
// identical at any setting.
//
// -shards partitions the network for sharded serving behind rrrouter:
// <stem>.shard<i>.gsn files (each the full social graph with one venue
// partition kept spatial) plus a <stem>.shardmap.json topology file;
// combined with -index every shard also gets a prebuilt .idx.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	rangereach "repro"
	"repro/internal/dataset"
	"repro/internal/shard"
	"repro/internal/workload"
)

func main() {
	var (
		preset   = flag.String("preset", "", "preset: foursquare-like, gowalla-like, weeplaces-like, yelp-like")
		scale    = flag.Float64("scale", 1.0, "preset scale (1.0 ≈ 1% of the paper's sizes)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default: stdout)")
		users    = flag.Int("users", 0, "custom: number of users")
		venues   = flag.Int("venues", 0, "custom: number of venues")
		friends  = flag.Float64("friends", 7, "custom: average friendship out-degree")
		checkins = flag.Float64("checkins", 3, "custom: average check-ins per user")
		giant    = flag.Bool("giant-scc", false, "custom: put all users in one SCC")
		core     = flag.Float64("core", 0.5, "custom: core fraction for the fragmented regime")
		clusters = flag.Int("clusters", 32, "custom: number of venue clusters")
		stats    = flag.Bool("stats", false, "print the Table 3 row of the generated network to stderr")
		emitQ    = flag.Int("emit-queries", 0, "also generate this many workload queries (rrquery -batch format)")
		extent   = flag.Float64("extent", 5, "query-region extent in percent of the space (with -emit-queries)")
		queriesO = flag.String("queries-o", "", "output file for generated queries (default: stderr-adjacent <o>.queries)")
		indexM   = flag.String("index", "", "also build and persist an index of this method (3dreach, 3dreach-rev, socreach, spareach-bfl, spareach-int, georeach, auto)")
		indexO   = flag.String("index-o", "", "output file for the persisted index (default: <o>.idx; requires -o)")
		buildJ   = flag.Int("j", 0, "worker bound for the -index build (0 = all CPUs, 1 = sequential; output is identical at any setting)")
		shards   = flag.Int("shards", 0, "also partition into this many shard networks for rrrouter (requires -o)")
		shardBy  = flag.String("shard-strategy", "spatial", "shard partitioner: spatial (z-order grid runs), social (SCC components)")
	)
	flag.Parse()

	var net *dataset.Network
	switch *preset {
	case "foursquare-like":
		net = dataset.FoursquareLike(*scale, *seed)
	case "gowalla-like":
		net = dataset.GowallaLike(*scale, *seed)
	case "weeplaces-like":
		net = dataset.WeeplacesLike(*scale, *seed)
	case "yelp-like":
		net = dataset.YelpLike(*scale, *seed)
	case "":
		if *users <= 0 || *venues <= 0 {
			fmt.Fprintln(os.Stderr, "rrgen: need -preset or both -users and -venues")
			os.Exit(2)
		}
		regime := dataset.Fragmented
		if *giant {
			regime = dataset.GiantSCC
		}
		net = dataset.Generate(dataset.GenConfig{
			Name:         "custom",
			Users:        *users,
			Venues:       *venues,
			AvgFriends:   *friends,
			AvgCheckins:  *checkins,
			Regime:       regime,
			CoreFraction: *core,
			Clusters:     *clusters,
			Seed:         *seed,
		})
	default:
		fmt.Fprintf(os.Stderr, "rrgen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	if *stats {
		s := net.ComputeStats()
		fmt.Fprintf(os.Stderr,
			"%s: users=%d venues=%d checkins=%d |V|=%d |E|=%d SCCs=%d largest=%d\n",
			s.Name, s.Users, s.Venues, s.Checkins, s.Vertices, s.Edges, s.SCCs, s.LargestSCC)
	}

	if *emitQ > 0 {
		if err := emitQueries(net, *emitQ, *extent, *seed, *queriesO, *out); err != nil {
			fmt.Fprintf(os.Stderr, "rrgen: %v\n", err)
			os.Exit(1)
		}
	}

	if *out == "" {
		if *indexM != "" {
			fmt.Fprintln(os.Stderr, "rrgen: -index requires -o")
			os.Exit(2)
		}
		if *shards > 0 {
			fmt.Fprintln(os.Stderr, "rrgen: -shards requires -o")
			os.Exit(2)
		}
		if err := dataset.Save(os.Stdout, net); err != nil {
			fmt.Fprintf(os.Stderr, "rrgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := dataset.SaveFile(*out, net); err != nil {
		fmt.Fprintf(os.Stderr, "rrgen: %v\n", err)
		os.Exit(1)
	}
	if *indexM != "" {
		if err := emitIndex(*out, *indexM, *indexO, *buildJ); err != nil {
			fmt.Fprintf(os.Stderr, "rrgen: %v\n", err)
			os.Exit(1)
		}
	}
	if *shards > 0 {
		if err := emitShards(net, *out, *shards, *shardBy, *indexM, *buildJ); err != nil {
			fmt.Fprintf(os.Stderr, "rrgen: %v\n", err)
			os.Exit(1)
		}
	}
}

// emitShards partitions the network for sharded serving: each shard is
// a full copy of the social graph with only its assigned venues kept
// spatial, written as <stem>.shard<i>.gsn, plus <stem>.shardmap.json
// describing the topology for rrrouter. With -index, each shard also
// gets a prebuilt <stem>.shard<i>.gsn.idx so the serving processes
// skip their startup builds.
func emitShards(net *dataset.Network, out string, n int, strategyName, indexM string, buildJ int) error {
	strategy, err := shard.ParseStrategy(strategyName)
	if err != nil {
		return err
	}
	asn, err := shard.Partition(net, n, strategy)
	if err != nil {
		return err
	}
	stem := strings.TrimSuffix(out, ".gsn")
	for i := 0; i < n; i++ {
		snet, err := asn.ShardNetwork(net, i)
		if err != nil {
			return err
		}
		path := fmt.Sprintf("%s.shard%d.gsn", stem, i)
		if err := dataset.SaveFile(path, snet); err != nil {
			return err
		}
		if indexM != "" {
			if err := emitIndex(path, indexM, "", buildJ); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	mapPath := stem + ".shardmap.json"
	m := asn.Map(net.Name, net.NumVertices(), net.Space())
	if err := shard.SaveMapFile(mapPath, m); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rrgen: %d %s shards written to %s.shard*.gsn, map %s\n",
		n, strategy, stem, mapPath)
	return nil
}

// emitIndex builds the requested index over the just-written network
// file and persists it next to it. Going through the saved file (not
// the in-memory network) guarantees the index pairs with exactly the
// bytes rrserve will load.
func emitIndex(netPath, methodName, indexPath string, parallelism int) error {
	m, ok := indexMethodByName(methodName)
	if !ok {
		return fmt.Errorf("unknown -index method %q", methodName)
	}
	if indexPath == "" {
		indexPath = netPath + ".idx"
	}
	net, err := rangereach.LoadNetwork(netPath)
	if err != nil {
		return err
	}
	var opts []rangereach.Option
	if parallelism > 0 {
		opts = append(opts, rangereach.WithParallelism(parallelism))
	}
	idx, err := net.Build(m, opts...)
	if err != nil {
		return err
	}
	if err := idx.SaveFile(indexPath); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rrgen: %s index written to %s (build %s)\n",
		m, indexPath, idx.Stats().BuildTime)
	return nil
}

// indexMethodByName maps the persistable method names (the ones
// Index.SaveFile supports) to their Method values.
func indexMethodByName(name string) (rangereach.Method, bool) {
	switch strings.ToLower(name) {
	case "3dreach":
		return rangereach.ThreeDReach, true
	case "3dreach-rev":
		return rangereach.ThreeDReachRev, true
	case "socreach":
		return rangereach.SocReach, true
	case "spareach-bfl":
		return rangereach.SpaReachBFL, true
	case "spareach-int":
		return rangereach.SpaReachINT, true
	case "georeach":
		return rangereach.GeoReach, true
	case "auto":
		return rangereach.MethodAuto, true
	default:
		return 0, false
	}
}

// emitQueries writes an rrquery batch file drawn from the paper's
// default workload parameters (degree bucket 50–99).
func emitQueries(net *dataset.Network, n int, extent float64, seed int64, path, netPath string) error {
	if path == "" {
		if netPath == "" {
			return fmt.Errorf("-emit-queries needs -queries-o or -o")
		}
		path = netPath + ".queries"
	}
	gen := workload.NewGenerator(net, seed+1000)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# %d queries, %g%% extent, degree bucket %s\n",
		n, extent, workload.DefaultDegreeBucket)
	for _, q := range gen.Batch(n, extent, workload.DefaultDegreeBucket) {
		fmt.Fprintf(w, "%d %g %g %g %g\n",
			q.Vertex, q.Region.Min.X, q.Region.Min.Y, q.Region.Max.X, q.Region.Max.Y)
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
