// Quickstart: build a small geosocial network by hand, index it with
// 3DReach and answer RangeReach queries.
//
// The network is the paper's running example (Figure 1): users a–d and
// venues with points, where vertex a can geosocially reach the query
// region but vertex c cannot.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rangereach "repro"
)

func main() {
	// Vertices 0..11 are the paper's a..l; 4 (e), 5 (f), 7 (h), 8 (i)
	// and 11 (l) are venues with coordinates.
	b := rangereach.NewNetworkBuilder(12).SetName("figure-1")
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 9}, // a -> b, d, j
		{1, 4}, {1, 11}, {1, 3}, // b -> e, l, d
		{2, 8}, {2, 10}, {2, 3}, // c -> i, k, d
		{4, 5},         // e -> f
		{6, 8},         // g -> i
		{8, 5},         // i -> f
		{9, 6}, {9, 7}, // j -> g, h
		{11, 7}, // l -> h
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	b.SetPoint(4, 70, 80)  // e, inside the region below
	b.SetPoint(7, 80, 60)  // h, inside
	b.SetPoint(5, 10, 10)  // f
	b.SetPoint(8, 20, 90)  // i
	b.SetPoint(11, 40, 20) // l

	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	idx, err := net.Build(rangereach.ThreeDReach)
	if err != nil {
		log.Fatal(err)
	}
	st := idx.Stats()
	fmt.Printf("indexed %q with %s: %d vertices, %v build time, %d bytes\n",
		net.Name(), st.Method, net.NumVertices(), st.BuildTime, st.Bytes)

	region := rangereach.NewRect(60, 55, 90, 95)
	for _, v := range []int{0, 2} { // a and c
		fmt.Printf("RangeReach(%c, R) = %v\n", 'a'+v, idx.RangeReach(v, region))
	}
	// Output:
	//   RangeReach(a, R) = true   (a reaches venues e and h inside R)
	//   RangeReach(c, R) = false  (c only reaches f and i, both outside)
}
