// Epidemic monitoring (paper §1): "in the study of infectious diseases,
// RangeReach can assist on monitoring and understanding how they spread
// in specific areas through human interaction."
//
// The example models contact-tracing zones: given a set of index cases
// (infected users), it flags every monitored zone whose venues are
// geosocially reachable from an index case — i.e. zones where contact
// chains could carry exposure. It compares the naive BFS oracle against
// 3DReach-Rev on the same queries to demonstrate both correctness and
// the speedup on repeated monitoring sweeps.
//
// Run with: go run ./examples/epidemic
package main

import (
	"fmt"
	"log"
	"time"

	rangereach "repro"
)

func main() {
	net := rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name:         "region-health",
		Users:        10000,
		Venues:       2000,
		AvgFriends:   5,
		AvgCheckins:  3,
		GiantSCC:     false,
		CoreFraction: 0.4,
		Clusters:     6,
		Seed:         2026,
	})
	idx, err := net.Build(rangereach.ThreeDReachRev)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := net.Build(rangereach.Naive)
	if err != nil {
		log.Fatal(err)
	}

	// Monitored zones: a 4x4 grid over the region.
	space := net.Space()
	var zones []rangereach.Rect
	w := (space.MaxX - space.MinX) / 4
	h := (space.MaxY - space.MinY) / 4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			zones = append(zones, rangereach.NewRect(
				space.MinX+float64(i)*w, space.MinY+float64(j)*h,
				space.MinX+float64(i+1)*w, space.MinY+float64(j+1)*h))
		}
	}

	// Index cases: every 500th user.
	var cases []int
	for v := 0; v < net.NumVertices(); v += 500 {
		if !net.IsSpatial(v) {
			cases = append(cases, v)
		}
	}
	fmt.Printf("%d index cases, %d monitored zones\n", len(cases), len(zones))

	atRisk := make([]int, len(zones)) // exposure chains per zone
	var dIdx, dOracle time.Duration
	for z, zone := range zones {
		for _, c := range cases {
			start := time.Now()
			exposed := idx.RangeReach(c, zone)
			dIdx += time.Since(start)

			start = time.Now()
			want := oracle.RangeReach(c, zone)
			dOracle += time.Since(start)

			if exposed != want {
				log.Fatalf("index disagrees with oracle: case %d zone %d", c, z)
			}
			if exposed {
				atRisk[z]++
			}
		}
	}

	fmt.Println("zone exposure map (chains of possible exposure per zone):")
	for j := 3; j >= 0; j-- {
		for i := 0; i < 4; i++ {
			fmt.Printf(" %3d", atRisk[i*4+j])
		}
		fmt.Println()
	}
	probes := len(zones) * len(cases)
	fmt.Printf("3DReach-Rev: %v total (%.1fµs/probe); naive BFS: %v total (%.0fx slower)\n",
		dIdx, float64(dIdx.Microseconds())/float64(probes),
		dOracle, float64(dOracle)/float64(dIdx))
}
