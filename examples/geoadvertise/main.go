// Geo-advertising (paper §1): "RangeReach can help determine the best
// location to open a shop or how to advertise an event based on users
// that have direct or indirect (via friendship relationships) previous
// activity in particular parts of a city."
//
// The example scores candidate shop locations by *geosocial audience*:
// for each candidate region, how many seed influencers can geosocially
// reach it. Regions reachable by more influencers are better advertising
// targets. A single 3DReach index answers all influencer×region probes.
//
// Run with: go run ./examples/geoadvertise
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	rangereach "repro"
)

func main() {
	net := rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name:         "metro",
		Users:        12000,
		Venues:       6000,
		AvgFriends:   7,
		AvgCheckins:  4,
		GiantSCC:     false, // fragmented audience, like Foursquare/Yelp
		CoreFraction: 0.25,
		Clusters:     12,
		Seed:         7,
	})
	idx, err := net.Build(rangereach.ThreeDReach)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %q in %v (%d bytes)\n",
		net.Name(), idx.Stats().BuildTime, idx.Stats().Bytes)

	// 200 seed users sampled across the degree spectrum — peripheral
	// accounts reach only their own check-in neighborhoods, so regions
	// genuinely differ in audience.
	type user struct{ id, deg int }
	var users []user
	for v := 0; v < net.NumVertices(); v++ {
		if !net.IsSpatial(v) {
			users = append(users, user{v, net.OutDegree(v)})
		}
	}
	sort.Slice(users, func(i, j int) bool { return users[i].deg > users[j].deg })
	var influencers []user
	for i := 0; i < len(users) && len(influencers) < 200; i += len(users) / 200 {
		influencers = append(influencers, users[i])
	}

	// 30 random candidate regions, each 1% of the city.
	rng := rand.New(rand.NewSource(99))
	space := net.Space()
	side := 0.1 * (space.MaxX - space.MinX) // sqrt(1%) of each axis
	type candidate struct {
		region   rangereach.Rect
		audience int
	}
	var candidates []candidate
	for i := 0; i < 30; i++ {
		x := space.MinX + rng.Float64()*(space.MaxX-space.MinX-side)
		y := space.MinY + rng.Float64()*(space.MaxY-space.MinY-side)
		candidates = append(candidates, candidate{
			region: rangereach.NewRect(x, y, x+side, y+side),
		})
	}

	start := time.Now()
	probes := 0
	for c := range candidates {
		for _, inf := range influencers {
			if idx.RangeReach(inf.id, candidates[c].region) {
				candidates[c].audience++
			}
			probes++
		}
	}
	elapsed := time.Since(start)

	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].audience > candidates[j].audience
	})
	fmt.Printf("scored %d probes in %v (%.1fµs/probe)\n",
		probes, elapsed, float64(elapsed.Microseconds())/float64(probes))
	fmt.Println("top advertising locations by geosocial audience:")
	for i := 0; i < 5; i++ {
		c := candidates[i]
		fmt.Printf("  #%d: [%.1f,%.1f]x[%.1f,%.1f]  audience %d/%d influencers\n",
			i+1, c.region.MinX, c.region.MaxX, c.region.MinY, c.region.MaxY,
			c.audience, len(influencers))
	}
}
