// POI recommendation (paper §1): "users can query for restaurants in a
// particular area of the city that their friends or friends of their
// friends have visited in the past."
//
// The example generates a city-scale geosocial network, picks a few
// users and asks, for each downtown district, whether the user's social
// neighborhood — transitively, through any path of FOLLOWS and
// CHECKS-IN edges — has activity there. It then cross-checks two
// methods and reports their latencies.
//
// Run with: go run ./examples/poirecommend
package main

import (
	"fmt"
	"log"
	"time"

	rangereach "repro"
)

func main() {
	net := rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name:        "city",
		Users:       8000,
		Venues:      4000,
		AvgFriends:  6,
		AvgCheckins: 3,
		GiantSCC:    false,
		Clusters:    9, // nine districts
		Seed:        42,
	})
	fmt.Printf("network %q: %d users, %d venues, %d edges\n",
		net.Name(), net.NumVertices()-net.NumSpatial(), net.NumSpatial(), net.NumEdges())

	fast, err := net.Build(rangereach.ThreeDReach)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := net.Build(rangereach.SpaReachBFL)
	if err != nil {
		log.Fatal(err)
	}

	// Nine candidate districts tiling the city space.
	space := net.Space()
	var districts []rangereach.Rect
	w := (space.MaxX - space.MinX) / 3
	h := (space.MaxY - space.MinY) / 3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			districts = append(districts, rangereach.NewRect(
				space.MinX+float64(i)*w, space.MinY+float64(j)*h,
				space.MinX+float64(i+1)*w, space.MinY+float64(j+1)*h))
		}
	}

	// Recommend districts for a handful of active users.
	users := []int{10, 500, 2500, 7990}
	for _, u := range users {
		if net.IsSpatial(u) {
			continue
		}
		var reachable []int
		var dFast, dBase time.Duration
		for d, region := range districts {
			start := time.Now()
			ok := fast.RangeReach(u, region)
			dFast += time.Since(start)

			start = time.Now()
			okBase := baseline.RangeReach(u, region)
			dBase += time.Since(start)

			if ok != okBase {
				log.Fatalf("methods disagree for user %d district %d", u, d)
			}
			if ok {
				reachable = append(reachable, d)
			}
		}
		fmt.Printf("user %5d (out-degree %3d): social activity in districts %v  [3DReach %v, SpaReach-BFL %v]\n",
			u, net.OutDegree(u), reachable, dFast, dBase)
	}
}
