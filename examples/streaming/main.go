// Streaming updates (paper §8 future work): a geosocial network that
// grows while being queried. The example replays a simulated stream of
// events — new users signing up, new venues opening, follows and
// check-ins — against the updatable 3DReach index, interleaved with
// monitoring queries, and finally persists a freshly rebuilt static
// index for the next process.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	rangereach "repro"
)

func main() {
	// Day 0: a modest network snapshot.
	base := rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name: "day0", Users: 3000, Venues: 1500,
		AvgFriends: 5, AvgCheckins: 2, CoreFraction: 0.5, Seed: 99,
	})
	idx := base.BuildDynamic()
	fmt.Printf("day 0: %d vertices indexed\n", idx.NumVertices())

	// The monitored region: a city-center square.
	space := base.Space()
	cx, cy := (space.MinX+space.MaxX)/2, (space.MinY+space.MaxY)/2
	center := rangereach.NewRect(cx-8, cy-8, cx+8, cy+8)

	rng := rand.New(rand.NewSource(7))
	var users, venues, follows, checkins, queries int
	watch := make([]int, 0, 16) // recently added users we keep querying

	start := time.Now()
	for event := 0; event < 8000; event++ {
		switch rng.Intn(10) {
		case 0: // signup
			u := idx.AddUser()
			users++
			if len(watch) < cap(watch) {
				watch = append(watch, u)
			}
		case 1: // new venue near the center half the time
			x := space.MinX + rng.Float64()*(space.MaxX-space.MinX)
			y := space.MinY + rng.Float64()*(space.MaxY-space.MinY)
			if rng.Intn(2) == 0 {
				x, y = cx+rng.NormFloat64()*5, cy+rng.NormFloat64()*5
			}
			idx.AddVenue(x, y)
			venues++
		case 2, 3, 4: // follow; a cycle-closing follow merges components
			if err := idx.AddEdge(rng.Intn(idx.NumVertices()), rng.Intn(idx.NumVertices())); err != nil {
				log.Fatal(err)
			}
			follows++
		default: // check-in: any vertex -> any vertex works the same way
			if err := idx.AddEdge(rng.Intn(idx.NumVertices()), rng.Intn(idx.NumVertices())); err != nil {
				log.Fatal(err)
			}
			checkins++
		}
		// Every 500 events, re-check the watched users against the
		// city center.
		if event%500 == 499 {
			for _, u := range watch {
				idx.RangeReach(u, center)
				queries++
			}
		}
	}
	elapsed := time.Since(start)
	st := idx.UpdateStats()
	fmt.Printf("replayed 8000 events in %v: +%d users, +%d venues, +%d follows, +%d checkins, %d queries inline\n",
		elapsed, users, venues, follows, checkins, queries)
	fmt.Printf("absorbed incrementally: %d component merges, %d cone relabels, %d full rebuilds\n",
		st.Merges, st.ConeRelabels, st.FullRebuilds)

	reached := 0
	for _, u := range watch {
		if idx.RangeReach(u, center) {
			reached++
		}
	}
	fmt.Printf("%d/%d watched users now geosocially reach the city center\n", reached, len(watch))

	// End of day: persist a compact static index for tomorrow's readers.
	// (The dynamic index accumulates fragmented labels; a static rebuild
	// restores optimal compression.)
	dir, err := os.MkdirTemp("", "rangereach")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	static := base.MustBuild(rangereach.ThreeDReach)
	path := filepath.Join(dir, "day0.rrx")
	if err := static.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	loaded, err := base.LoadIndexFile(path)
	if err != nil {
		log.Fatal(err)
	}
	// Tomorrow's batch job answers monitoring queries in parallel.
	batch := make([]rangereach.Query, 0, 64)
	for v := 0; v < base.NumVertices(); v += base.NumVertices() / 64 {
		batch = append(batch, rangereach.Query{Vertex: v, Region: center})
	}
	answers := loaded.RangeReachBatch(batch, 0)
	positive := 0
	for _, ok := range answers {
		if ok {
			positive++
		}
	}
	fmt.Printf("persisted index reloaded from %s; batch of %d monitoring queries: %d positive\n",
		filepath.Base(path), len(batch), positive)
}
