package rangereach

import (
	"runtime"

	"repro/internal/incr"
)

// DynamicIndex is an updatable 3DReach index: it answers RangeReach
// queries while the network changes — new users and venues, added and
// deleted follow/check-in edges, venues moving. Updates are absorbed
// incrementally (internal/incr): a cycle-closing insert merges the
// affected strongly-connected components into one super-vertex, a
// delete splits its component lazily with a bounded recompute
// frontier, and interval labels are re-derived only over the affected
// ancestor cone, falling back to a full rebuild when patching would
// cost more (see WithFullRebuildUpdates for the A/B escape hatch).
//
// A DynamicIndex has a single-writer concurrency model: updates and
// direct queries must be issued from one goroutine (or be externally
// serialized), but Snapshot returns an immutable view that any number
// of goroutines may query concurrently while the writer keeps
// updating. This is the primitive behind the rrserve snapshot-swap
// serving mode.
type DynamicIndex struct {
	engine *incr.Index
}

// BuildDynamic constructs an updatable 3DReach index over the
// network's current state. Options that apply to the dynamic engine —
// WithParallelism, WithRTreeFanout, WithFullRebuildUpdates — take
// effect; the rest are ignored.
func (n *Network) BuildDynamic(options ...Option) *DynamicIndex {
	var cfg buildConfig
	for _, o := range options {
		o(&cfg)
	}
	if cfg.opts.Parallelism == 0 {
		cfg.opts.Parallelism = runtime.NumCPU()
	}
	mode := incr.Incremental
	if cfg.dynFullRebuild {
		mode = incr.FullRebuild
	}
	return &DynamicIndex{engine: incr.New(n.prep, incr.Options{
		Mode:        mode,
		Fanout:      cfg.opts.ThreeD.Fanout,
		Parallelism: cfg.opts.Parallelism,
	})}
}

// NumVertices returns the current number of vertices, including ones
// added through the index.
func (idx *DynamicIndex) NumVertices() int { return idx.engine.NumVertices() }

// AddUser appends a social vertex and returns its id.
func (idx *DynamicIndex) AddUser() int { return idx.engine.AddUser() }

// AddVenue appends a spatial vertex at (x, y) and returns its id.
func (idx *DynamicIndex) AddVenue(x, y float64) int { return idx.engine.AddVenue(x, y) }

// AddEdge inserts a follow/check-in edge (from, to). An edge that
// closes a cycle merges the affected components instead of being
// rejected; self-loops and duplicates are no-ops. It returns an error
// only when an endpoint is out of range.
func (idx *DynamicIndex) AddEdge(from, to int) error { return idx.engine.AddEdge(from, to) }

// DeleteEdge removes the edge (from, to), splitting its component if
// the deletion breaks a cycle. It returns an error if an endpoint is
// out of range or the edge does not exist.
func (idx *DynamicIndex) DeleteEdge(from, to int) error { return idx.engine.DeleteEdge(from, to) }

// MoveVenue relocates venue v to (x, y). It returns an error if v is
// out of range or not a venue.
func (idx *DynamicIndex) MoveVenue(v int, x, y float64) error { return idx.engine.MoveVenue(v, x, y) }

// UpdateStats reports how the index has absorbed its updates so far.
type UpdateStats struct {
	// Merges counts cycle-closing inserts that merged components.
	Merges int
	// Splits counts deletes that split a component.
	Splits int
	// ConeRelabels counts bounded ancestor-cone label patches;
	// RelabeledComps totals the components those passes touched.
	ConeRelabels   int
	RelabeledComps int
	// FullRebuilds counts dirty-fraction fallbacks (in
	// WithFullRebuildUpdates mode, every absorbed batch).
	FullRebuilds int
	// Folds counts overlay folds into the base R-tree.
	Folds int
}

// UpdateStats returns the index's update-absorption counters. Call it
// from the writer, like any other non-snapshot access.
func (idx *DynamicIndex) UpdateStats() UpdateStats {
	s := idx.engine.Stats()
	return UpdateStats{
		Merges:         s.Merges,
		Splits:         s.Splits,
		ConeRelabels:   s.ConeRelabels,
		RelabeledComps: s.RelabeledComps,
		FullRebuilds:   s.FullRebuilds,
		Folds:          s.Folds,
	}
}

// RangeReach reports whether vertex v currently reaches a spatial
// vertex inside r.
func (idx *DynamicIndex) RangeReach(v int, r Rect) bool {
	return idx.engine.RangeReach(v, r.internal())
}

// MemoryBytes returns the current index footprint.
func (idx *DynamicIndex) MemoryBytes() int64 { return idx.engine.MemoryBytes() }

// DynamicSnapshot is an immutable point-in-time view of a DynamicIndex.
// It is safe for concurrent use by any number of goroutines, including
// while the index it was taken from continues to be updated by its
// single writer. Taking a snapshot costs O(vertices) slice-header
// copies; the bulk spatial structure is shared, never copied.
//
//lint:frozen
type DynamicSnapshot struct {
	snap *incr.Snapshot
}

// Snapshot captures the index's current state. Must be called from the
// writer (the same goroutine — or critical section — that issues
// updates); the returned snapshot itself is freely shareable.
func (idx *DynamicIndex) Snapshot() *DynamicSnapshot {
	return &DynamicSnapshot{snap: idx.engine.Snapshot()}
}

// NumVertices returns the number of vertices at capture time.
func (s *DynamicSnapshot) NumVertices() int { return s.snap.NumVertices() }

// RangeReach reports whether vertex v reached a spatial vertex inside r
// at capture time. It panics if v is out of the snapshot's range.
func (s *DynamicSnapshot) RangeReach(v int, r Rect) bool {
	return s.snap.RangeReach(v, r.internal())
}
