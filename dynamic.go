package rangereach

import (
	"runtime"

	"repro/internal/core"
)

// DynamicIndex is an updatable 3DReach index: it answers RangeReach
// queries while the network grows — new users, new venues, new follow
// and check-in edges (the paper's §8 future-work direction). Post-order
// numbers are append-only, so updates never invalidate the spatial
// index; only the interval labels of affected vertices change.
//
// A DynamicIndex has a single-writer concurrency model: updates and
// direct queries must be issued from one goroutine (or be externally
// serialized), but Snapshot returns an immutable view that any number
// of goroutines may query concurrently while the writer keeps updating.
// This is the primitive behind the rrserve snapshot-swap serving mode.
//
// Edges that would create a new cycle between existing components are
// rejected; rebuild via Network.Build after re-adding such edges to the
// underlying network.
type DynamicIndex struct {
	engine *core.DynamicThreeDReach
}

// BuildDynamic constructs an updatable 3DReach index over the network's
// current state. Options that apply to the dynamic engine —
// WithParallelism, WithRTreeFanout — take effect; the rest are ignored.
func (n *Network) BuildDynamic(options ...Option) *DynamicIndex {
	var cfg buildConfig
	for _, o := range options {
		o(&cfg)
	}
	if cfg.opts.Parallelism == 0 {
		cfg.opts.Parallelism = runtime.NumCPU()
	}
	if cfg.opts.ThreeD.Parallelism == 0 {
		cfg.opts.ThreeD.Parallelism = cfg.opts.Parallelism
	}
	return &DynamicIndex{engine: core.NewDynamicThreeDReach(n.prep, cfg.opts.ThreeD)}
}

// NumVertices returns the current number of vertices, including ones
// added through the index.
func (idx *DynamicIndex) NumVertices() int { return idx.engine.NumVertices() }

// AddUser appends a social vertex and returns its id.
func (idx *DynamicIndex) AddUser() int { return idx.engine.AddUser() }

// AddVenue appends a spatial vertex at (x, y) and returns its id.
func (idx *DynamicIndex) AddVenue(x, y float64) int { return idx.engine.AddVenue(x, y) }

// AddEdge inserts a follow/check-in edge (from, to). It returns an error
// if an endpoint is out of range or the edge would create a new cycle.
func (idx *DynamicIndex) AddEdge(from, to int) error { return idx.engine.AddEdge(from, to) }

// RangeReach reports whether vertex v currently reaches a spatial vertex
// inside r.
func (idx *DynamicIndex) RangeReach(v int, r Rect) bool {
	return idx.engine.RangeReach(v, r.internal())
}

// MemoryBytes returns the current index footprint.
func (idx *DynamicIndex) MemoryBytes() int64 { return idx.engine.MemoryBytes() }

// DynamicSnapshot is an immutable point-in-time view of a DynamicIndex.
// It is safe for concurrent use by any number of goroutines, including
// while the index it was taken from continues to be updated by its
// single writer. Taking a snapshot costs O(vertices) slice-header
// copies; the bulk spatial structure is shared, never copied.
type DynamicSnapshot struct {
	snap *core.DynamicSnapshot
}

// Snapshot captures the index's current state. Must be called from the
// writer (the same goroutine — or critical section — that issues
// updates); the returned snapshot itself is freely shareable.
func (idx *DynamicIndex) Snapshot() *DynamicSnapshot {
	return &DynamicSnapshot{snap: idx.engine.Snapshot()}
}

// NumVertices returns the number of vertices at capture time.
func (s *DynamicSnapshot) NumVertices() int { return s.snap.NumVertices() }

// RangeReach reports whether vertex v reached a spatial vertex inside r
// at capture time. It panics if v is out of the snapshot's range.
func (s *DynamicSnapshot) RangeReach(v int, r Rect) bool {
	return s.snap.RangeReach(v, r.internal())
}
