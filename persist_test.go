package rangereach_test

import (
	"bytes"
	"testing"

	rangereach "repro"
)

func TestIndexSaveLoad(t *testing.T) {
	net := figure1(t)
	region := rangereach.NewRect(60, 55, 90, 95)
	for _, m := range []rangereach.Method{
		rangereach.ThreeDReach, rangereach.ThreeDReachRev,
		rangereach.SocReach, rangereach.SpaReachBFL, rangereach.SpaReachINT,
		rangereach.GeoReach,
	} {
		idx := net.MustBuild(m)
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		loaded, err := net.LoadIndex(&buf)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if loaded.Method() != m {
			t.Errorf("method changed: %v -> %v", m, loaded.Method())
		}
		if !loaded.RangeReach(0, region) || loaded.RangeReach(2, region) {
			t.Errorf("%v: loaded index wrong answers", m)
		}
	}
}

func TestIndexSaveLoadFile(t *testing.T) {
	net := figure1(t)
	idx := net.MustBuild(rangereach.ThreeDReach)
	path := t.TempDir() + "/index.rrx"
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := net.LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.RangeReach(0, rangereach.NewRect(60, 55, 90, 95)) {
		t.Error("loaded index wrong")
	}
	if _, err := net.LoadIndexFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveUnsupportedMethod(t *testing.T) {
	net := figure1(t)
	idx := net.MustBuild(rangereach.SpaReachFeline)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err == nil {
		t.Error("Feline save accepted")
	}
	naive := net.MustBuild(rangereach.Naive)
	if err := naive.Save(&buf); err == nil {
		t.Error("naive save accepted")
	}
}
