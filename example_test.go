package rangereach_test

import (
	"fmt"

	rangereach "repro"
)

// The smallest possible geosocial network: one user following another
// user who checked into two venues.
func ExampleNetworkBuilder() {
	b := rangereach.NewNetworkBuilder(4).SetName("demo")
	b.AddEdge(0, 1) // user 0 follows user 1
	b.AddEdge(1, 2) // user 1 checked into venue 2
	b.AddEdge(1, 3) // ... and venue 3
	b.SetPoint(2, 13.40, 52.52)
	b.SetPoint(3, 2.35, 48.86)
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(net.NumVertices(), "vertices,", net.NumSpatial(), "venues")
	// Output: 4 vertices, 2 venues
}

func ExampleIndex_rangeReach() {
	b := rangereach.NewNetworkBuilder(4)
	b.AddEdge(0, 1).AddEdge(1, 2).AddEdge(1, 3)
	b.SetPoint(2, 13.40, 52.52) // Berlin
	b.SetPoint(3, 2.35, 48.86)  // Paris
	net, _ := b.Build()

	idx, _ := net.Build(rangereach.ThreeDReach)
	berlin := rangereach.NewRect(13.0, 52.3, 13.8, 52.7)
	fmt.Println(idx.RangeReach(0, berlin)) // 0 -> 1 -> venue 2
	fmt.Println(idx.RangeReach(2, berlin)) // venue 2 is itself in Berlin
	fmt.Println(idx.RangeReach(3, berlin)) // Paris venue has no outgoing path
	// Output:
	// true
	// true
	// false
}

func ExampleNetwork_buildDynamic() {
	b := rangereach.NewNetworkBuilder(2)
	b.AddEdge(0, 1)
	net, _ := b.Build()

	idx := net.BuildDynamic()
	region := rangereach.NewRect(0, 0, 10, 10)
	fmt.Println(idx.RangeReach(0, region)) // no venues yet

	cafe := idx.AddVenue(5, 5)
	if err := idx.AddEdge(1, cafe); err != nil {
		panic(err)
	}
	fmt.Println(idx.RangeReach(0, region)) // 0 -> 1 -> cafe
	// Output:
	// false
	// true
}

func ExampleNetworkBuilder_setRect() {
	// A venue with a rectangular extent (paper footnote 1): any query
	// region intersecting the rectangle is a witness.
	b := rangereach.NewNetworkBuilder(2)
	b.AddEdge(0, 1)
	b.SetRect(1, rangereach.NewRect(40, 40, 60, 60))
	net, _ := b.Build()
	idx, _ := net.Build(rangereach.ThreeDReach)
	fmt.Println(idx.RangeReach(0, rangereach.NewRect(58, 58, 70, 70)))
	fmt.Println(idx.RangeReach(0, rangereach.NewRect(61, 61, 70, 70)))
	// Output:
	// true
	// false
}
