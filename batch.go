package rangereach

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Query is one RangeReach query for batch evaluation.
type Query struct {
	Vertex int
	Region Rect
}

// RangeReachBatch answers a batch of queries, fanning them out over
// parallelism goroutines (0 selects GOMAXPROCS). The result slice aligns
// with the input. Every static index is safe for concurrent queries;
// DynamicIndex is not (updates and queries must be externally
// serialized).
func (idx *Index) RangeReachBatch(queries []Query, parallelism int) []bool {
	out, _ := idx.RangeReachBatchContext(context.Background(), queries, parallelism)
	return out
}

// RangeReachBatchContext is RangeReachBatch with cancellation: workers
// check ctx between chunks and stop early, returning ctx.Err() and a
// nil result slice. A server whose client has disconnected stops
// burning CPU within one chunk per worker instead of finishing the
// batch into the void.
func (idx *Index) RangeReachBatchContext(ctx context.Context, queries []Query, parallelism int) ([]bool, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	const chunk = 16
	out := make([]bool, len(queries))
	if parallelism <= 1 {
		for lo := 0; lo < len(queries); lo += chunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi := min(lo+chunk, len(queries))
			for i := lo; i < hi; i++ {
				q := queries[i]
				out[i] = idx.RangeReach(q.Vertex, q.Region)
			}
		}
		return out, nil
	}
	// Work stealing off a single atomic cursor: each worker claims the
	// next chunk with one AddInt64, no lock on the hot path. Claims may
	// overshoot len(queries); workers clamp locally. The ctx poll rides
	// the chunk boundary, so cancellation costs one atomic load per 16
	// queries.
	var next atomic.Int64
	var wg sync.WaitGroup
	take := func() (lo, hi int) {
		hi = int(next.Add(chunk))
		lo = hi - chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		return lo, hi
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				lo, hi := take()
				if lo >= hi {
					return
				}
				for i := lo; i < hi; i++ {
					q := queries[i]
					out[i] = idx.RangeReach(q.Vertex, q.Region)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
