package rangereach

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Query is one RangeReach query for batch evaluation.
type Query struct {
	Vertex int
	Region Rect
}

// RangeReachBatch answers a batch of queries, fanning them out over
// parallelism goroutines (0 selects GOMAXPROCS). The result slice aligns
// with the input. Every static index is safe for concurrent queries;
// DynamicIndex is not (updates and queries must be externally
// serialized).
func (idx *Index) RangeReachBatch(queries []Query, parallelism int) []bool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	out := make([]bool, len(queries))
	if parallelism <= 1 {
		for i, q := range queries {
			out[i] = idx.RangeReach(q.Vertex, q.Region)
		}
		return out
	}
	// Work stealing off a single atomic cursor: each worker claims the
	// next chunk with one AddInt64, no lock on the hot path. Claims may
	// overshoot len(queries); workers clamp locally.
	var next atomic.Int64
	var wg sync.WaitGroup
	take := func(chunk int) (lo, hi int) {
		hi = int(next.Add(int64(chunk)))
		lo = hi - chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		return lo, hi
	}
	const chunk = 16
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi := take(chunk)
				if lo >= hi {
					return
				}
				for i := lo; i < hi; i++ {
					q := queries[i]
					out[i] = idx.RangeReach(q.Vertex, q.Region)
				}
			}
		}()
	}
	wg.Wait()
	return out
}
