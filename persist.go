package rangereach

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// ErrNotPersistable reports that an index's method has no save format.
// Persistable methods: ThreeDReach, ThreeDReachRev, SocReach,
// SpaReachBFL, SpaReachINT and GeoReach — the ones whose index state
// dominates build time. The rest rebuild quickly from the network.
var ErrNotPersistable = core.ErrNotPersistable

// Save writes the index's state to w in the current v2 flat format: a
// single relocatable image whose sections are the index's
// structure-of-arrays columns at 64-byte-aligned offsets, loadable by
// streaming decode (LoadIndex) or zero-copy mmap (OpenMapped). Reload
// over the same network. Saving an OpenMapped index re-emits the
// mapped columns themselves, so save(load(file)) reproduces the file
// byte for byte.
func (idx *Index) Save(w io.Writer) error {
	return core.SaveEngine(w, idx.engine)
}

// SaveV1 writes the index in the legacy v1 streaming format, which
// LoadIndex still reads but OpenMapped cannot. It exists for
// compatibility fixtures and for interchange with older readers.
func (idx *Index) SaveV1(w io.Writer) error {
	return core.SaveEngineV1(w, idx.engine)
}

// SaveFile writes the index to the named file atomically and durably:
// the bytes go to a temporary file in the same directory which is
// fsynced, renamed over the destination only after a successful write
// and close, and then the directory itself is fsynced — without that
// last step a crash shortly after SaveFile returns could roll the
// directory entry back to the old (or no) file even though the rename
// already "happened".
func (idx *Index) SaveFile(path string) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("rangereach: %w", err)
	}
	tmp := f.Name()
	if err := idx.Save(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("rangereach: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("rangereach: %w", err)
	}
	// CreateTemp opens 0600; restore the 0644 a plain Create would give.
	if err := os.Chmod(tmp, 0o644); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("rangereach: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("rangereach: %w", err)
	}
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("rangereach: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("rangereach: syncing %s: %w", dir, err)
	}
	return nil
}

// LoadIndex reads an index saved with Index.Save and attaches it to the
// network, which must be identical to the one the index was built over.
func (n *Network) LoadIndex(r io.Reader, options ...Option) (*Index, error) {
	var cfg buildConfig
	for _, o := range options {
		o(&cfg)
	}
	res, err := core.LoadEngine(r, n.prep, cfg.opts)
	if err != nil {
		return nil, err
	}
	m := methodFromCore(res.Method)
	idx := &Index{
		net:    n,
		method: m,
		engine: res.Engine,
		stats:  IndexStats{Method: m, Bytes: res.Bytes},
	}
	// A decodable file can still describe an inconsistent structure
	// (bit rot past the length checks); deep-validate before handing it
	// out so corruption surfaces at load, not as wrong answers.
	if err := idx.Validate(); err != nil {
		return nil, fmt.Errorf("rangereach: loaded index failed validation: %w", err)
	}
	return idx, nil
}

// LoadIndexFile reads an index from the named file.
func (n *Network) LoadIndexFile(path string, options ...Option) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rangereach: %w", err)
	}
	defer f.Close()
	return n.LoadIndex(f, options...)
}

// OpenMapped memory-maps a v2 index file and assembles the index
// directly over the mapped pages: no decode pass, no per-structure
// copies, O(1) allocations regardless of index size. Cold start is
// near-instant — the OS pages in only what queries touch. Call
// Index.Close when done; the index must not be used afterwards. v1
// files cannot be mapped (re-save them to upgrade); use LoadIndexFile
// for those.
//
// Unlike LoadIndex, OpenMapped skips the deep structural validation
// pass — walking every label and tree node would fault in the whole
// image, defeating the point of mapping. The load still verifies
// everything needed for memory safety (section bounds and alignment,
// offset tiling, post-order bijection, fan-out and balance, entry-id
// ranges), so a corrupt file surfaces as a load error or a wrong
// answer, never a panic. Run Index.Validate explicitly (e.g. rrserve
// -check) to get the full pass at the cost of paging everything in.
func (n *Network) OpenMapped(path string, options ...Option) (*Index, error) {
	var cfg buildConfig
	for _, o := range options {
		o(&cfg)
	}
	res, closer, err := core.OpenMappedEngine(path, n.prep, cfg.opts)
	if err != nil {
		return nil, err
	}
	m := methodFromCore(res.Method)
	return &Index{
		net:     n,
		method:  m,
		engine:  res.Engine,
		stats:   IndexStats{Method: m, Bytes: res.Bytes},
		mapping: closer,
		mapped:  res.Mapped,
		mappedB: res.MappedBytes,
	}, nil
}

// methodFromCore maps internal method ids back to public ones.
func methodFromCore(m core.Method) Method {
	switch m {
	case core.MethodThreeDReach:
		return ThreeDReach
	case core.MethodThreeDReachRev:
		return ThreeDReachRev
	case core.MethodSocReach:
		return SocReach
	case core.MethodSpaReachBFL:
		return SpaReachBFL
	case core.MethodSpaReachINT:
		return SpaReachINT
	case core.MethodGeoReach:
		return GeoReach
	case core.MethodSpaReachPLL:
		return SpaReachPLL
	case core.MethodSpaReachFeline:
		return SpaReachFeline
	case core.MethodSpaReachGRAIL:
		return SpaReachGRAIL
	case core.MethodAuto:
		return MethodAuto
	default:
		return Naive
	}
}
