// Package intervals implements the interval algebra behind the
// interval-based reachability labeling (paper §3): label intervals over
// post-order numbers, canonical compression (absorbing subsumed intervals
// and merging adjacent ones), stabbing tests, and an interval tree used to
// find label-based ancestors during Algorithm 1.
package intervals

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Interval is a closed interval [Lo, Hi] of post-order numbers.
// Post-order numbers are dense positive integers, so [1,3] and [4,5] are
// adjacent and compress to [1,5].
type Interval struct {
	Lo, Hi int32
}

// Contains reports whether p lies inside iv.
func (iv Interval) Contains(p int32) bool { return iv.Lo <= p && p <= iv.Hi }

// Len returns the number of integers covered by iv.
func (iv Interval) Len() int64 { return int64(iv.Hi) - int64(iv.Lo) + 1 }

// Overlaps reports whether iv and other share at least one integer.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// Set is a label set L(v): a collection of intervals over post-order
// numbers. A Set in canonical form is sorted by Lo, pairwise disjoint and
// non-adjacent; Compress establishes canonical form.
type Set []Interval

// NewSet returns a set holding the single interval [lo, hi].
func NewSet(lo, hi int32) Set { return Set{{Lo: lo, Hi: hi}} }

// Singleton returns a set holding the degenerate interval [p, p], the
// initial label Algorithm 1 assigns to every vertex (line 6).
func Singleton(p int32) Set { return NewSet(p, p) }

// Contains reports whether any interval of s contains p. If s is in
// canonical form the test runs in O(log |s|); otherwise it degrades to a
// linear scan (callers during construction hold non-canonical sets).
func (s Set) Contains(p int32) bool {
	if len(s) <= 8 {
		for _, iv := range s {
			if iv.Contains(p) {
				return true
			}
		}
		return false
	}
	// Binary search assumes canonical form; fall back to scan when the
	// probe result is inconclusive because canonical form is not
	// guaranteed here. We detect sortedness lazily: canonical callers
	// dominate, so check the candidate first.
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi >= p })
	if i < len(s) && s[i].Contains(p) {
		return true
	}
	if s.isSorted() {
		return false
	}
	for _, iv := range s {
		if iv.Contains(p) {
			return true
		}
	}
	return false
}

// ContainsCanonical reports whether any interval of the canonical set s
// contains p, in O(log |s|). The caller must guarantee canonical form.
func (s Set) ContainsCanonical(p int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi >= p })
	return i < len(s) && s[i].Lo <= p
}

func (s Set) isSorted() bool {
	for i := 1; i < len(s); i++ {
		if s[i].Lo < s[i-1].Lo {
			return false
		}
	}
	return true
}

// Add appends the interval [lo, hi] without compressing.
func (s Set) Add(lo, hi int32) Set {
	return append(s, Interval{Lo: lo, Hi: hi})
}

// Union appends all intervals of other without compressing, mirroring the
// plain set-union steps of Algorithm 1 (lines 13, 15, 22, 24). Exact
// duplicates are skipped so that the "uncompressed" label counts of
// Table 6 follow set semantics.
func (s Set) Union(other Set) Set {
	for _, iv := range other {
		if !s.hasExact(iv) {
			s = append(s, iv)
		}
	}
	return s
}

func (s Set) hasExact(iv Interval) bool {
	for _, have := range s {
		if have == iv {
			return true
		}
	}
	return false
}

// Compress returns the canonical form of s: intervals sorted by Lo, with
// subsumed intervals absorbed and overlapping or adjacent intervals merged
// (paper §3.1: [3,5] absorbs [4,5]; [1,4] and [4,5] merge to [1,5]; over
// the dense integer domain [1,3] and [4,5] merge to [1,5] as well).
// Compress may reuse s's storage.
func (s Set) Compress() Set {
	if len(s) <= 1 {
		return s
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].Lo != s[j].Lo {
			return s[i].Lo < s[j].Lo
		}
		return s[i].Hi > s[j].Hi
	})
	out := s[:1]
	for _, iv := range s[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1 { // overlapping or adjacent integers
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// IsCanonical reports whether s is sorted, disjoint and non-adjacent.
func (s Set) IsCanonical() bool {
	for i := 1; i < len(s); i++ {
		if s[i].Lo <= s[i-1].Hi+1 {
			return false
		}
	}
	for _, iv := range s {
		if iv.Lo > iv.Hi {
			return false
		}
	}
	return true
}

// Cardinality returns the total number of integers covered by the
// canonical set s.
func (s Set) Cardinality() int64 {
	var total int64
	for _, iv := range s {
		total += iv.Len()
	}
	return total
}

// Equal reports whether two canonical sets cover identical intervals.
func (s Set) Equal(other Set) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// MemoryBytes returns the storage footprint of s (8 bytes per interval),
// used by the index-size accounting of Table 4.
func (s Set) MemoryBytes() int64 { return int64(8 * len(s)) }

// String implements fmt.Stringer, printing e.g. "{[1,5] [7,7]}".
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, iv := range s {
		parts[i] = iv.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// CoversCanonical reports whether the canonical set s covers every
// integer of the canonical set other, in O(|s| + |other|) without
// allocating. The incremental labeling uses it to prune propagation.
func (s Set) CoversCanonical(other Set) bool {
	i := 0
	for _, need := range other {
		for i < len(s) && s[i].Hi < need.Lo {
			i++
		}
		if i >= len(s) || s[i].Lo > need.Lo || s[i].Hi < need.Hi {
			return false
		}
	}
	return true
}

// MergeCanonical merges two canonical sets into a new canonical set in
// O(|a| + |b|). It never aliases a or b.
func MergeCanonical(a, b Set) Set {
	if len(a) == 0 {
		return b.Clone()
	}
	if len(b) == 0 {
		return a.Clone()
	}
	out := make(Set, 0, len(a)+len(b))
	i, j := 0, 0
	pushMerged := func(iv Interval) {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if iv.Lo <= last.Hi+1 {
				if iv.Hi > last.Hi {
					last.Hi = iv.Hi
				}
				return
			}
		}
		out = append(out, iv)
	}
	for i < len(a) && j < len(b) {
		if a[i].Lo <= b[j].Lo {
			pushMerged(a[i])
			i++
		} else {
			pushMerged(b[j])
			j++
		}
	}
	for ; i < len(a); i++ {
		pushMerged(a[i])
	}
	for ; j < len(b); j++ {
		pushMerged(b[j])
	}
	return out
}

// MergeManyCanonical merges any number of canonical sets into one new
// canonical set that aliases none of the inputs. Collecting every
// interval and sorting once costs O(T log T) for T total intervals;
// folding MergeCanonical over a long list instead re-scans the growing
// accumulator on every step, which is quadratic when one vertex has
// thousands of successors — the hot case in incremental relabeling.
func MergeManyCanonical(sets []Set) Set {
	switch len(sets) {
	case 0:
		return nil
	case 1:
		return sets[0].Clone()
	case 2:
		return MergeCanonical(sets[0], sets[1])
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	// Pack each interval into one uint64 ordered by (Lo, Hi) — flipping
	// the sign bits preserves int32 order under unsigned comparison —
	// so the hot sort runs without a comparator callback.
	keys := make([]uint64, 0, total)
	for _, s := range sets {
		for _, iv := range s {
			keys = append(keys, uint64(uint32(iv.Lo)^1<<31)<<32|uint64(uint32(iv.Hi)^1<<31))
		}
	}
	slices.Sort(keys)
	out := make(Set, 0, total)
	for _, key := range keys {
		iv := Interval{
			Lo: int32(uint32(key>>32) ^ 1<<31),
			Hi: int32(uint32(key) ^ 1<<31),
		}
		if n := len(out); n > 0 && iv.Lo <= out[n-1].Hi+1 {
			if iv.Hi > out[n-1].Hi {
				out[n-1].Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return slices.Clip(out)
}
