package intervals

import (
	"math/rand"
	"testing"
)

func TestStabTreeBasic(t *testing.T) {
	tr := NewStabTree(16)
	tr.Insert(Interval{3, 8}, 1)
	tr.Insert(Interval{5, 5}, 2)
	tr.Insert(Interval{1, 16}, 3)

	stab := func(p int32) map[int32]bool {
		got := make(map[int32]bool)
		tr.Stab(p, func(o int32) bool {
			got[o] = true
			return true
		})
		return got
	}

	for p, want := range map[int32][]int32{
		1:  {3},
		3:  {1, 3},
		5:  {1, 2, 3},
		8:  {1, 3},
		9:  {3},
		16: {3},
	} {
		got := stab(p)
		if len(got) != len(want) {
			t.Fatalf("Stab(%d) = %v, want %v", p, got, want)
		}
		for _, o := range want {
			if !got[o] {
				t.Fatalf("Stab(%d) missing owner %d", p, o)
			}
		}
	}
}

func TestStabTreeOutOfDomain(t *testing.T) {
	tr := NewStabTree(8)
	tr.Insert(Interval{1, 8}, 7)
	called := false
	tr.Stab(0, func(int32) bool { called = true; return true })
	tr.Stab(9, func(int32) bool { called = true; return true })
	if called {
		t.Error("out-of-domain stab invoked callback")
	}
	// Inserts clipped to the domain.
	tr.Insert(Interval{-5, 20}, 9)
	found := false
	tr.Stab(8, func(o int32) bool {
		if o == 9 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("clipped insert not found")
	}
}

func TestStabTreeEarlyStop(t *testing.T) {
	tr := NewStabTree(8)
	for i := int32(0); i < 5; i++ {
		tr.Insert(Interval{1, 8}, i)
	}
	count := 0
	completed := tr.Stab(4, func(int32) bool {
		count++
		return count < 2
	})
	if completed {
		t.Error("early-stopped Stab reported completion")
	}
	if count != 2 {
		t.Errorf("callback ran %d times, want 2", count)
	}
}

func TestStabTreeRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		tr := NewStabTree(n)
		type rec struct {
			iv    Interval
			owner int32
		}
		var recs []rec
		for i := 0; i < rng.Intn(80); i++ {
			lo := int32(1 + rng.Intn(n))
			hi := lo + int32(rng.Intn(n))
			if hi > int32(n) {
				hi = int32(n)
			}
			r := rec{Interval{lo, hi}, int32(rng.Intn(10))}
			recs = append(recs, r)
			tr.Insert(r.iv, r.owner)
		}
		for p := int32(1); p <= int32(n); p++ {
			want := make(map[int32]bool)
			for _, r := range recs {
				if r.iv.Contains(p) {
					want[r.owner] = true
				}
			}
			got := make(map[int32]bool)
			tr.Stab(p, func(o int32) bool {
				got[o] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d: Stab(%d) owners %v, want %v", trial, p, got, want)
			}
			for o := range want {
				if !got[o] {
					t.Fatalf("trial %d: Stab(%d) missing %d", trial, p, o)
				}
			}
		}
	}
}
