package intervals

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompressPaperExamples(t *testing.T) {
	// §3.1: [3,5] absorbs [4,5]; [1,4] and [4,5] merge to [1,5].
	tests := []struct {
		name string
		in   Set
		want Set
	}{
		{"absorb", Set{{3, 5}, {4, 5}}, Set{{3, 5}}},
		{"merge-overlap", Set{{1, 4}, {4, 5}}, Set{{1, 5}}},
		{"merge-adjacent-integers", Set{{1, 3}, {4, 5}}, Set{{1, 5}}},
		{"disjoint", Set{{1, 2}, {7, 9}}, Set{{1, 2}, {7, 9}}},
		{"unsorted", Set{{7, 9}, {1, 2}, {3, 3}}, Set{{1, 3}, {7, 9}}},
		{"duplicates", Set{{2, 2}, {2, 2}, {2, 2}}, Set{{2, 2}}},
		{"single", Set{{5, 5}}, Set{{5, 5}}},
		{"empty", nil, nil},
		{"table1-vertex-b", Set{{4, 4}, {2, 2}, {3, 3}, {1, 1}, {7, 7}, {5, 5}}, Set{{1, 5}, {7, 7}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.Clone().Compress()
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Compress(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

// coveredPosts returns the set of integers covered by s.
func coveredPosts(s Set) map[int32]bool {
	m := make(map[int32]bool)
	for _, iv := range s {
		for p := iv.Lo; p <= iv.Hi; p++ {
			m[p] = true
		}
	}
	return m
}

func TestCompressProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		var s Set
		for i := 0; i < rng.Intn(20); i++ {
			lo := int32(1 + rng.Intn(60))
			hi := lo + int32(rng.Intn(8))
			s = s.Add(lo, hi)
		}
		before := coveredPosts(s)
		c := s.Clone().Compress()
		if !c.IsCanonical() {
			t.Fatalf("trial %d: Compress(%v) = %v not canonical", trial, s, c)
		}
		after := coveredPosts(c)
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("trial %d: coverage changed: %v -> %v", trial, s, c)
		}
		// Idempotent.
		again := c.Clone().Compress()
		if !c.Equal(again) {
			t.Fatalf("trial %d: Compress not idempotent: %v -> %v", trial, c, again)
		}
		// Contains agrees with coverage, canonical or not.
		for p := int32(0); p <= 70; p++ {
			if c.ContainsCanonical(p) != before[p] {
				t.Fatalf("trial %d: ContainsCanonical(%d) wrong on %v", trial, p, c)
			}
			if s.Contains(p) != before[p] {
				t.Fatalf("trial %d: Contains(%d) wrong on raw %v", trial, p, s)
			}
		}
	}
}

func TestMergeCanonical(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a := setFromRaw(rawA).Compress()
		b := setFromRaw(rawB).Compress()
		m := MergeCanonical(a, b)
		if !m.IsCanonical() {
			return false
		}
		want := coveredPosts(a)
		for p := range coveredPosts(b) {
			want[p] = true
		}
		return reflect.DeepEqual(coveredPosts(m), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeManyCanonical(t *testing.T) {
	f := func(raws [][]uint16) bool {
		sets := make([]Set, len(raws))
		want := map[int32]bool{}
		for i, raw := range raws {
			sets[i] = setFromRaw(raw).Compress()
			for p := range coveredPosts(sets[i]) {
				want[p] = true
			}
		}
		m := MergeManyCanonical(sets)
		if !m.IsCanonical() {
			return false
		}
		return reflect.DeepEqual(coveredPosts(m), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// setFromRaw builds intervals from pairs of raw fuzz values.
func setFromRaw(raw []uint16) Set {
	var s Set
	for i := 0; i+1 < len(raw); i += 2 {
		lo := int32(raw[i]%200) + 1
		hi := lo + int32(raw[i+1]%10)
		s = s.Add(lo, hi)
	}
	return s
}

func TestUnionSetSemantics(t *testing.T) {
	a := Set{{1, 1}, {2, 2}}
	b := Set{{2, 2}, {3, 3}}
	u := a.Union(b)
	if len(u) != 3 {
		t.Fatalf("Union dedup failed: %v", u)
	}
}

func TestCardinality(t *testing.T) {
	s := Set{{1, 5}, {7, 7}}
	if got := s.Cardinality(); got != 6 {
		t.Errorf("Cardinality = %d, want 6", got)
	}
	if got := Set(nil).Cardinality(); got != 0 {
		t.Errorf("empty Cardinality = %d", got)
	}
}

func TestSingletonAndString(t *testing.T) {
	s := Singleton(9)
	if !s.Contains(9) || s.Contains(8) {
		t.Error("Singleton containment wrong")
	}
	if got := s.String(); got != "{[9,9]}" {
		t.Errorf("String = %q", got)
	}
	if (Interval{3, 5}).String() != "[3,5]" {
		t.Error("Interval.String wrong")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	tests := []struct {
		a, b Interval
		want bool
	}{
		{Interval{1, 3}, Interval{3, 5}, true},
		{Interval{1, 3}, Interval{4, 5}, false},
		{Interval{1, 9}, Interval{4, 5}, true},
	}
	for _, tc := range tests {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v", tc.a, tc.b, got)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("Overlaps not symmetric for %v, %v", tc.a, tc.b)
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	s := Set{{1, 2}, {3, 4}, {9, 9}}
	if got := s.MemoryBytes(); got != 24 {
		t.Errorf("MemoryBytes = %d, want 24", got)
	}
}

func TestCoversCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		a := setFromRawInts(rng, 15).Compress()
		b := setFromRawInts(rng, 8).Compress()
		got := a.CoversCanonical(b)
		want := true
		for p := int32(1); p <= 300; p++ {
			if b.ContainsCanonical(p) && !a.ContainsCanonical(p) {
				want = false
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: Covers(%v, %v) = %v, want %v", trial, a, b, got, want)
		}
	}
	if !(Set{}).CoversCanonical(Set{}) {
		t.Error("empty covers empty failed")
	}
	if (Set{}).CoversCanonical(Set{{1, 1}}) {
		t.Error("empty covers non-empty")
	}
}

func setFromRawInts(rng *rand.Rand, n int) Set {
	var s Set
	for i := 0; i < rng.Intn(n); i++ {
		lo := int32(1 + rng.Intn(250))
		s = s.Add(lo, lo+int32(rng.Intn(20)))
	}
	return s
}
