package intervals

// StabTree is a stabbing index over the dense post-order domain [1, n]:
// it stores (interval, owner) pairs and answers "which owners have an
// interval containing p?" queries. Algorithm 1 uses it to find the
// label-based ancestors of the current vertex when propagating labels
// (paper §3.2, lines 14–15 and 23–24: "this is reminiscent of a stabbing
// query on post(v), which can be accelerated by traditional interval
// indexing such as the interval tree").
//
// The implementation is a segment tree over the integer domain: every
// inserted interval is decomposed into O(log n) canonical segments, and a
// stabbing query visits the O(log n) nodes on the root-to-leaf path of p.
// Both operations are O(log n) plus output size.
type StabTree struct {
	n      int32
	owners [][]int32 // owners[node] lists owners whose interval covers the node's whole segment
}

// NewStabTree returns an empty stabbing index over the domain [1, n].
func NewStabTree(n int) *StabTree {
	size := 1
	for size < n {
		size *= 2
	}
	return &StabTree{n: int32(n), owners: make([][]int32, 2*size)}
}

// Insert records that owner has a label interval iv. Inserting the same
// (owner, interval) pair twice stores it twice; callers deduplicate via
// the visited-stamp pattern during stabbing.
func (t *StabTree) Insert(iv Interval, owner int32) {
	lo, hi := iv.Lo, iv.Hi
	if lo < 1 {
		lo = 1
	}
	if hi > t.n {
		hi = t.n
	}
	if lo > hi {
		return
	}
	t.insert(1, 1, t.segSize(), lo, hi, owner)
}

func (t *StabTree) segSize() int32 { return int32(len(t.owners) / 2) }

func (t *StabTree) insert(node, nodeLo, nodeHi, lo, hi int32, owner int32) {
	if lo <= nodeLo && nodeHi <= hi {
		t.owners[node] = append(t.owners[node], owner)
		return
	}
	mid := (nodeLo + nodeHi) / 2
	if lo <= mid {
		t.insert(2*node, nodeLo, mid, lo, min32(hi, mid), owner)
	}
	if hi > mid {
		t.insert(2*node+1, mid+1, nodeHi, max32(lo, mid+1), hi, owner)
	}
}

// Stab calls fn for every owner with an interval containing p. An owner
// with multiple covering intervals is reported once per covering segment;
// fn must tolerate duplicates (e.g. via a visited stamp). If fn returns
// false the query stops early and Stab returns false.
func (t *StabTree) Stab(p int32, fn func(owner int32) bool) bool {
	if p < 1 || p > t.n {
		return true
	}
	node, lo, hi := int32(1), int32(1), t.segSize()
	for {
		for _, o := range t.owners[node] {
			if !fn(o) {
				return false
			}
		}
		if lo == hi {
			return true
		}
		mid := (lo + hi) / 2
		if p <= mid {
			node, hi = 2*node, mid
		} else {
			node, lo = 2*node+1, mid+1
		}
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
