// Package grid implements the hierarchical space partitioning behind
// GeoReach's SPA-Graph (paper §2.2.2): a quad-hierarchy of grid levels
// where level 0 is the most detailed partitioning and every four sibling
// cells of level l merge into one cell of level l+1.
package grid

import (
	"fmt"

	"repro/internal/geom"
)

// Cell identifies one grid cell: a level and the (X, Y) position of the
// cell within that level's regular grid. Level 0 is the finest level.
type Cell struct {
	Level uint8
	X, Y  int32
}

// Key packs a cell into a comparable 64-bit value usable as a map key and
// for compact ReachGrid storage.
func (c Cell) Key() uint64 {
	return uint64(c.Level)<<56 | uint64(uint32(c.X))<<28 | uint64(uint32(c.Y))
}

// CellFromKey unpacks a Key back into a Cell.
func CellFromKey(k uint64) Cell {
	return Cell{
		Level: uint8(k >> 56),
		X:     int32((k >> 28) & 0xFFFFFFF),
		Y:     int32(k & 0xFFFFFFF),
	}
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("L%d(%d,%d)", c.Level, c.X, c.Y) }

// Hierarchy is a quad-hierarchy over a rectangular space. Level l splits
// the space into 2^(Top-l) cells per axis, so level Top is a single cell
// covering everything and level 0 holds 4^Top cells.
type Hierarchy struct {
	space geom.Rect
	top   uint8
}

// NewHierarchy returns a hierarchy over space with the given number of
// levels (top = levels-1). levels must be in [1, 20]; level 0 then has
// 2^(levels-1) cells per axis.
func NewHierarchy(space geom.Rect, levels int) *Hierarchy {
	if levels < 1 || levels > 20 {
		panic(fmt.Sprintf("grid: levels %d out of range [1,20]", levels))
	}
	if !space.Valid() {
		space = geom.NewRect(-0.5, -0.5, 0.5, 0.5)
	} else {
		// Inflate only degenerate axes (collinear or identical points):
		// the surviving extent must stay intact so every point of the
		// space remains inside the hierarchy and CellAt never clamps a
		// real point into the wrong cell.
		if space.Width() == 0 {
			space.Min.X -= 0.5
			space.Max.X += 0.5
		}
		if space.Height() == 0 {
			space.Min.Y -= 0.5
			space.Max.Y += 0.5
		}
	}
	return &Hierarchy{space: space, top: uint8(levels - 1)}
}

// Space returns the rectangle the hierarchy partitions.
func (h *Hierarchy) Space() geom.Rect { return h.space }

// Levels returns the number of levels.
func (h *Hierarchy) Levels() int { return int(h.top) + 1 }

// SideCells returns the number of cells per axis at the given level.
func (h *Hierarchy) SideCells(level uint8) int32 { return 1 << (h.top - level) }

// CellAt returns the level-l cell containing p. Points outside the space
// are clamped to the boundary cells.
func (h *Hierarchy) CellAt(p geom.Point, level uint8) Cell {
	side := h.SideCells(level)
	fx := (p.X - h.space.Min.X) / h.space.Width() * float64(side)
	fy := (p.Y - h.space.Min.Y) / h.space.Height() * float64(side)
	x := clamp(int32(fx), 0, side-1)
	y := clamp(int32(fy), 0, side-1)
	return Cell{Level: level, X: x, Y: y}
}

func clamp(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Rect returns the spatial extent of cell c.
func (h *Hierarchy) Rect(c Cell) geom.Rect {
	side := float64(h.SideCells(c.Level))
	w := h.space.Width() / side
	ht := h.space.Height() / side
	minX := h.space.Min.X + float64(c.X)*w
	minY := h.space.Min.Y + float64(c.Y)*ht
	return geom.Rect{
		Min: geom.Pt(minX, minY),
		Max: geom.Pt(minX+w, minY+ht),
	}
}

// CoverRect calls fn for every level-l cell intersecting r (clamped to
// the space). GeoReach uses it to seed ReachGrids from spatial vertices
// with rectangular extents (paper footnote 1).
func (h *Hierarchy) CoverRect(r geom.Rect, level uint8, fn func(Cell)) {
	lo := h.CellAt(r.Min, level)
	hi := h.CellAt(r.Max, level)
	for x := lo.X; x <= hi.X; x++ {
		for y := lo.Y; y <= hi.Y; y++ {
			fn(Cell{Level: level, X: x, Y: y})
		}
	}
}

// Parent returns the cell of the next coarser level containing c, and
// false if c is already at the top level.
func (h *Hierarchy) Parent(c Cell) (Cell, bool) {
	if c.Level >= h.top {
		return Cell{}, false
	}
	return Cell{Level: c.Level + 1, X: c.X / 2, Y: c.Y / 2}, true
}

// CellSet is a set of grid cells (a ReachGrid), keyed by Cell.Key.
type CellSet map[uint64]struct{}

// Add inserts c into the set.
func (s CellSet) Add(c Cell) { s[c.Key()] = struct{}{} }

// Has reports whether c is in the set.
func (s CellSet) Has(c Cell) bool {
	_, ok := s[c.Key()]
	return ok
}

// Len returns the number of cells.
func (s CellSet) Len() int { return len(s) }

// Cells returns the members of the set in unspecified order.
func (s CellSet) Cells() []Cell {
	out := make([]Cell, 0, len(s))
	for k := range s {
		out = append(out, CellFromKey(k))
	}
	return out
}

// Clone returns a copy of s.
func (s CellSet) Clone() CellSet {
	out := make(CellSet, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	return out
}

// UnionWith adds every cell of other to s.
func (s CellSet) UnionWith(other CellSet) {
	for k := range other {
		s[k] = struct{}{}
	}
}

// Merge applies GeoReach's MERGE_COUNT rule to s in place: starting from
// level 0, whenever more than mergeCount sibling quad-cells (children of
// the same parent) are present at a level, they are replaced by their
// parent cell on the next level. The invariant that every stored cell
// contains at least one reachable spatial vertex is preserved, because a
// parent cell covers its children.
func (s CellSet) Merge(h *Hierarchy, mergeCount int) {
	if mergeCount <= 0 {
		mergeCount = 1
	}
	for level := uint8(0); level < h.top; level++ {
		siblings := make(map[uint64][]uint64) // parent key -> child keys present
		for k := range s {
			c := CellFromKey(k)
			if c.Level != level {
				continue
			}
			p, ok := h.Parent(c)
			if !ok {
				continue
			}
			siblings[p.Key()] = append(siblings[p.Key()], k)
		}
		for pk, kids := range siblings {
			if len(kids) > mergeCount {
				for _, k := range kids {
					delete(s, k)
				}
				s[pk] = struct{}{}
			}
		}
	}
	// Absorb any cell covered by a coarser cell also in the set.
	for k := range s {
		c := CellFromKey(k)
		for {
			p, ok := h.Parent(c)
			if !ok {
				break
			}
			if s.Has(p) {
				delete(s, k)
				break
			}
			c = p
		}
	}
}

// IntersectsRect reports whether any cell of s overlaps r, and whether
// some overlapping cell is fully contained in r — the two signals
// GeoReach's pruning uses for G-vertices.
func (s CellSet) IntersectsRect(h *Hierarchy, r geom.Rect) (intersects, contained bool) {
	for k := range s {
		cr := h.Rect(CellFromKey(k))
		if !cr.Intersects(r) {
			continue
		}
		intersects = true
		if r.ContainsRect(cr) {
			return true, true
		}
	}
	return intersects, false
}

// MemoryBytes returns the footprint of the set (8 bytes per cell key).
func (s CellSet) MemoryBytes() int64 { return int64(8 * len(s)) }
