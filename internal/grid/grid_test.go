package grid

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func unitHierarchy(levels int) *Hierarchy {
	return NewHierarchy(geom.NewRect(0, 0, 100, 100), levels)
}

func TestCellKeyRoundTrip(t *testing.T) {
	cells := []Cell{
		{0, 0, 0},
		{3, 17, 92},
		{7, 127, 127},
		{19, 1 << 19, 42},
	}
	for _, c := range cells {
		if got := CellFromKey(c.Key()); got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestHierarchyGeometry(t *testing.T) {
	h := unitHierarchy(4) // top level 3; level 0 has 8x8 cells
	if h.Levels() != 4 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	if h.SideCells(0) != 8 || h.SideCells(3) != 1 {
		t.Fatal("SideCells wrong")
	}
	c := h.CellAt(geom.Pt(0, 0), 0)
	if c != (Cell{0, 0, 0}) {
		t.Errorf("CellAt origin = %v", c)
	}
	c = h.CellAt(geom.Pt(99.9, 99.9), 0)
	if c != (Cell{0, 7, 7}) {
		t.Errorf("CellAt far corner = %v", c)
	}
	// Boundary point and outside points clamp.
	if h.CellAt(geom.Pt(100, 100), 0) != (Cell{0, 7, 7}) {
		t.Error("boundary clamp failed")
	}
	if h.CellAt(geom.Pt(-5, 200), 0) != (Cell{0, 0, 7}) {
		t.Error("outside clamp failed")
	}
	// Cell rect contains its generating point.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		for lvl := uint8(0); lvl < 4; lvl++ {
			cell := h.CellAt(p, lvl)
			if !h.Rect(cell).ContainsPoint(p) {
				t.Fatalf("cell %v does not contain %v", cell, p)
			}
		}
	}
}

func TestParentChain(t *testing.T) {
	h := unitHierarchy(4)
	c := Cell{0, 5, 6}
	p1, ok := h.Parent(c)
	if !ok || p1 != (Cell{1, 2, 3}) {
		t.Fatalf("Parent = %v", p1)
	}
	p2, _ := h.Parent(p1)
	if p2 != (Cell{2, 1, 1}) {
		t.Fatalf("grandparent = %v", p2)
	}
	top, _ := h.Parent(p2)
	if top != (Cell{3, 0, 0}) {
		t.Fatalf("top = %v", top)
	}
	if _, ok := h.Parent(top); ok {
		t.Error("top cell has a parent")
	}
	// Parent rect covers child rect.
	if !h.Rect(p1).ContainsRect(h.Rect(c)) {
		t.Error("parent rect does not cover child")
	}
}

func TestDegenerateSpace(t *testing.T) {
	// All points identical.
	h := NewHierarchy(geom.RectFromPoint(geom.Pt(3, 3)), 4)
	c := h.CellAt(geom.Pt(3, 3), 0)
	if !h.Rect(c).ContainsPoint(geom.Pt(3, 3)) {
		t.Error("degenerate space cell misses the point")
	}
	// Empty space.
	h = NewHierarchy(geom.EmptyRect(), 3)
	if h.Space().IsEmpty() {
		t.Error("hierarchy space still empty")
	}
}

func TestCollinearSpace(t *testing.T) {
	// A zero-width space (all points on the line x=6). Only the
	// degenerate axis may be inflated: the points must remain inside the
	// space, and each must land in a cell whose rectangle contains it —
	// otherwise a ReachGrid seeded from these points fails to cover
	// them and GeoReach's G-vertex pruning gives false negatives.
	pts := []geom.Point{geom.Pt(6, 6), geom.Pt(6, 49)}
	space := geom.RectFromPoint(pts[0]).UnionPoint(pts[1])
	for _, levels := range []int{1, 4, 8} {
		h := NewHierarchy(space, levels)
		for _, p := range pts {
			if !h.Space().ContainsPoint(p) {
				t.Errorf("levels=%d: space %v lost point %v", levels, h.Space(), p)
			}
			c := h.CellAt(p, 0)
			if !h.Rect(c).ContainsPoint(p) {
				t.Errorf("levels=%d: cell %v (%v) misses point %v", levels, c, h.Rect(c), p)
			}
		}
	}
	// Same for a zero-height space.
	h := NewHierarchy(geom.NewRect(2, 7, 40, 7), 5)
	for _, p := range []geom.Point{geom.Pt(2, 7), geom.Pt(40, 7)} {
		if !h.Rect(h.CellAt(p, 0)).ContainsPoint(p) {
			t.Errorf("zero-height space: cell misses point %v", p)
		}
	}
}

func TestNewHierarchyPanics(t *testing.T) {
	for _, levels := range []int{0, 21, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("levels=%d: expected panic", levels)
				}
			}()
			NewHierarchy(geom.NewRect(0, 0, 1, 1), levels)
		}()
	}
}

func TestMergePaperExample(t *testing.T) {
	// Example 2.5: with MERGE_COUNT = 1, two sibling quad-cells merge
	// into their parent.
	h := unitHierarchy(4)
	s := make(CellSet)
	s.Add(Cell{0, 0, 0})
	s.Add(Cell{0, 1, 1}) // same parent {1,0,0}
	s.Add(Cell{0, 6, 6}) // lone cell elsewhere
	s.Merge(h, 1)
	if !s.Has(Cell{1, 0, 0}) {
		t.Error("siblings not merged into parent")
	}
	if s.Has(Cell{0, 0, 0}) || s.Has(Cell{0, 1, 1}) {
		t.Error("children kept after merge")
	}
	if !s.Has(Cell{0, 6, 6}) {
		t.Error("lone cell should survive")
	}
}

func TestMergeCascades(t *testing.T) {
	h := unitHierarchy(4)
	s := make(CellSet)
	// All four children of {1,0,0} and of {1,1,1}: with mergeCount 1
	// both parents appear, then both merge into {2,0,0}.
	for _, c := range []Cell{{0, 0, 0}, {0, 1, 0}, {0, 0, 1}, {0, 1, 1},
		{0, 2, 2}, {0, 3, 2}, {0, 2, 3}, {0, 3, 3}} {
		s.Add(c)
	}
	s.Merge(h, 1)
	if s.Len() != 1 || !s.Has(Cell{2, 0, 0}) {
		t.Errorf("cascade merge result: %v", s.Cells())
	}
}

func TestMergeRespectsCount(t *testing.T) {
	h := unitHierarchy(4)
	s := make(CellSet)
	s.Add(Cell{0, 0, 0})
	s.Add(Cell{0, 1, 1})
	s.Merge(h, 3) // 2 siblings <= 3: no merge
	if s.Len() != 2 {
		t.Errorf("unexpected merge: %v", s.Cells())
	}
}

func TestMergeAbsorbsCoveredCells(t *testing.T) {
	h := unitHierarchy(4)
	s := make(CellSet)
	s.Add(Cell{1, 0, 0})
	s.Add(Cell{0, 1, 1}) // covered by the level-1 cell
	s.Merge(h, 99)
	if s.Len() != 1 || !s.Has(Cell{1, 0, 0}) {
		t.Errorf("covered cell not absorbed: %v", s.Cells())
	}
}

func TestIntersectsRect(t *testing.T) {
	h := unitHierarchy(4) // level 0 cell = 12.5x12.5
	s := make(CellSet)
	s.Add(Cell{0, 0, 0}) // [0,12.5]x[0,12.5]
	s.Add(Cell{0, 7, 7}) // [87.5,100]^2

	inter, cont := s.IntersectsRect(h, geom.NewRect(40, 40, 60, 60))
	if inter || cont {
		t.Error("disjoint region reported intersecting")
	}
	inter, cont = s.IntersectsRect(h, geom.NewRect(10, 10, 60, 60))
	if !inter || cont {
		t.Error("partial overlap misreported")
	}
	inter, cont = s.IntersectsRect(h, geom.NewRect(-1, -1, 50, 50))
	if !inter || !cont {
		t.Error("containing region misreported")
	}
}

func TestCellSetOps(t *testing.T) {
	a := make(CellSet)
	a.Add(Cell{0, 1, 1})
	b := a.Clone()
	b.Add(Cell{0, 2, 2})
	if a.Len() != 1 || b.Len() != 2 {
		t.Error("Clone aliasing")
	}
	a.UnionWith(b)
	if a.Len() != 2 {
		t.Error("UnionWith failed")
	}
	if a.MemoryBytes() != 16 {
		t.Errorf("MemoryBytes = %d", a.MemoryBytes())
	}
	if (Cell{0, 1, 1}).String() == "" {
		t.Error("empty String")
	}
}
