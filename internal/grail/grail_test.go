package grail

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomDAG(rng *rand.Rand, n, edges int) *graph.Graph {
	perm := rng.Perm(n)
	b := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if perm[u] > perm[v] {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

func TestReachMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		for _, k := range []int{1, 3} {
			idx := Build(g, Options{Traversals: k, Seed: int64(trial)})
			for u := 0; u < n; u++ {
				reach := g.Reachable(u)
				for v := 0; v < n; v++ {
					if got := idx.Reach(u, v); got != reach[v] {
						t.Fatalf("trial %d k=%d: Reach(%d,%d) = %v, want %v",
							trial, k, u, v, got, reach[v])
					}
				}
			}
		}
	}
}

func TestContainmentIsSoundNegativeFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		idx := Build(g, Options{Seed: int64(trial)})
		for u := 0; u < n; u++ {
			reach := g.Reachable(u)
			for v := 0; v < n; v++ {
				if reach[v] && !idx.contains(int32(u), int32(v)) {
					t.Fatalf("trial %d: reachable pair (%d,%d) fails containment", trial, u, v)
				}
			}
		}
	}
}

func TestMoreTraversalsNeverHurtPruning(t *testing.T) {
	// With more traversals, strictly more unreachable pairs should be
	// caught by containment alone (at least never fewer).
	rng := rand.New(rand.NewSource(419))
	g := randomDAG(rng, 50, 120)
	count := func(k int) int {
		idx := Build(g, Options{Traversals: k, Seed: 5})
		pruned := 0
		for u := int32(0); u < 50; u++ {
			for v := int32(0); v < 50; v++ {
				if u != v && !idx.contains(u, v) {
					pruned++
				}
			}
		}
		return pruned
	}
	if count(4) < count(1) {
		t.Error("more traversals pruned fewer pairs")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	g := randomDAG(rng, 30, 80)
	a := Build(g, Options{Seed: 9})
	b := Build(g, Options{Seed: 9})
	for i := range a.labels {
		if a.labels[i] != b.labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Build(graph.FromEdges(2, [][2]int{{0, 1}, {1, 0}}), Options{})
}

func TestMemoryBytesScalesWithK(t *testing.T) {
	g := graph.FromEdges(10, [][2]int{{0, 1}})
	if Build(g, Options{Traversals: 4}).MemoryBytes() <= Build(g, Options{Traversals: 1}).MemoryBytes() {
		t.Error("memory does not scale with traversals")
	}
}
