// Package grail implements the GRAIL reachability index (paper §7.1): k
// randomized DFS traversals each assign every vertex an interval label
// [min, post] over that traversal's post-order, such that if u reaches v
// then v's interval is contained in u's in *every* traversal. A
// containment violation in any dimension is therefore a certain
// negative; the remaining pairs fall back to a DFS pruned by the same
// containment test.
//
// Unlike the spanning-forest labels of internal/labeling, GRAIL
// propagates interval minima across *all* edges (not just tree edges),
// which makes the containment test necessary but not sufficient — the
// classic Label+G tradeoff: constant-size labels, occasional graph
// search.
package grail

import (
	"math/rand"

	"repro/internal/graph"
)

// DefaultTraversals is the default number of randomized labelings;
// GRAIL's authors recommend small k (2–5).
const DefaultTraversals = 3

// Index is a GRAIL reachability index over a DAG.
type Index struct {
	g *graph.Graph
	k int
	// labels[i*2*n + 2*v] = min, [.. +1] = post for traversal i,
	// flattened for locality.
	labels []int32
}

// Options configures Build.
type Options struct {
	// Traversals is the number of randomized labelings (0 selects
	// DefaultTraversals).
	Traversals int
	// Seed fixes the random child orders for reproducible builds.
	Seed int64
}

// Build constructs the index for the DAG g. It panics if g has a cycle;
// condense strongly connected components first.
func Build(g *graph.Graph, opts Options) *Index {
	if !g.IsDAG() {
		panic("grail: Build requires a DAG; condense SCCs first")
	}
	k := opts.Traversals
	if k <= 0 {
		k = DefaultTraversals
	}
	n := g.NumVertices()
	idx := &Index{g: g, k: k, labels: make([]int32, k*2*n)}
	rng := rand.New(rand.NewSource(opts.Seed))

	topo, _ := g.TopoOrder()
	order := make([]int32, n)
	copy(order, topo)

	post := make([]int32, n)
	for i := 0; i < k; i++ {
		idx.randomPostOrder(rng, post)
		base := i * 2 * n
		// min[v] = min over post of v and all successors' minima;
		// process children before parents.
		for j := n - 1; j >= 0; j-- {
			v := order[j]
			min := post[v]
			for _, u := range g.Out(int(v)) {
				if m := idx.labels[base+2*int(u)]; m < min {
					min = m
				}
			}
			idx.labels[base+2*int(v)] = min
			idx.labels[base+2*int(v)+1] = post[v]
		}
	}
	return idx
}

// randomPostOrder assigns 1-based post-order numbers from a DFS over a
// random root permutation with randomly shuffled child visits.
func (idx *Index) randomPostOrder(rng *rand.Rand, post []int32) {
	g := idx.g
	n := g.NumVertices()
	visited := make([]bool, n)
	next := int32(1)

	type frame struct {
		v    int32
		kids []int32
		pos  int
	}
	var frames []frame
	shuffled := func(v int32) []int32 {
		adj := g.Out(int(v))
		kids := make([]int32, len(adj))
		copy(kids, adj)
		rng.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
		return kids
	}
	dfs := func(root int32) {
		visited[root] = true
		frames = append(frames[:0], frame{v: root, kids: shuffled(root)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.pos < len(f.kids) {
				u := f.kids[f.pos]
				f.pos++
				if !visited[u] {
					visited[u] = true
					frames = append(frames, frame{v: u, kids: shuffled(u)})
					advanced = true
					break
				}
			}
			if !advanced {
				post[f.v] = next
				next++
				frames = frames[:len(frames)-1]
			}
		}
	}
	roots := make([]int32, 0, 16)
	for v := 0; v < n; v++ {
		if g.InDegree(v) == 0 {
			roots = append(roots, int32(v))
		}
	}
	rng.Shuffle(len(roots), func(i, j int) { roots[i], roots[j] = roots[j], roots[i] })
	for _, r := range roots {
		if !visited[r] {
			dfs(r)
		}
	}
	for v := 0; v < n; v++ {
		if !visited[v] {
			dfs(int32(v))
		}
	}
}

// contains reports whether v's interval is inside u's in every
// traversal — the necessary condition for u reaching v.
func (idx *Index) contains(u, v int32) bool {
	n := idx.g.NumVertices()
	for i := 0; i < idx.k; i++ {
		base := i * 2 * n
		if idx.labels[base+2*int(v)] < idx.labels[base+2*int(u)] ||
			idx.labels[base+2*int(v)+1] > idx.labels[base+2*int(u)+1] {
			return false
		}
	}
	return true
}

// Reach answers GReach(u, v). Reach(v, v) is true.
func (idx *Index) Reach(u, v int) bool {
	if u == v {
		return true
	}
	if !idx.contains(int32(u), int32(v)) {
		return false
	}
	visited := make(map[int32]struct{}, 64)
	return idx.search(int32(u), int32(v), visited)
}

func (idx *Index) search(u, target int32, visited map[int32]struct{}) bool {
	visited[u] = struct{}{}
	for _, w := range idx.g.Out(int(u)) {
		if w == target {
			return true
		}
		if _, seen := visited[w]; seen {
			continue
		}
		if !idx.contains(w, target) {
			continue
		}
		if idx.search(w, target, visited) {
			return true
		}
	}
	return false
}

// MemoryBytes returns the label footprint: 2k int32 per vertex.
func (idx *Index) MemoryBytes() int64 { return int64(4 * len(idx.labels)) }
