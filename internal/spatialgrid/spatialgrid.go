// Package spatialgrid implements a uniform grid index over 3D points —
// the simplest space-oriented-partitioning structure (paper §7.2) and a
// second alternative backend for 3DReach's point index. Points are
// bucketed by (x, y, z) cell; range queries visit only the overlapping
// cells.
//
// The grid shines when queries are small relative to the cell size and
// degrades gracefully to a scan for huge queries — exactly the tradeoff
// the 3D-backend ablation quantifies against the R-tree and k-d tree.
package spatialgrid

import (
	"math"

	"repro/internal/geom"
	"repro/internal/trace"
)

// Point is an indexed 3D point with the caller's identifier.
type Point struct {
	X, Y, Z float64
	ID      int32
}

// Grid is a uniform 3D grid index. Build with New.
type Grid struct {
	min      [3]float64
	cellSize [3]float64
	cells    [3]int32
	buckets  [][]Point
	n        int
}

// New builds a grid over the points, sized so that the average bucket
// holds roughly targetPerCell points (default 8 when <= 0). Points
// outside no box exist — the grid bounds adapt to the data.
func New(pts []Point, targetPerCell int) *Grid {
	if targetPerCell <= 0 {
		targetPerCell = 8
	}
	g := &Grid{n: len(pts)}
	if len(pts) == 0 {
		g.cells = [3]int32{1, 1, 1}
		g.cellSize = [3]float64{1, 1, 1}
		g.buckets = make([][]Point, 1)
		return g
	}
	max := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	g.min = [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	for _, p := range pts {
		c := [3]float64{p.X, p.Y, p.Z}
		for d := 0; d < 3; d++ {
			g.min[d] = math.Min(g.min[d], c[d])
			max[d] = math.Max(max[d], c[d])
		}
	}
	// Cells per axis: cube root of the bucket count, clamped so axes
	// with zero extent collapse to one cell.
	bucketTarget := float64(len(pts))/float64(targetPerCell) + 1
	per := int32(math.Cbrt(bucketTarget)) + 1
	for d := 0; d < 3; d++ {
		extent := max[d] - g.min[d]
		if extent <= 0 {
			g.cells[d] = 1
			g.cellSize[d] = 1
			continue
		}
		g.cells[d] = per
		g.cellSize[d] = extent / float64(per)
	}
	g.buckets = make([][]Point, int(g.cells[0])*int(g.cells[1])*int(g.cells[2]))
	for _, p := range pts {
		g.buckets[g.bucketOf(p.X, p.Y, p.Z)] = append(g.buckets[g.bucketOf(p.X, p.Y, p.Z)], p)
	}
	return g
}

// cellIdx returns the clamped cell index of coordinate v along axis d.
func (g *Grid) cellIdx(v float64, d int) int32 {
	i := int32((v - g.min[d]) / g.cellSize[d])
	if i < 0 {
		return 0
	}
	if i >= g.cells[d] {
		return g.cells[d] - 1
	}
	return i
}

func (g *Grid) bucketOf(x, y, z float64) int {
	return int(g.cellIdx(x, 0))*int(g.cells[1])*int(g.cells[2]) +
		int(g.cellIdx(y, 1))*int(g.cells[2]) +
		int(g.cellIdx(z, 2))
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return g.n }

// Search calls fn for every point inside the box (boundary inclusive).
// If fn returns false the search stops and Search returns false.
func (g *Grid) Search(min, max [3]float64, fn func(p Point) bool) bool {
	return g.SearchTraced(min, max, nil, fn)
}

// SearchTraced is Search with instrumentation: every scanned bucket
// counts as an index leaf and every point compared against the box as a
// tested entry. A nil sp makes it exactly Search.
func (g *Grid) SearchTraced(min, max [3]float64, sp *trace.Span, fn func(p Point) bool) bool {
	if g.n == 0 {
		return true
	}
	x0, x1 := g.cellIdx(min[0], 0), g.cellIdx(max[0], 0)
	y0, y1 := g.cellIdx(min[1], 1), g.cellIdx(max[1], 1)
	z0, z1 := g.cellIdx(min[2], 2), g.cellIdx(max[2], 2)
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			base := int(x)*int(g.cells[1])*int(g.cells[2]) + int(y)*int(g.cells[2])
			for z := z0; z <= z1; z++ {
				bucket := g.buckets[base+int(z)]
				sp.IncLeaf()
				sp.AddEntries(len(bucket))
				for _, p := range bucket {
					if p.X >= min[0] && p.X <= max[0] &&
						p.Y >= min[1] && p.Y <= max[1] &&
						p.Z >= min[2] && p.Z <= max[2] {
						if !fn(p) {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// SearchBox3 adapts Search to a geom.Box3 query.
func (g *Grid) SearchBox3(q geom.Box3, fn func(p Point) bool) bool {
	return g.SearchBox3Traced(q, nil, fn)
}

// SearchBox3Traced adapts SearchTraced to a geom.Box3 query.
func (g *Grid) SearchBox3Traced(q geom.Box3, sp *trace.Span, fn func(p Point) bool) bool {
	return g.SearchTraced(
		[3]float64{q.Min.X, q.Min.Y, q.Min.Z},
		[3]float64{q.Max.X, q.Max.Y, q.Max.Z}, sp, fn)
}

// Any reports whether some indexed point lies inside the box.
func (g *Grid) Any(min, max [3]float64) bool {
	return !g.Search(min, max, func(Point) bool { return false })
}

// MemoryBytes returns the index footprint: points plus bucket headers.
func (g *Grid) MemoryBytes() int64 {
	return int64(g.n)*28 + int64(len(g.buckets))*24
}
