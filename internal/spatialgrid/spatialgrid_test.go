package spatialgrid

import (
	"math/rand"
	"testing"
)

func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X:  rng.Float64() * 100,
			Y:  rng.Float64() * 100,
			Z:  float64(rng.Intn(1000)),
			ID: int32(i),
		}
	}
	return pts
}

func TestSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(800)
		pts := randomPoints(rng, n)
		g := New(pts, 1+rng.Intn(16))
		if g.Len() != n {
			t.Fatalf("Len = %d", g.Len())
		}
		for q := 0; q < 25; q++ {
			min := [3]float64{rng.Float64() * 100, rng.Float64() * 100, float64(rng.Intn(1000))}
			max := [3]float64{min[0] + rng.Float64()*40, min[1] + rng.Float64()*40, min[2] + float64(rng.Intn(400))}
			want := make(map[int32]bool)
			for _, p := range pts {
				if p.X >= min[0] && p.X <= max[0] && p.Y >= min[1] && p.Y <= max[1] &&
					p.Z >= min[2] && p.Z <= max[2] {
					want[p.ID] = true
				}
			}
			got := make(map[int32]bool)
			g.Search(min, max, func(p Point) bool {
				got[p.ID] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("trial %d: missing %d", trial, id)
				}
			}
			if g.Any(min, max) != (len(want) > 0) {
				t.Fatal("Any wrong")
			}
		}
	}
}

func TestQueryLargerThanData(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randomPoints(rng, 200)
	g := New(pts, 8)
	count := 0
	g.Search([3]float64{-1e9, -1e9, -1e9}, [3]float64{1e9, 1e9, 1e9}, func(Point) bool {
		count++
		return true
	})
	if count != 200 {
		t.Errorf("count = %d, want 200", count)
	}
}

func TestEarlyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := New(randomPoints(rng, 500), 8)
	count := 0
	completed := g.Search([3]float64{0, 0, 0}, [3]float64{100, 100, 1000}, func(Point) bool {
		count++
		return count < 3
	})
	if completed || count != 3 {
		t.Errorf("completed=%v count=%d", completed, count)
	}
}

func TestDegenerateData(t *testing.T) {
	// All points identical: one cell per axis.
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{X: 3, Y: 3, Z: 3, ID: int32(i)}
	}
	g := New(pts, 4)
	count := 0
	g.Search([3]float64{0, 0, 0}, [3]float64{5, 5, 5}, func(Point) bool { count++; return true })
	if count != 50 {
		t.Errorf("count = %d", count)
	}
	if g.Any([3]float64{4, 4, 4}, [3]float64{9, 9, 9}) {
		t.Error("phantom hit")
	}
}

func TestEmpty(t *testing.T) {
	g := New(nil, 0)
	if g.Any([3]float64{0, 0, 0}, [3]float64{1, 1, 1}) {
		t.Error("empty grid hit")
	}
	if g.MemoryBytes() < 0 {
		t.Error("negative memory")
	}
}
