package lint

import (
	"go/ast"
	"go/types"
)

// SnapshotMut guards the paper's publish-then-freeze discipline: types
// annotated
//
//	//lint:frozen
//	type Snapshot struct { ... }
//
// are immutable published views — once a reader can see one, nothing
// may be written through it (lock-free readers rely on it). The
// analyzer flags assignments, ++/-- and element writes whose target
// chain passes through a frozen-typed value, including writes through
// local aliases of frozen-rooted data (sp := snap.spatial; sp[i] = ...).
// Constructors stay exempt through the owned-value rule: a snapshot
// assigned from a composite literal or new in the same function is
// still private and may be filled in freely.
var SnapshotMut = &Analyzer{
	Name: "snapshotmut",
	Doc:  "no writes through //lint:frozen published views",
	Run:  runSnapshotMut,
}

func runSnapshotMut(pass *Pass) {
	frozen := frozenTypes(pass.Pkg)
	if len(frozen) == 0 {
		return
	}
	for _, fb := range packageFuncs(pass.Pkg) {
		checkSnapshotFunc(pass, frozen, fb)
	}
}

func checkSnapshotFunc(pass *Pass, frozen map[*types.Named]bool, fb funcBody) {
	info := pass.Pkg.Info
	owned := ownedVars(info, fb.body)

	// tainted holds locals that directly alias frozen-rooted data.
	// Source order is a sound-enough approximation for the
	// straight-line aliasing the idiom produces.
	tainted := make(map[*types.Var]bool)
	isFrozenExpr := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		named, ok := types.Unalias(deref(tv.Type)).(*types.Named)
		return ok && frozen[named]
	}
	// chainHitsFrozen walks the base chain of e; steps counts the
	// selector/index/star hops taken before the frozen value was seen
	// (0 = e itself is the frozen value).
	chainHitsFrozen := func(e ast.Expr, minSteps int) (ast.Expr, bool) {
		steps := 0
		for {
			e = ast.Unparen(e)
			if steps >= minSteps {
				if isFrozenExpr(e) {
					return e, true
				}
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && tainted[v] {
						return e, true
					}
				}
			}
			switch x := e.(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return nil, false
			}
			steps++
		}
	}

	check := func(target ast.Expr, what string) {
		if rootOwned(info, target, owned) {
			return
		}
		// A plain rebinding (v = other) is fine; only writes that step
		// *into* frozen data (through a selector/index/star) mutate the
		// published view.
		if hit, ok := chainHitsFrozen(target, 1); ok {
			tv := info.Types[hit]
			pass.Reportf(target.Pos(),
				"%s through frozen %s: %s is a published immutable view",
				what, types.ExprString(hit), types.TypeString(deref(tv.Type), types.RelativeTo(pass.Pkg.Types)))
		}
	}

	ast.Inspect(fb.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // literals are their own funcBody
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				check(l, "write")
			}
			// Track direct aliases: v := snap.spatial (no calls — a
			// call may already copy).
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident)
					if !ok {
						continue
					}
					if _, ok := chainHitsFrozen(s.Rhs[i], 0); !ok {
						continue
					}
					if hasCall(s.Rhs[i]) {
						continue
					}
					if v, ok := info.Defs[id].(*types.Var); ok {
						tainted[v] = true
					} else if v, ok := info.Uses[id].(*types.Var); ok {
						tainted[v] = true
					}
				}
			}
		case *ast.IncDecStmt:
			check(s.X, "increment")
		}
		return true
	})
}

// hasCall reports whether e contains a function call (whose result is
// a fresh value, not an alias).
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
