package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow keeps request paths cancelable: in any function that receives
// a context.Context or an *http.Request (handlers, shard fan-out,
// hedges, the update proxy), blocking operations must thread that
// context. Flagged:
//
//   - context.Background() / context.TODO() — they detach the work from
//     the request. Exempt when passed directly to a log/slog call: the
//     logging API wants a context parameter but must not fail with the
//     request.
//   - http.NewRequest — use http.NewRequestWithContext.
//   - http.Get/Head/Post/PostForm — they build uncancelable requests.
//   - time.Sleep — it ignores cancellation; select on ctx.Done() and a
//     timer instead.
//
// Function literals are separate scopes: a literal is in scope only if
// it takes a context itself, so deliberately detached work (async
// straggler drains, background scrapes) stays exempt.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "request paths must thread the request context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, fb := range packageFuncs(pass.Pkg) {
		sig := funcSignature(pass.Pkg.Info, fb)
		if sig == nil || !hasRequestParam(sig) {
			continue
		}
		checkCtxFlowFunc(pass, fb)
	}
}

// funcSignature resolves the signature of a declaration or literal.
func funcSignature(info *types.Info, fb funcBody) *types.Signature {
	if fb.decl != nil {
		if fn, ok := info.Defs[fb.decl.Name].(*types.Func); ok {
			sig, _ := fn.Type().(*types.Signature)
			return sig
		}
		return nil
	}
	tv, ok := info.Types[fb.lit]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// hasRequestParam reports whether the signature carries a request
// context: a context.Context or *http.Request parameter.
func hasRequestParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if namedFrom(t, "context", "Context") {
			return true
		}
		if p, ok := types.Unalias(t).(*types.Pointer); ok && namedFrom(p.Elem(), "net/http", "Request") {
			return true
		}
	}
	return false
}

func checkCtxFlowFunc(pass *Pass, fb funcBody) {
	info := pass.Pkg.Info

	// Collect the argument calls of log/slog invocations first: a
	// context.Background() passed straight into a slog call is the
	// accepted idiom (logging must not be canceled with the request).
	slogArg := make(map[*ast.CallExpr]bool)
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "log/slog" {
			return true
		}
		for _, arg := range call.Args {
			if ac, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				slogArg[ac] = true
			}
		}
		return true
	})

	ast.Inspect(fb.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope, checked on its own terms
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case funcFrom(fn, "context", "Background"), funcFrom(fn, "context", "TODO"):
			if !slogArg[call] {
				pass.Reportf(call.Pos(),
					"context.%s() in a request path detaches the work from the request; thread the caller's context",
					fn.Name())
			}
		case funcFrom(fn, "net/http", "NewRequest"):
			pass.Reportf(call.Pos(),
				"http.NewRequest in a request path builds an uncancelable request; use http.NewRequestWithContext")
		case funcFrom(fn, "net/http", "Get"), funcFrom(fn, "net/http", "Head"),
			funcFrom(fn, "net/http", "Post"), funcFrom(fn, "net/http", "PostForm"):
			pass.Reportf(call.Pos(),
				"http.%s in a request path cannot be canceled; use http.NewRequestWithContext + Do",
				fn.Name())
		case funcFrom(fn, "time", "Sleep"):
			pass.Reportf(call.Pos(),
				"time.Sleep in a request path ignores cancellation; select on ctx.Done() and a timer")
		}
		return true
	})
}
