package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochMono guards forward-only counters: fields annotated
//
//	gen uint64 //lint:monotonic
//
// may only move forward. For plain integer fields the allowed writes
// are f++, f += e and f = f + e (same field on the right); any other
// assignment — f = x, f--, f -= e — can rewrite the counter lower and
// is flagged. For sync/atomic counter fields (atomic.Uint32/Uint64/
// Int32/Int64) the allowed methods are Add, Load and CompareAndSwap;
// Store and Swap can publish an older value and are flagged.
// Constructor initialization stays exempt through the owned-value rule
// and composite literals never hit the analyzer (their keys are plain
// identifiers, not selectors).
var EpochMono = &Analyzer{
	Name: "epochmono",
	Doc:  "//lint:monotonic counters only move forward",
	Run:  runEpochMono,
}

func runEpochMono(pass *Pass) {
	mono := fieldAnnotations(pass.Pkg, "monotonic")
	if len(mono) == 0 {
		return
	}
	for _, fb := range packageFuncs(pass.Pkg) {
		checkMonoFunc(pass, mono, fb)
	}
}

// monoField resolves e to an annotated field selection.
func monoField(info *types.Info, mono map[*types.Var]string, e ast.Expr) (*ast.SelectorExpr, *types.Var, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, nil, false
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return nil, nil, false
	}
	_, annotated := mono[field]
	return sel, field, annotated
}

// atomicMonoMethods classifies calls on atomic counter fields.
var atomicMonoOK = map[string]bool{"Add": true, "Load": true, "CompareAndSwap": true}

func checkMonoFunc(pass *Pass, mono map[*types.Var]string, fb funcBody) {
	info := pass.Pkg.Info
	owned := ownedVars(info, fb.body)

	exempt := func(sel *ast.SelectorExpr) bool {
		return rootOwned(info, sel.X, owned)
	}

	ast.Inspect(fb.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // literals are their own funcBody
		case *ast.IncDecStmt:
			sel, field, ok := monoField(info, mono, s.X)
			if !ok || exempt(sel) {
				return true
			}
			if s.Tok == token.DEC {
				pass.Reportf(s.Pos(), "%s is monotonic; -- moves it backward",
					types.ExprString(s.X))
				_ = field
			}
		case *ast.AssignStmt:
			for i, l := range s.Lhs {
				sel, _, ok := monoField(info, mono, l)
				if !ok || exempt(sel) {
					continue
				}
				name := types.ExprString(sel)
				switch s.Tok {
				case token.ADD_ASSIGN:
					// f += e only moves forward (for the unsigned and
					// positive-delta uses this module has).
				case token.ASSIGN:
					if i < len(s.Rhs) && isSelfIncrement(s.Rhs[i], name) {
						continue
					}
					pass.Reportf(l.Pos(),
						"%s is monotonic; plain assignment can rewrite it lower — use ++/+= (or document a rebuild with //lint:ignore)",
						name)
				default:
					pass.Reportf(l.Pos(),
						"%s is monotonic; %s can move it backward", name, s.Tok)
				}
			}
		case *ast.CallExpr:
			// Atomic counter methods: x.gen.Store(...) / Swap(...).
			fun, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, _, isMono := monoField(info, mono, fun.X)
			if !isMono || exempt(sel) {
				return true
			}
			named := receiverNamed(calleeFunc(info, s))
			if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
				return true
			}
			if !atomicMonoOK[fun.Sel.Name] {
				pass.Reportf(s.Pos(),
					"%s is monotonic; atomic %s can publish an older value — use Add or CompareAndSwap",
					types.ExprString(sel), fun.Sel.Name)
			}
		}
		return true
	})
}

// isSelfIncrement matches `f = f + e` / `f = e + f` for the field's own
// textual form.
func isSelfIncrement(rhs ast.Expr, name string) bool {
	bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	return types.ExprString(ast.Unparen(bin.X)) == name ||
		types.ExprString(ast.Unparen(bin.Y)) == name
}
