package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCopy reports locks copied by value: function receivers, params
// and results whose type (transitively) contains a sync lock but is not
// a pointer, and assignments that dereference a pointer to such a type.
// A copied lock is a distinct lock — code that compiles and deadlocks,
// or worse, silently fails to exclude.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "sync locks must not be copied by value",
	Run:  runLockCopy,
}

// DeferUnlock reports mu.Lock() calls in functions with multiple
// returns that are not paired with a defer mu.Unlock(): any early
// return between Lock and a hand-rolled Unlock leaks the lock. Single
// straight-line Lock/Unlock pairs (one return) stay allowed — the
// metrics hot path uses them deliberately.
var DeferUnlock = &Analyzer{
	Name: "deferunlock",
	Doc:  "Lock() in multi-return functions must pair with defer Unlock()",
	Run:  runDeferUnlock,
}

// syncLockTypes are the sync types whose by-value copy is a bug.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true,
	"WaitGroup": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether t transitively holds a sync lock by
// value. seen guards against recursive types.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := types.Unalias(t).(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
		return containsLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func runLockCopy(pass *Pass) {
	info := pass.Pkg.Info
	checkField := func(f *ast.Field, what string) {
		tv, ok := info.Types[f.Type]
		if !ok || tv.Type == nil {
			return
		}
		if _, isPtr := types.Unalias(tv.Type).(*types.Pointer); isPtr {
			return
		}
		if containsLock(tv.Type, map[types.Type]bool{}) {
			pass.Reportf(f.Type.Pos(), "%s of type %s copies a lock; pass a pointer",
				what, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
		}
	}
	pass.inspect(func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Recv != nil {
				for _, f := range d.Recv.List {
					checkField(f, "receiver")
				}
			}
			if d.Type.Params != nil {
				for _, f := range d.Type.Params.List {
					checkField(f, "parameter")
				}
			}
			if d.Type.Results != nil {
				for _, f := range d.Type.Results.List {
					checkField(f, "result")
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range d.Rhs {
				star, ok := ast.Unparen(rhs).(*ast.StarExpr)
				if !ok {
					continue
				}
				tv, ok := info.Types[star]
				if ok && tv.Type != nil && containsLock(tv.Type, map[types.Type]bool{}) {
					pass.Reportf(rhs.Pos(), "dereference copies %s, which contains a lock",
						types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
				}
			}
		}
		return true
	})
}

// lockCall matches an ExprStmt of the form recv.Lock/RLock/Unlock/RUnlock
// where the method belongs to sync.Mutex or sync.RWMutex (directly or
// promoted through embedding), returning the textual receiver path.
func lockCall(info *types.Info, stmt ast.Stmt) (recv, method string, pos ast.Node, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", nil, false
	}
	return lockCallExpr(info, es.X)
}

func lockCallExpr(info *types.Info, e ast.Expr) (recv, method string, pos ast.Node, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", nil, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	named := receiverNamed(fn)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", nil, false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", "", nil, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), call, true
	}
	return "", "", nil, false
}

// unlockFor maps a lock method to its release counterpart.
func unlockFor(method string) string {
	if method == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

func runDeferUnlock(pass *Pass) {
	info := pass.Pkg.Info
	pass.inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		var returns []token.Pos
		type lock struct {
			recv, method string
			node         ast.Node
		}
		var locks []lock
		deferred := map[string]bool{}       // "recv\x00method" released via defer
		unlocks := map[string][]token.Pos{} // explicit releases by "recv\x00method"
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncLit:
				return false // nested functions are their own scope
			case *ast.ReturnStmt:
				returns = append(returns, s.Pos())
			case *ast.DeferStmt:
				if recv, method, _, ok := lockCallExpr(info, s.Call); ok {
					deferred[recv+"\x00"+method] = true
				}
			case *ast.ExprStmt:
				if recv, method, node, ok := lockCall(info, s); ok {
					if method == "Lock" || method == "RLock" {
						locks = append(locks, lock{recv, method, node})
					} else {
						key := recv + "\x00" + method
						unlocks[key] = append(unlocks[key], node.Pos())
					}
				}
			}
			return true
		})
		if len(returns) < 2 {
			return true
		}
		for _, l := range locks {
			release := unlockFor(l.method)
			if deferred[l.recv+"\x00"+release] {
				continue
			}
			// The lock is held from Lock() until the textually nearest
			// explicit release; a return inside that window leaks it.
			end := token.Pos(1 << 40)
			for _, u := range unlocks[l.recv+"\x00"+release] {
				if u > l.node.Pos() && u < end {
					end = u
				}
			}
			leaky := false
			for _, r := range returns {
				if r > l.node.Pos() && r < end {
					leaky = true
					break
				}
			}
			if leaky || len(unlocks[l.recv+"\x00"+release]) == 0 {
				pass.Reportf(l.node.Pos(),
					"%s.%s() in a function with %d returns has no defer %s.%s(); an early return would leak the lock",
					l.recv, l.method, len(returns), l.recv, release)
			}
		}
		return true
	})
}
