package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// geomPkg is the import path of the geometry package whose Rect type
// identifies the engine RangeReach signature.
const geomPkg = "repro/internal/geom"

// ParityGuard checks two cross-package invariants of the engine suite:
//
//  1. Every type implementing the engine-shaped RangeReach(int,
//     geom.Rect) bool also implements RangeReachTraced(int, geom.Rect,
//     *trace.Span) bool. The EXPLAIN layer, the rr_stage_seconds
//     metrics and the planner's feedback path all route through the
//     traced variant — an engine without it silently vanishes from
//     observability.
//  2. Persistence section magics ([4]byte package-level variables whose
//     name contains "magic", and their string-typed equivalents) are
//     pairwise distinct across the module, so a reader can never
//     misparse one engine's section as another's.
var ParityGuard = &Analyzer{
	Name:      "parityguard",
	Doc:       "traced-variant parity and unique persistence section tags",
	RunModule: runParityGuard,
}

func runParityGuard(pass *ModulePass) {
	checkTracedParity(pass)
	checkMagicUniqueness(pass)
}

// checkTracedParity enforces invariant 1.
func checkTracedParity(pass *ModulePass) {
	for _, pkg := range pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			ms := types.NewMethodSet(types.NewPointer(named))
			if !hasEngineRangeReach(ms) {
				continue
			}
			if !hasEngineRangeReachTraced(ms) {
				pass.Reportf(tn.Pos(),
					"%s implements RangeReach but not RangeReachTraced; tracing, EXPLAIN and the planner cannot observe it",
					tn.Name())
			}
		}
	}
}

func methodSig(ms *types.MethodSet, name string) *types.Signature {
	sel := ms.Lookup(nil, name)
	if sel == nil {
		return nil
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return nil
	}
	// Lookup(nil, ...) only finds exported names; engine methods are
	// exported, so a nil here simply means "not implemented".
	return fn.Type().(*types.Signature)
}

// hasEngineRangeReach matches RangeReach(int, geom.Rect) bool.
func hasEngineRangeReach(ms *types.MethodSet) bool {
	sig := methodSig(ms, "RangeReach")
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	return isInt(sig.Params().At(0).Type()) &&
		namedFrom(sig.Params().At(1).Type(), geomPkg, "Rect") &&
		isBool(sig.Results().At(0).Type())
}

// hasEngineRangeReachTraced matches RangeReachTraced(int, geom.Rect,
// *trace.Span) bool.
func hasEngineRangeReachTraced(ms *types.MethodSet) bool {
	sig := methodSig(ms, "RangeReachTraced")
	if sig == nil || sig.Params().Len() != 3 || sig.Results().Len() != 1 {
		return false
	}
	ptr, ok := types.Unalias(sig.Params().At(2).Type()).(*types.Pointer)
	return ok &&
		isInt(sig.Params().At(0).Type()) &&
		namedFrom(sig.Params().At(1).Type(), geomPkg, "Rect") &&
		namedFrom(ptr.Elem(), tracePkg, "Span") &&
		isBool(sig.Results().At(0).Type())
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// magicDef is one discovered persistence tag.
type magicDef struct {
	pkg   string
	name  string
	value string
	pos   ast.Node
}

// checkMagicUniqueness enforces invariant 2: it collects every
// package-level value whose name contains "magic" and whose bytes are
// statically known, and reports duplicates.
func checkMagicUniqueness(pass *ModulePass) {
	var defs []magicDef
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, id := range vs.Names {
						if !strings.Contains(strings.ToLower(id.Name), "magic") || i >= len(vs.Values) {
							continue
						}
						if v, ok := magicValue(pkg.Info, vs.Values[i]); ok {
							defs = append(defs, magicDef{pkg.Path, id.Name, v, id})
						}
					}
				}
			}
		}
	}
	seen := map[string]magicDef{}
	for _, d := range defs {
		if prev, dup := seen[d.value]; dup {
			pass.Reportf(d.pos.Pos(),
				"persistence magic %s = %q duplicates %s.%s; section tags must be unique across engines",
				d.name, d.value, prev.pkg, prev.name)
			continue
		}
		seen[d.value] = d
	}
}

// magicValue extracts the statically-known bytes of a magic definition:
// a constant string, or a byte-array composite literal of constant
// elements.
func magicValue(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(expr)]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	cl, ok := ast.Unparen(expr).(*ast.CompositeLit)
	if !ok {
		return "", false
	}
	var b []byte
	for _, elt := range cl.Elts {
		etv, ok := info.Types[elt]
		if !ok || etv.Value == nil {
			return "", false
		}
		v, ok := constant.Int64Val(etv.Value)
		if !ok {
			return "", false
		}
		b = append(b, byte(v))
	}
	if len(b) == 0 {
		return "", false
	}
	return string(b), true
}
