package lint

import (
	"go/ast"
	"strings"
)

// hotPackages are the query-hot-path packages: every RangeReach
// evaluation runs through them, so a stray clock read is pure per-query
// overhead and skews benchmark numbers. Timing belongs to the trace
// package's Start/End helpers (nil-safe, free when disabled) or to the
// callers (rrbench, rrserve). Build-time and calibration code inside
// these packages escapes with a justified //lint:ignore hotclock.
// Matching is by path prefix so fixture and future subpackages inherit
// the rule.
var hotPackages = []string{
	"repro/internal/core",
	"repro/internal/rtree",
	"repro/internal/kdtree",
	"repro/internal/planner",
	"repro/internal/labeling",
	"repro/internal/intervals",
	"repro/internal/graph",
	"repro/internal/geom",
	"repro/internal/bfl",
	"repro/internal/pll",
	"repro/internal/feline",
	"repro/internal/grail",
	"repro/internal/georeach",
	"repro/internal/grid",
	"repro/internal/spatialgrid",
	"repro/internal/bptree",
}

// HotClock forbids time.Now and time.Since in hot-path packages.
var HotClock = &Analyzer{
	Name: "hotclock",
	Doc:  "no time.Now/time.Since in query hot-path packages",
	Run:  runHotClock,
}

func isHotPackage(path string) bool {
	for _, hot := range hotPackages {
		if path == hot || strings.HasPrefix(path, hot+"/") {
			return true
		}
	}
	return false
}

func runHotClock(pass *Pass) {
	if !isHotPackage(pass.Pkg.Path) {
		return
	}
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Pkg.Info, call)
		if funcFrom(fn, "time", "Now") || funcFrom(fn, "time", "Since") {
			pass.Reportf(call.Pos(),
				"time.%s in hot-path package %s; time through trace.Span's Start/End (or justify with //lint:ignore hotclock)",
				fn.Name(), pass.Pkg.Path)
		}
		return true
	})
}
