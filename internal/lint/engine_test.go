package lint

import (
	"testing"
	"time"
)

// TestCFGBuildsOnWholeModule builds a control-flow graph for every
// function body in the module — declarations and nested literals —
// and sanity-checks basic graph invariants. Any panic in the builder
// fails the test; this is the coverage net under the per-shape
// fixtures in internal/lint/cfg.
func TestCFGBuildsOnWholeModule(t *testing.T) {
	m := repoModule(t)
	funcs := 0
	for _, pkg := range m.Pkgs {
		for _, fb := range packageFuncs(pkg) {
			g := pkg.CFG(fb.body)
			if g.Entry == nil || g.Exit == nil {
				t.Fatalf("%s: %s: CFG missing entry or exit", pkg.Path, fb.name())
			}
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					found := false
					for _, p := range s.Preds {
						if p == b {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%s: %s: succ/pred asymmetry at block %d",
							pkg.Path, fb.name(), b.Index)
					}
				}
			}
			funcs++
		}
	}
	if funcs < 500 {
		t.Fatalf("only %d function bodies analyzed; the walk is missing packages", funcs)
	}
	t.Logf("built CFGs for %d function bodies", funcs)
}

// TestSolverConvergesOnWholeModule runs the held-locks dataflow
// problem — the suite's most demanding lattice — over every function
// in the module and requires a genuine fixpoint everywhere, within
// the CI budget of 10 seconds for the whole sweep (module load time
// excluded; it is shared across the suite).
func TestSolverConvergesOnWholeModule(t *testing.T) {
	m := repoModule(t)
	start := time.Now()
	funcs := 0
	for _, pkg := range m.Pkgs {
		for _, fb := range packageFuncs(pkg) {
			var entry heldFact
			if fb.decl != nil {
				entry = entryLocks(fb.decl.Doc)
			}
			_, res := solveHeld(pkg, fb.body, entry)
			if !res.Converged {
				t.Fatalf("%s: %s: held-locks solve hit the iteration cap",
					pkg.Path, fb.name())
			}
			funcs++
		}
	}
	elapsed := time.Since(start)
	if elapsed > 10*time.Second {
		t.Fatalf("solving %d functions took %v; the 10s CI budget is blown", funcs, elapsed)
	}
	t.Logf("solved %d functions in %v", funcs, elapsed)
}
