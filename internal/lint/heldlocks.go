package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/cfg"
	"repro/internal/lint/dataflow"
)

// This file is the shared held-locks must-analysis the lockorder and
// guardedfield analyzers are built on: a forward dataflow problem whose
// fact is the set of sync.Mutex/RWMutex expressions provably held at a
// program point on *every* path (meet = intersection).

// lockKind is how strongly a lock is held.
type lockKind uint8

const (
	// heldR: at least a read lock (RLock) is held.
	heldR lockKind = 1
	// heldW: the exclusive lock (Lock) is held.
	heldW lockKind = 2
)

// heldFact maps the textual lock expression ("s.mu", "h.mu", a
// package-level "updateMu") to how it is held. The zero value (nil)
// means nothing is held.
type heldFact map[string]lockKind

func cloneHeld(f heldFact) heldFact {
	out := make(heldFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// heldMeet intersects two facts; a lock held for writing on one path
// and reading on another is only known to be read-held.
func heldMeet(a, b heldFact) heldFact {
	out := make(heldFact)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				out[k] = vb
			} else {
				out[k] = va
			}
		}
	}
	return out
}

func heldEqual(a, b heldFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// applyLockNode folds the lock and unlock calls inside one flat CFG
// node into fact, in place. Function literals are separate scopes and
// deferred releases run at function exit, so both are skipped —
// `defer mu.Unlock()` keeps the lock held for the rest of the graph,
// which is exactly the scoped-critical-section idiom.
func applyLockNode(info *types.Info, n ast.Node, fact heldFact) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch call := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			recv, method, _, ok := lockCallExpr(info, call)
			if !ok {
				return true
			}
			switch method {
			case "Lock":
				fact[recv] = heldW
			case "RLock":
				if fact[recv] < heldR {
					fact[recv] = heldR
				}
			case "Unlock", "RUnlock":
				delete(fact, recv)
			}
		}
		return true
	})
}

// solveHeld runs the held-locks analysis over one function body. entry
// seeds the fact at the function entry (from //lint:locked
// annotations); nil means no locks held.
func solveHeld(pkg *Package, body *ast.BlockStmt, entry heldFact) (*cfg.Graph, dataflow.Result[heldFact]) {
	g := pkg.CFG(body)
	if entry == nil {
		entry = heldFact{}
	}
	res := dataflow.Solve(g, dataflow.Problem[heldFact]{
		Dir:      dataflow.Forward,
		Boundary: entry,
		Init:     heldFact{},
		Transfer: func(b *cfg.Block, in heldFact) heldFact {
			out := cloneHeld(in)
			for _, n := range b.Nodes {
				applyLockNode(pkg.Info, n, out)
			}
			return out
		},
		Meet:  heldMeet,
		Equal: heldEqual,
	})
	return g, res
}

// heldBefore replays the block transfer up to (excluding) node index i,
// yielding the locks held when Nodes[i] begins executing.
func heldBefore(info *types.Info, res dataflow.Result[heldFact], b *cfg.Block, i int) heldFact {
	fact := cloneHeld(res.In[b])
	for j := 0; j < i && j < len(b.Nodes); j++ {
		applyLockNode(info, b.Nodes[j], fact)
	}
	return fact
}

// lockRecvExpr extracts the receiver expression of a matched lock call
// ("h.mu" in h.mu.Lock()).
func lockRecvExpr(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

// lockClass resolves the cross-function identity of a lock expression:
// "pkgpath.Type.field" for a mutex field of a named struct,
// "pkgpath.varname" for a package-level mutex. Locks rooted at local
// variables have no class (they cannot participate in cross-function
// ordering), reported as ok=false.
func lockClass(info *types.Info, lockExpr ast.Expr) (string, bool) {
	switch e := ast.Unparen(lockExpr).(type) {
	case *ast.SelectorExpr:
		tv, ok := info.Types[e.X]
		if !ok || tv.Type == nil {
			return "", false
		}
		if named, ok := types.Unalias(deref(tv.Type)).(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name, true
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}
