// Package cfg builds intraprocedural control-flow graphs over go/ast,
// from scratch on the standard library only (no x/tools). A Graph is a
// set of basic blocks connected by edges for the structured control
// flow of one function body: if/else joins, for and range loops,
// switch/type-switch/select dispatch (including fallthrough), labeled
// break and continue, goto, and the terminating statements return and
// panic (plus a small set of no-return calls such as os.Exit), which
// edge to a synthetic Exit block.
//
// Blocks carry only "flat" nodes — expressions and simple statements.
// A compound statement contributes its control parts (init, condition,
// post, tag, comm clauses) to the blocks that evaluate them; its body
// belongs to other blocks. Function literals are boundaries: their
// bodies are not included in the enclosing graph (build them
// separately).
//
// The graph is the substrate for the dataflow solver in
// internal/lint/dataflow and for the CFG-aware analyzers in
// internal/lint.
package cfg

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every basic block in creation order. Blocks[0] is
	// Entry; Exit is always the last block.
	Blocks []*Block
	// Entry is where control enters the function.
	Entry *Block
	// Exit is the synthetic block every return/panic/fallthrough-off-
	// the-end edges to. It holds no nodes.
	Exit *Block
}

// Block is one basic block: a maximal straight-line sequence of flat
// nodes with a single entry and (conceptually) branching only at the
// end.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Kind names what created the block ("entry", "if.then", "for.head",
	// "range.body", "switch.case", "select.comm", "label.retry", ...),
	// for tests and debugging.
	Kind string
	// Nodes are the flat AST nodes executed in the block, in order.
	// Compound statements never appear; their control expressions do.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// builder holds the in-progress graph and the resolution stacks for
// break/continue/fallthrough/goto.
type builder struct {
	g    *Graph
	info *types.Info
	// cur is the block statements are appended to; nil after a
	// terminator (the next statement starts an unreachable block).
	cur *Block
	// breaks and continues are target stacks; an empty label matches the
	// innermost target, a label matches the target registered with it.
	breaks    []branchTarget
	continues []branchTarget
	// fallthroughs is the stack of next-clause blocks for switch cases.
	fallthroughs []*Block
	// labels maps label names to their blocks for goto resolution;
	// gotos are resolved after the whole body is built so forward jumps
	// work.
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel carries a label down to the loop/switch statement it
	// annotates, so labeled break/continue can find their targets.
	pendingLabel string
}

type branchTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
	pos   ast.Node
}

// New builds the control-flow graph of body. info may be nil; when
// present it sharpens terminator detection (calls to panic and a small
// no-return set end their block with an edge to Exit). New never
// modifies the AST.
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	b := &builder{
		g:      &Graph{},
		info:   info,
		labels: make(map[string]*Block),
	}
	b.g.Exit = &Block{Kind: "exit"} // appended last, indexed in finish
	entry := b.newBlock("entry")
	b.g.Entry = entry
	b.cur = entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit) // fall off the end of the body
	}
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		} else {
			// Undefined label: the package would not type-check; treat
			// the goto as a function exit so the graph stays connected.
			b.edge(pg.from, b.g.Exit)
		}
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a flat node to the current block, starting a fresh
// (unreachable) block if the previous statement terminated control
// flow.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	b.ensure()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// ensure guarantees a current block, creating an unreachable one for
// code after a terminator.
func (b *builder) ensure() {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// A label annotates the statement it precedes; consume it so nested
	// statements don't inherit it.
	label := b.pendingLabel
	b.pendingLabel = ""

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// goto L jumps to the beginning of the labeled statement, so the
		// label needs its own block even when the statement is simple.
		lb := b.newBlock("label." + s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, lb)
		}
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		b.switchStmt(s, label)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	case *ast.ExprStmt:
		b.add(s)
		if b.isTerminatorCall(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Flat statements: assignments, declarations, defer, go, send,
		// inc/dec. Their nested FuncLit bodies are out of scope by
		// construction (we never walk into them here).
		b.add(s)
	}
}

// branch handles break/continue/goto/fallthrough.
func (b *builder) branch(s *ast.BranchStmt) {
	b.ensure()
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := findTarget(b.breaks, label); t != nil {
			b.edge(b.cur, t)
		} else {
			b.edge(b.cur, b.g.Exit) // malformed; keep the graph connected
		}
		b.cur = nil
	case "continue":
		if t := findTarget(b.continues, label); t != nil {
			b.edge(b.cur, t)
		} else {
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = nil
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label, pos: s})
		b.cur = nil
	case "fallthrough":
		if n := len(b.fallthroughs); n > 0 && b.fallthroughs[n-1] != nil {
			b.edge(b.cur, b.fallthroughs[n-1])
		} else {
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = nil
	}
}

func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	b.ensure()
	cond := b.cur

	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur

	var elseEnd *Block
	hasElse := s.Else != nil
	if hasElse {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	join := b.newBlock("if.join")
	if !hasElse {
		b.edge(cond, join)
	}
	if thenEnd != nil {
		b.edge(thenEnd, join)
	}
	if elseEnd != nil {
		b.edge(elseEnd, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	b.add(s.Init)
	b.ensure()
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	b.cur = head
	b.add(s.Cond)

	body := b.newBlock("for.body")
	b.edge(head, body)
	done := b.newBlock("for.done")
	if s.Cond != nil {
		b.edge(head, done)
	}

	// continue runs the post statement (or jumps to the head directly).
	contTarget := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		contTarget = post
	}
	b.pushLoop(label, done, contTarget)
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, contTarget)
	}
	b.popLoop()

	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.edge(post, head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.ensure()
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	b.cur = head
	// The ranged expression and the iteration variables are the clause's
	// flat parts; assignments to Key/Value happen per iteration but the
	// identifiers suffice for the analyses built on this graph.
	b.add(s.X)
	b.add(s.Key)
	b.add(s.Value)

	body := b.newBlock("range.body")
	b.edge(head, body)
	done := b.newBlock("range.done")
	b.edge(head, done) // range can be empty

	b.pushLoop(label, done, head)
	b.cur = body
	b.stmt(s.Body)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.popLoop()
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	b.add(s.Init)
	b.add(s.Tag)
	b.ensure()
	head := b.cur
	done := b.newBlock("switch.done")
	b.switchClauses(head, done, s.Body.List, label, "switch.case",
		func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})
	b.cur = done
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	b.add(s.Init)
	b.add(s.Assign)
	b.ensure()
	head := b.cur
	done := b.newBlock("typeswitch.done")
	b.switchClauses(head, done, s.Body.List, label, "typeswitch.case",
		func(cc *ast.CaseClause, blk *Block) {})
	b.cur = done
}

// switchClauses builds the per-clause blocks shared by switch and type
// switch: the head edges to every clause; a clause without fallthrough
// edges to done; fallthrough edges to the next clause's block; a
// missing default adds a head→done edge.
func (b *builder) switchClauses(head, done *Block, clauses []ast.Stmt, label, kind string,
	addTests func(*ast.CaseClause, *Block)) {
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		b.edge(head, blocks[i])
		addTests(cc, blocks[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.breaks = append(b.breaks, branchTarget{label, done})
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		var next *Block
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, next)
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	b.ensure()
	head := b.cur
	done := b.newBlock("select.done")
	b.breaks = append(b.breaks, branchTarget{label, done})
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		blk := b.newBlock("select.comm")
		b.edge(head, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, done)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	// An empty select{} blocks forever: head keeps no successors and
	// done stays unreachable, which is exactly the semantics.
	b.cur = done
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label, brk})
	b.continues = append(b.continues, branchTarget{label, cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// noReturnFuncs are stdlib calls that never return; a call to one
// terminates its block like panic.
var noReturnFuncs = map[string]bool{
	"os.Exit":        true,
	"runtime.Goexit": true,
	"log.Fatal":      true,
	"log.Fatalf":     true,
	"log.Fatalln":    true,
	"log.Panic":      true,
	"log.Panicf":     true,
	"log.Panicln":    true,
}

// isTerminatorCall reports whether e is a call that never returns:
// the panic built-in or one of noReturnFuncs.
func (b *builder) isTerminatorCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info != nil {
			// panic must resolve to the built-in, not a local function.
			if obj := b.info.Uses[fun]; obj != nil {
				_, isBuiltin := obj.(*types.Builtin)
				return isBuiltin
			}
			return false
		}
		return true
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		name := pkg.Name + "." + fun.Sel.Name
		if !noReturnFuncs[name] {
			return false
		}
		if b.info != nil {
			// Confirm the selector really is a package-level function of
			// that stdlib package (not a field or method of a local
			// variable that happens to shadow the package name).
			fn, _ := b.info.Uses[fun.Sel].(*types.Func)
			return fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == name[:strings.LastIndex(name, ".")]
		}
		return true
	}
	return false
}

// Reachable returns the set of blocks reachable from Entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return seen
}

// LoopBlocks returns the set of blocks that sit inside some cycle of
// the graph — a strongly connected component with more than one block,
// or a self-loop. goto-made irreducible loops are handled the same as
// structured for/range loops.
func (g *Graph) LoopBlocks() map[*Block]bool {
	// Iterative Tarjan SCC over block indices.
	n := len(g.Blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	inLoop := make(map[*Block]bool)

	type frame struct {
		v  int
		si int // next successor to visit
	}
	for r := 0; r < n; r++ {
		if index[r] != -1 {
			continue
		}
		work := []frame{{v: r}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.si == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.si < len(g.Blocks[v].Succs) {
				w := g.Blocks[v].Succs[f.si].Index
				f.si++
				if index[w] == -1 {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is done: pop its SCC if it is a root.
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				if len(scc) > 1 {
					for _, w := range scc {
						inLoop[g.Blocks[w]] = true
					}
				} else {
					// Single block: in a loop only with a self-edge.
					for _, s := range g.Blocks[scc[0]].Succs {
						if s.Index == scc[0] {
							inLoop[g.Blocks[scc[0]]] = true
						}
					}
				}
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return inLoop
}

// Dump renders the graph in a compact textual form for tests:
// one line per block, "b0(entry) -> b1 b2".
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%s ->", b)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
