package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses "package p\n"+src and builds the CFG of the first
// function declaration (no type info — the cfg layer must stand alone).
func buildFunc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return New(fd.Body, nil)
		}
	}
	t.Fatalf("no function in %q", src)
	return nil
}

// wantDump asserts the exact block graph.
func wantDump(t *testing.T, g *Graph, want string) {
	t.Helper()
	got := strings.TrimSpace(g.Dump())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("graph mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLinear(t *testing.T) {
	g := buildFunc(t, `func f() { x := 1; _ = x }`)
	wantDump(t, g, `
b0(entry) -> b1
b1(exit) ->`)
	if len(g.Entry.Nodes) != 2 {
		t.Errorf("entry holds %d nodes, want 2", len(g.Entry.Nodes))
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := buildFunc(t, `func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`)
	wantDump(t, g, `
b0(entry) -> b1 b2
b1(if.then) -> b3
b2(if.join) -> b3
b3(exit) ->`)
}

func TestIfElseJoin(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	_ = x
}`)
	wantDump(t, g, `
b0(entry) -> b1 b2
b1(if.then) -> b3
b2(if.else) -> b3
b3(if.join) -> b4
b4(exit) ->`)
}

func TestForBreakContinue(t *testing.T) {
	g := buildFunc(t, `func f() {
	for i := 0; i < 10; i++ {
		if i == 5 {
			break
		}
	}
}`)
	wantDump(t, g, `
b0(entry) -> b1
b1(for.head) -> b2 b3
b2(for.body) -> b5 b6
b3(for.done) -> b7
b4(for.post) -> b1
b5(if.then) -> b3
b6(if.join) -> b4
b7(exit) ->`)

	loops := g.LoopBlocks()
	for _, want := range []int{1, 2, 4, 6} {
		if !loops[g.Blocks[want]] {
			t.Errorf("b%d should be in the loop", want)
		}
	}
	// The break path and the loop exit are not on the cycle.
	for _, not := range []int{0, 3, 5, 7} {
		if loops[g.Blocks[not]] {
			t.Errorf("b%d should not be in the loop", not)
		}
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, `func f() {
outer:
	for {
		for {
			break outer
		}
	}
}`)
	wantDump(t, g, `
b0(entry) -> b1
b1(label.outer) -> b2
b2(for.head) -> b3
b3(for.body) -> b5
b4(for.done) -> b8
b5(for.head) -> b6
b6(for.body) -> b4
b7(for.done) -> b2
b8(exit) ->`)
	// The inner loop's done block is unreachable (the only way out of
	// the inner loop is the labeled break).
	if g.Reachable()[g.Blocks[7]] {
		t.Errorf("inner for.done should be unreachable")
	}
}

func TestGotoLoop(t *testing.T) {
	g := buildFunc(t, `func f() {
	i := 0
retry:
	i++
	if i < 3 {
		goto retry
	}
}`)
	wantDump(t, g, `
b0(entry) -> b1
b1(label.retry) -> b2 b3
b2(if.then) -> b1
b3(if.join) -> b4
b4(exit) ->`)
	// The goto-made loop is irreducible-style but SCC detection still
	// classifies its blocks as loop members.
	loops := g.LoopBlocks()
	if !loops[g.Blocks[1]] || !loops[g.Blocks[2]] {
		t.Errorf("goto loop blocks not detected: %v", loops)
	}
	if loops[g.Blocks[0]] || loops[g.Blocks[3]] {
		t.Errorf("blocks outside the goto loop marked as loop members")
	}
}

func TestGotoForward(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	if c {
		goto done
	}
	println("work")
done:
	println("done")
}`)
	wantDump(t, g, `
b0(entry) -> b1 b2
b1(if.then) -> b3
b2(if.join) -> b3
b3(label.done) -> b4
b4(exit) ->`)
}

func TestPanicEdgesToExit(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	if c {
		panic("boom")
	}
	println("ok")
}`)
	wantDump(t, g, `
b0(entry) -> b1 b2
b1(if.then) -> b3
b2(if.join) -> b3
b3(exit) ->`)
	// The panic node stays in its block (analyzers still see it).
	if len(g.Blocks[1].Nodes) != 1 {
		t.Errorf("if.then holds %d nodes, want the panic call", len(g.Blocks[1].Nodes))
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := buildFunc(t, `func f() int {
	return 1
	println("dead")
}`)
	wantDump(t, g, `
b0(entry) -> b2
b1(unreachable) -> b2
b2(exit) ->`)
	reach := g.Reachable()
	if reach[g.Blocks[1]] {
		t.Errorf("code after return should be unreachable")
	}
	if !reach[g.Blocks[0]] || !reach[g.Exit] {
		t.Errorf("entry and exit must be reachable")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `func f(x int) {
	switch x {
	case 1:
		fallthrough
	case 2:
		println(2)
	default:
		println(3)
	}
}`)
	wantDump(t, g, `
b0(entry) -> b2 b3 b4
b1(switch.done) -> b5
b2(switch.case) -> b3
b3(switch.case) -> b1
b4(switch.case) -> b1
b5(exit) ->`)
}

func TestSwitchNoDefault(t *testing.T) {
	g := buildFunc(t, `func f(x int) {
	switch {
	case x > 0:
		println(1)
	}
}`)
	// No default: the head can skip every case.
	wantDump(t, g, `
b0(entry) -> b2 b1
b1(switch.done) -> b3
b2(switch.case) -> b1
b3(exit) ->`)
}

func TestTypeSwitch(t *testing.T) {
	g := buildFunc(t, `func f(v any) {
	switch v.(type) {
	case int:
		println(1)
	default:
		println(2)
	}
}`)
	wantDump(t, g, `
b0(entry) -> b2 b3
b1(typeswitch.done) -> b4
b2(typeswitch.case) -> b1
b3(typeswitch.case) -> b1
b4(exit) ->`)
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, `func f(ch chan int) {
	select {
	case v := <-ch:
		_ = v
	default:
	}
}`)
	wantDump(t, g, `
b0(entry) -> b2 b3
b1(select.done) -> b4
b2(select.comm) -> b1
b3(select.comm) -> b1
b4(exit) ->`)
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := buildFunc(t, `func f() {
	select {}
}`)
	// select{} never proceeds: the head has no successors and the exit
	// is unreachable.
	if len(g.Entry.Succs) != 0 {
		t.Errorf("empty select head has successors: %v", g.Entry.Succs)
	}
	if g.Reachable()[g.Exit] {
		t.Errorf("exit should be unreachable after select{}")
	}
}

func TestRange(t *testing.T) {
	g := buildFunc(t, `func f(xs []int) {
	for _, x := range xs {
		_ = x
	}
}`)
	wantDump(t, g, `
b0(entry) -> b1
b1(range.head) -> b2 b3
b2(range.body) -> b1
b3(range.done) -> b4
b4(exit) ->`)
	loops := g.LoopBlocks()
	if !loops[g.Blocks[1]] || !loops[g.Blocks[2]] {
		t.Errorf("range loop not detected")
	}
}

func TestDeferIsANode(t *testing.T) {
	g := buildFunc(t, `func f() {
	defer println("x")
	for i := 0; i < 3; i++ {
		defer println(i)
	}
}`)
	var total, inLoop int
	loops := g.LoopBlocks()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				total++
				if loops[b] {
					inLoop++
				}
			}
		}
	}
	if total != 2 {
		t.Errorf("found %d defer nodes, want 2", total)
	}
	if inLoop != 1 {
		t.Errorf("found %d defers in loop blocks, want 1", inLoop)
	}
}

func TestOsExitTerminates(t *testing.T) {
	// Without type info the builder trusts the textual os.Exit form.
	g := buildFunc(t, `func f(c bool) {
	if c {
		os.Exit(1)
	}
	println("ok")
}`)
	then := g.Blocks[1]
	if then.Kind != "if.then" || len(then.Succs) != 1 || then.Succs[0] != g.Exit {
		t.Errorf("os.Exit block should edge straight to exit: %s", g.Dump())
	}
}

func TestFuncLitIsABoundary(t *testing.T) {
	g := buildFunc(t, `func f() {
	go func() {
		for {
		}
	}()
	println("after")
}`)
	// The goroutine body's infinite loop must not appear in f's graph.
	wantDump(t, g, `
b0(entry) -> b1
b1(exit) ->`)
	if len(g.Entry.Nodes) != 2 {
		t.Errorf("entry holds %d nodes, want go stmt + println", len(g.Entry.Nodes))
	}
}

func TestNestedLoopsLoopMembership(t *testing.T) {
	g := buildFunc(t, `func f(m map[int][]int) {
	for k := range m {
		for _, v := range m[k] {
			_ = v
		}
	}
}`)
	loops := g.LoopBlocks()
	var heads int
	for _, b := range g.Blocks {
		if b.Kind == "range.head" {
			heads++
			if !loops[b] {
				t.Errorf("%s not marked as loop member", b)
			}
		}
	}
	if heads != 2 {
		t.Errorf("found %d range heads, want 2", heads)
	}
}
