package lint

import (
	"go/ast"
	"go/types"
)

// tracePkg is the import path of the trace package whose Span type the
// tracespan analyzer protects.
const tracePkg = "repro/internal/trace"

// TraceSpan reports field access through a *trace.Span outside the
// trace package itself. The whole tracing design rests on *Span being
// nil-safe: engines thread a possibly-nil span through every hot path
// and rely on its methods' nil receivers to make the disabled path
// free. A direct field dereference (sp.Labels, sp.Plan, ...) bypasses
// that contract and panics the moment tracing is off. Code that needs
// the raw counters must take the span by value (a completed span is
// plain data) or go through the nil-safe accessors.
var TraceSpan = &Analyzer{
	Name: "tracespan",
	Doc:  "*trace.Span may only be used through its nil-safe methods",
	Run:  runTraceSpan,
}

func runTraceSpan(pass *Pass) {
	if pass.Pkg.Path == tracePkg {
		return
	}
	pass.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Pkg.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		recv := selection.Recv()
		ptr, ok := types.Unalias(recv).(*types.Pointer)
		if !ok || !namedFrom(ptr.Elem(), tracePkg, "Span") {
			return true
		}
		pass.Reportf(sel.Pos(),
			"field %s dereferenced through *trace.Span, which may be nil; use the nil-safe methods or pass the completed span by value",
			selection.Obj().Name())
		return true
	})
}
