// Package lint is a from-scratch static-analysis driver for this
// module, built on go/parser, go/ast and go/types only (no x/tools
// dependency). It loads every package of the module (stdlib imports are
// type-checked from source) and runs a set of project-specific
// analyzers that guard the invariants the reachability engines rely on:
// 64-bit atomic alignment, nil-safe trace spans, clock-free hot paths,
// deterministic randomness, checked errors, lock discipline, and
// engine/persistence parity. cmd/rrlint is the CLI front end and a
// ci.sh gate.
//
// Individual findings can be suppressed with a justified directive on
// the offending line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer report.
type Finding struct {
	// Pos locates the finding in the source.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message describes the problem.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one named check. Exactly one of Run (per package) and
// RunModule (whole module, for cross-package invariants) is set.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
	// RunModule analyzes the whole module at once.
	RunModule func(*ModulePass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Fset resolves positions.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer *Analyzer
	out      *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries a module-level analyzer's view of every package.
type ModulePass struct {
	// Fset resolves positions.
	Fset *token.FileSet
	// Pkgs are the module's packages in dependency order.
	Pkgs []*Package

	analyzer *Analyzer
	out      *[]Finding
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer of the suite.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicAlign,
		TraceSpan,
		HotClock,
		MathRand,
		ErrCheck,
		LockCopy,
		DeferUnlock,
		ParityGuard,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the module and returns the surviving
// findings sorted by position. Findings on a line carrying (or directly
// below) a matching //lint:ignore directive are dropped; malformed
// directives are themselves reported.
func Run(mod *Module, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range mod.Pkgs {
			a.Run(&Pass{Fset: mod.Fset, Pkg: pkg, analyzer: a, out: &raw})
		}
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Fset: mod.Fset, Pkgs: mod.Pkgs, analyzer: a, out: &raw})
		}
	}
	ig, bad := collectIgnores(mod.Fset, mod.Pkgs)
	return Filter(raw, ig, bad)
}

// RunPackage executes per-package analyzers (and module analyzers, over
// just this package) against a single package — the fixture-test entry
// point. Directives in the package still apply.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		if a.Run != nil {
			a.Run(&Pass{Fset: fset, Pkg: pkg, analyzer: a, out: &raw})
		}
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Fset: fset, Pkgs: []*Package{pkg}, analyzer: a, out: &raw})
		}
	}
	ig, bad := collectIgnores(fset, []*Package{pkg})
	return Filter(raw, ig, bad)
}

// ignoreKey identifies one suppressed (file, line, analyzer) slot.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// collectIgnores scans every comment for //lint:ignore directives. A
// directive suppresses findings of the named analyzer on its own line
// and on the following line (the comment-above-statement idiom).
// Directives without an analyzer name or a reason are returned as
// findings of their own.
func collectIgnores(fset *token.FileSet, pkgs []*Package) (map[ignoreKey]bool, []Finding) {
	ignores := make(map[ignoreKey]bool)
	var bad []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Pos:      fset.Position(c.Pos()),
							Analyzer: "directive",
							Message:  "malformed //lint:ignore: want `//lint:ignore <analyzer> <reason>`",
						})
						continue
					}
					pos := fset.Position(c.Pos())
					for _, name := range strings.Split(fields[0], ",") {
						ignores[ignoreKey{pos.Filename, pos.Line, name}] = true
						ignores[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
					}
				}
			}
		}
	}
	return ignores, bad
}

// Filter drops findings suppressed by directives, appends the malformed
// directive reports, and sorts by position.
func Filter(raw []Finding, ignores map[ignoreKey]bool, bad []Finding) []Finding {
	out := make([]Finding, 0, len(raw)+len(bad))
	for _, f := range raw {
		if ignores[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}] {
			continue
		}
		out = append(out, f)
	}
	out = append(out, bad...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// inspect walks every file of the pass's package.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
