// Package lint is a from-scratch static-analysis driver for this
// module, built on go/parser, go/ast and go/types only (no x/tools
// dependency). It loads every package of the module (stdlib imports are
// type-checked from source) and runs a set of project-specific
// analyzers that guard the invariants the reachability engines rely on:
// 64-bit atomic alignment, nil-safe trace spans, clock-free hot paths,
// deterministic randomness, checked errors, lock discipline, and
// engine/persistence parity. cmd/rrlint is the CLI front end and a
// ci.sh gate.
//
// Individual findings can be suppressed with a justified directive on
// the offending line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Finding is one analyzer report.
type Finding struct {
	// Pos locates the finding in the source.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Message describes the problem.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one named check. Exactly one of Run (per package) and
// RunModule (whole module, for cross-package invariants) is set.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
	// RunModule analyzes the whole module at once.
	RunModule func(*ModulePass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Fset resolves positions.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer *Analyzer
	out      *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries a module-level analyzer's view of every package.
type ModulePass struct {
	// Fset resolves positions.
	Fset *token.FileSet
	// Pkgs are the module's packages in dependency order.
	Pkgs []*Package

	analyzer *Analyzer
	out      *[]Finding
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.out = append(*p.out, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer of the suite: the eight AST-level checks
// plus the six CFG/dataflow-powered concurrency and invariant checks.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicAlign,
		TraceSpan,
		HotClock,
		MathRand,
		ErrCheck,
		LockCopy,
		DeferUnlock,
		ParityGuard,
		GuardedField,
		LockOrder,
		SnapshotMut,
		CtxFlow,
		EpochMono,
		DeferInLoop,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Timing is one analyzer's share of a run, for `rrlint -json`.
type Timing struct {
	// Name is the analyzer.
	Name string
	// Findings counts its surviving (post-directive) findings.
	Findings int
	// Duration is the wall time its passes took.
	Duration time.Duration
}

// Run executes the analyzers over the module and returns the surviving
// findings sorted by position. Findings on a line carrying (or directly
// below) a matching //lint:ignore directive are dropped; malformed
// directives, and directives that suppressed nothing (stale ignores),
// are themselves reported.
func Run(mod *Module, analyzers []*Analyzer) []Finding {
	findings, _ := RunTimed(mod, analyzers)
	return findings
}

// RunTimed is Run plus per-analyzer wall time and finding counts.
func RunTimed(mod *Module, analyzers []*Analyzer) ([]Finding, []Timing) {
	var raw []Finding
	timings := make([]Timing, len(analyzers))
	for i, a := range analyzers {
		start := time.Now()
		if a.Run != nil {
			for _, pkg := range mod.Pkgs {
				a.Run(&Pass{Fset: mod.Fset, Pkg: pkg, analyzer: a, out: &raw})
			}
		}
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Fset: mod.Fset, Pkgs: mod.Pkgs, analyzer: a, out: &raw})
		}
		timings[i] = Timing{Name: a.Name, Duration: time.Since(start)}
	}
	ig, bad := collectIgnores(mod.Fset, mod.Pkgs)
	findings := Filter(raw, ig, bad, activeNames(analyzers))
	counts := make(map[string]int, len(findings))
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	for i := range timings {
		timings[i].Findings = counts[timings[i].Name]
	}
	return findings, timings
}

// RunPackage executes per-package analyzers (and module analyzers, over
// just this package) against a single package — the fixture-test entry
// point. Directives in the package still apply.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		if a.Run != nil {
			a.Run(&Pass{Fset: fset, Pkg: pkg, analyzer: a, out: &raw})
		}
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Fset: fset, Pkgs: []*Package{pkg}, analyzer: a, out: &raw})
		}
	}
	ig, bad := collectIgnores(fset, []*Package{pkg})
	return Filter(raw, ig, bad, activeNames(analyzers))
}

// activeNames is the set of analyzer names participating in a run —
// the scope within which unused directives can be judged.
func activeNames(analyzers []*Analyzer) map[string]bool {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// ignoreKey identifies one suppressed (file, line, analyzer) slot.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// ignoreDirective is one parsed //lint:ignore, tracked so unused
// directives can be reported as stale.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	used     bool
}

// collectIgnores scans every comment for //lint:ignore directives. A
// directive suppresses findings of the named analyzer on its own line
// and on the following line (the comment-above-statement idiom).
// Directives without an analyzer name or a reason are returned as
// findings of their own.
func collectIgnores(fset *token.FileSet, pkgs []*Package) (map[ignoreKey]*ignoreDirective, []Finding) {
	ignores := make(map[ignoreKey]*ignoreDirective)
	var bad []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) < 2 {
						bad = append(bad, Finding{
							Pos:      fset.Position(c.Pos()),
							Analyzer: "directive",
							Message:  "malformed //lint:ignore: want `//lint:ignore <analyzer> <reason>`",
						})
						continue
					}
					pos := fset.Position(c.Pos())
					for _, name := range strings.Split(fields[0], ",") {
						d := &ignoreDirective{pos: pos, analyzer: name}
						ignores[ignoreKey{pos.Filename, pos.Line, name}] = d
						ignores[ignoreKey{pos.Filename, pos.Line + 1, name}] = d
					}
				}
			}
		}
	}
	return ignores, bad
}

// Filter drops findings suppressed by directives, appends the malformed
// directive reports plus a report for every directive that suppressed
// nothing (within the analyzers actually run), and sorts by position.
func Filter(raw []Finding, ignores map[ignoreKey]*ignoreDirective, bad []Finding, active map[string]bool) []Finding {
	out := make([]Finding, 0, len(raw)+len(bad))
	for _, f := range raw {
		if d := ignores[ignoreKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}]; d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	reported := make(map[*ignoreDirective]bool)
	for _, d := range ignores {
		if d.used || reported[d] || !active[d.analyzer] {
			continue
		}
		reported[d] = true
		out = append(out, Finding{
			Pos:      d.pos,
			Analyzer: "directive",
			Message: fmt.Sprintf("unused //lint:ignore %s: no %s finding here — stale directive, delete it",
				d.analyzer, d.analyzer),
		})
	}
	out = append(out, bad...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// inspect walks every file of the pass's package.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
