package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicAlign reports sync/atomic 64-bit operations on struct fields
// that are not 64-bit-aligned on 32-bit platforms. The first word of an
// allocated struct is 64-bit-aligned, but interior fields are only
// 4-byte-aligned under GOARCH=386/arm — a misaligned atomic panics
// there at runtime. The fix is to move the field first or pad before
// it; better yet, use the atomic.Int64/Uint64 types, which carry their
// own alignment. Offsets are computed under 32-bit (386) sizes, so code
// that happens to align on amd64 is still flagged.
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "sync/atomic 64-bit operations require 64-bit-aligned fields",
	Run:  runAtomicAlign,
}

// atomic64Funcs are the sync/atomic functions operating on 64-bit
// words through a pointer first argument.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

func runAtomicAlign(pass *Pass) {
	// 32-bit sizes expose the worst-case field offsets.
	sizes := types.SizesFor("gc", "386")
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pass.Pkg.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomic64Funcs[fn.Name()] {
			return true
		}
		un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return true
		}
		sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Pkg.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		off, known := fieldOffset32(sizes, selection)
		if known && off%8 != 0 {
			pass.Reportf(sel.Pos(),
				"atomic 64-bit access to %s at offset %d is not 64-bit-aligned on 32-bit platforms; move the field first, pad it, or use atomic.Int64/Uint64",
				selection.Obj().Name(), off)
		}
		return true
	})
}

// fieldOffset32 computes the byte offset of the selected field within
// its outermost allocated struct under 32-bit sizes. Selecting through
// an embedded pointer starts a new allocation, which resets the offset
// (the pointee is independently 64-bit-aligned at offset 0).
func fieldOffset32(sizes types.Sizes, sel *types.Selection) (int64, bool) {
	t := deref(sel.Recv())
	var off int64
	for _, idx := range sel.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes.Offsetsof(fields)[idx]
		ft := st.Field(idx).Type()
		if p, ok := types.Unalias(ft).(*types.Pointer); ok {
			t = p.Elem()
			off = 0
			continue
		}
		t = ft
	}
	return off, true
}
