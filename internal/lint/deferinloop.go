package lint

import (
	"go/ast"
)

// DeferInLoop reports defer statements inside loops: deferred calls
// only run when the function returns, so a defer on a cycle of the CFG
// accumulates one pending call per iteration — the classic
// resource-leak shape in replay loops that open per-item resources.
// Loop membership comes from the strongly connected components of the
// control-flow graph, so goto-made loops count the same as for/range.
// A defer that only *looks* nested (e.g. under an if whose branch
// breaks out of the loop before looping again) is still on a cycle and
// still flagged: the fix — hoisting the loop body into a function —
// is the same.
var DeferInLoop = &Analyzer{
	Name: "deferinloop",
	Doc:  "defer inside a loop accumulates until the function returns",
	Run:  runDeferInLoop,
}

func runDeferInLoop(pass *Pass) {
	for _, fb := range packageFuncs(pass.Pkg) {
		g := pass.Pkg.CFG(fb.body)
		loops := g.LoopBlocks()
		if len(loops) == 0 {
			continue
		}
		for b := range loops {
			for _, n := range b.Nodes {
				d, ok := n.(*ast.DeferStmt)
				if !ok {
					continue
				}
				pass.Reportf(d.Pos(),
					"defer inside a loop runs only at function return and accumulates per iteration; hoist the loop body into a function")
			}
		}
	}
}
