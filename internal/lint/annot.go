package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file parses the source annotations the CFG-aware analyzers are
// driven by:
//
//	//lint:guardedby <lockfield>   on a struct field: every access must
//	                               hold <lockfield> of the same struct
//	                               (reads need RLock or Lock, writes
//	                               need Lock).
//	//lint:frozen                  on a type declaration: the type is an
//	                               immutable published view; no writes
//	                               through it after construction.
//	//lint:monotonic               on an integer or atomic counter
//	                               field: it only moves forward
//	                               (increments), never gets rewritten.
//	//lint:locked <expr>           on a function declaration: callers
//	                               hold <expr> exclusively on entry.
//	//lint:rlocked <expr>          same, but a read lock.

// directiveArg returns the argument of the first "//lint:<name>"
// directive in the comment groups, and whether one was present. A
// directive with no argument returns ok with an empty arg.
func directiveArg(name string, groups ...*ast.CommentGroup) (arg string, ok bool) {
	prefix := "//lint:" + name
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			rest, found := strings.CutPrefix(c.Text, prefix)
			if !found {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:guardedbyx
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// fieldAnnotations collects, for every struct field of the package
// annotated with the given directive, the field object and the
// directive's argument.
func fieldAnnotations(pkg *Package, directive string) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				arg, ok := directiveArg(directive, field.Doc, field.Comment)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						out[v] = arg
					}
				}
			}
			return true
		})
	}
	return out
}

// frozenTypes collects the named types of the package annotated
// //lint:frozen (on the type spec or its enclosing declaration).
func frozenTypes(pkg *Package) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, ok := directiveArg("frozen", gd.Doc, ts.Doc, ts.Comment); !ok {
					continue
				}
				if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					if named, ok := tn.Type().(*types.Named); ok {
						out[named] = true
					}
				}
			}
		}
	}
	return out
}

// entryLocks parses the //lint:locked and //lint:rlocked function
// annotations into the held-locks entry fact for its body.
func entryLocks(doc *ast.CommentGroup) heldFact {
	if doc == nil {
		return nil
	}
	var fact heldFact
	for _, c := range doc.List {
		for _, d := range []struct {
			name string
			kind lockKind
		}{{"locked", heldW}, {"rlocked", heldR}} {
			rest, ok := strings.CutPrefix(c.Text, "//lint:"+d.name)
			if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			expr := strings.TrimSpace(rest)
			if expr == "" {
				continue
			}
			if fact == nil {
				fact = make(heldFact)
			}
			fact[expr] = d.kind
		}
	}
	return fact
}

// funcBody is one analyzable function of a package: a declaration or a
// function literal. Literals are separate analysis scopes — a closure
// may run on another goroutine, so it never inherits the enclosing
// function's held locks (annotate the literal's behavior via the
// enclosing declaration only when it is genuinely synchronous, with
// //lint:ignore).
type funcBody struct {
	// decl is the declaration, nil for literals.
	decl *ast.FuncDecl
	// lit is the literal, nil for declarations.
	lit *ast.FuncLit
	// body is never nil.
	body *ast.BlockStmt
}

// name renders a label for findings.
func (fb funcBody) name() string {
	if fb.decl != nil {
		return fb.decl.Name.Name
	}
	return "func literal"
}

// packageFuncs lists every function body of the package: declarations
// and all (transitively nested) function literals.
func packageFuncs(pkg *Package) []funcBody {
	var out []funcBody
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, funcBody{decl: fn, body: fn.Body})
				}
			case *ast.FuncLit:
				out = append(out, funcBody{lit: fn, body: fn.Body})
			}
			return true
		})
	}
	return out
}
