package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedField is a lightweight static race detector: struct fields
// annotated
//
//	fails int //lint:guardedby mu
//
// must only be accessed while the sibling lock <base>.mu is provably
// held on every path (the held-locks must-analysis over the CFG).
// Reads need at least RLock; writes (assignment, ++/--, address-of)
// need the exclusive Lock. Values still local to their constructor
// (assigned from a composite literal or new) are exempt, as is the
// zero-value initialization a composite literal itself performs.
// Helper functions whose callers hold the lock are annotated
// //lint:locked <expr> (or //lint:rlocked) on the declaration.
var GuardedField = &Analyzer{
	Name: "guardedfield",
	Doc:  "//lint:guardedby fields are only accessed under their lock",
	Run:  runGuardedField,
}

func runGuardedField(pass *Pass) {
	guards := fieldAnnotations(pass.Pkg, "guardedby")
	if len(guards) == 0 {
		return
	}
	// The lock name is the first token; anything after it ("mu — why")
	// is free-form commentary.
	for v, arg := range guards {
		if f := strings.Fields(arg); len(f) > 0 {
			guards[v] = f[0]
		}
	}
	for _, fb := range packageFuncs(pass.Pkg) {
		checkGuardedFunc(pass, guards, fb)
	}
}

func checkGuardedFunc(pass *Pass, guards map[*types.Var]string, fb funcBody) {
	info := pass.Pkg.Info
	owned := ownedVars(info, fb.body)
	var entry heldFact
	if fb.decl != nil {
		entry = entryLocks(fb.decl.Doc)
	}
	g, res := solveHeld(pass.Pkg, fb.body, entry)
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue // dead code gets no facts worth reporting on
		}
		for i, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				// Deferred work runs at function exit where the held
				// set is the exit fact, not this one; closures are
				// checked as their own scopes.
				continue
			}
			accs := guardedAccesses(info, n, guards)
			if len(accs) == 0 {
				continue
			}
			held := heldBefore(info, res, b, i)
			for _, acc := range accs {
				if rootOwned(info, acc.sel.X, owned) {
					continue
				}
				base := types.ExprString(acc.sel.X)
				lock := base + "." + guards[acc.field]
				need := heldR
				verb := "read of"
				if acc.write {
					need = heldW
					verb = "write to"
				}
				got := held[lock]
				switch {
				case got >= need:
					// properly locked
				case got == heldR && need == heldW:
					pass.Reportf(acc.sel.Pos(),
						"%s %s.%s (guarded by %s) holding only %s.RLock; writes need %s.Lock",
						verb, base, acc.field.Name(), guards[acc.field], lock, lock)
				default:
					pass.Reportf(acc.sel.Pos(),
						"%s %s.%s (guarded by %s) without holding %s",
						verb, base, acc.field.Name(), guards[acc.field], lock)
				}
			}
		}
	}
}

// guardedAccess is one access to an annotated field.
type guardedAccess struct {
	sel   *ast.SelectorExpr
	field *types.Var
	write bool
}

// guardedAccesses finds the annotated-field accesses in one flat node.
// Function literals are separate scopes and skipped.
func guardedAccesses(info *types.Info, n ast.Node, guards map[*types.Var]string) []guardedAccess {
	writes := make(map[ast.Expr]bool)
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				markChain(l, writes)
			}
		case *ast.IncDecStmt:
			markChain(s.X, writes)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				// Taking the address lets the pointee escape the
				// critical section; require the write lock.
				markChain(s.X, writes)
			}
		}
		return true
	})
	var out []guardedAccess
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		if _, guarded := guards[field]; !guarded {
			return true
		}
		out = append(out, guardedAccess{sel: sel, field: field, write: writes[sel]})
		return true
	})
	return out
}

// markChain marks e and every base expression it writes through
// (s.m[k] writes through s.m and s).
func markChain(e ast.Expr, marks map[ast.Expr]bool) {
	for {
		e = ast.Unparen(e)
		marks[e] = true
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}

// ownedVars collects local variables bound to freshly constructed
// values (composite literals or new) anywhere in the body: their
// fields are still private to this function, so lock discipline does
// not apply yet.
func ownedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	owned := make(map[*types.Var]bool)
	mark := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if !isFreshValue(rhs) {
			return
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			owned[v] = true
		} else if v, ok := info.Uses[id].(*types.Var); ok && v.Parent() != v.Pkg().Scope() {
			owned[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					mark(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					mark(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
	return owned
}

// isFreshValue reports whether e constructs a brand-new value: T{...},
// &T{...} or new(T).
func isFreshValue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, lit := ast.Unparen(x.X).(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// rootOwned walks base-expression chains to the root identifier and
// reports whether it is a constructor-owned local.
func rootOwned(info *types.Info, e ast.Expr, owned map[*types.Var]bool) bool {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			return ok && owned[v]
		default:
			return false
		}
	}
}
