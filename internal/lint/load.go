package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/cfg"
)

// Module is a Go module with every package parsed and type-checked,
// ready for analysis. Built by LoadModule.
type Module struct {
	// Path is the module path from go.mod (here: "repro").
	Path string
	// Dir is the module root directory.
	Dir string
	// Fset positions every parsed file, including stdlib sources pulled
	// in by the source importer.
	Fset *token.FileSet
	// Pkgs lists the module's packages in dependency order.
	Pkgs []*Package

	byPath map[string]*types.Package
	std    types.Importer
}

// Package is one parsed, type-checked package of the module.
type Package struct {
	// Path is the import path ("repro", "repro/internal/core", ...).
	Path string
	// Dir is the package directory.
	Dir string
	// Name is the package name from the source.
	Name string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info

	// cfgs caches control-flow graphs per function body so the
	// CFG-aware analyzers build each one once. The driver is
	// single-threaded.
	cfgs map[*ast.BlockStmt]*cfg.Graph
}

// CFG returns the control-flow graph of a function body of this
// package, built on first use and cached.
func (p *Package) CFG(body *ast.BlockStmt) *cfg.Graph {
	if g, ok := p.cfgs[body]; ok {
		return g
	}
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.BlockStmt]*cfg.Graph)
	}
	g := cfg.New(body, p.Info)
	p.cfgs[body] = g
	return g
}

// LoadModule parses and type-checks every package under the module
// rooted at dir, using only the standard library: stdlib dependencies
// are type-checked from source (the "source" importer), module-internal
// imports resolve against the packages being loaded. Test files and
// testdata directories are skipped.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path:   modPath,
		Dir:    abs,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*types.Package),
	}
	m.std = importer.ForCompiler(m.Fset, "source", nil)

	dirs, err := packageDirs(abs)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := m.parseDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sorted, err := topoSort(pkgs)
	if err != nil {
		return nil, err
	}
	for _, pkg := range sorted {
		if err := m.typeCheck(pkg); err != nil {
			return nil, err
		}
		m.byPath[pkg.Path] = pkg.Types
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}

// CheckDir parses and type-checks the package in dir under the given
// import path without registering it in the module. The fixture tests
// use it to compile testdata packages against the real module (so
// fixtures can import repro/internal/trace and friends) while choosing
// the import path the analyzers see.
func (m *Module) CheckDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	pkg, err := m.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.Path = importPath
	if err := m.typeCheck(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs returns every directory under root that may hold a
// package: testdata, hidden and underscore-prefixed directories are
// pruned, mirroring the go tool's matching rules.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory. It returns
// nil when the directory holds no buildable Go files.
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	pkg := &Package{Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !matchesHostConstraints(name, filepath.Join(dir, name)) {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		if f.Name.Name != pkg.Name {
			return nil, fmt.Errorf("lint: %s: package %s conflicts with %s in the same directory",
				filepath.Join(dir, name), f.Name.Name, pkg.Name)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	if rel == "." {
		pkg.Path = m.Path
	} else {
		pkg.Path = m.Path + "/" + filepath.ToSlash(rel)
	}
	return pkg, nil
}

// unixGOOS mirrors the go tool's "unix" build tag: the GOOS values it
// stands for.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// matchesHostConstraints reports whether a file builds on the host
// platform, honoring both //go:build lines and _GOOS/_GOARCH filename
// suffixes the way the go tool does. Files excluded on this platform
// (e.g. the non-unix mmap fallback) would redeclare symbols if parsed
// alongside their counterparts, so the loader must skip them exactly
// like the compiler does.
func matchesHostConstraints(name, path string) bool {
	base := strings.TrimSuffix(name, ".go")
	if i := strings.LastIndex(base, "_"); i >= 0 {
		// Only the go tool's known GOOS/GOARCH names act as implicit
		// filename constraints; check the final one or two suffixes.
		parts := strings.Split(base, "_")
		last := parts[len(parts)-1]
		if knownArch[last] {
			if last != runtime.GOARCH {
				return false
			}
			if len(parts) >= 3 && knownOS[parts[len(parts)-2]] && parts[len(parts)-2] != runtime.GOOS {
				return false
			}
		} else if knownOS[last] && last != runtime.GOOS {
			return false
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return true // let the parser report the real error
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true
			}
			return expr.Eval(hostTag)
		}
		// Build constraints must precede the package clause.
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
	}
	return true
}

// hostTag evaluates one build tag for the host platform.
func hostTag(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixGOOS[runtime.GOOS]
	case strings.HasPrefix(tag, "go1."):
		return true // the module's minimum Go always satisfies these
	}
	return false
}

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"js": true, "linux": true, "nacl": true, "netbsd": true,
	"openbsd": true, "plan9": true, "solaris": true, "wasip1": true,
	"windows": true, "zos": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// moduleImports lists the module-internal import paths of pkg.
func moduleImports(pkg *Package, modPath string) []string {
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				out = append(out, path)
			}
		}
	}
	return out
}

// topoSort orders packages so that every module-internal dependency
// precedes its importers.
func topoSort(pkgs []*Package) ([]*Package, error) {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var out []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.Path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		}
		state[p.Path] = visiting
		var modPath string
		if i := strings.Index(p.Path, "/"); i >= 0 {
			modPath = p.Path[:i]
		} else {
			modPath = p.Path
		}
		deps := moduleImports(p, modPath)
		sort.Strings(deps)
		for _, dep := range deps {
			if d, ok := byPath[dep]; ok && d != p {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.Path] = done
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// typeCheck runs the type checker over pkg, resolving module-internal
// imports from already-checked packages and everything else through the
// stdlib source importer.
func (m *Module) typeCheck(pkg *Package) error {
	var errs []error
	conf := types.Config{
		Importer: moduleImporter{m},
		Error:    func(err error) { errs = append(errs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if len(errs) > 0 {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, errs[0])
	}
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter resolves imports during module type-checking: module
// packages come from the in-progress load (dependency order guarantees
// they are already checked), the rest from the stdlib source importer.
type moduleImporter struct{ m *Module }

func (mi moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := mi.m.byPath[path]; ok {
		return p, nil
	}
	return mi.m.std.Import(path)
}
