package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// LockOrder builds the module-wide mutex acquisition-order graph and
// reports cycles: if one function acquires B while holding A and
// another acquires A while holding B, the two can deadlock. Locks are
// identified by class — "pkg.Type.field" for a mutex field,
// "pkg.varname" for a package-level mutex — so every instance of a
// struct shares one node. Reacquiring the *same* lock expression is
// reported directly: recursive Lock, recursive RLock (deadlocks with a
// pending writer), and the RLock→Lock upgrade. Acquiring a second
// instance of the same class is also reported — same-class acquisition
// is deadlock-prone unless globally ordered, which a justified
// //lint:ignore can document.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "the module-wide lock acquisition order must be acyclic",
	RunModule: runLockOrder,
}

// acqEdge is one held→acquired observation.
type acqEdge struct {
	from, to string
}

func runLockOrder(pass *ModulePass) {
	edgePos := make(map[acqEdge]token.Pos)
	var edgeOrder []acqEdge
	for _, pkg := range pass.Pkgs {
		for _, fb := range packageFuncs(pkg) {
			lockOrderFunc(pass, pkg, fb, edgePos, &edgeOrder)
		}
	}

	// Cycle detection over the class graph: report each strongly
	// connected component of ≥2 classes once, anchored at its
	// first-recorded edge.
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, e := range edgeOrder {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	for _, scc := range sccOf(nodes, adj) {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[string]bool, len(scc))
		for _, c := range scc {
			inSCC[c] = true
		}
		pos := token.NoPos
		for _, e := range edgeOrder {
			if inSCC[e.from] && inSCC[e.to] {
				pos = edgePos[e]
				break
			}
		}
		sort.Strings(scc)
		pass.Reportf(pos,
			"lock-order cycle: %v are acquired in conflicting orders across the module; a consistent global order is required",
			scc)
	}
}

// lockOrderFunc records the acquisition edges of one function and
// reports same-expression reacquisitions inline.
func lockOrderFunc(pass *ModulePass, pkg *Package, fb funcBody,
	edgePos map[acqEdge]token.Pos, edgeOrder *[]acqEdge) {
	info := pkg.Info

	// Map each lock expression of this function to its class once.
	classOf := make(map[string]string)
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are their own funcBody
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, _, _, ok := lockCallExpr(info, call)
		if !ok {
			return true
		}
		if _, seen := classOf[recv]; !seen {
			if class, ok := lockClass(info, lockRecvExpr(call)); ok {
				classOf[recv] = class
			}
		}
		return true
	})

	var entry heldFact
	if fb.decl != nil {
		entry = entryLocks(fb.decl.Doc)
	}
	g, res := solveHeld(pkg, fb.body, entry)
	reach := g.Reachable()
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for i, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue
			}
			held := heldBefore(info, res, b, i)
			ast.Inspect(n, func(m ast.Node) bool {
				switch call := m.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					recv, method, _, ok := lockCallExpr(info, call)
					if !ok || (method != "Lock" && method != "RLock") {
						return true
					}
					for hrecv, hkind := range held {
						if hrecv == recv {
							reportReacquire(pass, call.Pos(), recv, method, hkind)
							continue
						}
						from, okF := classOf[hrecv]
						to, okT := classOf[recv]
						if !okF || !okT {
							continue
						}
						if from == to {
							pass.Reportf(call.Pos(),
								"acquiring %s while holding %s: two locks of class %s with no global order can deadlock",
								recv, hrecv, to)
							continue
						}
						e := acqEdge{from, to}
						if _, seen := edgePos[e]; !seen {
							edgePos[e] = call.Pos()
							*edgeOrder = append(*edgeOrder, e)
						}
					}
					// The acquisition takes effect for later calls
					// inside this same node.
					applyLockNode(info, call, held)
					return false // already handled nested calls' scan order
				}
				return true
			})
		}
	}
}

func reportReacquire(pass *ModulePass, pos token.Pos, recv, method string, hkind lockKind) {
	switch {
	case method == "Lock" && hkind == heldW:
		pass.Reportf(pos, "recursive %s.Lock(): already held exclusively on every path here", recv)
	case method == "Lock" && hkind == heldR:
		pass.Reportf(pos, "%s.RLock() upgraded to Lock(): the writer waits for its own reader — guaranteed deadlock", recv)
	case method == "RLock" && hkind == heldW:
		pass.Reportf(pos, "%s.RLock() while holding %s.Lock(): the reader waits for its own writer — guaranteed deadlock", recv, recv)
	default:
		pass.Reportf(pos, "recursive %s.RLock(): deadlocks if a writer is queued between the two RLocks", recv)
	}
}

// sccOf computes strongly connected components (iterative Tarjan) over
// a string graph, deterministically.
func sccOf(nodes map[string]bool, adj map[string][]string) [][]string {
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, outs := range adj {
		sort.Strings(outs)
	}

	index := make(map[string]int, len(names))
	low := make(map[string]int, len(names))
	onStack := make(map[string]bool, len(names))
	var stack []string
	next := 0
	var sccs [][]string

	type frame struct {
		v  string
		si int
	}
	for _, root := range names {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{v: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.si == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			outs := adj[v]
			for f.si < len(outs) {
				w := outs[f.si]
				f.si++
				if _, seen := index[w]; !seen {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return sccs
}
