package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck reports call statements that silently discard an error
// result. Assigning to the blank identifier (`_ = f.Close()`) is an
// explicit, visible discard and stays allowed; a bare call statement is
// not. A small allowlist covers writers that cannot fail or keep a
// sticky error by contract:
//
//   - fmt.Print/Printf/Println (stdout), and fmt.Fprint* when the
//     destination is os.Stdout, os.Stderr, a *strings.Builder, a
//     *bytes.Buffer or a *bufio.Writer;
//   - methods on *strings.Builder and *bytes.Buffer (never fail);
//   - methods on *bufio.Writer except Flush — writes latch a sticky
//     error that the mandatory Flush check surfaces.
//
// defer'd and go'd calls are skipped: their results are discarded by
// language rule, and `defer f.Close()` on read-only files is idiomatic.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "no silently discarded error returns",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) {
	info := pass.Pkg.Info
	pass.inspect(func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		if !callReturnsError(info, call) || errcheckAllowed(info, call) {
			return true
		}
		pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or assign to _",
			types.ExprString(call.Fun))
		return true
	})
}

// callReturnsError reports whether the call's results include an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// errcheckAllowed implements the allowlist described on ErrCheck.
func errcheckAllowed(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if recv := receiverNamed(fn); recv != nil {
		pkg, name := recv.Obj().Pkg(), recv.Obj().Name()
		if pkg == nil {
			return false
		}
		switch {
		case pkg.Path() == "strings" && name == "Builder":
			return true
		case pkg.Path() == "bytes" && name == "Buffer":
			return true
		case pkg.Path() == "bufio" && name == "Writer" && fn.Name() != "Flush":
			return true
		}
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				return benignWriter(info, call.Args[0])
			}
		}
	}
	return false
}

// benignWriter reports whether the fmt.Fprint* destination is one whose
// write errors are ignorable (std streams) or surfaced elsewhere
// (sticky-error and never-fail writers).
func benignWriter(info *types.Info, arg ast.Expr) bool {
	arg = ast.Unparen(arg)
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr") {
			return true
		}
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	t := deref(tv.Type)
	return namedFrom(t, "strings", "Builder") ||
		namedFrom(t, "bytes", "Buffer") ||
		namedFrom(t, "bufio", "Writer")
}
