package lint

import (
	"go/ast"
)

// MathRand forbids the global math/rand generator in library packages.
// Benchmarks and property tests in this repo are reproducible because
// every randomized component takes an injected, seeded *rand.Rand (or a
// seed to construct one); a call to the package-level generator
// reintroduces cross-run nondeterminism and data races under parallel
// benchmarks. Constructors (New, NewSource, NewZipf) stay allowed —
// they are exactly how the seeded generators get made. Package main is
// exempt: binaries own their top-level seeding policy.
var MathRand = &Analyzer{
	Name: "mathrand",
	Doc:  "no global math/rand state in library packages",
	Run:  runMathRand,
}

// mathRandAllowed are the math/rand package-level functions that do not
// touch the global generator.
var mathRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runMathRand(pass *Pass) {
	if pass.Pkg.Name == "main" {
		return
	}
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		if mathRandAllowed[fn.Name()] || receiverNamed(fn) != nil {
			return true
		}
		pass.Reportf(call.Pos(),
			"rand.%s uses the global math/rand generator; inject a seeded *rand.Rand for reproducible runs",
			fn.Name())
		return true
	})
}
