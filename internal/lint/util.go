package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the function object a call invokes, or nil for
// calls through function values, conversions and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcFrom reports whether fn is the package-level function pkgPath.name
// (methods never match).
func funcFrom(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// namedFrom reports whether t (after unwrapping aliases) is the named
// type pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// receiverNamed returns the (dereferenced) named receiver type of a
// method object, or nil.
func receiverNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named, _ := types.Unalias(deref(sig.Recv().Type())).(*types.Named)
	return named
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
