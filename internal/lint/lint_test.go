package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The module is loaded once and shared: stdlib source type-checking
// dominates the cost, and fixtures only add one small package each.
var (
	modOnce sync.Once
	mod     *Module
	modErr  error
)

func repoModule(t *testing.T) *Module {
	t.Helper()
	modOnce.Do(func() { mod, modErr = LoadModule("../..") })
	if modErr != nil {
		t.Fatalf("LoadModule: %v", modErr)
	}
	return mod
}

// quotedRE pulls the quoted substrings out of a `// want "..." "..."`
// marker.
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type wantKey struct {
	file string
	line int
}

// fixtureWants collects the expected-finding markers of a fixture
// package: each `// want "substr"` comment demands a finding on its
// line whose message contains the substring.
func fixtureWants(t *testing.T, m *Module, pkg *Package) map[wantKey][]string {
	t.Helper()
	wants := make(map[wantKey][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := m.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(c.Text[i:], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want marker %s: %v", pos.Filename, pos.Line, q, err)
					}
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], s)
				}
			}
		}
	}
	return wants
}

// checkFixture type-checks testdata/src/<dir> under importPath, runs
// the named analyzers and matches the findings against the fixture's
// want markers — every finding must be wanted at its exact line, and
// every want must be found.
func checkFixture(t *testing.T, dir, importPath string, analyzers ...string) {
	t.Helper()
	m := repoModule(t)
	pkg, err := m.CheckDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", dir, err)
	}
	var as []*Analyzer
	for _, name := range analyzers {
		a := ByName(name)
		if a == nil {
			t.Fatalf("unknown analyzer %q", name)
		}
		as = append(as, a)
	}
	got := RunPackage(m.Fset, pkg, as)
	wants := fixtureWants(t, m, pkg)
	for _, f := range got {
		k := wantKey{f.Pos.Filename, f.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(f.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %v", f)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: no finding matching %q", k.file, k.line, w)
		}
	}
}

func TestAtomicAlignFixture(t *testing.T) {
	checkFixture(t, "atomicalign", "repro/internal/lintfixture/atomicalign", "atomicalign")
}

func TestTraceSpanFixture(t *testing.T) {
	checkFixture(t, "tracespan", "repro/internal/lintfixture/tracespan", "tracespan")
}

func TestHotClockFixture(t *testing.T) {
	// Checked under a hot-path import path, where clock reads are
	// findings.
	checkFixture(t, "hotclock", "repro/internal/core/lintfixture", "hotclock")
}

func TestHotClockColdPath(t *testing.T) {
	// The same kind of code under a serving-path import path is exempt:
	// the fixture has no want markers, so any finding fails the test.
	checkFixture(t, "hotclockcold", "repro/internal/server/lintfixture", "hotclock")
}

func TestMathRandFixture(t *testing.T) {
	checkFixture(t, "mathrand", "repro/internal/lintfixture/mathrand", "mathrand")
}

func TestMathRandMainExempt(t *testing.T) {
	checkFixture(t, "mathrandmain", "repro/cmd/lintfixture", "mathrand")
}

func TestErrCheckFixture(t *testing.T) {
	checkFixture(t, "errcheck", "repro/internal/lintfixture/errcheck", "errcheck")
}

func TestLockCopyFixture(t *testing.T) {
	checkFixture(t, "lockcopy", "repro/internal/lintfixture/lockcopy", "lockcopy")
}

func TestDeferUnlockFixture(t *testing.T) {
	checkFixture(t, "deferunlock", "repro/internal/lintfixture/deferunlock", "deferunlock")
}

func TestParityGuardFixture(t *testing.T) {
	checkFixture(t, "parityguard", "repro/internal/lintfixture/parityguard", "parityguard")
}

func TestGuardedFieldFixture(t *testing.T) {
	checkFixture(t, "guardedfield", "repro/internal/lintfixture/guardedfield", "guardedfield")
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", "repro/internal/lintfixture/lockorder", "lockorder")
}

func TestSnapshotMutFixture(t *testing.T) {
	checkFixture(t, "snapshotmut", "repro/internal/lintfixture/snapshotmut", "snapshotmut")
}

func TestCtxFlowFixture(t *testing.T) {
	checkFixture(t, "ctxflow", "repro/internal/lintfixture/ctxflow", "ctxflow")
}

func TestEpochMonoFixture(t *testing.T) {
	checkFixture(t, "epochmono", "repro/internal/lintfixture/epochmono", "epochmono")
}

func TestDeferInLoopFixture(t *testing.T) {
	checkFixture(t, "deferinloop", "repro/internal/lintfixture/deferinloop", "deferinloop")
}

// TestDirectives exercises the //lint:ignore machinery end to end: a
// well-formed directive suppresses its finding, a malformed one (no
// reason) suppresses nothing and is itself reported.
func TestDirectives(t *testing.T) {
	m := repoModule(t)
	pkg, err := m.CheckDir(filepath.Join("testdata", "src", "directive"), "repro/internal/core/directivefixture")
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	got := RunPackage(m.Fset, pkg, []*Analyzer{HotClock})
	var malformed, unused, clocks int
	for _, f := range got {
		switch f.Analyzer {
		case "directive":
			switch {
			case strings.Contains(f.Message, "malformed"):
				malformed++
			case strings.Contains(f.Message, "unused //lint:ignore"):
				unused++
			default:
				t.Errorf("directive finding has unexpected message: %v", f)
			}
		case "hotclock":
			clocks++
		default:
			t.Errorf("unexpected analyzer in finding: %v", f)
		}
	}
	if malformed != 1 || unused != 1 || clocks != 1 {
		t.Errorf("got %d malformed + %d unused + %d hotclock findings, want 1 + 1 + 1:\n%v",
			malformed, unused, clocks, got)
	}
}

// TestModuleClean runs the full suite over the real module — the same
// gate as `go run ./cmd/rrlint ./...` in ci.sh. The tree must stay
// lint-clean.
func TestModuleClean(t *testing.T) {
	m := repoModule(t)
	findings := Run(m, All())
	for _, f := range findings {
		t.Errorf("%v", f)
	}
}

// TestByName covers the analyzer registry both ways.
func TestByName(t *testing.T) {
	for _, a := range All() {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if ByName("nope") != nil {
		t.Errorf("ByName(nope) should be nil")
	}
}
