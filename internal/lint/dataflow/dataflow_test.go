package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/lint/cfg"
)

func buildFunc(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return cfg.New(fd.Body, nil)
		}
	}
	t.Fatalf("no function in %q", src)
	return nil
}

// set is the fact type used by the tests: a string set.
type set map[string]bool

func clone(s set) set {
	out := make(set, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func union(a, b set) set {
	out := clone(a)
	for k := range b {
		out[k] = true
	}
	return out
}

func intersect(a, b set) set {
	out := make(set)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func setsEqual(a, b set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// kindGen is a transfer that adds each block's kind to the fact —
// enough to observe which blocks a path passes through.
func kindGen(b *cfg.Block, in set) set {
	out := clone(in)
	out[b.Kind] = true
	return out
}

// TestForwardMay checks a may-analysis (union meet) over a diamond:
// after the join, both arms' contributions are visible.
func TestForwardMay(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	if c {
		println(1)
	} else {
		println(2)
	}
	println(3)
}`)
	res := Solve(g, Problem[set]{
		Dir:      Forward,
		Boundary: set{},
		Init:     set{},
		Transfer: kindGen,
		Meet:     union,
		Equal:    setsEqual,
	})
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	exitIn := res.In[g.Exit]
	for _, want := range []string{"entry", "if.then", "if.else", "if.join"} {
		if !exitIn[want] {
			t.Errorf("exit In missing %q: %v", want, exitIn)
		}
	}
}

// TestForwardMust checks a must-analysis (intersection meet): only
// facts true on every path survive the join.
func TestForwardMust(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	if c {
		println(1)
	} else {
		println(2)
	}
	println(3)
}`)
	res := Solve(g, Problem[set]{
		Dir:      Forward,
		Boundary: set{},
		Init:     set{},
		Transfer: kindGen,
		Meet:     intersect,
		Equal:    setsEqual,
	})
	if !res.Converged {
		t.Fatalf("did not converge")
	}
	exitIn := res.In[g.Exit]
	// "entry" flows through both arms; the arm kinds do not.
	if !exitIn["entry"] || !exitIn["if.join"] {
		t.Errorf("exit In missing common facts: %v", exitIn)
	}
	if exitIn["if.then"] || exitIn["if.else"] {
		t.Errorf("must-analysis leaked a one-path fact: %v", exitIn)
	}
}

// TestLoopFixpoint checks convergence on a loop: facts generated in
// the body reach the head on the back edge.
func TestLoopFixpoint(t *testing.T) {
	g := buildFunc(t, `func f() {
	for i := 0; i < 3; i++ {
		println(i)
	}
	println("done")
}`)
	res := Solve(g, Problem[set]{
		Dir:      Forward,
		Boundary: set{},
		Init:     set{},
		Transfer: kindGen,
		Meet:     union,
		Equal:    setsEqual,
	})
	if !res.Converged {
		t.Fatalf("loop did not converge (%d iterations)", res.Iterations)
	}
	// The head's In must include the body and post kinds via the back
	// edge — proof the solver iterated past the first pass.
	var head *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	if !res.In[head]["for.body"] || !res.In[head]["for.post"] {
		t.Errorf("back edge facts missing at loop head: %v", res.In[head])
	}
}

// TestBackward checks the backward direction: facts flow from Exit
// against the edges, so the entry's In (= fact at its end, in reversed
// order) sees downstream blocks.
func TestBackward(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
	if c {
		println(1)
	}
	println(2)
}`)
	res := Solve(g, Problem[set]{
		Dir:      Backward,
		Boundary: set{},
		Init:     set{},
		Transfer: kindGen,
		Meet:     union,
		Equal:    setsEqual,
	})
	if !res.Converged {
		t.Fatalf("did not converge")
	}
	entryIn := res.In[g.Entry]
	for _, want := range []string{"exit", "if.join", "if.then"} {
		if !entryIn[want] {
			t.Errorf("entry In missing %q under backward flow: %v", want, entryIn)
		}
	}
}

// TestUnreachableGetsInit checks that a block with no processed
// predecessors keeps the Init fact.
func TestUnreachableGetsInit(t *testing.T) {
	g := buildFunc(t, `func f() int {
	return 1
	println("dead")
}`)
	res := Solve(g, Problem[set]{
		Dir:      Forward,
		Boundary: set{"boundary": true},
		Init:     set{"init": true},
		Transfer: func(b *cfg.Block, in set) set { return clone(in) },
		Meet:     union,
		Equal:    setsEqual,
	})
	if !res.Converged {
		t.Fatalf("did not converge")
	}
	var dead *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" {
			dead = b
		}
	}
	if dead == nil {
		t.Fatal("no unreachable block")
	}
	if !res.In[dead]["init"] || res.In[dead]["boundary"] {
		t.Errorf("unreachable block In = %v, want just the Init fact", res.In[dead])
	}
	if !res.In[g.Entry]["boundary"] {
		t.Errorf("entry In = %v, want the Boundary fact", res.In[g.Entry])
	}
}

// TestNonMonotoneCaps checks the iteration cap: facts that never
// stabilize (modeled by an Equal that never reports a fixpoint) must
// stop with Converged=false instead of hanging.
func TestNonMonotoneCaps(t *testing.T) {
	g := buildFunc(t, `func f() {
	for {
		println(1)
	}
}`)
	res := Solve(g, Problem[set]{
		Dir:      Forward,
		Boundary: set{},
		Init:     set{},
		Transfer: kindGen,
		Meet:     union,
		Equal:    func(a, b set) bool { return false },
	})
	if res.Converged {
		t.Errorf("never-stabilizing facts reported convergence")
	}
	if res.Iterations < len(g.Blocks)*64 {
		t.Errorf("cap tripped after only %d iterations", res.Iterations)
	}
}
