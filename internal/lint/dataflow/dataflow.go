// Package dataflow is a generic iterative dataflow solver over the
// control-flow graphs of internal/lint/cfg. A Problem supplies the
// lattice (Meet, Equal), the transfer function, and the boundary and
// initial facts; Solve runs worklist iteration in reverse postorder
// until a fixpoint (or the iteration cap, reported via
// Result.Converged).
//
// The framework is direction-agnostic: for a Forward problem facts flow
// along Succs and In[b] is the fact at block entry; for a Backward
// problem facts flow along Preds and In[b] is the fact at block *exit*
// (the first fact the reversed execution sees). Transfer always maps
// In[b] to Out[b].
//
// The solver is optimistic about unreachable code: a block none of
// whose predecessors has been processed takes the Init fact. For a
// must-analysis (meet = intersection) Init should be the empty fact —
// "nothing is known to hold" — which keeps unreachable blocks
// conservative without needing a representation of the lattice top.
package dataflow

import (
	"repro/internal/lint/cfg"
)

// Direction orients a Problem.
type Direction int

const (
	// Forward propagates facts from Entry along successor edges.
	Forward Direction = iota
	// Backward propagates facts from Exit along predecessor edges.
	Backward
)

// Problem defines one dataflow analysis over a cfg.Graph.
type Problem[F any] struct {
	// Dir orients the analysis.
	Dir Direction
	// Boundary is the fact at the boundary block: Entry for Forward,
	// Exit for Backward.
	Boundary F
	// Init is the fact assumed for a block before any predecessor has
	// been processed (unreachable code keeps it).
	Init F
	// Transfer maps the fact flowing into b to the fact flowing out.
	// It must not mutate its input.
	Transfer func(b *cfg.Block, in F) F
	// Meet combines facts where control-flow paths join. It must be
	// commutative and associative and must not mutate its inputs.
	Meet func(a, b F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b F) bool
}

// Result carries the fixpoint facts.
type Result[F any] struct {
	// In and Out are the facts before and after each block's Transfer.
	In, Out map[*cfg.Block]F
	// Converged is false when the iteration cap was hit before a
	// fixpoint (a non-monotone Transfer or a pathological lattice).
	Converged bool
	// Iterations counts block visits.
	Iterations int
}

// Solve runs worklist iteration to a fixpoint and returns the facts.
func Solve[F any](g *cfg.Graph, p Problem[F]) Result[F] {
	boundary := g.Entry
	preds := func(b *cfg.Block) []*cfg.Block { return b.Preds }
	succs := func(b *cfg.Block) []*cfg.Block { return b.Succs }
	if p.Dir == Backward {
		boundary = g.Exit
		preds, succs = succs, preds
	}

	order := rpo(g, boundary, succs)
	res := Result[F]{
		In:  make(map[*cfg.Block]F, len(g.Blocks)),
		Out: make(map[*cfg.Block]F, len(g.Blocks)),
	}
	hasOut := make(map[*cfg.Block]bool, len(g.Blocks))

	inQueue := make(map[*cfg.Block]bool, len(order))
	queue := make([]*cfg.Block, len(order))
	copy(queue, order)
	for _, b := range order {
		inQueue[b] = true
	}

	// Gen/kill lattices converge in O(depth) passes; the cap only
	// guards against a non-monotone Transfer looping forever.
	limit := len(g.Blocks)*64 + 256
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false
		res.Iterations++
		if res.Iterations > limit {
			res.Converged = false
			return res
		}

		var in F
		seeded := false
		if b == boundary {
			in = p.Boundary
			seeded = true
		}
		for _, pb := range preds(b) {
			if !hasOut[pb] {
				continue
			}
			if !seeded {
				in = res.Out[pb]
				seeded = true
			} else {
				in = p.Meet(in, res.Out[pb])
			}
		}
		if !seeded {
			in = p.Init
		}
		res.In[b] = in

		out := p.Transfer(b, in)
		if hasOut[b] && p.Equal(res.Out[b], out) {
			continue
		}
		res.Out[b] = out
		hasOut[b] = true
		for _, sb := range succs(b) {
			if !inQueue[sb] {
				inQueue[sb] = true
				queue = append(queue, sb)
			}
		}
	}
	res.Converged = true
	return res
}

// rpo returns the blocks in reverse postorder from start following
// next, with blocks unreachable from start appended in index order (so
// every block gets facts).
func rpo(g *cfg.Graph, start *cfg.Block, next func(*cfg.Block) []*cfg.Block) []*cfg.Block {
	seen := make(map[*cfg.Block]bool, len(g.Blocks))
	var post []*cfg.Block

	type frame struct {
		b  *cfg.Block
		si int
	}
	stack := []frame{{b: start}}
	seen[start] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		advanced := false
		ns := next(f.b)
		for f.si < len(ns) {
			n := ns[f.si]
			f.si++
			if !seen[n] {
				seen[n] = true
				stack = append(stack, frame{b: n})
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}

	out := make([]*cfg.Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range g.Blocks {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}
