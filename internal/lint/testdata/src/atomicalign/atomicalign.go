// Fixture for the atomicalign analyzer: 64-bit atomic operands must be
// 64-bit-aligned under 32-bit layout rules.
package atomicalign

import "sync/atomic"

type misaligned struct {
	flag uint32
	n    uint64 // offset 4 under 32-bit layout
}

type aligned struct {
	n    uint64 // offset 0 everywhere
	flag uint32
}

type padded struct {
	a, b uint32
	n    int64 // offset 8: two uint32s pad it out
}

func bump(m *misaligned, a *aligned, p *padded) {
	atomic.AddUint64(&m.n, 1) // want "not 64-bit-aligned"
	atomic.AddUint64(&a.n, 1)
	atomic.AddInt64(&p.n, 1)
}

func load(m *misaligned) uint64 {
	return atomic.LoadUint64(&m.n) // want "not 64-bit-aligned"
}

type modern struct {
	flag uint32
	n    atomic.Uint64 // self-aligning: never flagged
}

func bumpModern(m *modern) {
	m.n.Add(1)
}

func local() int64 {
	// Local variables are not struct fields; the analyzer only tracks
	// field selectors.
	var n int64
	atomic.AddInt64(&n, 1)
	return n
}
