// Fixture for the mathrand analyzer: library packages must thread an
// explicit, seedable *rand.Rand instead of the global source.
package mathrand

import "math/rand"

func global() int {
	return rand.Intn(10) // want "global math/rand"
}

func globalFloat() float64 {
	return rand.Float64() // want "global math/rand"
}

func seeded() int {
	// Constructors and methods on an explicit generator are the
	// sanctioned pattern.
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(10)
}
