// Fixture for the ctxflow analyzer: request paths (functions taking a
// context.Context or *http.Request) must thread the request context
// through blocking work.
package ctxflow

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "context.Background() in a request path"
	_ = ctx
	req, _ := http.NewRequest("GET", "http://example.com", nil) // want "use http.NewRequestWithContext"
	_ = req
	resp, _ := http.Get("http://example.com") // want "http.Get in a request path"
	_ = resp
	time.Sleep(time.Millisecond) // want "time.Sleep in a request path"
}

func threaded(ctx context.Context, url string) error {
	// The request context flows into the outbound call: clean.
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func slogExempt(ctx context.Context, lg *slog.Logger) {
	// Logging must not fail with the request: a fresh context passed
	// straight into slog is the accepted idiom.
	lg.LogAttrs(context.Background(), slog.LevelInfo, "msg")
}

func todoFlagged(ctx context.Context) {
	_ = context.TODO() // want "context.TODO() in a request path"
}

func notInScope() {
	// No context or request parameter: background work is free to use
	// its own root context and sleeps.
	_ = context.Background()
	time.Sleep(time.Millisecond)
}

func detachedClosure(ctx context.Context) {
	go func() {
		// The literal takes no context: deliberately detached work
		// (async straggler drains) stays exempt.
		time.Sleep(time.Millisecond)
	}()
}

func closureWithCtx(ctx context.Context) {
	f := func(ctx context.Context) {
		time.Sleep(time.Millisecond) // want "time.Sleep in a request path"
	}
	f(ctx)
}
