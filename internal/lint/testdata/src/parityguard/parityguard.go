// Fixture for the parityguard analyzer: every RangeReach implementer
// also implements RangeReachTraced, and persistence magics are unique.
package parityguard

import (
	"repro/internal/geom"
	"repro/internal/trace"
)

type untraced struct{} // want "untraced implements RangeReach but not RangeReachTraced"

func (untraced) RangeReach(v int, r geom.Rect) bool { return false }

type traced struct{}

func (traced) RangeReach(v int, r geom.Rect) bool { return false }
func (traced) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	return false
}

type unrelated struct{}

// A different shape is not an engine; no parity demanded.
func (unrelated) RangeReach(v int, depth int) bool { return false }

var fooMagic = [4]byte{'R', 'R', 'F', 'O'}
var barMagic = [4]byte{'R', 'R', 'B', 'A'}
var dupMagic = [4]byte{'R', 'R', 'F', 'O'} // want "duplicates"

const strMagic = "RRST"
