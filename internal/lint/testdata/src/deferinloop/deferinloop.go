// Fixture for the deferinloop analyzer: defers on a CFG cycle
// accumulate one pending call per iteration.
package deferinloop

import "os"

func leak(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close() // want "defer inside a loop"
	}
	return nil
}

func hoisted(paths []string) error {
	for _, p := range paths {
		if err := func() error {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			// The literal's own graph has no loop: the defer releases
			// every iteration.
			defer f.Close()
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}

func topLevel(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func gotoLoop() {
	i := 0
retry:
	defer println(i) // want "defer inside a loop"
	i++
	if i < 3 {
		goto retry
	}
}

func afterLoop(paths []string) error {
	for _, p := range paths {
		_ = p
	}
	f, err := os.Open("summary")
	if err != nil {
		return err
	}
	defer f.Close() // after the loop: fine
	return nil
}
