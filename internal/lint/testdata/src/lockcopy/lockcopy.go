// Fixture for the lockcopy analyzer: sync locks must never be copied
// by value.
package lockcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { // want "parameter of type guarded copies a lock"
	return g.n
}

func byPointer(g *guarded) int {
	return g.n
}

func (g guarded) valueRecv() int { // want "receiver of type guarded copies a lock"
	return g.n
}

func (g *guarded) ptrRecv() int {
	return g.n
}

func snapshot(p *guarded) {
	g := *p // want "contains a lock"
	_ = g
}

func returnsLock() guarded { // want "result of type guarded copies a lock"
	return guarded{}
}

func plainMutexParam(mu sync.Mutex) { // want "parameter of type sync.Mutex copies a lock"
	_ = mu
}
