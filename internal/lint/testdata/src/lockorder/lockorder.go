// Fixture for the lockorder analyzer: the module-wide acquisition
// order must be acyclic, and same-lock reacquisition is reported
// directly.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// cdOrder1 and cdOrder2 acquire C before D consistently: no findings.
func cdOrder1(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func cdOrder2(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// abOrder and baOrder conflict: the A.mu/B.mu classes form a cycle,
// anchored at the first conflicting edge.
func abOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

func baOrder(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// sequential release-then-acquire creates no ordering edge.
func sequential(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

type R struct{ mu sync.RWMutex }

func upgrade(r *R) {
	r.mu.RLock()
	r.mu.Lock() // want "upgraded to Lock"
	r.mu.Unlock()
}

func recursiveLock(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want "recursive a.mu.Lock"
	a.mu.Unlock()
	a.mu.Unlock()
}

func recursiveRLock(r *R) {
	r.mu.RLock()
	r.mu.RLock() // want "recursive r.mu.RLock"
	r.mu.RUnlock()
	r.mu.RUnlock()
}

func readUnderWrite(r *R) {
	r.mu.Lock()
	r.mu.RLock() // want "while holding r.mu.Lock"
	r.mu.RUnlock()
	r.mu.Unlock()
}

func sameClassPair(x, y *A) {
	x.mu.Lock()
	y.mu.Lock() // want "two locks of class"
	y.mu.Unlock()
	x.mu.Unlock()
}

// branchRelease: the lock is released on every path before the next
// acquisition, so the must-analysis records no edge.
func branchRelease(a *A, b *B, cond bool) {
	a.mu.Lock()
	if cond {
		a.mu.Unlock()
	} else {
		a.mu.Unlock()
	}
	b.mu.Lock()
	b.mu.Unlock()
}
