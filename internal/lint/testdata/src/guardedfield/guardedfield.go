// Fixture for the guardedfield analyzer: fields annotated
// //lint:guardedby mu must only be accessed under that lock.
package guardedfield

import "sync"

type box struct {
	mu   sync.Mutex
	n    int //lint:guardedby mu
	cold int // unannotated: free access
}

func lockedRead(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func lockedWrite(b *box) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func bareRead(b *box) int {
	return b.n // want "read of b.n (guarded by mu) without holding b.mu"
}

func bareWrite(b *box) {
	b.n = 7 // want "write to b.n (guarded by mu) without holding b.mu"
}

func coldIsFree(b *box) int {
	b.cold = 1 // unannotated stays unchecked
	return b.cold
}

func afterUnlock(b *box) int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n + b.n // want "read of b.n (guarded by mu) without holding b.mu"
}

func branchMerge(b *box, c bool) {
	// Held on only one path into the join: the must-analysis rejects it.
	if c {
		b.mu.Lock()
	}
	b.n = 1 // want "write to b.n (guarded by mu) without holding b.mu"
	if c {
		b.mu.Unlock()
	}
}

func bothBranchesLock(b *box, c bool) {
	// Held on every path into the join: fine.
	if c {
		b.mu.Lock()
	} else {
		b.mu.Lock()
	}
	b.n = 1
	b.mu.Unlock()
}

func constructorOwned() *box {
	b := &box{}
	b.n = 42 // still private to this function
	return b
}

func literalInit() *box {
	return &box{n: 42} // composite literal keys are not selectors
}

//lint:locked b.mu
func lockedHelper(b *box) {
	// Callers hold b.mu (annotated above): access is allowed.
	b.n++
}

func wrongLock(a, b *box) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.n = 1 // want "write to b.n (guarded by mu) without holding b.mu"
}

type rwBox struct {
	mu sync.RWMutex
	m  map[string]int //lint:guardedby mu
}

func readLocked(r *rwBox, k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func writeUnderRLock(r *rwBox, k string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.m[k] = 1 // want "holding only r.mu.RLock; writes need r.mu.Lock"
}

func writeLocked(r *rwBox, k string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = 1
}

func addressEscapes(b *box) *int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return &b.n // address-of under Lock is allowed (caller beware)
}

func addressBare(b *box) *int {
	return &b.n // want "write to b.n (guarded by mu) without holding b.mu"
}

func closureIsOwnScope(b *box) func() {
	b.mu.Lock()
	defer b.mu.Unlock()
	// The literal may run after Unlock (another goroutine): it must
	// lock for itself.
	return func() {
		b.n++ // want "write to b.n (guarded by mu) without holding b.mu"
	}
}

func loopLocked(b *box) {
	for i := 0; i < 3; i++ {
		b.mu.Lock()
		b.n += i
		b.mu.Unlock()
	}
}
