// Fixture for the tracespan analyzer: *trace.Span may be nil by
// contract, so pointer field dereferences are forbidden; the nil-safe
// methods and by-value access are fine.
package tracespan

import "repro/internal/trace"

func bad(sp *trace.Span) int64 {
	return sp.Labels // want "field Labels dereferenced"
}

func badWrite(sp *trace.Span) {
	sp.Candidates++ // want "field Candidates dereferenced"
}

func goodMethods(sp *trace.Span) {
	sp.AddLabels(3)
	sp.IncNode()
	if sp.Enabled() {
		sp.IncLeaf()
	}
}

func goodValue(sp trace.Span) int64 {
	// A completed span passed by value cannot be nil.
	return sp.Labels + sp.Candidates
}
