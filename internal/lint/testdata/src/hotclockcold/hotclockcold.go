// Fixture for the hotclock analyzer, checked under a non-hot import
// path: the same clock reads that are findings in hot packages are fine
// in serving, bench and tooling code.
package hotclockcold

import "time"

func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}
