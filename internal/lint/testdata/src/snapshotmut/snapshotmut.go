// Fixture for the snapshotmut analyzer: no writes through types
// annotated //lint:frozen once they can be published.
package snapshotmut

//lint:frozen
type Snapshot struct {
	vals []int
	m    map[string]int
	gen  int
}

type wrapper struct {
	snap *Snapshot
}

// build constructs a snapshot: owned values may be filled in freely.
func build() *Snapshot {
	s := &Snapshot{vals: make([]int, 4)}
	s.vals[0] = 1
	s.gen = 7
	s.m = map[string]int{"k": 1}
	return s
}

func mutateField(s *Snapshot) {
	s.gen = 9 // want "write through frozen s"
}

func mutateElem(s *Snapshot) {
	s.vals[0] = 2 // want "write through frozen s"
}

func mutateMap(s *Snapshot) {
	s.m["k"] = 1 // want "write through frozen s"
}

func mutateViaAlias(s *Snapshot) {
	sp := s.vals
	sp[1] = 3 // want "write through frozen sp"
}

func mutateNested(w *wrapper) {
	w.snap.gen++ // want "increment through frozen w.snap"
}

func readOnly(s *Snapshot) int {
	return s.vals[0] + s.m["k"] + s.gen
}

func rebind(s *Snapshot) {
	// Rebinding the variable writes the binding, not the view.
	s = &Snapshot{}
	_ = s
}

func copyIsFree(s *Snapshot) []int {
	// A fresh slice from a call is a copy, not an alias.
	out := make([]int, len(s.vals))
	copy(out, s.vals)
	out[0] = 9
	return out
}

func methodRead(s *Snapshot) int {
	return s.Len()
}

// Len reads the frozen view: fine.
func (s *Snapshot) Len() int { return len(s.vals) }

// Grow writes through the receiver of a frozen type.
func (s *Snapshot) Grow() {
	s.vals = append(s.vals, 0) // want "write through frozen s"
}
