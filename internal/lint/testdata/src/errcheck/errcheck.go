// Fixture for the errcheck analyzer: no silently discarded error
// returns, with the documented allowlist.
package errcheck

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"strings"
)

func fallible() error             { return nil }
func fallibleMulti() (int, error) { return 0, nil }
func infallible() int             { return 0 }

func discards() {
	fallible()      // want "error result of fallible is silently discarded"
	fallibleMulti() // want "error result of fallibleMulti is silently discarded"

	f, _ := os.Open("x")
	f.Close() // want "error result of f.Close is silently discarded"
}

func explicit() {
	_ = fallible()
	_, _ = fallibleMulti()
	_ = infallible()

	f, _ := os.Open("x")
	defer f.Close() // defer discards by language rule; allowed
}

func allowlisted(w *bufio.Writer) {
	fmt.Println("hi")
	fmt.Fprintf(os.Stderr, "hi\n")

	var sb strings.Builder
	sb.WriteString("x")
	fmt.Fprintf(&sb, "y")

	var buf bytes.Buffer
	buf.WriteByte('z')

	w.WriteString("w") // sticky error; surfaced by Flush
	w.Flush()          // want "error result of w.Flush is silently discarded"
}
