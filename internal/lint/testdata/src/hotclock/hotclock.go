// Fixture for the hotclock analyzer. The test checks this package under
// a hot-path import path (repro/internal/core/...), where raw clock
// reads are forbidden unless suppressed with a justified directive.
package hotclock

import "time"

func query() time.Duration {
	start := time.Now() // want "time.Now"
	work()
	return time.Since(start) // want "time.Since"
}

func work() {}

func buildTimed() time.Duration {
	//lint:ignore hotclock build timing is not the query path
	start := time.Now()
	work()
	//lint:ignore hotclock build timing is not the query path
	return time.Since(start)
}

func sleepy() {
	// Only Now and Since are clock reads the analyzer polices.
	time.Sleep(0)
}
