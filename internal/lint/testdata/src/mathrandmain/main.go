// Fixture for the mathrand analyzer: package main is exempt — CLI
// tools may seed the global source for convenience.
package main

import "math/rand"

func main() {
	_ = rand.Intn(10)
}
