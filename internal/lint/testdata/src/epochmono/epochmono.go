// Fixture for the epochmono analyzer: //lint:monotonic counters only
// move forward.
package epochmono

import "sync/atomic"

type idx struct {
	gen   uint64 //lint:monotonic
	epoch uint64 //lint:monotonic
	plain int
}

func good(x *idx) {
	x.gen++
	x.gen += 2
	x.gen = x.gen + 1
	x.epoch = 1 + x.epoch
	x.plain = 0 // unannotated: free
	x.plain--
}

func rewrite(x *idx, v uint64) {
	x.gen = v // want "plain assignment can rewrite it lower"
}

func decrement(x *idx) {
	x.gen-- // want "moves it backward"
}

func subAssign(x *idx) {
	x.gen -= 1 // want "can move it backward"
}

func ctor() *idx {
	x := &idx{}
	x.gen = 7 // constructor-owned: initialization is free
	return x
}

type aidx struct {
	tick atomic.Uint64 //lint:monotonic
}

func atomicGood(a *aidx) uint64 {
	a.tick.Add(1)
	a.tick.CompareAndSwap(1, 2)
	return a.tick.Load()
}

func atomicStore(a *aidx) {
	a.tick.Store(0) // want "atomic Store can publish an older value"
}

func atomicSwap(a *aidx) {
	_ = a.tick.Swap(0) // want "atomic Swap can publish an older value"
}
