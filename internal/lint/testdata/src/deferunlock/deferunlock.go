// Fixture for the deferunlock analyzer: Lock() in functions with
// multiple returns must pair with defer Unlock().
package deferunlock

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func leaky(c *counter, bail bool) int {
	c.mu.Lock() // want "has no defer c.mu.Unlock"
	if bail {
		return 0 // leaks the lock
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func safe(c *counter, bail bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if bail {
		return 0
	}
	return c.n
}

func straightLine(c *counter) int {
	// A single return with a hand-rolled pair is the metrics-hot-path
	// idiom and stays allowed.
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

type rwCounter struct {
	mu sync.RWMutex
	n  int
}

func leakyRead(c *rwCounter, bail bool) int {
	c.mu.RLock() // want "has no defer c.mu.RUnlock"
	if bail {
		return 0
	}
	n := c.n
	c.mu.RUnlock()
	return n
}

func closureScope(c *counter) func() int {
	// The FuncLit is its own scope: its single return does not count
	// against the enclosing function's lock.
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int { return 1 }
}
