// Fixture for the //lint:ignore directive machinery, checked under a
// hot-path import path. One clock read is properly suppressed, one is
// covered only by a malformed directive (missing the mandatory reason)
// and must survive, and the malformed directive itself is reported.
package directive

import "time"

func suppressed() time.Time {
	//lint:ignore hotclock fixture exercises a well-formed directive
	return time.Now()
}

func unsuppressed() time.Time {
	//lint:ignore hotclock
	return time.Now()
}

func stale() int {
	// A well-formed directive that no longer suppresses anything: the
	// clock read it once covered is gone, so the directive itself must
	// be reported as unused.
	//lint:ignore hotclock the clock read here was removed
	return 42
}
