package bptree

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Error("empty tree has size")
	}
	if _, ok := tr.Get(5); ok {
		t.Error("empty tree found a key")
	}
	if !tr.Range(0, 100, func(int32, int32) bool { t.Error("callback on empty"); return true }) {
		t.Error("empty Range returned false")
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Error(msg)
	}
}

func TestInsertGetOverwrite(t *testing.T) {
	tr := New()
	tr.Insert(10, 100)
	tr.Insert(5, 50)
	tr.Insert(10, 101) // overwrite
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if v, ok := tr.Get(10); !ok || v != 101 {
		t.Errorf("Get(10) = %d,%v", v, ok)
	}
	if v, ok := tr.Get(5); !ok || v != 50 {
		t.Errorf("Get(5) = %d,%v", v, ok)
	}
	if _, ok := tr.Get(7); ok {
		t.Error("Get(7) found phantom key")
	}
}

func TestRandomizedInsertAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		tr := New()
		ref := make(map[int32]int32)
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			k := int32(rng.Intn(500))
			v := int32(rng.Intn(10000))
			tr.Insert(k, v)
			ref[k] = v
		}
		if msg := tr.CheckInvariants(); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, tr.Len(), len(ref))
		}
		for k, v := range ref {
			if got, ok := tr.Get(k); !ok || got != v {
				t.Fatalf("trial %d: Get(%d) = %d,%v want %d", trial, k, got, ok, v)
			}
		}
	}
}

func TestRangeScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New()
	ref := make(map[int32]int32)
	for i := 0; i < 3000; i++ {
		k := int32(rng.Intn(1000))
		tr.Insert(k, k*2)
		ref[k] = k * 2
	}
	var keys []int32
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for q := 0; q < 100; q++ {
		lo := int32(rng.Intn(1100)) - 50
		hi := lo + int32(rng.Intn(300))
		var want []int32
		for _, k := range keys {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		var got []int32
		tr.Range(lo, hi, func(k, v int32) bool {
			if v != k*2 {
				t.Fatalf("Range value wrong for key %d", k)
			}
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("Range[%d,%d]: %d keys, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Range order wrong at %d", i)
			}
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New()
	for i := int32(0); i < 100; i++ {
		tr.Insert(i, i)
	}
	count := 0
	completed := tr.Range(0, 99, func(int32, int32) bool {
		count++
		return count < 5
	})
	if completed || count != 5 {
		t.Errorf("early stop: completed=%v count=%d", completed, count)
	}
}

func TestFromSorted(t *testing.T) {
	var keys, values []int32
	for i := int32(1); i <= 5000; i++ {
		keys = append(keys, i*3)
		values = append(values, i)
	}
	tr := FromSorted(keys, values)
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, k := range keys {
		if v, ok := tr.Get(k); !ok || v != values[i] {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tr.Get(4); ok {
		t.Error("found key in gap")
	}
	// Range across gaps.
	count := 0
	tr.Range(7, 30, func(k, v int32) bool { count++; return true })
	if count != 8 { // 9,12,...,30
		t.Errorf("gap Range count = %d, want 8", count)
	}
	// Inserts after bulk load still work.
	tr.Insert(4, 999)
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if v, ok := tr.Get(4); !ok || v != 999 {
		t.Error("post-bulk insert lost")
	}
}

func TestFromSortedValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"length-mismatch": func() { FromSorted([]int32{1, 2}, []int32{1}) },
		"not-increasing":  func() { FromSorted([]int32{1, 1}, []int32{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
	empty := FromSorted(nil, nil)
	if empty.Len() != 0 {
		t.Error("empty FromSorted wrong")
	}
}

func TestMemoryBytes(t *testing.T) {
	tr := New()
	for i := int32(0); i < 1000; i++ {
		tr.Insert(i, i)
	}
	if tr.MemoryBytes() < 8000 {
		t.Errorf("MemoryBytes = %d, implausibly small", tr.MemoryBytes())
	}
}
