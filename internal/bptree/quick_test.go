package bptree

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickTreeEqualsMap: after arbitrary inserts, the tree agrees with
// a reference map on membership, values and invariants.
func TestQuickTreeEqualsMap(t *testing.T) {
	f := func(pairs []uint32) bool {
		tr := New()
		ref := make(map[int32]int32)
		for _, p := range pairs {
			k := int32(p & 0x3ff)
			v := int32(p >> 10)
			tr.Insert(k, v)
			ref[k] = v
		}
		if tr.CheckInvariants() != "" || tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := tr.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickRangeIsSortedAndComplete: Range yields exactly the reference
// keys in ascending order, for arbitrary bounds.
func TestQuickRangeIsSortedAndComplete(t *testing.T) {
	f := func(pairs []uint32, lo16, hi16 uint16) bool {
		tr := New()
		ref := make(map[int32]bool)
		for _, p := range pairs {
			k := int32(p & 0x3ff)
			tr.Insert(k, k)
			ref[k] = true
		}
		lo, hi := int32(lo16&0x3ff), int32(hi16&0x3ff)
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []int32
		for k := range ref {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int32
		tr.Range(lo, hi, func(k, _ int32) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
