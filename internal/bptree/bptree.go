// Package bptree implements an in-memory B+-tree over int32 keys with
// int32 values. The paper (§4.1) notes that SocReach's label intervals
// are "typical (relational) range queries over the post-order numbers of
// the network vertices" that can be evaluated with "a traditional
// B+-tree which indexes post(v)" — this package provides that index, and
// unlike the plain post-order array it supports gaps in the key domain,
// the prerequisite for accommodating vertex insertions (paper §8).
package bptree

import "sort"

// order is the fan-out: max keys per node.
const order = 32

// Tree is a B+-tree mapping int32 keys to int32 values. Keys are unique;
// Insert overwrites.
type Tree struct {
	root node
	size int
}

// node is either *leaf or *inner.
type node interface{}

type leaf struct {
	keys   []int32
	values []int32
	next   *leaf
}

type inner struct {
	keys     []int32 // len(children) - 1 separators
	children []node
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &leaf{}}
}

// FromSorted bulk-loads a tree from key-ascending pairs, which is how
// the labeling hands over its post-order array. It panics if keys are
// not strictly increasing.
func FromSorted(keys, values []int32) *Tree {
	if len(keys) != len(values) {
		panic("bptree: keys/values length mismatch")
	}
	t := New()
	if len(keys) == 0 {
		return t
	}
	// Pack leaves at ~3/4 fill.
	const fill = order * 3 / 4
	var leaves []*leaf
	for i := 0; i < len(keys); i += fill {
		end := i + fill
		if end > len(keys) {
			end = len(keys)
		}
		l := &leaf{
			keys:   append([]int32(nil), keys[i:end]...),
			values: append([]int32(nil), values[i:end]...),
		}
		for j := 1; j < len(l.keys); j++ {
			if l.keys[j] <= l.keys[j-1] {
				panic("bptree: FromSorted keys not strictly increasing")
			}
		}
		if i > 0 && keys[i] <= keys[i-1] {
			panic("bptree: FromSorted keys not strictly increasing")
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = l
		}
		leaves = append(leaves, l)
	}
	t.size = len(keys)
	// Build inner levels.
	level := make([]node, len(leaves))
	seps := make([]int32, 0, len(leaves))
	for i, l := range leaves {
		level[i] = l
		if i > 0 {
			seps = append(seps, l.keys[0])
		}
	}
	for len(level) > 1 {
		var nextLevel []node
		var nextSeps []int32
		for i := 0; i < len(level); i += fill {
			end := i + fill
			if end > len(level) {
				end = len(level)
			}
			in := &inner{
				children: append([]node(nil), level[i:end]...),
				keys:     append([]int32(nil), seps[i:end-1]...),
			}
			if i > 0 {
				nextSeps = append(nextSeps, seps[i-1])
			}
			nextLevel = append(nextLevel, in)
		}
		level, seps = nextLevel, nextSeps
	}
	t.root = level[0]
	return t
}

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return t.size }

// Get returns the value for key.
func (t *Tree) Get(key int32) (int32, bool) {
	l, i := t.seek(key)
	if i < len(l.keys) && l.keys[i] == key {
		return l.values[i], true
	}
	return 0, false
}

// seek returns the leaf that would hold key and the position of the
// first key >= key inside it.
func (t *Tree) seek(key int32) (*leaf, int) {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			i := sort.Search(len(v.keys), func(i int) bool { return v.keys[i] >= key })
			return v, i
		case *inner:
			i := sort.Search(len(v.keys), func(i int) bool { return v.keys[i] > key })
			n = v.children[i]
		}
	}
}

// Insert stores (key, value), overwriting any existing value.
func (t *Tree) Insert(key, value int32) {
	sep, right := t.insertAt(&t.size, t.root, key, value)
	if right != nil {
		t.root = &inner{keys: []int32{sep}, children: []node{t.root, right}}
	}
}

func (t *Tree) insertAt(size *int, n node, key, value int32) (int32, node) {
	switch v := n.(type) {
	case *leaf:
		i := sort.Search(len(v.keys), func(i int) bool { return v.keys[i] >= key })
		if i < len(v.keys) && v.keys[i] == key {
			v.values[i] = value
			return 0, nil
		}
		v.keys = append(v.keys, 0)
		v.values = append(v.values, 0)
		copy(v.keys[i+1:], v.keys[i:])
		copy(v.values[i+1:], v.values[i:])
		v.keys[i] = key
		v.values[i] = value
		*size++
		if len(v.keys) <= order {
			return 0, nil
		}
		mid := len(v.keys) / 2
		right := &leaf{
			keys:   append([]int32(nil), v.keys[mid:]...),
			values: append([]int32(nil), v.values[mid:]...),
			next:   v.next,
		}
		v.keys = v.keys[:mid]
		v.values = v.values[:mid]
		v.next = right
		return right.keys[0], right
	case *inner:
		i := sort.Search(len(v.keys), func(i int) bool { return v.keys[i] > key })
		sep, right := t.insertAt(size, v.children[i], key, value)
		if right == nil {
			return 0, nil
		}
		v.keys = append(v.keys, 0)
		copy(v.keys[i+1:], v.keys[i:])
		v.keys[i] = sep
		v.children = append(v.children, nil)
		copy(v.children[i+2:], v.children[i+1:])
		v.children[i+1] = right
		if len(v.children) <= order {
			return 0, nil
		}
		mid := len(v.keys) / 2
		sepUp := v.keys[mid]
		right2 := &inner{
			keys:     append([]int32(nil), v.keys[mid+1:]...),
			children: append([]node(nil), v.children[mid+1:]...),
		}
		v.keys = v.keys[:mid]
		v.children = v.children[:mid+1]
		return sepUp, right2
	}
	panic("bptree: unknown node type")
}

// Range calls fn for every pair with lo <= key <= hi, in key order. If
// fn returns false the scan stops and Range returns false.
func (t *Tree) Range(lo, hi int32, fn func(key, value int32) bool) bool {
	l, i := t.seek(lo)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if l.keys[i] > hi {
				return true
			}
			if !fn(l.keys[i], l.values[i]) {
				return false
			}
		}
		l = l.next
		i = 0
	}
	return true
}

// MemoryBytes returns the approximate footprint of the tree.
func (t *Tree) MemoryBytes() int64 {
	var total int64
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case *leaf:
			total += int64(4*(len(v.keys)+len(v.values))) + 8
		case *inner:
			total += int64(4*len(v.keys)+8*len(v.children)) + 8
			for _, c := range v.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return total
}

// CheckInvariants validates ordering and linkage; tests use it. It
// returns "" when the tree is well formed.
func (t *Tree) CheckInvariants() string {
	count := 0
	var prev *int32
	var firstLeaf *leaf
	var walk func(n node, lo, hi *int32) string
	walk = func(n node, lo, hi *int32) string {
		switch v := n.(type) {
		case *leaf:
			if firstLeaf == nil {
				firstLeaf = v
			}
			for _, k := range v.keys {
				if prev != nil && k <= *prev {
					return "keys not strictly increasing"
				}
				if lo != nil && k < *lo {
					return "key below subtree bound"
				}
				if hi != nil && k >= *hi {
					return "key above subtree bound"
				}
				kk := k
				prev = &kk
				count++
			}
		case *inner:
			if len(v.children) != len(v.keys)+1 {
				return "inner arity mismatch"
			}
			for i, c := range v.children {
				var l, h *int32
				if i > 0 {
					l = &v.keys[i-1]
				} else {
					l = lo
				}
				if i < len(v.keys) {
					h = &v.keys[i]
				} else {
					h = hi
				}
				if msg := walk(c, l, h); msg != "" {
					return msg
				}
			}
		}
		return ""
	}
	if msg := walk(t.root, nil, nil); msg != "" {
		return msg
	}
	if count != t.size {
		return "size mismatch"
	}
	// The leaf chain visits every key in order.
	chain := 0
	for l := firstLeaf; l != nil; l = l.next {
		chain += len(l.keys)
	}
	if firstLeaf != nil && chain != t.size {
		return "leaf chain incomplete"
	}
	return ""
}
