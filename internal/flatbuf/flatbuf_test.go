package flatbuf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unsafe"
)

// buildImage writes a small three-section image and returns its bytes
// in an aligned buffer ready for Open.
func buildImage(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	if err := AppendSlice(w, 0, 1, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := AppendSlice(w, 0, 2, []float64{0.5, -1.5}); err != nil {
		t.Fatal(err)
	}
	w.Append(1, 1, []byte{0xAA, 0xBB, 0xCC})
	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned %d, wrote %d", n, buf.Len())
	}
	data := AlignedBytes(buf.Len())
	copy(data, buf.Bytes())
	return data
}

func TestRoundTrip(t *testing.T) {
	data := buildImage(t)
	img, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.Size() != int64(len(data)) {
		t.Fatalf("Size %d, want %d", img.Size(), len(data))
	}
	if got := len(img.Sections()); got != 3 {
		t.Fatalf("%d sections, want 3", got)
	}

	sec, ok := img.Section(0, 1)
	if !ok {
		t.Fatal("section (0,1) missing")
	}
	ints, err := CastSlice[int32](sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != 3 || ints[0] != 1 || ints[2] != 3 {
		t.Fatalf("int32 section decoded as %v", ints)
	}

	sec, ok = img.Section(0, 2)
	if !ok {
		t.Fatal("section (0,2) missing")
	}
	floats, err := CastSlice[float64](sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(floats) != 2 || floats[0] != 0.5 || floats[1] != -1.5 {
		t.Fatalf("float64 section decoded as %v", floats)
	}

	sec, ok = img.Section(1, 1)
	if !ok {
		t.Fatal("section (1,1) missing")
	}
	if !bytes.Equal(sec, []byte{0xAA, 0xBB, 0xCC}) {
		t.Fatalf("raw section decoded as %x", sec)
	}

	if _, ok := img.Section(7, 7); ok {
		t.Fatal("lookup of absent section reported ok")
	}
}

// TestSectionAlignment pins the format invariants the zero-copy casts
// rely on: every section offset is a multiple of Align, the data region
// starts at the first aligned byte after the table, and the section
// lookup returns a capacity-capped alias into the image (no write past
// a section can reach its neighbor through append).
func TestSectionAlignment(t *testing.T) {
	data := buildImage(t)
	img, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range img.Sections() {
		if s.Off%Align != 0 {
			t.Errorf("section owner=%d kind=%d at offset %d, not %d-aligned", s.Owner, s.Kind, s.Off, Align)
		}
	}
	sec, _ := img.Section(0, 1)
	if cap(sec) != len(sec) {
		t.Fatalf("section alias has spare capacity %d beyond len %d", cap(sec), len(sec))
	}
}

// TestWriterDeterministic checks that the same append sequence yields
// byte-identical images — the property the save-path determinism tests
// build on.
func TestWriterDeterministic(t *testing.T) {
	a, b := buildImage(t), buildImage(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical writer runs produced different bytes")
	}
}

func TestWriterDuplicateSection(t *testing.T) {
	w := NewWriter()
	w.Append(0, 1, []byte{1})
	w.Append(0, 1, []byte{2})
	if _, err := w.WriteTo(&bytes.Buffer{}); !errors.Is(err, ErrFormat) {
		t.Fatalf("duplicate section: got %v, want ErrFormat", err)
	}
}

func TestWriterEmptyImage(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := AlignedBytes(buf.Len())
	copy(data, buf.Bytes())
	img, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Sections()) != 0 {
		t.Fatalf("empty image has %d sections", len(img.Sections()))
	}
}

// corrupt opens a mutated copy of a valid image and requires an
// ErrFormat error (and no panic).
func corrupt(t *testing.T, name string, mutate func([]byte) []byte) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		data := buildImage(t)
		mutated := mutate(append([]byte(nil), data...))
		aligned := AlignedBytes(len(mutated))
		copy(aligned, mutated)
		if _, err := Open(aligned); !errors.Is(err, ErrFormat) {
			t.Fatalf("got %v, want ErrFormat", err)
		}
	})
}

func TestOpenRejectsMalformed(t *testing.T) {
	corrupt(t, "short", func(b []byte) []byte { return b[:headerSize-1] })
	corrupt(t, "bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt(t, "bad-version", func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[4:], 3)
		return b
	})
	corrupt(t, "endian-mark", func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[6:], 0x0201)
		return b
	})
	corrupt(t, "huge-count", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], maxSections+1)
		return b
	})
	corrupt(t, "count-past-end", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], 1000)
		return b
	})
	corrupt(t, "table-offset", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], 128)
		return b
	})
	corrupt(t, "data-offset", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[24:], binary.LittleEndian.Uint64(b[24:])+Align)
		return b
	})
	corrupt(t, "file-size", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[32:], uint64(len(b))+1)
		return b
	})
	corrupt(t, "truncated", func(b []byte) []byte { return b[:len(b)-1] })
	corrupt(t, "section-misaligned", func(b []byte) []byte {
		off := binary.LittleEndian.Uint64(b[headerSize+8:])
		binary.LittleEndian.PutUint64(b[headerSize+8:], off+8)
		return b
	})
	corrupt(t, "section-out-of-bounds", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[headerSize+16:], uint64(len(b)))
		return b
	})
	corrupt(t, "section-len-overflow", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[headerSize+16:], ^uint64(0))
		return b
	})
	corrupt(t, "duplicate-entry", func(b []byte) []byte {
		// Make entry 1 a byte-identical copy of entry 0: same (owner,
		// kind) and same extent, caught by the duplicate check.
		copy(b[headerSize+entrySize:headerSize+2*entrySize], b[headerSize:headerSize+entrySize])
		return b
	})
	corrupt(t, "overlapping-sections", func(b []byte) []byte {
		// Point entry 1 at entry 0's extent but keep its distinct
		// (owner, kind), caught by the overlap check.
		copy(b[headerSize+entrySize+8:headerSize+2*entrySize], b[headerSize+8:headerSize+entrySize])
		return b
	})
}

// TestOpenEveryTruncation feeds Open every prefix of a valid image;
// each must fail with a wrapped ErrFormat, never panic.
func TestOpenEveryTruncation(t *testing.T) {
	data := buildImage(t)
	for n := 0; n < len(data); n++ {
		aligned := AlignedBytes(n)
		copy(aligned, data[:n])
		if _, err := Open(aligned); !errors.Is(err, ErrFormat) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrFormat", n, err)
		}
	}
}

func TestCastSliceUnalignedTail(t *testing.T) {
	b := AlignedBytes(12)
	if _, err := CastSlice[float64](b); !errors.Is(err, ErrFormat) {
		t.Fatalf("12 bytes as []float64: got %v, want ErrFormat (unaligned tail)", err)
	}
	if got, err := CastSlice[int32](b); err != nil || len(got) != 3 {
		t.Fatalf("12 bytes as []int32: got %v (len %d), want 3 elements", err, len(got))
	}
}

func TestCastSliceMisalignedBase(t *testing.T) {
	b := AlignedBytes(24)
	if _, err := CastSlice[uint64](b[4:20]); !errors.Is(err, ErrFormat) {
		t.Fatalf("4-aligned base as []uint64: got %v, want ErrFormat", err)
	}
}

func TestCastSliceEmpty(t *testing.T) {
	got, err := CastSlice[uint64](nil)
	if err != nil || got != nil {
		t.Fatalf("empty cast: got %v, %v", got, err)
	}
}

// TestBigEndianRefusal flips the host-order probe and checks that every
// zero-copy entry point degrades to a clean ErrBigEndian error instead
// of silently producing byte-swapped values.
func TestBigEndianRefusal(t *testing.T) {
	data := buildImage(t)
	hostLittleEndian = false
	defer func() { hostLittleEndian = true }()

	if LittleEndian() {
		t.Fatal("LittleEndian() ignored the probe override")
	}
	if _, err := Open(data); !errors.Is(err, ErrBigEndian) {
		t.Fatalf("Open: got %v, want ErrBigEndian", err)
	}
	if _, err := CastSlice[int32](data); !errors.Is(err, ErrBigEndian) {
		t.Fatalf("CastSlice: got %v, want ErrBigEndian", err)
	}
	w := NewWriter()
	if err := AppendSlice(w, 0, 1, []int32{1}); !errors.Is(err, ErrBigEndian) {
		t.Fatalf("AppendSlice: got %v, want ErrBigEndian", err)
	}
}

func TestAlignedBytes(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 4096} {
		b := AlignedBytes(n)
		if len(b) != n {
			t.Fatalf("AlignedBytes(%d) has len %d", n, len(b))
		}
		if n > 0 && uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
			t.Fatalf("AlignedBytes(%d) base not 8-aligned", n)
		}
	}
}

func TestReadImage(t *testing.T) {
	data := buildImage(t)
	img, err := ReadImage(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sec, ok := img.Section(0, 1)
	if !ok {
		t.Fatal("section (0,1) missing after ReadImage")
	}
	if _, err := CastSlice[int32](sec); err != nil {
		t.Fatalf("cast over ReadImage buffer: %v", err)
	}
	if _, err := ReadImage(strings.NewReader("not an image")); !errors.Is(err, ErrFormat) {
		t.Fatalf("garbage stream: got %v, want ErrFormat", err)
	}
}

func TestMapFile(t *testing.T) {
	data := buildImage(t)
	path := filepath.Join(t.TempDir(), "img.idx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != int64(len(data)) {
		t.Fatalf("mapping size %d, want %d", m.Size(), len(data))
	}
	if !bytes.Equal(m.Data(), data) {
		t.Fatal("mapped bytes differ from file bytes")
	}
	if _, err := Open(m.Data()); err != nil {
		t.Fatalf("opening mapped bytes: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v (want idempotent nil)", err)
	}
	if m.Data() != nil {
		t.Fatal("Data() non-nil after Close")
	}
}

func TestMapFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := MapFile(filepath.Join(dir, "absent.idx")); err == nil {
		t.Fatal("mapping a missing file succeeded")
	}
	empty := filepath.Join(dir, "empty.idx")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFile(empty); !errors.Is(err, ErrFormat) {
		t.Fatalf("mapping an empty file: got %v, want ErrFormat", err)
	}
}
