// Package flatbuf implements the container layer of the flat index
// format v2: a single relocatable image holding a magic/version header,
// a section table and 64-byte-aligned payload sections. The layout is
// position-independent — every section is addressed by (owner, kind)
// through the table, never by absolute pointer — so the same bytes can
// be decoded from a stream into an anonymous buffer or mmap'd and
// overlaid in place with zero copies.
//
// Image layout (all integers little-endian):
//
//	offset  size  field
//	     0     4  magic "RRX2"
//	     4     2  version (currently 2)
//	     6     2  endian mark 0x0102 (bytes 02 01 on disk)
//	     8     4  section count
//	    12     4  reserved (zero)
//	    16     8  table offset (always 64)
//	    24     8  data offset (first 64-aligned byte after the table)
//	    32     8  file size
//	    40    24  reserved (zero)
//	    64   32×n section table: {owner u32, kind u32, off u64, len u64,
//	              reserved u64}
//	     …        sections, each starting at a 64-byte-aligned offset,
//	              zero-padded up to the next section
//
// Alignment rules: section offsets are multiples of 64 (a cache line),
// so any element type up to 8 bytes overlays a section without copying
// as long as the image base itself is at least 8-aligned — which both
// mmap (page-aligned) and AlignedBytes (uint64-backed) guarantee.
// Multi-byte values are stored in little-endian host order; the zero-
// copy casts refuse to run on a big-endian host (see CastSlice), where
// callers must fall back to the portable v1 stream format.
package flatbuf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"unsafe"
)

// Magic identifies a format-v2 image.
var Magic = [4]byte{'R', 'R', 'X', '2'}

const (
	// Version is the image layout version.
	Version = 2
	// Align is the section alignment: one cache line.
	Align = 64
	// headerSize is the fixed header length.
	headerSize = 64
	// entrySize is one section-table entry.
	entrySize = 32
	// endianMark reads back as 0x0102 only when the image was written
	// and is being read in little-endian order.
	endianMark = 0x0102
	// maxSections bounds the table so a corrupt count cannot drive a
	// huge allocation or scan. Real images hold a few dozen sections.
	maxSections = 1 << 16
)

// ErrFormat is wrapped by every error reporting a malformed image:
// bad magic, impossible table geometry, misaligned or out-of-bounds
// sections, element-size mismatches. errors.Is(err, ErrFormat) lets
// callers distinguish corruption from I/O failures.
var ErrFormat = errors.New("invalid flat image")

// ErrBigEndian is wrapped by errors reporting that the zero-copy paths
// are unavailable on this host: the on-disk order is little-endian and
// the overlay casts never byte-swap. Callers fall back to the portable
// v1 stream format.
var ErrBigEndian = errors.New("flat images require a little-endian host")

// hostLittleEndian caches the byte order probe. It is a variable, not a
// constant, so tests can flip it to exercise the big-endian error paths
// on little-endian CI hosts.
var hostLittleEndian = func() bool {
	var probe uint16 = 0x0102
	return *(*byte)(unsafe.Pointer(&probe)) == 0x02
}()

// align64 rounds n up to the next multiple of Align.
func align64(n uint64) uint64 { return (n + Align - 1) &^ (Align - 1) }

// LittleEndian reports whether this host can produce and consume flat
// images. Callers on the (vanishingly rare) big-endian ports fall back
// to the streaming v1 format.
func LittleEndian() bool { return hostLittleEndian }

// Writer accumulates sections and emits the image. Sections appear in
// the table and in the payload in append order, so a fixed emission
// order on the caller's side yields byte-identical images.
type Writer struct {
	sections []writerSection
}

type writerSection struct {
	owner, kind uint32
	payload     []byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Append adds a raw section. The payload is referenced, not copied; the
// caller must keep it unchanged until WriteTo returns. Duplicate
// (owner, kind) pairs are a programming error and surface in WriteTo.
func (w *Writer) Append(owner, kind uint32, payload []byte) {
	w.sections = append(w.sections, writerSection{owner: owner, kind: kind, payload: payload})
}

// AppendSlice adds a section whose payload is the in-memory image of a
// flat element slice (int32, uint64, float64, or any pointer-free
// fixed-size struct of those). On a big-endian host it returns an error
// wrapping ErrBigEndian instead of writing native-order bytes that a
// little-endian reader would misinterpret.
func AppendSlice[T any](w *Writer, owner, kind uint32, v []T) error {
	b, err := bytesOf(v)
	if err != nil {
		return err
	}
	w.Append(owner, kind, b)
	return nil
}

// bytesOf reinterprets a flat element slice as its backing bytes.
func bytesOf[T any](v []T) ([]byte, error) {
	if !hostLittleEndian {
		return nil, fmt.Errorf("flatbuf: %w", ErrBigEndian)
	}
	if len(v) == 0 {
		return nil, nil
	}
	size := int(unsafe.Sizeof(v[0]))
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*size), nil
}

// WriteTo emits the complete image. It implements io.WriterTo.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	if len(w.sections) > maxSections {
		return 0, fmt.Errorf("flatbuf: %w: %d sections exceed the %d cap",
			ErrFormat, len(w.sections), maxSections)
	}
	seen := make(map[uint64]bool, len(w.sections))
	for _, s := range w.sections {
		key := uint64(s.owner)<<32 | uint64(s.kind)
		if seen[key] {
			return 0, fmt.Errorf("flatbuf: %w: duplicate section owner=%d kind=%d",
				ErrFormat, s.owner, s.kind)
		}
		seen[key] = true
	}

	dataOff := align64(headerSize + entrySize*uint64(len(w.sections)))
	offsets := make([]uint64, len(w.sections))
	cur := dataOff
	for i, s := range w.sections {
		offsets[i] = cur
		cur = align64(cur + uint64(len(s.payload)))
	}
	fileSize := cur

	header := make([]byte, headerSize)
	copy(header, Magic[:])
	binary.LittleEndian.PutUint16(header[4:], Version)
	binary.LittleEndian.PutUint16(header[6:], endianMark)
	binary.LittleEndian.PutUint32(header[8:], uint32(len(w.sections)))
	binary.LittleEndian.PutUint64(header[16:], headerSize)
	binary.LittleEndian.PutUint64(header[24:], dataOff)
	binary.LittleEndian.PutUint64(header[32:], fileSize)

	var written int64
	emit := func(b []byte) error {
		n, err := out.Write(b)
		written += int64(n)
		return err
	}
	if err := emit(header); err != nil {
		return written, err
	}
	entry := make([]byte, entrySize)
	for i, s := range w.sections {
		binary.LittleEndian.PutUint32(entry[0:], s.owner)
		binary.LittleEndian.PutUint32(entry[4:], s.kind)
		binary.LittleEndian.PutUint64(entry[8:], offsets[i])
		binary.LittleEndian.PutUint64(entry[16:], uint64(len(s.payload)))
		binary.LittleEndian.PutUint64(entry[24:], 0)
		if err := emit(entry); err != nil {
			return written, err
		}
	}
	var pad [Align]byte
	if gap := dataOff - (headerSize + entrySize*uint64(len(w.sections))); gap > 0 {
		if err := emit(pad[:gap]); err != nil {
			return written, err
		}
	}
	for i, s := range w.sections {
		if err := emit(s.payload); err != nil {
			return written, err
		}
		end := offsets[i] + uint64(len(s.payload))
		if gap := align64(end) - end; gap > 0 {
			if err := emit(pad[:gap]); err != nil {
				return written, err
			}
		}
	}
	if written != int64(fileSize) {
		return written, fmt.Errorf("flatbuf: wrote %d bytes, layout computed %d", written, fileSize)
	}
	return written, nil
}

// Section is one table entry of an opened image.
type Section struct {
	Owner, Kind uint32
	Off, Len    uint64
}

// Image is a validated flat image over a byte buffer — an anonymous
// decode buffer or a live mmap. The Image never copies section bytes;
// its lifetime is bounded by the buffer's.
type Image struct {
	data     []byte
	sections []Section // sorted by (owner, kind) for lookup
}

// Open validates the header and section table of data and returns the
// image. Every structural property a later Section call relies on is
// checked here: magic, version, endian mark, table bounds, per-section
// 64-alignment, in-bounds extents, and pairwise disjointness. data must
// be at least 8-aligned for the typed casts to succeed later (mmap and
// AlignedBytes both guarantee it).
func Open(data []byte) (*Image, error) {
	if !hostLittleEndian {
		return nil, fmt.Errorf("flatbuf: %w", ErrBigEndian)
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("flatbuf: %w: %d bytes is shorter than the %d-byte header",
			ErrFormat, len(data), headerSize)
	}
	if [4]byte(data[:4]) != Magic {
		return nil, fmt.Errorf("flatbuf: %w: bad magic %q", ErrFormat, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("flatbuf: %w: unsupported version %d", ErrFormat, v)
	}
	if m := binary.LittleEndian.Uint16(data[6:]); m != endianMark {
		return nil, fmt.Errorf("flatbuf: %w: endian mark %#06x (big-endian writer?)", ErrFormat, m)
	}
	count := binary.LittleEndian.Uint32(data[8:])
	tableOff := binary.LittleEndian.Uint64(data[16:])
	dataOff := binary.LittleEndian.Uint64(data[24:])
	fileSize := binary.LittleEndian.Uint64(data[32:])
	if count > maxSections {
		return nil, fmt.Errorf("flatbuf: %w: implausible section count %d", ErrFormat, count)
	}
	if tableOff != headerSize {
		return nil, fmt.Errorf("flatbuf: %w: table offset %d, want %d", ErrFormat, tableOff, headerSize)
	}
	tableEnd := uint64(headerSize) + entrySize*uint64(count)
	if dataOff != align64(tableEnd) {
		return nil, fmt.Errorf("flatbuf: %w: data offset %d, want %d", ErrFormat, dataOff, align64(tableEnd))
	}
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("flatbuf: %w: header says %d bytes, image holds %d",
			ErrFormat, fileSize, len(data))
	}
	if dataOff > fileSize {
		return nil, fmt.Errorf("flatbuf: %w: data offset %d past end %d", ErrFormat, dataOff, fileSize)
	}

	img := &Image{data: data, sections: make([]Section, count)}
	for i := range img.sections {
		e := data[headerSize+uint64(i)*entrySize:]
		s := Section{
			Owner: binary.LittleEndian.Uint32(e[0:]),
			Kind:  binary.LittleEndian.Uint32(e[4:]),
			Off:   binary.LittleEndian.Uint64(e[8:]),
			Len:   binary.LittleEndian.Uint64(e[16:]),
		}
		if s.Off%Align != 0 {
			return nil, fmt.Errorf("flatbuf: %w: section owner=%d kind=%d offset %d not %d-aligned",
				ErrFormat, s.Owner, s.Kind, s.Off, Align)
		}
		if s.Off < dataOff || s.Len > math.MaxUint64-s.Off || s.Off+s.Len > fileSize {
			return nil, fmt.Errorf("flatbuf: %w: section owner=%d kind=%d [%d,%d) out of bounds [%d,%d)",
				ErrFormat, s.Owner, s.Kind, s.Off, s.Off+s.Len, dataOff, fileSize)
		}
		img.sections[i] = s
	}
	// Disjointness and lookup order in one sort. Equal (owner, kind)
	// pairs are rejected; overlapping extents are rejected regardless of
	// identity so no two typed overlays ever alias each other.
	sort.Slice(img.sections, func(i, j int) bool {
		a, b := img.sections[i], img.sections[j]
		if a.Owner != b.Owner {
			return a.Owner < b.Owner
		}
		return a.Kind < b.Kind
	})
	for i := 1; i < len(img.sections); i++ {
		a, b := img.sections[i-1], img.sections[i]
		if a.Owner == b.Owner && a.Kind == b.Kind {
			return nil, fmt.Errorf("flatbuf: %w: duplicate section owner=%d kind=%d",
				ErrFormat, a.Owner, a.Kind)
		}
	}
	byOff := append([]Section(nil), img.sections...)
	sort.Slice(byOff, func(i, j int) bool { return byOff[i].Off < byOff[j].Off })
	for i := 1; i < len(byOff); i++ {
		if byOff[i-1].Off+byOff[i-1].Len > byOff[i].Off {
			return nil, fmt.Errorf("flatbuf: %w: sections owner=%d kind=%d and owner=%d kind=%d overlap",
				ErrFormat, byOff[i-1].Owner, byOff[i-1].Kind, byOff[i].Owner, byOff[i].Kind)
		}
	}
	return img, nil
}

// Section returns the payload bytes of the (owner, kind) section and
// whether it exists. The returned slice aliases the image buffer.
func (img *Image) Section(owner, kind uint32) ([]byte, bool) {
	i := sort.Search(len(img.sections), func(i int) bool {
		s := img.sections[i]
		if s.Owner != owner {
			return s.Owner > owner
		}
		return s.Kind >= kind
	})
	if i < len(img.sections) && img.sections[i].Owner == owner && img.sections[i].Kind == kind {
		s := img.sections[i]
		return img.data[s.Off : s.Off+s.Len : s.Off+s.Len], true
	}
	return nil, false
}

// Sections returns the validated table entries in (owner, kind) order.
func (img *Image) Sections() []Section { return img.sections }

// Size returns the total image size in bytes.
func (img *Image) Size() int64 { return int64(len(img.data)) }

// CastSlice overlays a typed slice onto section bytes without copying.
// T must be a pointer-free fixed-size type whose in-memory layout is
// its on-disk layout (int32, uint64, float64, intervals.Interval, …).
// It fails when the length is not a whole number of elements (the
// "unaligned tail" of a truncated or bit-flipped table), when the base
// address is not element-aligned, or on a big-endian host.
func CastSlice[T any](b []byte) ([]T, error) {
	if !hostLittleEndian {
		return nil, fmt.Errorf("flatbuf: %w", ErrBigEndian)
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	if size == 0 {
		return nil, fmt.Errorf("flatbuf: %w: zero-size element type", ErrFormat)
	}
	if len(b)%size != 0 {
		return nil, fmt.Errorf("flatbuf: %w: %d-byte section is not a multiple of the %d-byte element",
			ErrFormat, len(b), size)
	}
	n := len(b) / size
	if n == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&b[0])
	if a := unsafe.Alignof(zero); uintptr(p)%a != 0 {
		return nil, fmt.Errorf("flatbuf: %w: section base not %d-aligned for element type",
			ErrFormat, a)
	}
	return unsafe.Slice((*T)(p), n), nil
}

// AlignedBytes returns an n-byte buffer whose base address is 8-aligned
// (it is backed by a []uint64), so a streamed image copied into it
// supports the same typed overlays as an mmap.
func AlignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	backing := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), n)
}

// ReadImage slurps a streamed image into an aligned buffer and opens
// it. This is the portable decode path: one buffer allocation and one
// copy regardless of how many structures the image holds.
func ReadImage(r io.Reader) (*Image, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("flatbuf: reading image: %w", err)
	}
	data := AlignedBytes(len(raw))
	copy(data, raw)
	return Open(data)
}
