package flatbuf

// Mapping is a read-only view of an image file: an mmap on unix hosts,
// an aligned in-memory copy elsewhere (see MapFile in the per-platform
// files). It implements io.Closer.
type Mapping struct {
	data   []byte
	mapped bool
	closed bool
}

// Data returns the mapped bytes. After Close the slice must not be
// touched — on a real mmap the pages are gone.
func (m *Mapping) Data() []byte { return m.data }

// Size returns the mapping length in bytes.
func (m *Mapping) Size() int64 { return int64(len(m.data)) }

// Mapped reports whether the bytes are a true memory map rather than a
// heap copy.
func (m *Mapping) Mapped() bool { return m.mapped }

// Close releases the mapping. It is idempotent.
func (m *Mapping) Close() error {
	if m.closed || m.data == nil {
		return nil
	}
	m.closed = true
	var err error
	if m.mapped {
		err = m.release()
	}
	m.data = nil
	return err
}
