//go:build !unix

package flatbuf

import (
	"fmt"
	"os"
)

// MapFile on platforms without a usable mmap falls back to reading the
// whole file into an aligned buffer. The Mapping API is identical;
// Mapped() reports false so callers can surface the degradation.
func MapFile(path string) (*Mapping, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flatbuf: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("flatbuf: %w: %s is empty", ErrFormat, path)
	}
	data := AlignedBytes(len(raw))
	copy(data, raw)
	return &Mapping{data: data, mapped: false}, nil
}

func (m *Mapping) release() error { return nil }
