//go:build unix

package flatbuf

import (
	"fmt"
	"os"
	"syscall"
)

// MapFile maps the named file read-only and returns the mapping. The
// returned bytes are served straight from page cache: opening a
// multi-gigabyte index touches no pages until queries do. Close
// releases the mapping; every slice overlaid on it dies with it.
func MapFile(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flatbuf: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("flatbuf: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("flatbuf: %w: %s is empty", ErrFormat, path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("flatbuf: %s: %d bytes exceed the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("flatbuf: mmap %s: %w", path, err)
	}
	return &Mapping{data: data, mapped: true}, nil
}

func (m *Mapping) release() error {
	return syscall.Munmap(m.data)
}
