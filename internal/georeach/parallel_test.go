package georeach

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// TestParallelBuildIdentical asserts that level-parallel SPA-Graph
// classification serializes byte-identically to the sequential build.
func TestParallelBuildIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		net := randomNetwork(rng, 40+rng.Intn(120), 20+rng.Intn(60))
		prep := dataset.Prepare(net)
		seq := Build(prep, Params{Parallelism: 1})
		for _, par := range []int{2, 8} {
			got := Build(prep, Params{Parallelism: par})
			var a, b bytes.Buffer
			if _, err := seq.WriteTo(&a); err != nil {
				t.Fatal(err)
			}
			if _, err := got.WriteTo(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("trial %d par %d: serialized SPA-Graphs differ", trial, par)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d par %d: parallel build fails validation: %v", trial, par, err)
			}
		}
	}
}
