package georeach

import (
	"fmt"
	"slices"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/grid"
)

// Flat-format codec: the SPA-Graph as four structure-of-arrays columns.
//
//	flags    [2n]u8          — per vertex {kind, geoB}, interleaved
//	rmbr     [4n]f64         — per vertex MinX, MinY, MaxX, MaxY
//	gridOff  [n+1]u64        — G-vertex v's keys are gridKeys[off[v]:off[v+1]]
//	gridKeys [Σ]u64          — sorted cell keys, concatenated by vertex
//
// Keys are sorted per vertex so the columns are canonical (identical
// SPA-Graphs serialize to identical bytes). Unlike the other engines
// the query structure itself is a hash set per G-vertex, so FromFlat
// rehydrates grid.CellSet maps — the one documented exception to the
// O(1)-allocation mapped load (see DESIGN.md §17).

// FlatColumns returns the SPA-Graph as flat columns. gridOff has
// NumVertices()+1 entries; non-G vertices have empty key runs.
func (idx *Index) FlatColumns() (flags []uint8, rmbr []float64, gridOff []uint64, gridKeys []uint64) {
	n := len(idx.kind)
	flags = make([]uint8, 0, 2*n)
	rmbr = make([]float64, 0, 4*n)
	gridOff = make([]uint64, n+1)
	for v := 0; v < n; v++ {
		geoB := uint8(0)
		if idx.geoB[v] {
			geoB = 1
		}
		flags = append(flags, uint8(idx.kind[v]), geoB)
		r := idx.rmbr[v]
		rmbr = append(rmbr, r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
		gridOff[v] = uint64(len(gridKeys))
		if idx.kind[v] != GVertex {
			continue
		}
		cells := idx.grids[v]
		start := len(gridKeys)
		for key := range cells {
			gridKeys = append(gridKeys, key)
		}
		slices.Sort(gridKeys[start:])
	}
	gridOff[n] = uint64(len(gridKeys))
	return flags, rmbr, gridOff, gridKeys
}

// FlatMeta carries the SPA-Graph's scalar shape through a manifest.
type FlatMeta struct {
	Levels int
	Space  geom.Rect
}

// FlatMeta returns the manifest scalars of idx.
func (idx *Index) FlatMeta() FlatMeta {
	return FlatMeta{Levels: idx.h.Levels(), Space: idx.h.Space()}
}

// FromFlat assembles a SPA-Graph from persisted flat columns and
// attaches it to prep, applying the same validation as Read: vertex
// count against the network, plausible level count, kinds within range,
// offsets tiling the key array. Cell sets are rebuilt as maps.
func FromFlat(prep *dataset.Prepared, meta FlatMeta, flags []uint8, rmbr []float64, gridOff []uint64, gridKeys []uint64) (*Index, error) {
	n := prep.NumComponents()
	if len(flags) != 2*n {
		return nil, fmt.Errorf("georeach: %d flag bytes for %d components", len(flags), n)
	}
	if len(rmbr) != 4*n {
		return nil, fmt.Errorf("georeach: %d rmbr values for %d components", len(rmbr), n)
	}
	if len(gridOff) != n+1 {
		return nil, fmt.Errorf("georeach: %d grid offsets for %d components", len(gridOff), n)
	}
	if meta.Levels < 1 || meta.Levels > 20 {
		return nil, fmt.Errorf("georeach: implausible level count %d", meta.Levels)
	}
	if n > 0 && gridOff[0] != 0 {
		return nil, fmt.Errorf("georeach: grid offsets start at %d, not 0", gridOff[0])
	}
	if gridOff[n] != uint64(len(gridKeys)) {
		return nil, fmt.Errorf("georeach: grid offsets end at %d, keys hold %d", gridOff[n], len(gridKeys))
	}
	idx := &Index{
		prep:  prep,
		h:     grid.NewHierarchy(meta.Space, meta.Levels),
		kind:  make([]Kind, n),
		geoB:  make([]bool, n),
		rmbr:  make([]geom.Rect, n),
		grids: make([]grid.CellSet, n),
	}
	for v := 0; v < n; v++ {
		if flags[2*v] > uint8(BVertex) {
			return nil, fmt.Errorf("georeach: corrupt kind %d", flags[2*v])
		}
		idx.kind[v] = Kind(flags[2*v])
		idx.geoB[v] = flags[2*v+1] != 0
		idx.rmbr[v] = geom.Rect{
			Min: geom.Pt(rmbr[4*v], rmbr[4*v+1]),
			Max: geom.Pt(rmbr[4*v+2], rmbr[4*v+3]),
		}
		lo, hi := gridOff[v], gridOff[v+1]
		if lo > hi || hi > uint64(len(gridKeys)) {
			return nil, fmt.Errorf("georeach: grid offsets not monotonic at vertex %d", v)
		}
		if hi-lo > 1<<24 {
			return nil, fmt.Errorf("georeach: implausible grid size %d", hi-lo)
		}
		if idx.kind[v] != GVertex {
			if lo != hi {
				return nil, fmt.Errorf("georeach: non-G vertex %d has %d grid keys", v, hi-lo)
			}
			continue
		}
		cells := make(grid.CellSet, hi-lo)
		for _, key := range gridKeys[lo:hi] {
			cells[key] = struct{}{}
		}
		idx.grids[v] = cells
	}
	return idx, nil
}
