// Package georeach re-implements the GeoReach method of Sarwat and Sun —
// the state-of-the-art baseline the paper compares against (§2.2.2).
//
// GeoReach augments the vertices of the geosocial network with partially
// materialized spatial reachability information, the SPA-Graph. Every
// vertex is classified as one of:
//
//   - G-vertex: stores ReachGrid(v), the set of hierarchical grid cells
//     containing all spatial vertices reachable from v;
//   - R-vertex: stores RMBR(v), the minimum bounding rectangle of the
//     reachable spatial vertices (used when the ReachGrid would exceed
//     MAX_REACH_GRIDS cells);
//   - B-vertex: stores only the spatial reachability bit GeoB(v) (used
//     when the RMBR would exceed MAX_RMBR of the space).
//
// Queries traverse the SPA-Graph breadth-first from the query vertex,
// pruning with the per-class rules and terminating early when a grid
// cell or RMBR is fully contained in the query region.
//
// The index is built on the SCC-condensed DAG (reachability is invariant
// under condensation); spatial vertices inside an SCC contribute their
// individual points, i.e. GeoReach "always operates under a non-MBR
// principle, by design" (paper §6.2).
package georeach

import (
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/grid"
	"repro/internal/pool"
	"repro/internal/trace"
)

// Kind is the SPA-Graph vertex class.
type Kind uint8

const (
	// GVertex carries a ReachGrid.
	GVertex Kind = iota
	// RVertex carries an RMBR.
	RVertex
	// BVertex carries only GeoB.
	BVertex
)

// Params are the three SPA-Graph construction parameters of §2.2.2.
type Params struct {
	// MaxRMBRFraction is MAX_RMBR as a fraction of the space area: an
	// RMBR larger than this downgrades its vertex to a B-vertex.
	// Default 0.8, the value of the paper's Example 2.5.
	MaxRMBRFraction float64
	// MaxReachGrids is MAX_REACH_GRIDS, the maximum ReachGrid
	// cardinality before downgrading to an R-vertex. Default 64.
	MaxReachGrids int
	// MergeCount is MERGE_COUNT: more than this many sibling quad-cells
	// in a ReachGrid are merged into their parent cell. Default 3.
	MergeCount int
	// Levels is the number of grid levels (default 8, i.e. a 128×128
	// finest partitioning).
	Levels int
	// Parallelism bounds the workers of the SPA-Graph classification:
	// 0 or 1 keeps the sequential path, n > 1 classifies each
	// topological level with up to n workers. The per-vertex
	// computation — cell covering, grid unions, MBR unions, the
	// downgrade cascade — is exactly the sequential one over the same
	// finished successor state, so classification (and the serialized
	// SPA-Graph) is identical at any worker count.
	Parallelism int
}

func (p Params) withDefaults() Params {
	if p.MaxRMBRFraction <= 0 {
		p.MaxRMBRFraction = 0.8
	}
	if p.MaxReachGrids <= 0 {
		p.MaxReachGrids = 64
	}
	if p.MergeCount <= 0 {
		p.MergeCount = 3
	}
	if p.Levels <= 0 {
		p.Levels = 8
	}
	return p
}

// Index is the SPA-Graph of a prepared geosocial network.
type Index struct {
	prep *dataset.Prepared
	h    *grid.Hierarchy

	kind  []Kind
	geoB  []bool         // all kinds: true iff the vertex reaches a spatial vertex
	rmbr  []geom.Rect    // R-vertices
	grids []grid.CellSet // G-vertices
}

// Build constructs the SPA-Graph for the prepared network.
func Build(prep *dataset.Prepared, params Params) *Index {
	params = params.withDefaults()
	space := prep.Net.Space()
	h := grid.NewHierarchy(space, params.Levels)
	n := prep.NumComponents()
	idx := &Index{
		prep:  prep,
		h:     h,
		kind:  make([]Kind, n),
		geoB:  make([]bool, n),
		rmbr:  make([]geom.Rect, n),
		grids: make([]grid.CellSet, n),
	}
	maxArea := params.MaxRMBRFraction * space.Area()

	// classify computes v's class from its own members and its
	// successors' finished state, writing only v's slots. Children
	// before parents: classification is monotone (G ≥ R ≥ B in
	// information), and a vertex can never hold finer information than
	// its least-informative successor with spatial reach.
	classify := func(v int) {
		kind := GVertex
		cells := make(grid.CellSet)
		mbr := geom.EmptyRect()
		reaches := false

		// Own spatial members (replicated geometries of the SCC).
		for _, m := range prep.SpatialMembers[v] {
			g := prep.GeometryOf(m)
			h.CoverRect(g, 0, cells.Add)
			mbr = mbr.Union(g)
			reaches = true
		}
		for _, u := range prep.DAG.Out(v) {
			if !idx.geoB[u] {
				continue // successor reaches nothing spatial
			}
			reaches = true
			switch idx.kind[u] {
			case GVertex:
				if kind == GVertex {
					cells.UnionWith(idx.grids[u])
				}
				mbr = mbr.Union(idx.rmbr[u])
			case RVertex:
				if kind == GVertex {
					kind = RVertex
				}
				mbr = mbr.Union(idx.rmbr[u])
			case BVertex:
				kind = BVertex
			}
		}

		idx.geoB[v] = reaches
		if !reaches {
			idx.kind[v] = BVertex
			return
		}
		if kind == GVertex {
			cells.Merge(h, params.MergeCount)
			if cells.Len() > params.MaxReachGrids {
				kind = RVertex
			} else {
				idx.kind[v] = GVertex
				idx.grids[v] = cells
				idx.rmbr[v] = mbr // kept for child classification only
				return
			}
		}
		if kind == RVertex {
			if mbr.Area() > maxArea {
				kind = BVertex
			} else {
				idx.kind[v] = RVertex
				idx.rmbr[v] = mbr
				return
			}
		}
		idx.kind[v] = BVertex
		idx.rmbr[v] = mbr // kept for child classification only
	}

	if p := pool.New(max(params.Parallelism, 1)); !p.Sequential() {
		// Level-synchronous classification: vertices of one topological
		// height share no edges, so each reads its successors' finished
		// state from strictly lower levels and writes only its own.
		levels := graph.LevelsFromSinks(prep.DAG)
		if levels == nil {
			panic("georeach: condensed graph is not a DAG")
		}
		p.Levels(levels, func(v int32) { classify(int(v)) })
		return idx
	}

	topo, ok := prep.DAG.TopoOrder()
	if !ok {
		panic("georeach: condensed graph is not a DAG")
	}
	for i := len(topo) - 1; i >= 0; i-- {
		classify(int(topo[i]))
	}
	return idx
}

// RangeReach answers RangeReach(G, v, R) for the original vertex v by
// traversing the SPA-Graph breadth-first with the §2.2.2 pruning rules.
func (idx *Index) RangeReach(v int, r geom.Rect) bool {
	return idx.RangeReachTraced(v, r, nil)
}

// RangeReachTraced is RangeReach with instrumentation: every dequeued
// SPA-Graph vertex counts as a graph visit, every exact geometry test
// as a member verification, and the whole BFS is the traverse stage.
func (idx *Index) RangeReachTraced(v int, r geom.Rect, sp *trace.Span) bool {
	t := sp.Start()
	defer sp.End(trace.StageTraverse, t)
	prep := idx.prep
	start := int(prep.CompOf(v))
	if !idx.geoB[start] {
		return false
	}
	n := prep.NumComponents()
	visited := make([]bool, n)
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(start))
	visited[start] = true

	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		sp.IncGraphVisited()

		expand := false
		switch idx.kind[u] {
		case BVertex:
			if !idx.geoB[u] {
				continue // prune: reaches nothing spatial
			}
			expand = true
		case RVertex:
			if !idx.rmbr[u].Intersects(r) {
				continue // prune: no reachable point can be in R
			}
			if r.ContainsRect(idx.rmbr[u]) {
				return true // every reachable point is in R; RMBR non-empty
			}
			expand = true
		case GVertex:
			intersects, contained := idx.grids[u].IntersectsRect(idx.h, r)
			if contained {
				return true // a non-empty cell lies fully inside R
			}
			if !intersects {
				continue
			}
			expand = true
		}

		// Partial overlap: test the vertex's own spatial members exactly.
		for _, m := range prep.SpatialMembers[u] {
			sp.IncMember()
			if prep.Witness(m, r) {
				return true
			}
		}
		if expand {
			for _, w := range prep.DAG.Out(u) {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return false
}

// KindOf returns the SPA-Graph class of component c (tests and stats).
func (idx *Index) KindOf(c int) Kind { return idx.kind[c] }

// CountKinds returns how many components fall in each class.
func (idx *Index) CountKinds() (g, r, b int) {
	for _, k := range idx.kind {
		switch k {
		case GVertex:
			g++
		case RVertex:
			r++
		default:
			b++
		}
	}
	return g, r, b
}

// MemoryBytes returns the SPA-Graph footprint: one class byte and GeoB
// bit per vertex, 32 bytes per stored RMBR and 8 bytes per ReachGrid
// cell (Table 4 accounting). RMBRs retained only for construction of
// parents are not counted for G/B vertices, matching what GeoReach
// materializes.
func (idx *Index) MemoryBytes() int64 {
	total := int64(2 * len(idx.kind))
	for v, k := range idx.kind {
		switch k {
		case RVertex:
			total += 32
		case GVertex:
			total += idx.grids[v].MemoryBytes()
		}
	}
	return total
}
