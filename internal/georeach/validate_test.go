package georeach

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
)

func wantValidateErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("want error containing %q, got: %v", substr, err)
	}
}

func TestValidateRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		net := randomNetwork(rng, 2+rng.Intn(25), 1+rng.Intn(20))
		prep := dataset.Prepare(net)
		params := []Params{
			{},
			{MaxReachGrids: 1, MergeCount: 1, Levels: 3},
			{MaxRMBRFraction: 0.01, MaxReachGrids: 2, Levels: 5},
		}
		idx := Build(prep, params[trial%len(params)])
		if err := idx.Validate(); err != nil {
			t.Fatalf("trial %d: fresh SPA-Graph rejected: %v", trial, err)
		}
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Read(prep, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := loaded.Validate(); err != nil {
			t.Fatalf("trial %d: reloaded SPA-Graph rejected: %v", trial, err)
		}
	}
}

// collinearIndex builds the parity fuzzer's regression shape: all
// venues on the line x=6, which degenerates the grid space.
func collinearIndex(t *testing.T) *Index {
	t.Helper()
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	net := &dataset.Network{
		Name:    "collinear",
		Graph:   b.Build(),
		Spatial: []bool{false, false, true, true},
		Points:  []geom.Point{{}, {}, geom.Pt(6, 6), geom.Pt(6, 49)},
	}
	return Build(dataset.Prepare(net), Params{})
}

func TestValidateCollinearSpace(t *testing.T) {
	// Before the degenerate-axis fix in grid.NewHierarchy, the space
	// excluded the real points and this failed with "outside the grid
	// space".
	idx := collinearIndex(t)
	if err := idx.Validate(); err != nil {
		t.Fatalf("collinear SPA-Graph rejected: %v", err)
	}
}

func TestValidateCorruptions(t *testing.T) {
	comp := func(idx *Index, orig int) int { return int(idx.prep.CompOf(orig)) }

	t.Run("geoB cleared", func(t *testing.T) {
		idx := collinearIndex(t)
		idx.geoB[comp(idx, 3)] = false
		wantValidateErr(t, idx.Validate(), "GeoB unset")
	})
	t.Run("geoB not monotone", func(t *testing.T) {
		idx := collinearIndex(t)
		v := comp(idx, 1)
		idx.geoB[v] = false
		idx.kind[v] = BVertex
		idx.grids[v] = nil
		wantValidateErr(t, idx.Validate(), "not monotone")
	})
	t.Run("missing cell", func(t *testing.T) {
		idx := collinearIndex(t)
		v := comp(idx, 3)
		if idx.kind[v] != GVertex {
			t.Skipf("component is kind %d, not G", idx.kind[v])
		}
		for k := range idx.grids[v] {
			delete(idx.grids[v], k)
			break
		}
		wantValidateErr(t, idx.Validate(), "ReachGrid")
	})
	t.Run("shrunken RMBR", func(t *testing.T) {
		// Downgrade every spatial-reaching component to R consistently,
		// then shrink one RMBR away from its member.
		idx := collinearIndex(t)
		big := geom.NewRect(-100, -100, 100, 100)
		for v := range idx.kind {
			if idx.geoB[v] {
				idx.kind[v] = RVertex
				idx.grids[v] = nil
				idx.rmbr[v] = big
			}
		}
		idx.rmbr[comp(idx, 3)] = geom.NewRect(-10, -10, -9, -9)
		wantValidateErr(t, idx.Validate(), "RMBR")
	})
}
