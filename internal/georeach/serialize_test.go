package georeach

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
)

func TestSPAGraphSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 10; trial++ {
		net := randomNetwork(rng, 5+rng.Intn(25), 2+rng.Intn(20))
		prep := dataset.Prepare(net)
		idx := Build(prep, Params{MaxReachGrids: 4, MergeCount: 2, Levels: 5})

		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Read(prep, &buf)
		if err != nil {
			t.Fatal(err)
		}
		g1, r1, b1 := idx.CountKinds()
		g2, r2, b2 := loaded.CountKinds()
		if g1 != g2 || r1 != r2 || b1 != b2 {
			t.Fatalf("kind counts changed: %d/%d/%d -> %d/%d/%d", g1, r1, b1, g2, r2, b2)
		}
		if loaded.MemoryBytes() != idx.MemoryBytes() {
			t.Fatalf("memory accounting changed: %d -> %d",
				idx.MemoryBytes(), loaded.MemoryBytes())
		}
		for q := 0; q < 30; q++ {
			v := rng.Intn(net.NumVertices())
			r := randomRegion(rng)
			if loaded.RangeReach(v, r) != idx.RangeReach(v, r) {
				t.Fatalf("trial %d: loaded SPA-graph disagrees at v=%d", trial, v)
			}
		}
	}
}

func TestSPAGraphReadValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(709))
	net := randomNetwork(rng, 10, 8)
	prep := dataset.Prepare(net)
	idx := Build(prep, Params{})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Wrong network.
	other := dataset.Prepare(randomNetwork(rng, 3, 2))
	if _, err := Read(other, bytes.NewReader(valid)); err == nil {
		t.Error("size mismatch accepted")
	}
	for name, input := range map[string][]byte{
		"empty":       {},
		"bad-magic":   append([]byte("WHAT"), valid[4:]...),
		"bad-version": append(append([]byte{}, valid[:4]...), append([]byte{42}, valid[5:]...)...),
		"truncated":   valid[:12],
		"short-grids": valid[:len(valid)-4],
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(prep, bytes.NewReader(input)); err == nil {
				t.Error("corrupt input accepted")
			}
		})
	}
}

func TestSPAGraphSerializeDegenerate(t *testing.T) {
	// A network with no spatial vertices still round-trips.
	net := &dataset.Network{
		Name:    "dry",
		Graph:   graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		Spatial: make([]bool, 4),
		Points:  make([]geom.Point, 4),
	}
	prep := dataset.Prepare(net)
	idx := Build(prep, Params{})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(prep, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.RangeReach(0, geom.NewRect(-1e9, -1e9, 1e9, 1e9)) {
		t.Error("spatial-free network answered TRUE after reload")
	}
}
