package georeach

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/grid"
)

// Serialization persists the SPA-Graph — whose construction is the
// slowest of all indexes in the paper's Table 5 — so GeoReach can reload
// without rebuilding. Versioned little-endian binary:
//
//	magic "RRGR" | version u8 | n u32 | levels u8 | space 4×f64 |
//	kind [n]u8 | geoB [n]u8 | rmbr [n]×4×f64 |
//	per G-vertex: count u32, count × key u64

var georeachMagic = [4]byte{'R', 'R', 'G', 'R'}

const georeachVersion = 1

// WriteTo serializes the SPA-Graph. It implements io.WriterTo.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	space := idx.h.Space()
	header := []any{
		georeachMagic, uint8(georeachVersion),
		uint32(len(idx.kind)), uint8(idx.h.Levels()),
		[4]float64{space.Min.X, space.Min.Y, space.Max.X, space.Max.Y},
	}
	for _, v := range header {
		if err := write(v); err != nil {
			return written, err
		}
	}
	for v := range idx.kind {
		geoB := uint8(0)
		if idx.geoB[v] {
			geoB = 1
		}
		r := idx.rmbr[v]
		if err := write([2]uint8{uint8(idx.kind[v]), geoB}); err != nil {
			return written, err
		}
		if err := write([4]float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y}); err != nil {
			return written, err
		}
	}
	for v := range idx.kind {
		if idx.kind[v] != GVertex {
			continue
		}
		cells := idx.grids[v]
		if err := write(uint32(cells.Len())); err != nil {
			return written, err
		}
		// Sorted keys make the serialization canonical: identical
		// SPA-Graphs — however built, sequentially or in parallel —
		// produce identical bytes. Read is order-agnostic.
		keys := make([]uint64, 0, cells.Len())
		for key := range cells {
			keys = append(keys, key)
		}
		slices.Sort(keys)
		for _, key := range keys {
			if err := write(key); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// Read deserializes a SPA-Graph written by WriteTo and attaches it to
// prep, which must describe the same network.
func Read(prep *dataset.Prepared, r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic [4]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("georeach: reading magic: %w", err)
	}
	if magic != georeachMagic {
		return nil, fmt.Errorf("georeach: bad magic %q", magic)
	}
	var version uint8
	if err := read(&version); err != nil {
		return nil, fmt.Errorf("georeach: reading version: %w", err)
	}
	if version != georeachVersion {
		return nil, fmt.Errorf("georeach: unsupported version %d", version)
	}
	var n uint32
	var levels uint8
	var space [4]float64
	if err := read(&n); err != nil {
		return nil, fmt.Errorf("georeach: reading size: %w", err)
	}
	if err := read(&levels); err != nil {
		return nil, fmt.Errorf("georeach: reading levels: %w", err)
	}
	if err := read(&space); err != nil {
		return nil, fmt.Errorf("georeach: reading space: %w", err)
	}
	if int(n) != prep.NumComponents() {
		return nil, fmt.Errorf("georeach: index has %d components, network has %d",
			n, prep.NumComponents())
	}
	if levels < 1 || levels > 20 {
		return nil, fmt.Errorf("georeach: implausible level count %d", levels)
	}
	idx := &Index{
		prep:  prep,
		h:     grid.NewHierarchy(geom.NewRect(space[0], space[1], space[2], space[3]), int(levels)),
		kind:  make([]Kind, n),
		geoB:  make([]bool, n),
		rmbr:  make([]geom.Rect, n),
		grids: make([]grid.CellSet, n),
	}
	for v := uint32(0); v < n; v++ {
		var flags [2]uint8
		var r [4]float64
		if err := read(&flags); err != nil {
			return nil, fmt.Errorf("georeach: reading vertex %d: %w", v, err)
		}
		if err := read(&r); err != nil {
			return nil, fmt.Errorf("georeach: reading vertex %d: %w", v, err)
		}
		if flags[0] > uint8(BVertex) {
			return nil, fmt.Errorf("georeach: corrupt kind %d", flags[0])
		}
		idx.kind[v] = Kind(flags[0])
		idx.geoB[v] = flags[1] != 0
		idx.rmbr[v] = geom.Rect{
			Min: geom.Pt(r[0], r[1]),
			Max: geom.Pt(r[2], r[3]),
		}
	}
	for v := uint32(0); v < n; v++ {
		if idx.kind[v] != GVertex {
			continue
		}
		var count uint32
		if err := read(&count); err != nil {
			return nil, fmt.Errorf("georeach: reading grid of %d: %w", v, err)
		}
		if count > 1<<24 {
			return nil, fmt.Errorf("georeach: implausible grid size %d", count)
		}
		cells := make(grid.CellSet, count)
		for i := uint32(0); i < count; i++ {
			var key uint64
			if err := read(&key); err != nil {
				return nil, fmt.Errorf("georeach: reading grid of %d: %w", v, err)
			}
			cells[key] = struct{}{}
		}
		idx.grids[v] = cells
	}
	return idx, nil
}
