package georeach

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
)

// randomNetwork builds a random geosocial network (possibly cyclic).
func randomNetwork(rng *rand.Rand, users, venues int) *dataset.Network {
	n := users + venues
	b := graph.NewBuilder(n)
	for i := 0; i < rng.Intn(4*n)+1; i++ {
		u := rng.Intn(users)
		var t int
		if rng.Float64() < 0.4 {
			t = users + rng.Intn(venues) // check-in
		} else {
			t = rng.Intn(users)
		}
		if u != t {
			b.AddEdge(u, t)
		}
	}
	net := &dataset.Network{
		Name:    "random",
		Graph:   b.Build(),
		Spatial: make([]bool, n),
		Points:  make([]geom.Point, n),
	}
	for v := users; v < n; v++ {
		net.Spatial[v] = true
		net.Points[v] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return net
}

func randomRegion(rng *rand.Rand) geom.Rect {
	x := rng.Float64() * 100
	y := rng.Float64() * 100
	return geom.NewRect(x, y, x+rng.Float64()*40, y+rng.Float64()*40)
}

// naive answers RangeReach by BFS.
func naive(net *dataset.Network, v int, r geom.Rect) bool {
	found := false
	net.Graph.BFS(v, func(u int) bool {
		if net.Spatial[u] && r.ContainsPoint(net.Points[u]) {
			found = true
			return false
		}
		return true
	})
	return found
}

func TestGeoReachAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		net := randomNetwork(rng, 2+rng.Intn(25), 1+rng.Intn(20))
		prep := dataset.Prepare(net)
		// Stress different parameterizations, including degenerate ones
		// that force heavy downgrading.
		params := []Params{
			{},
			{MaxReachGrids: 1, MergeCount: 1, Levels: 3},
			{MaxRMBRFraction: 0.01, MaxReachGrids: 2, Levels: 5},
			{MaxReachGrids: 1000, MergeCount: 100, Levels: 10},
		}
		idx := Build(prep, params[trial%len(params)])
		for q := 0; q < 30; q++ {
			v := rng.Intn(net.NumVertices())
			r := randomRegion(rng)
			want := naive(net, v, r)
			if got := idx.RangeReach(v, r); got != want {
				t.Fatalf("trial %d: RangeReach(%d, %v) = %v, want %v",
					trial, v, r, got, want)
			}
		}
	}
}

func TestClassificationDowngrades(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	net := randomNetwork(rng, 30, 30)
	prep := dataset.Prepare(net)

	// With generous limits most spatial-reaching vertices stay G.
	loose := Build(prep, Params{MaxReachGrids: 10000, MergeCount: 10000})
	g1, r1, _ := loose.CountKinds()
	if g1 == 0 {
		t.Error("loose params produced no G-vertices")
	}
	if r1 != 0 {
		t.Errorf("loose params produced %d R-vertices", r1)
	}

	// With MaxReachGrids = 0-ish everything downgrades to R or B.
	tight := Build(prep, Params{MaxReachGrids: 1, MergeCount: 1, Levels: 2})
	g2, _, _ := tight.CountKinds()
	if g2 > g1 {
		t.Error("tight params produced more G-vertices than loose")
	}
}

func TestSpatialVertexSelfQuery(t *testing.T) {
	// A query from a spatial vertex inside the region is TRUE even with
	// no edges at all.
	net := &dataset.Network{
		Name:    "self",
		Graph:   graph.FromEdges(1, nil),
		Spatial: []bool{true},
		Points:  []geom.Point{geom.Pt(5, 5)},
	}
	idx := Build(dataset.Prepare(net), Params{})
	if !idx.RangeReach(0, geom.NewRect(0, 0, 10, 10)) {
		t.Error("self query failed")
	}
	if idx.RangeReach(0, geom.NewRect(6, 6, 10, 10)) {
		t.Error("self query false positive")
	}
}

func TestNoSpatialNetwork(t *testing.T) {
	// A network with zero spatial vertices: every query is FALSE and
	// every vertex is a B-vertex with GeoB false.
	net := &dataset.Network{
		Name:    "dry",
		Graph:   graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		Spatial: make([]bool, 4),
		Points:  make([]geom.Point, 4),
	}
	idx := Build(dataset.Prepare(net), Params{})
	g, r, b := idx.CountKinds()
	if g != 0 || r != 0 || b != 4 {
		t.Errorf("kinds = %d/%d/%d, want 0/0/4", g, r, b)
	}
	if idx.RangeReach(0, geom.NewRect(-1e9, -1e9, 1e9, 1e9)) {
		t.Error("spatial-free network answered TRUE")
	}
	if idx.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
}

func TestPaperExample26(t *testing.T) {
	// Figure 1/Example 2.6 semantics: from a the answer is TRUE, from c
	// FALSE, with e and h inside R. Reconstruct the network with
	// venue coordinates placing e, h inside R = [60,90]x[55,95] and the
	// rest outside.
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 9}, // a->b, a->d, a->j
		{1, 4}, {1, 11}, {1, 3}, // b->e, b->l, b->d
		{2, 8}, {2, 10}, {2, 3}, // c->i, c->k, c->d
		{4, 5},  // e->f
		{6, 8},  // g->i
		{8, 5},  // i->f
		{9, 6},  // j->g
		{9, 7},  // j->h
		{11, 7}, // l->h
	}
	g := graph.FromEdges(12, edges)
	spatial := make([]bool, 12)
	points := make([]geom.Point, 12)
	// Spatial vertices in Figure 1: e, f, h, i, l (venues with points).
	set := func(v int, x, y float64) {
		spatial[v] = true
		points[v] = geom.Pt(x, y)
	}
	set(4, 70, 80)  // e: inside R
	set(7, 80, 60)  // h: inside R
	set(5, 10, 10)  // f: outside
	set(8, 20, 90)  // i: outside
	set(11, 40, 20) // l: outside
	net := &dataset.Network{Name: "figure1", Graph: g, Spatial: spatial, Points: points}
	idx := Build(dataset.Prepare(net), Params{Levels: 4})
	r := geom.NewRect(60, 55, 90, 95)
	if !idx.RangeReach(0, r) {
		t.Error("RangeReach(G, a, R) = FALSE, want TRUE")
	}
	if idx.RangeReach(2, r) {
		t.Error("RangeReach(G, c, R) = TRUE, want FALSE")
	}
}
