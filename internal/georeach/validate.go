package georeach

import (
	"fmt"

	"repro/internal/grid"
)

// Validate deep-checks the SPA-Graph invariants the §2.2.2 pruning
// rules are sound against:
//
//   - GeoB is consistent (set whenever the component has own spatial
//     members) and monotone over DAG edges;
//   - the class lattice is monotone: a G-vertex only has G successors,
//     an R-vertex never has a B successor with spatial reach;
//   - every member geometry lies inside the grid hierarchy's space —
//     the property whose violation lets CoverRect clamp a real point
//     into the wrong cell (the bug the parity fuzzer found);
//   - a G-vertex's ReachGrid is non-empty, holds only well-formed
//     cells, and covers its own members' seed cells and every
//     successor ReachGrid (directly or through a coarser ancestor);
//   - an R-vertex's RMBR contains its own member geometries and every
//     spatial-reaching successor's RMBR.
//
// It returns nil for a sound SPA-Graph and a descriptive error naming
// the first violated invariant otherwise.
func (idx *Index) Validate() error {
	n := idx.prep.NumComponents()
	if len(idx.kind) != n || len(idx.geoB) != n || len(idx.rmbr) != n || len(idx.grids) != n {
		return fmt.Errorf("georeach: annotation slices sized %d/%d/%d/%d for %d components",
			len(idx.kind), len(idx.geoB), len(idx.rmbr), len(idx.grids), n)
	}
	space := idx.h.Space()
	for v := 0; v < n; v++ {
		members := idx.prep.SpatialMembers[v]
		if len(members) > 0 && !idx.geoB[v] {
			return fmt.Errorf("georeach: component %d has %d spatial members but GeoB unset", v, len(members))
		}
		if !idx.geoB[v] && idx.kind[v] != BVertex {
			return fmt.Errorf("georeach: component %d has kind %d without spatial reach", v, idx.kind[v])
		}
		if idx.kind[v] == GVertex {
			if idx.grids[v].Len() == 0 {
				return fmt.Errorf("georeach: G-vertex %d has an empty ReachGrid", v)
			}
			for _, c := range idx.grids[v].Cells() {
				if int(c.Level) >= idx.h.Levels() {
					return fmt.Errorf("georeach: G-vertex %d cell %v above top level %d", v, c, idx.h.Levels()-1)
				}
				if side := idx.h.SideCells(c.Level); c.X < 0 || c.X >= side || c.Y < 0 || c.Y >= side {
					return fmt.Errorf("georeach: G-vertex %d cell %v outside the %d-cell grid", v, c, side)
				}
			}
		} else if idx.grids[v].Len() != 0 {
			return fmt.Errorf("georeach: non-G component %d stores a ReachGrid", v)
		}

		for _, m := range members {
			g := idx.prep.GeometryOf(m)
			if !space.ContainsRect(g) {
				return fmt.Errorf("georeach: member %d of component %d at %v outside the grid space %v",
					m, v, g, space)
			}
			switch idx.kind[v] {
			case GVertex:
				uncovered := grid.Cell{}
				ok := true
				idx.h.CoverRect(g, 0, func(c grid.Cell) {
					if ok && !idx.coveredBy(c, idx.grids[v]) {
						ok, uncovered = false, c
					}
				})
				if !ok {
					return fmt.Errorf("georeach: member %d of G-vertex %d seeds cell %v missing from its ReachGrid",
						m, v, uncovered)
				}
			case RVertex:
				if !idx.rmbr[v].ContainsRect(g) {
					return fmt.Errorf("georeach: member %d of R-vertex %d at %v outside its RMBR %v",
						m, v, g, idx.rmbr[v])
				}
			}
		}

		for _, u := range idx.prep.DAG.Out(v) {
			if !idx.geoB[u] {
				continue
			}
			if !idx.geoB[v] {
				return fmt.Errorf("georeach: GeoB not monotone: component %d unset with spatial-reaching successor %d", v, u)
			}
			switch idx.kind[v] {
			case GVertex:
				if idx.kind[u] != GVertex {
					return fmt.Errorf("georeach: G-vertex %d has non-G successor %d (kind %d)", v, u, idx.kind[u])
				}
				for _, c := range idx.grids[u].Cells() {
					if !idx.coveredBy(c, idx.grids[v]) {
						return fmt.Errorf("georeach: successor %d cell %v missing from G-vertex %d's ReachGrid", u, c, v)
					}
				}
			case RVertex:
				if idx.kind[u] == BVertex {
					return fmt.Errorf("georeach: R-vertex %d has B-vertex successor %d with spatial reach", v, u)
				}
				if !idx.rmbr[v].ContainsRect(idx.rmbr[u]) {
					return fmt.Errorf("georeach: successor %d RMBR %v outside R-vertex %d's RMBR %v",
						u, idx.rmbr[u], v, idx.rmbr[v])
				}
			}
		}
	}
	return nil
}

// coveredBy reports whether c or one of its coarser ancestors is in s.
func (idx *Index) coveredBy(c grid.Cell, s grid.CellSet) bool {
	for {
		if s.Has(c) {
			return true
		}
		p, ok := idx.h.Parent(c)
		if !ok {
			return false
		}
		c = p
	}
}
