// Package pool implements the bounded worker pool behind the parallel
// index-construction pipeline: a fixed number of workers drain an
// indexed task range with error-first cancellation, panic capture and
// deterministic result ordering.
//
// The pool itself never touches results — callers write into slot i of
// a pre-sized slice from task i, so the output layout is independent of
// worker scheduling. Determinism of the built indexes then follows from
// the builders' own structure (each task writes only its own state from
// already-completed inputs); the pool guarantees only that every task
// runs at most once and that all started tasks finish before ForEach
// returns.
//
// A pool of size 1 runs tasks inline on the calling goroutine, in task
// order, with no goroutines, channels or atomics involved — the exact
// sequential code path, so `WithParallelism(1)` builds behave (and
// panic) precisely like the pre-parallel library.
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is a reusable worker-pool handle. It holds no goroutines between
// calls — workers are spawned per ForEach/Run and joined before return
// — so a Pool is safe for concurrent use and free to keep around.
type Pool struct {
	size int
}

// New returns a pool of the given size. n <= 0 selects runtime.NumCPU().
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Pool{size: n}
}

// Size returns the worker count.
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.size
}

// Sequential reports whether the pool runs tasks inline (nil pool or
// size 1). Builders use it to keep their exact pre-parallel code path.
func (p *Pool) Sequential() bool { return p.Size() <= 1 }

// Panic wraps a panic captured on a worker goroutine: the original
// value, the task index it came from, and the worker's stack at capture
// time. ForEach re-panics with a *Panic on the calling goroutine, so a
// worker panic surfaces where the work was requested instead of
// crashing the process from an anonymous goroutine.
type Panic struct {
	Task  int
	Value any
	Stack []byte
}

// Error implements error, so a recovered *Panic prints usefully.
func (p *Panic) Error() string {
	return fmt.Sprintf("pool: task %d panicked: %v\n%s", p.Task, p.Value, p.Stack)
}

// ForEach runs fn(i) for every i in [0, n), using up to Size() workers.
//
// Cancellation is error-first: after any task returns a non-nil error
// (or panics), no new task is started; tasks already running complete.
// Among the errors of the tasks that did run, the one with the lowest
// index is returned — the same error the sequential order would have
// surfaced first. A worker panic takes precedence over errors and is
// re-raised on the calling goroutine as a *Panic.
//
// On a sequential pool, ForEach is a plain loop: fn runs in index
// order on the calling goroutine and panics propagate unwrapped.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.Size()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64 // next task index to hand out
		stop atomic.Bool  // set on first error/panic; halts dispatch

		mu       sync.Mutex
		firstIdx = n // lowest failed task index seen so far
		firstErr error
		pan      *Panic

		wg sync.WaitGroup
	)
	runTask := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				stop.Store(true)
				mu.Lock()
				if pan == nil || i < pan.Task {
					pan = &Panic{Task: i, Value: r, Stack: debug.Stack()}
				}
				mu.Unlock()
			}
		}()
		if err := fn(i); err != nil {
			stop.Store(true)
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runTask(i)
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
	return firstErr
}

// Run executes a fixed set of heterogeneous tasks — the nodes of a
// small build-dependency DAG stage — with ForEach semantics: all tasks
// of one Run call are independent; sequencing between dependent stages
// is expressed by consecutive Run calls.
func (p *Pool) Run(tasks ...func() error) error {
	return p.ForEach(len(tasks), func(i int) error { return tasks[i]() })
}

// Levels runs fn(v) for every vertex of every level, one level at a
// time: all vertices of level l complete before level l+1 starts. It is
// the level-synchronous schedule the propagation-style builders
// (interval labeling, BFL filters, SPA-Graph classification) use —
// vertices within a level have no edges between them, so each can read
// its neighbors' finished state and write only its own.
func (p *Pool) Levels(levels [][]int32, fn func(v int32)) {
	if p.Sequential() {
		for _, level := range levels {
			for _, v := range level {
				fn(v)
			}
		}
		return
	}
	for _, level := range levels {
		level := level
		// Chunk the level so workers grab batches, not single vertices:
		// levels in real condensation DAGs hold thousands of cheap tasks
		// and per-task atomics would dominate.
		const chunk = 256
		n := (len(level) + chunk - 1) / chunk
		_ = p.ForEach(n, func(i int) error {
			lo := i * chunk
			hi := lo + chunk
			if hi > len(level) {
				hi = len(level)
			}
			for _, v := range level[lo:hi] {
				fn(v)
			}
			return nil
		})
	}
}
