package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryTaskOnce(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8} {
		p := New(size)
		const n = 1000
		counts := make([]atomic.Int32, n)
		if err := p.ForEach(n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("size %d: unexpected error: %v", size, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("size %d: task %d ran %d times", size, i, got)
			}
		}
	}
}

// TestForEachDeterministicOrdering is the contract the parallel builders
// rely on: results written to slot i from task i produce the same slice
// regardless of pool size or scheduling.
func TestForEachDeterministicOrdering(t *testing.T) {
	const n = 500
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, size := range []int{1, 3, 16} {
		got := make([]int, n)
		if err := New(size).ForEach(n, func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: slot %d = %d, want %d", size, i, got[i], want[i])
			}
		}
	}
}

func TestForEachErrorFirstCancellation(t *testing.T) {
	errBoom := errors.New("boom")
	for _, size := range []int{1, 4} {
		p := New(size)
		const n = 100000
		var ran atomic.Int64
		err := p.ForEach(n, func(i int) error {
			ran.Add(1)
			if i == 3 {
				return errBoom
			}
			return nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("size %d: got error %v, want %v", size, err, errBoom)
		}
		// Error-first cancellation: once task 3 fails, dispatch stops. The
		// in-flight window is at most a few tasks per worker; nothing close
		// to the full range may run.
		if got := ran.Load(); got >= n {
			t.Fatalf("size %d: %d tasks ran after early error, cancellation is broken", size, got)
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// All tasks fail; the reported error must be the sequential-order
	// first one no matter which worker finished first.
	p := New(8)
	err := p.ForEach(64, func(i int) error { return fmt.Errorf("task %d", i) })
	if err == nil || err.Error() != "task 0" {
		t.Fatalf("got %v, want error of task 0", err)
	}
}

func TestForEachPanicPropagation(t *testing.T) {
	p := New(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		pan, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T, want *Panic", r)
		}
		if pan.Value != "kaput" {
			t.Fatalf("panic value = %v, want kaput", pan.Value)
		}
		if pan.Task != 7 {
			t.Fatalf("panic task = %d, want 7", pan.Task)
		}
		if len(pan.Stack) == 0 {
			t.Fatal("panic carries no worker stack")
		}
	}()
	_ = p.ForEach(32, func(i int) error {
		if i == 7 {
			panic("kaput")
		}
		return nil
	})
}

func TestSequentialPanicUnwrapped(t *testing.T) {
	// Size-1 pools are the exact old code path: panics propagate as-is.
	defer func() {
		if r := recover(); r != "raw" {
			t.Fatalf("recovered %v, want raw", r)
		}
	}()
	_ = New(1).ForEach(4, func(i int) error {
		if i == 2 {
			panic("raw")
		}
		return nil
	})
}

func TestSequentialStopsAtFirstError(t *testing.T) {
	var ran int
	err := New(1).ForEach(10, func(i int) error {
		ran++
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 3 {
		t.Fatalf("ran=%d err=%v, want exactly 3 tasks and an error", ran, err)
	}
}

func TestRun(t *testing.T) {
	var a, b atomic.Bool
	err := New(2).Run(
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Run: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
	if err := New(2).Run(); err != nil {
		t.Fatalf("empty Run: %v", err)
	}
}

func TestLevelsSynchronization(t *testing.T) {
	// Vertices of level l+1 read state written by level l; the barrier
	// between levels makes that safe. Model it: each vertex records the
	// number of completed predecessors it observed.
	const perLevel, nLevels = 300, 5
	levels := make([][]int32, nLevels)
	id := int32(0)
	for l := range levels {
		for i := 0; i < perLevel; i++ {
			levels[l] = append(levels[l], id)
			id++
		}
	}
	for _, size := range []int{1, 4} {
		done := make([]atomic.Bool, int(id))
		ok := atomic.Bool{}
		ok.Store(true)
		New(size).Levels(levels, func(v int32) {
			level := int(v) / perLevel
			// Every vertex of every earlier level must be complete.
			for u := 0; u < level*perLevel; u++ {
				if !done[u].Load() {
					ok.Store(false)
				}
			}
			done[v].Store(true)
		})
		if !ok.Load() {
			t.Fatalf("size %d: a vertex ran before its predecessor level completed", size)
		}
		for v := range done {
			if !done[v].Load() {
				t.Fatalf("size %d: vertex %d never ran", size, v)
			}
		}
	}
}

func TestNewDefaultsAndNilPool(t *testing.T) {
	if New(0).Size() < 1 {
		t.Fatal("New(0) must select at least one worker")
	}
	var p *Pool
	if p.Size() != 1 || !p.Sequential() {
		t.Fatal("nil pool must behave sequentially")
	}
	n := 0
	if err := p.ForEach(3, func(int) error { n++; return nil }); err != nil || n != 3 {
		t.Fatalf("nil pool ForEach: n=%d err=%v", n, err)
	}
}
