package pll

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomDAG(rng *rand.Rand, n, edges int) *graph.Graph {
	perm := rng.Perm(n)
	b := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if perm[u] > perm[v] {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

func TestReachMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		idx := Build(g, Options{Seed: int64(trial)})
		for u := 0; u < n; u++ {
			reach := g.Reachable(u)
			for v := 0; v < n; v++ {
				if got := idx.Reach(u, v); got != reach[v] {
					t.Fatalf("trial %d: Reach(%d,%d) = %v, want %v", trial, u, v, got, reach[v])
				}
			}
		}
	}
}

func TestShapes(t *testing.T) {
	// Chain, star, diamond and edgeless graphs.
	chain := make([][2]int, 0, 49)
	for i := 0; i < 49; i++ {
		chain = append(chain, [2]int{i, i + 1})
	}
	star := make([][2]int, 0, 49)
	for i := 1; i < 50; i++ {
		star = append(star, [2]int{0, i})
	}
	for name, edges := range map[string][][2]int{
		"chain":    chain,
		"star":     star,
		"diamond":  {{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		"edgeless": nil,
	} {
		t.Run(name, func(t *testing.T) {
			n := 50
			if name == "diamond" {
				n = 4
			}
			g := graph.FromEdges(n, edges)
			idx := Build(g, Options{Seed: 7})
			for u := 0; u < n; u++ {
				reach := g.Reachable(u)
				for v := 0; v < n; v++ {
					if idx.Reach(u, v) != reach[v] {
						t.Fatalf("Reach(%d,%d) wrong", u, v)
					}
				}
			}
		})
	}
}

func TestLabelsPrunedBelowTransitiveClosure(t *testing.T) {
	// On a chain the transitive closure has n(n+1)/2 ≈ 20k pairs; PLL
	// with random landmark ties needs only O(n log n) labels in
	// expectation (≈2·n·ln n ≈ 2.1k for n = 200). Allow generous slack.
	n := 200
	edges := make([][2]int, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	idx := Build(graph.FromEdges(n, edges), Options{Seed: 1})
	if idx.LabelCount() > int64(5*n*8) { // 8 ≈ log2(200) + slack
		t.Errorf("chain labels = %d, want O(n log n)", idx.LabelCount())
	}
	if idx.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
}

func TestPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Build(graph.FromEdges(2, [][2]int{{0, 1}, {1, 0}}), Options{})
}
