// Package pll implements Pruned Landmark Labeling for reachability —
// the 2-hop labeling scheme behind the SpaReach-PLL variant evaluated by
// Sarwat and Sun (paper §2.2.1) and surveyed in §7.1.
//
// Every vertex u carries two sorted landmark lists: Out(u), landmarks
// reachable from u, and In(u), landmarks that reach u. Then u reaches v
// iff Out(u) ∩ In(v) ≠ ∅. Landmarks are processed in decreasing degree
// order; each landmark runs one forward and one backward BFS, pruned at
// any vertex whose reachability to/from the landmark is already covered
// by previously indexed landmarks. Processing every vertex as a landmark
// makes the labeling complete, so queries need no graph fallback.
package pll

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Index is a complete 2-hop reachability labeling over a DAG.
type Index struct {
	// out[v] and in[v] are sorted slices of landmark ranks.
	out, in [][]int32
	// rank[v] is v's landmark rank (0 = processed first).
	rank []int32
}

// Options configures Build.
type Options struct {
	// Seed drives the randomized tie-breaking among equal-degree
	// landmarks. On degree-uniform graphs (chains, grids) random ties
	// are what makes pruning effective — deterministic ties can degrade
	// to the full transitive closure.
	Seed int64
}

// Build constructs the index for the DAG g. It panics if g has a cycle;
// condense strongly connected components first.
func Build(g *graph.Graph, opts Options) *Index {
	n := g.NumVertices()
	if !g.IsDAG() {
		panic("pll: Build requires a DAG; condense SCCs first")
	}
	idx := &Index{
		out:  make([][]int32, n),
		in:   make([][]int32, n),
		rank: make([]int32, n),
	}

	// Landmark order: total degree descending (high-coverage hubs
	// first), ties broken by a random permutation.
	rng := rand.New(rand.NewSource(opts.Seed))
	tie := rng.Perm(n)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di := g.OutDegree(int(order[i])) + g.InDegree(int(order[i]))
		dj := g.OutDegree(int(order[j])) + g.InDegree(int(order[j]))
		if di != dj {
			return di > dj
		}
		return tie[order[i]] < tie[order[j]]
	})
	for r, v := range order {
		idx.rank[v] = int32(r)
	}

	visited := make([]int32, n)
	for i := range visited {
		visited[i] = -1
	}
	queue := make([]int32, 0, 64)

	for r, w := range order {
		rank := int32(r)
		// Forward BFS: w reaches x  =>  rank(w) ∈ In(x).
		queue = append(queue[:0], w)
		visited[w] = rank
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if x != w && idx.covered(w, x) {
				continue // already answerable; prune the subtree
			}
			idx.in[x] = append(idx.in[x], rank)
			for _, y := range g.Out(int(x)) {
				if visited[y] != rank {
					visited[y] = rank
					queue = append(queue, y)
				}
			}
		}
		// Backward BFS: y reaches w  =>  rank(w) ∈ Out(y). Skip w itself
		// (the forward pass already recorded rank in In(w); Out gets it
		// here).
		queue = append(queue[:0], w)
		visited[w] = -2 - rank // distinct marker for the backward pass
		for len(queue) > 0 {
			y := queue[0]
			queue = queue[1:]
			if y != w && idx.covered(y, w) {
				continue
			}
			idx.out[y] = append(idx.out[y], rank)
			for _, x := range g.In(int(y)) {
				if visited[x] != -2-rank {
					visited[x] = -2 - rank
					queue = append(queue, x)
				}
			}
		}
	}
	return idx
}

// covered reports whether reachability u→v is already witnessed by the
// labels built so far. Labels are appended in increasing rank order, so
// they are always sorted.
func (idx *Index) covered(u, v int32) bool {
	return intersects(idx.out[u], idx.in[v])
}

// intersects reports whether two sorted slices share an element.
func intersects(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Reach answers GReach(u, v): whether the DAG contains a path from u to
// v. Reach(v, v) is true.
func (idx *Index) Reach(u, v int) bool {
	if u == v {
		return true
	}
	return intersects(idx.out[u], idx.in[v])
}

// MemoryBytes returns the label footprint (4 bytes per entry plus the
// rank array), for the Table 4-style accounting.
func (idx *Index) MemoryBytes() int64 {
	var total int64
	for v := range idx.out {
		total += int64(4 * (len(idx.out[v]) + len(idx.in[v])))
	}
	return total + int64(4*len(idx.rank))
}

// LabelCount returns the total number of stored landmark entries.
func (idx *Index) LabelCount() int64 {
	var total int64
	for v := range idx.out {
		total += int64(len(idx.out[v]) + len(idx.in[v]))
	}
	return total
}
