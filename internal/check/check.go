// Package check implements deep structural validators for the index
// data structures: the interval labeling's post-order bijection, label
// well-formedness and nesting, condensation acyclicity, and the dynamic
// labeling's consistency with its accumulated graph. The spatial-index
// validators live with their structures (rtree.Tree.Validate,
// kdtree.Tree.Validate) because they need node internals; this package
// holds everything expressible through exported surfaces.
//
// Validators return nil for a well-formed structure and a descriptive
// error naming the first violated invariant otherwise. They run in
// O(V + E + labels) and are cheap enough to call after every build,
// load and update batch in tests (and behind rrserve's -check flag).
package check

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/intervals"
	"repro/internal/labeling"
)

// Posts validates that post and order describe a 1-based post-order
// bijection: every post number lies in [1, n], and order inverts post.
func Posts(post, order []int32) error {
	n := len(post)
	if len(order) != n {
		return fmt.Errorf("check: %d post numbers but %d order slots", n, len(order))
	}
	for v, p := range post {
		if p < 1 || int(p) > n {
			return fmt.Errorf("check: vertex %d has post %d outside [1,%d]", v, p, n)
		}
		if order[p-1] != int32(v) {
			return fmt.Errorf("check: post bijection broken: post(%d) = %d but order[%d] = %d",
				v, p, p-1, order[p-1])
		}
	}
	return nil
}

// Set validates one label set: every interval has lo ≤ hi (a "swapped"
// interval inverts the containment test) and intervals are sorted and
// disjoint. Adjacent-but-unmerged intervals are tolerated — the
// compression ablation produces them deliberately, and the containment
// queries stay correct.
func Set(v int, s intervals.Set) error {
	for i, iv := range s {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("check: vertex %d: interval %d [%d,%d] is swapped (lo > hi)", v, i, iv.Lo, iv.Hi)
		}
		if i > 0 && iv.Lo <= s[i-1].Hi {
			return fmt.Errorf("check: vertex %d: intervals %d and %d overlap or are out of order", v, i-1, i)
		}
	}
	return nil
}

// labelSource abstracts the two labeling representations.
type labelSource func(v int) intervals.Set

// labels validates the per-vertex label sets against the post numbers:
// well-formed sets, each containing the vertex's own post number (v is
// its own descendant).
func labels(post []int32, at labelSource) error {
	for v := range post {
		s := at(v)
		if err := Set(v, s); err != nil {
			return err
		}
		if !s.ContainsCanonical(post[v]) {
			return fmt.Errorf("check: vertex %d: label set %v does not contain own post %d", v, s, post[v])
		}
	}
	return nil
}

// edgeNesting validates Lemma 3.1's closure property over one edge
// (u, v): since everything v reaches u also reaches, L(u) must cover
// L(v) — in particular it must contain post(v).
func edgeNesting(u, v int, post []int32, at labelSource) error {
	lu, lv := at(u), at(v)
	if !lu.ContainsCanonical(post[v]) {
		return fmt.Errorf("check: edge (%d,%d): L(%d) does not contain post(%d) = %d", u, v, u, v, post[v])
	}
	if !lu.CoversCanonical(lv) {
		return fmt.Errorf("check: edge (%d,%d): L(%d) does not cover L(%d); labels are not properly nested",
			u, v, u, v)
	}
	return nil
}

// Labeling validates l against the condensation DAG it was built over:
// the DAG is acyclic, post numbers are a bijection onto 1..n, label
// sets are well-formed and self-containing, and every edge's labels
// nest properly.
func Labeling(g *graph.Graph, l *labeling.Labeling) error {
	n := g.NumVertices()
	if len(l.Post) != n || len(l.Order) != n || len(l.Labels) != n {
		return fmt.Errorf("check: labeling sized %d/%d/%d for a %d-vertex DAG",
			len(l.Post), len(l.Order), len(l.Labels), n)
	}
	if !g.IsDAG() {
		return fmt.Errorf("check: condensation contains a cycle")
	}
	if err := Posts(l.Post, l.Order); err != nil {
		return err
	}
	if err := labels(l.Post, func(v int) intervals.Set { return l.Labels[v] }); err != nil {
		return err
	}
	var firstErr error
	g.Edges(func(u, v int) {
		if firstErr == nil {
			firstErr = edgeNesting(u, v, l.Post, func(w int) intervals.Set { return l.Labels[w] })
		}
	})
	return firstErr
}

// Dynamic validates an updatable labeling against the graph it has
// absorbed: dense post numbers, well-formed self-containing labels,
// per-edge nesting, and acyclicity of the accumulated edge set.
func Dynamic(d *labeling.Dynamic) error {
	n := d.NumVertices()
	post := make([]int32, n)
	order := make([]int32, n)
	for v := 0; v < n; v++ {
		p := d.PostOf(v)
		if p < 1 || int(p) > n {
			return fmt.Errorf("check: vertex %d has post %d outside [1,%d]", v, p, n)
		}
		post[v] = p
		order[p-1] = int32(v)
	}
	if err := Posts(post, order); err != nil {
		return err
	}
	if err := labels(post, d.Labels); err != nil {
		return err
	}
	var firstErr error
	indeg := make([]int32, n)
	adj := make([][]int32, n)
	d.Edges(func(u, v int) {
		if firstErr == nil {
			firstErr = edgeNesting(u, v, post, d.Labels)
		}
		adj[u] = append(adj[u], int32(v))
		indeg[v]++
	})
	if firstErr != nil {
		return firstErr
	}
	// Kahn's algorithm: the accumulated edge set must still be acyclic
	// (AddEdge promises to reject cycle-closing edges).
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, v := range adj[u] {
			if indeg[v]--; indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("check: dynamic labeling's accumulated graph contains a cycle (%d of %d vertices ordered)", seen, n)
	}
	return nil
}

// View validates a published snapshot of the dynamic labeling. A view
// carries no edges, so only the shape invariants are checkable: a post
// bijection and well-formed, self-containing label sets.
func View(v labeling.View) error {
	n := v.NumVertices()
	post := make([]int32, n)
	order := make([]int32, n)
	for u := 0; u < n; u++ {
		p := v.PostOf(u)
		if p < 1 || int(p) > n {
			return fmt.Errorf("check: vertex %d has post %d outside [1,%d]", u, p, n)
		}
		post[u] = p
		order[p-1] = int32(u)
	}
	if err := Posts(post, order); err != nil {
		return err
	}
	return labels(post, v.Labels)
}
