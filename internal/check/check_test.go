package check_test

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/intervals"
	"repro/internal/labeling"
)

// diamond builds the 6-vertex DAG 0→{1,2}, 1→3, 2→3, 3→4, plus the
// isolated vertex 5.
func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func wantErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("want error containing %q, got: %v", substr, err)
	}
}

func TestLabelingValid(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	if err := check.Labeling(g, l); err != nil {
		t.Fatalf("valid labeling rejected: %v", err)
	}
}

func TestLabelingSkipCompressionValid(t *testing.T) {
	// The compression ablation leaves adjacent singleton labels; they
	// are well-formed, just not minimal.
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{SkipCompression: true})
	if err := check.Labeling(g, l); err != nil {
		t.Fatalf("uncompressed labeling rejected: %v", err)
	}
}

func TestLabelingSwappedInterval(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	l.Labels[0][0] = intervals.Interval{Lo: 5, Hi: 2}
	wantErr(t, check.Labeling(g, l), "swapped")
}

func TestLabelingOverlappingIntervals(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	// Vertex 0 reaches everything, so its set covers 1..post(0); bolt an
	// overlapping second interval onto whichever vertex has one.
	l.Labels[0] = intervals.Set{{Lo: 1, Hi: 4}, {Lo: 3, Hi: 6}}
	wantErr(t, check.Labeling(g, l), "overlap")
}

func TestLabelingMissingSelf(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	// Vertex 4 is a sink: its label is exactly its own post. Point it
	// somewhere else.
	p := l.Post[4]
	other := p%int32(len(l.Post)) + 1
	if other == p {
		other = p - 1
	}
	l.Labels[4] = intervals.Set{{Lo: other, Hi: other}}
	wantErr(t, check.Labeling(g, l), "own post")
}

func TestLabelingBrokenBijection(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	l.Post[0] = l.Post[1]
	wantErr(t, check.Labeling(g, l), "bijection")
}

func TestLabelingPostOutOfRange(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	l.Post[2] = int32(len(l.Post)) + 7
	wantErr(t, check.Labeling(g, l), "outside")
}

func TestLabelingNonNestedChild(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	// Shrink L(0) to its own post only: the edge (0,1) now has a child
	// label not contained in the parent's.
	l.Labels[0] = intervals.Set{{Lo: l.Post[0], Hi: l.Post[0]}}
	wantErr(t, check.Labeling(g, l), "does not contain post")
}

func TestLabelingPartialCover(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	// Keep post(1) in L(0) but drop the rest of L(1): containment of
	// the child's post alone is not proper nesting.
	s := intervals.Set{{Lo: l.Post[1], Hi: l.Post[1]}}
	if l.Post[0] != l.Post[1] {
		s = s.Add(l.Post[0], l.Post[0])
	}
	l.Labels[0] = s.Compress()
	wantErr(t, check.Labeling(g, l), "not properly nested")
}

func TestLabelingCycle(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	// Validate the same labeling against a cyclic "condensation" of the
	// same order: the acyclicity check must fire first.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	wantErr(t, check.Labeling(b.Build(), l), "cycle")
}

func TestLabelingSizeMismatch(t *testing.T) {
	g := diamond(t)
	l := labeling.Build(g, labeling.Options{})
	b := graph.NewBuilder(7)
	wantErr(t, check.Labeling(b.Build(), l), "sized")
}

func TestDynamicValid(t *testing.T) {
	g := diamond(t)
	d := labeling.NewDynamic(g, labeling.Options{})
	if err := check.Dynamic(d); err != nil {
		t.Fatalf("fresh dynamic labeling rejected: %v", err)
	}
	v := d.AddVertex()
	w := d.AddVertex()
	if err := d.AddEdge(v, w); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, v); err != nil {
		t.Fatal(err)
	}
	if err := check.Dynamic(d); err != nil {
		t.Fatalf("updated dynamic labeling rejected: %v", err)
	}
}

func TestDynamicCorrupted(t *testing.T) {
	g := diamond(t)
	d := labeling.NewDynamic(g, labeling.Options{})
	// Labels(v) shares its backing array with the labeling; flipping an
	// interval through it simulates internal corruption.
	s := d.Labels(0)
	s[0].Lo, s[0].Hi = s[0].Hi+3, s[0].Lo
	wantErr(t, check.Dynamic(d), "swapped")
}

func TestViewValid(t *testing.T) {
	g := diamond(t)
	d := labeling.NewDynamic(g, labeling.Options{})
	if err := check.View(d.View()); err != nil {
		t.Fatalf("fresh view rejected: %v", err)
	}
}

func TestViewCorrupted(t *testing.T) {
	g := diamond(t)
	d := labeling.NewDynamic(g, labeling.Options{})
	v := d.View()
	s := v.Labels(1)
	s[0].Lo, s[0].Hi = s[0].Hi+2, s[0].Lo
	wantErr(t, check.View(v), "swapped")
}

func TestPostsValid(t *testing.T) {
	if err := check.Posts([]int32{2, 1, 3}, []int32{1, 0, 2}); err != nil {
		t.Fatalf("valid posts rejected: %v", err)
	}
	wantErr(t, check.Posts([]int32{2, 1}, []int32{1}), "order slots")
	wantErr(t, check.Posts([]int32{1, 1}, []int32{0, 0}), "bijection")
}
