package check

import (
	"strings"
	"testing"

	"repro/internal/intervals"
)

func TestSparsePosts(t *testing.T) {
	alive := []bool{true, false, true, true}
	good := []int32{3, 0, 7, 1}
	if err := SparsePosts(alive, good, 7); err != nil {
		t.Fatalf("valid sparse posts rejected: %v", err)
	}
	cases := []struct {
		name string
		post []int32
		max  int32
		want string
	}{
		{"dead slot with post", []int32{3, 2, 7, 1}, 7, "dead component"},
		{"post zero on live", []int32{3, 0, 0, 1}, 7, "outside"},
		{"post past max", []int32{3, 0, 9, 1}, 7, "outside"},
		{"duplicate post", []int32{3, 0, 3, 1}, 7, "share post"},
	}
	for _, tc := range cases {
		err := SparsePosts(alive, tc.post, tc.max)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := SparsePosts([]bool{true}, []int32{1, 2}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSparseLabels(t *testing.T) {
	alive := []bool{true, false, true}
	post := []int32{2, 0, 5}
	at := func(sets []intervals.Set) labelSource {
		return func(c int) intervals.Set { return sets[c] }
	}
	good := []intervals.Set{intervals.NewSet(1, 2), nil, intervals.NewSet(5, 5)}
	if err := SparseLabels(alive, post, at(good)); err != nil {
		t.Fatalf("valid sparse labels rejected: %v", err)
	}
	missingOwn := []intervals.Set{intervals.NewSet(1, 1), nil, intervals.NewSet(5, 5)}
	if err := SparseLabels(alive, post, at(missingOwn)); err == nil {
		t.Error("label missing own post accepted")
	}
	swapped := []intervals.Set{{{Lo: 3, Hi: 1}}, nil, intervals.NewSet(5, 5)}
	if err := SparseLabels(alive, post, at(swapped)); err == nil {
		t.Error("swapped interval accepted")
	}
}

func TestSparseEdges(t *testing.T) {
	alive := []bool{true, true, false}
	post := []int32{5, 2, 0}
	labels := []intervals.Set{intervals.NewSet(2, 2).Union(intervals.NewSet(5, 5)), intervals.NewSet(2, 2), nil}
	at := func(c int) intervals.Set { return labels[c] }
	edgesOf := func(es [][2]int) func(fn func(u, v int)) {
		return func(fn func(u, v int)) {
			for _, e := range es {
				fn(e[0], e[1])
			}
		}
	}
	if err := SparseEdges(alive, post, at, edgesOf([][2]int{{0, 1}})); err != nil {
		t.Fatalf("valid edge set rejected: %v", err)
	}
	if err := SparseEdges(alive, post, at, edgesOf([][2]int{{1, 0}})); err == nil {
		t.Error("nesting violation accepted")
	}
	if err := SparseEdges(alive, post, at, edgesOf([][2]int{{0, 2}})); err == nil {
		t.Error("edge to dead component accepted")
	}
	if err := SparseEdges(alive, post, at, edgesOf([][2]int{{0, 0}})); err == nil {
		t.Error("self-loop accepted")
	}
	if err := SparseEdges(alive, post, at, edgesOf([][2]int{{0, 5}})); err == nil {
		t.Error("out-of-range edge accepted")
	}
}
