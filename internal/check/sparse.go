package check

import "fmt"

// The sparse validators cover the incremental engine (internal/incr),
// whose condensation keeps retired component slots around: merges and
// splits kill components and their post numbers are never reused, so
// live posts are unique in [1, maxPost] but not dense. Dead posts may
// linger inside label intervals; that is sound as long as no live
// entry ever carries a dead post, which the engine's own spatial
// validation checks. Here we check everything expressible over the
// condensation alone.

// SparsePosts validates a sparse post assignment: dead slots hold 0,
// live slots hold distinct posts in [1, maxPost].
func SparsePosts(alive []bool, post []int32, maxPost int32) error {
	if len(alive) != len(post) {
		return fmt.Errorf("check: %d alive flags but %d post slots", len(alive), len(post))
	}
	seen := make(map[int32]int, len(post))
	for c, p := range post {
		if !alive[c] {
			if p != 0 {
				return fmt.Errorf("check: dead component %d still has post %d", c, p)
			}
			continue
		}
		if p < 1 || p > maxPost {
			return fmt.Errorf("check: component %d has post %d outside [1,%d]", c, p, maxPost)
		}
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("check: components %d and %d share post %d", prev, c, p)
		}
		seen[p] = c
	}
	return nil
}

// SparseLabels validates the live components' label sets: well-formed
// and containing the component's own post.
func SparseLabels(alive []bool, post []int32, at labelSource) error {
	for c := range post {
		if !alive[c] {
			continue
		}
		s := at(c)
		if err := Set(c, s); err != nil {
			return err
		}
		if !s.ContainsCanonical(post[c]) {
			return fmt.Errorf("check: component %d: label set %v does not contain own post %d", c, s, post[c])
		}
	}
	return nil
}

// SparseEdges validates the condensation's edge set: endpoints live,
// per-edge label nesting (Lemma 3.1), and acyclicity via Kahn's
// algorithm over the live components.
func SparseEdges(alive []bool, post []int32, at labelSource, edges func(fn func(u, v int))) error {
	n := len(alive)
	var firstErr error
	indeg := make([]int32, n)
	adj := make([][]int32, n)
	edges(func(u, v int) {
		if firstErr != nil {
			return
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			firstErr = fmt.Errorf("check: condensation edge (%d,%d) out of range [0,%d)", u, v, n)
			return
		}
		if !alive[u] || !alive[v] {
			firstErr = fmt.Errorf("check: condensation edge (%d,%d) touches a dead component", u, v)
			return
		}
		if u == v {
			firstErr = fmt.Errorf("check: condensation has self-loop on component %d", u)
			return
		}
		firstErr = edgeNesting(u, v, post, at)
		adj[u] = append(adj[u], int32(v))
		indeg[v]++
	})
	if firstErr != nil {
		return firstErr
	}
	// Kahn's algorithm over live components; dead ones carry no edges
	// (checked above) so they order trivially.
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, v := range adj[u] {
			if indeg[v]--; indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("check: sparse condensation contains a cycle (%d of %d slots ordered)", seen, n)
	}
	return nil
}
