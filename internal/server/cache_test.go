package server

import (
	"sync"
	"testing"

	rangereach "repro"
)

func key(v int, x float64) cacheKey {
	return cacheKey{vertex: v, region: rangereach.Rect{MinX: x, MinY: x, MaxX: x + 1, MaxY: x + 1}}
}

func TestCacheHitMissAndUpdate(t *testing.T) {
	c := newQueryCache(64)
	k := key(1, 0)
	if _, ok := c.Get(k, 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, 0, true)
	if v, ok := c.Get(k, 0); !ok || !v {
		t.Fatalf("Get = (%v,%v), want (true,true)", v, ok)
	}
	c.Put(k, 0, false) // overwrite
	if v, ok := c.Get(k, 0); !ok || v {
		t.Fatalf("after overwrite Get = (%v,%v), want (false,true)", v, ok)
	}
}

func TestCacheGenerationInvalidation(t *testing.T) {
	c := newQueryCache(64)
	k := key(7, 3)
	c.Put(k, 1, true)
	if _, ok := c.Get(k, 2); ok {
		t.Fatal("stale generation served")
	}
	// The stale entry is dropped, not resurrected by an old-gen lookup.
	if _, ok := c.Get(k, 1); ok {
		t.Fatal("dropped entry still present")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// numShards slots total: one per shard, so two keys mapping to the
	// same shard evict each other.
	c := newQueryCache(numShards)
	var a, b cacheKey
	shard := c.shardFor(key(0, 0))
	a = key(0, 0)
	found := false
	for i := 1; i < 10000; i++ {
		b = key(i, float64(i))
		if c.shardFor(b) == shard {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("could not find two keys on one shard")
	}
	c.Put(a, 0, true)
	c.Put(b, 0, true)
	if _, ok := c.Get(a, 0); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := c.Get(b, 0); !ok {
		t.Error("most recent entry evicted")
	}
}

func TestCacheBoundedSize(t *testing.T) {
	c := newQueryCache(128)
	for i := 0; i < 10000; i++ {
		c.Put(key(i, float64(i)), 0, i%2 == 0)
	}
	if got := c.Len(); got > 128 {
		t.Fatalf("cache grew to %d entries, cap 128", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newQueryCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key((base*2000+i)%500, float64(i%100))
				c.Put(k, uint64(i%3), true)
				c.Get(k, uint64(i%3))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 256 {
		t.Fatalf("cache grew to %d entries, cap 256", c.Len())
	}
}
