package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	rangereach "repro"
	"repro/internal/metrics"
)

// errClosed reports an update submitted to a server that has shut down.
var errClosed = errors.New("server: closed")

// errPublishCheck reports a batch dropped because the snapshot it
// produced failed publish-time validation (-check-publish).
var errPublishCheck = errors.New("snapshot failed publish-time validation")

// publishedSnapshot pairs an immutable index view with the generation
// it belongs to. Readers load the pair with one atomic pointer load, so
// a result cached under gen G is always an answer computed against the
// matching snapshot.
type publishedSnapshot struct {
	snap *rangereach.DynamicSnapshot
	gen  uint64
}

// op kinds for updateOp.
const (
	opAddUser = iota
	opAddVenue
	opAddEdge
	opDelEdge
	opMoveVenue
)

type updateOp struct {
	kind     int
	x, y     float64
	from, to int
	vertex   int               // opMoveVenue: the venue to relocate
	reply    chan updateResult // buffered, written exactly once
}

type updateResult struct {
	id  int
	err error
}

// updater realizes the single-writer / snapshot-swap concurrency design
// for dynamic mode: all mutations are serialized onto one goroutine
// that owns the DynamicIndex exclusively, and after absorbing each
// batch of queued updates it publishes a fresh immutable snapshot via
// an atomic pointer. Readers load the pointer and query the snapshot —
// they never block on writers, never take a lock, and always see a
// consistent point-in-time state. Updates queued while a snapshot is
// being taken coalesce into the next publish, so a burst of k updates
// costs far fewer than k snapshots.
type updater struct {
	idx      *rangereach.DynamicIndex
	snap     atomic.Pointer[publishedSnapshot]
	ops      chan updateOp
	quit     chan struct{}
	done     chan struct{}
	swaps    *metrics.Counter
	snapTime *metrics.Histogram // rr_build_seconds{phase="snapshot"}

	// checkPublish validates every snapshot before it is published
	// (rrserve -check-publish). A snapshot that fails validation is
	// dropped — readers keep the last good one — and the whole batch
	// that produced it is failed back to its clients; checkFails counts
	// those events.
	checkPublish bool
	checkFails   *metrics.Counter
}

func newUpdater(idx *rangereach.DynamicIndex, swaps *metrics.Counter, snapTime *metrics.Histogram, checkPublish bool, checkFails *metrics.Counter) *updater {
	u := &updater{
		idx:          idx,
		ops:          make(chan updateOp, 256),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		swaps:        swaps,
		snapTime:     snapTime,
		checkPublish: checkPublish,
		checkFails:   checkFails,
	}
	u.snap.Store(&publishedSnapshot{snap: idx.Snapshot(), gen: 0})
	go u.loop()
	return u
}

// current returns the latest published snapshot.
func (u *updater) current() *publishedSnapshot { return u.snap.Load() }

// submit queues one update and waits for its result, honoring ctx and
// server shutdown.
func (u *updater) submit(ctx context.Context, op updateOp) updateResult {
	op.reply = make(chan updateResult, 1)
	select {
	case u.ops <- op:
	case <-u.quit:
		return updateResult{err: errClosed}
	case <-ctx.Done():
		return updateResult{err: ctx.Err()}
	}
	select {
	case res := <-op.reply:
		return res
	case <-u.done:
		// The loop exited; it may still have replied just before. Prefer
		// the real result when it is there.
		select {
		case res := <-op.reply:
			return res
		default:
			return updateResult{err: errClosed}
		}
	}
}

// close stops the loop. Safe to call once; pending submits unblock with
// errClosed.
func (u *updater) close() {
	close(u.quit)
	<-u.done
}

func (u *updater) loop() {
	defer close(u.done)
	gen := uint64(0)
	var pending []updateOp
	for {
		pending = pending[:0]
		select {
		case op := <-u.ops:
			pending = append(pending, op)
		case <-u.quit:
			return
		}
		// Coalesce everything already queued into this publish.
	drain:
		for {
			select {
			case op := <-u.ops:
				pending = append(pending, op)
			default:
				break drain
			}
		}
		results := make([]updateResult, len(pending))
		for i, op := range pending {
			results[i] = u.apply(op)
		}
		start := time.Now()
		snap := u.idx.Snapshot()
		if u.checkPublish {
			if err := snap.Validate(); err != nil {
				// The patched state is corrupt: never publish it. Readers
				// keep the last good snapshot and the whole batch fails
				// loudly, so the client knows its writes are not visible.
				u.checkFails.Inc()
				verr := fmt.Errorf("server: %w: %v", errPublishCheck, err)
				for i := range results {
					if results[i].err == nil {
						results[i] = updateResult{id: -1, err: verr}
					}
				}
				for i, op := range pending {
					op.reply <- results[i]
				}
				continue
			}
		}
		gen++
		u.snap.Store(&publishedSnapshot{snap: snap, gen: gen})
		u.snapTime.Observe(time.Since(start).Seconds())
		u.swaps.Inc()
		// Reply only after the snapshot is published: a client whose
		// update returned 200 is guaranteed to observe it in subsequent
		// queries (read-your-writes).
		for i, op := range pending {
			op.reply <- results[i]
		}
	}
}

func (u *updater) apply(op updateOp) updateResult {
	switch op.kind {
	case opAddUser:
		return updateResult{id: u.idx.AddUser()}
	case opAddVenue:
		return updateResult{id: u.idx.AddVenue(op.x, op.y)}
	case opAddEdge:
		return updateResult{id: -1, err: u.idx.AddEdge(op.from, op.to)}
	case opDelEdge:
		return updateResult{id: -1, err: u.idx.DeleteEdge(op.from, op.to)}
	case opMoveVenue:
		return updateResult{id: -1, err: u.idx.MoveVenue(op.vertex, op.x, op.y)}
	default:
		return updateResult{id: -1, err: errors.New("server: unknown update op")}
	}
}
