package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	rangereach "repro"
)

func getJSON(t *testing.T, client *http.Client, url string, out any) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s: %v (body %q)", url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

func explainURL(base string, vertex int, region [4]float64) string {
	return fmt.Sprintf("%s/v1/explain?vertex=%d&region=%g,%g,%g,%g",
		base, vertex, region[0], region[1], region[2], region[3])
}

// TestExplainEndpoint covers the EXPLAIN route in static mode: answers
// match the oracle, a fresh query reports real work, and the repeat is
// a cache hit with zero work counters (the engine never ran).
func TestExplainEndpoint(t *testing.T) {
	net := testNetwork(t)
	idx := net.MustBuild(rangereach.SpaReachBFL)
	oracle := net.MustBuild(rangereach.Naive)

	srv, err := New(Config{Index: idx})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(21))
	space := net.Space()
	var firstURL string
	var firstStats rangereach.QueryStats
	for i := 0; i < 25; i++ {
		v := rng.Intn(net.NumVertices())
		region := randRegion(rng, space)
		url := explainURL(ts.URL, v, region)
		var resp explainResponse
		status, body := getJSON(t, ts.Client(), url, &resp)
		if status != http.StatusOK {
			t.Fatalf("explain status %d: %s", status, body)
		}
		want := oracle.RangeReach(v, rangereach.NewRect(region[0], region[1], region[2], region[3]))
		if resp.Reachable != want {
			t.Fatalf("explain %d: got %v, oracle %v", i, resp.Reachable, want)
		}
		if resp.Stats.Method != "SpaReach-BFL" {
			t.Fatalf("explain %d: stats.Method = %q", i, resp.Stats.Method)
		}
		if resp.Stats.CacheHit {
			t.Fatalf("explain %d: fresh query reported a cache hit", i)
		}
		if i == 0 {
			firstURL, firstStats = url, resp.Stats
		}
	}
	if firstStats.Duration <= 0 {
		t.Errorf("fresh explain reported no duration: %+v", firstStats)
	}

	// The repeat hits the cache: CacheHit set, every work counter zero.
	var resp explainResponse
	if status, body := getJSON(t, ts.Client(), firstURL, &resp); status != http.StatusOK {
		t.Fatalf("repeat explain status %d: %s", status, body)
	}
	if !resp.Stats.CacheHit {
		t.Fatal("repeated explain not served from cache")
	}
	qs := resp.Stats
	if qs.Labels != 0 || qs.IndexNodes != 0 || qs.IndexLeaves != 0 || qs.IndexEntries != 0 ||
		qs.Candidates != 0 || qs.ReachProbes != 0 || qs.GraphVisited != 0 ||
		qs.Enumerated != 0 || qs.Members != 0 || len(qs.Stages) != 0 {
		t.Errorf("cache-hit stats report engine work: %+v", qs)
	}
	if qs.Method != "SpaReach-BFL" {
		t.Errorf("cache-hit stats.Method = %q", qs.Method)
	}

	// Malformed parameters are 400s.
	for _, bad := range []string{
		"/v1/explain?vertex=x&region=0,0,1,1",
		"/v1/explain?vertex=0&region=0,0,1",
		"/v1/explain?vertex=0&region=a,b,c,d",
		fmt.Sprintf("/v1/explain?vertex=%d&region=0,0,1,1", net.NumVertices()+3),
	} {
		if status, body := getJSON(t, ts.Client(), ts.URL+bad, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", bad, status, body)
		}
	}
}

// TestExplainDynamic covers the EXPLAIN route against the snapshot-swap
// serving path.
func TestExplainDynamic(t *testing.T) {
	net := testNetwork(t)
	srv, err := New(Config{Dynamic: net.BuildDynamic(), CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	oracle := net.MustBuild(rangereach.Naive)
	rng := rand.New(rand.NewSource(5))
	space := net.Space()
	for i := 0; i < 20; i++ {
		v := rng.Intn(net.NumVertices())
		region := randRegion(rng, space)
		var resp explainResponse
		status, body := getJSON(t, ts.Client(), explainURL(ts.URL, v, region), &resp)
		if status != http.StatusOK {
			t.Fatalf("explain status %d: %s", status, body)
		}
		want := oracle.RangeReach(v, rangereach.NewRect(region[0], region[1], region[2], region[3]))
		if resp.Reachable != want {
			t.Fatalf("dynamic explain: got %v, oracle %v", resp.Reachable, want)
		}
		if resp.Stats.Method != "3DReach-Dynamic" {
			t.Fatalf("stats.Method = %q", resp.Stats.Method)
		}
	}
}

// TestObservabilityMetricFamilies asserts the new metric families all
// render in the Prometheus text exposition: per-stage histograms, the
// runtime gauges, and the explain endpoint counter.
func TestObservabilityMetricFamilies(t *testing.T) {
	net := testNetwork(t)
	srv, err := New(Config{Index: net.MustBuild(rangereach.ThreeDReach), TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One traced query (TraceSample=1) and one explain populate the
	// stage histograms.
	space := net.Space()
	region := [4]float64{space.MinX, space.MinY, space.MaxX, space.MaxY}
	if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/query",
		queryRequest{Vertex: 0, Region: region}, nil); status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, body)
	}
	if status, body := getJSON(t, ts.Client(), explainURL(ts.URL, 1, region), nil); status != http.StatusOK {
		t.Fatalf("explain status %d: %s", status, body)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"# TYPE rr_stage_seconds histogram",
		`rr_stage_seconds_bucket{stage="spatial",le="+Inf"}`,
		`rr_stage_seconds_bucket{stage="reach",le="+Inf"}`,
		`rr_stage_seconds_count{stage="spatial"}`,
		`rr_requests_total{endpoint="explain"} 1`,
		"rr_traced_queries_total 2",
		"# TYPE go_goroutines gauge",
		"go_goroutines ",
		"go_memstats_heap_alloc_bytes ",
		"go_memstats_heap_objects ",
		"go_memstats_gc_cycles ",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The traced 3DReach queries spent time in the spatial stage.
	if strings.Contains(string(mbody), `rr_stage_seconds_count{stage="spatial"} 0`) {
		t.Error("spatial stage histogram has no observations despite traced queries")
	}
	// Runtime gauges carry live values, not zeros.
	if strings.Contains(string(mbody), "go_goroutines 0\n") {
		t.Error("go_goroutines reads 0")
	}
}

// TestRequestLogging captures the structured log stream: every request
// yields one record with correlation fields, traced queries attach the
// profile, and slow requests elevate to Warn.
func TestRequestLogging(t *testing.T) {
	net := testNetwork(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv, err := New(Config{
		Index:        net.MustBuild(rangereach.ThreeDReach),
		Logger:       logger,
		TraceSample:  1,
		CacheEntries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	space := net.Space()
	region := [4]float64{space.MinX, space.MinY, space.MaxX, space.MaxY}
	if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/query",
		queryRequest{Vertex: 0, Region: region}, nil); status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, body)
	}
	if status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query",
		queryRequest{Vertex: -1, Region: region}, nil); status != http.StatusBadRequest {
		t.Fatalf("bad query status %d, want 400", status)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log records, want 2:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["msg"] != "request" || rec["method"] != "POST" || rec["path"] != "/v1/query" {
		t.Errorf("first record = %v", rec)
	}
	if rec["status"] != float64(http.StatusOK) {
		t.Errorf("first record status = %v", rec["status"])
	}
	if _, ok := rec["req"]; !ok {
		t.Error("record missing request id")
	}
	if _, ok := rec["elapsed"]; !ok {
		t.Error("record missing latency")
	}
	if tr, ok := rec["trace"].(string); !ok || !strings.Contains(tr, "3DReach") {
		t.Errorf("traced query record missing profile: %v", rec["trace"])
	}
	var rec2 map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rec2); err != nil {
		t.Fatal(err)
	}
	if rec2["status"] != float64(http.StatusBadRequest) {
		t.Errorf("second record status = %v", rec2["status"])
	}

	// With SlowQuery=1ns every request is a Warn-level "slow request".
	buf.Reset()
	srv2, err := New(Config{
		Index:     net.MustBuild(rangereach.ThreeDReach),
		Logger:    logger,
		SlowQuery: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if status, _ := postJSON(t, ts2.Client(), ts2.URL+"/v1/query",
		queryRequest{Vertex: 0, Region: region}, nil); status != http.StatusOK {
		t.Fatal("query failed")
	}
	var slow map[string]any
	if err := json.Unmarshal(buf.Bytes(), &slow); err != nil {
		t.Fatal(err)
	}
	if slow["msg"] != "slow request" || slow["level"] != "WARN" {
		t.Errorf("slow record = %v", slow)
	}
}

// TestTraceSampling verifies the 1-in-N clock: with TraceSample=4 only
// a quarter of the evaluated queries go through the tracing path.
func TestTraceSampling(t *testing.T) {
	net := testNetwork(t)
	srv, err := New(Config{
		Index:        net.MustBuild(rangereach.ThreeDReach),
		TraceSample:  4,
		CacheEntries: -1, // every query evaluates
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	space := net.Space()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 40; i++ {
		req := queryRequest{Vertex: rng.Intn(net.NumVertices()), Region: randRegion(rng, space)}
		if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", req, nil); status != http.StatusOK {
			t.Fatalf("query status %d: %s", status, body)
		}
	}
	if got := srv.mTraced.Value(); got != 10 {
		t.Errorf("traced %d of 40 queries, want 10", got)
	}
}

// TestShardObservability covers the cluster-facing surface a single
// rrserve exposes when it runs as one shard: a traced request echoes
// the shard id, trace id and execution stats for the router to stitch;
// the slow-query warning carries both correlation fields so a WARN
// greps straight to its cluster trace; and /metrics exports the cache
// hit ratio plus the shard-labeled in-flight gauge the router's
// federation layer scrapes.
func TestShardObservability(t *testing.T) {
	net := testNetwork(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv, err := New(Config{
		Index:     net.MustBuild(rangereach.ThreeDReach),
		Logger:    logger,
		SlowQuery: time.Nanosecond, // every request logs as a slow WARN
		ShardID:   "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	space := net.Space()
	region := [4]float64{space.MinX, space.MinY, space.MaxX, space.MaxY}
	const traceID = "0af7651916cd43dd8448eb211c80319c"
	body, err := json.Marshal(queryRequest{Vertex: 0, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	doTraced := func() queryResponse {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("traced query status %d", resp.StatusCode)
		}
		var qr queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}

	// Fresh traced query: shard + trace id + real execution stats.
	qr := doTraced()
	if qr.Shard != "3" || qr.TraceID != traceID {
		t.Fatalf("traced response shard=%q trace_id=%q, want 3 / %s", qr.Shard, qr.TraceID, traceID)
	}
	if qr.Stats == nil || qr.Stats.CacheHit || len(qr.Stats.Stages) == 0 {
		t.Fatalf("traced response stats = %+v, want a fresh execution profile", qr.Stats)
	}
	// Repeat from the cache: stats still ride back, flagged as a hit,
	// so the router's stitched trace shows where the answer came from.
	qr = doTraced()
	if !qr.Cached || qr.Stats == nil || !qr.Stats.CacheHit {
		t.Fatalf("cached traced response = %+v, want cache-hit stats", qr)
	}

	// Every request above elevated to a slow WARN carrying both
	// correlation fields.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log records, want 2:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec["level"] != "WARN" || rec["msg"] != "slow request" {
			t.Errorf("record not a slow WARN: %v", rec)
		}
		if rec["shard"] != "3" {
			t.Errorf("slow WARN missing shard id: %v", rec)
		}
		if rec["trace_id"] != traceID {
			t.Errorf("slow WARN missing trace id: %v", rec)
		}
	}

	// The federation-facing families are present: the hit ratio
	// reflects the 1-hit/2-lookup history and the in-flight gauge is
	// labeled with this shard's id.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"# TYPE rr_cache_hit_ratio gauge",
		"rr_cache_hit_ratio 0.5",
		`rr_shard_inflight{shard="3"}`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
