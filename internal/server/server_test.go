package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	rangereach "repro"
)

// testNetwork generates a small synthetic network with a fixed seed.
func testNetwork(t *testing.T) *rangereach.Network {
	t.Helper()
	return rangereach.GenerateSynthetic(rangereach.SyntheticConfig{
		Name: "server-test", Users: 300, Venues: 150,
		AvgFriends: 4, AvgCheckins: 3, Clusters: 5, Seed: 7,
	})
}

func randRegion(rng *rand.Rand, space rangereach.Rect) [4]float64 {
	w := (space.MaxX - space.MinX) * (0.05 + 0.3*rng.Float64())
	h := (space.MaxY - space.MinY) * (0.05 + 0.3*rng.Float64())
	x := space.MinX + rng.Float64()*(space.MaxX-space.MinX-w)
	y := space.MinY + rng.Float64()*(space.MaxY-space.MinY-h)
	return [4]float64{x, y, x + w, y + h}
}

func postJSON(t *testing.T, client *http.Client, url string, body, out any) (int, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s: %v (body %q)", url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

func TestStaticQueryBatchAndMetrics(t *testing.T) {
	net := testNetwork(t)
	idx, err := net.Build(rangereach.ThreeDReach)
	if err != nil {
		t.Fatal(err)
	}
	oracle := net.MustBuild(rangereach.Naive)

	srv, err := New(Config{Index: idx})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(1))
	space := net.Space()

	// Single queries match the naive oracle.
	var firstKey queryRequest
	for i := 0; i < 50; i++ {
		req := queryRequest{Vertex: rng.Intn(net.NumVertices()), Region: randRegion(rng, space)}
		if i == 0 {
			firstKey = req
		}
		var resp queryResponse
		status, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", req, &resp)
		if status != http.StatusOK {
			t.Fatalf("query status %d: %s", status, body)
		}
		want := oracle.RangeReach(req.Vertex, rangereach.NewRect(req.Region[0], req.Region[1], req.Region[2], req.Region[3]))
		if resp.Reachable != want {
			t.Fatalf("query %d: got %v, oracle %v", i, resp.Reachable, want)
		}
		if resp.Cached {
			t.Fatalf("query %d unexpectedly cached", i)
		}
	}

	// Asking the first query again hits the cache.
	var resp queryResponse
	if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", firstKey, &resp); status != http.StatusOK {
		t.Fatalf("repeat query status %d: %s", status, body)
	}
	if !resp.Cached {
		t.Error("repeated query not served from cache")
	}

	// Batch answers match the oracle element-wise.
	var breq batchRequest
	for i := 0; i < 200; i++ {
		breq.Queries = append(breq.Queries, queryRequest{
			Vertex: rng.Intn(net.NumVertices()), Region: randRegion(rng, space),
		})
	}
	var bresp batchResponse
	if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/batch", breq, &bresp); status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	if len(bresp.Results) != len(breq.Queries) {
		t.Fatalf("batch returned %d results, want %d", len(bresp.Results), len(breq.Queries))
	}
	for i, q := range breq.Queries {
		want := oracle.RangeReach(q.Vertex, rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]))
		if bresp.Results[i] != want {
			t.Fatalf("batch result %d: got %v, oracle %v", i, bresp.Results[i], want)
		}
	}

	// Healthz reports static mode.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthzResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || health.Mode != "static" || health.Vertices != net.NumVertices() {
		t.Errorf("healthz = %+v", health)
	}

	// Metrics expose query counts, latency and cache hit rate.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"rr_queries_total 250", // 50 single misses + 200 batch; the cached repeat skips evaluation
		"rr_query_seconds_bucket",
		"rr_query_seconds_count",
		"rr_cache_hits_total 1",
		"rr_cache_misses_total 50",
		`rr_requests_total{endpoint="query"} 51`,
		`rr_requests_total{endpoint="batch"} 1`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics missing %q:\n%s", want, mbody)
		}
	}
}

func TestStaticUpdateRejected(t *testing.T) {
	net := testNetwork(t)
	srv, err := New(Config{Index: net.MustBuild(rangereach.SocReach)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update", updateRequest{Op: "add_user"}, nil)
	if status != http.StatusNotImplemented {
		t.Fatalf("static update: status %d, want 501 (%s)", status, body)
	}
}

func TestBadRequests(t *testing.T) {
	net := testNetwork(t)
	srv, err := New(Config{Index: net.MustBuild(rangereach.ThreeDReach)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query",
		queryRequest{Vertex: net.NumVertices() + 5}, nil); status != http.StatusBadRequest {
		t.Errorf("out-of-range vertex: status %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", batchRequest{}, nil); status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", status)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// dynOracle mirrors the evolving network: plain adjacency + points,
// answering RangeReach by BFS. Maintained serially by the test.
type dynOracle struct {
	adj    [][]int
	points map[int][2]float64
}

func newDynOracle(net *rangereach.Network, edges [][2]int) *dynOracle {
	o := &dynOracle{
		adj:    make([][]int, net.NumVertices()),
		points: make(map[int][2]float64),
	}
	for _, e := range edges {
		o.adj[e[0]] = append(o.adj[e[0]], e[1])
	}
	for v := 0; v < net.NumVertices(); v++ {
		if x, y, ok := net.PointOf(v); ok {
			o.points[v] = [2]float64{x, y}
		}
	}
	return o
}

func (o *dynOracle) addVertex() int {
	o.adj = append(o.adj, nil)
	return len(o.adj) - 1
}

func (o *dynOracle) hasEdge(u, v int) bool {
	for _, w := range o.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

func (o *dynOracle) delEdge(u, v int) {
	for i, w := range o.adj[u] {
		if w == v {
			o.adj[u] = append(o.adj[u][:i], o.adj[u][i+1:]...)
			return
		}
	}
}

func (o *dynOracle) rangeReach(v int, region [4]float64) bool {
	xmin, ymin, xmax, ymax := region[0], region[1], region[2], region[3]
	inside := func(u int) bool {
		p, ok := o.points[u]
		return ok && p[0] >= xmin && p[0] <= xmax && p[1] >= ymin && p[1] <= ymax
	}
	seen := make([]bool, len(o.adj))
	queue := []int{v}
	seen[v] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if inside(u) {
			return true
		}
		for _, w := range o.adj[u] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// TestDynamicMixedTraffic drives interleaved /v1/query + /v1/update
// traffic against dynamic mode and asserts every answer matches the
// serially-maintained naive oracle.
func TestDynamicMixedTraffic(t *testing.T) {
	const nStart = 60
	rng := rand.New(rand.NewSource(42))

	// Acyclic base network: edges only low id -> high id, deduplicated
	// so the oracle's edge multiset matches the (dedup-on-build) graph.
	b := rangereach.NewNetworkBuilder(nStart).SetName("dyn-test")
	var edges [][2]int
	seenEdge := make(map[[2]int]bool)
	for i := 0; i < 2*nStart; i++ {
		u := rng.Intn(nStart - 1)
		v := u + 1 + rng.Intn(nStart-u-1)
		if seenEdge[[2]int{u, v}] {
			continue
		}
		seenEdge[[2]int{u, v}] = true
		b.AddEdge(u, v)
		edges = append(edges, [2]int{u, v})
	}
	for v := 0; v < nStart; v += 3 {
		b.SetPoint(v, rng.Float64()*100, rng.Float64()*100)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oracle := newDynOracle(net, edges)
	allEdges := append([][2]int(nil), edges...)
	var venues []int
	for v := 0; v < nStart; v += 3 {
		venues = append(venues, v)
	}

	// CheckPublish validates every published snapshot along the way; a
	// bug in the incremental patching fails the batch with 500 here.
	srv, err := New(Config{Dynamic: net.BuildDynamic(), CacheEntries: 256, CheckPublish: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	space := rangereach.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	nVertices := nStart
	for step := 0; step < 400; step++ {
		switch k := rng.Intn(10); {
		case k < 6: // query
			region := randRegion(rng, space)
			v := rng.Intn(nVertices)
			var resp queryResponse
			status, body := postJSON(t, ts.Client(), ts.URL+"/v1/query",
				queryRequest{Vertex: v, Region: region}, &resp)
			if status != http.StatusOK {
				t.Fatalf("step %d: query status %d: %s", step, status, body)
			}
			if want := oracle.rangeReach(v, region); resp.Reachable != want {
				t.Fatalf("step %d: RangeReach(%d, %v) = %v, oracle %v", step, v, region, resp.Reachable, want)
			}
		case k < 7: // add user
			var resp updateResponse
			status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update", updateRequest{Op: "add_user"}, &resp)
			if status != http.StatusOK {
				t.Fatalf("step %d: add_user status %d: %s", step, status, body)
			}
			if id := oracle.addVertex(); resp.ID == nil || id != *resp.ID {
				t.Fatalf("step %d: add_user id %v, oracle %d", step, resp.ID, id)
			}
			nVertices++
		case k < 8: // add venue
			x, y := rng.Float64()*100, rng.Float64()*100
			var resp updateResponse
			status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update",
				updateRequest{Op: "add_venue", X: x, Y: y}, &resp)
			if status != http.StatusOK {
				t.Fatalf("step %d: add_venue status %d: %s", step, status, body)
			}
			id := oracle.addVertex()
			if resp.ID == nil || id != *resp.ID {
				t.Fatalf("step %d: add_venue id %v, oracle %d", step, resp.ID, id)
			}
			oracle.points[id] = [2]float64{x, y}
			venues = append(venues, id)
			nVertices++
		case k < 9 && len(allEdges) > 0 && rng.Intn(3) == 0: // delete a known edge
			i := rng.Intn(len(allEdges))
			e := allEdges[i]
			allEdges[i] = allEdges[len(allEdges)-1]
			allEdges = allEdges[:len(allEdges)-1]
			status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update",
				updateRequest{Op: "del_edge", From: e[0], To: e[1]}, nil)
			if status != http.StatusOK {
				t.Fatalf("step %d: del_edge status %d: %s", step, status, body)
			}
			oracle.delEdge(e[0], e[1])
		case k < 9 && len(venues) > 0 && rng.Intn(3) == 1: // move a venue
			v := venues[rng.Intn(len(venues))]
			x, y := rng.Float64()*100, rng.Float64()*100
			status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update",
				updateRequest{Op: "move_venue", Vertex: v, X: x, Y: y}, nil)
			if status != http.StatusOK {
				t.Fatalf("step %d: move_venue status %d: %s", step, status, body)
			}
			oracle.points[v] = [2]float64{x, y}
		default: // add edge (any direction; cycle-closing edges merge)
			u, v := rng.Intn(nVertices), rng.Intn(nVertices)
			status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update",
				updateRequest{Op: "add_edge", From: u, To: v}, nil)
			if status != http.StatusOK {
				t.Fatalf("step %d: add_edge status %d: %s", step, status, body)
			}
			if u != v && !oracle.hasEdge(u, v) {
				oracle.adj[u] = append(oracle.adj[u], v)
				allEdges = append(allEdges, [2]int{u, v})
			}
		}
	}

	// The dynamic path records snapshot swaps.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "rr_snapshot_swaps_total") ||
		strings.Contains(string(mbody), "rr_snapshot_swaps_total 0\n") {
		t.Errorf("metrics missing snapshot swaps:\n%s", mbody)
	}
}

// TestDynamicConcurrentReadersDuringUpdates hammers /v1/query from many
// goroutines while another goroutine streams updates; run under -race
// this exercises the snapshot-swap publication. Afterwards, with
// updates quiesced, every answer must match the oracle's final state.
func TestDynamicConcurrentReadersDuringUpdates(t *testing.T) {
	const nStart = 40
	rng := rand.New(rand.NewSource(3))
	b := rangereach.NewNetworkBuilder(nStart)
	var edges [][2]int
	for i := 0; i < nStart; i++ {
		u := rng.Intn(nStart - 1)
		v := u + 1 + rng.Intn(nStart-u-1)
		b.AddEdge(u, v)
		edges = append(edges, [2]int{u, v})
	}
	for v := 0; v < nStart; v += 4 {
		b.SetPoint(v, rng.Float64()*100, rng.Float64()*100)
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	oracle := newDynOracle(net, edges)

	srv, err := New(Config{Dynamic: net.BuildDynamic(), CacheEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	space := rangereach.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := queryRequest{Vertex: r.Intn(nStart), Region: randRegion(r, space)}
				status, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", req, &queryResponse{})
				if status != http.StatusOK {
					t.Errorf("concurrent query status %d: %s", status, body)
					return
				}
			}
		}(int64(100 + w))
	}

	// Writer: stream venue + edge updates, mirroring into the oracle
	// (the writer is the only goroutine touching the oracle until the
	// readers have stopped).
	urng := rand.New(rand.NewSource(9))
	nVertices := nStart
	for i := 0; i < 120; i++ {
		if urng.Intn(2) == 0 {
			x, y := urng.Float64()*100, urng.Float64()*100
			var resp updateResponse
			status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update",
				updateRequest{Op: "add_venue", X: x, Y: y}, &resp)
			if status != http.StatusOK {
				t.Fatalf("add_venue status %d: %s", status, body)
			}
			id := oracle.addVertex()
			oracle.points[id] = [2]float64{x, y}
			nVertices++
		} else {
			u, v := urng.Intn(nVertices), urng.Intn(nVertices)
			status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update",
				updateRequest{Op: "add_edge", From: u, To: v}, nil)
			if status != http.StatusOK {
				t.Fatalf("add_edge status %d: %s", status, body)
			}
			oracle.adj[u] = append(oracle.adj[u], v)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: answers now reflect the final state.
	frng := rand.New(rand.NewSource(77))
	for i := 0; i < 60; i++ {
		region := randRegion(frng, space)
		v := frng.Intn(nVertices)
		var resp queryResponse
		status, body := postJSON(t, ts.Client(), ts.URL+"/v1/query",
			queryRequest{Vertex: v, Region: region}, &resp)
		if status != http.StatusOK {
			t.Fatalf("final query status %d: %s", status, body)
		}
		if want := oracle.rangeReach(v, region); resp.Reachable != want {
			t.Fatalf("final RangeReach(%d, %v) = %v, oracle %v", v, region, resp.Reachable, want)
		}
	}
}

// TestUpdateTimeout exercises the context path on submit after close.
func TestUpdateAfterClose(t *testing.T) {
	net := testNetwork(t)
	srv, err := New(Config{Dynamic: net.BuildDynamic()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update", updateRequest{Op: "add_user"}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("update after close: status %d, want 503 (%s)", status, body)
	}
	if !strings.Contains(body, "closed") {
		t.Errorf("body %q does not mention closed", body)
	}
}

// TestBatchConsistentSnapshot verifies a batch in dynamic mode is
// answered against one snapshot (gen echoes a single generation).
func TestBatchConsistentSnapshot(t *testing.T) {
	net := testNetwork(t)
	srv, err := New(Config{Dynamic: net.BuildDynamic()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var uresp updateResponse
	if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/update", updateRequest{Op: "add_user"}, &uresp); status != http.StatusOK {
		t.Fatalf("add_user status %d: %s", status, body)
	}
	var breq batchRequest
	for i := 0; i < 10; i++ {
		breq.Queries = append(breq.Queries, queryRequest{Vertex: i, Region: [4]float64{0, 0, 1, 1}})
	}
	var bresp batchResponse
	if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/batch", breq, &bresp); status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	if bresp.Gen != uresp.Gen {
		t.Errorf("batch gen %d, want %d (latest published)", bresp.Gen, uresp.Gen)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with neither index accepted")
	}
	net := testNetwork(t)
	if _, err := New(Config{Index: net.MustBuild(rangereach.Naive), Dynamic: net.BuildDynamic()}); err == nil {
		t.Error("New with both indexes accepted")
	}
}

func TestQueryTimeoutConfig(t *testing.T) {
	net := testNetwork(t)
	srv, err := New(Config{Index: net.MustBuild(rangereach.Naive), QueryTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var breq batchRequest
	for i := 0; i < 64; i++ {
		breq.Queries = append(breq.Queries, queryRequest{Vertex: i, Region: [4]float64{0, 0, 1, 1}})
	}
	status, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", breq, nil)
	if status != http.StatusGatewayTimeout && status != http.StatusOK {
		t.Fatalf("batch under 1ns budget: status %d, want 504 (or rare 200)", status)
	}
}
