// Package server implements the rrserve HTTP serving subsystem: a
// long-lived process that holds a RangeReach index hot and answers
// queries over an HTTP/JSON API.
//
// Endpoints:
//
//	POST /v1/query   one RangeReach query
//	POST /v1/batch   a batch, fanned out over RangeReachBatch
//	POST /v1/update  add_user / add_venue / add_edge (dynamic mode)
//	GET  /healthz    liveness + mode + index info
//	GET  /metrics    Prometheus text exposition
//
// Static indexes serve reads lock-free — every static Index is safe for
// concurrent queries by construction. Dynamic mode uses a single-writer
// snapshot-swap design (see updater): mutations serialize onto one
// goroutine and publish immutable DynamicSnapshots through an atomic
// pointer, so readers never block on writers. A sharded LRU cache memoizes
// single-query answers keyed on (vertex, region) and stamped with the
// snapshot generation; a swap invalidates the whole cache by generation
// mismatch without touching entries.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	rangereach "repro"
	"repro/internal/metrics"
)

// Config assembles a Server. Exactly one of Index (static mode) or
// Dynamic (dynamic mode) must be set.
type Config struct {
	// Index serves static mode: lock-free concurrent reads, updates
	// rejected.
	Index *rangereach.Index
	// Dynamic serves dynamic mode through the snapshot-swap updater.
	Dynamic *rangereach.DynamicIndex
	// CacheEntries sizes the result cache (default 4096; negative
	// disables caching).
	CacheEntries int
	// QueryTimeout bounds each request (default 2s).
	QueryTimeout time.Duration
	// Parallelism is the static batch fan-out (0 = GOMAXPROCS).
	Parallelism int
	// MaxBatch caps the queries accepted per batch request (default
	// 8192).
	MaxBatch int
}

// Server answers RangeReach queries over HTTP. Create with New, expose
// via Handler, and Close when done to stop the update goroutine.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *queryCache
	dyn   *updater // nil in static mode

	reg        *metrics.Registry
	mReqQuery  *metrics.Counter
	mReqBatch  *metrics.Counter
	mReqUpdate *metrics.Counter
	mQueries   *metrics.Counter
	mUpdates   *metrics.Counter
	mUpdErrs   *metrics.Counter
	mReqErrs   *metrics.Counter
	mHits      *metrics.Counter
	mMisses    *metrics.Counter
	mSwaps     *metrics.Counter
	mInflight  *metrics.Gauge
	mLatency   *metrics.Histogram
}

// New builds a Server over the given index.
func New(cfg Config) (*Server, error) {
	if (cfg.Index == nil) == (cfg.Dynamic == nil) {
		return nil, errors.New("server: exactly one of Config.Index and Config.Dynamic must be set")
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8192
	}
	s := &Server{cfg: cfg, reg: metrics.NewRegistry()}
	s.mReqQuery = s.reg.Counter(`rr_requests_total{endpoint="query"}`, "HTTP requests by endpoint.")
	s.mReqBatch = s.reg.Counter(`rr_requests_total{endpoint="batch"}`, "HTTP requests by endpoint.")
	s.mReqUpdate = s.reg.Counter(`rr_requests_total{endpoint="update"}`, "HTTP requests by endpoint.")
	s.mQueries = s.reg.Counter("rr_queries_total", "RangeReach queries evaluated, including batch members.")
	s.mUpdates = s.reg.Counter("rr_updates_total", "Accepted network updates.")
	s.mUpdErrs = s.reg.Counter("rr_update_errors_total", "Rejected network updates (cycles, bad input).")
	s.mReqErrs = s.reg.Counter("rr_request_errors_total", "Requests answered with a non-2xx status.")
	s.mHits = s.reg.Counter("rr_cache_hits_total", "Result cache hits.")
	s.mMisses = s.reg.Counter("rr_cache_misses_total", "Result cache misses.")
	s.mSwaps = s.reg.Counter("rr_snapshot_swaps_total", "Snapshots published by the dynamic updater.")
	s.mInflight = s.reg.Gauge("rr_inflight_requests", "Requests currently being served.")
	s.mLatency = s.reg.Histogram("rr_query_seconds", "End-to-end latency of query and batch requests.", nil)

	if cfg.CacheEntries >= 0 {
		n := cfg.CacheEntries
		if n == 0 {
			n = 4096
		}
		s.cache = newQueryCache(n)
	}
	if cfg.Dynamic != nil {
		s.dyn = newUpdater(cfg.Dynamic, s.mSwaps)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.instrument(s.mReqQuery, s.handleQuery))
	s.mux.HandleFunc("POST /v1/batch", s.instrument(s.mReqBatch, s.handleBatch))
	s.mux.HandleFunc("POST /v1/update", s.instrument(s.mReqUpdate, s.handleUpdate))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the dynamic updater, failing queued updates with
// errClosed. In-flight HTTP requests should be drained first
// (http.Server.Shutdown does).
func (s *Server) Close() {
	if s.dyn != nil {
		s.dyn.close()
	}
}

// Metrics exposes the registry (for embedding rrserve elsewhere).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// instrument wraps a handler with the request counter, the in-flight
// gauge, the latency histogram, and the per-request timeout context.
func (s *Server) instrument(reqs *metrics.Counter, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		s.mInflight.Inc()
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		h(w, r.WithContext(ctx))
		cancel()
		s.mLatency.Observe(time.Since(start).Seconds())
		s.mInflight.Dec()
	}
}

// ---- wire types ----

// queryRequest is one RangeReach query: a vertex and a region given as
// [xmin, ymin, xmax, ymax] (corners in any order).
type queryRequest struct {
	Vertex int        `json:"vertex"`
	Region [4]float64 `json:"region"`
}

type queryResponse struct {
	Reachable bool   `json:"reachable"`
	Cached    bool   `json:"cached"`
	Gen       uint64 `json:"gen"`
	Micros    int64  `json:"micros"`
}

type batchRequest struct {
	Queries     []queryRequest `json:"queries"`
	Parallelism int            `json:"parallelism"`
}

type batchResponse struct {
	Results []bool `json:"results"`
	Gen     uint64 `json:"gen"`
	Micros  int64  `json:"micros"`
}

type updateRequest struct {
	Op   string  `json:"op"` // add_user | add_venue | add_edge
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	From int     `json:"from"`
	To   int     `json:"to"`
}

type updateResponse struct {
	// ID is the new vertex id for add_user/add_venue; absent for edges.
	ID  *int   `json:"id,omitempty"`
	Gen uint64 `json:"gen"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	if status >= 400 {
		s.mReqErrs.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// view resolves the read path once per request: the engine to query,
// the vertex-count bound, and the cache generation it belongs to. In
// dynamic mode the whole request is served from one snapshot, so even a
// batch sees a consistent point-in-time state.
type view struct {
	static *rangereach.Index
	snap   *rangereach.DynamicSnapshot
	gen    uint64
}

func (s *Server) currentView() view {
	if s.dyn != nil {
		p := s.dyn.current()
		return view{snap: p.snap, gen: p.gen}
	}
	return view{static: s.cfg.Index}
}

func (v view) numVertices() int {
	if v.snap != nil {
		return v.snap.NumVertices()
	}
	return v.static.Network().NumVertices()
}

func (v view) rangeReach(vertex int, r rangereach.Rect) bool {
	if v.snap != nil {
		return v.snap.RangeReach(vertex, r)
	}
	return v.static.RangeReach(vertex, r)
}

// ---- handlers ----

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	start := time.Now()
	v := s.currentView()
	if req.Vertex < 0 || req.Vertex >= v.numVertices() {
		s.writeError(w, http.StatusBadRequest, "vertex %d out of range [0,%d)", req.Vertex, v.numVertices())
		return
	}
	rect := rangereach.NewRect(req.Region[0], req.Region[1], req.Region[2], req.Region[3])
	key := cacheKey{vertex: req.Vertex, region: rect}
	if s.cache != nil {
		if val, ok := s.cache.Get(key, v.gen); ok {
			s.mHits.Inc()
			s.writeJSON(w, http.StatusOK, queryResponse{
				Reachable: val, Cached: true, Gen: v.gen,
				Micros: time.Since(start).Microseconds(),
			})
			return
		}
		s.mMisses.Inc()
	}
	ans := v.rangeReach(req.Vertex, rect)
	s.mQueries.Inc()
	if s.cache != nil {
		s.cache.Put(key, v.gen, ans)
	}
	s.writeJSON(w, http.StatusOK, queryResponse{
		Reachable: ans, Gen: v.gen,
		Micros: time.Since(start).Microseconds(),
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch)
		return
	}
	start := time.Now()
	v := s.currentView()
	n := v.numVertices()
	queries := make([]rangereach.Query, len(req.Queries))
	for i, q := range req.Queries {
		if q.Vertex < 0 || q.Vertex >= n {
			s.writeError(w, http.StatusBadRequest, "query %d: vertex %d out of range [0,%d)", i, q.Vertex, n)
			return
		}
		queries[i] = rangereach.Query{
			Vertex: q.Vertex,
			Region: rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]),
		}
	}
	results, err := s.evalBatch(r.Context(), v, queries, req.Parallelism)
	if err != nil {
		s.writeError(w, http.StatusGatewayTimeout, "batch: %v", err)
		return
	}
	s.mQueries.Add(int64(len(queries)))
	s.writeJSON(w, http.StatusOK, batchResponse{
		Results: results, Gen: v.gen,
		Micros: time.Since(start).Microseconds(),
	})
}

// evalBatch answers the batch against the resolved view. Static mode
// fans out through RangeReachBatch in a goroutine so the request
// context stays enforceable; dynamic mode walks the snapshot serially,
// checking the deadline between chunks (snapshot queries are
// single-digit microseconds, so chunked cancellation is tight enough).
func (s *Server) evalBatch(ctx context.Context, v view, queries []rangereach.Query, parallelism int) ([]bool, error) {
	if v.static != nil {
		if parallelism <= 0 {
			parallelism = s.cfg.Parallelism
		}
		done := make(chan []bool, 1)
		go func() { done <- v.static.RangeReachBatch(queries, parallelism) }()
		select {
		case res := <-done:
			return res, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	out := make([]bool, len(queries))
	const chunk = 64
	for lo := 0; lo < len(queries); lo += chunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		for i := lo; i < hi; i++ {
			out[i] = v.snap.RangeReach(queries[i].Vertex, queries[i].Region)
		}
	}
	return out, nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		s.writeError(w, http.StatusNotImplemented, "updates require dynamic mode (rrserve -dynamic)")
		return
	}
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var op updateOp
	switch req.Op {
	case "add_user":
		op = updateOp{kind: opAddUser}
	case "add_venue":
		op = updateOp{kind: opAddVenue, x: req.X, y: req.Y}
	case "add_edge":
		op = updateOp{kind: opAddEdge, from: req.From, to: req.To}
	default:
		s.writeError(w, http.StatusBadRequest, "unknown op %q (want add_user, add_venue or add_edge)", req.Op)
		return
	}
	res := s.dyn.submit(r.Context(), op)
	if res.err != nil {
		s.mUpdErrs.Inc()
		status := http.StatusConflict // cycle / out-of-range rejections
		switch {
		case errors.Is(res.err, errClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(res.err, context.DeadlineExceeded), errors.Is(res.err, context.Canceled):
			status = http.StatusGatewayTimeout
		}
		s.writeError(w, status, "%v", res.err)
		return
	}
	s.mUpdates.Inc()
	resp := updateResponse{Gen: s.dyn.current().gen}
	if op.kind != opAddEdge {
		resp.ID = &res.id
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// healthzResponse reports liveness plus basic index facts.
type healthzResponse struct {
	Status   string `json:"status"`
	Mode     string `json:"mode"`
	Method   string `json:"method"`
	Vertices int    `json:"vertices"`
	Gen      uint64 `json:"gen"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := s.currentView()
	resp := healthzResponse{Status: "ok", Vertices: v.numVertices(), Gen: v.gen}
	if s.dyn != nil {
		resp.Mode, resp.Method = "dynamic", "3DReach-Dynamic"
	} else {
		resp.Mode, resp.Method = "static", s.cfg.Index.Method().String()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}
