// Package server implements the rrserve HTTP serving subsystem: a
// long-lived process that holds a RangeReach index hot and answers
// queries over an HTTP/JSON API.
//
// Endpoints:
//
//	POST /v1/query   one RangeReach query
//	POST /v1/batch   a batch, fanned out over RangeReachBatch
//	POST /v1/update  add_user / add_venue / add_edge / del_edge / move_venue (dynamic mode)
//	GET  /v1/explain one query with its execution profile (EXPLAIN)
//	GET  /healthz    liveness + mode + index info
//	GET  /metrics    Prometheus text exposition
//
// Static indexes serve reads lock-free — every static Index is safe for
// concurrent queries by construction. Dynamic mode uses a single-writer
// snapshot-swap design (see updater): mutations serialize onto one
// goroutine and publish immutable DynamicSnapshots through an atomic
// pointer, so readers never block on writers. A sharded LRU cache memoizes
// single-query answers keyed on (vertex, region) and stamped with the
// snapshot generation; a swap invalidates the whole cache by generation
// mismatch without touching entries.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	rangereach "repro"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Config assembles a Server. Exactly one of Index (static mode) or
// Dynamic (dynamic mode) must be set.
type Config struct {
	// Index serves static mode: lock-free concurrent reads, updates
	// rejected.
	Index *rangereach.Index
	// Dynamic serves dynamic mode through the snapshot-swap updater.
	Dynamic *rangereach.DynamicIndex
	// CheckPublish makes the dynamic updater deep-validate every
	// snapshot before publishing it (rrserve -check-publish). A snapshot
	// that fails validation is never published: readers keep the last
	// good one, the batch that produced it is failed with 500, and
	// rr_publish_check_failures_total counts the event. Costs one full
	// validation pass per publish; intended for soak tests and
	// correctness-critical deployments.
	CheckPublish bool
	// CacheEntries sizes the result cache (default 4096; negative
	// disables caching).
	CacheEntries int
	// QueryTimeout bounds each request (default 2s).
	QueryTimeout time.Duration
	// Parallelism is the static batch fan-out (0 = GOMAXPROCS).
	Parallelism int
	// MaxBatch caps the queries accepted per batch request (default
	// 8192).
	MaxBatch int
	// MaxBodyBytes caps request bodies; oversized bodies are refused
	// with 413 before any JSON decoding happens (default 8 MiB,
	// negative disables the cap).
	MaxBodyBytes int64
	// Logger receives one structured record per request (request id,
	// method, path, status, latency, plus per-endpoint attributes). Nil
	// disables request logging.
	Logger *slog.Logger
	// SlowQuery elevates requests at least this slow to a Warn-level
	// "slow request" record, making them greppable without lowering the
	// log level. Zero disables the elevation.
	SlowQuery time.Duration
	// TraceSample traces every Nth engine-evaluated query (1 = all)
	// through the Explain path, feeding the rr_stage_seconds histograms
	// and attaching the profile to the request log. Zero disables
	// sampling; cache hits are never traced (no engine work to profile).
	TraceSample int
	// ShardID labels this process with its shard id when it serves one
	// partition of a cluster (rrserve -shard). It tags the request log,
	// the slow-query warnings and a shard-labeled in-flight gauge so
	// single-tier logs and metrics join the router's cluster view.
	// Empty means standalone.
	ShardID string
}

// Server answers RangeReach queries over HTTP. Create with New, expose
// via Handler, and Close when done to stop the update goroutine.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *queryCache
	dyn   *updater // nil in static mode

	reg         *metrics.Registry
	mReqQuery   *metrics.Counter
	mReqBatch   *metrics.Counter
	mReqUpdate  *metrics.Counter
	mReqExplain *metrics.Counter
	mQueries    *metrics.Counter
	mUpdates    *metrics.Counter
	mUpdErrs    *metrics.Counter
	mReqErrs    *metrics.Counter
	mHits       *metrics.Counter
	mMisses     *metrics.Counter
	mSwaps      *metrics.Counter
	mTraced     *metrics.Counter
	mInflight   *metrics.Gauge
	mLatency    *metrics.Histogram
	mStages     map[string]*metrics.Histogram
	mSnapBuild  *metrics.Histogram
	mCheckFails *metrics.Counter

	reqID    atomic.Uint64 // request ids for log correlation
	traceTik atomic.Uint64 // trace-sampling clock
}

// New builds a Server over the given index.
func New(cfg Config) (*Server, error) {
	if (cfg.Index == nil) == (cfg.Dynamic == nil) {
		return nil, errors.New("server: exactly one of Config.Index and Config.Dynamic must be set")
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8192
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{cfg: cfg, reg: metrics.NewRegistry()}
	s.mReqQuery = s.reg.Counter(`rr_requests_total{endpoint="query"}`, "HTTP requests by endpoint.")
	s.mReqBatch = s.reg.Counter(`rr_requests_total{endpoint="batch"}`, "HTTP requests by endpoint.")
	s.mReqUpdate = s.reg.Counter(`rr_requests_total{endpoint="update"}`, "HTTP requests by endpoint.")
	s.mQueries = s.reg.Counter("rr_queries_total", "RangeReach queries evaluated, including batch members.")
	s.mUpdates = s.reg.Counter("rr_updates_total", "Accepted network updates.")
	s.mUpdErrs = s.reg.Counter("rr_update_errors_total", "Rejected network updates (bad input, missing edges).")
	s.mReqErrs = s.reg.Counter("rr_request_errors_total", "Requests answered with a non-2xx status.")
	s.mHits = s.reg.Counter("rr_cache_hits_total", "Result cache hits.")
	s.mMisses = s.reg.Counter("rr_cache_misses_total", "Result cache misses.")
	s.mSwaps = s.reg.Counter("rr_snapshot_swaps_total", "Snapshots published by the dynamic updater.")
	s.mReqExplain = s.reg.Counter(`rr_requests_total{endpoint="explain"}`, "HTTP requests by endpoint.")
	s.mTraced = s.reg.Counter("rr_traced_queries_total", "Queries executed through the tracing path.")
	s.mInflight = s.reg.Gauge("rr_inflight_requests", "Requests currently being served.")
	s.mLatency = s.reg.Histogram("rr_query_seconds", "End-to-end latency of query and batch requests.", nil)
	s.mStages = make(map[string]*metrics.Histogram, trace.NumStages)
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		name := st.String()
		s.mStages[name] = s.reg.Histogram(
			fmt.Sprintf("rr_stage_seconds{stage=%q}", name),
			"Engine time per pipeline stage, over traced queries.", nil)
	}
	if cfg.Index != nil {
		// Build-phase durations are known at construction; publish them as
		// one-observation histograms so dashboards see where offline time
		// went (and, in dynamic mode below, how snapshot rebuilds trend).
		for _, ph := range cfg.Index.Stats().Phases {
			h := s.reg.Histogram(
				fmt.Sprintf("rr_build_seconds{phase=%q}", ph.Name),
				"Index build time attributed to each pipeline phase.", nil)
			h.Observe(ph.Duration.Seconds())
		}
		// MethodAuto indexes expose how the planner routes queries; the
		// tallies live in the engine, so scrape-time CounterFuncs read
		// them instead of maintaining parallel counters.
		if members := cfg.Index.PlannerMembers(); len(members) > 0 {
			for i, name := range members {
				i := i
				s.reg.CounterFunc(
					fmt.Sprintf("rr_planner_choice_total{method=%q}", name),
					"Queries the adaptive planner routed to each member engine.",
					func() int64 { return cfg.Index.PlannerChoices()[i] })
			}
		}
	}
	s.reg.GaugeFunc("go_goroutines", "Number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	s.reg.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.HeapAlloc) })
	s.reg.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.HeapObjects) })
	s.reg.GaugeFunc("go_memstats_gc_cycles", "Completed GC cycles.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.NumGC) })

	if cfg.CacheEntries >= 0 {
		n := cfg.CacheEntries
		if n == 0 {
			n = 4096
		}
		s.cache = newQueryCache(n)
		// The ratio the hit/miss counters only yield after PromQL math,
		// precomputed at scrape time: hits / lookups, 0 before any lookup.
		s.reg.GaugeFunc("rr_cache_hit_ratio", "Result cache hits as a fraction of lookups.",
			func() float64 {
				hits, misses := float64(s.mHits.Value()), float64(s.mMisses.Value())
				if hits+misses == 0 {
					return 0
				}
				return hits / (hits + misses)
			})
	}
	if cfg.ShardID != "" {
		// A shard-labeled mirror of the in-flight gauge, so the federated
		// cluster view can attribute load per shard without label rewrites.
		s.reg.GaugeFunc(
			fmt.Sprintf("rr_shard_inflight{shard=%q}", cfg.ShardID),
			"Requests currently in flight on this shard.",
			func() float64 { return float64(s.mInflight.Value()) })
	}
	if cfg.Dynamic != nil {
		s.mSnapBuild = s.reg.Histogram(
			`rr_build_seconds{phase="snapshot"}`,
			"Index build time attributed to each pipeline phase.", nil)
		s.mCheckFails = s.reg.Counter("rr_publish_check_failures_total",
			"Snapshots rejected by publish-time validation (-check-publish).")
		s.dyn = newUpdater(cfg.Dynamic, s.mSwaps, s.mSnapBuild, cfg.CheckPublish, s.mCheckFails)
		// The generation advances monotonically with every published
		// snapshot; rrload's churn mode and the router's cluster view
		// watch it to confirm updates are flowing.
		s.reg.GaugeFunc("rr_generation", "Generation of the currently published snapshot.",
			func() float64 { return float64(s.dyn.current().gen) })
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/query", s.instrument(s.mReqQuery, s.handleQuery))
	s.mux.HandleFunc("POST /v1/batch", s.instrument(s.mReqBatch, s.handleBatch))
	s.mux.HandleFunc("POST /v1/update", s.instrument(s.mReqUpdate, s.handleUpdate))
	s.mux.HandleFunc("GET /v1/explain", s.instrument(s.mReqExplain, s.handleExplain))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the dynamic updater, failing queued updates with
// errClosed. In-flight HTTP requests should be drained first
// (http.Server.Shutdown does).
func (s *Server) Close() {
	if s.dyn != nil {
		s.dyn.close()
	}
}

// Metrics exposes the registry (for embedding rrserve elsewhere).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// statusWriter captures the response status for the request log and
// carries handler-attached log attributes (a handler runs on one
// goroutine, so plain appends are safe).
type statusWriter struct {
	http.ResponseWriter
	status int
	attrs  []slog.Attr
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// annotate attaches attributes to the request's log record; a no-op
// outside the instrument middleware (e.g. under httptest direct calls).
func annotate(w http.ResponseWriter, attrs ...slog.Attr) {
	if sw, ok := w.(*statusWriter); ok {
		sw.attrs = append(sw.attrs, attrs...)
	}
}

// instrument wraps a handler with the request counter, the in-flight
// gauge, the latency histogram, the per-request timeout context, and
// the structured request log.
func (s *Server) instrument(reqs *metrics.Counter, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		s.mInflight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
		h(sw, r.WithContext(ctx))
		cancel()
		elapsed := time.Since(start)
		s.mLatency.Observe(elapsed.Seconds())
		s.mInflight.Dec()
		s.logRequest(r, sw, elapsed)
	}
}

// logRequest emits one record per request. Requests at least SlowQuery
// slow are elevated to Warn as "slow request" so they stand out of an
// Info-level stream without a separate sink.
func (s *Server) logRequest(r *http.Request, sw *statusWriter, elapsed time.Duration) {
	if s.cfg.Logger == nil {
		return
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	level, msg := slog.LevelInfo, "request"
	if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
		level, msg = slog.LevelWarn, "slow request"
	}
	if !s.cfg.Logger.Enabled(context.Background(), level) {
		return
	}
	attrs := make([]slog.Attr, 0, 7+len(sw.attrs))
	attrs = append(attrs,
		slog.Uint64("req", s.reqID.Add(1)),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("elapsed", elapsed),
	)
	// The cluster-correlation fields: the shard this process serves and
	// the distributed trace id the router (or client) stamped on the
	// request, so a slow-query WARN greps straight to its cluster trace.
	if s.cfg.ShardID != "" {
		attrs = append(attrs, slog.String("shard", s.cfg.ShardID))
	}
	if id, _, ok := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader)); ok {
		attrs = append(attrs, slog.String("trace_id", id))
	}
	attrs = append(attrs, sw.attrs...)
	s.cfg.Logger.LogAttrs(context.Background(), level, msg, attrs...)
}

// shouldTrace implements the sampling clock: true for every
// TraceSample-th engine evaluation.
func (s *Server) shouldTrace() bool {
	n := s.cfg.TraceSample
	return n > 0 && s.traceTik.Add(1)%uint64(n) == 0
}

// observeStages feeds a traced query's profile into the per-stage
// latency histograms.
func (s *Server) observeStages(qs rangereach.QueryStats) {
	s.mTraced.Inc()
	for _, st := range qs.Stages {
		if h, ok := s.mStages[st.Stage]; ok {
			h.Observe(st.Duration.Seconds())
		}
	}
}

// ---- wire types ----

// queryRequest is one RangeReach query: a vertex and a region given as
// [xmin, ymin, xmax, ymax] (corners in any order).
type queryRequest struct {
	Vertex int        `json:"vertex"`
	Region [4]float64 `json:"region"`
}

type queryResponse struct {
	Reachable bool   `json:"reachable"`
	Cached    bool   `json:"cached"`
	Gen       uint64 `json:"gen"`
	Micros    int64  `json:"micros"`
	// Shard echoes Config.ShardID on traced responses so the router can
	// attribute the stats without trusting its own placement view.
	Shard string `json:"shard,omitempty"`
	// TraceID echoes the incoming traceparent's trace id; set only on
	// traced requests.
	TraceID string `json:"trace_id,omitempty"`
	// Stats is the query's execution profile; present only when the
	// request carried a traceparent header (the distributed-trace path).
	Stats *rangereach.QueryStats `json:"stats,omitempty"`
}

type batchRequest struct {
	Queries     []queryRequest `json:"queries"`
	Parallelism int            `json:"parallelism"`
}

type batchResponse struct {
	Results []bool `json:"results"`
	Gen     uint64 `json:"gen"`
	Micros  int64  `json:"micros"`
}

type updateRequest struct {
	Op     string  `json:"op"` // add_user | add_venue | add_edge | del_edge | move_venue
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	Vertex int     `json:"vertex"` // move_venue: the venue to relocate
}

type updateResponse struct {
	// ID is the new vertex id for add_user/add_venue; absent for edges.
	ID  *int   `json:"id,omitempty"`
	Gen uint64 `json:"gen"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	if status >= 400 {
		s.mReqErrs.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// A write error here means the client went away; the status line is
	// already committed, so there is nothing left to report.
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body under the configured size cap,
// answering the error response itself on failure: 413 for oversized
// bodies (MaxBytesReader poisons the connection anyway, so the precise
// status matters to the client), 400 for malformed JSON.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, body, s.cfg.MaxBodyBytes)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return false
	}
	return true
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the response was written. The status never
// reaches that client; it exists for the request log and error metrics
// to distinguish hang-ups from server-side timeouts (504).
const statusClientClosedRequest = 499

// cancelStatus maps a context error to the response status.
func cancelStatus(err error) int {
	if errors.Is(err, context.Canceled) {
		return statusClientClosedRequest
	}
	return http.StatusGatewayTimeout
}

// view resolves the read path once per request: the engine to query,
// the vertex-count bound, and the cache generation it belongs to. In
// dynamic mode the whole request is served from one snapshot, so even a
// batch sees a consistent point-in-time state.
type view struct {
	static *rangereach.Index
	snap   *rangereach.DynamicSnapshot
	gen    uint64
}

func (s *Server) currentView() view {
	if s.dyn != nil {
		p := s.dyn.current()
		return view{snap: p.snap, gen: p.gen}
	}
	return view{static: s.cfg.Index}
}

func (v view) numVertices() int {
	if v.snap != nil {
		return v.snap.NumVertices()
	}
	return v.static.Network().NumVertices()
}

func (v view) rangeReach(vertex int, r rangereach.Rect) bool {
	if v.snap != nil {
		return v.snap.RangeReach(vertex, r)
	}
	return v.static.RangeReach(vertex, r)
}

func (v view) explain(vertex int, r rangereach.Rect) (bool, rangereach.QueryStats) {
	if v.snap != nil {
		return v.snap.Explain(vertex, r)
	}
	return v.static.Explain(vertex, r)
}

// methodName is the engine name for cache-hit stats, which never reach
// an engine.
func (s *Server) methodName() string {
	if s.dyn != nil {
		return "3DReach-Dynamic"
	}
	return s.cfg.Index.Method().String()
}

// ---- handlers ----

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	v := s.currentView()
	if req.Vertex < 0 || req.Vertex >= v.numVertices() {
		s.writeError(w, http.StatusBadRequest, "vertex %d out of range [0,%d)", req.Vertex, v.numVertices())
		return
	}
	// A valid traceparent (stamped by rrrouter's scatter-gather or a
	// -trace client) makes this request part of a distributed trace: the
	// engine runs through the Explain path and the profile rides back in
	// the response for the router to stitch.
	traceID, _, traced := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
	rect := rangereach.NewRect(req.Region[0], req.Region[1], req.Region[2], req.Region[3])
	key := cacheKey{vertex: req.Vertex, region: rect}
	if s.cache != nil {
		if val, ok := s.cache.Get(key, v.gen); ok {
			s.mHits.Inc()
			resp := queryResponse{
				Reachable: val, Cached: true, Gen: v.gen,
				Micros: time.Since(start).Microseconds(),
			}
			if traced {
				resp.Shard, resp.TraceID = s.cfg.ShardID, traceID
				resp.Stats = &rangereach.QueryStats{Method: s.methodName(), CacheHit: true}
			}
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
		s.mMisses.Inc()
	}
	// A single evaluation is microseconds, so the useful cancellation
	// point is before it: a request that died while queued (client gone,
	// deadline passed) should not reach the engine at all.
	if err := r.Context().Err(); err != nil {
		s.writeError(w, cancelStatus(err), "query: %v", err)
		return
	}
	var ans bool
	var stats *rangereach.QueryStats
	if traced || s.shouldTrace() {
		var qs rangereach.QueryStats
		ans, qs = v.explain(req.Vertex, rect)
		s.observeStages(qs)
		annotate(w, slog.String("trace", qs.String()))
		if traced {
			stats = &qs
		}
	} else {
		ans = v.rangeReach(req.Vertex, rect)
	}
	s.mQueries.Inc()
	if s.cache != nil {
		s.cache.Put(key, v.gen, ans)
	}
	annotate(w, slog.Int("vertex", req.Vertex), slog.Bool("reachable", ans))
	resp := queryResponse{
		Reachable: ans, Gen: v.gen,
		Micros: time.Since(start).Microseconds(),
	}
	if traced {
		resp.Shard, resp.TraceID, resp.Stats = s.cfg.ShardID, traceID, stats
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type explainResponse struct {
	Reachable bool                  `json:"reachable"`
	Gen       uint64                `json:"gen"`
	Stats     rangereach.QueryStats `json:"stats"`
}

// handleExplain answers GET /v1/explain?vertex=V&region=xmin,ymin,xmax,ymax
// with the query answer plus its execution profile. The result cache is
// consulted like a normal query: a hit reports CacheHit with zero work
// counters, since the engine never ran.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	vertex, err := strconv.Atoi(q.Get("vertex"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "bad vertex %q: %v", q.Get("vertex"), err)
		return
	}
	parts := strings.Split(q.Get("region"), ",")
	if len(parts) != 4 {
		s.writeError(w, http.StatusBadRequest, "bad region %q: want xmin,ymin,xmax,ymax", q.Get("region"))
		return
	}
	var coords [4]float64
	for i, p := range parts {
		if coords[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad region %q: %v", q.Get("region"), err)
			return
		}
	}
	v := s.currentView()
	if vertex < 0 || vertex >= v.numVertices() {
		s.writeError(w, http.StatusBadRequest, "vertex %d out of range [0,%d)", vertex, v.numVertices())
		return
	}
	rect := rangereach.NewRect(coords[0], coords[1], coords[2], coords[3])
	key := cacheKey{vertex: vertex, region: rect}
	if s.cache != nil {
		if val, ok := s.cache.Get(key, v.gen); ok {
			s.mHits.Inc()
			annotate(w, slog.Bool("cached", true))
			s.writeJSON(w, http.StatusOK, explainResponse{
				Reachable: val, Gen: v.gen,
				Stats: rangereach.QueryStats{Method: s.methodName(), CacheHit: true},
			})
			return
		}
		s.mMisses.Inc()
	}
	ans, qs := v.explain(vertex, rect)
	s.mQueries.Inc()
	s.observeStages(qs)
	if s.cache != nil {
		s.cache.Put(key, v.gen, ans)
	}
	annotate(w, slog.String("trace", qs.String()))
	s.writeJSON(w, http.StatusOK, explainResponse{Reachable: ans, Gen: v.gen, Stats: qs})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch)
		return
	}
	start := time.Now()
	v := s.currentView()
	n := v.numVertices()
	queries := make([]rangereach.Query, len(req.Queries))
	for i, q := range req.Queries {
		if q.Vertex < 0 || q.Vertex >= n {
			s.writeError(w, http.StatusBadRequest, "query %d: vertex %d out of range [0,%d)", i, q.Vertex, n)
			return
		}
		queries[i] = rangereach.Query{
			Vertex: q.Vertex,
			Region: rangereach.NewRect(q.Region[0], q.Region[1], q.Region[2], q.Region[3]),
		}
	}
	results, err := s.evalBatch(r.Context(), v, queries, req.Parallelism)
	if err != nil {
		s.writeError(w, cancelStatus(err), "batch: %v", err)
		return
	}
	s.mQueries.Add(int64(len(queries)))
	s.writeJSON(w, http.StatusOK, batchResponse{
		Results: results, Gen: v.gen,
		Micros: time.Since(start).Microseconds(),
	})
}

// evalBatch answers the batch against the resolved view. Both modes
// thread the request context into the evaluation itself, so a client
// disconnect or deadline stops the in-flight work (workers exit at the
// next chunk boundary) instead of abandoning it to finish unobserved.
func (s *Server) evalBatch(ctx context.Context, v view, queries []rangereach.Query, parallelism int) ([]bool, error) {
	if v.static != nil {
		if parallelism <= 0 {
			parallelism = s.cfg.Parallelism
		}
		return v.static.RangeReachBatchContext(ctx, queries, parallelism)
	}
	out := make([]bool, len(queries))
	const chunk = 64
	for lo := 0; lo < len(queries); lo += chunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := lo + chunk
		if hi > len(queries) {
			hi = len(queries)
		}
		for i := lo; i < hi; i++ {
			out[i] = v.snap.RangeReach(queries[i].Vertex, queries[i].Region)
		}
	}
	return out, nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.dyn == nil {
		s.writeError(w, http.StatusNotImplemented, "updates require dynamic mode (rrserve -dynamic)")
		return
	}
	var req updateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	var op updateOp
	switch req.Op {
	case "add_user":
		op = updateOp{kind: opAddUser}
	case "add_venue":
		op = updateOp{kind: opAddVenue, x: req.X, y: req.Y}
	case "add_edge":
		op = updateOp{kind: opAddEdge, from: req.From, to: req.To}
	case "del_edge":
		op = updateOp{kind: opDelEdge, from: req.From, to: req.To}
	case "move_venue":
		op = updateOp{kind: opMoveVenue, vertex: req.Vertex, x: req.X, y: req.Y}
	default:
		s.writeError(w, http.StatusBadRequest,
			"unknown op %q (want add_user, add_venue, add_edge, del_edge or move_venue)", req.Op)
		return
	}
	res := s.dyn.submit(r.Context(), op)
	if res.err != nil {
		s.mUpdErrs.Inc()
		status := http.StatusConflict // out-of-range / missing-edge rejections
		switch {
		case errors.Is(res.err, errClosed):
			status = http.StatusServiceUnavailable
		case errors.Is(res.err, errPublishCheck):
			status = http.StatusInternalServerError
		case errors.Is(res.err, context.DeadlineExceeded), errors.Is(res.err, context.Canceled):
			status = http.StatusGatewayTimeout
		}
		s.writeError(w, status, "%v", res.err)
		return
	}
	s.mUpdates.Inc()
	resp := updateResponse{Gen: s.dyn.current().gen}
	if op.kind == opAddUser || op.kind == opAddVenue {
		resp.ID = &res.id
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// healthzResponse reports liveness plus basic index facts.
type healthzResponse struct {
	Status   string `json:"status"`
	Mode     string `json:"mode"`
	Method   string `json:"method"`
	Vertices int    `json:"vertices"`
	Gen      uint64 `json:"gen"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := s.currentView()
	resp := healthzResponse{Status: "ok", Vertices: v.numVertices(), Gen: v.gen}
	if s.dyn != nil {
		resp.Mode, resp.Method = "dynamic", "3DReach-Dynamic"
	} else {
		resp.Mode, resp.Method = "static", s.cfg.Index.Method().String()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// A scrape aborted mid-write is the scraper's problem; the next one
	// gets a fresh snapshot.
	_ = s.reg.WritePrometheus(w)
}
