package server

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	rangereach "repro"
)

// TestPlannerChoiceMetrics asserts an Auto-backed server exposes
// rr_planner_choice_total per member and that the tallies track served
// queries. The cache is disabled so every request routes through the
// planner.
func TestPlannerChoiceMetrics(t *testing.T) {
	net := testNetwork(t)
	idx, err := net.Build(rangereach.MethodAuto)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Index: idx, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	members := idx.PlannerMembers()
	if len(members) == 0 {
		t.Fatal("auto index reports no planner members")
	}

	space := net.Space()
	rng := rand.New(rand.NewSource(31))
	const n = 30
	for i := 0; i < n; i++ {
		req := queryRequest{Vertex: rng.Intn(net.NumVertices()), Region: randRegion(rng, space)}
		if status, body := postJSON(t, ts.Client(), ts.URL+"/v1/query", req, nil); status != http.StatusOK {
			t.Fatalf("query status %d: %s", status, body)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)

	if !strings.Contains(text, "# TYPE rr_planner_choice_total counter") {
		t.Error("metrics missing rr_planner_choice_total TYPE header")
	}
	var total int64
	for _, name := range members {
		prefix := fmt.Sprintf("rr_planner_choice_total{method=%q} ", name)
		i := strings.Index(text, prefix)
		if i < 0 {
			t.Errorf("metrics missing series for member %q", name)
			continue
		}
		rest := text[i+len(prefix):]
		if j := strings.IndexByte(rest, '\n'); j >= 0 {
			rest = rest[:j]
		}
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			t.Errorf("member %q: unparseable value %q", name, rest)
			continue
		}
		total += v
	}
	if total != n {
		t.Errorf("planner choice tallies sum to %d, want %d", total, n)
	}

	// A fixed-method server exposes no planner series.
	srv2, err := New(Config{Index: net.MustBuild(rangereach.ThreeDReach)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp2, err := ts2.Client().Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if strings.Contains(string(body2), "rr_planner_choice_total") {
		t.Error("fixed-method server exposes planner metrics")
	}
}
