package server

import (
	"container/list"
	"math"
	"sync"

	rangereach "repro"
)

// cacheKey identifies one RangeReach result: the query vertex plus the
// normalized region.
type cacheKey struct {
	vertex int
	region rangereach.Rect
}

// numShards spreads lock contention; a power of two so the hash maps to
// a shard with a mask.
const numShards = 16

// queryCache is a sharded LRU of RangeReach answers with
// generation-based invalidation: every entry is stamped with the index
// generation it was computed against, and a lookup under a newer
// generation treats the entry as a miss and drops it. Static indexes
// never change generation, so their entries live until evicted; dynamic
// mode bumps the generation on every snapshot swap, invalidating the
// whole cache in O(1) without touching entries.
type queryCache struct {
	shards [numShards]cacheShard
}

type cacheShard struct {
	mu    sync.Mutex
	m     map[cacheKey]*list.Element //lint:guardedby mu
	order *list.List                 //lint:guardedby mu — front = most recently used
	cap   int                        // immutable after construction
}

type cacheEntry struct {
	key cacheKey
	gen uint64
	val bool
}

// newQueryCache builds a cache holding about capacity entries total.
// Capacity below numShards still grants each shard one slot.
func newQueryCache(capacity int) *queryCache {
	per := capacity / numShards
	if per < 1 {
		per = 1
	}
	c := &queryCache{}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			m:     make(map[cacheKey]*list.Element),
			order: list.New(),
			cap:   per,
		}
	}
	return c
}

// shardFor hashes the key with FNV-1a over its scalar fields.
func (c *queryCache) shardFor(k cacheKey) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(k.vertex))
	mix(math.Float64bits(k.region.MinX))
	mix(math.Float64bits(k.region.MinY))
	mix(math.Float64bits(k.region.MaxX))
	mix(math.Float64bits(k.region.MaxY))
	return &c.shards[h&(numShards-1)]
}

// Get returns the cached answer for k computed at generation gen.
// Entries from older generations are evicted on sight.
func (c *queryCache) Get(k cacheKey, gen uint64) (val, ok bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[k]
	if !ok {
		return false, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		s.order.Remove(el)
		delete(s.m, k)
		return false, false
	}
	s.order.MoveToFront(el)
	return e.val, true
}

// Put stores the answer for k computed at generation gen, evicting the
// least recently used entry of the shard when full.
func (c *queryCache) Put(k cacheKey, gen uint64, val bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		e := el.Value.(*cacheEntry)
		e.gen = gen
		e.val = val
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.cap {
		back := s.order.Back()
		if back != nil {
			s.order.Remove(back)
			delete(s.m, back.Value.(*cacheEntry).key)
		}
	}
	s.m[k] = s.order.PushFront(&cacheEntry{key: k, gen: gen, val: val})
}

// Len reports the current number of entries (tests only).
func (c *queryCache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.order.Len()
		s.mu.Unlock()
	}
	return total
}
