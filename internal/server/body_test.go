package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	rangereach "repro"
)

func bodyTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	idx, err := testNetwork(t).Build(rangereach.ThreeDReach)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Index = idx
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestOversizedBodyRejected(t *testing.T) {
	srv := bodyTestServer(t, Config{MaxBodyBytes: 256})
	big := `{"queries":[` + strings.Repeat(`{"vertex":1,"region":[0,0,1,1]},`, 100) + `{"vertex":1,"region":[0,0,1,1]}]}`

	for _, path := range []string{"/v1/batch", "/v1/query"} {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(big))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: oversized body got %d, want 413 (%s)", path, rec.Code, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), "exceeds") {
			t.Fatalf("%s: 413 body does not explain the limit: %s", path, rec.Body.String())
		}
	}

	// The same body under the cap (or with the cap disabled) goes through.
	for _, limit := range []int64{int64(len(big)) + 1, -1} {
		srv := bodyTestServer(t, Config{MaxBodyBytes: limit})
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(big))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("limit %d: got %d, want 200 (%s)", limit, rec.Code, rec.Body.String())
		}
	}
}

func TestCanceledRequestGets499(t *testing.T) {
	srv := bodyTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client hung up before the handler ran

	batch := []byte(`{"queries":[{"vertex":1,"region":[0,0,1,1]}]}`)
	for path, body := range map[string][]byte{
		"/v1/batch": batch,
		"/v1/query": []byte(`{"vertex":1,"region":[0,0,1,1]}`),
	} {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body)).WithContext(ctx)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != statusClientClosedRequest {
			t.Fatalf("%s: canceled request got %d, want %d (%s)", path, rec.Code, statusClientClosedRequest, rec.Body.String())
		}
	}
}
