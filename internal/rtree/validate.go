package rtree

import "fmt"

// Validate deep-checks the tree's structural invariants and returns a
// descriptive error for the first violation:
//
//   - leaf nodes hold entries only, internal nodes children only;
//   - every node's bounds contain each child's bounds (entry boxes in
//     leaves, node MBRs in internal nodes);
//   - no node exceeds the fan-out, and no non-root node is empty;
//   - all leaves sit at the same depth;
//   - the leaf entry count equals Len().
//
// It runs in O(size) and exists for tests, rrserve -check and the
// post-load validation of persisted indexes.
func (t *Tree[B]) Validate() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("rtree: nil root but size %d", t.size)
		}
		return nil
	}
	var entries, leafDepth int
	var walk func(n *node[B], depth int) error
	walk = func(n *node[B], depth int) error {
		if n.leaf {
			if len(n.children) != 0 {
				return fmt.Errorf("rtree: leaf node at depth %d has %d children", depth, len(n.children))
			}
			if len(n.entries) == 0 && depth != 0 {
				return fmt.Errorf("rtree: empty non-root leaf at depth %d", depth)
			}
			if len(n.entries) > t.maxEntries {
				return fmt.Errorf("rtree: leaf at depth %d holds %d entries, fan-out is %d",
					depth, len(n.entries), t.maxEntries)
			}
			for i, e := range n.entries {
				if !n.bounds.Contains(e.Box) {
					return fmt.Errorf("rtree: leaf MBR at depth %d does not contain entry %d (id %d)",
						depth, i, e.ID)
				}
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaves at depths %d and %d; tree is not balanced", leafDepth, depth)
			}
			entries += len(n.entries)
			return nil
		}
		if len(n.entries) != 0 {
			return fmt.Errorf("rtree: internal node at depth %d has %d entries", depth, len(n.entries))
		}
		if len(n.children) == 0 {
			return fmt.Errorf("rtree: internal node at depth %d has no children", depth)
		}
		if len(n.children) > t.maxEntries {
			return fmt.Errorf("rtree: internal node at depth %d holds %d children, fan-out is %d",
				depth, len(n.children), t.maxEntries)
		}
		for i, c := range n.children {
			if !n.bounds.Contains(c.bounds) {
				return fmt.Errorf("rtree: node MBR at depth %d does not contain child %d's MBR", depth, i)
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	leafDepth = -1
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if entries != t.size {
		return fmt.Errorf("rtree: %d leaf entries but size %d", entries, t.size)
	}
	return nil
}
