package rtree

// SetLeafBoundBytes overrides the per-leaf-entry bound size used by
// MemoryBytes. The paper's Table 4 distinguishes R-trees over points
// (16/24 bytes in 2D/3D), vertical segments and full boxes; a tree built
// over point data can account for point-sized leaf payloads even though
// the implementation stores a degenerate box. Pass 0 to restore the
// structural size.
func (t *Tree[B]) SetLeafBoundBytes(bytes int) { t.leafBoundBytes = bytes }

// boundBytes returns the structural size of a bound of type B: 16 bytes
// per dimension pair of float64 corners.
func (t *Tree[B]) boundBytes() int {
	var probe B
	return 16 * probe.Dims()
}

// MemoryBytes returns the approximate footprint of the tree: per leaf
// entry the bound payload plus a 4-byte id, per internal child a full
// bound plus a pointer. This is the index-size accounting behind
// Table 4.
func (t *Tree[B]) MemoryBytes() int64 {
	if t.root == nil {
		return 0
	}
	full := t.boundBytes()
	leafBytes := t.leafBoundBytes
	if leafBytes <= 0 {
		leafBytes = full
	}
	var total int64
	var walk func(n *node[B])
	walk = func(n *node[B]) {
		total += int64(full) // node bounds
		if n.leaf {
			total += int64(len(n.entries)) * int64(leafBytes+4)
			return
		}
		total += int64(len(n.children)) * 8
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return total
}

// NumNodes returns the number of nodes in the tree.
func (t *Tree[B]) NumNodes() int {
	if t.root == nil {
		return 0
	}
	count := 0
	var walk func(n *node[B])
	walk = func(n *node[B]) {
		count++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return count
}

// CheckInvariants validates structural invariants (bounds cover children,
// fan-out limits, uniform leaf depth) and returns the first violation as
// a non-empty string, or "" when the tree is well formed. Tests use it.
func (t *Tree[B]) CheckInvariants() string {
	if t.root == nil {
		if t.size != 0 {
			return "empty root but non-zero size"
		}
		return ""
	}
	leafDepth := -1
	seen := 0
	var walk func(n *node[B], depth int) string
	walk = func(n *node[B], depth int) string {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return "leaves at different depths"
			}
			if len(n.entries) == 0 {
				return "empty leaf"
			}
			if len(n.entries) > t.maxEntries {
				return "leaf over fan-out"
			}
			seen += len(n.entries)
			for _, e := range n.entries {
				if !n.bounds.Contains(e.Box) {
					return "leaf bounds do not cover entry"
				}
			}
			return ""
		}
		if len(n.children) == 0 {
			return "internal node without children"
		}
		if len(n.children) > t.maxEntries {
			return "internal node over fan-out"
		}
		for _, c := range n.children {
			if !n.bounds.Contains(c.bounds) {
				return "node bounds do not cover child"
			}
			if msg := walk(c, depth+1); msg != "" {
				return msg
			}
		}
		return ""
	}
	if msg := walk(t.root, 0); msg != "" {
		return msg
	}
	if seen != t.size {
		return "size mismatch"
	}
	return ""
}
