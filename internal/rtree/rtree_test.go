package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randomRect(rng *rand.Rand) geom.Rect {
	x := rng.Float64() * 100
	y := rng.Float64() * 100
	return geom.NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
}

func randomPointEntries(rng *rand.Rand, n int) []Entry[geom.Rect] {
	entries := make([]Entry[geom.Rect], n)
	for i := range entries {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		entries[i] = Entry[geom.Rect]{Box: geom.RectFromPoint(p), ID: int32(i)}
	}
	return entries
}

func randomRectEntries(rng *rand.Rand, n int) []Entry[geom.Rect] {
	entries := make([]Entry[geom.Rect], n)
	for i := range entries {
		entries[i] = Entry[geom.Rect]{Box: randomRect(rng), ID: int32(i)}
	}
	return entries
}

// bruteSearch returns the sorted ids of entries intersecting q.
func bruteSearch(entries []Entry[geom.Rect], q geom.Rect) []int32 {
	var ids []int32
	for _, e := range entries {
		if e.Box.Intersects(q) {
			ids = append(ids, e.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func treeSearch(t *Tree[geom.Rect], q geom.Rect) []int32 {
	var ids []int32
	t.Search(q, func(e Entry[geom.Rect]) bool {
		ids = append(ids, e.ID)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBulkLoadSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(500)
		entries := randomRectEntries(rng, n)
		tr := BulkLoad(append([]Entry[geom.Rect](nil), entries...), 8)
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		if msg := tr.CheckInvariants(); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
		for q := 0; q < 20; q++ {
			query := randomRect(rng)
			if !equalIDs(treeSearch(tr, query), bruteSearch(entries, query)) {
				t.Fatalf("trial %d: search mismatch", trial)
			}
		}
	}
}

func TestInsertSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(300)
		entries := randomRectEntries(rng, n)
		tr := New[geom.Rect](6)
		for _, e := range entries {
			tr.Insert(e)
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		if msg := tr.CheckInvariants(); msg != "" {
			t.Fatalf("trial %d: %s", trial, msg)
		}
		for q := 0; q < 20; q++ {
			query := randomRect(rng)
			if !equalIDs(treeSearch(tr, query), bruteSearch(entries, query)) {
				t.Fatalf("trial %d: search mismatch after inserts", trial)
			}
		}
	}
}

func TestMixedBulkLoadTheInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	base := randomPointEntries(rng, 200)
	tr := BulkLoad(append([]Entry[geom.Rect](nil), base...), 8)
	extra := randomRectEntries(rng, 100)
	for i := range extra {
		extra[i].ID += 1000
		tr.Insert(extra[i])
	}
	all := append(append([]Entry[geom.Rect](nil), base...), extra...)
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	for q := 0; q < 40; q++ {
		query := randomRect(rng)
		if !equalIDs(treeSearch(tr, query), bruteSearch(all, query)) {
			t.Fatal("search mismatch after mixed build")
		}
	}
}

func TestSearchAnyAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	entries := randomPointEntries(rng, 400)
	tr := BulkLoad(entries, 0)
	for q := 0; q < 50; q++ {
		query := randomRect(rng)
		want := bruteSearch(entries, query)
		got, ok := tr.SearchAny(query)
		if ok != (len(want) > 0) {
			t.Fatalf("SearchAny ok = %v, want %v", ok, len(want) > 0)
		}
		if ok {
			found := false
			for _, id := range want {
				if id == got.ID {
					found = true
				}
			}
			if !found {
				t.Fatal("SearchAny returned non-matching entry")
			}
		}
		if tr.Count(query) != len(want) {
			t.Fatalf("Count = %d, want %d", tr.Count(query), len(want))
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	tr := BulkLoad[geom.Rect](nil, 0)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Error("empty tree stats wrong")
	}
	if _, ok := tr.SearchAny(geom.NewRect(0, 0, 1, 1)); ok {
		t.Error("empty tree found something")
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree has bounds")
	}

	tr.Insert(Entry[geom.Rect]{Box: geom.RectFromPoint(geom.Pt(5, 5)), ID: 9})
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Error("singleton tree stats wrong")
	}
	e, ok := tr.SearchAny(geom.NewRect(4, 4, 6, 6))
	if !ok || e.ID != 9 {
		t.Error("singleton search failed")
	}
	b, ok := tr.Bounds()
	if !ok || b != geom.RectFromPoint(geom.Pt(5, 5)) {
		t.Error("singleton bounds wrong")
	}
}

func TestAllVisitsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	entries := randomPointEntries(rng, 123)
	tr := BulkLoad(entries, 4)
	seen := make(map[int32]bool)
	tr.All(func(e Entry[geom.Rect]) bool {
		seen[e.ID] = true
		return true
	})
	if len(seen) != 123 {
		t.Errorf("All visited %d entries, want 123", len(seen))
	}
	count := 0
	tr.All(func(Entry[geom.Rect]) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early-stop All visited %d, want 5", count)
	}
}

func TestBox3Tree(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	var entries []Entry[geom.Box3]
	for i := 0; i < 300; i++ {
		p := geom.Pt3(rng.Float64()*100, rng.Float64()*100, float64(rng.Intn(1000)))
		entries = append(entries, Entry[geom.Box3]{Box: geom.Box3FromPoint(p), ID: int32(i)})
	}
	// Vertical segments too.
	for i := 300; i < 400; i++ {
		z := float64(rng.Intn(900))
		seg := geom.VerticalSegment(geom.Pt(rng.Float64()*100, rng.Float64()*100), z, z+float64(rng.Intn(100)))
		entries = append(entries, Entry[geom.Box3]{Box: seg, ID: int32(i)})
	}
	tr := BulkLoad(append([]Entry[geom.Box3](nil), entries...), 8)
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	for q := 0; q < 40; q++ {
		query := geom.Box3FromRect(randomRect(rng), float64(rng.Intn(1000)), float64(rng.Intn(1000)))
		want := make(map[int32]bool)
		for _, e := range entries {
			if e.Box.Intersects(query) {
				want[e.ID] = true
			}
		}
		got := make(map[int32]bool)
		tr.Search(query, func(e Entry[geom.Box3]) bool {
			got[e.ID] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("3D search: got %d, want %d", len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("3D search missing id %d", id)
			}
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	entries := randomPointEntries(rng, 500)
	full := BulkLoad(append([]Entry[geom.Rect](nil), entries...), 8)
	asPoints := BulkLoad(append([]Entry[geom.Rect](nil), entries...), 8)
	asPoints.SetLeafBoundBytes(16)
	if asPoints.MemoryBytes() >= full.MemoryBytes() {
		t.Errorf("point accounting %d >= rect accounting %d",
			asPoints.MemoryBytes(), full.MemoryBytes())
	}
	if full.NumNodes() <= 0 {
		t.Error("NumNodes not positive")
	}
}

func TestDuplicatePointsAndDegenerateData(t *testing.T) {
	// Many identical points must still build a valid tree.
	var entries []Entry[geom.Rect]
	for i := 0; i < 100; i++ {
		entries = append(entries, Entry[geom.Rect]{Box: geom.RectFromPoint(geom.Pt(1, 1)), ID: int32(i)})
	}
	tr := BulkLoad(entries, 4)
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if got := tr.Count(geom.NewRect(0, 0, 2, 2)); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	if got := tr.Count(geom.NewRect(2, 2, 3, 3)); got != 0 {
		t.Errorf("Count = %d, want 0", got)
	}
}

func TestEarlyTerminationStopsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	entries := randomPointEntries(rng, 1000)
	tr := BulkLoad(entries, 8)
	visits := 0
	completed := tr.Search(geom.NewRect(0, 0, 100, 100), func(Entry[geom.Rect]) bool {
		visits++
		return visits < 3
	})
	if completed || visits != 3 {
		t.Errorf("early termination: completed=%v visits=%d", completed, visits)
	}
}
