package rtree

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func gridEntries(n int) []Entry[geom.Rect] {
	entries := make([]Entry[geom.Rect], n)
	for i := range entries {
		x := float64(i%10) * 10
		y := float64(i/10) * 10
		entries[i] = Entry[geom.Rect]{Box: geom.NewRect(x, y, x+5, y+5), ID: int32(i)}
	}
	return entries
}

func wantValidateErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("want error containing %q, got: %v", substr, err)
	}
}

func TestValidateBulkLoaded(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 100, 1000} {
		tr := BulkLoad(gridEntries(n), 0)
		if err := tr.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestValidateAfterInserts(t *testing.T) {
	tr := New[geom.Rect](4)
	for _, e := range gridEntries(200) {
		tr.Insert(e)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateMBRExcludesEntry(t *testing.T) {
	tr := BulkLoad(gridEntries(100), 4)
	// Shrink the MBR of the first leaf to a point that cannot contain
	// its entries.
	n := tr.root
	for !n.leaf {
		n = n.children[0]
	}
	n.bounds = geom.NewRect(-1000, -1000, -999, -999)
	wantValidateErr(t, tr.Validate(), "does not contain")
}

func TestValidateMBRExcludesChild(t *testing.T) {
	tr := BulkLoad(gridEntries(1000), 4)
	if tr.root.leaf {
		t.Fatal("tree too shallow for the test")
	}
	tr.root.bounds = geom.NewRect(0, 0, 1, 1)
	wantValidateErr(t, tr.Validate(), "child")
}

func TestValidateSizeMismatch(t *testing.T) {
	tr := BulkLoad(gridEntries(50), 4)
	tr.size++
	wantValidateErr(t, tr.Validate(), "size")
}

func TestValidateUnbalanced(t *testing.T) {
	leaf := func(es ...Entry[geom.Rect]) *node[geom.Rect] {
		n := &node[geom.Rect]{leaf: true, entries: es}
		n.recomputeBounds()
		return n
	}
	a := leaf(Entry[geom.Rect]{Box: geom.NewRect(0, 0, 1, 1), ID: 1})
	b := leaf(Entry[geom.Rect]{Box: geom.NewRect(2, 2, 3, 3), ID: 2})
	mid := &node[geom.Rect]{children: []*node[geom.Rect]{b}}
	mid.recomputeBounds()
	root := &node[geom.Rect]{children: []*node[geom.Rect]{a, mid}}
	root.recomputeBounds()
	tr := &Tree[geom.Rect]{root: root, size: 2, maxEntries: 16, minEntries: 6}
	wantValidateErr(t, tr.Validate(), "not balanced")
}

func TestValidateMixedNode(t *testing.T) {
	tr := BulkLoad(gridEntries(100), 4)
	n := tr.root
	for !n.leaf {
		n = n.children[0]
	}
	// A leaf with children is structurally impossible; simulate it.
	n.children = []*node[geom.Rect]{{leaf: true}}
	wantValidateErr(t, tr.Validate(), "leaf node")
}

func TestValidateEmptyTree(t *testing.T) {
	if err := New[geom.Rect](0).Validate(); err != nil {
		t.Fatal(err)
	}
	tr := New[geom.Rect](0)
	tr.size = 3
	wantValidateErr(t, tr.Validate(), "nil root")
}
