package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/trace"
)

// Both implementations must keep satisfying the shared query interface
// the engines are typed against.
var (
	_ Searcher[geom.Rect] = (*Tree[geom.Rect])(nil)
	_ Searcher[geom.Rect] = (*Flat[geom.Rect])(nil)
	_ Searcher[geom.Box3] = (*Tree[geom.Box3])(nil)
	_ Searcher[geom.Box3] = (*Flat[geom.Box3])(nil)
)

func flatSearch(f *Flat[geom.Rect], q geom.Rect) []int32 {
	var ids []int32
	f.Search(q, func(e Entry[geom.Rect]) bool {
		ids = append(ids, e.ID)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestFlattenRoundTrip checks Flatten → Raw/Meta → NewFlat → queries:
// the rebuilt flat tree must answer every operation exactly like the
// pointer tree it came from, including the trace counters — the flat
// traversal must visit the same nodes in the same order.
func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 5, 16, 17, 100, 1000} {
		entries := randomRectEntries(rng, n)
		tree := BulkLoad(append([]Entry[geom.Rect](nil), entries...), 16)
		flat := Flatten(tree)
		if flat == nil {
			t.Fatalf("n=%d: Flatten returned nil", n)
		}
		nb, nm, eb, ids := flat.Raw()
		rebuilt, err := NewFlat[geom.Rect](flat.Meta(), nb, nm, eb, ids)
		if err != nil {
			t.Fatalf("n=%d: NewFlat: %v", n, err)
		}
		for _, f := range []*Flat[geom.Rect]{flat, rebuilt} {
			if f.Len() != tree.Len() || f.Height() != tree.Height() {
				t.Fatalf("n=%d: len/height %d/%d, want %d/%d", n, f.Len(), f.Height(), tree.Len(), tree.Height())
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("n=%d: Validate: %v", n, err)
			}
			fb, fok := f.Bounds()
			tb, tok := tree.Bounds()
			if fok != tok || (fok && fb != tb) {
				t.Fatalf("n=%d: Bounds %v/%v, want %v/%v", n, fb, fok, tb, tok)
			}
			var all []int32
			f.All(func(e Entry[geom.Rect]) bool { all = append(all, e.ID); return true })
			if len(all) != n {
				t.Fatalf("n=%d: All visited %d entries", n, len(all))
			}
			for q := 0; q < 50; q++ {
				query := randomRect(rng)
				want := treeSearch(tree, query)
				if got := flatSearch(f, query); !equalIDs(got, want) {
					t.Fatalf("n=%d query %v: flat %v, tree %v", n, query, got, want)
				}
				if got, want := f.Count(query), tree.Count(query); got != want {
					t.Fatalf("n=%d query %v: Count %d, want %d", n, query, got, want)
				}
				_, fAny := f.SearchAny(query)
				_, tAny := tree.SearchAny(query)
				if fAny != tAny {
					t.Fatalf("n=%d query %v: SearchAny %v, want %v", n, query, fAny, tAny)
				}
				var fs, ts trace.Span
				f.SearchTraced(query, &fs, func(Entry[geom.Rect]) bool { return true })
				tree.SearchTraced(query, &ts, func(Entry[geom.Rect]) bool { return true })
				if fs.Counters != ts.Counters {
					t.Fatalf("n=%d query %v: trace counters %+v, want %+v", n, query, fs.Counters, ts.Counters)
				}
			}
		}
	}
}

// TestFlattenEarlyStop checks that a callback returning false stops the
// flat traversal like it stops the pointer traversal.
func TestFlattenEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	entries := randomRectEntries(rng, 200)
	flat := Flatten(BulkLoad(entries, 16))
	seen := 0
	done := flat.Search(geom.NewRect(0, 0, 100, 100), func(Entry[geom.Rect]) bool {
		seen++
		return seen < 3
	})
	if done || seen != 3 {
		t.Fatalf("early stop: done=%v seen=%d, want false/3", done, seen)
	}
}

// TestNewFlatRejectsCorruption feeds NewFlat systematically damaged
// arrays; each must produce an error, never a panic or an accepted
// inconsistent tree.
func TestNewFlatRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := Flatten(BulkLoad(randomRectEntries(rng, 300), 16))

	check := func(name string, mutate func(meta *FlatMeta, nodeMeta []uint32)) {
		t.Run(name, func(t *testing.T) {
			meta := base.Meta()
			nb, nm, eb, ids := base.Raw()
			nm = append([]uint32(nil), nm...)
			mutate(&meta, nm)
			if _, err := NewFlat[geom.Rect](meta, nb, nm, eb, ids); err == nil {
				t.Fatal("corrupted arrays accepted")
			}
		})
	}

	check("size-mismatch", func(m *FlatMeta, _ []uint32) { m.Size++ })
	check("height-mismatch", func(m *FlatMeta, _ []uint32) { m.Height++ })
	check("fanout-too-small", func(m *FlatMeta, _ []uint32) { m.MaxEntries = 2 })
	check("fanout-huge", func(m *FlatMeta, _ []uint32) { m.MaxEntries = 1 << 24 })
	check("root-first-nonzero", func(_ *FlatMeta, nm []uint32) { nm[0]++ })
	check("leaf-bit-flip", func(_ *FlatMeta, nm []uint32) { nm[1] ^= 1 })
	check("count-zero", func(_ *FlatMeta, nm []uint32) {
		// Zero out a non-root node's count, breaking the ≥1 rule.
		nm[3] &^= ^uint32(1)
	})
	check("count-overflow", func(m *FlatMeta, nm []uint32) {
		nm[1] = (uint32(m.MaxEntries+1) << 1) | (nm[1] & 1)
	})
	check("run-out-of-order", func(_ *FlatMeta, nm []uint32) {
		// Shift a child run start so runs no longer tile the arrays.
		nm[2]++
	})

	t.Run("length-mismatch", func(t *testing.T) {
		meta := base.Meta()
		nb, nm, eb, ids := base.Raw()
		if _, err := NewFlat[geom.Rect](meta, nb[:len(nb)-2], nm, eb, ids); err == nil {
			t.Fatal("short nodeBounds accepted")
		}
		if _, err := NewFlat[geom.Rect](meta, nb, nm, eb, ids[:len(ids)-1]); err == nil {
			t.Fatal("short entryIDs accepted")
		}
		if _, err := NewFlat[geom.Rect](meta, nb, nm[:len(nm)-1], eb, ids); err == nil {
			t.Fatal("odd nodeMeta accepted")
		}
	})

	t.Run("empty", func(t *testing.T) {
		empty := Flatten(BulkLoad[geom.Rect](nil, 16))
		nb, nm, eb, ids := empty.Raw()
		f, err := NewFlat[geom.Rect](empty.Meta(), nb, nm, eb, ids)
		if err != nil {
			t.Fatalf("empty flat tree rejected: %v", err)
		}
		if f.Len() != 0 {
			t.Fatalf("empty flat tree has Len %d", f.Len())
		}
		if _, ok := f.Bounds(); ok {
			t.Fatal("empty flat tree reported bounds")
		}
	})
}

// TestFlatMemoryBytes sanity-checks the footprint accounting: nonzero,
// and growing with the entry count.
func TestFlatMemoryBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	small := Flatten(BulkLoad(randomRectEntries(rng, 50), 16))
	big := Flatten(BulkLoad(randomRectEntries(rng, 5000), 16))
	if small.MemoryBytes() <= 0 || big.MemoryBytes() <= small.MemoryBytes() {
		t.Fatalf("MemoryBytes small=%d big=%d", small.MemoryBytes(), big.MemoryBytes())
	}
}

// TestFlattenBox3 exercises the 3D instantiation end to end.
func TestFlattenBox3(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	entries := make([]Entry[geom.Box3], 500)
	for i := range entries {
		x, y, z := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
		entries[i] = Entry[geom.Box3]{Box: geom.NewBox3(x, y, z, x+1, y+1, z+1), ID: int32(i)}
	}
	tree := BulkLoad(append([]Entry[geom.Box3](nil), entries...), 16)
	flat := Flatten(tree)
	nb, nm, eb, ids := flat.Raw()
	rebuilt, err := NewFlat[geom.Box3](flat.Meta(), nb, nm, eb, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Validate(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		x, y, z := rng.Float64()*90, rng.Float64()*90, rng.Float64()*90
		query := geom.NewBox3(x, y, z, x+10, y+10, z+10)
		if got, want := rebuilt.Count(query), tree.Count(query); got != want {
			t.Fatalf("query %d: Count %d, want %d", q, got, want)
		}
	}
}
