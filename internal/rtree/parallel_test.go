package rtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/pool"
)

// dump renders the exact node structure — shapes, fan-outs and entry
// order — so two trees can be compared for structural identity, not just
// equal query answers.
func dump[B Bound[B]](t *Tree[B]) string {
	var out []byte
	var walk func(n *node[B], depth int)
	walk = func(n *node[B], depth int) {
		out = fmt.Appendf(out, "%d:%v[", depth, n.bounds)
		if n.leaf {
			for _, e := range n.entries {
				out = fmt.Appendf(out, "%d@%v,", e.ID, e.Box)
			}
		} else {
			for _, c := range n.children {
				walk(c, depth+1)
			}
		}
		out = append(out, ']')
	}
	if t.root != nil {
		walk(t.root, 0)
	}
	return string(out)
}

// TestBulkLoadPoolIdentical asserts that parallel STR packing produces a
// structurally identical tree to the sequential bulk load, for 2D rects
// and 3D boxes across fan-outs and sizes.
func TestBulkLoadPoolIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for _, n := range []int{0, 1, 15, 16, 17, 300, 2000} {
		for _, fanout := range []int{4, 8, 16} {
			entries := randomRectEntries(rng, n)
			seq := BulkLoad(append([]Entry[geom.Rect](nil), entries...), fanout)
			for _, par := range []int{2, 8} {
				got := BulkLoadPool(append([]Entry[geom.Rect](nil), entries...), fanout, pool.New(par))
				if msg := got.CheckInvariants(); msg != "" {
					t.Fatalf("n=%d fanout=%d par=%d: %s", n, fanout, par, msg)
				}
				if dump(got) != dump(seq) {
					t.Fatalf("n=%d fanout=%d par=%d: parallel tree differs from sequential", n, fanout, par)
				}
			}
		}
	}
}

func TestBulkLoadPoolIdenticalBox3(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	entries := make([]Entry[geom.Box3], 1500)
	for i := range entries {
		p := geom.Pt3(rng.Float64()*100, rng.Float64()*100, float64(rng.Intn(1000)))
		entries[i] = Entry[geom.Box3]{Box: geom.Box3FromPoint(p), ID: int32(i)}
	}
	seq := BulkLoad(append([]Entry[geom.Box3](nil), entries...), 8)
	for _, par := range []int{2, 8} {
		got := BulkLoadPool(append([]Entry[geom.Box3](nil), entries...), 8, pool.New(par))
		if msg := got.CheckInvariants(); msg != "" {
			t.Fatal(msg)
		}
		if dump(got) != dump(seq) {
			t.Fatalf("par=%d: parallel 3D tree differs from sequential", par)
		}
	}
}
