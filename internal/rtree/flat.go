package rtree

import (
	"fmt"

	"repro/internal/trace"
)

// Searcher is the read-only R-tree surface the query engines run on.
// Both the pointer-node Tree (built fresh) and the structure-of-arrays
// Flat (overlaid onto a persisted image) implement it, so an engine is
// oblivious to whether its spatial index was bulk-loaded or mmap'd.
type Searcher[B Bound[B]] interface {
	Len() int
	Height() int
	Search(query B, fn func(e Entry[B]) bool) bool
	SearchTraced(query B, sp *trace.Span, fn func(e Entry[B]) bool) bool
	SearchAny(query B) (Entry[B], bool)
	SearchAnyTraced(query B, sp *trace.Span) (Entry[B], bool)
	Count(query B) int
	All(fn func(e Entry[B]) bool) bool
	Bounds() (B, bool)
	MemoryBytes() int64
	Validate() error
}

// FlatBound is the bound constraint of the flat tree: a Bound that can
// round-trip through a flat float64 coordinate array (2·Dims values per
// bound; see geom.AppendCoords/FromCoords).
type FlatBound[B any] interface {
	Bound[B]
	AppendCoords(dst []float64) []float64
	FromCoords(src []float64) B
}

// Flat is a read-only R-tree in structure-of-arrays layout, the form
// the flat index format persists. Nodes are stored in BFS order with
// node 0 the root; a node's children (or a leaf's entries) occupy one
// contiguous run, so the whole tree is four flat arrays that overlay a
// file section without any per-node allocation:
//
//	nodeBounds  numNodes × 2d float64 — min corner, max corner
//	nodeMeta    numNodes × 2 uint32   — {first, count<<1 | leafBit}
//	entryBounds size × 2d float64     — leaf entry bounds
//	entryIDs    size int32            — leaf entry ids
//
// The canonical BFS layout makes structural validation linear and
// cycle-proof: node i's children all have indexes > i, child runs are
// exactly consecutive, and the arrays' lengths pin every count.
type Flat[B FlatBound[B]] struct {
	dims           int
	maxEntries     int
	height         int
	size           int
	leafBoundBytes int

	nodeBounds  []float64
	nodeMeta    []uint32
	entryBounds []float64
	entryIDs    []int32
}

// Flatten converts a pointer tree into its canonical flat form. The
// traversal is deterministic (BFS, children in stored order), so equal
// trees flatten to byte-identical arrays — the property the format's
// byte-determinism tests pin.
func Flatten[B FlatBound[B]](t *Tree[B]) *Flat[B] {
	var zero B
	f := &Flat[B]{
		dims:           zero.Dims(),
		maxEntries:     t.maxEntries,
		height:         t.Height(),
		size:           t.size,
		leafBoundBytes: t.leafBoundBytes,
	}
	if t.root == nil {
		return f
	}
	order := []*node[B]{t.root}
	for i := 0; i < len(order); i++ {
		order = append(order, order[i].children...)
	}
	stride := 2 * f.dims
	f.nodeBounds = make([]float64, 0, len(order)*stride)
	f.nodeMeta = make([]uint32, 0, len(order)*2)
	f.entryBounds = make([]float64, 0, t.size*stride)
	f.entryIDs = make([]int32, 0, t.size)
	childStart, entryStart := 1, 0
	for _, n := range order {
		f.nodeBounds = n.bounds.AppendCoords(f.nodeBounds)
		if n.leaf {
			f.nodeMeta = append(f.nodeMeta, uint32(entryStart), uint32(len(n.entries))<<1|1)
			for _, e := range n.entries {
				f.entryBounds = e.Box.AppendCoords(f.entryBounds)
				f.entryIDs = append(f.entryIDs, e.ID)
			}
			entryStart += len(n.entries)
			continue
		}
		f.nodeMeta = append(f.nodeMeta, uint32(childStart), uint32(len(n.children))<<1)
		childStart += len(n.children)
	}
	return f
}

// FlatMeta carries the scalar shape of a flat tree through a manifest.
type FlatMeta struct {
	MaxEntries     int
	Height         int
	Size           int
	LeafBoundBytes int
}

// Meta returns the manifest scalars of f.
func (f *Flat[B]) Meta() FlatMeta {
	return FlatMeta{
		MaxEntries:     f.maxEntries,
		Height:         f.height,
		Size:           f.size,
		LeafBoundBytes: f.leafBoundBytes,
	}
}

// Raw returns the four flat arrays for persistence. The slices alias
// the tree's storage and must not be mutated.
func (f *Flat[B]) Raw() (nodeBounds []float64, nodeMeta []uint32, entryBounds []float64, entryIDs []int32) {
	return f.nodeBounds, f.nodeMeta, f.entryBounds, f.entryIDs
}

// NewFlat assembles a flat tree from persisted arrays, validating the
// canonical-BFS structure exhaustively so that corrupt data can neither
// panic nor loop a later query: array lengths must agree with the
// element counts, child and entry runs must tile the arrays exactly in
// order, fan-out and balance must hold, and the stored height must
// match the leaf depth. Bound containment — the geometric invariant —
// is checked separately by Validate, mirroring Tree.
func NewFlat[B FlatBound[B]](meta FlatMeta, nodeBounds []float64, nodeMeta []uint32, entryBounds []float64, entryIDs []int32) (*Flat[B], error) {
	var zero B
	dims := zero.Dims()
	stride := 2 * dims
	if meta.MaxEntries < 4 || meta.MaxEntries > 1<<20 {
		return nil, fmt.Errorf("rtree: implausible fan-out %d", meta.MaxEntries)
	}
	if meta.Size < 0 || meta.Height < 0 {
		return nil, fmt.Errorf("rtree: negative size %d or height %d", meta.Size, meta.Height)
	}
	if len(nodeMeta)%2 != 0 {
		return nil, fmt.Errorf("rtree: node meta length %d is odd", len(nodeMeta))
	}
	numNodes := len(nodeMeta) / 2
	if len(nodeBounds) != numNodes*stride {
		return nil, fmt.Errorf("rtree: %d node bound values for %d nodes (stride %d)",
			len(nodeBounds), numNodes, stride)
	}
	if len(entryIDs) != meta.Size {
		return nil, fmt.Errorf("rtree: %d entry ids for size %d", len(entryIDs), meta.Size)
	}
	if len(entryBounds) != meta.Size*stride {
		return nil, fmt.Errorf("rtree: %d entry bound values for %d entries (stride %d)",
			len(entryBounds), meta.Size, stride)
	}
	if numNodes == 0 {
		if meta.Size != 0 || meta.Height != 0 {
			return nil, fmt.Errorf("rtree: empty node table with size %d height %d", meta.Size, meta.Height)
		}
		return &Flat[B]{
			dims: dims, maxEntries: meta.MaxEntries,
			leafBoundBytes: meta.LeafBoundBytes,
		}, nil
	}

	// Canonical BFS check: walking nodes in index order, internal child
	// runs must start exactly where the previous one ended (so every
	// node except the root is referenced exactly once, forward-only —
	// no cycles, no orphans), and leaf entry runs must tile the entry
	// arrays the same way.
	nextChild, nextEntry := uint32(1), uint32(0)
	for i := 0; i < numNodes; i++ {
		first, meta2 := nodeMeta[2*i], nodeMeta[2*i+1]
		count := int(meta2 >> 1)
		if count == 0 && numNodes > 1 {
			return nil, fmt.Errorf("rtree: empty non-root node %d", i)
		}
		if count > meta.MaxEntries {
			return nil, fmt.Errorf("rtree: node %d holds %d, fan-out is %d", i, count, meta.MaxEntries)
		}
		if meta2&1 == 1 {
			if first != nextEntry {
				return nil, fmt.Errorf("rtree: leaf %d entries start at %d, want %d", i, first, nextEntry)
			}
			nextEntry += uint32(count)
			if int(nextEntry) > meta.Size {
				return nil, fmt.Errorf("rtree: leaf %d entry run ends at %d, past size %d", i, nextEntry, meta.Size)
			}
			continue
		}
		if first != nextChild {
			return nil, fmt.Errorf("rtree: node %d children start at %d, want %d", i, first, nextChild)
		}
		nextChild += uint32(count)
		if int(nextChild) > numNodes {
			return nil, fmt.Errorf("rtree: node %d child run ends at %d, past %d nodes", i, nextChild, numNodes)
		}
	}
	if int(nextChild) != numNodes {
		return nil, fmt.Errorf("rtree: %d of %d nodes are reachable", nextChild, numNodes)
	}
	if int(nextEntry) != meta.Size {
		return nil, fmt.Errorf("rtree: leaf runs cover %d entries, size says %d", nextEntry, meta.Size)
	}

	f := &Flat[B]{
		dims:           dims,
		maxEntries:     meta.MaxEntries,
		height:         meta.Height,
		size:           meta.Size,
		leafBoundBytes: meta.LeafBoundBytes,
		nodeBounds:     nodeBounds,
		nodeMeta:       nodeMeta,
		entryBounds:    entryBounds,
		entryIDs:       entryIDs,
	}
	// Height must equal the first-child chain depth; the BFS layout
	// puts every leaf at the same depth automatically (child indexes
	// are level-ordered), so checking one chain pins balance.
	h := 0
	for i := uint32(0); ; {
		h++
		if nodeMeta[2*i+1]&1 == 1 {
			break
		}
		i = nodeMeta[2*i]
	}
	if h != meta.Height {
		return nil, fmt.Errorf("rtree: stored height %d, structure has %d levels", meta.Height, h)
	}
	return f, nil
}

// boundAt decodes node i's bound.
func (f *Flat[B]) boundAt(i uint32) B {
	var zero B
	return zero.FromCoords(f.nodeBounds[int(i)*2*f.dims:])
}

// entryAt decodes leaf entry j.
func (f *Flat[B]) entryAt(j uint32) Entry[B] {
	var zero B
	return Entry[B]{
		Box: zero.FromCoords(f.entryBounds[int(j)*2*f.dims:]),
		ID:  f.entryIDs[j],
	}
}

// Len implements Searcher.
func (f *Flat[B]) Len() int { return f.size }

// Height implements Searcher.
func (f *Flat[B]) Height() int { return f.height }

// Bounds implements Searcher.
func (f *Flat[B]) Bounds() (B, bool) {
	var zero B
	if len(f.nodeMeta) == 0 {
		return zero, false
	}
	return f.boundAt(0), true
}

// Search implements Searcher.
func (f *Flat[B]) Search(query B, fn func(e Entry[B]) bool) bool {
	return f.SearchTraced(query, nil, fn)
}

// SearchTraced implements Searcher. The traversal is an explicit-stack
// DFS over node indexes; the stack buffer lives on the goroutine stack
// for every realistic height×fan-out, keeping the hot path free of
// allocations like the pointer tree's recursion.
func (f *Flat[B]) SearchTraced(query B, sp *trace.Span, fn func(e Entry[B]) bool) bool {
	if len(f.nodeMeta) == 0 {
		return true
	}
	var buf [128]uint32
	stack := buf[:0]
	stack = append(stack, 0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !f.boundAt(i).Intersects(query) {
			continue
		}
		first, meta := f.nodeMeta[2*i], f.nodeMeta[2*i+1]
		count := meta >> 1
		if meta&1 == 1 {
			sp.IncLeaf()
			sp.AddEntries(int(count))
			for j := first; j < first+count; j++ {
				e := f.entryAt(j)
				if e.Box.Intersects(query) && !fn(e) {
					return false
				}
			}
			continue
		}
		sp.IncNode()
		// Push in reverse so children pop in stored order, matching the
		// pointer tree's visit order exactly.
		for c := first + count; c > first; c-- {
			stack = append(stack, c-1)
		}
	}
	return true
}

// SearchAny implements Searcher.
func (f *Flat[B]) SearchAny(query B) (Entry[B], bool) {
	return f.SearchAnyTraced(query, nil)
}

// SearchAnyTraced implements Searcher.
func (f *Flat[B]) SearchAnyTraced(query B, sp *trace.Span) (found Entry[B], ok bool) {
	f.SearchTraced(query, sp, func(e Entry[B]) bool {
		found, ok = e, true
		return false
	})
	return found, ok
}

// Count implements Searcher.
func (f *Flat[B]) Count(query B) int {
	count := 0
	f.Search(query, func(Entry[B]) bool {
		count++
		return true
	})
	return count
}

// All implements Searcher.
func (f *Flat[B]) All(fn func(e Entry[B]) bool) bool {
	for j := 0; j < f.size; j++ {
		if !fn(f.entryAt(uint32(j))) {
			return false
		}
	}
	return true
}

// MemoryBytes implements Searcher with the same accounting as the
// pointer tree (Table 4): per node one full bound, per leaf entry the
// (possibly overridden) leaf bound payload plus a 4-byte id, per child
// reference 4 bytes of index — the flat analogue of the child pointer.
func (f *Flat[B]) MemoryBytes() int64 {
	numNodes := len(f.nodeMeta) / 2
	if numNodes == 0 {
		return 0
	}
	full := 16 * f.dims
	leafBytes := f.leafBoundBytes
	if leafBytes <= 0 {
		leafBytes = full
	}
	total := int64(numNodes) * int64(full)
	total += int64(f.size) * int64(leafBytes+4)
	for i := 0; i < numNodes; i++ {
		if f.nodeMeta[2*i+1]&1 == 0 {
			total += int64(f.nodeMeta[2*i+1]>>1) * 8
		}
	}
	return total
}

// NumNodes returns the number of nodes.
func (f *Flat[B]) NumNodes() int { return len(f.nodeMeta) / 2 }

// Validate deep-checks the geometric invariant NewFlat defers: every
// node's bound contains its children's bounds (entry bounds in leaves).
// Structure (tiling, fan-out, balance) was already pinned by NewFlat,
// which is the only constructor from untrusted data.
func (f *Flat[B]) Validate() error {
	for i := 0; i < len(f.nodeMeta)/2; i++ {
		b := f.boundAt(uint32(i))
		first, meta := f.nodeMeta[2*i], f.nodeMeta[2*i+1]
		count := meta >> 1
		if meta&1 == 1 {
			for j := first; j < first+count; j++ {
				if !b.Contains(f.entryAt(j).Box) {
					return fmt.Errorf("rtree: leaf %d bound does not contain entry %d", i, j)
				}
			}
			continue
		}
		for c := first; c < first+count; c++ {
			if !b.Contains(f.boundAt(c)) {
				return fmt.Errorf("rtree: node %d bound does not contain child %d", i, c)
			}
		}
	}
	return nil
}
