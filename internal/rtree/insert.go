package rtree

// Insert adds an entry to the tree (Guttman: ChooseLeaf by minimal
// enlargement, quadratic split on overflow). Dynamic insertion lets the
// library support the paper's future-work scenario of network updates
// without rebuilding the spatial indexes.
func (t *Tree[B]) Insert(e Entry[B]) {
	t.size++
	if t.root == nil {
		t.root = &node[B]{leaf: true, entries: []Entry[B]{e}, bounds: e.Box}
		return
	}
	split := t.insert(t.root, e)
	if split != nil {
		old := t.root
		t.root = &node[B]{children: []*node[B]{old, split}}
		t.root.recomputeBounds()
	}
}

// insert places e below n and returns a new sibling of n if n overflowed
// and was split, or nil.
func (t *Tree[B]) insert(n *node[B], e Entry[B]) *node[B] {
	n.bounds = n.bounds.Union(e.Box)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitLeaf(n)
		}
		return nil
	}
	child := chooseSubtree(n.children, e.Box)
	split := t.insert(child, e)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.maxEntries {
			return t.splitInternal(n)
		}
	}
	return nil
}

// chooseSubtree picks the child requiring the least enlargement to cover
// box, breaking ties by smaller measure.
func chooseSubtree[B Bound[B]](children []*node[B], box B) *node[B] {
	best := children[0]
	bestEnl := best.bounds.Enlargement(box)
	bestMeasure := best.bounds.Measure()
	for _, c := range children[1:] {
		enl := c.bounds.Enlargement(box)
		if enl < bestEnl || (enl == bestEnl && c.bounds.Measure() < bestMeasure) {
			best, bestEnl, bestMeasure = c, enl, c.bounds.Measure()
		}
	}
	return best
}

// splitLeaf splits an overflowing leaf with the quadratic algorithm and
// returns the new sibling.
func (t *Tree[B]) splitLeaf(n *node[B]) *node[B] {
	boxes := make([]B, len(n.entries))
	for i, e := range n.entries {
		boxes[i] = e.Box
	}
	groupA, groupB := quadraticSplit(boxes, t.minEntries)
	entries := n.entries
	n.entries = pick(entries, groupA)
	sib := &node[B]{leaf: true, entries: pick(entries, groupB)}
	n.recomputeBounds()
	sib.recomputeBounds()
	return sib
}

// splitInternal splits an overflowing internal node.
func (t *Tree[B]) splitInternal(n *node[B]) *node[B] {
	boxes := make([]B, len(n.children))
	for i, c := range n.children {
		boxes[i] = c.bounds
	}
	groupA, groupB := quadraticSplit(boxes, t.minEntries)
	children := n.children
	n.children = pick(children, groupA)
	sib := &node[B]{children: pick(children, groupB)}
	n.recomputeBounds()
	sib.recomputeBounds()
	return sib
}

func pick[T any](items []T, idx []int) []T {
	out := make([]T, 0, len(idx))
	for _, i := range idx {
		out = append(out, items[i])
	}
	return out
}

// quadraticSplit partitions the indexes of boxes into two groups using
// Guttman's quadratic seeds + least-enlargement assignment, ensuring each
// group receives at least minEntries members.
func quadraticSplit[B Bound[B]](boxes []B, minEntries int) (groupA, groupB []int) {
	if minEntries < 1 {
		minEntries = 1
	}
	// Seeds: the pair wasting the most measure when combined.
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			waste := boxes[i].Union(boxes[j]).Measure() - boxes[i].Measure() - boxes[j].Measure()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	groupA = append(groupA, seedA)
	groupB = append(groupB, seedB)
	boundsA, boundsB := boxes[seedA], boxes[seedB]

	rest := make([]int, 0, len(boxes)-2)
	for i := range boxes {
		if i != seedA && i != seedB {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// If one group must absorb the remainder to reach minEntries, do so.
		if len(groupA)+len(rest) <= minEntries {
			groupA = append(groupA, rest...)
			break
		}
		if len(groupB)+len(rest) <= minEntries {
			groupB = append(groupB, rest...)
			break
		}
		// Pick the member with the strongest preference.
		bestIdx, bestDiff, bestPos := -1, -1.0, 0
		for pos, i := range rest {
			dA := boundsA.Enlargement(boxes[i])
			dB := boundsB.Enlargement(boxes[i])
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx, bestPos = diff, i, pos
			}
		}
		rest = append(rest[:bestPos], rest[bestPos+1:]...)
		dA := boundsA.Enlargement(boxes[bestIdx])
		dB := boundsB.Enlargement(boxes[bestIdx])
		toA := dA < dB
		if dA == dB {
			toA = boundsA.Measure() < boundsB.Measure()
			if boundsA.Measure() == boundsB.Measure() {
				toA = len(groupA) <= len(groupB)
			}
		}
		if toA {
			groupA = append(groupA, bestIdx)
			boundsA = boundsA.Union(boxes[bestIdx])
		} else {
			groupB = append(groupB, bestIdx)
			boundsB = boundsB.Union(boxes[bestIdx])
		}
	}
	return groupA, groupB
}
