// Package rtree implements an in-memory R-tree over 2D rectangles or 3D
// boxes, replacing the Boost R-tree the paper uses (§6.1). It backs every
// spatial index of the library: the 2D point index of SpaReach, the 3D
// point index of 3DReach and the 3D vertical-segment index of
// 3DReach-Rev, as well as the MBR-based variants of all three (paper §5).
//
// Construction is Sort-Tile-Recursive (STR) bulk loading; dynamic
// insertion uses Guttman's ChooseLeaf with quadratic node splitting.
// Search supports early termination, which RangeReach evaluation relies
// on: a query stops at the first witness.
package rtree

import (
	"math"
	"sort"

	"repro/internal/pool"
	"repro/internal/trace"
)

// Bound abstracts the axis-aligned bounding shapes the tree can index.
// geom.Rect and geom.Box3 implement it.
type Bound[B any] interface {
	Union(B) B
	Enlargement(B) float64
	Intersects(B) bool
	Contains(B) bool
	Measure() float64
	Margin() float64
	Dims() int
	CenterCoord(d int) float64
}

// Entry is a leaf record: a bounding shape plus the caller's identifier
// (in this library, a vertex id or a post-order number).
type Entry[B Bound[B]] struct {
	Box B
	ID  int32
}

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 16

// Tree is an R-tree over bounds of type B.
type Tree[B Bound[B]] struct {
	root       *node[B]
	size       int
	maxEntries int
	minEntries int
	// leafBoundBytes overrides the per-leaf-entry bound size used by
	// MemoryBytes; see SetLeafBoundBytes.
	leafBoundBytes int
}

type node[B Bound[B]] struct {
	bounds   B
	leaf     bool
	entries  []Entry[B] // populated iff leaf
	children []*node[B] // populated iff !leaf
}

// New returns an empty tree with the given fan-out (0 selects
// DefaultMaxEntries).
func New[B Bound[B]](maxEntries int) *Tree[B] {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree[B]{maxEntries: maxEntries, minEntries: maxEntries * 2 / 5}
}

// BulkLoad builds a tree over the given entries using Sort-Tile-Recursive
// packing. The entries slice is reordered in place. A fan-out of 0
// selects DefaultMaxEntries.
func BulkLoad[B Bound[B]](entries []Entry[B], maxEntries int) *Tree[B] {
	return BulkLoadPool(entries, maxEntries, nil)
}

// BulkLoadPool is BulkLoad with a worker pool: the top-level STR slabs
// tile concurrently and leaf bounds are computed concurrently. A nil or
// sequential pool is exactly BulkLoad. The tree is identical either way:
// slab boundaries are fixed by the (sequential) top-level sort, each slab
// runs the same per-slab code over its own disjoint sub-slice, and the
// leaf groups are concatenated in slab order.
func BulkLoadPool[B Bound[B]](entries []Entry[B], maxEntries int, p *pool.Pool) *Tree[B] {
	t := New[B](maxEntries)
	if len(entries) == 0 {
		return t
	}
	t.size = len(entries)
	leaves := strPack(entries, t.maxEntries, p)
	nodes := make([]*node[B], len(leaves))
	makeLeaf := func(i int) {
		n := &node[B]{leaf: true, entries: leaves[i]}
		n.recomputeBounds()
		nodes[i] = n
	}
	if p.Sequential() {
		for i := range leaves {
			makeLeaf(i)
		}
	} else {
		_ = p.ForEach(len(leaves), func(i int) error { makeLeaf(i); return nil })
	}
	// Pack upper levels until a single root remains. Upper levels hold
	// ~1/maxEntries of the nodes below; not worth fanning out.
	for len(nodes) > 1 {
		nodes = packLevel(nodes, t.maxEntries)
	}
	t.root = nodes[0]
	return t
}

// strPack tiles entries into leaf groups of at most maxEntries using the
// STR algorithm, recursing over the dimensions of B. Top-level slabs may
// tile in parallel; each returns its own leaf groups and the results are
// concatenated in slab order, so the output is independent of p.
func strPack[B Bound[B]](entries []Entry[B], maxEntries int, p *pool.Pool) [][]Entry[B] {
	var tile func(es []Entry[B], dim int) [][]Entry[B]
	dims := entries[0].Box.Dims()
	tile = func(es []Entry[B], dim int) [][]Entry[B] {
		sort.Slice(es, func(i, j int) bool {
			return es[i].Box.CenterCoord(dim) < es[j].Box.CenterCoord(dim)
		})
		if dim == dims-1 || len(es) <= maxEntries {
			groups := make([][]Entry[B], 0, (len(es)+maxEntries-1)/maxEntries)
			for i := 0; i < len(es); i += maxEntries {
				end := i + maxEntries
				if end > len(es) {
					end = len(es)
				}
				groups = append(groups, es[i:end:end])
			}
			return groups
		}
		leafCount := (len(es) + maxEntries - 1) / maxEntries
		slabs := int(math.Ceil(math.Pow(float64(leafCount), 1/float64(dims-dim))))
		if slabs < 1 {
			slabs = 1
		}
		per := (len(es) + slabs - 1) / slabs
		var subs [][]Entry[B]
		for i := 0; i < len(es); i += per {
			end := i + per
			if end > len(es) {
				end = len(es)
			}
			subs = append(subs, es[i:end:end])
		}
		if dim == 0 && !p.Sequential() && len(subs) > 1 {
			results := make([][][]Entry[B], len(subs))
			_ = p.ForEach(len(subs), func(i int) error {
				results[i] = tile(subs[i], dim+1)
				return nil
			})
			var out [][]Entry[B]
			for _, r := range results {
				out = append(out, r...)
			}
			return out
		}
		var out [][]Entry[B]
		for _, sub := range subs {
			out = append(out, tile(sub, dim+1)...)
		}
		return out
	}
	return tile(entries, 0)
}

// packLevel groups child nodes into parents of at most maxEntries,
// ordered by the first center coordinate.
func packLevel[B Bound[B]](nodes []*node[B], maxEntries int) []*node[B] {
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].bounds.CenterCoord(0) < nodes[j].bounds.CenterCoord(0)
	})
	var parents []*node[B]
	for i := 0; i < len(nodes); i += maxEntries {
		end := i + maxEntries
		if end > len(nodes) {
			end = len(nodes)
		}
		p := &node[B]{children: append([]*node[B](nil), nodes[i:end]...)}
		p.recomputeBounds()
		parents = append(parents, p)
	}
	return parents
}

func (n *node[B]) recomputeBounds() {
	if n.leaf {
		b := n.entries[0].Box
		for _, e := range n.entries[1:] {
			b = b.Union(e.Box)
		}
		n.bounds = b
		return
	}
	b := n.children[0].bounds
	for _, c := range n.children[1:] {
		b = b.Union(c.bounds)
	}
	n.bounds = b
}

// Len returns the number of stored entries.
func (t *Tree[B]) Len() int { return t.size }

// Height returns the number of levels in the tree (0 when empty).
func (t *Tree[B]) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return h
}

// Search calls fn for every entry whose bound intersects query. If fn
// returns false the search stops immediately and Search returns false;
// otherwise it returns true after visiting all intersecting entries.
func (t *Tree[B]) Search(query B, fn func(e Entry[B]) bool) bool {
	return t.SearchTraced(query, nil, fn)
}

// SearchTraced is Search with per-node instrumentation: expanded
// internal nodes, expanded leaves and tested leaf entries accumulate
// into sp. A nil sp makes it exactly Search — the counting hooks reduce
// to one predictable branch per node.
func (t *Tree[B]) SearchTraced(query B, sp *trace.Span, fn func(e Entry[B]) bool) bool {
	if t.root == nil {
		return true
	}
	return t.root.search(query, sp, fn)
}

func (n *node[B]) search(query B, sp *trace.Span, fn func(e Entry[B]) bool) bool {
	if !n.bounds.Intersects(query) {
		return true
	}
	if n.leaf {
		sp.IncLeaf()
		sp.AddEntries(len(n.entries))
		for _, e := range n.entries {
			if e.Box.Intersects(query) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	sp.IncNode()
	for _, c := range n.children {
		if !c.search(query, sp, fn) {
			return false
		}
	}
	return true
}

// SearchAny returns some entry intersecting query, or ok=false if none
// exists. It is the primitive RangeReach engines use: the query needs a
// single witness. SearchAny short-circuits aggressively — a node whose
// bounds are fully contained in the query yields its first entry without
// descending further comparisons.
func (t *Tree[B]) SearchAny(query B) (found Entry[B], ok bool) {
	return t.SearchAnyTraced(query, nil)
}

// SearchAnyTraced is SearchAny with instrumentation (see SearchTraced).
func (t *Tree[B]) SearchAnyTraced(query B, sp *trace.Span) (found Entry[B], ok bool) {
	t.SearchTraced(query, sp, func(e Entry[B]) bool {
		found, ok = e, true
		return false
	})
	return found, ok
}

// Count returns the number of entries intersecting query.
func (t *Tree[B]) Count(query B) int {
	count := 0
	t.Search(query, func(Entry[B]) bool {
		count++
		return true
	})
	return count
}

// All calls fn for every entry in the tree.
func (t *Tree[B]) All(fn func(e Entry[B]) bool) bool {
	if t.root == nil {
		return true
	}
	return t.root.all(fn)
}

func (n *node[B]) all(fn func(e Entry[B]) bool) bool {
	if n.leaf {
		for _, e := range n.entries {
			if !fn(e) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !c.all(fn) {
			return false
		}
	}
	return true
}

// Bounds returns the bounding shape of the whole tree and whether the
// tree is non-empty.
func (t *Tree[B]) Bounds() (B, bool) {
	var zero B
	if t.root == nil {
		return zero, false
	}
	return t.root.bounds, true
}
