package geom

import "testing"

func TestBoundInterfaceMethods(t *testing.T) {
	r := NewRect(0, 0, 4, 2)
	if r.Dims() != 2 {
		t.Error("Rect.Dims != 2")
	}
	if r.Measure() != r.Area() {
		t.Error("Rect.Measure != Area")
	}
	if !r.Contains(NewRect(1, 1, 2, 2)) || r.Contains(NewRect(3, 1, 5, 2)) {
		t.Error("Rect.Contains wrong")
	}
	if r.CenterCoord(0) != 2 || r.CenterCoord(1) != 1 {
		t.Error("Rect.CenterCoord wrong")
	}

	b := NewBox3(0, 0, 0, 4, 2, 6)
	if b.Dims() != 3 {
		t.Error("Box3.Dims != 3")
	}
	if b.Measure() != b.Volume() {
		t.Error("Box3.Measure != Volume")
	}
	if !b.Contains(NewBox3(1, 1, 1, 2, 2, 2)) || b.Contains(NewBox3(1, 1, 5, 2, 2, 7)) {
		t.Error("Box3.Contains wrong")
	}
	if b.CenterCoord(0) != 2 || b.CenterCoord(1) != 1 || b.CenterCoord(2) != 3 {
		t.Error("Box3.CenterCoord wrong")
	}
}

func TestBox3FromPointAndEnlargement(t *testing.T) {
	p := Pt3(1, 2, 3)
	b := Box3FromPoint(p)
	if b.Min != p || b.Max != p {
		t.Errorf("Box3FromPoint = %v", b)
	}
	if b.Volume() != 0 {
		t.Error("degenerate box has volume")
	}
	base := NewBox3(0, 0, 0, 2, 2, 2)
	if got := base.Enlargement(NewBox3(1, 1, 1, 2, 2, 2)); got != 0 {
		t.Errorf("Enlargement(contained) = %g", got)
	}
	if got := base.Enlargement(NewBox3(0, 0, 0, 4, 2, 2)); got != 8 {
		t.Errorf("Enlargement = %g, want 8", got)
	}
}
