package geom

import (
	"fmt"
	"math"
)

// Point3 is a point in the three-dimensional space used by the 3DReach
// transformation: X and Y are the original spatial coordinates and Z holds
// a post-order number from the interval-based labeling.
type Point3 struct {
	X, Y, Z float64
}

// Pt3 is shorthand for Point3{x, y, z}.
func Pt3(x, y, z float64) Point3 { return Point3{X: x, Y: y, Z: z} }

// String implements fmt.Stringer.
func (p Point3) String() string { return fmt.Sprintf("(%g, %g, %g)", p.X, p.Y, p.Z) }

// Box3 is an axis-aligned box (rectangular cuboid) in three dimensions.
// RangeReach queries are rewritten by 3DReach into Box3 range searches
// whose base is the query region and whose Z extent is an interval label.
type Box3 struct {
	Min, Max Point3
}

// NewBox3 returns the box spanned by two arbitrary corner points.
func NewBox3(x1, y1, z1, x2, y2, z2 float64) Box3 {
	return Box3{
		Min: Point3{math.Min(x1, x2), math.Min(y1, y2), math.Min(z1, z2)},
		Max: Point3{math.Max(x1, x2), math.Max(y1, y2), math.Max(z1, z2)},
	}
}

// Box3FromPoint returns the degenerate box covering exactly p.
func Box3FromPoint(p Point3) Box3 { return Box3{Min: p, Max: p} }

// Box3FromRect lifts a 2D rectangle into 3D, spanning [zlo, zhi] on the
// third axis. This is exactly the cuboid a 3DReach label query uses.
func Box3FromRect(r Rect, zlo, zhi float64) Box3 {
	return Box3{
		Min: Point3{r.Min.X, r.Min.Y, math.Min(zlo, zhi)},
		Max: Point3{r.Max.X, r.Max.Y, math.Max(zlo, zhi)},
	}
}

// VerticalSegment returns the degenerate box that models a spatial vertex
// under the reversed labeling of 3DReach-Rev: a vertical line segment at
// (x, y) spanning [zlo, zhi].
func VerticalSegment(p Point, zlo, zhi float64) Box3 {
	return NewBox3(p.X, p.Y, zlo, p.X, p.Y, zhi)
}

// Valid reports whether b.Min is component-wise no greater than b.Max.
func (b Box3) Valid() bool {
	return b.Min.X <= b.Max.X && b.Min.Y <= b.Max.Y && b.Min.Z <= b.Max.Z
}

// Rect returns the projection of b onto the XY plane.
func (b Box3) Rect() Rect {
	return Rect{Min: Point{b.Min.X, b.Min.Y}, Max: Point{b.Max.X, b.Max.Y}}
}

// Volume returns the volume of b.
func (b Box3) Volume() float64 {
	return (b.Max.X - b.Min.X) * (b.Max.Y - b.Min.Y) * (b.Max.Z - b.Min.Z)
}

// Margin returns the sum of the three edge lengths of b, the 3D analogue
// of Rect.Margin.
func (b Box3) Margin() float64 {
	return (b.Max.X - b.Min.X) + (b.Max.Y - b.Min.Y) + (b.Max.Z - b.Min.Z)
}

// ContainsPoint reports whether p lies inside b (boundary inclusive).
func (b Box3) ContainsPoint(p Point3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// ContainsBox reports whether c lies entirely inside b.
func (b Box3) ContainsBox(c Box3) bool {
	return c.Min.X >= b.Min.X && c.Max.X <= b.Max.X &&
		c.Min.Y >= b.Min.Y && c.Max.Y <= b.Max.Y &&
		c.Min.Z >= b.Min.Z && c.Max.Z <= b.Max.Z
}

// Intersects reports whether b and c share at least one point.
func (b Box3) Intersects(c Box3) bool {
	return b.Min.X <= c.Max.X && c.Min.X <= b.Max.X &&
		b.Min.Y <= c.Max.Y && c.Min.Y <= b.Max.Y &&
		b.Min.Z <= c.Max.Z && c.Min.Z <= b.Max.Z
}

// Union returns the smallest box covering both b and c.
func (b Box3) Union(c Box3) Box3 {
	return Box3{
		Min: Point3{
			math.Min(b.Min.X, c.Min.X),
			math.Min(b.Min.Y, c.Min.Y),
			math.Min(b.Min.Z, c.Min.Z),
		},
		Max: Point3{
			math.Max(b.Max.X, c.Max.X),
			math.Max(b.Max.Y, c.Max.Y),
			math.Max(b.Max.Z, c.Max.Z),
		},
	}
}

// Enlargement returns how much b's volume grows when extended to cover c.
func (b Box3) Enlargement(c Box3) float64 {
	return b.Union(c).Volume() - b.Volume()
}

// String implements fmt.Stringer.
func (b Box3) String() string {
	return fmt.Sprintf("[%g, %g]x[%g, %g]x[%g, %g]",
		b.Min.X, b.Max.X, b.Min.Y, b.Max.Y, b.Min.Z, b.Max.Z)
}

// EmptyBox3 returns the identity element for Union.
func EmptyBox3() Box3 {
	return Box3{
		Min: Point3{math.Inf(1), math.Inf(1), math.Inf(1)},
		Max: Point3{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
	}
}

// IsEmpty reports whether b is the empty box (or otherwise inverted).
func (b Box3) IsEmpty() bool { return !b.Valid() }
