package geom

// Flat coordinate round-trips for the structure-of-arrays layouts of
// the flat index format: a bound of d dimensions serializes to 2d
// float64s, min corner then max corner, axis-major. The generic flat
// R-tree constrains its bound type to exactly these two methods (see
// rtree.FlatBound).

// AppendCoords appends r's corners to dst as MinX, MinY, MaxX, MaxY.
func (r Rect) AppendCoords(dst []float64) []float64 {
	return append(dst, r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
}

// FromCoords rebuilds a Rect from the first four values of src, the
// inverse of AppendCoords. The receiver is ignored; it exists so the
// method is available on a generic zero value.
func (Rect) FromCoords(src []float64) Rect {
	return Rect{
		Min: Point{X: src[0], Y: src[1]},
		Max: Point{X: src[2], Y: src[3]},
	}
}

// AppendCoords appends b's corners to dst as MinX, MinY, MinZ, MaxX,
// MaxY, MaxZ.
func (b Box3) AppendCoords(dst []float64) []float64 {
	return append(dst, b.Min.X, b.Min.Y, b.Min.Z, b.Max.X, b.Max.Y, b.Max.Z)
}

// FromCoords rebuilds a Box3 from the first six values of src, the
// inverse of AppendCoords. The receiver is ignored.
func (Box3) FromCoords(src []float64) Box3 {
	return Box3{
		Min: Point3{X: src[0], Y: src[1], Z: src[2]},
		Max: Point3{X: src[3], Y: src[4], Z: src[5]},
	}
}
