// Package geom provides the geometric primitives used throughout the
// geosocial reachability library: two-dimensional points and rectangles,
// and the three-dimensional boxes and vertical segments that back the
// 3DReach transformation.
//
// All coordinates are float64. Rectangles and boxes are closed on every
// side: a point on the boundary is contained.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the two-dimensional plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle in the plane, described by its
// minimum and maximum corners. A Rect with Min == Max degenerates to a
// point, which is still a valid (empty-area) rectangle.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanned by two arbitrary corner points,
// normalizing the corner order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		Min: Point{math.Min(x1, x2), math.Min(y1, y2)},
		Max: Point{math.Max(x1, x2), math.Max(y1, y2)},
	}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect { return Rect{Min: p, Max: p} }

// Valid reports whether r.Min is component-wise no greater than r.Max.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// ContainsPoint reports whether p lies inside r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// UnionPoint returns the smallest rectangle covering r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Enlargement returns how much r's area grows when extended to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Margin returns half the perimeter of r, a common R-tree split metric.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g, %g]x[%g, %g]", r.Min.X, r.Max.X, r.Min.Y, r.Max.Y)
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and disappears when united with any valid rectangle.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// IsEmpty reports whether r is the empty rectangle (or otherwise inverted).
func (r Rect) IsEmpty() bool { return !r.Valid() }
