package geom

// The methods in this file give Rect and Box3 a common shape so that the
// generic R-tree in internal/rtree can index either: see rtree.Bound.

// Dims returns 2, the dimensionality of a Rect.
func (Rect) Dims() int { return 2 }

// Measure returns the area of r (the generic analogue of volume).
func (r Rect) Measure() float64 { return r.Area() }

// Contains reports whether s lies entirely inside r (alias of
// ContainsRect, shared with Box3.Contains for the generic R-tree).
func (r Rect) Contains(s Rect) bool { return r.ContainsRect(s) }

// CenterCoord returns the center coordinate of r along dimension d
// (0 = x, 1 = y).
func (r Rect) CenterCoord(d int) float64 {
	if d == 0 {
		return (r.Min.X + r.Max.X) / 2
	}
	return (r.Min.Y + r.Max.Y) / 2
}

// Dims returns 3, the dimensionality of a Box3.
func (Box3) Dims() int { return 3 }

// Measure returns the volume of b.
func (b Box3) Measure() float64 { return b.Volume() }

// Contains reports whether c lies entirely inside b (alias of
// ContainsBox, shared with Rect.Contains for the generic R-tree).
func (b Box3) Contains(c Box3) bool { return b.ContainsBox(c) }

// CenterCoord returns the center coordinate of b along dimension d
// (0 = x, 1 = y, 2 = z).
func (b Box3) CenterCoord(d int) float64 {
	switch d {
	case 0:
		return (b.Min.X + b.Max.X) / 2
	case 1:
		return (b.Min.Y + b.Max.Y) / 2
	default:
		return (b.Min.Z + b.Max.Z) / 2
	}
}
