package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(3, 7, 1, 2) // corners given out of order
	if r.Min != Pt(1, 2) || r.Max != Pt(3, 7) {
		t.Fatalf("NewRect normalization: got %v", r)
	}
	if got := r.Width(); got != 2 {
		t.Errorf("Width = %g, want 2", got)
	}
	if got := r.Height(); got != 5 {
		t.Errorf("Height = %g, want 5", got)
	}
	if got := r.Area(); got != 10 {
		t.Errorf("Area = %g, want 10", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %g, want 7", got)
	}
	if got := r.Center(); got != Pt(2, 4.5) {
		t.Errorf("Center = %v, want (2, 4.5)", got)
	}
}

func TestRectContainsPoint(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},   // boundary inclusive
		{Pt(10, 10), true}, // boundary inclusive
		{Pt(10, 0), true},
		{Pt(-0.001, 5), false},
		{Pt(5, 10.001), false},
	}
	for _, tc := range tests {
		if got := r.ContainsPoint(tc.p); got != tc.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 5, 5)
	tests := []struct {
		b    Rect
		want bool
	}{
		{NewRect(4, 4, 6, 6), true},
		{NewRect(5, 5, 6, 6), true}, // touch at corner counts
		{NewRect(6, 6, 7, 7), false},
		{NewRect(1, 1, 2, 2), true}, // contained
		{NewRect(-1, -1, 6, 6), true},
		{NewRect(0, 6, 5, 7), false},
	}
	for _, tc := range tests {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("Intersects not symmetric for %v", tc.b)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	if !a.ContainsRect(NewRect(0, 0, 10, 10)) {
		t.Error("rect should contain itself")
	}
	if !a.ContainsRect(NewRect(2, 2, 3, 3)) {
		t.Error("inner rect not contained")
	}
	if a.ContainsRect(NewRect(2, 2, 11, 3)) {
		t.Error("overflowing rect reported contained")
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	r := NewRect(1, 1, 2, 2)
	if got := e.Union(r); got != r {
		t.Errorf("EmptyRect.Union(%v) = %v, want identity", r, got)
	}
	if got := e.UnionPoint(Pt(3, 4)); got != RectFromPoint(Pt(3, 4)) {
		t.Errorf("EmptyRect.UnionPoint = %v", got)
	}
	if e.ContainsPoint(Pt(0, 0)) {
		t.Error("empty rect contains a point")
	}
}

func TestRectUnionProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := NewRect(clean(x1), clean(y1), clean(x2), clean(y2))
		b := NewRect(clean(x3), clean(y3), clean(x4), clean(y4))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b) &&
			u == b.Union(a) && // commutative
			u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectEnlargement(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	if got := a.Enlargement(NewRect(1, 1, 2, 2)); got != 0 {
		t.Errorf("Enlargement(contained) = %g, want 0", got)
	}
	if got := a.Enlargement(NewRect(0, 0, 4, 2)); got != 4 {
		t.Errorf("Enlargement = %g, want 4", got)
	}
}

// clean maps arbitrary quick floats into a sane finite range.
func clean(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestBox3Basics(t *testing.T) {
	b := NewBox3(1, 2, 3, 4, 6, 9)
	if got := b.Volume(); got != 3*4*6 {
		t.Errorf("Volume = %g, want 72", got)
	}
	if got := b.Margin(); got != 3+4+6 {
		t.Errorf("Margin = %g, want 13", got)
	}
	if got := b.Rect(); got != NewRect(1, 2, 4, 6) {
		t.Errorf("Rect projection = %v", got)
	}
	if !b.ContainsPoint(Pt3(1, 2, 3)) || !b.ContainsPoint(Pt3(4, 6, 9)) {
		t.Error("corner points not contained")
	}
	if b.ContainsPoint(Pt3(0.999, 2, 3)) {
		t.Error("outside point contained")
	}
}

func TestBox3FromRect(t *testing.T) {
	r := NewRect(0, 0, 10, 20)
	b := Box3FromRect(r, 7, 3) // z order normalized
	if b.Min.Z != 3 || b.Max.Z != 7 {
		t.Errorf("z bounds = [%g, %g], want [3, 7]", b.Min.Z, b.Max.Z)
	}
	if b.Rect() != r {
		t.Errorf("base = %v, want %v", b.Rect(), r)
	}
}

func TestVerticalSegment(t *testing.T) {
	s := VerticalSegment(Pt(3, 4), 1, 9)
	if s.Min != Pt3(3, 4, 1) || s.Max != Pt3(3, 4, 9) {
		t.Fatalf("segment = %v", s)
	}
	if s.Volume() != 0 {
		t.Error("vertical segment should have zero volume")
	}
	plane := Box3FromRect(NewRect(0, 0, 10, 10), 5, 5)
	if !plane.Intersects(s) {
		t.Error("plane at z=5 should cut segment [1,9]")
	}
	plane = Box3FromRect(NewRect(0, 0, 10, 10), 10, 10)
	if plane.Intersects(s) {
		t.Error("plane at z=10 should miss segment [1,9]")
	}
	plane = Box3FromRect(NewRect(4, 5, 10, 10), 5, 5)
	if plane.Intersects(s) {
		t.Error("plane missing segment in xy should not intersect")
	}
}

func TestBox3IntersectsSymmetric(t *testing.T) {
	f := func(vals [12]float64) bool {
		for i := range vals {
			vals[i] = clean(vals[i])
		}
		a := NewBox3(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5])
		b := NewBox3(vals[6], vals[7], vals[8], vals[9], vals[10], vals[11])
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		u := a.Union(b)
		return u.ContainsBox(a) && u.ContainsBox(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyBox3(t *testing.T) {
	e := EmptyBox3()
	if !e.IsEmpty() {
		t.Fatal("EmptyBox3 not empty")
	}
	b := NewBox3(0, 0, 0, 1, 1, 1)
	if got := e.Union(b); got != b {
		t.Errorf("EmptyBox3.Union = %v, want identity", got)
	}
}

func TestStringers(t *testing.T) {
	// Smoke-test the Stringer implementations so broken formats fail loudly.
	for _, s := range []string{
		Pt(1, 2).String(),
		NewRect(0, 0, 1, 1).String(),
		Pt3(1, 2, 3).String(),
		NewBox3(0, 0, 0, 1, 1, 1).String(),
	} {
		if s == "" {
			t.Error("empty String()")
		}
	}
}
