package workload

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/graph"
)

func testNetwork(t *testing.T) *dataset.Network {
	t.Helper()
	return dataset.Generate(dataset.GenConfig{
		Name: "wl", Users: 1500, Venues: 800,
		AvgFriends: 6, AvgCheckins: 3, Seed: 3,
	})
}

func TestDegreeBucketString(t *testing.T) {
	if got := (DegreeBucket{50, 99}).String(); got != "50-99" {
		t.Errorf("String = %q", got)
	}
	if got := (DegreeBucket{200, math.MaxInt32}).String(); got != "200+" {
		t.Errorf("String = %q", got)
	}
}

func TestVertexRespectsBucket(t *testing.T) {
	net := testNetwork(t)
	g := NewGenerator(net, 1)
	for _, b := range DegreeBuckets {
		if g.BucketSize(b) == 0 {
			t.Fatalf("bucket %v empty in generated network", b)
		}
		for i := 0; i < 50; i++ {
			v, used := g.Vertex(b)
			if used != b {
				t.Fatalf("bucket %v fell back to %v despite being populated", b, used)
			}
			d := net.Graph.OutDegree(v)
			if d < b.Lo || d > b.Hi {
				t.Fatalf("vertex degree %d outside bucket %v", d, b)
			}
		}
	}
}

func TestVertexFallback(t *testing.T) {
	// A network where only tiny degrees exist: asking for 200+ must fall
	// back to a non-empty bucket instead of failing.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}})
	net := &dataset.Network{
		Name: "tiny", Graph: g,
		Spatial: []bool{false, false, false, true},
		Points:  []geom.Point{{}, {}, {}, geom.Pt(1, 1)},
	}
	gen := NewGenerator(net, 2)
	v, used := gen.Vertex(DegreeBucket{200, math.MaxInt32})
	if used != (DegreeBucket{1, 49}) {
		t.Errorf("fell back to %v, want 1-49", used)
	}
	if d := g.OutDegree(v); d < 1 {
		t.Errorf("fallback vertex has degree %d", d)
	}

	// No out-edges at all: still returns some vertex.
	empty := &dataset.Network{
		Name:    "empty",
		Graph:   graph.FromEdges(3, nil),
		Spatial: make([]bool, 3),
		Points:  make([]geom.Point, 3),
	}
	gen = NewGenerator(empty, 3)
	if v, _ := gen.Vertex(DefaultDegreeBucket); v < 0 || v > 2 {
		t.Errorf("degenerate vertex %d", v)
	}
}

func TestRegionExtent(t *testing.T) {
	net := testNetwork(t)
	g := NewGenerator(net, 4)
	space := g.Space()
	for _, pct := range Extents {
		for i := 0; i < 30; i++ {
			r := g.Region(pct)
			if !space.ContainsRect(r) {
				t.Fatalf("region %v escapes space %v", r, space)
			}
			got := r.Area() / space.Area() * 100
			if math.Abs(got-pct) > 0.01*pct {
				t.Fatalf("region extent %.3f%%, want %g%%", got, pct)
			}
		}
	}
}

func TestRegionWithSelectivity(t *testing.T) {
	net := testNetwork(t)
	g := NewGenerator(net, 5)
	n := net.NumVertices()
	for _, sel := range Selectivities {
		target := int(float64(n) * sel / 100)
		if target < 1 {
			target = 1
		}
		for i := 0; i < 10; i++ {
			r := g.RegionWithSelectivity(sel)
			count := 0
			for v, s := range net.Spatial {
				if s && r.ContainsPoint(net.Points[v]) {
					count++
				}
			}
			// The binary search is approximate around clustered points;
			// accept a factor-3 band plus slack for tiny targets.
			if count < target {
				t.Fatalf("selectivity %g%%: region holds %d points, target %d", sel, count, target)
			}
			if count > 3*target+30 {
				t.Fatalf("selectivity %g%%: region holds %d points, target %d (too many)", sel, count, target)
			}
		}
	}
}

func TestBatches(t *testing.T) {
	net := testNetwork(t)
	g := NewGenerator(net, 6)
	qs := g.Batch(100, DefaultExtent, DefaultDegreeBucket)
	if len(qs) != 100 {
		t.Fatalf("Batch returned %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Vertex < 0 || q.Vertex >= net.NumVertices() {
			t.Fatal("query vertex out of range")
		}
		if !q.Region.Valid() {
			t.Fatal("invalid region")
		}
	}
	qs = g.SelectivityBatch(20, 0.1, DefaultDegreeBucket)
	if len(qs) != 20 {
		t.Fatalf("SelectivityBatch returned %d queries", len(qs))
	}
}

func TestDeterministicWorkload(t *testing.T) {
	net := testNetwork(t)
	a := NewGenerator(net, 7).Batch(50, 5, DefaultDegreeBucket)
	b := NewGenerator(net, 7).Batch(50, 5, DefaultDegreeBucket)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestFilteredBatch(t *testing.T) {
	net := testNetwork(t)
	g := NewGenerator(net, 9)
	// Oracle: region contains the left half of the space.
	space := g.Space()
	midX := (space.Min.X + space.Max.X) / 2
	oracle := func(q Query) bool { return q.Region.Min.X < midX }

	qs, matched := g.FilteredBatch(50, 5, DefaultDegreeBucket, true, oracle, 0)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	if matched != 50 {
		t.Errorf("only %d/50 matched an easy predicate", matched)
	}
	for _, q := range qs {
		if !oracle(q) {
			t.Fatal("query violates predicate despite matched count")
		}
	}

	// Negative side.
	qs, matched = g.FilteredBatch(50, 5, DefaultDegreeBucket, false, oracle, 0)
	if matched != 50 {
		t.Errorf("negative side: %d/50 matched", matched)
	}
	for _, q := range qs {
		if oracle(q) {
			t.Fatal("negative query satisfies predicate")
		}
	}

	// Unsatisfiable predicate: still returns n queries, none matched.
	qs, matched = g.FilteredBatch(10, 5, DefaultDegreeBucket, true,
		func(Query) bool { return false }, 3)
	if len(qs) != 10 || matched != 0 {
		t.Errorf("unsatisfiable: %d queries, %d matched", len(qs), matched)
	}
}

func TestNoSpatialVerticesSelectivityFallback(t *testing.T) {
	net := &dataset.Network{
		Name:    "dry",
		Graph:   graph.FromEdges(3, [][2]int{{0, 1}}),
		Spatial: make([]bool, 3),
		Points:  make([]geom.Point, 3),
	}
	g := NewGenerator(net, 8)
	r := g.RegionWithSelectivity(1)
	if !r.Valid() {
		t.Error("fallback region invalid")
	}
}
