// Package workload generates RangeReach query workloads following the
// paper's experimental setup (§6.1): batches of queries whose region
// extent is a percentage of the network's space, whose query vertex is
// drawn from an out-degree bucket, and — for the selectivity experiment —
// whose region contains a controlled fraction of the spatial vertices.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Extents are the paper's query-region extents, as percentages of the
// space covered by the network. The default (held fixed while other
// parameters vary) is 5%.
var Extents = []float64{1, 2, 5, 10, 20}

// DefaultExtent is the bolded default of §6.1.
const DefaultExtent = 5.0

// DegreeBuckets are the paper's query-vertex out-degree intervals; the
// last bucket is open-ended (200+). The default bucket is 50–99.
var DegreeBuckets = []DegreeBucket{
	{1, 49},
	{50, 99},
	{100, 149},
	{150, 199},
	{200, math.MaxInt32},
}

// DefaultDegreeBucket is the bolded default of §6.1 (50–99).
var DefaultDegreeBucket = DegreeBucket{50, 99}

// Selectivities are the paper's spatial selectivities: the percentage of
// the network's vertices that lie inside the query region.
var Selectivities = []float64{0.001, 0.01, 0.1, 1}

// DegreeBucket is a closed interval of query-vertex out-degrees.
type DegreeBucket struct {
	Lo, Hi int
}

// String implements fmt.Stringer ("50-99", "200+").
func (b DegreeBucket) String() string {
	if b.Hi >= math.MaxInt32 {
		return fmt.Sprintf("%d+", b.Lo)
	}
	return fmt.Sprintf("%d-%d", b.Lo, b.Hi)
}

// Query is one RangeReach query: a vertex and a region.
type Query struct {
	Vertex int
	Region geom.Rect
}

// Generator draws query workloads from a network.
type Generator struct {
	net      *dataset.Network
	rng      *rand.Rand
	space    geom.Rect
	byDegree map[DegreeBucket][]int32
	// points sorted by x then y, for selectivity-controlled regions.
	sortedPoints []geom.Point
}

// NewGenerator prepares a workload generator over net, seeded for
// reproducibility.
func NewGenerator(net *dataset.Network, seed int64) *Generator {
	space := net.Space()
	if space.IsEmpty() {
		// A network without spatial vertices still needs well-formed
		// (necessarily negative) queries.
		space = geom.NewRect(0, 0, 1, 1)
	}
	g := &Generator{
		net:      net,
		rng:      rand.New(rand.NewSource(seed)),
		space:    space,
		byDegree: make(map[DegreeBucket][]int32),
	}
	for v := 0; v < net.NumVertices(); v++ {
		d := net.Graph.OutDegree(v)
		for _, b := range DegreeBuckets {
			if d >= b.Lo && d <= b.Hi {
				g.byDegree[b] = append(g.byDegree[b], int32(v))
				break
			}
		}
	}
	for v, s := range net.Spatial {
		if s {
			g.sortedPoints = append(g.sortedPoints, net.Points[v])
		}
	}
	sort.Slice(g.sortedPoints, func(i, j int) bool {
		if g.sortedPoints[i].X != g.sortedPoints[j].X {
			return g.sortedPoints[i].X < g.sortedPoints[j].X
		}
		return g.sortedPoints[i].Y < g.sortedPoints[j].Y
	})
	return g
}

// Space returns the spatial extent queries are drawn from.
func (g *Generator) Space() geom.Rect { return g.space }

// BucketSize returns how many vertices fall into the bucket; workloads
// sample with replacement, so small non-zero buckets still work.
func (g *Generator) BucketSize(b DegreeBucket) int { return len(g.byDegree[b]) }

// Vertex draws a query vertex from the degree bucket. It falls back to
// the closest non-empty bucket below (and then above) if the requested
// bucket is empty, returning the bucket actually used.
func (g *Generator) Vertex(b DegreeBucket) (int, DegreeBucket) {
	if vs := g.byDegree[b]; len(vs) > 0 {
		return int(vs[g.rng.Intn(len(vs))]), b
	}
	idx := 0
	for i, cand := range DegreeBuckets {
		if cand == b {
			idx = i
			break
		}
	}
	for d := 1; d < len(DegreeBuckets); d++ {
		for _, i := range []int{idx - d, idx + d} {
			if i >= 0 && i < len(DegreeBuckets) {
				if vs := g.byDegree[DegreeBuckets[i]]; len(vs) > 0 {
					return int(vs[g.rng.Intn(len(vs))]), DegreeBuckets[i]
				}
			}
		}
	}
	// Degenerate network with no out-edges at all: any vertex.
	return g.rng.Intn(g.net.NumVertices()), b
}

// Region draws a random square region covering extentPct percent of the
// space's area, positioned uniformly inside the space.
func (g *Generator) Region(extentPct float64) geom.Rect {
	frac := math.Sqrt(extentPct / 100)
	w := g.space.Width() * frac
	h := g.space.Height() * frac
	x := g.space.Min.X + g.rng.Float64()*(g.space.Width()-w)
	y := g.space.Min.Y + g.rng.Float64()*(g.space.Height()-h)
	return geom.NewRect(x, y, x+w, y+h)
}

// RegionWithSelectivity draws a region containing approximately
// selectivityPct percent of the network's vertices (the paper's spatial
// selectivity, §6.1): a square grown around a random spatial seed point
// until it covers the target count.
func (g *Generator) RegionWithSelectivity(selectivityPct float64) geom.Rect {
	target := int(float64(g.net.NumVertices()) * selectivityPct / 100)
	if target < 1 {
		target = 1
	}
	if len(g.sortedPoints) == 0 {
		return g.Region(DefaultExtent)
	}
	seed := g.sortedPoints[g.rng.Intn(len(g.sortedPoints))]
	// Exponentially grow a square around the seed until it holds enough
	// points, then binary-search the side length.
	side := math.Max(g.space.Width(), g.space.Height()) / 1024
	maxSide := 2 * math.Max(g.space.Width(), g.space.Height())
	for side < maxSide && g.countInSquare(seed, side) < target {
		side *= 2
	}
	lo, hi := side/2, side
	for i := 0; i < 20; i++ {
		mid := (lo + hi) / 2
		if g.countInSquare(seed, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return squareAround(seed, hi)
}

func squareAround(c geom.Point, side float64) geom.Rect {
	half := side / 2
	return geom.NewRect(c.X-half, c.Y-half, c.X+half, c.Y+half)
}

func (g *Generator) countInSquare(c geom.Point, side float64) int {
	r := squareAround(c, side)
	// Points are sorted by x: narrow to the x-slab, then test y.
	lo := sort.Search(len(g.sortedPoints), func(i int) bool {
		return g.sortedPoints[i].X >= r.Min.X
	})
	count := 0
	for i := lo; i < len(g.sortedPoints) && g.sortedPoints[i].X <= r.Max.X; i++ {
		if p := g.sortedPoints[i]; p.Y >= r.Min.Y && p.Y <= r.Max.Y {
			count++
		}
	}
	return count
}

// Batch draws n queries with regions of the given extent and vertices
// from the given degree bucket.
func (g *Generator) Batch(n int, extentPct float64, bucket DegreeBucket) []Query {
	queries := make([]Query, n)
	for i := range queries {
		v, _ := g.Vertex(bucket)
		queries[i] = Query{Vertex: v, Region: g.Region(extentPct)}
	}
	return queries
}

// SelectivityBatch draws n queries whose regions hold the given fraction
// of vertices, with vertices from the given degree bucket.
func (g *Generator) SelectivityBatch(n int, selectivityPct float64, bucket DegreeBucket) []Query {
	queries := make([]Query, n)
	for i := range queries {
		v, _ := g.Vertex(bucket)
		queries[i] = Query{Vertex: v, Region: g.RegionWithSelectivity(selectivityPct)}
	}
	return queries
}

// FilteredBatch draws n queries whose RangeReach answer — as judged by
// the supplied oracle — matches wantPositive, by rejection sampling. The
// paper repeatedly points out that negative queries are the worst case
// of SpaReach, SocReach and GeoReach (§2.2.3, §6.4); an all-negative
// workload makes that visible where mixed workloads average it away.
//
// Sampling gives up after maxAttempts draws per query (default 500 when
// <= 0) and falls back to whatever the last draw was, so pathological
// networks still return n queries; the second return value counts how
// many queries actually match wantPositive.
func (g *Generator) FilteredBatch(n int, extentPct float64, bucket DegreeBucket,
	wantPositive bool, oracle func(Query) bool, maxAttempts int) ([]Query, int) {
	if maxAttempts <= 0 {
		maxAttempts = 500
	}
	queries := make([]Query, n)
	matched := 0
	for i := range queries {
		var q Query
		ok := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			v, _ := g.Vertex(bucket)
			q = Query{Vertex: v, Region: g.Region(extentPct)}
			if oracle(q) == wantPositive {
				ok = true
				break
			}
		}
		if ok {
			matched++
		}
		queries[i] = q
	}
	return queries, matched
}
