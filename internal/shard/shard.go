// Package shard partitions a geosocial network for distributed serving.
//
// The partitioning model keeps RangeReach answers exact under fan-out:
// every shard holds the full social graph with the network's global
// vertex ids, but only the venues assigned to it remain spatial. Since
// RangeReach(v, R) asks whether v reaches ANY spatial vertex inside R,
// and the shards' venue sets partition the network's venue set,
//
//	RangeReach(v, R)  ==  OR over shards i of RangeReach_i(v, R)
//
// holds for any assignment of venues to shards — the router tier
// (internal/router) needs no vertex translation and can OR-combine
// shard answers with early exit on the first positive.
//
// Two partitioners are provided:
//
//   - Spatial: venues are sorted along a Z-order (Morton) curve over
//     the level-0 cells of a grid.Hierarchy — the same quad-hierarchy
//     GeoReach's SPA-Graph partitions the space with — and split into
//     contiguous runs of equal venue count. Contiguous Z-order runs
//     correspond to unions of quad-tree subtrees, so each shard covers
//     a compact region and the router can prune shards whose bounds
//     miss the query region entirely.
//
//   - Social: venues are grouped by their strongly-connected-component
//     id in the condensation DAG (the DAGGER view of the graph) and the
//     groups are balanced across shards largest-first. Venues that are
//     socially entangled land on the same shard, which concentrates a
//     query's positive evidence on few shards for community-local
//     workloads; there is no spatial pruning, since component bounds
//     overlap heavily.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/grid"
)

// Strategy selects the venue-assignment rule.
type Strategy int

const (
	// Spatial assigns venues by grid-hierarchy Z-order runs.
	Spatial Strategy = iota
	// Social assigns venues by condensation-DAG component.
	Social
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Spatial:
		return "spatial"
	case Social:
		return "social"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy resolves the textual strategy names used by flags and
// the shard-map file.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "spatial":
		return Spatial, nil
	case "social":
		return Social, nil
	default:
		return 0, fmt.Errorf("shard: unknown strategy %q (want spatial or social)", name)
	}
}

// Info describes one shard of an Assignment.
type Info struct {
	// ID is the shard's index in [0, NumShards).
	ID int
	// Venues counts the spatial vertices assigned to the shard.
	Venues int
	// Bounds is the minimum bounding rectangle of the shard's venue
	// geometries; the empty rectangle when the shard holds no venues.
	// A query region that does not intersect Bounds cannot be answered
	// positively by this shard.
	Bounds geom.Rect
}

// Assignment is a complete venue partitioning of a network.
type Assignment struct {
	// Strategy that produced the assignment.
	Strategy Strategy
	// NumShards is the shard count n.
	NumShards int
	// ShardOf maps every vertex to the shard owning it as a venue, or
	// -1 for social (non-spatial) vertices, which are replicated on
	// every shard.
	ShardOf []int32
	// Shards holds per-shard summaries, indexed by shard id.
	Shards []Info
}

// zorderLevel is the hierarchy level venues are linearized at: 512
// cells per axis resolves far below any realistic shard granularity.
const zorderLevel = 10

// Partition assigns the venues of net to n shards under the given
// strategy. The assignment is deterministic for a given network.
func Partition(net *dataset.Network, n int, strategy Strategy) (*Assignment, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	venues := make([]int32, 0, net.NumSpatial())
	for v, s := range net.Spatial {
		if s {
			venues = append(venues, int32(v))
		}
	}
	if len(venues) == 0 {
		return nil, fmt.Errorf("shard: network %q has no spatial vertices to partition", net.Name)
	}
	a := &Assignment{
		Strategy:  strategy,
		NumShards: n,
		ShardOf:   make([]int32, net.NumVertices()),
		Shards:    make([]Info, n),
	}
	for i := range a.ShardOf {
		a.ShardOf[i] = -1
	}
	for i := range a.Shards {
		a.Shards[i] = Info{ID: i, Bounds: geom.EmptyRect()}
	}
	switch strategy {
	case Spatial:
		partitionSpatial(net, venues, a)
	case Social:
		partitionSocial(net, venues, a)
	default:
		return nil, fmt.Errorf("shard: unknown strategy %v", strategy)
	}
	for _, v := range venues {
		s := a.ShardOf[v]
		a.Shards[s].Venues++
		a.Shards[s].Bounds = a.Shards[s].Bounds.Union(net.GeometryOf(int(v)))
	}
	return a, nil
}

// partitionSpatial sorts venues along the Z-order curve of their
// level-zorderLevel grid cell and cuts the sequence into n runs of
// near-equal venue count (sizes differ by at most one).
func partitionSpatial(net *dataset.Network, venues []int32, a *Assignment) {
	h := grid.NewHierarchy(net.Space(), zorderLevel+1)
	keys := make([]uint64, len(venues))
	for i, v := range venues {
		c := h.CellAt(net.Points[v], 0)
		keys[i] = morton(uint32(c.X), uint32(c.Y))
	}
	order := make([]int, len(venues))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if keys[order[i]] != keys[order[j]] {
			return keys[order[i]] < keys[order[j]]
		}
		return venues[order[i]] < venues[order[j]]
	})
	n := a.NumShards
	base, extra := len(venues)/n, len(venues)%n
	pos := 0
	for s := 0; s < n; s++ {
		size := base
		if s < extra {
			size++
		}
		for k := 0; k < size; k++ {
			a.ShardOf[venues[order[pos]]] = int32(s)
			pos++
		}
	}
}

// morton interleaves the low 16 bits of x and y into a Z-order key.
func morton(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// spread distributes the low 16 bits of v into the even bit positions.
func spread(v uint32) uint64 {
	x := uint64(v & 0xFFFF)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// partitionSocial groups venues by their condensation-DAG component and
// balances the groups over shards largest-first (LPT scheduling): each
// group goes to the currently lightest shard, ties broken by shard id.
func partitionSocial(net *dataset.Network, venues []int32, a *Assignment) {
	cond := net.Graph.Condense()
	groups := make(map[int32][]int32)
	for _, v := range venues {
		c := cond.Comp[v]
		groups[c] = append(groups[c], v)
	}
	comps := make([]int32, 0, len(groups))
	for c := range groups {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool {
		gi, gj := groups[comps[i]], groups[comps[j]]
		if len(gi) != len(gj) {
			return len(gi) > len(gj)
		}
		return comps[i] < comps[j]
	})
	load := make([]int, a.NumShards)
	for _, c := range comps {
		best := 0
		for s := 1; s < a.NumShards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		for _, v := range groups[c] {
			a.ShardOf[v] = int32(best)
		}
		load[best] += len(groups[c])
	}
}

// ShardNetwork derives shard i's serving network: the full graph and
// vertex id space of net, with only shard-i venues spatial. The graph
// and point slices are shared with net (both are read-only after
// construction); the spatial mask and extents are copies.
func (a *Assignment) ShardNetwork(net *dataset.Network, i int) (*dataset.Network, error) {
	if i < 0 || i >= a.NumShards {
		return nil, fmt.Errorf("shard: shard %d out of range [0,%d)", i, a.NumShards)
	}
	if len(a.ShardOf) != net.NumVertices() {
		return nil, fmt.Errorf("shard: assignment over %d vertices applied to network with %d", len(a.ShardOf), net.NumVertices())
	}
	spatial := make([]bool, net.NumVertices())
	var extents []geom.Rect
	if net.Extents != nil {
		extents = make([]geom.Rect, net.NumVertices())
	}
	for v := range spatial {
		if net.Spatial[v] && a.ShardOf[v] == int32(i) {
			spatial[v] = true
			if extents != nil {
				extents[v] = net.Extents[v]
			}
		}
	}
	return &dataset.Network{
		Name:     fmt.Sprintf("%s/shard%d-of-%d", net.Name, i, a.NumShards),
		Graph:    net.Graph,
		Spatial:  spatial,
		Points:   net.Points,
		Extents:  extents,
		Checkins: net.Checkins,
	}, nil
}
