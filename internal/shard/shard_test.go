package shard

import (
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func testNetwork(t *testing.T) *dataset.Network {
	t.Helper()
	return dataset.Generate(dataset.GenConfig{
		Name:        "shardtest",
		Users:       400,
		Venues:      180,
		AvgFriends:  6,
		AvgCheckins: 3,
		Regime:      dataset.Fragmented,
		Clusters:    16,
		Seed:        42,
	})
}

// checkPartition asserts the invariants every strategy must uphold:
// each venue owned by exactly one shard, social vertices unassigned,
// venue counts that sum to |P|, and bounds containing every owned
// venue's geometry.
func checkPartition(t *testing.T, net *dataset.Network, a *Assignment) {
	t.Helper()
	if len(a.ShardOf) != net.NumVertices() {
		t.Fatalf("ShardOf has %d entries for %d vertices", len(a.ShardOf), net.NumVertices())
	}
	counts := make([]int, a.NumShards)
	for v := range a.ShardOf {
		s := a.ShardOf[v]
		if !net.Spatial[v] {
			if s != -1 {
				t.Fatalf("social vertex %d assigned to shard %d", v, s)
			}
			continue
		}
		if s < 0 || int(s) >= a.NumShards {
			t.Fatalf("venue %d has out-of-range shard %d", v, s)
		}
		counts[s]++
		if !a.Shards[s].Bounds.ContainsRect(net.GeometryOf(v)) {
			t.Fatalf("venue %d outside shard %d bounds %v", v, s, a.Shards[s].Bounds)
		}
	}
	total := 0
	for i, c := range counts {
		if c != a.Shards[i].Venues {
			t.Fatalf("shard %d reports %d venues, assignment has %d", i, a.Shards[i].Venues, c)
		}
		total += c
	}
	if total != net.NumSpatial() {
		t.Fatalf("assigned %d venues, network has %d", total, net.NumSpatial())
	}
}

func TestPartitionSpatial(t *testing.T) {
	net := testNetwork(t)
	a, err := Partition(net, 4, Spatial)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, net, a)
	// Z-order runs of equal length: venue counts differ by at most one.
	lo, hi := net.NumSpatial(), 0
	for _, s := range a.Shards {
		if s.Venues < lo {
			lo = s.Venues
		}
		if s.Venues > hi {
			hi = s.Venues
		}
	}
	if hi-lo > 1 {
		t.Fatalf("spatial partition unbalanced: venue counts range %d..%d", lo, hi)
	}
}

func TestPartitionSocialGroupsComponents(t *testing.T) {
	net := testNetwork(t)
	a, err := Partition(net, 3, Social)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, net, a)
	// Venues of one condensation component never split across shards.
	cond := net.Graph.Condense()
	compShard := make(map[int32]int32)
	for v, s := range net.Spatial {
		if !s {
			continue
		}
		c := cond.Comp[v]
		if prev, ok := compShard[c]; ok && prev != a.ShardOf[v] {
			t.Fatalf("component %d split across shards %d and %d", c, prev, a.ShardOf[v])
		}
		compShard[c] = a.ShardOf[v]
	}
}

func TestPartitionDeterministic(t *testing.T) {
	net := testNetwork(t)
	for _, strat := range []Strategy{Spatial, Social} {
		a1, err := Partition(net, 5, strat)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Partition(net, 5, strat)
		if err != nil {
			t.Fatal(err)
		}
		for v := range a1.ShardOf {
			if a1.ShardOf[v] != a2.ShardOf[v] {
				t.Fatalf("%v: vertex %d assigned to %d then %d", strat, v, a1.ShardOf[v], a2.ShardOf[v])
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	net := testNetwork(t)
	if _, err := Partition(net, 0, Spatial); err == nil {
		t.Fatal("want error for 0 shards")
	}
	empty := &dataset.Network{
		Name:    "novenues",
		Graph:   net.Graph,
		Spatial: make([]bool, net.NumVertices()),
		Points:  make([]geom.Point, net.NumVertices()),
	}
	if _, err := Partition(empty, 2, Spatial); err == nil {
		t.Fatal("want error for a network without venues")
	}
}

func TestShardNetwork(t *testing.T) {
	net := testNetwork(t)
	a, err := Partition(net, 3, Spatial)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, net.NumVertices())
	for i := 0; i < a.NumShards; i++ {
		sn, err := a.ShardNetwork(net, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := sn.Validate(); err != nil {
			t.Fatalf("shard %d network invalid: %v", i, err)
		}
		if sn.NumVertices() != net.NumVertices() || sn.NumEdges() != net.NumEdges() {
			t.Fatalf("shard %d graph differs: |V|=%d |E|=%d want |V|=%d |E|=%d",
				i, sn.NumVertices(), sn.NumEdges(), net.NumVertices(), net.NumEdges())
		}
		if sn.NumSpatial() != a.Shards[i].Venues {
			t.Fatalf("shard %d network has %d venues, assignment says %d", i, sn.NumSpatial(), a.Shards[i].Venues)
		}
		for v, s := range sn.Spatial {
			if s {
				if seen[v] {
					t.Fatalf("venue %d spatial on two shard networks", v)
				}
				seen[v] = true
				if sn.Points[v] != net.Points[v] {
					t.Fatalf("venue %d moved", v)
				}
			}
		}
	}
	for v, s := range net.Spatial {
		if s && !seen[v] {
			t.Fatalf("venue %d spatial on no shard network", v)
		}
	}
	if _, err := a.ShardNetwork(net, a.NumShards); err == nil {
		t.Fatal("want error for out-of-range shard id")
	}
}

func TestMapRoundTrip(t *testing.T) {
	net := testNetwork(t)
	a, err := Partition(net, 3, Spatial)
	if err != nil {
		t.Fatal(err)
	}
	m := a.Map(net.Name, net.NumVertices(), net.Space())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shardmap.json")
	if err := SaveMapFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumShards() != m.NumShards() || got.Vertices != m.Vertices || got.Strategy != m.Strategy {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Shards {
		if got.Shards[i] != m.Shards[i] {
			t.Fatalf("shard %d round trip mismatch: %+v vs %+v", i, got.Shards[i], m.Shards[i])
		}
	}
}

func TestMapValidateRejects(t *testing.T) {
	base := func() *Map {
		return &Map{
			Version:  MapVersion,
			Strategy: "spatial",
			Vertices: 10,
			Shards: []MapShard{
				{ID: 0, Venues: 3, Bounds: [4]float64{0, 0, 1, 1}},
				{ID: 1, Venues: 2, Bounds: [4]float64{1, 0, 2, 1}},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Map)
	}{
		{"bad version", func(m *Map) { m.Version = 99 }},
		{"no shards", func(m *Map) { m.Shards = nil }},
		{"bad strategy", func(m *Map) { m.Strategy = "astral" }},
		{"non-dense ids", func(m *Map) { m.Shards[1].ID = 5 }},
		{"no vertices", func(m *Map) { m.Vertices = 0 }},
		{"venues with empty bounds", func(m *Map) { m.Shards[0].Bounds = [4]float64{1, 1, 0, 0} }},
		{"no venues anywhere", func(m *Map) { m.Shards[0].Venues, m.Shards[1].Venues = 0, 0 }},
	}
	for _, tc := range cases {
		m := base()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, m)
		}
	}
}
