package shard

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/geom"
)

// MapVersion is the current shard-map format version.
const MapVersion = 1

// Map is the serialized cluster topology: everything the router tier
// needs to fan a query out — shard count, per-shard venue bounds for
// spatial pruning, and the global vertex-id space for validation. It is
// emitted by `rrgen -shards` next to the per-shard network files and
// consumed by rrrouter.
type Map struct {
	// Version is the format version (MapVersion).
	Version int `json:"version"`
	// Name labels the source network.
	Name string `json:"name"`
	// Strategy names the partitioner ("spatial" or "social").
	Strategy string `json:"strategy"`
	// Vertices is the global vertex count; every shard shares this id
	// space, so the router validates query vertices against it.
	Vertices int `json:"vertices"`
	// Space is the bounding rectangle of the whole network's venues as
	// [xmin, ymin, xmax, ymax].
	Space [4]float64 `json:"space"`
	// Shards lists every shard, ordered by id 0..n-1.
	Shards []MapShard `json:"shards"`
}

// MapShard is one shard's entry in the Map.
type MapShard struct {
	// ID is the shard id; doubles as the consistent-hash placement key.
	ID int `json:"id"`
	// Venues counts the spatial vertices owned by the shard.
	Venues int `json:"venues"`
	// Bounds is the MBR of the shard's venue geometries as
	// [xmin, ymin, xmax, ymax]. A shard with no venues carries an
	// inverted (empty) rectangle and is never consulted.
	Bounds [4]float64 `json:"bounds"`
}

// BoundsRect returns the shard's bounds as a geom.Rect without
// normalizing: an inverted on-disk rectangle stays empty.
func (s MapShard) BoundsRect() geom.Rect {
	return geom.Rect{
		Min: geom.Pt(s.Bounds[0], s.Bounds[1]),
		Max: geom.Pt(s.Bounds[2], s.Bounds[3]),
	}
}

// NumShards returns the shard count.
func (m *Map) NumShards() int { return len(m.Shards) }

// Map summarizes the assignment as a serializable shard map.
func (a *Assignment) Map(name string, vertices int, space geom.Rect) *Map {
	m := &Map{
		Version:  MapVersion,
		Name:     name,
		Strategy: a.Strategy.String(),
		Vertices: vertices,
		Space:    [4]float64{space.Min.X, space.Min.Y, space.Max.X, space.Max.Y},
		Shards:   make([]MapShard, a.NumShards),
	}
	for i, info := range a.Shards {
		m.Shards[i] = MapShard{
			ID:     info.ID,
			Venues: info.Venues,
			Bounds: [4]float64{info.Bounds.Min.X, info.Bounds.Min.Y, info.Bounds.Max.X, info.Bounds.Max.Y},
		}
	}
	return m
}

// Validate checks structural consistency and returns the first problem
// found, or nil.
func (m *Map) Validate() error {
	if m.Version != MapVersion {
		return fmt.Errorf("shard: unsupported map version %d (want %d)", m.Version, MapVersion)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: map has no shards")
	}
	if m.Vertices <= 0 {
		return fmt.Errorf("shard: map reports %d vertices", m.Vertices)
	}
	if _, err := ParseStrategy(m.Strategy); err != nil {
		return err
	}
	total := 0
	for i, s := range m.Shards {
		if s.ID != i {
			return fmt.Errorf("shard: shard at position %d has id %d (ids must be dense 0..n-1)", i, s.ID)
		}
		if s.Venues < 0 {
			return fmt.Errorf("shard: shard %d has negative venue count %d", i, s.Venues)
		}
		if s.Venues > 0 && s.BoundsRect().IsEmpty() {
			return fmt.Errorf("shard: shard %d holds %d venues but empty bounds", i, s.Venues)
		}
		total += s.Venues
	}
	if total == 0 {
		return fmt.Errorf("shard: map assigns no venues to any shard")
	}
	return nil
}

// SaveMapFile writes m as indented JSON to path.
func SaveMapFile(path string, m *Map) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding map: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// LoadMapFile reads and validates a shard map.
func LoadMapFile(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	return &m, nil
}
