package bench

// Update-churn experiment: sustained update throughput of the dynamic
// index with concurrent readers, incremental patching (internal/incr's
// default) A/B'd against the full-rebuild reference arm. This is the
// evaluation for the live-maintenance subsystem: the headline number is
// updates/sec per arm and the incremental-over-rebuild speedup, with
// query latency under churn alongside to show readers do not starve
// while the writer patches.

import (
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/incr"
	"repro/internal/workload"
)

// churnBudget is the wall-clock budget per arm. A time budget (rather
// than an op count) keeps the experiment bounded even though the two
// arms differ by orders of magnitude in per-op cost.
const churnBudget = 1500 * time.Millisecond

// churnMaxOps caps the fast arm so a tiny dataset cannot spin millions
// of ops into the budget.
const churnMaxOps = 20000

// churnPublishEvery is the op-coalescing factor: the writer publishes a
// fresh snapshot after every batch of this many ops, mirroring rrserve's
// updater, which snapshots once per pending batch rather than per op.
// Publication is an O(n) copy, so per-op snapshots would measure the
// copy, not the maintenance algorithm under test.
const churnPublishEvery = 32

// ChurnArm is one mode's measurement under the churn workload.
type ChurnArm struct {
	Mode          string  `json:"mode"`
	Updates       int     `json:"updates"`
	Seconds       float64 `json:"seconds"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// Concurrent snapshot-query latencies observed while the writer was
	// applying updates, in microseconds.
	Queries        int     `json:"queries"`
	QueryP50Micros float64 `json:"query_p50_us"`
	QueryP99Micros float64 `json:"query_p99_us"`
	// Patch-machinery counters (zero for the full-rebuild arm except
	// FullRebuilds, which counts every op there).
	Merges       int `json:"merges"`
	Splits       int `json:"splits"`
	ConeRelabels int `json:"cone_relabels"`
	FullRebuilds int `json:"full_rebuilds"`
}

// ChurnReport is one dataset's incremental-vs-rebuild comparison.
type ChurnReport struct {
	Dataset string     `json:"dataset"`
	Arms    []ChurnArm `json:"arms"`
	// SpeedupX is incremental updates/sec over full-rebuild updates/sec.
	SpeedupX float64 `json:"speedup_x"`
}

// UpdateChurn runs the churn experiment on every configured dataset and
// prints the comparison. Results are retained on the Suite so a -json
// report emitted afterwards includes them.
func (s *Suite) UpdateChurn() []ChurnReport {
	s.printf("\n== update churn: incremental vs full-rebuild maintenance ==\n")
	s.printf("%-18s %-12s %12s %12s %12s %10s\n",
		"dataset", "mode", "updates/s", "query p50", "query p99", "updates")
	var reports []ChurnReport
	for ds := range s.nets {
		rep := ChurnReport{Dataset: s.nets[ds].Name}
		var perSec [2]float64
		for i, mode := range []incr.Mode{incr.Incremental, incr.FullRebuild} {
			arm := s.churnArm(ds, mode)
			perSec[i] = arm.UpdatesPerSec
			rep.Arms = append(rep.Arms, arm)
			s.printf("%-18s %-12s %12.0f %12s %12s %10d\n",
				s.nets[ds].Name, arm.Mode, arm.UpdatesPerSec,
				fmtDuration(time.Duration(arm.QueryP50Micros*1e3)),
				fmtDuration(time.Duration(arm.QueryP99Micros*1e3)),
				arm.Updates)
		}
		if perSec[1] > 0 {
			rep.SpeedupX = perSec[0] / perSec[1]
		}
		s.printf("%-18s %-12s %11.1fx\n", s.nets[ds].Name, "speedup", rep.SpeedupX)
		reports = append(reports, rep)
	}
	s.churn = reports
	return reports
}

// churnArm measures one mode: a single writer applies a deterministic
// op stream, publishing a snapshot per churnPublishEvery-op batch (the
// serving model), while a reader hammers the latest snapshot with the
// default query workload. Both arms consume the same op sequence
// prefix.
func (s *Suite) churnArm(ds int, mode incr.Mode) ChurnArm {
	x := incr.New(s.preps[ds], incr.Options{Mode: mode, Parallelism: s.cfg.Parallelism})
	qs := s.gens[ds].Batch(s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket)
	gen := newChurnOps(s.nets[ds], s.cfg.Seed)

	var snap atomic.Pointer[incr.Snapshot]
	snap.Store(x.Snapshot())
	stop := make(chan struct{})
	latc := make(chan []time.Duration, 1)
	go func() {
		var lats []time.Duration
		for i := 0; ; i++ {
			select {
			case <-stop:
				latc <- lats
				return
			default:
			}
			q := qs[i%len(qs)]
			sp := snap.Load()
			start := time.Now()
			sp.RangeReach(q.Vertex, q.Region)
			lats = append(lats, time.Since(start))
		}
	}()

	applied := 0
	begin := time.Now()
	for time.Since(begin) < churnBudget && applied < churnMaxOps {
		gen.apply(x)
		applied++
		if applied%churnPublishEvery == 0 {
			snap.Store(x.Snapshot())
		}
	}
	snap.Store(x.Snapshot())
	elapsed := time.Since(begin)
	close(stop)
	lats := <-latc

	st := x.Stats()
	lat := statsOf(lats)
	arm := ChurnArm{
		Mode:           modeName(mode),
		Updates:        applied,
		Seconds:        elapsed.Seconds(),
		UpdatesPerSec:  float64(applied) / elapsed.Seconds(),
		Queries:        len(lats),
		QueryP50Micros: micros(lat.P50),
		QueryP99Micros: micros(lat.P99),
		Merges:         st.Merges,
		Splits:         st.Splits,
		ConeRelabels:   st.ConeRelabels,
		FullRebuilds:   st.FullRebuilds,
	}
	return arm
}

func modeName(m incr.Mode) string {
	if m == incr.FullRebuild {
		return "full-rebuild"
	}
	return "incremental"
}

// churnOps generates the deterministic stateful op stream both arms
// replay: edge inserts dominate (they exercise merge and relabel),
// with deletes drawn from edges the stream itself added (exercising
// split checks), venue adds and moves (exercising the spatial overlay),
// and occasional user adds.
type churnOps struct {
	rng    *rand.Rand
	n      int
	space  [4]float64
	edges  [][2]int
	seen   map[[2]int]bool
	venues []int
}

func newChurnOps(net *dataset.Network, seed int64) *churnOps {
	sp := net.Space()
	return &churnOps{
		rng:   rand.New(rand.NewSource(seed + 0xc472)),
		n:     net.NumVertices(),
		space: [4]float64{sp.Min.X, sp.Min.Y, sp.Max.X, sp.Max.Y},
		seen:  make(map[[2]int]bool),
	}
}

// apply performs the next op of the stream on x. Ops are constructed to
// be valid by design; an engine rejection is a harness bug and panics.
func (g *churnOps) apply(x *incr.Index) {
	switch k := g.rng.Intn(10); {
	case k < 1:
		id := x.AddUser()
		if id >= g.n {
			g.n = id + 1
		}
	case k < 2:
		px := g.space[0] + g.rng.Float64()*(g.space[2]-g.space[0])
		py := g.space[1] + g.rng.Float64()*(g.space[3]-g.space[1])
		id := x.AddVenue(px, py)
		if id >= g.n {
			g.n = id + 1
		}
		g.venues = append(g.venues, id)
	case k < 5 && len(g.edges) > 0:
		i := g.rng.Intn(len(g.edges))
		e := g.edges[i]
		g.edges[i] = g.edges[len(g.edges)-1]
		g.edges = g.edges[:len(g.edges)-1]
		delete(g.seen, e)
		if err := x.DeleteEdge(e[0], e[1]); err != nil {
			panic("bench: churn delete of tracked edge failed: " + err.Error())
		}
	case k < 6 && len(g.venues) > 0:
		px := g.space[0] + g.rng.Float64()*(g.space[2]-g.space[0])
		py := g.space[1] + g.rng.Float64()*(g.space[3]-g.space[1])
		if err := x.MoveVenue(g.venues[g.rng.Intn(len(g.venues))], px, py); err != nil {
			panic("bench: churn move of tracked venue failed: " + err.Error())
		}
	default:
		u, v := g.rng.Intn(g.n), g.rng.Intn(g.n)
		if err := x.AddEdge(u, v); err != nil {
			panic("bench: churn add_edge failed: " + err.Error())
		}
		e := [2]int{u, v}
		// The engine drops self-loops and duplicates, so only a novel
		// non-loop edge is a safe future delete target.
		if u != v && !g.seen[e] {
			g.seen[e] = true
			g.edges = append(g.edges, e)
		}
	}
}
