// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts (§6): Table 3 (datasets), Tables 4 and 5 (index
// size and build time), Table 6 (label counts), Figure 5 (SCC spatial
// policy), Figure 6 (best spatial-first method) and Figure 7 (the main
// method comparison), plus the ablations DESIGN.md calls out. The
// cmd/rrbench tool and the root-level Go benchmarks drive it.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// Config parameterizes a Suite.
type Config struct {
	// Scale scales the synthetic datasets (1 ≈ 1% of the paper's).
	Scale float64
	// Seed drives dataset generation and workloads.
	Seed int64
	// Queries is the number of queries averaged per data point; the
	// paper uses 1000.
	Queries int
	// Datasets restricts the run to the named presets (nil = all four).
	Datasets []string
	// Parallelism bounds the workers used per index build (0 = 1, the
	// sequential path; builds are deterministic at any setting).
	Parallelism int
	// Out receives the report (defaults to io.Discard if nil).
	Out io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// Suite holds the generated datasets and lazily built engines shared by
// all experiments of one run.
type Suite struct {
	cfg   Config
	nets  []*dataset.Network
	preps []*dataset.Prepared
	gens  []*workload.Generator

	engines map[engineKey]core.BuildResult
	// churn holds UpdateChurn's results when that experiment ran, so a
	// -json report emitted afterwards carries them.
	churn []ChurnReport
	// cold caches ColdStart's measurements (nil until it runs).
	cold []ColdStartRow
}

type engineKey struct {
	dataset int
	method  core.Method
	policy  dataset.SCCPolicy
}

// NewSuite generates the configured datasets and prepares workloads.
func NewSuite(cfg Config) *Suite {
	cfg = cfg.withDefaults()
	s := &Suite{cfg: cfg, engines: make(map[engineKey]core.BuildResult)}
	for _, net := range dataset.Presets(cfg.Scale, cfg.Seed) {
		if len(cfg.Datasets) > 0 && !contains(cfg.Datasets, net.Name) {
			continue
		}
		s.nets = append(s.nets, net)
		s.preps = append(s.preps, dataset.Prepare(net))
		s.gens = append(s.gens, workload.NewGenerator(net, cfg.Seed+100))
	}
	return s
}

func contains(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// Datasets returns the networks of the suite.
func (s *Suite) Datasets() []*dataset.Network { return s.nets }

// engine builds (or returns the cached) engine for a combination.
func (s *Suite) engine(ds int, m core.Method, p dataset.SCCPolicy) core.BuildResult {
	key := engineKey{ds, m, p}
	if res, ok := s.engines[key]; ok {
		return res
	}
	res, err := core.BuildMethod(s.preps[ds], m, core.BuildOptions{Policy: p, Parallelism: s.cfg.Parallelism})
	if err != nil {
		panic(fmt.Sprintf("bench: building %v/%v on %s: %v", m, p, s.nets[ds].Name, err))
	}
	s.engines[key] = res
	return res
}

// avgQueryTime runs the workload through the engine and returns the
// average per-query latency.
func avgQueryTime(e core.Engine, qs []workload.Query) time.Duration {
	start := time.Now()
	for _, q := range qs {
		e.RangeReach(q.Vertex, q.Region)
	}
	return time.Since(start) / time.Duration(len(qs))
}

// positives counts TRUE answers, reported alongside latencies so runs
// can confirm the workload exercises both outcomes.
func positives(e core.Engine, qs []workload.Query) int {
	count := 0
	for _, q := range qs {
		if e.RangeReach(q.Vertex, q.Region) {
			count++
		}
	}
	return count
}

func (s *Suite) printf(format string, args ...any) {
	// Progress output is best-effort; a broken Out must not abort a run.
	_, _ = fmt.Fprintf(s.cfg.Out, format, args...)
}

// fmtDuration renders a duration in the unit mix the paper's plots use.
func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// fmtBytes renders sizes in MBs with paper-like precision.
func fmtBytes(b int64) string {
	mb := float64(b) / (1024 * 1024)
	switch {
	case mb >= 100:
		return fmt.Sprintf("%.0fMB", mb)
	case mb >= 1:
		return fmt.Sprintf("%.2fMB", mb)
	default:
		return fmt.Sprintf("%.0fKB", float64(b)/1024)
	}
}
