package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// tinySuite builds a suite small enough for unit tests.
func tinySuite(t *testing.T, datasets ...string) (*Suite, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	s := NewSuite(Config{
		Scale:    0.05,
		Seed:     2,
		Queries:  20,
		Datasets: datasets,
		Out:      &buf,
	})
	return s, &buf
}

func TestSuiteDatasetSelection(t *testing.T) {
	s, _ := tinySuite(t)
	if len(s.Datasets()) != 4 {
		t.Fatalf("default suite has %d datasets", len(s.Datasets()))
	}
	s, _ = tinySuite(t, "gowalla-like")
	if len(s.Datasets()) != 1 || s.Datasets()[0].Name != "gowalla-like" {
		t.Fatal("dataset filter broken")
	}
	s, _ = tinySuite(t, "no-such-dataset")
	if len(s.Datasets()) != 0 {
		t.Fatal("unknown dataset matched")
	}
}

func TestTable3(t *testing.T) {
	s, buf := tinySuite(t, "weeplaces-like")
	rows := s.Table3()
	if len(rows) != 1 {
		t.Fatalf("Table3 returned %d rows", len(rows))
	}
	if rows[0].Vertices == 0 || rows[0].SCCs == 0 {
		t.Error("empty stats")
	}
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("report missing header")
	}
}

func TestTable4And5(t *testing.T) {
	s, buf := tinySuite(t, "weeplaces-like")
	rows := s.Table4And5()
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	row := rows[0]
	for _, m := range core.AllMethods {
		if row.Bytes[m] <= 0 {
			t.Errorf("%v: bytes %d", m, row.Bytes[m])
		}
		if m.SupportsMBR() && row.MBRBytes[m] <= 0 {
			t.Errorf("%v: MBR bytes missing", m)
		}
		if !m.SupportsMBR() && row.MBRBytes[m] != 0 {
			t.Errorf("%v: unexpected MBR bytes", m)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "Table 5") {
		t.Error("report missing tables")
	}
}

func TestTable6CompressionInvariant(t *testing.T) {
	s, _ := tinySuite(t)
	for _, row := range s.Table6() {
		if row.Compressed > row.Uncompressed {
			t.Errorf("%s: compressed %d > uncompressed %d",
				row.Dataset, row.Compressed, row.Uncompressed)
		}
		if row.RevCompressed > row.RevUncompressed {
			t.Errorf("%s: reversed compressed %d > uncompressed %d",
				row.Dataset, row.RevCompressed, row.RevUncompressed)
		}
	}
}

func TestFiguresProduceSeries(t *testing.T) {
	s, buf := tinySuite(t, "weeplaces-like")
	for name, results := range map[string][]FigureResult{
		"fig5": s.Figure5(),
		"fig6": s.Figure6(),
		"fig7": s.Figure7(),
	} {
		if len(results) == 0 {
			t.Fatalf("%s: no results", name)
		}
		for _, fr := range results {
			if len(fr.Labels) == 0 || len(fr.Series) == 0 {
				t.Fatalf("%s: empty figure %s/%s", name, fr.Dataset, fr.XAxis)
			}
			for _, series := range fr.Series {
				for _, l := range fr.Labels {
					if _, ok := series.Points[l]; !ok {
						t.Fatalf("%s: series %v missing point %q", name, series.Method, l)
					}
				}
			}
		}
	}
	out := buf.String()
	for _, want := range []string{"Figure 5", "Figure 6", "Figure 7", "varying extent"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestEngineCaching(t *testing.T) {
	s, _ := tinySuite(t, "weeplaces-like")
	a := s.engine(0, core.MethodThreeDReach, dataset.Replicate)
	b := s.engine(0, core.MethodThreeDReach, dataset.Replicate)
	if a.Engine != b.Engine {
		t.Error("engine not cached")
	}
	c := s.engine(0, core.MethodThreeDReach, dataset.MBR)
	if a.Engine == c.Engine {
		t.Error("policies share an engine")
	}
}

func TestAblationsRun(t *testing.T) {
	s, buf := tinySuite(t, "weeplaces-like")
	s.AblationForest()
	s.AblationCompression()
	s.AblationSocReach()
	out := buf.String()
	for _, want := range []string{"spanning-forest", "compression", "B+-tree"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}

func TestPositiveRates(t *testing.T) {
	s, _ := tinySuite(t, "gowalla-like")
	rates := s.PositiveRates()
	r, ok := rates["gowalla-like"]
	if !ok {
		t.Fatal("missing rate")
	}
	if r < 0 || r > 1 {
		t.Errorf("rate %g out of [0,1]", r)
	}
}

func TestLatencyProfile(t *testing.T) {
	s, buf := tinySuite(t, "weeplaces-like")
	out := s.LatencyProfile()
	stats, ok := out["weeplaces-like"]
	if !ok {
		t.Fatal("missing dataset row")
	}
	for _, m := range core.AllMethods {
		st := stats[m]
		if st.P50 > st.P95 || st.P95 > st.P99 || st.P99 > st.Max {
			t.Errorf("%v: percentiles not monotone: %+v", m, st)
		}
		if st.Avg <= 0 {
			t.Errorf("%v: avg %v", m, st.Avg)
		}
	}
	if !strings.Contains(buf.String(), "p99") {
		t.Error("report missing percentiles")
	}
}

func TestPerfReport(t *testing.T) {
	s, _ := tinySuite(t, "weeplaces-like")
	r := s.PerfReport()
	if r.Schema != PerfSchema {
		t.Errorf("schema = %q", r.Schema)
	}
	if len(r.Datasets) != 1 {
		t.Fatalf("%d datasets", len(r.Datasets))
	}
	ds := r.Datasets[0]
	if ds.Name != "weeplaces-like" || ds.Vertices == 0 || ds.Edges == 0 || ds.SCCs == 0 {
		t.Errorf("dataset stats: %+v", ds)
	}
	if len(ds.Methods) != len(core.AllMethods)+1 { // fixed methods + Auto
		t.Fatalf("%d method rows, want %d", len(ds.Methods), len(core.AllMethods)+1)
	}
	if ds.Methods[len(ds.Methods)-1].Method != core.MethodAuto.String() {
		t.Errorf("last method row = %q, want the Auto composite", ds.Methods[len(ds.Methods)-1].Method)
	}
	if len(ds.RegionSweep) == 0 {
		t.Error("report missing region sweep")
	}
	for _, pt := range ds.RegionSweep {
		if len(pt.Methods) != len(sweepMethods) {
			t.Errorf("sweep point %v: %d methods, want %d", pt.ExtentPct, len(pt.Methods), len(sweepMethods))
		}
		for _, sm := range pt.Methods {
			if sm.P50Micros <= 0 || sm.P95Micros < sm.P50Micros {
				t.Errorf("sweep %v %s: stats not sane: %+v", pt.ExtentPct, sm.Method, sm)
			}
		}
	}
	for _, mr := range ds.Methods {
		if mr.IndexBytes <= 0 {
			t.Errorf("%s: index bytes %d", mr.Method, mr.IndexBytes)
		}
		if mr.AvgMicros <= 0 || mr.MaxMicros < mr.P99Micros || mr.P99Micros < mr.P50Micros {
			t.Errorf("%s: latency row not sane: %+v", mr.Method, mr)
		}
	}

	var buf bytes.Buffer
	if err := WritePerfJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Datasets[0].Methods[0].Method != ds.Methods[0].Method {
		t.Error("round-trip lost method names")
	}
}

func TestWriteFiguresCSV(t *testing.T) {
	s, _ := tinySuite(t, "weeplaces-like")
	figures := map[string][]FigureResult{"fig5": s.Figure5()}
	var buf bytes.Buffer
	if err := WriteFiguresCSV(&buf, figures); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "figure,dataset,xaxis,x,method,policy,avg_ns" {
		t.Errorf("header = %q", lines[0])
	}
	// 2 series × (5 extents + 5 degree buckets) = 20 rows + header.
	if len(lines) != 21 {
		t.Errorf("csv has %d lines, want 21", len(lines))
	}
	for _, line := range lines[1:] {
		if !strings.HasPrefix(line, "fig5,weeplaces-like,") {
			t.Errorf("unexpected row %q", line)
		}
	}
}

func TestFormatters(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:  "500ns",
		1500 * time.Nanosecond: "1.50µs",
		2 * time.Millisecond:   "2.00ms",
		3 * time.Second:        "3.00s",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
	if got := fmtBytes(512); got != "1KB" && got != "0KB" {
		t.Logf("fmtBytes(512) = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.00MB" {
		t.Errorf("fmtBytes = %q", got)
	}
	if got := fmtBytes(200 << 20); got != "200MB" {
		t.Errorf("fmtBytes = %q", got)
	}
	if fmtPct(5) != "5%" || fmtPct(0.01) != "0.01%" || fmtPct(0.001) != "0.001%" {
		t.Error("fmtPct wrong")
	}
}
