package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/labeling"
)

// Table3 prints the dataset characteristics table.
func (s *Suite) Table3() []dataset.Stats {
	s.printf("\n== Table 3: dataset characteristics ==\n")
	s.printf("%-16s %10s %10s %12s %10s %12s %10s %10s %14s\n",
		"dataset", "#users", "#venues", "#checkins", "|V|", "|E|", "|P|", "#SCCs", "largest SCC")
	var out []dataset.Stats
	for _, net := range s.nets {
		st := net.ComputeStats()
		out = append(out, st)
		s.printf("%-16s %10d %10d %12d %10d %12d %10d %10d %14d\n",
			st.Name, st.Users, st.Venues, st.Checkins,
			st.Vertices, st.Edges, st.Points, st.SCCs, st.LargestSCC)
	}
	return out
}

// IndexCostRow is one dataset's costs for every method, with the
// MBR-based variant in parentheses where it exists (Tables 4 and 5).
type IndexCostRow struct {
	Dataset string
	// Bytes[method] and MBRBytes[method]; MBRBytes is 0 where the
	// method has no MBR variant.
	Bytes, MBRBytes     map[core.Method]int64
	BuildNS, MBRBuildNS map[core.Method]int64
}

// Table4And5 builds every engine under both policies and prints the
// index-size (Table 4) and indexing-time (Table 5) tables.
func (s *Suite) Table4And5() []IndexCostRow {
	var rows []IndexCostRow
	for ds := range s.nets {
		row := IndexCostRow{
			Dataset:    s.nets[ds].Name,
			Bytes:      make(map[core.Method]int64),
			MBRBytes:   make(map[core.Method]int64),
			BuildNS:    make(map[core.Method]int64),
			MBRBuildNS: make(map[core.Method]int64),
		}
		for _, m := range core.AllMethods {
			res := s.engine(ds, m, dataset.Replicate)
			row.Bytes[m] = res.Bytes
			row.BuildNS[m] = res.BuildTime.Nanoseconds()
			if m.SupportsMBR() {
				mres := s.engine(ds, m, dataset.MBR)
				row.MBRBytes[m] = mres.Bytes
				row.MBRBuildNS[m] = mres.BuildTime.Nanoseconds()
			}
		}
		rows = append(rows, row)
	}

	s.printf("\n== Table 4: index size (MBR-based variant in parentheses) ==\n")
	s.printHeader()
	for _, row := range rows {
		s.printf("%-16s", row.Dataset)
		for _, m := range core.AllMethods {
			cell := fmtBytes(row.Bytes[m])
			if m.SupportsMBR() {
				cell += " (" + fmtBytes(row.MBRBytes[m]) + ")"
			}
			s.printf(" %-22s", cell)
		}
		s.printf("\n")
	}

	s.printf("\n== Table 5: indexing time (MBR-based variant in parentheses) ==\n")
	s.printHeader()
	for _, row := range rows {
		s.printf("%-16s", row.Dataset)
		for _, m := range core.AllMethods {
			cell := fmtDuration(asDuration(row.BuildNS[m]))
			if m.SupportsMBR() {
				cell += " (" + fmtDuration(asDuration(row.MBRBuildNS[m])) + ")"
			}
			s.printf(" %-22s", cell)
		}
		s.printf("\n")
	}
	return rows
}

func (s *Suite) printHeader() {
	s.printf("%-16s", "dataset")
	for _, m := range core.AllMethods {
		s.printf(" %-22s", m.String())
	}
	s.printf("\n")
}

// LabelStatsRow is one dataset's interval-labeling statistics (Table 6).
type LabelStatsRow struct {
	Dataset                        string
	Uncompressed, Compressed       int64
	RevUncompressed, RevCompressed int64
}

// Table6 prints the label counts of the forward and reversed schemes,
// uncompressed and compressed.
func (s *Suite) Table6() []LabelStatsRow {
	s.printf("\n== Table 6: interval-based labeling stats ==\n")
	s.printf("%-16s %16s %16s %20s %18s\n",
		"dataset", "uncompressed", "compressed", "rev-uncompressed", "rev-compressed")
	var rows []LabelStatsRow
	for ds := range s.nets {
		fwd := labeling.Build(s.preps[ds].DAG, labeling.Options{})
		rev := labeling.Build(s.preps[ds].DAG.Reverse(), labeling.Options{})
		row := LabelStatsRow{
			Dataset:         s.nets[ds].Name,
			Uncompressed:    fwd.UncompressedCount,
			Compressed:      fwd.CompressedCount,
			RevUncompressed: rev.UncompressedCount,
			RevCompressed:   rev.CompressedCount,
		}
		rows = append(rows, row)
		s.printf("%-16s %16d %16d %20d %18d\n",
			row.Dataset, row.Uncompressed, row.Compressed,
			row.RevUncompressed, row.RevCompressed)
	}
	return rows
}

// AblationForest compares DFS- and BFS-grown spanning forests by label
// counts (the paper's §8 future-work question about forest shape).
func (s *Suite) AblationForest() {
	s.printf("\n== Ablation: spanning-forest policy (compressed label count) ==\n")
	s.printf("%-16s %14s %14s\n", "dataset", "DFS forest", "BFS forest")
	for ds := range s.nets {
		dfs := labeling.Build(s.preps[ds].DAG, labeling.Options{Forest: graph.ForestDFS})
		bfs := labeling.Build(s.preps[ds].DAG, labeling.Options{Forest: graph.ForestBFS})
		s.printf("%-16s %14d %14d\n", s.nets[ds].Name, dfs.CompressedCount, bfs.CompressedCount)
	}
}

func asDuration(ns int64) time.Duration { return time.Duration(ns) }
