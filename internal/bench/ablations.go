package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// AblationCompression measures the effect of label compression on
// SocReach (the engine whose query cost is directly proportional to
// label-set sizes): query time and index footprint with and without the
// final absorb/merge pass of Algorithm 1 (lines 25–26).
func (s *Suite) AblationCompression() {
	s.printf("\n== Ablation: label compression (SocReach) ==\n")
	s.printf("%-16s %14s %14s %14s %14s\n",
		"dataset", "compressed", "qtime", "uncompressed", "qtime")
	for ds := range s.nets {
		qs := s.gens[ds].Batch(s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket)
		withC := core.NewSocReach(s.preps[ds], core.SocReachOptions{})
		withoutC := core.NewSocReach(s.preps[ds], core.SocReachOptions{SkipCompression: true})
		s.printf("%-16s %14s %14s %14s %14s\n",
			s.nets[ds].Name,
			fmtBytes(withC.MemoryBytes()), fmtDuration(avgQueryTime(withC, qs)),
			fmtBytes(withoutC.MemoryBytes()), fmtDuration(avgQueryTime(withoutC, qs)))
	}
}

// AblationSpaReach compares every reachability backend the spatial-first
// method can probe through: BFL and interval labels (the paper's two),
// plus PLL and Feline (the variants of [47], §2.2.1) and GRAIL (§7.1).
// Reported per backend: index size, build time and average query time on
// the default workload.
func (s *Suite) AblationSpaReach() {
	methods := append(append([]core.Method(nil),
		core.MethodSpaReachBFL, core.MethodSpaReachINT), core.ExtendedMethods...)
	s.printf("\n== Ablation: SpaReach reachability backends ==\n")
	for ds := range s.nets {
		qs := s.gens[ds].Batch(s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket)
		s.printf("\n-- %s --\n", s.nets[ds].Name)
		s.printf("%-18s %12s %12s %12s\n", "backend", "index", "build", "qtime")
		for _, m := range methods {
			res := s.engine(ds, m, dataset.Replicate)
			s.printf("%-18s %12s %12s %12s\n",
				m.String(), fmtBytes(res.Bytes), fmtDuration(res.BuildTime),
				fmtDuration(avgQueryTime(res.Engine, qs)))
		}
	}
}

// AblationStreaming quantifies how much of SpaReach's selectivity
// sensitivity is the two-phase materialization the original algorithm
// of [47] prescribes, by comparing it with the single-pass variant that
// probes inside the R-tree traversal and stops at the first witness.
func (s *Suite) AblationStreaming() {
	s.printf("\n== Ablation: SpaReach-BFL materialized (paper) vs streaming ==\n")
	s.printf("%-16s %14s %14s %14s %14s\n",
		"dataset", "5% extent", "(streaming)", "20% extent", "(streaming)")
	for ds := range s.nets {
		faithful := s.engine(ds, core.MethodSpaReachBFL, dataset.Replicate).Engine
		streaming := core.NewSpaReachBFL(s.preps[ds], core.SpaReachOptions{Streaming: true})
		row := []string{s.nets[ds].Name}
		for _, extent := range []float64{workload.DefaultExtent, 20} {
			qs := s.gens[ds].Batch(s.cfg.Queries, extent, workload.DefaultDegreeBucket)
			row = append(row,
				fmtDuration(avgQueryTime(faithful, qs)),
				fmtDuration(avgQueryTime(streaming, qs)))
		}
		s.printf("%-16s %14s %14s %14s %14s\n", row[0], row[1], row[2], row[3], row[4])
	}
}

// Ablation3DBackend compares the three 3D point indexes 3DReach can run
// on — R-tree (the paper's choice), k-d tree and uniform grid (§7.2) —
// by index size, build time and query time on the default workload.
func (s *Suite) Ablation3DBackend() {
	backends := []core.SpatialBackend{core.BackendRTree, core.BackendKDTree, core.BackendGrid}
	s.printf("\n== Ablation: 3DReach spatial backend ==\n")
	for ds := range s.nets {
		qs := s.gens[ds].Batch(s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket)
		s.printf("\n-- %s --\n", s.nets[ds].Name)
		s.printf("%-10s %12s %12s %12s\n", "backend", "index", "build", "qtime")
		for _, b := range backends {
			start := time.Now()
			e := core.NewThreeDReach(s.preps[ds], core.ThreeDOptions{Backend: b})
			build := time.Since(start)
			s.printf("%-10s %12s %12s %12s\n",
				b.String(), fmtBytes(e.MemoryBytes()), fmtDuration(build),
				fmtDuration(avgQueryTime(e, qs)))
		}
	}
}

// AblationSocReach compares SocReach's two descendant-scan backends: the
// plain post-order array (the paper's "simple for loops on the array
// storing the network vertices in main memory") against the B+-tree over
// post(v) that §4.1 offers for updatable networks.
func (s *Suite) AblationSocReach() {
	s.printf("\n== Ablation: SocReach descendant scan (array vs B+-tree) ==\n")
	s.printf("%-16s %14s %14s\n", "dataset", "array", "b+tree")
	for ds := range s.nets {
		qs := s.gens[ds].Batch(s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket)
		arr := core.NewSocReach(s.preps[ds], core.SocReachOptions{})
		bpt := core.NewSocReach(s.preps[ds], core.SocReachOptions{UseBPTree: true})
		s.printf("%-16s %14s %14s\n",
			s.nets[ds].Name,
			fmtDuration(avgQueryTime(arr, qs)),
			fmtDuration(avgQueryTime(bpt, qs)))
	}
}
