package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// Series is one plotted line: average query latency per x-axis value.
type Series struct {
	Method core.Method
	Policy dataset.SCCPolicy
	// Points maps x-label ("5%", "50-99", "0.01%") to the average
	// per-query latency.
	Points map[string]time.Duration
}

// FigureResult holds all series of one subplot.
type FigureResult struct {
	Dataset string
	XAxis   string // "extent", "degree" or "selectivity"
	Labels  []string
	Series  []Series
}

// varyingWorkloads enumerates the paper's three x-axes with the other
// parameters held at their defaults (§6.1).
func (s *Suite) varyingWorkloads(ds int, xaxis string) (labels []string, batches [][]workload.Query) {
	gen := s.gens[ds]
	n := s.cfg.Queries
	switch xaxis {
	case "extent":
		for _, pct := range workload.Extents {
			labels = append(labels, fmtPct(pct))
			batches = append(batches, gen.Batch(n, pct, workload.DefaultDegreeBucket))
		}
	case "degree":
		for _, b := range workload.DegreeBuckets {
			labels = append(labels, b.String())
			batches = append(batches, gen.Batch(n, workload.DefaultExtent, b))
		}
	case "selectivity":
		for _, sel := range workload.Selectivities {
			labels = append(labels, fmtPct(sel))
			batches = append(batches, gen.SelectivityBatch(n, sel, workload.DefaultDegreeBucket))
		}
	default:
		panic("bench: unknown x-axis " + xaxis)
	}
	return labels, batches
}

func fmtPct(v float64) string {
	switch {
	case v >= 1:
		return itoa(int(v)) + "%"
	case v >= 0.01:
		return trimFloat(v) + "%"
	default:
		return trimFloat(v) + "%"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func trimFloat(v float64) string {
	// Render 0.001, 0.01, 0.1 without trailing zeros.
	s := []byte("0.")
	for v < 1 && len(s) < 10 {
		v *= 10
		digit := int(v) % 10
		s = append(s, byte('0'+digit))
	}
	return string(s)
}

// runFigure measures the listed (method, policy) engines over the given
// x-axis for one dataset.
func (s *Suite) runFigure(ds int, xaxis string, combos []struct {
	m core.Method
	p dataset.SCCPolicy
}) FigureResult {
	labels, batches := s.varyingWorkloads(ds, xaxis)
	result := FigureResult{Dataset: s.nets[ds].Name, XAxis: xaxis, Labels: labels}
	for _, combo := range combos {
		res := s.engine(ds, combo.m, combo.p)
		series := Series{Method: combo.m, Policy: combo.p, Points: make(map[string]time.Duration)}
		for i, batch := range batches {
			series.Points[labels[i]] = avgQueryTime(res.Engine, batch)
		}
		result.Series = append(result.Series, series)
	}
	return result
}

func (s *Suite) printFigure(title string, results []FigureResult, withPolicy bool) {
	s.printf("\n== %s ==\n", title)
	for _, fr := range results {
		s.printf("\n-- %s, varying %s (avg query time over %d queries) --\n",
			fr.Dataset, fr.XAxis, s.cfg.Queries)
		s.printf("%-28s", "method")
		for _, l := range fr.Labels {
			s.printf(" %12s", l)
		}
		s.printf("\n")
		for _, series := range fr.Series {
			name := series.Method.String()
			if withPolicy {
				name += "/" + series.Policy.String()
			}
			s.printf("%-28s", name)
			for _, l := range fr.Labels {
				s.printf(" %12s", fmtDuration(series.Points[l]))
			}
			s.printf("\n")
		}
	}
}

// Figure5 compares the Replicate (non-MBR) and MBR policies for
// SpaReach-INT, varying the query extent and the query-vertex degree
// (paper Figure 5; the paper omits the other methods' variants as they
// behave alike).
func (s *Suite) Figure5() []FigureResult {
	combos := []struct {
		m core.Method
		p dataset.SCCPolicy
	}{
		{core.MethodSpaReachINT, dataset.Replicate},
		{core.MethodSpaReachINT, dataset.MBR},
	}
	var results []FigureResult
	for ds := range s.nets {
		for _, axis := range []string{"extent", "degree"} {
			results = append(results, s.runFigure(ds, axis, combos))
		}
	}
	s.printFigure("Figure 5: handling spatial SCCs (non-MBR vs MBR)", results, true)
	return results
}

// Figure6 compares the two spatial-first methods, SpaReach-BFL and
// SpaReach-INT (paper Figure 6).
func (s *Suite) Figure6() []FigureResult {
	combos := []struct {
		m core.Method
		p dataset.SCCPolicy
	}{
		{core.MethodSpaReachBFL, dataset.Replicate},
		{core.MethodSpaReachINT, dataset.Replicate},
	}
	var results []FigureResult
	for ds := range s.nets {
		for _, axis := range []string{"extent", "degree", "selectivity"} {
			results = append(results, s.runFigure(ds, axis, combos))
		}
	}
	s.printFigure("Figure 6: determining the best SpaReach", results, false)
	return results
}

// Figure7 is the main comparison: SpaReach-BFL, GeoReach, SocReach,
// 3DReach and 3DReach-Rev (paper Figure 7).
func (s *Suite) Figure7() []FigureResult {
	combos := []struct {
		m core.Method
		p dataset.SCCPolicy
	}{
		{core.MethodSpaReachBFL, dataset.Replicate},
		{core.MethodGeoReach, dataset.Replicate},
		{core.MethodSocReach, dataset.Replicate},
		{core.MethodThreeDReach, dataset.Replicate},
		{core.MethodThreeDReachRev, dataset.Replicate},
	}
	var results []FigureResult
	for ds := range s.nets {
		for _, axis := range []string{"extent", "degree", "selectivity"} {
			results = append(results, s.runFigure(ds, axis, combos))
		}
	}
	s.printFigure("Figure 7: comparing all evaluation methods", results, false)
	return results
}

// PositiveRates reports the share of TRUE answers in the default
// workload per dataset — a sanity check that negative queries (the
// methods' worst case) are exercised.
func (s *Suite) PositiveRates() map[string]float64 {
	out := make(map[string]float64)
	s.printf("\n== Workload positive-answer rates (default parameters) ==\n")
	for ds := range s.nets {
		qs := s.gens[ds].Batch(s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket)
		res := s.engine(ds, core.MethodThreeDReach, dataset.Replicate)
		rate := float64(positives(res.Engine, qs)) / float64(len(qs))
		out[s.nets[ds].Name] = rate
		s.printf("%-16s %.1f%% positive\n", s.nets[ds].Name, 100*rate)
	}
	return out
}
