package bench

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/planner"
	"repro/internal/workload"
)

func TestSweepDebug(t *testing.T) {
	if testing.Short() {
		t.Skip("debug harness")
	}
	s := NewSuite(Config{Scale: 0.3, Seed: 7, Queries: 300, Datasets: []string{"weeplaces-like"}})
	ds := 0
	auto := s.engine(ds, core.MethodAuto, dataset.Replicate).Engine.(*core.Auto)
	pl := auto.Planner()
	for _, ext := range workload.Extents {
		qs := s.gens[ds].Batch(s.cfg.Queries, ext, workload.DefaultDegreeBucket)
		before := auto.Choices()
		for p := 0; p < 2; p++ {
			for _, q := range qs {
				auto.RangeReach(q.Vertex, q.Region)
			}
		}
		mid := auto.Choices()
		lat := measureLatencies(auto, qs)
		after := auto.Choices()
		warm := make([]int64, len(mid))
		meas := make([]int64, len(mid))
		for i := range mid {
			warm[i] = mid[i] - before[i]
			meas[i] = after[i] - mid[i]
		}
		pin, ok := auto.Planner().Pinned()
		direct := []string{}
		for _, e := range auto.Members() {
			dl := measureLatencies(e, qs)
			direct = append(direct, fmt.Sprintf("%s=%v", e.Name(), dl.P50))
		}
		coefs := []string{}
		for i := range auto.Members() {
			coefs = append(coefs, fmt.Sprintf("%.3g", pl.Model().Coef(i)))
		}
		// predictions for a few queries of this batch
		var buf [planner.MaxMembers]float64
		preds := ""
		for qi := 0; qi < 3; qi++ {
			q := qs[qi*97%len(qs)]
			works := pl.EstimateWorks(q.Vertex, q.Region, buf[:])
			row := []string{}
			for i := range auto.Members() {
				row = append(row, fmt.Sprintf("%.0fns/w%.0f", pl.Model().Predict(i, works[i])*1e9, works[i]))
			}
			preds += fmt.Sprintf(" q%d=%v", qi, row)
		}
		fmt.Printf("ext %4.1f%% warm=%v measure=%v p50=%v pinned=%d,%v direct=%v coefs=%v%s\n",
			ext, warm, meas, lat.P50, pin, ok, direct, coefs, preds)
	}
}
