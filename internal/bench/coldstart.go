package bench

import (
	"errors"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ColdStartRow is one cold-start measurement: the time to bring a
// persisted index back to a queryable state on one dataset×method, by
// one of the two load paths. mode "decode" is the streaming LoadIndex
// path (reads and copies every structure); mode "mmap" is OpenMapped
// (overlays the index over the mapped file, O(1) allocations). Both
// rows of a pair load the same file, so file_bytes matches and the
// load_ms gap is the decode cost the mmap path skips.
type ColdStartRow struct {
	Dataset     string  `json:"dataset"`
	Method      string  `json:"method"`
	Mode        string  `json:"mode"`
	LoadMillis  float64 `json:"load_ms"`
	MappedBytes int64   `json:"mapped_bytes,omitempty"`
	FileBytes   int64   `json:"file_bytes"`
}

// coldStartReps is the best-of repetition count per load path: the
// first mmap open after a save can pay one-off page-cache and metadata
// costs that a warm server restart would not, and best-of filters them
// the same way the sweep timings filter scheduler noise.
const coldStartReps = 3

// ColdStart saves every persistable engine to a scratch file and times
// both load paths over it. Results are cached on the suite so a -json
// report emitted afterwards carries them without re-measuring.
func (s *Suite) ColdStart() []ColdStartRow {
	if s.cold != nil {
		return s.cold
	}
	dir, err := os.MkdirTemp("", "rrbench-coldstart-*")
	if err != nil {
		s.printf("cold-start: %v (skipping)\n", err)
		return nil
	}
	defer os.RemoveAll(dir)

	s.printf("\n== Cold start: decode load vs mmap ==\n")
	rows := make([]ColdStartRow, 0, len(s.nets)*len(core.AllMethods)*2)
	for ds := range s.nets {
		for _, m := range core.AllMethods {
			res := s.engine(ds, m, dataset.Replicate)
			path := filepath.Join(dir, "idx")
			if err := saveEngineFile(path, res.Engine); err != nil {
				if errors.Is(err, core.ErrNotPersistable) {
					continue
				}
				s.printf("cold-start: save %s/%v: %v (skipping)\n", s.nets[ds].Name, m, err)
				continue
			}
			st, err := os.Stat(path)
			if err != nil {
				s.printf("cold-start: %v (skipping)\n", err)
				continue
			}
			decode, err := timeDecodeLoad(path, s.preps[ds])
			if err != nil {
				s.printf("cold-start: decode %s/%v: %v (skipping)\n", s.nets[ds].Name, m, err)
				continue
			}
			mmapD, mappedBytes, err := timeMappedLoad(path, s.preps[ds])
			if err != nil {
				s.printf("cold-start: mmap %s/%v: %v (skipping)\n", s.nets[ds].Name, m, err)
				continue
			}
			rows = append(rows,
				ColdStartRow{
					Dataset: s.nets[ds].Name, Method: m.String(), Mode: "decode",
					LoadMillis: millis(decode), FileBytes: st.Size(),
				},
				ColdStartRow{
					Dataset: s.nets[ds].Name, Method: m.String(), Mode: "mmap",
					LoadMillis: millis(mmapD), MappedBytes: mappedBytes, FileBytes: st.Size(),
				},
			)
			s.printf("  %-16s %-14s %8s file  decode %8s  mmap %8s\n",
				s.nets[ds].Name, m.String(), fmtBytes(st.Size()), fmtDuration(decode), fmtDuration(mmapD))
		}
	}
	s.cold = rows
	return rows
}

func millis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// saveEngineFile persists an engine the way Index.SaveFile does, minus
// the durability fsyncs a scratch measurement does not need.
func saveEngineFile(path string, e core.Engine) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := core.SaveEngine(f, e); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// timeDecodeLoad measures the streaming-decode load path, best of
// coldStartReps.
func timeDecodeLoad(path string, prep *dataset.Prepared) (time.Duration, error) {
	var best time.Duration
	for rep := 0; rep < coldStartReps; rep++ {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		_, err = core.LoadEngine(f, prep, core.BuildOptions{})
		d := time.Since(start)
		_ = f.Close()
		if err != nil {
			return 0, err
		}
		if rep == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// timeMappedLoad measures the zero-copy mmap load path, best of
// coldStartReps.
func timeMappedLoad(path string, prep *dataset.Prepared) (time.Duration, int64, error) {
	var best time.Duration
	var mapped int64
	for rep := 0; rep < coldStartReps; rep++ {
		start := time.Now()
		res, closer, err := core.OpenMappedEngine(path, prep, core.BuildOptions{})
		d := time.Since(start)
		if err != nil {
			return 0, 0, err
		}
		mapped = res.MappedBytes
		_ = closer.Close()
		if rep == 0 || d < best {
			best = d
		}
	}
	return best, mapped, nil
}
