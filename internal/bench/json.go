package bench

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// PerfReport is the machine-readable benchmark artifact behind
// rrbench -json: per dataset and method, the offline costs (build time,
// index size) and the online latency distribution on the default
// workload. The schema field versions the layout so downstream tooling
// can detect changes.
type PerfReport struct {
	Schema  string  `json:"schema"`
	Scale   float64 `json:"scale"`
	Queries int     `json:"queries"`
	Seed    int64   `json:"seed"`

	Datasets []DatasetReport `json:"datasets"`
}

// PerfSchema identifies the current PerfReport layout.
const PerfSchema = "rrbench/v1"

// DatasetReport is one dataset's slice of the report.
type DatasetReport struct {
	Name     string         `json:"name"`
	Vertices int            `json:"vertices"`
	Edges    int            `json:"edges"`
	Venues   int            `json:"venues"`
	SCCs     int            `json:"sccs"`
	Methods  []MethodReport `json:"methods"`
}

// MethodReport is one method's offline and online costs on a dataset.
// Latencies are in microseconds — the natural unit of the paper's
// figures.
type MethodReport struct {
	Method      string  `json:"method"`
	BuildMillis float64 `json:"build_ms"`
	IndexBytes  int64   `json:"index_bytes"`
	AvgMicros   float64 `json:"avg_us"`
	P50Micros   float64 `json:"p50_us"`
	P95Micros   float64 `json:"p95_us"`
	P99Micros   float64 `json:"p99_us"`
	MaxMicros   float64 `json:"max_us"`
	Positives   int     `json:"positives"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// PerfReport measures every method on every configured dataset under
// the default workload and assembles the machine-readable report.
func (s *Suite) PerfReport() PerfReport {
	report := PerfReport{
		Schema:  PerfSchema,
		Scale:   s.cfg.Scale,
		Queries: s.cfg.Queries,
		Seed:    s.cfg.Seed,
	}
	for ds := range s.nets {
		st := s.nets[ds].ComputeStats()
		dr := DatasetReport{
			Name:     s.nets[ds].Name,
			Vertices: st.Vertices,
			Edges:    st.Edges,
			Venues:   st.Venues,
			SCCs:     st.SCCs,
		}
		qs := s.gens[ds].Batch(s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket)
		for _, m := range core.AllMethods {
			res := s.engine(ds, m, dataset.Replicate)
			lat := measureLatencies(res.Engine, qs)
			dr.Methods = append(dr.Methods, MethodReport{
				Method:      m.String(),
				BuildMillis: float64(res.BuildTime.Nanoseconds()) / 1e6,
				IndexBytes:  res.Bytes,
				AvgMicros:   micros(lat.Avg),
				P50Micros:   micros(lat.P50),
				P95Micros:   micros(lat.P95),
				P99Micros:   micros(lat.P99),
				MaxMicros:   micros(lat.Max),
				Positives:   positives(res.Engine, qs),
			})
		}
		report.Datasets = append(report.Datasets, dr)
	}
	return report
}

// WritePerfJSON renders the report as indented JSON.
func WritePerfJSON(w io.Writer, r PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
