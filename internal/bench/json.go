package bench

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// PerfReport is the machine-readable benchmark artifact behind
// rrbench -json: per dataset and method, the offline costs (build time,
// index size) and the online latency distribution on the default
// workload. The schema field versions the layout so downstream tooling
// can detect changes.
type PerfReport struct {
	Schema      string  `json:"schema"`
	Scale       float64 `json:"scale"`
	Queries     int     `json:"queries"`
	Seed        int64   `json:"seed"`
	Parallelism int     `json:"parallelism,omitempty"`

	Datasets []DatasetReport `json:"datasets"`
	// UpdateChurn carries the dynamic-maintenance experiment when the
	// update-churn experiment ran before the report was emitted.
	UpdateChurn []ChurnReport `json:"update_churn,omitempty"`
	// ColdStart carries the persisted-index load timings: per
	// dataset×method, the streaming-decode load next to the zero-copy
	// mmap open of the same file.
	ColdStart []ColdStartRow `json:"cold_start,omitempty"`
}

// PerfSchema identifies the current PerfReport layout. v2 added the
// Auto composite to the method rows and the region_sweep section; v3
// added the build parallelism and the per-phase build breakdown; v4
// added the update_churn section; v5 added the cold_start section
// (all additive — v2 readers parse v5 reports).
const PerfSchema = "rrbench/v5"

// DatasetReport is one dataset's slice of the report.
type DatasetReport struct {
	Name        string         `json:"name"`
	Vertices    int            `json:"vertices"`
	Edges       int            `json:"edges"`
	Venues      int            `json:"venues"`
	SCCs        int            `json:"sccs"`
	Methods     []MethodReport `json:"methods"`
	RegionSweep []SweepPoint   `json:"region_sweep"`
}

// SweepPoint is one region-extent step of the sweep: the planner's
// routing problem at one selectivity, with the Auto composite measured
// against the fixed methods it routes over.
type SweepPoint struct {
	ExtentPct float64            `json:"extent_pct"`
	Methods   []SweepMethodStats `json:"methods"`
}

// SweepMethodStats is one method's latency distribution at one sweep
// point, in microseconds.
type SweepMethodStats struct {
	Method    string  `json:"method"`
	AvgMicros float64 `json:"avg_us"`
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
}

// MethodReport is one method's offline and online costs on a dataset.
// Latencies are in microseconds — the natural unit of the paper's
// figures.
type MethodReport struct {
	Method      string        `json:"method"`
	BuildMillis float64       `json:"build_ms"`
	BuildPhases []PhaseReport `json:"build_phases,omitempty"`
	IndexBytes  int64         `json:"index_bytes"`
	AvgMicros   float64       `json:"avg_us"`
	P50Micros   float64       `json:"p50_us"`
	P95Micros   float64       `json:"p95_us"`
	P99Micros   float64       `json:"p99_us"`
	MaxMicros   float64       `json:"max_us"`
	Positives   int           `json:"positives"`
}

// PhaseReport attributes part of a build to one pipeline phase. Under
// parallel builds phases accumulate work time independently, so their
// sum can exceed the wall-clock build_ms.
type PhaseReport struct {
	Phase  string  `json:"phase"`
	Millis float64 `json:"ms"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// PerfReport measures every method on every configured dataset under
// the default workload and assembles the machine-readable report.
func (s *Suite) PerfReport() PerfReport {
	report := PerfReport{
		Schema:      PerfSchema,
		Scale:       s.cfg.Scale,
		Queries:     s.cfg.Queries,
		Seed:        s.cfg.Seed,
		Parallelism: s.cfg.Parallelism,
	}
	for ds := range s.nets {
		st := s.nets[ds].ComputeStats()
		dr := DatasetReport{
			Name:     s.nets[ds].Name,
			Vertices: st.Vertices,
			Edges:    st.Edges,
			Venues:   st.Venues,
			SCCs:     st.SCCs,
		}
		qs := s.gens[ds].Batch(s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket)
		methods := append(append([]core.Method(nil), core.AllMethods...), core.MethodAuto)
		for _, m := range methods {
			res := s.engine(ds, m, dataset.Replicate)
			lat := measureLatencies(res.Engine, qs)
			var phases []PhaseReport
			for _, ph := range res.Phases {
				phases = append(phases, PhaseReport{
					Phase:  ph.Name,
					Millis: float64(ph.Duration.Nanoseconds()) / 1e6,
				})
			}
			dr.Methods = append(dr.Methods, MethodReport{
				Method:      m.String(),
				BuildMillis: float64(res.BuildTime.Nanoseconds()) / 1e6,
				BuildPhases: phases,
				IndexBytes:  res.Bytes,
				AvgMicros:   micros(lat.Avg),
				P50Micros:   micros(lat.P50),
				P95Micros:   micros(lat.P95),
				P99Micros:   micros(lat.P99),
				MaxMicros:   micros(lat.Max),
				Positives:   positives(res.Engine, qs),
			})
		}
		dr.RegionSweep = s.regionSweep(ds)
		report.Datasets = append(report.Datasets, dr)
	}
	report.UpdateChurn = s.churn
	report.ColdStart = s.ColdStart()
	return report
}

// sweepMethods are the fixed engines the Auto composite routes over by
// default, compared against the composite itself. The sweep is the
// planner's acceptance surface: at every extent the adaptive row should
// track the best fixed row.
var sweepMethods = []core.Method{
	core.MethodSocReach, core.MethodThreeDReachRev, core.MethodSpaReachINT, core.MethodAuto,
}

// sweepReps is the best-of repetition count for sweep timings (see
// measureLatenciesBest).
const sweepReps = 3

// regionSweep measures the sweep methods across the paper's region
// extents (1–20% of the space per axis). Each extent gets its own query
// batch; engines are reused across extents, so the Auto row's feedback
// loop warms over the sweep exactly as it would in a long-lived server.
//
// The sweep compares methods that sit within tens of nanoseconds of
// each other, so the measurement is interleaved: every method is timed
// (best of sweepReps) on a query before moving to the next query. The
// per-method samples at one sweep point are then taken microseconds —
// not tens of milliseconds — apart, and slow environment noise
// (scheduler interference, CPU frequency and steal on shared hosts)
// hits all methods alike instead of skewing their ratios.
func (s *Suite) regionSweep(ds int) []SweepPoint {
	var points []SweepPoint
	for _, ext := range workload.Extents {
		qs := s.gens[ds].Batch(s.cfg.Queries, ext, workload.DefaultDegreeBucket)
		pt := SweepPoint{ExtentPct: ext}
		engines := make([]core.Engine, len(sweepMethods))
		for mi, m := range sweepMethods {
			engines[mi] = s.engine(ds, m, dataset.Replicate).Engine
			// Warm passes: the first queries at a new extent teach the
			// planner the regime; fixed methods are unaffected. The
			// adaptive engine gets extra passes so its feedback loop and
			// routing lock-on settle before measurement — the steady
			// state a long-lived server would be in.
			passes := 1
			if m == core.MethodAuto {
				passes = 3
			}
			for p := 0; p < passes; p++ {
				for _, q := range qs {
					engines[mi].RangeReach(q.Vertex, q.Region)
				}
			}
		}
		samples := make([][]time.Duration, len(sweepMethods))
		for mi := range samples {
			samples[mi] = make([]time.Duration, 0, len(qs))
		}
		for _, q := range qs {
			for mi := range sweepMethods {
				best := time.Duration(0)
				for rep := 0; rep < sweepReps; rep++ {
					start := time.Now()
					engines[mi].RangeReach(q.Vertex, q.Region)
					d := time.Since(start)
					if rep == 0 || d < best {
						best = d
					}
				}
				samples[mi] = append(samples[mi], best)
			}
		}
		for mi, m := range sweepMethods {
			lat := statsOf(samples[mi])
			pt.Methods = append(pt.Methods, SweepMethodStats{
				Method:    m.String(),
				AvgMicros: micros(lat.Avg),
				P50Micros: micros(lat.P50),
				P95Micros: micros(lat.P95),
			})
		}
		points = append(points, pt)
	}
	return points
}

// WritePerfJSON renders the report as indented JSON.
func WritePerfJSON(w io.Writer, r PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
