package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteFiguresCSV writes figure series in tidy long format —
// one row per (dataset, x-axis, x, method, policy) — for downstream
// plotting:
//
//	figure,dataset,xaxis,x,method,policy,avg_ns
func WriteFiguresCSV(w io.Writer, figures map[string][]FigureResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "dataset", "xaxis", "x", "method", "policy", "avg_ns"}); err != nil {
		return fmt.Errorf("bench: writing csv header: %w", err)
	}
	names := make([]string, 0, len(figures))
	for name := range figures {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, fr := range figures[name] {
			for _, series := range fr.Series {
				for _, label := range fr.Labels {
					row := []string{
						name, fr.Dataset, fr.XAxis, label,
						series.Method.String(), series.Policy.String(),
						fmt.Sprintf("%d", series.Points[label].Nanoseconds()),
					}
					if err := cw.Write(row); err != nil {
						return fmt.Errorf("bench: writing csv row: %w", err)
					}
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
