package bench

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
)

// LatencyStats summarizes a per-query latency distribution.
type LatencyStats struct {
	Avg, P50, P95, P99, Max time.Duration
}

// measureLatencies runs the workload and returns the full distribution —
// the production-harness view behind rrbench -exp latency, complementing
// the paper's averages.
func measureLatencies(e core.Engine, qs []workload.Query) LatencyStats {
	samples := make([]time.Duration, len(qs))
	var total time.Duration
	for i, q := range qs {
		start := time.Now()
		e.RangeReach(q.Vertex, q.Region)
		samples[i] = time.Since(start)
		total += samples[i]
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pick := func(q float64) time.Duration {
		if len(samples) == 0 {
			return 0
		}
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	stats := LatencyStats{
		P50: pick(0.50),
		P95: pick(0.95),
		P99: pick(0.99),
	}
	if len(samples) > 0 {
		stats.Avg = total / time.Duration(len(samples))
		stats.Max = samples[len(samples)-1]
	}
	return stats
}

// measureLatenciesBest times each query reps times and keeps the
// per-query minimum before computing the distribution. Single-shot
// timing of sub-microsecond queries is dominated by clock-read overhead
// and scheduler interference; the minimum over a few repetitions is the
// standard microbenchmark estimate of the query's intrinsic cost. Used
// by the region sweep, where methods within tens of nanoseconds of each
// other are compared; applied identically to every method.
func measureLatenciesBest(e core.Engine, qs []workload.Query, reps int) LatencyStats {
	samples := make([]time.Duration, len(qs))
	for i, q := range qs {
		best := time.Duration(0)
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			e.RangeReach(q.Vertex, q.Region)
			d := time.Since(start)
			if rep == 0 || d < best {
				best = d
			}
		}
		samples[i] = best
	}
	return statsOf(samples)
}

// statsOf computes the distribution summary of raw per-query samples.
// The slice is sorted in place.
func statsOf(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	var total time.Duration
	for _, d := range samples {
		total += d
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pick := func(q float64) time.Duration {
		return samples[int(q*float64(len(samples)-1))]
	}
	return LatencyStats{
		Avg: total / time.Duration(len(samples)),
		P50: pick(0.50),
		P95: pick(0.95),
		P99: pick(0.99),
		Max: samples[len(samples)-1],
	}
}

// NegativeProfile measures every method on an all-negative workload —
// queries whose answer is FALSE — the worst case the paper highlights
// for SpaReach (all candidates probed), SocReach (all descendants
// tested) and GeoReach (large traversals) in §2.2.3 and §6.4. 3DReach
// must still evaluate every cuboid, but each 3D range query fails fast.
func (s *Suite) NegativeProfile() {
	s.printf("\n== Negative-query profile (answer = FALSE, %d queries, 5%% extent) ==\n",
		s.cfg.Queries)
	for ds := range s.nets {
		oracleEngine := s.engine(ds, core.MethodThreeDReach, dataset.Replicate).Engine
		oracle := func(q workload.Query) bool {
			return oracleEngine.RangeReach(q.Vertex, q.Region)
		}
		qs, matched := s.gens[ds].FilteredBatch(
			s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket,
			false, oracle, 0)
		s.printf("\n-- %s (%d/%d strictly negative) --\n", s.nets[ds].Name, matched, len(qs))
		s.printf("%-16s %10s %10s %10s\n", "method", "avg", "p95", "max")
		for _, m := range core.AllMethods {
			res := s.engine(ds, m, dataset.Replicate)
			st := measureLatencies(res.Engine, qs)
			s.printf("%-16s %10s %10s %10s\n",
				m.String(), fmtDuration(st.Avg), fmtDuration(st.P95), fmtDuration(st.Max))
		}
	}
}

// LatencyProfile prints the per-query latency distribution of every
// method on the default workload. Tail latencies expose what averages
// hide: GeoReach's and SocReach's worst cases are negative queries that
// traverse or enumerate far more than the mean query does.
func (s *Suite) LatencyProfile() map[string]map[core.Method]LatencyStats {
	out := make(map[string]map[core.Method]LatencyStats)
	s.printf("\n== Latency profile (default workload: %d queries, 5%% extent, degree 50-99) ==\n",
		s.cfg.Queries)
	for ds := range s.nets {
		qs := s.gens[ds].Batch(s.cfg.Queries, workload.DefaultExtent, workload.DefaultDegreeBucket)
		s.printf("\n-- %s --\n", s.nets[ds].Name)
		s.printf("%-16s %10s %10s %10s %10s %10s\n", "method", "avg", "p50", "p95", "p99", "max")
		row := make(map[core.Method]LatencyStats)
		for _, m := range core.AllMethods {
			res := s.engine(ds, m, dataset.Replicate)
			st := measureLatencies(res.Engine, qs)
			row[m] = st
			s.printf("%-16s %10s %10s %10s %10s %10s\n",
				m.String(), fmtDuration(st.Avg), fmtDuration(st.P50),
				fmtDuration(st.P95), fmtDuration(st.P99), fmtDuration(st.Max))
		}
		out[s.nets[ds].Name] = row
	}
	return out
}
