package trace

import (
	"sort"
	"sync"
	"time"
)

// BuildPhase is the recorded duration of one named index-construction
// phase — "labeling", "spatial", "members" and the like. Phases are the
// build-time analogue of the per-query Stage durations: they let
// rrbench and the server attribute build wall-clock to pipeline stages
// instead of reporting a single opaque build_ms.
type BuildPhase struct {
	Name     string
	Duration time.Duration
}

// BuildSpan accumulates named phase durations during index
// construction. Unlike the per-query Span it is mutex-protected:
// parallel build pipelines time concurrent phases from multiple
// goroutines. A nil *BuildSpan disables collection — every method is
// safe to call and reduces to one branch, mirroring the Span
// convention.
type BuildSpan struct {
	mu     sync.Mutex
	phases []BuildPhase //lint:guardedby mu
}

// Start returns the current time when the span is enabled, the zero
// time otherwise. Pair with End.
func (b *BuildSpan) Start() time.Time {
	if b == nil {
		return time.Time{}
	}
	return time.Now()
}

// End accumulates the elapsed time since start into the named phase.
// Repeated Ends with one name merge into a single phase, so per-member
// sub-builds of the same kind aggregate. A no-op on a nil span.
func (b *BuildSpan) End(name string, start time.Time) {
	if b == nil {
		return
	}
	b.Add(name, time.Since(start))
}

// Add accumulates d into the named phase directly. A no-op on a nil
// span.
func (b *BuildSpan) Add(name string, d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.phases {
		if b.phases[i].Name == name {
			b.phases[i].Duration += d
			return
		}
	}
	b.phases = append(b.phases, BuildPhase{Name: name, Duration: d})
}

// Phases returns the recorded phases sorted by name. Sorting — rather
// than first-recorded order — keeps the output deterministic when
// concurrent pipeline stages race to record their first sample.
// Returns nil on a nil span.
func (b *BuildSpan) Phases() []BuildPhase {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BuildPhase, len(b.phases))
	copy(out, b.phases)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
