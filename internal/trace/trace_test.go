package trace

import (
	"testing"
	"time"
)

// TestNilSpanSafe exercises every method on a nil span: the disabled
// path must be a no-op, never a panic.
func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	sp.AddLabels(3)
	sp.IncNode()
	sp.IncLeaf()
	sp.AddEntries(7)
	sp.IncCandidate()
	sp.IncReachProbe()
	sp.IncGraphVisited()
	sp.AddEnumerated(2)
	sp.IncMember()
	if start := sp.Start(); !start.IsZero() {
		t.Error("nil span Start() should return the zero time")
	}
	sp.End(StageSpatial, time.Time{})
	if sp.Enabled() {
		t.Error("nil span reports Enabled")
	}
}

func TestSpanCounts(t *testing.T) {
	var sp Span
	sp.AddLabels(2)
	sp.AddLabels(1)
	sp.IncNode()
	sp.IncNode()
	sp.IncLeaf()
	sp.AddEntries(5)
	sp.IncCandidate()
	sp.IncReachProbe()
	sp.IncGraphVisited()
	sp.AddEnumerated(4)
	sp.IncMember()
	want := Counters{
		Labels: 3, IndexNodes: 2, IndexLeaves: 1, IndexEntries: 5,
		Candidates: 1, ReachProbes: 1, GraphVisited: 1, Enumerated: 4,
		Members: 1,
	}
	if sp.Counters != want {
		t.Errorf("counters = %+v, want %+v", sp.Counters, want)
	}
	if !sp.Enabled() {
		t.Error("non-nil span not Enabled")
	}

	sp.Reset()
	if sp.Counters != (Counters{}) {
		t.Errorf("Reset left counters %+v", sp.Counters)
	}
}

func TestSpanStageTiming(t *testing.T) {
	var sp Span
	start := sp.Start()
	if start.IsZero() {
		t.Fatal("enabled span Start() returned zero time")
	}
	time.Sleep(time.Millisecond)
	sp.End(StageReach, start)
	if sp.Durations[StageReach] <= 0 {
		t.Errorf("StageReach duration = %v, want > 0", sp.Durations[StageReach])
	}
	if sp.Durations[StageSpatial] != 0 {
		t.Errorf("untouched stage has duration %v", sp.Durations[StageSpatial])
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Labels: 1, IndexNodes: 2, Members: 3}
	b := Counters{Labels: 10, Candidates: 5, Members: 1}
	a.Add(b)
	if a.Labels != 11 || a.IndexNodes != 2 || a.Candidates != 5 || a.Members != 4 {
		t.Errorf("Add produced %+v", a)
	}
}

func TestStageStrings(t *testing.T) {
	seen := map[string]bool{}
	for st := Stage(0); st < NumStages; st++ {
		name := st.String()
		if name == "unknown" || name == "" {
			t.Errorf("stage %d has no name", st)
		}
		if seen[name] {
			t.Errorf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
}
