// Cluster-level tracing: the serializable span model that lets the
// router tier stitch one end-to-end picture of a distributed query out
// of its own orchestration steps (placement, fan-out, hedges, early
// exits) and each shard's engine profile.
//
// The in-process Span stays what it is — an allocation-free counter
// sink threaded through one engine evaluation. A ClusterSpan is the
// opposite trade: it exists only on traced requests, is built a
// handful at a time, and is meant to cross process boundaries as JSON.
// The two meet where rrserve converts a completed Span into QueryStats
// and returns it in the response body; the router embeds those stats
// verbatim into the shard's ClusterSpan.
//
// Trace identity follows the W3C Trace Context format: requests carry
// a `traceparent` header `00-<32 hex trace-id>-<16 hex parent-id>-01`,
// the router adopts a client-supplied trace id (so rrquery -trace and
// rrload -trace can find their own traces again) or mints one, and
// every router→shard hop gets a fresh parent span id.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Tier names for ClusterSpan.Tier.
const (
	TierRouter = "router"
	TierShard  = "shard"
)

// NoShard is the ClusterSpan.Shard value of router-tier spans.
const NoShard = -1

// NewTraceID returns a 32-hex-digit random trace id. It never returns
// the all-zero id, which the W3C format reserves as invalid.
func NewTraceID() string { return randomHex(16) }

// NewSpanID returns a 16-hex-digit random span id.
func NewSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	b := make([]byte, n)
	for {
		if _, err := rand.Read(b); err != nil {
			panic(fmt.Sprintf("trace: reading random ids: %v", err))
		}
		for _, x := range b {
			if x != 0 {
				return hex.EncodeToString(b)
			}
		}
		// All-zero draw (astronomically unlikely): invalid per spec, retry.
	}
}

// TraceparentHeader is the propagation header name.
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a traceparent header value with the
// sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent extracts the trace and parent span ids from a
// traceparent header value. It accepts version 00 exactly and rejects
// malformed or all-zero ids, returning ok=false; callers treat that as
// "no trace requested" rather than an error, per the W3C spec.
func ParseTraceparent(value string) (traceID, spanID string, ok bool) {
	if len(value) != 55 || value[:3] != "00-" || value[35] != '-' || value[52] != '-' {
		return "", "", false
	}
	traceID, spanID = value[3:35], value[36:52]
	if !isHex(traceID) || !isHex(spanID) || allZero(traceID) || allZero(spanID) {
		return "", "", false
	}
	return traceID, spanID, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ClusterSpan is one step of a distributed query: a router
// orchestration phase (placement, fan-out, a hedge fire) or one shard
// call. Times are offsets from the owning ClusterTrace's start so a
// stitched trace is self-contained regardless of clock skew between
// the processes that contributed to it — only the router's clock is
// ever read.
type ClusterSpan struct {
	// Name identifies the step: "placement", "fanout", "shard_call",
	// "hedge", ...
	Name string `json:"name"`
	// Tier is TierRouter or TierShard.
	Tier string `json:"tier"`
	// Shard is the shard id for shard-tier spans, NoShard for router
	// spans.
	Shard int `json:"shard"`
	// StartNS is the span's start as nanoseconds since the trace began.
	StartNS int64 `json:"start_ns"`
	// DurationNS is the span's wall-clock length in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Err records why the step failed ("canceled" for early-exit
	// victims); empty on success.
	Err string `json:"error,omitempty"`
	// Attrs carries small step-specific facts (backend URL, pruned
	// counts, hedged flag) as strings.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Stats embeds the shard's own QueryStats JSON verbatim for
	// shard_call spans — the router does not reinterpret it, so the
	// shard's stage and counter vocabulary survives the hop unchanged.
	Stats json.RawMessage `json:"stats,omitempty"`
}

// ClusterTrace is one stitched end-to-end query trace.
type ClusterTrace struct {
	TraceID string `json:"trace_id"`
	// Endpoint is the router endpoint that served the request ("query",
	// "batch").
	Endpoint string `json:"endpoint"`
	// Start is the router-clock wall time the request began.
	Start time.Time `json:"start"`
	// DurationNS is the end-to-end request latency in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Status is the HTTP status the router answered with.
	Status int `json:"status"`
	// Reason records why the trace was retained: "forced" (client sent
	// traceparent), "error", "slow" or "sampled".
	Reason string `json:"reason,omitempty"`
	// Spans are the steps, in completion order (concurrent shard calls
	// finish in whatever order the cluster produced).
	Spans []ClusterSpan `json:"spans"`
}

// ShardSpans returns the spans contributed by shard sid, preserving
// order. A helper for tests and the parity checks.
func (t *ClusterTrace) ShardSpans(sid int) []ClusterSpan {
	var out []ClusterSpan
	for _, sp := range t.Spans {
		if sp.Tier == TierShard && sp.Shard == sid {
			out = append(out, sp)
		}
	}
	return out
}

// Retention reasons for ClusterTrace.Reason.
const (
	ReasonForced  = "forced"
	ReasonError   = "error"
	ReasonSlow    = "slow"
	ReasonSampled = "sampled"
)

// Sampler implements tail-based retention: the decision whether to
// keep a collected trace happens after the request finished, when its
// latency and status are known. Slow and errored traces are always
// kept — those are the ones worth debugging — and the healthy
// remainder is down-sampled to one in N by a deterministic tick
// counter, so a steady request stream retains a steady trace stream.
type Sampler struct {
	// N keeps one of every N fast, healthy traces; N <= 0 keeps none of
	// them (slow/error/forced traces are still kept).
	N int
	// Slow is the latency at or above which a trace is always kept.
	// Zero disables the slow rule.
	Slow time.Duration

	tick atomic.Uint64 //lint:monotonic
}

// Keep decides retention for one finished trace and reports the
// decision's reason. forced marks traces the client explicitly asked
// for (traceparent header), which are always kept.
func (s *Sampler) Keep(elapsed time.Duration, isError, forced bool) (bool, string) {
	switch {
	case forced:
		return true, ReasonForced
	case isError:
		return true, ReasonError
	case s.Slow > 0 && elapsed >= s.Slow:
		return true, ReasonSlow
	}
	if s.N > 0 && s.tick.Add(1)%uint64(s.N) == 0 {
		return true, ReasonSampled
	}
	return false, ""
}

// Ring is a fixed-capacity buffer of recent traces with id lookup.
// Writers evict the oldest trace; readers (GET /v1/trace/{id}, rrtop's
// recent-traces pane) race freely with in-flight scatter-gathers, so
// everything is mutex-guarded — trace retrieval is an operator path,
// not a query path.
type Ring struct {
	mu   sync.Mutex
	buf  []*ClusterTrace //lint:guardedby mu — circular; nil until filled
	next int             //lint:guardedby mu
	byID map[string]*ClusterTrace //lint:guardedby mu
}

// NewRing returns a ring holding up to n traces (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{
		buf:  make([]*ClusterTrace, n),
		byID: make(map[string]*ClusterTrace, n),
	}
}

// Put stores a finished trace, evicting the oldest when full. The
// trace must not be mutated after Put.
func (r *Ring) Put(t *ClusterTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil {
		delete(r.byID, old.TraceID)
	}
	r.buf[r.next] = t
	r.byID[t.TraceID] = t
	r.next = (r.next + 1) % len(r.buf)
}

// Get returns the trace with the given id, or nil if it was never
// stored or has been evicted.
func (r *Ring) Get(id string) *ClusterTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Recent returns up to max traces, newest first.
func (r *Ring) Recent(max int) []*ClusterTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if max <= 0 || max > len(r.buf) {
		max = len(r.buf)
	}
	out := make([]*ClusterTrace, 0, max)
	for i := 1; i <= len(r.buf) && len(out) < max; i++ {
		if t := r.buf[(r.next-i+len(r.buf))%len(r.buf)]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Len reports how many traces the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}
