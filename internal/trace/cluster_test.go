package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	if len(tid) != 32 || len(sid) != 16 {
		t.Fatalf("id lengths: trace=%d span=%d", len(tid), len(sid))
	}
	header := FormatTraceparent(tid, sid)
	gotT, gotS, ok := ParseTraceparent(header)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip %q: got (%q, %q, %v)", header, gotT, gotS, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-abc-def-01", // too short
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // wrong version
		"00-0af7651916cd43dd8448eb211c80319c+b7ad6b7169203331-01", // bad separator
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319x-b7ad6b7169203331-01", // non-hex
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestNewTraceIDsDiffer(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

// TestSamplerDeterminism: with a fixed request sequence the retention
// decisions are a pure function of the tick counter — slow and error
// traces always kept, exactly one in N of the healthy rest.
func TestSamplerDeterminism(t *testing.T) {
	s := &Sampler{N: 4, Slow: 100 * time.Millisecond}

	// Forced, error and slow traces are kept without consuming a tick.
	for i, tc := range []struct {
		elapsed time.Duration
		isErr   bool
		forced  bool
		want    string
	}{
		{time.Millisecond, false, true, ReasonForced},
		{time.Millisecond, true, false, ReasonError},
		{150 * time.Millisecond, false, false, ReasonSlow},
		{100 * time.Millisecond, false, false, ReasonSlow}, // boundary inclusive
	} {
		keep, reason := s.Keep(tc.elapsed, tc.isErr, tc.forced)
		if !keep || reason != tc.want {
			t.Fatalf("case %d: got (%v, %q), want (true, %q)", i, keep, reason, tc.want)
		}
	}
	if s.tick.Load() != 0 {
		t.Fatalf("always-keep decisions consumed %d sampling ticks", s.tick.Load())
	}

	// Healthy fast traces: exactly every 4th is kept, deterministically.
	var pattern []bool
	for i := 0; i < 12; i++ {
		keep, reason := s.Keep(time.Millisecond, false, false)
		if keep && reason != ReasonSampled {
			t.Fatalf("healthy keep %d: reason %q", i, reason)
		}
		pattern = append(pattern, keep)
	}
	kept := 0
	for i, k := range pattern {
		if k {
			kept++
			if (i+1)%4 != 0 {
				t.Fatalf("kept healthy trace at position %d; pattern %v", i, pattern)
			}
		}
	}
	if kept != 3 {
		t.Fatalf("kept %d of 12 healthy traces, want 3 (pattern %v)", kept, pattern)
	}

	// N <= 0: healthy traces are never kept, slow ones still are.
	none := &Sampler{N: 0, Slow: time.Second}
	if keep, _ := none.Keep(time.Millisecond, false, false); keep {
		t.Fatal("N=0 kept a healthy trace")
	}
	if keep, _ := none.Keep(2*time.Second, false, false); !keep {
		t.Fatal("N=0 dropped a slow trace")
	}
}

func TestRingEvictionAndLookup(t *testing.T) {
	r := NewRing(3)
	mk := func(i int) *ClusterTrace {
		return &ClusterTrace{TraceID: fmt.Sprintf("t%02d", i), DurationNS: int64(i)}
	}
	for i := 0; i < 5; i++ {
		r.Put(mk(i))
	}
	if r.Len() != 3 {
		t.Fatalf("ring holds %d traces, want 3", r.Len())
	}
	// t00 and t01 were evicted; t02..t04 remain.
	for i := 0; i < 2; i++ {
		if got := r.Get(fmt.Sprintf("t%02d", i)); got != nil {
			t.Errorf("evicted trace t%02d still retrievable", i)
		}
	}
	for i := 2; i < 5; i++ {
		got := r.Get(fmt.Sprintf("t%02d", i))
		if got == nil || got.DurationNS != int64(i) {
			t.Errorf("trace t%02d: got %+v", i, got)
		}
	}
	// Recent returns newest first.
	recent := r.Recent(2)
	if len(recent) != 2 || recent[0].TraceID != "t04" || recent[1].TraceID != "t03" {
		ids := make([]string, len(recent))
		for i, tr := range recent {
			ids[i] = tr.TraceID
		}
		t.Fatalf("Recent(2) = %v, want [t04 t03]", ids)
	}
	if got := r.Recent(0); len(got) != 3 {
		t.Fatalf("Recent(0) returned %d, want all 3", len(got))
	}
}

// TestRingConcurrentReadersAndWriters drives the ring the way a live
// router does — scatter-gather goroutines storing traces while
// /v1/trace readers and the rrtop recent-pane poll it — and relies on
// the race detector for the verdict.
func TestRingConcurrentReadersAndWriters(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Put(&ClusterTrace{
					TraceID: fmt.Sprintf("w%d-%d", w, i),
					Spans:   []ClusterSpan{{Name: "fanout", Tier: TierRouter, Shard: NoShard}},
				})
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = r.Get(fmt.Sprintf("w%d-%d", g, i))
				for _, tr := range r.Recent(4) {
					_ = tr.ShardSpans(0)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Len() == 0 || r.Len() > 8 {
		t.Fatalf("ring holds %d traces after churn", r.Len())
	}
}

func TestShardSpans(t *testing.T) {
	tr := &ClusterTrace{Spans: []ClusterSpan{
		{Name: "placement", Tier: TierRouter, Shard: NoShard},
		{Name: "shard_call", Tier: TierShard, Shard: 1},
		{Name: "shard_call", Tier: TierShard, Shard: 0},
		{Name: "hedge", Tier: TierShard, Shard: 1},
	}}
	if got := tr.ShardSpans(1); len(got) != 2 || got[0].Name != "shard_call" || got[1].Name != "hedge" {
		t.Fatalf("ShardSpans(1) = %+v", got)
	}
	if got := tr.ShardSpans(2); got != nil {
		t.Fatalf("ShardSpans(2) = %+v, want nil", got)
	}
}
