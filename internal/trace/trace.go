// Package trace is the query-observability substrate of the library: a
// lightweight, allocation-free instrumentation hook that every
// RangeReach evaluation method threads through its stages. It exists so
// that performance claims — "3DReach visits fewer index nodes than
// SpaReach", "SocReach enumerates fewer descendants after compression"
// — can be measured per query instead of inferred from wall-clock time,
// mirroring how the paper's §6 argues with probe and node counts.
//
// The central type is Span. A nil *Span is the disabled state: every
// method on it is safe to call and reduces to a single predictable
// nil-check branch, so the un-traced hot path (Index.RangeReach) pays
// effectively nothing. Callers that want stats allocate a Span on the
// stack (or reuse one after Reset) and pass its address down; nothing
// in this package allocates after that.
package trace

import "time"

// Counters is the set of per-query work counters the evaluation methods
// maintain. Which counters a method moves depends on its algorithm;
// DESIGN.md §9 tabulates the mapping. All counts are per single query.
type Counters struct {
	// Labels is the number of interval labels inspected: the query
	// vertex's label set (3DReach: one cuboid each; SocReach: one range
	// scan each) plus, for interval-probed methods (SpaReach-INT), the
	// label sets consulted by reachability probes.
	Labels int64
	// IndexNodes is the number of internal spatial-index nodes expanded
	// (R-tree/k-d tree nodes whose bounds intersect the query).
	IndexNodes int64
	// IndexLeaves is the number of spatial-index leaves expanded (R-tree
	// leaf nodes, grid buckets).
	IndexLeaves int64
	// IndexEntries is the number of leaf entries tested against the
	// query box (points, boxes or vertical segments).
	IndexEntries int64
	// Candidates is the number of candidate vertices produced by the
	// spatial phase and considered for reachability probing (SpaReach).
	Candidates int64
	// ReachProbes is the number of reachability probes GReach(v, u)
	// issued (SpaReach variants).
	ReachProbes int64
	// GraphVisited is the number of graph vertices expanded by
	// traversals: NaiveBFS's search, GeoReach's SPA-graph walk and the
	// pruned-DFS fallback inside BFL probes.
	GraphVisited int64
	// Enumerated is the number of descendants enumerated from the
	// interval labels (SocReach's range scans).
	Enumerated int64
	// Members is the number of exact member-geometry verifications —
	// per-vertex point/rect tests performed after an index or label hit
	// (MBR-policy confirmation, SocReach/GeoReach witness tests).
	Members int64
}

// Add accumulates other into c (used when aggregating spans).
func (c *Counters) Add(other Counters) {
	c.Labels += other.Labels
	c.IndexNodes += other.IndexNodes
	c.IndexLeaves += other.IndexLeaves
	c.IndexEntries += other.IndexEntries
	c.Candidates += other.Candidates
	c.ReachProbes += other.ReachProbes
	c.GraphVisited += other.GraphVisited
	c.Enumerated += other.Enumerated
	c.Members += other.Members
}

// Stage identifies one evaluation stage for duration accounting. Every
// method maps its phases onto this shared vocabulary so per-stage
// latency can be compared across methods.
type Stage uint8

const (
	// StageLabels is label-set lookup and per-label bookkeeping.
	StageLabels Stage = iota
	// StageSpatial is spatial-index search (2D or 3D).
	StageSpatial
	// StageReach is reachability probing (SpaReach phase 2).
	StageReach
	// StageVerify is exact member-geometry verification.
	StageVerify
	// StageTraverse is graph traversal (NaiveBFS, GeoReach).
	StageTraverse
	// StageEnumerate is descendant enumeration (SocReach).
	StageEnumerate

	// NumStages is the number of stages; Span duration arrays use it.
	NumStages
)

// String implements fmt.Stringer with the labels used in metrics and
// EXPLAIN output.
func (st Stage) String() string {
	switch st {
	case StageLabels:
		return "labels"
	case StageSpatial:
		return "spatial"
	case StageReach:
		return "reach"
	case StageVerify:
		return "verify"
	case StageTraverse:
		return "traverse"
	case StageEnumerate:
		return "enumerate"
	default:
		return "unknown"
	}
}

// PlanCandidate is one engine's slice of a routing decision: its work
// estimate and the cost model's predicted latency.
type PlanCandidate struct {
	Method    string
	Work      float64
	Predicted time.Duration
}

// PlanInfo records the adaptive planner's routing decision for one
// query: the chosen engine, its predicted latency, whether the pick was
// an exploration tick, and every candidate's estimate. Only the Auto
// engine populates it, and only on traced queries — the untraced hot
// path never allocates it.
type PlanInfo struct {
	Method     string
	Predicted  time.Duration
	Explored   bool
	Candidates []PlanCandidate
}

// Span collects the counters and per-stage durations of one query
// evaluation. The zero value is ready to use; a nil *Span disables
// collection (every method nil-checks and returns).
type Span struct {
	Counters
	// Durations accumulates wall-clock time per stage. Stages a method
	// does not have stay zero. Nested stages are not double-counted:
	// engines time disjoint phases only.
	Durations [NumStages]time.Duration
	// Plan is the adaptive planner's decision, when one was made.
	Plan *PlanInfo
}

// SetPlan attaches the planner decision to the span. A no-op on a nil
// span, so engines can call it unconditionally.
func (s *Span) SetPlan(p *PlanInfo) {
	if s != nil {
		s.Plan = p
	}
}

// Reset clears the span for reuse (pooled spans in the server).
func (s *Span) Reset() { *s = Span{} }

// Enabled reports whether the span collects (s != nil). Engines use it
// to skip trace-only work that a plain counter method can't express.
func (s *Span) Enabled() bool { return s != nil }

// AddLabels counts n inspected interval labels.
func (s *Span) AddLabels(n int) {
	if s != nil {
		s.Labels += int64(n)
	}
}

// IncNode counts one expanded internal index node.
func (s *Span) IncNode() {
	if s != nil {
		s.IndexNodes++
	}
}

// IncLeaf counts one expanded index leaf (or grid bucket).
func (s *Span) IncLeaf() {
	if s != nil {
		s.IndexLeaves++
	}
}

// AddEntries counts n leaf entries tested against the query.
func (s *Span) AddEntries(n int) {
	if s != nil {
		s.IndexEntries += int64(n)
	}
}

// IncCandidate counts one spatial candidate considered for probing.
func (s *Span) IncCandidate() {
	if s != nil {
		s.Candidates++
	}
}

// IncReachProbe counts one issued reachability probe.
func (s *Span) IncReachProbe() {
	if s != nil {
		s.ReachProbes++
	}
}

// IncGraphVisited counts one graph vertex expanded by a traversal.
func (s *Span) IncGraphVisited() {
	if s != nil {
		s.GraphVisited++
	}
}

// AddEnumerated counts n descendants enumerated from labels.
func (s *Span) AddEnumerated(n int) {
	if s != nil {
		s.Enumerated += int64(n)
	}
}

// IncMember counts one exact member-geometry verification.
func (s *Span) IncMember() {
	if s != nil {
		s.Members++
	}
}

// Start returns the current time when the span is enabled and the zero
// time otherwise — the disabled path never calls time.Now. Pair with
// End:
//
//	t := sp.Start()
//	... stage work ...
//	sp.End(trace.StageSpatial, t)
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// End accumulates the elapsed time since start into the stage. A no-op
// on a nil span.
func (s *Span) End(st Stage, start time.Time) {
	if s != nil {
		s.Durations[st] += time.Since(start)
	}
}
