package labeling

import (
	"fmt"

	"repro/internal/intervals"
)

// Flat-format codec: the labeling as four structure-of-arrays columns
// that overlay a flat index image with no per-vertex allocation.
//
//	post    [n]i32      — 1-based post-order numbers
//	order   [n]i32      — inverse permutation: order[p-1] has post p
//	offsets [n+1]u64    — label set v is data[offsets[v]:offsets[v+1]]
//	data    [Σ|L(v)|]Interval — all intervals, concatenated by vertex
//
// Unlike the v1 stream (serialize.go), order is persisted rather than
// recomputed so a mapped load allocates nothing per vertex; FromFlat
// still cross-checks it against post, so the validation surface is the
// same as ReadLabeling's.

// FlatColumns returns the labeling as flat columns. offsets has
// NumVertices()+1 entries; the returned slices alias internal storage
// when the labeling itself was loaded from flat columns.
func (l *Labeling) FlatColumns() (post, order []int32, offsets []uint64, data intervals.Set) {
	offsets = make([]uint64, len(l.Labels)+1)
	total := 0
	for v, set := range l.Labels {
		offsets[v] = uint64(total)
		total += len(set)
	}
	offsets[len(l.Labels)] = uint64(total)
	data = make(intervals.Set, 0, total)
	for _, set := range l.Labels {
		data = append(data, set...)
	}
	return l.Post, l.Order, offsets, data
}

// FromFlat assembles a labeling from persisted flat columns, applying
// the same validation as ReadLabeling: post must be a bijection onto
// [1,n] consistent with order, offsets must tile data monotonically,
// and every interval must lie in [1,n] with lo ≤ hi. The label sets are
// subslices of data — one allocation for the whole Labels spine, zero
// per vertex — so data must stay alive (and unmodified) as long as the
// labeling does.
func FromFlat(post, order []int32, offsets []uint64, data intervals.Set, uncompressed, compressed int64) (*Labeling, error) {
	n := len(post)
	const maxVertices = 1 << 30
	if n > maxVertices {
		return nil, fmt.Errorf("labeling: implausible vertex count %d", n)
	}
	if len(order) != n {
		return nil, fmt.Errorf("labeling: %d order entries for %d vertices", len(order), n)
	}
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("labeling: %d offsets for %d vertices", len(offsets), n)
	}
	seen := make([]bool, n)
	for v, p := range post {
		if p < 1 || p > int32(n) || seen[p-1] {
			return nil, fmt.Errorf("labeling: corrupt post number %d for vertex %d", p, v)
		}
		seen[p-1] = true
		if order[p-1] != int32(v) {
			return nil, fmt.Errorf("labeling: order[%d] = %d, post says %d", p-1, order[p-1], v)
		}
	}
	if n > 0 && offsets[0] != 0 {
		return nil, fmt.Errorf("labeling: offsets start at %d, not 0", offsets[0])
	}
	if len(offsets) > 0 && offsets[n] != uint64(len(data)) {
		return nil, fmt.Errorf("labeling: offsets end at %d, data holds %d intervals", offsets[n], len(data))
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("labeling: offsets not monotonic at vertex %d", v)
		}
		if offsets[v+1]-offsets[v] > uint64(n) {
			return nil, fmt.Errorf("labeling: implausible label count %d", offsets[v+1]-offsets[v])
		}
	}
	for _, iv := range data {
		if iv.Lo < 1 || iv.Hi > int32(n) || iv.Lo > iv.Hi {
			return nil, fmt.Errorf("labeling: corrupt interval %v", iv)
		}
	}
	l := &Labeling{
		Post:              post,
		Order:             order,
		Labels:            make([]intervals.Set, n),
		UncompressedCount: uncompressed,
		CompressedCount:   compressed,
	}
	for v := 0; v < n; v++ {
		if lo, hi := offsets[v], offsets[v+1]; lo < hi {
			l.Labels[v] = data[lo:hi:hi]
		}
	}
	return l, nil
}
