// Package labeling implements the interval-based reachability labeling
// for geosocial networks (paper §3), based on the scheme of Agrawal et
// al. adapted to graphs with multiple roots via a spanning forest.
//
// Every vertex v of a DAG receives a post-order number post(v) from a
// spanning forest and a set of intervals L(v) over post-order numbers
// such that u is reachable from v iff some interval of L(v) contains
// post(u) (Lemma 3.1). L(v) covers exactly {post(u) : u ∈ D(v)} where
// D(v) is the descendant set of v including v itself.
//
// Two builders are provided:
//
//   - Build constructs the labeling by merging canonical label sets in
//     reverse topological order. It is the fast default.
//   - BuildAlgorithm1 follows the paper's Algorithm 1 step by step:
//     spanning forest, post-order numbering, priority-queue propagation
//     over tree edges with label-based ancestor stabbing, a second pass
//     over non-spanning edges, and a final compression pass.
//
// Both produce identical canonical label sets (the covered post set is
// the descendant set either way, and compression canonicalizes it);
// property tests in this package assert the equivalence on random DAGs.
package labeling

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/intervals"
	"repro/internal/pool"
	"repro/internal/trace"
)

// Options configures labeling construction.
type Options struct {
	// Forest selects the spanning-forest growth policy (default DFS).
	Forest graph.ForestPolicy
	// SkipCompression keeps the raw merged label sets, for the
	// compression ablation. The sets are still sorted and deduplicated
	// enough to answer queries, but adjacent intervals are not merged.
	SkipCompression bool
	// Parallelism bounds the workers of the reverse-topological merge:
	// 0 keeps the sequential path (the library-wide default is applied
	// by core.BuildOptions, not here), 1 forces it, n > 1 processes each
	// topological level with up to n workers. The spanning forest and
	// post-order assignment always run sequentially — they fix the
	// serialized bytes — and the parallel merge produces the identical
	// labeling: every vertex's label set is computed from the same
	// successor sets by the same code, only scheduled concurrently.
	Parallelism int
}

// Labeling is the interval-based labeling of a DAG.
type Labeling struct {
	// Post holds the 1-based post-order number of every vertex.
	Post []int32
	// Order lists vertices by post-order number: Order[p-1] has post p.
	Order []int32
	// Labels holds the canonical label set L(v) of every vertex.
	Labels []intervals.Set
	// Forest is the spanning forest the numbering came from.
	Forest *graph.SpanningForest

	// UncompressedCount is the total number of labels before the final
	// compression pass, i.e. Σ|D(v)| under Algorithm 1's set-union
	// semantics where every propagated label is a descendant singleton
	// (Table 6, "uncompressed").
	UncompressedCount int64
	// CompressedCount is the total number of labels after compression
	// (Table 6, "compressed").
	CompressedCount int64
}

// Build constructs the labeling for the DAG g using the fast
// reverse-topological merge. It panics if g is not a DAG; condense
// strongly connected components first (see graph.Condense and paper §5).
func Build(g *graph.Graph, opts Options) *Labeling {
	return BuildWithForest(g, graph.NewSpanningForest(g, opts.Forest), opts)
}

// BuildWithForest is Build with an explicitly supplied spanning forest,
// letting tests reproduce the paper's hand-picked example forest and the
// ablations compare forest policies on equal footing.
func BuildWithForest(g *graph.Graph, forest *graph.SpanningForest, opts Options) *Labeling {
	l := &Labeling{
		Post:   forest.Post,
		Order:  forest.Order,
		Labels: make([]intervals.Set, g.NumVertices()),
		Forest: forest,
	}

	if p := pool.New(max(opts.Parallelism, 1)); !p.Sequential() {
		l.mergeParallel(g, forest, p)
		l.finishStats(opts)
		return l
	}

	topo, ok := g.TopoOrder()
	if !ok {
		panic("labeling: Build requires a DAG")
	}
	// Process children before parents. Gathering all successor labels
	// and compressing once per vertex beats repeated pairwise merges:
	// compression is a single sort over the gathered intervals instead
	// of one allocation per out-edge.
	var buf intervals.Set
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		buf = buf[:0]
		buf = append(buf, intervals.Interval{Lo: forest.Post[v], Hi: forest.Post[v]})
		for _, u := range g.Out(int(v)) {
			buf = append(buf, l.Labels[u]...)
		}
		set := buf.Compress()
		l.Labels[v] = append(intervals.Set(nil), set...)
		buf = set[:0]
	}
	l.finishStats(opts)
	return l
}

// mergeParallel is the level-synchronous variant of the reverse-topo
// merge: vertices of one topological height level share no edges, so
// each can gather its successors' finished label sets and write its own
// concurrently. The per-vertex computation is byte-for-byte the
// sequential one (same successor order, same compression), so the
// resulting labeling — and anything serialized from it — is identical
// at any worker count.
func (l *Labeling) mergeParallel(g *graph.Graph, forest *graph.SpanningForest, p *pool.Pool) {
	levels := graph.LevelsFromSinks(g)
	if levels == nil {
		panic("labeling: Build requires a DAG")
	}
	// Per-worker merge buffers, recycled through a sync.Pool so one
	// level's allocations serve the next.
	scratch := sync.Pool{New: func() any { return new(intervals.Set) }}
	p.Levels(levels, func(v int32) {
		bp := scratch.Get().(*intervals.Set)
		buf := (*bp)[:0]
		buf = append(buf, intervals.Interval{Lo: forest.Post[v], Hi: forest.Post[v]})
		for _, u := range g.Out(int(v)) {
			buf = append(buf, l.Labels[u]...)
		}
		set := buf.Compress()
		l.Labels[v] = append(intervals.Set(nil), set...)
		*bp = set[:0]
		scratch.Put(bp)
	})
}

// finishStats fills the Table 6 counters and optionally de-canonicalizes
// for the compression ablation.
func (l *Labeling) finishStats(opts Options) {
	for v := range l.Labels {
		l.UncompressedCount += l.Labels[v].Cardinality()
		l.CompressedCount += int64(len(l.Labels[v]))
	}
	if opts.SkipCompression {
		// The ablation keeps what Algorithm 1 holds before its final
		// compression pass: one singleton label per descendant. Queries
		// still work (the singletons stay sorted and disjoint).
		for v := range l.Labels {
			var raw intervals.Set
			for _, iv := range l.Labels[v] {
				for p := iv.Lo; p <= iv.Hi; p++ {
					raw = append(raw, intervals.Interval{Lo: p, Hi: p})
				}
			}
			l.Labels[v] = raw
		}
	}
}

// Reach answers the graph reachability query GReach(v, u): it reports
// whether u is reachable from v, by Lemma 3.1 testing whether some label
// of v contains post(u). Reach(v, v) is true.
func (l *Labeling) Reach(v, u int) bool {
	return l.Labels[v].ContainsCanonical(l.Post[u])
}

// ReachTraced is Reach with instrumentation: the probed label set L(v)
// is counted as inspected labels (the binary search consults it as a
// whole). A nil sp makes it exactly Reach.
func (l *Labeling) ReachTraced(v, u int, sp *trace.Span) bool {
	sp.AddLabels(len(l.Labels[v]))
	return l.Labels[v].ContainsCanonical(l.Post[u])
}

// PostOf returns the post-order number of v.
func (l *Labeling) PostOf(v int) int32 { return l.Post[v] }

// VertexAt returns the vertex with the given 1-based post-order number.
func (l *Labeling) VertexAt(post int32) int32 { return l.Order[post-1] }

// NumVertices returns the number of labeled vertices.
func (l *Labeling) NumVertices() int { return len(l.Post) }

// Descendants enumerates D(v), the descendant set of v including v
// itself, by expanding every label interval over the post-order domain
// (paper §4.1, the SocReach core). fn is called once per descendant; if
// it returns false the enumeration stops and Descendants returns false.
func (l *Labeling) Descendants(v int, fn func(u int32) bool) bool {
	for _, iv := range l.Labels[v] {
		for p := iv.Lo; p <= iv.Hi; p++ {
			if !fn(l.Order[p-1]) {
				return false
			}
		}
	}
	return true
}

// DescendantCount returns |D(v)| without enumerating.
func (l *Labeling) DescendantCount(v int) int64 {
	return l.Labels[v].Cardinality()
}

// MemoryBytes returns the footprint of the labeling: 8 bytes per interval
// plus the post-order arrays, matching the index-size accounting of
// Table 4.
func (l *Labeling) MemoryBytes() int64 {
	var total int64
	for _, s := range l.Labels {
		total += s.MemoryBytes()
	}
	total += int64(4 * (len(l.Post) + len(l.Order)))
	return total
}

// TotalLabels returns the current total number of stored intervals.
func (l *Labeling) TotalLabels() int64 {
	var total int64
	for _, s := range l.Labels {
		total += int64(len(s))
	}
	return total
}
