package labeling

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestDynamicMatchesStaticAfterNoUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randomDAG(rng, 30, 90)
	d := NewDynamic(g, Options{})
	for u := 0; u < 30; u++ {
		reach := g.Reachable(u)
		for v := 0; v < 30; v++ {
			if d.Reach(u, v) != reach[v] {
				t.Fatalf("Reach(%d,%d) wrong", u, v)
			}
		}
	}
}

// mirror tracks the edge set alongside a Dynamic so reachability can be
// recomputed from scratch as ground truth.
type mirror struct {
	n     int
	edges [][2]int
}

func (m *mirror) graph() *graph.Graph { return graph.FromEdges(m.n, m.edges) }

func TestDynamicInterleavedUpdatesAndQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(15)
		g := randomDAG(rng, n, rng.Intn(2*n))
		d := NewDynamic(g, Options{})
		m := &mirror{n: n}
		g.Edges(func(u, v int) { m.edges = append(m.edges, [2]int{u, v}) })

		for step := 0; step < 40; step++ {
			switch rng.Intn(4) {
			case 0: // add vertex
				v := d.AddVertex()
				m.n++
				if v != m.n-1 {
					t.Fatalf("AddVertex returned %d, want %d", v, m.n-1)
				}
			default: // add edge (may be rejected for cycles)
				u, v := rng.Intn(m.n), rng.Intn(m.n)
				err := d.AddEdge(u, v)
				wouldCycle := u != v && m.graph().CanReach(v, u)
				if wouldCycle {
					if err == nil {
						t.Fatalf("trial %d: cycle-creating edge (%d,%d) accepted", trial, u, v)
					}
				} else {
					if err != nil {
						t.Fatalf("trial %d: valid edge (%d,%d) rejected: %v", trial, u, v, err)
					}
					m.edges = append(m.edges, [2]int{u, v})
				}
			}
			// Full verification every few steps (expensive).
			if step%8 == 0 {
				truth := m.graph()
				for u := 0; u < m.n; u++ {
					reach := truth.Reachable(u)
					for v := 0; v < m.n; v++ {
						if d.Reach(u, v) != reach[v] {
							t.Fatalf("trial %d step %d: Reach(%d,%d) = %v, want %v",
								trial, step, u, v, d.Reach(u, v), reach[v])
						}
					}
				}
			}
		}
		// Descendants remain exact after all updates.
		truth := m.graph()
		for v := 0; v < m.n; v++ {
			want := truth.Reachable(v)
			got := make([]bool, m.n)
			d.Descendants(v, func(u int32) bool { got[u] = true; return true })
			for u := 0; u < m.n; u++ {
				if got[u] != want[u] {
					t.Fatalf("trial %d: Descendants(%d) wrong at %d", trial, v, u)
				}
			}
		}
	}
}

func TestDynamicAddEdgeValidation(t *testing.T) {
	d := NewDynamic(graph.FromEdges(3, [][2]int{{0, 1}}), Options{})
	if err := d.AddEdge(0, 9); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := d.AddEdge(1, 1); err != nil {
		t.Error("self-loop should be a silent no-op")
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Error("duplicate edge should be a silent no-op")
	}
	if err := d.AddEdge(1, 0); err == nil {
		t.Error("cycle-creating edge accepted")
	}
	// The failed insert left the labeling untouched.
	if d.Reach(1, 0) {
		t.Error("rejected edge leaked into labels")
	}
}

func TestDynamicRebuildCompacts(t *testing.T) {
	// A chain built through updates accumulates fragmented labels; the
	// rebuild compresses each vertex to a single interval.
	d := NewDynamic(graph.FromEdges(1, nil), Options{})
	const n = 40
	for i := 1; i < n; i++ {
		d.AddVertex()
	}
	// Insert chain edges in an order that fragments post-order locality.
	for i := n - 2; i >= 0; i-- {
		if err := d.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	before := d.TotalLabels()
	d.Rebuild()
	after := d.TotalLabels()
	if after != n { // one interval per vertex on a chain
		t.Errorf("after rebuild: %d labels, want %d", after, n)
	}
	if before < after {
		t.Errorf("rebuild increased labels: %d -> %d", before, after)
	}
	// Queries still correct.
	if !d.Reach(0, n-1) || d.Reach(n-1, 0) {
		t.Error("rebuild broke reachability")
	}
}

func TestDynamicNewVenueScenario(t *testing.T) {
	// The geosocial update pattern: an existing user checks into a venue
	// that did not exist yet.
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	d := NewDynamic(g, Options{})
	venue := d.AddVertex()
	if err := d.AddEdge(1, venue); err != nil {
		t.Fatal(err)
	}
	// Both the check-in user and their follower reach the new venue.
	if !d.Reach(1, venue) || !d.Reach(0, venue) {
		t.Error("new venue not reachable")
	}
	if d.Reach(2, venue) {
		t.Error("unrelated vertex reaches new venue")
	}
}
