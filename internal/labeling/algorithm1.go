package labeling

import (
	"container/heap"

	"repro/internal/graph"
	"repro/internal/intervals"
)

// BuildAlgorithm1 constructs the labeling by following the paper's
// Algorithm 1 faithfully:
//
//  1. compute the spanning forest F of g and assign post-order numbers by
//     traversing its trees (lines 1–4);
//  2. initialize L(v) = {[post(v), post(v)]} (lines 5–6), seed a priority
//     queue with the forest roots (lines 7–9), and drain it: for the
//     popped vertex v and every spanning-forest edge (v, u), copy L(u)
//     into L(v) and then into every label-based ancestor of v, pushing u
//     (lines 10–18). The priority of a vertex is its number of incoming
//     edges in g, ties broken by post-order number, so roots are examined
//     first;
//  3. examine the non-spanning edges sorted by the post-order number of
//     their source, copying labels the same way (lines 19–24);
//  4. compress every label set (lines 25–26).
//
// Ancestors are located with a stabbing query on post(v) over the current
// labels — the interval-indexed lookup the paper describes — served by an
// intervals.StabTree.
//
// The result is identical to Build's (property-tested); BuildAlgorithm1
// costs O(|TC|·log|V|) because it materializes descendant singletons, so
// prefer Build for large networks. It panics if g is not a DAG.
func BuildAlgorithm1(g *graph.Graph, opts Options) *Labeling {
	return BuildAlgorithm1WithForest(g, graph.NewSpanningForest(g, opts.Forest), opts)
}

// BuildAlgorithm1WithForest is BuildAlgorithm1 with an explicitly
// supplied spanning forest; see BuildWithForest.
func BuildAlgorithm1WithForest(g *graph.Graph, forest *graph.SpanningForest, opts Options) *Labeling {
	n := g.NumVertices()
	l := &Labeling{
		Post:   forest.Post,
		Order:  forest.Order,
		Labels: make([]intervals.Set, n),
		Forest: forest,
	}

	// Labels are propagated as descendant-post singletons; covered[v]
	// tracks set membership so that unions follow set semantics.
	covered := make([]map[int32]struct{}, n)
	stab := intervals.NewStabTree(n)
	addPost := func(v int32, p int32) bool {
		if _, ok := covered[v][p]; ok {
			return false
		}
		covered[v][p] = struct{}{}
		l.Labels[v] = append(l.Labels[v], intervals.Interval{Lo: p, Hi: p})
		stab.Insert(intervals.Interval{Lo: p, Hi: p}, v)
		return true
	}

	// Lines 5–6: initialize L(v) with the vertex's own post number.
	for v := 0; v < n; v++ {
		covered[v] = make(map[int32]struct{}, 1)
		addPost(int32(v), forest.Post[v])
	}

	// copyLabels performs L(dst) ∪= L(src).
	copyLabels := func(dst, src int32) {
		if dst == src {
			return
		}
		for p := range covered[src] {
			addPost(dst, p)
		}
	}

	// propagateToAncestors copies L(v) to every vertex whose current
	// labels contain post(v) (lines 14–15 / 23–24). stamp deduplicates
	// owners reported once per covering segment of the stab tree.
	stamp := make([]int32, n)
	var stampGen int32
	propagateToAncestors := func(v int32) {
		stampGen++
		pv := forest.Post[v]
		stab.Stab(pv, func(w int32) bool {
			if w == v || stamp[w] == stampGen {
				return true
			}
			stamp[w] = stampGen
			copyLabels(w, v)
			return true
		})
	}

	// Lines 7–9: seed the queue with the forest roots.
	pq := &vertexQueue{indeg: make([]int32, n), post: forest.Post}
	for v := 0; v < n; v++ {
		pq.indeg[v] = int32(g.InDegree(v))
	}
	inQueue := make([]bool, n)
	for _, r := range forest.Roots {
		heap.Push(pq, r)
		inQueue[r] = true
	}

	// Lines 10–18: drain the queue over spanning-forest edges.
	for pq.Len() > 0 {
		v := heap.Pop(pq).(int32)
		inQueue[v] = false
		changed := false
		for i, u := range g.Out(int(v)) {
			if !forest.IsTreeEdge(int(v), i) {
				continue
			}
			copyLabels(v, u)
			changed = true
			if !inQueue[u] {
				heap.Push(pq, u)
				inQueue[u] = true
			}
		}
		if changed {
			propagateToAncestors(v)
		}
	}

	// Lines 19–24: non-spanning edges, sorted by source post-order.
	nonTree := forest.NonTreeEdges()
	sortBySourcePost(nonTree, forest.Post)
	for _, e := range nonTree {
		v, u := e[0], e[1]
		copyLabels(v, u)
		propagateToAncestors(v)
	}

	// Count before compression (Table 6 "uncompressed"), then compress
	// (lines 25–26).
	for v := range l.Labels {
		l.UncompressedCount += int64(len(l.Labels[v]))
		l.Labels[v] = l.Labels[v].Compress()
		l.CompressedCount += int64(len(l.Labels[v]))
	}
	if opts.SkipCompression {
		l.CompressedCount = 0
		l.UncompressedCount = 0
		l.finishStats(opts)
	}
	return l
}

// sortBySourcePost sorts edges by the post-order number of their source
// vertex, ascending (Algorithm 1, line 20).
func sortBySourcePost(edges [][2]int32, post []int32) {
	// Simple insertion-friendly sort via sort.Slice would allocate a
	// closure per call site anyway; keep it direct.
	quicksortEdges(edges, post)
}

func quicksortEdges(edges [][2]int32, post []int32) {
	if len(edges) < 2 {
		return
	}
	pivot := post[edges[len(edges)/2][0]]
	left, right := 0, len(edges)-1
	for left <= right {
		for post[edges[left][0]] < pivot {
			left++
		}
		for post[edges[right][0]] > pivot {
			right--
		}
		if left <= right {
			edges[left], edges[right] = edges[right], edges[left]
			left++
			right--
		}
	}
	quicksortEdges(edges[:right+1], post)
	quicksortEdges(edges[left:], post)
}

// vertexQueue is the priority queue of Algorithm 1: vertices ordered by
// number of incoming edges in the input network (ascending), ties broken
// by post-order number (ascending), so that forest roots — which have
// zero incoming edges — are always examined first.
type vertexQueue struct {
	items []int32
	indeg []int32
	post  []int32
}

func (q *vertexQueue) Len() int { return len(q.items) }

func (q *vertexQueue) Less(i, j int) bool {
	vi, vj := q.items[i], q.items[j]
	if q.indeg[vi] != q.indeg[vj] {
		return q.indeg[vi] < q.indeg[vj]
	}
	return q.post[vi] < q.post[vj]
}

func (q *vertexQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *vertexQueue) Push(x any) { q.items = append(q.items, x.(int32)) }

func (q *vertexQueue) Pop() any {
	v := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return v
}
