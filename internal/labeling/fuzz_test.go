package labeling

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzReadLabeling hardens the binary deserializer: arbitrary bytes must
// either be rejected or yield a labeling whose invariants hold (valid
// dense post numbers, in-range canonical-ish intervals).
func FuzzReadLabeling(f *testing.F) {
	// Seed with a few valid serializations and mutations thereof.
	for _, n := range []int{1, 5, 12} {
		g := randomDAGForFuzz(n)
		l := Build(g, Options{})
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 10 {
			f.Add(buf.Bytes()[:buf.Len()/2])
		}
	}
	f.Add([]byte("RRLB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadLabeling(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := l.NumVertices()
		for v := 0; v < n; v++ {
			p := l.Post[v]
			if p < 1 || p > int32(n) || int(l.Order[p-1]) != v {
				t.Fatal("accepted labeling with corrupt post numbering")
			}
			for _, iv := range l.Labels[v] {
				if iv.Lo < 1 || iv.Hi > int32(n) || iv.Lo > iv.Hi {
					t.Fatal("accepted labeling with out-of-range interval")
				}
			}
		}
	})
}

func randomDAGForFuzz(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v += 1 + u%3 {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}
