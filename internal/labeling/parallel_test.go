package labeling

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestParallelBuildIdentical asserts the determinism contract of the
// parallel merge: at any worker count the labeling — post orders, label
// sets, Table 6 counters and serialized bytes — matches the sequential
// build exactly.
func TestParallelBuildIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		g := randomDAG(rng, n, rng.Intn(5*n))
		for _, policy := range []graph.ForestPolicy{graph.ForestDFS, graph.ForestBFS} {
			seq := Build(g, Options{Forest: policy, Parallelism: 1})
			for _, par := range []int{2, 8} {
				got := Build(g, Options{Forest: policy, Parallelism: par})
				if got.UncompressedCount != seq.UncompressedCount ||
					got.CompressedCount != seq.CompressedCount {
					t.Fatalf("trial %d par %d: counters differ", trial, par)
				}
				var a, b bytes.Buffer
				if _, err := seq.WriteTo(&a); err != nil {
					t.Fatal(err)
				}
				if _, err := got.WriteTo(&b); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a.Bytes(), b.Bytes()) {
					t.Fatalf("trial %d policy %d par %d: serialized labelings differ",
						trial, policy, par)
				}
			}
		}
	}
}
