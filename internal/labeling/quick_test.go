package labeling

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// dagSpec is a quick-generated DAG description.
type dagSpec struct {
	N     uint8
	Pairs []uint16
}

func (s dagSpec) graph() *graph.Graph {
	n := int(s.N%30) + 1
	b := graph.NewBuilder(n)
	for _, p := range s.Pairs {
		u := int(p>>8) % n
		v := int(p&0xff) % n
		if u > v {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// TestQuickLemma31 is the paper's Lemma 3.1 as a property: for all
// vertex pairs, label containment of post(u) in L(v) coincides with
// reachability.
func TestQuickLemma31(t *testing.T) {
	f := func(s dagSpec) bool {
		g := s.graph()
		l := Build(g, Options{})
		for v := 0; v < g.NumVertices(); v++ {
			reach := g.Reachable(v)
			for u := 0; u < g.NumVertices(); u++ {
				if l.Reach(v, u) != reach[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickLabelCoverageEqualsDescendants checks the §4.1 identity
// |covered posts| = |D(v)|.
func TestQuickLabelCoverageEqualsDescendants(t *testing.T) {
	f := func(s dagSpec) bool {
		g := s.graph()
		l := Build(g, Options{})
		for v := 0; v < g.NumVertices(); v++ {
			want := int64(0)
			for _, ok := range g.Reachable(v) {
				if ok {
					want++
				}
			}
			if l.DescendantCount(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickBuildersEquivalent asserts the fast builder and the faithful
// Algorithm 1 produce identical canonical labelings on arbitrary DAGs.
func TestQuickBuildersEquivalent(t *testing.T) {
	f := func(s dagSpec) bool {
		g := s.graph()
		forest := graph.NewSpanningForest(g, graph.ForestDFS)
		fast := BuildWithForest(g, forest, Options{})
		slow := BuildAlgorithm1WithForest(g, forest, Options{})
		for v := 0; v < g.NumVertices(); v++ {
			if !fast.Labels[v].Equal(slow.Labels[v]) {
				return false
			}
		}
		return fast.UncompressedCount == slow.UncompressedCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickMonotoneUnderEdgeInsertion: adding an acyclic edge can only
// grow label coverage (Dynamic path).
func TestQuickMonotoneUnderEdgeInsertion(t *testing.T) {
	f := func(s dagSpec, extra []uint16) bool {
		g := s.graph()
		n := g.NumVertices()
		d := NewDynamic(g, Options{})
		before := make([]int64, n)
		for v := 0; v < n; v++ {
			before[v] = d.Labels(v).Cardinality()
		}
		for _, p := range extra {
			u := int(p>>8) % n
			v := int(p&0xff) % n
			_ = d.AddEdge(u, v) // cycle rejections are fine
		}
		for v := 0; v < n; v++ {
			if d.Labels(v).Cardinality() < before[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
