package labeling

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/intervals"
)

// The running example of the paper: the geosocial network of Figure 1
// with the spanning forest of Figure 3 and the labels of Table 1.
// Vertices a..l are ids 0..11.
const (
	vA = iota
	vB
	vC
	vD
	vE
	vF
	vG
	vH
	vI
	vJ
	vK
	vL
)

// paperGraph returns the Figure 1 network: tree edges
// a→{b,d,j}, b→{e,l}, e→f, j→{g,h}, c→{i,k} and non-tree edges
// (l,h), (b,d), (g,i), (i,f), (c,d).
func paperGraph() *graph.Graph {
	return graph.FromEdges(12, [][2]int{
		{vA, vB}, {vA, vD}, {vA, vJ},
		{vB, vE}, {vB, vL}, {vB, vD},
		{vC, vI}, {vC, vK}, {vC, vD},
		{vE, vF},
		{vG, vI},
		{vI, vF},
		{vJ, vG}, {vJ, vH},
		{vL, vH},
	})
}

// paperForest returns the hand-picked spanning forest of Figure 3, whose
// post-order numbering matches Table 1: f=1, e=2, l=3, b=4, d=5, g=6,
// h=7, j=8, a=9, i=10, k=11, c=12.
func paperForest(g *graph.Graph) *graph.SpanningForest {
	parent := []int32{
		vA: -1,
		vB: vA,
		vC: -1,
		vD: vA,
		vE: vB,
		vF: vE,
		vG: vJ,
		vH: vJ,
		vI: vC,
		vJ: vA,
		vK: vC,
		vL: vB,
	}
	return graph.ForestFromParents(g, parent, []int32{vA, vC})
}

func wantPost() map[int]int32 {
	return map[int]int32{
		vF: 1, vE: 2, vL: 3, vB: 4, vD: 5, vG: 6,
		vH: 7, vJ: 8, vA: 9, vI: 10, vK: 11, vC: 12,
	}
}

// iv builds an interval literal.
func iv(lo, hi int32) intervals.Interval { return intervals.Interval{Lo: lo, Hi: hi} }

// wantFinalLabels is the last column of Table 1 (canonical form).
func wantFinalLabels() map[int]intervals.Set {
	return map[int]intervals.Set{
		vA: {iv(1, 10)},
		vB: {iv(1, 5), iv(7, 7)},
		vC: {iv(1, 1), iv(5, 5), iv(10, 12)},
		vD: {iv(5, 5)},
		vE: {iv(1, 2)},
		vF: {iv(1, 1)},
		vG: {iv(1, 1), iv(6, 6), iv(10, 10)},
		vH: {iv(7, 7)},
		vI: {iv(1, 1), iv(10, 10)},
		vJ: {iv(1, 1), iv(6, 8), iv(10, 10)},
		vK: {iv(11, 11)},
		vL: {iv(3, 3), iv(7, 7)},
	}
}

func checkPaperLabeling(t *testing.T, l *Labeling, builder string) {
	t.Helper()
	for v, p := range wantPost() {
		if l.Post[v] != p {
			t.Errorf("%s: post(%c) = %d, want %d", builder, 'a'+v, l.Post[v], p)
		}
	}
	for v, want := range wantFinalLabels() {
		if !l.Labels[v].Equal(want) {
			t.Errorf("%s: L(%c) = %v, want %v", builder, 'a'+v, l.Labels[v], want)
		}
	}
}

func TestPaperTable1FastBuilder(t *testing.T) {
	g := paperGraph()
	l := BuildWithForest(g, paperForest(g), Options{})
	checkPaperLabeling(t, l, "Build")
}

func TestPaperTable1Algorithm1(t *testing.T) {
	g := paperGraph()
	l := BuildAlgorithm1WithForest(g, paperForest(g), Options{})
	checkPaperLabeling(t, l, "BuildAlgorithm1")
}

func TestPaperExample41Descendants(t *testing.T) {
	// Example 4.1: D(a) has posts in [1,10]; D(c) = {f, d, i, k, c}.
	g := paperGraph()
	l := BuildWithForest(g, paperForest(g), Options{})

	collect := func(v int) map[int]bool {
		m := make(map[int]bool)
		l.Descendants(v, func(u int32) bool {
			m[int(u)] = true
			return true
		})
		return m
	}
	dA := collect(vA)
	if len(dA) != 10 {
		t.Errorf("|D(a)| = %d, want 10", len(dA))
	}
	for _, v := range []int{vC, vK} {
		if dA[v] {
			t.Errorf("D(a) must not contain %c", 'a'+v)
		}
	}
	dC := collect(vC)
	wantC := []int{vF, vD, vI, vK, vC}
	if len(dC) != len(wantC) {
		t.Fatalf("D(c) = %v, want %v", dC, wantC)
	}
	for _, v := range wantC {
		if !dC[v] {
			t.Errorf("D(c) missing %c", 'a'+v)
		}
	}
	if got := l.DescendantCount(vC); got != 5 {
		t.Errorf("DescendantCount(c) = %d, want 5", got)
	}
}

func TestPaperReachability(t *testing.T) {
	// Lemma 3.1 on the running example: a reaches e and h (Example 2.3);
	// c reaches neither.
	g := paperGraph()
	for _, build := range []struct {
		name string
		l    *Labeling
	}{
		{"fast", BuildWithForest(g, paperForest(g), Options{})},
		{"algorithm1", BuildAlgorithm1WithForest(g, paperForest(g), Options{})},
	} {
		l := build.l
		for u := 0; u < 12; u++ {
			for v := 0; v < 12; v++ {
				want := g.CanReach(u, v)
				if got := l.Reach(u, v); got != want {
					t.Errorf("%s: Reach(%c,%c) = %v, want %v",
						build.name, 'a'+u, 'a'+v, got, want)
				}
			}
		}
	}
}

func TestPaperTable1UncompressedCount(t *testing.T) {
	// Before compression every label is a descendant singleton, so the
	// total equals Σ|D(v)| = 10+6+5+1+2+1+3+1+2+5+1+2 = 39. Both builders
	// must agree on the count even though they construct differently.
	g := paperGraph()
	want := int64(0)
	for v := 0; v < 12; v++ {
		r := g.Reachable(v)
		for _, ok := range r {
			if ok {
				want++
			}
		}
	}
	for _, build := range []struct {
		name string
		l    *Labeling
	}{
		{"fast", BuildWithForest(g, paperForest(g), Options{})},
		{"algorithm1", BuildAlgorithm1WithForest(g, paperForest(g), Options{})},
	} {
		if build.l.UncompressedCount != want {
			t.Errorf("%s: UncompressedCount = %d, want %d",
				build.name, build.l.UncompressedCount, want)
		}
		var labels int64
		for v := 0; v < 12; v++ {
			labels += int64(len(build.l.Labels[v]))
		}
		if build.l.CompressedCount != labels {
			t.Errorf("%s: CompressedCount = %d, stored %d",
				build.name, build.l.CompressedCount, labels)
		}
	}
}

func TestPaperReversedLabeling(t *testing.T) {
	// Table 2: the reversed labeling covers ancestors. Check semantics
	// (coverage = ancestor set) rather than the paper's exact numbering,
	// which depends on the reversed forest choice.
	g := paperGraph()
	rev := Build(g.Reverse(), Options{})
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			want := g.CanReach(u, v) // u reaches v  <=>  v's ancestors include u
			if got := rev.Reach(v, u); got != want {
				t.Errorf("reversed Reach(%c,%c) = %v, want %v", 'a'+v, 'a'+u, got, want)
			}
		}
	}
}
