package labeling

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/intervals"
)

// Dynamic is an interval-based labeling that accepts network updates —
// the paper's first future-work item (§8: "investigate how our approach
// can efficiently handle updates in the network"). It supports appending
// vertices and inserting edges; labels are maintained incrementally by
// propagating the target's label set to every vertex that can reach the
// edge's source.
//
// New vertices receive fresh post-order numbers past the current
// maximum. This keeps the post domain dense, so Lemma 3.1 queries and
// descendant enumeration keep working unchanged, at the price of
// compression quality: a heavily updated labeling accumulates more,
// smaller intervals than a rebuild would produce (Rebuild restores the
// optimum). Edge insertions that would create a cycle are rejected, as
// interval labels cannot represent mutual reachability — callers should
// re-condense and rebuild instead (paper §5).
type Dynamic struct {
	out, in [][]int32
	post    []int32
	order   []int32 // order[p-1] = vertex with post p
	labels  []intervals.Set
	opts    Options
}

// NewDynamic builds the labeling for g and returns its updatable form.
func NewDynamic(g *graph.Graph, opts Options) *Dynamic {
	l := Build(g, opts)
	d := &Dynamic{
		out:    make([][]int32, g.NumVertices()),
		in:     make([][]int32, g.NumVertices()),
		post:   append([]int32(nil), l.Post...),
		order:  append([]int32(nil), l.Order...),
		labels: l.Labels,
		opts:   opts,
	}
	g.Edges(func(u, v int) {
		d.out[u] = append(d.out[u], int32(v))
		d.in[v] = append(d.in[v], int32(u))
	})
	return d
}

// NumVertices returns the current number of vertices.
func (d *Dynamic) NumVertices() int { return len(d.post) }

// AddVertex appends an isolated vertex and returns its id.
func (d *Dynamic) AddVertex() int {
	v := len(d.post)
	p := int32(len(d.order) + 1)
	d.post = append(d.post, p)
	d.order = append(d.order, int32(v))
	d.labels = append(d.labels, intervals.Singleton(p))
	d.out = append(d.out, nil)
	d.in = append(d.in, nil)
	return v
}

// AddEdge inserts the directed edge (u, v) and updates the labels of u
// and of every vertex that reaches u. It returns an error — leaving the
// labeling unchanged — if the edge would create a cycle, or if an
// endpoint is out of range. Duplicate edges and self-loops are no-ops.
func (d *Dynamic) AddEdge(u, v int) error {
	n := len(d.post)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("labeling: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return nil
	}
	if d.Reach(v, u) {
		return fmt.Errorf("labeling: edge (%d,%d) would create a cycle; condense and rebuild", u, v)
	}
	for _, w := range d.out[u] {
		if int(w) == v {
			return nil // duplicate
		}
	}
	d.out[u] = append(d.out[u], int32(v))
	d.in[v] = append(d.in[v], int32(u))

	// Propagate L(v) upwards from u through every vertex whose labels
	// actually change; unchanged vertices prune the traversal because
	// label coverage is monotone along reverse edges. The subset test
	// runs allocation-free, so already-covering ancestors cost O(|L|).
	add := d.labels[v]
	queue := []int32{int32(u)}
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if d.labels[w].CoversCanonical(add) {
			continue
		}
		d.labels[w] = intervals.MergeCanonical(d.labels[w], add)
		queue = append(queue, d.in[w]...)
	}
	return nil
}

// Reach reports whether v is reachable from u (Lemma 3.1).
func (d *Dynamic) Reach(u, v int) bool {
	return d.labels[u].ContainsCanonical(d.post[v])
}

// Edges calls fn for every directed edge (u, v) currently absorbed into
// the labeling, in unspecified order. Validators use it to re-derive
// the graph the labels claim to describe.
func (d *Dynamic) Edges(fn func(u, v int)) {
	for u, adj := range d.out {
		for _, v := range adj {
			fn(u, int(v))
		}
	}
}

// PostOf returns the post-order number of v.
func (d *Dynamic) PostOf(v int) int32 { return d.post[v] }

// Labels returns the current label set of v. The returned set is shared;
// callers must not modify it.
func (d *Dynamic) Labels(v int) intervals.Set { return d.labels[v] }

// Descendants enumerates the descendant set of v including v itself; see
// Labeling.Descendants.
func (d *Dynamic) Descendants(v int, fn func(u int32) bool) bool {
	for _, iv := range d.labels[v] {
		for p := iv.Lo; p <= iv.Hi; p++ {
			if !fn(d.order[p-1]) {
				return false
			}
		}
	}
	return true
}

// TotalLabels returns the current number of stored intervals, the metric
// Rebuild improves.
func (d *Dynamic) TotalLabels() int64 {
	var total int64
	for _, s := range d.labels {
		total += int64(len(s))
	}
	return total
}

// View is an immutable point-in-time copy of a Dynamic labeling. The
// copy is shallow: interval sets are shared with the live labeling,
// which is safe because AddEdge never mutates a stored set in place — it
// replaces the header with a freshly allocated merge (MergeCanonical)
// and post-order numbers are append-only. A View therefore costs O(n)
// header copies to take and is safe for concurrent use by any number of
// goroutines while the owning Dynamic keeps absorbing updates.
type View struct {
	post   []int32
	labels []intervals.Set
}

// View captures the current labeling state. The caller may keep using
// the Dynamic (single-writer) while any number of readers query the
// returned View.
func (d *Dynamic) View() View {
	return View{
		post:   append([]int32(nil), d.post...),
		labels: append([]intervals.Set(nil), d.labels...),
	}
}

// NumVertices returns the number of vertices at capture time.
func (v View) NumVertices() int { return len(v.post) }

// PostOf returns the post-order number of u at capture time.
func (v View) PostOf(u int) int32 { return v.post[u] }

// Labels returns the label set of u at capture time. The set is shared;
// callers must not modify it.
func (v View) Labels(u int) intervals.Set { return v.labels[u] }

// Reach reports whether w was reachable from u at capture time.
func (v View) Reach(u, w int) bool {
	return v.labels[u].ContainsCanonical(v.post[w])
}

// Rebuild reconstructs the labeling from scratch over the accumulated
// graph, restoring optimal post-order locality and compression.
func (d *Dynamic) Rebuild() {
	b := graph.NewBuilder(len(d.post))
	for u, adj := range d.out {
		for _, v := range adj {
			b.AddEdge(u, int(v))
		}
	}
	l := Build(b.Build(), d.opts)
	d.post = append(d.post[:0], l.Post...)
	d.order = append(d.order[:0], l.Order...)
	d.labels = l.Labels
}
