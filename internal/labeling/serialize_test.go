package labeling

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestLabelingSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		g := randomDAG(rng, n, rng.Intn(4*n))
		l := Build(g, Options{})

		var buf bytes.Buffer
		written, err := l.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if written != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", written, buf.Len())
		}
		got, err := ReadLabeling(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumVertices() != n {
			t.Fatal("vertex count changed")
		}
		for v := 0; v < n; v++ {
			if got.Post[v] != l.Post[v] {
				t.Fatalf("post of %d changed", v)
			}
			if !got.Labels[v].Equal(l.Labels[v]) {
				t.Fatalf("labels of %d changed: %v vs %v", v, got.Labels[v], l.Labels[v])
			}
		}
		if got.UncompressedCount != l.UncompressedCount || got.CompressedCount != l.CompressedCount {
			t.Fatal("stats changed")
		}
		// Queries still work on the loaded labeling.
		for u := 0; u < n; u++ {
			reach := g.Reachable(u)
			for v := 0; v < n; v++ {
				if got.Reach(u, v) != reach[v] {
					t.Fatalf("loaded Reach(%d,%d) wrong", u, v)
				}
			}
		}
	}
}

func TestReadLabelingRejectsCorruptInput(t *testing.T) {
	g := randomDAG(rand.New(rand.NewSource(73)), 10, 20)
	l := Build(g, Options{})
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad-magic":   append([]byte("XXXX"), valid[4:]...),
		"bad-version": append(append([]byte{}, valid[:4]...), append([]byte{99}, valid[5:]...)...),
		"truncated":   valid[:len(valid)/2],
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadLabeling(bytes.NewReader(input)); err == nil {
				t.Error("corrupt input accepted")
			}
		})
	}

	// Corrupt post numbers: duplicate posts must be rejected.
	corrupt := append([]byte{}, valid...)
	// Posts start after magic(4) + version(1) + n(4) = offset 9; make the
	// second post equal the first.
	copy(corrupt[13:17], corrupt[9:13])
	if _, err := ReadLabeling(bytes.NewReader(corrupt)); err == nil {
		t.Error("duplicate post numbers accepted")
	}

	if _, err := ReadLabeling(strings.NewReader("RRLB\x01\xff\xff\xff\xff")); err == nil {
		t.Error("implausible vertex count accepted")
	}
}
