package labeling

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomDAG returns a random DAG over n vertices.
func randomDAG(rng *rand.Rand, n, edges int) *graph.Graph {
	perm := rng.Perm(n)
	b := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if perm[u] > perm[v] {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

func TestBuildMatchesBFSReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		for _, policy := range []graph.ForestPolicy{graph.ForestDFS, graph.ForestBFS} {
			l := Build(g, Options{Forest: policy})
			for u := 0; u < n; u++ {
				reach := g.Reachable(u)
				for v := 0; v < n; v++ {
					if got := l.Reach(u, v); got != reach[v] {
						t.Fatalf("trial %d policy %d: Reach(%d,%d) = %v, want %v",
							trial, policy, u, v, got, reach[v])
					}
				}
			}
		}
	}
}

func TestAlgorithm1EquivalentToFastBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(30)
		g := randomDAG(rng, n, rng.Intn(4*n))
		forest := graph.NewSpanningForest(g, graph.ForestDFS)
		fast := BuildWithForest(g, forest, Options{})
		slow := BuildAlgorithm1WithForest(g, forest, Options{})
		for v := 0; v < n; v++ {
			if !fast.Labels[v].Equal(slow.Labels[v]) {
				t.Fatalf("trial %d: L(%d) differs: fast %v, algorithm1 %v",
					trial, v, fast.Labels[v], slow.Labels[v])
			}
		}
		if fast.UncompressedCount != slow.UncompressedCount {
			t.Fatalf("trial %d: uncompressed counts differ: %d vs %d",
				trial, fast.UncompressedCount, slow.UncompressedCount)
		}
		if fast.CompressedCount != slow.CompressedCount {
			t.Fatalf("trial %d: compressed counts differ: %d vs %d",
				trial, fast.CompressedCount, slow.CompressedCount)
		}
	}
}

func TestLabelsAreCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		l := Build(g, Options{})
		for v := 0; v < n; v++ {
			if !l.Labels[v].IsCanonical() {
				t.Fatalf("trial %d: L(%d) = %v not canonical", trial, v, l.Labels[v])
			}
			if !l.Labels[v].ContainsCanonical(l.Post[v]) {
				t.Fatalf("trial %d: L(%d) misses own post", trial, v)
			}
		}
	}
}

func TestDescendantsEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		g := randomDAG(rng, n, rng.Intn(3*n))
		l := Build(g, Options{})
		for v := 0; v < n; v++ {
			want := g.Reachable(v)
			got := make([]bool, n)
			count := 0
			l.Descendants(v, func(u int32) bool {
				if got[u] {
					t.Fatalf("descendant %d enumerated twice", u)
				}
				got[u] = true
				count++
				return true
			})
			for u := 0; u < n; u++ {
				if got[u] != want[u] {
					t.Fatalf("trial %d: Descendants(%d) includes %d = %v, want %v",
						trial, v, u, got[u], want[u])
				}
			}
			if int64(count) != l.DescendantCount(v) {
				t.Fatalf("DescendantCount mismatch: %d vs %d", count, l.DescendantCount(v))
			}
		}
	}
}

func TestDescendantsEarlyStop(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	l := Build(g, Options{})
	calls := 0
	completed := l.Descendants(0, func(int32) bool {
		calls++
		return calls < 2
	})
	if completed {
		t.Error("early-stopped enumeration reported completion")
	}
	if calls != 2 {
		t.Errorf("callback ran %d times, want 2", calls)
	}
}

func TestSkipCompressionAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		g := randomDAG(rng, n, rng.Intn(3*n))
		l := Build(g, Options{SkipCompression: true})
		// Queries still correct over singleton labels.
		for u := 0; u < n; u++ {
			reach := g.Reachable(u)
			for v := 0; v < n; v++ {
				if got := l.Reach(u, v); got != reach[v] {
					t.Fatalf("trial %d: uncompressed Reach(%d,%d) = %v, want %v",
						trial, u, v, got, reach[v])
				}
			}
			// All labels are singletons.
			for _, iv := range l.Labels[u] {
				if iv.Lo != iv.Hi {
					t.Fatalf("non-singleton label %v under SkipCompression", iv)
				}
			}
		}
		if l.TotalLabels() != l.UncompressedCount {
			t.Fatalf("TotalLabels %d != UncompressedCount %d",
				l.TotalLabels(), l.UncompressedCount)
		}
	}
}

func TestSingleVertexAndEmptyEdgeGraph(t *testing.T) {
	g := graph.FromEdges(1, nil)
	l := Build(g, Options{})
	if !l.Reach(0, 0) {
		t.Error("vertex cannot reach itself")
	}
	if l.NumVertices() != 1 || l.PostOf(0) != 1 || l.VertexAt(1) != 0 {
		t.Error("trivial labeling wrong")
	}

	g = graph.FromEdges(5, nil)
	l = Build(g, Options{})
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if l.Reach(u, v) != (u == v) {
				t.Errorf("edgeless Reach(%d,%d) wrong", u, v)
			}
		}
	}
}

func TestMemoryBytesGrowsWithLabels(t *testing.T) {
	small := Build(graph.FromEdges(2, [][2]int{{0, 1}}), Options{})
	rng := rand.New(rand.NewSource(43))
	big := Build(randomDAG(rng, 200, 800), Options{})
	if small.MemoryBytes() <= 0 || big.MemoryBytes() <= small.MemoryBytes() {
		t.Errorf("MemoryBytes: small %d, big %d", small.MemoryBytes(), big.MemoryBytes())
	}
}

func TestCompressionReducesLabelsOnChains(t *testing.T) {
	// A chain compresses to a single interval per vertex.
	n := 50
	edges := make([][2]int, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	l := Build(graph.FromEdges(n, edges), Options{})
	for v := 0; v < n; v++ {
		if len(l.Labels[v]) != 1 {
			t.Fatalf("chain vertex %d has %d labels, want 1", v, len(l.Labels[v]))
		}
	}
	if l.CompressedCount != int64(n) {
		t.Errorf("CompressedCount = %d, want %d", l.CompressedCount, n)
	}
	if l.UncompressedCount != int64(n*(n+1)/2) {
		t.Errorf("UncompressedCount = %d, want %d", l.UncompressedCount, n*(n+1)/2)
	}
}
