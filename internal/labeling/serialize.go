package labeling

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/intervals"
)

// Serialization lets applications persist the labeling — the expensive
// part of every interval-based index on fragmented networks — and reload
// it without rebuilding. The format is versioned little-endian binary:
//
//	magic "RRLB" | version u8 | n u32 | post [n]i32 |
//	per vertex: count u32, count × (lo i32, hi i32) |
//	uncompressed i64 | compressed i64
//
// The spanning forest is construction-time state and is not persisted;
// a loaded Labeling has Forest == nil, which no query path touches.

var labelingMagic = [4]byte{'R', 'R', 'L', 'B'}

const labelingVersion = 1

// WriteTo serializes l. It implements io.WriterTo.
func (l *Labeling) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if err := write(labelingMagic); err != nil {
		return cw.n, err
	}
	if err := write(uint8(labelingVersion)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(len(l.Post))); err != nil {
		return cw.n, err
	}
	if err := write(l.Post); err != nil {
		return cw.n, err
	}
	for _, set := range l.Labels {
		if err := write(uint32(len(set))); err != nil {
			return cw.n, err
		}
		if len(set) > 0 {
			if err := write(set); err != nil {
				return cw.n, err
			}
		}
	}
	if err := write(l.UncompressedCount); err != nil {
		return cw.n, err
	}
	if err := write(l.CompressedCount); err != nil {
		return cw.n, err
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// ReadLabeling deserializes a labeling written by WriteTo. The result
// answers queries but carries no spanning forest.
func ReadLabeling(r io.Reader) (*Labeling, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic [4]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("labeling: reading magic: %w", err)
	}
	if magic != labelingMagic {
		return nil, fmt.Errorf("labeling: bad magic %q", magic)
	}
	var version uint8
	if err := read(&version); err != nil {
		return nil, fmt.Errorf("labeling: reading version: %w", err)
	}
	if version != labelingVersion {
		return nil, fmt.Errorf("labeling: unsupported version %d", version)
	}
	var n uint32
	if err := read(&n); err != nil {
		return nil, fmt.Errorf("labeling: reading size: %w", err)
	}
	const maxVertices = 1 << 30
	if n > maxVertices {
		return nil, fmt.Errorf("labeling: implausible vertex count %d", n)
	}
	l := &Labeling{
		Post:   make([]int32, n),
		Order:  make([]int32, n),
		Labels: make([]intervals.Set, n),
	}
	if err := read(l.Post); err != nil {
		return nil, fmt.Errorf("labeling: reading posts: %w", err)
	}
	seen := make([]bool, n)
	for v, p := range l.Post {
		if p < 1 || p > int32(n) || seen[p-1] {
			return nil, fmt.Errorf("labeling: corrupt post number %d for vertex %d", p, v)
		}
		seen[p-1] = true
		l.Order[p-1] = int32(v)
	}
	for v := range l.Labels {
		var count uint32
		if err := read(&count); err != nil {
			return nil, fmt.Errorf("labeling: reading label count of %d: %w", v, err)
		}
		if count > n {
			return nil, fmt.Errorf("labeling: implausible label count %d", count)
		}
		if count == 0 {
			continue
		}
		set := make(intervals.Set, count)
		if err := read(set); err != nil {
			return nil, fmt.Errorf("labeling: reading labels of %d: %w", v, err)
		}
		for _, iv := range set {
			if iv.Lo < 1 || iv.Hi > int32(n) || iv.Lo > iv.Hi {
				return nil, fmt.Errorf("labeling: corrupt interval %v", iv)
			}
		}
		l.Labels[v] = set
	}
	if err := read(&l.UncompressedCount); err != nil {
		return nil, fmt.Errorf("labeling: reading stats: %w", err)
	}
	if err := read(&l.CompressedCount); err != nil {
		return nil, fmt.Errorf("labeling: reading stats: %w", err)
	}
	return l, nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
