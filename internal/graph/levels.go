package graph

// LevelsFromSinks partitions the vertices of a DAG into topological
// height levels: level(v) = 0 for sinks, otherwise
// 1 + max(level(u) : u ∈ Out(v)). Within one level no vertex reaches
// another, so a children-before-parents computation (interval-label
// merging, BFL L_out propagation, SPA-Graph classification) may process
// an entire level concurrently — every vertex reads only the finished
// state of strictly lower levels and writes only its own.
//
// Vertices within a level appear in increasing id order, so the
// decomposition itself is deterministic. For a parents-before-children
// pass, call LevelsFromSinks on g.Reverse() (an O(1) view).
//
// It returns nil if g is not a DAG.
func LevelsFromSinks(g *Graph) [][]int32 {
	topo, ok := g.TopoOrder()
	if !ok {
		return nil
	}
	n := g.NumVertices()
	level := make([]int32, n)
	maxLevel := int32(0)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		l := int32(0)
		for _, u := range g.Out(int(v)) {
			if level[u]+1 > l {
				l = level[u] + 1
			}
		}
		level[v] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	counts := make([]int32, maxLevel+1)
	for v := 0; v < n; v++ {
		counts[level[v]]++
	}
	levels := make([][]int32, maxLevel+1)
	for l := range levels {
		levels[l] = make([]int32, 0, counts[l])
	}
	for v := 0; v < n; v++ {
		levels[level[v]] = append(levels[level[v]], int32(v))
	}
	return levels
}
