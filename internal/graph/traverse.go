package graph

// BFS traverses g breadth-first from start, calling visit for every
// reached vertex (including start). If visit returns false the traversal
// stops immediately; BFS then returns false. Otherwise it returns true
// after exhausting the reachable set.
func (g *Graph) BFS(start int, visit func(v int) bool) bool {
	seen := make([]bool, g.n)
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(start))
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if !visit(int(v)) {
			return false
		}
		for _, u := range g.Out(int(v)) {
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return true
}

// Reachable returns the set of vertices reachable from start (including
// start itself) as a boolean slice indexed by vertex id. It is the
// brute-force ground truth the reachability indexes are tested against.
func (g *Graph) Reachable(start int) []bool {
	seen := make([]bool, g.n)
	stack := []int32{int32(start)}
	seen[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Out(int(v)) {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return seen
}

// CanReach reports whether g contains a path from u to v, by plain DFS.
func (g *Graph) CanReach(u, v int) bool {
	if u == v {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int32{int32(u)}
	seen[u] = true
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, x := range g.Out(int(w)) {
			if int(x) == v {
				return true
			}
			if !seen[x] {
				seen[x] = true
				stack = append(stack, x)
			}
		}
	}
	return false
}

// TopoOrder returns a topological order of g (every edge goes from an
// earlier to a later position) and true, or nil and false if g contains a
// cycle. Kahn's algorithm.
func (g *Graph) TopoOrder() ([]int32, bool) {
	indeg := make([]int32, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = int32(g.InDegree(v))
	}
	order := make([]int32, 0, g.n)
	queue := make([]int32, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, u := range g.Out(int(v)) {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// IsDAG reports whether g is acyclic.
func (g *Graph) IsDAG() bool {
	_, ok := g.TopoOrder()
	return ok
}
