package graph

import "testing"

func TestLevelsFromSinks(t *testing.T) {
	// 0 → 1 → 3, 0 → 2 → 3, 4 isolated.
	g := FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	levels := LevelsFromSinks(g)
	if len(levels) != 3 {
		t.Fatalf("got %d levels, want 3", len(levels))
	}
	want := [][]int32{{3, 4}, {1, 2}, {0}}
	for l := range want {
		if len(levels[l]) != len(want[l]) {
			t.Fatalf("level %d = %v, want %v", l, levels[l], want[l])
		}
		for i := range want[l] {
			if levels[l][i] != want[l][i] {
				t.Fatalf("level %d = %v, want %v", l, levels[l], want[l])
			}
		}
	}

	// Every edge must go from a higher level to a strictly lower one.
	level := make([]int, 5)
	for l, vs := range levels {
		for _, v := range vs {
			level[v] = l
		}
	}
	g.Edges(func(u, v int) {
		if level[u] <= level[v] {
			t.Fatalf("edge (%d,%d): level %d → %d not decreasing", u, v, level[u], level[v])
		}
	})
}

func TestLevelsFromSinksCycle(t *testing.T) {
	g := FromEdges(2, [][2]int{{0, 1}, {1, 0}})
	if LevelsFromSinks(g) != nil {
		t.Fatal("cyclic graph must yield nil levels")
	}
}
