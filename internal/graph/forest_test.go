package graph

import (
	"math/rand"
	"testing"
)

// checkForestInvariants validates the structural invariants every
// spanning forest of a DAG must satisfy.
func checkForestInvariants(t *testing.T, g *Graph, f *SpanningForest) {
	t.Helper()
	n := g.NumVertices()
	if len(f.Order) != n {
		t.Fatalf("Order has %d entries for %d vertices", len(f.Order), n)
	}
	// Post numbers are a permutation of [1, n] consistent with Order.
	seen := make([]bool, n+1)
	for v := 0; v < n; v++ {
		p := f.Post[v]
		if p < 1 || p > int32(n) || seen[p] {
			t.Fatalf("bad post number %d for vertex %d", p, v)
		}
		seen[p] = true
		if f.Order[p-1] != int32(v) {
			t.Fatalf("Order[%d] = %d, want %d", p-1, f.Order[p-1], v)
		}
		if f.VertexAt(p) != int32(v) {
			t.Fatal("VertexAt inconsistent")
		}
	}
	// Parent edges exist in g; a parent has a higher post number than any
	// vertex in its subtree, and MinPost bounds the subtree.
	for v := 0; v < n; v++ {
		p := f.Parent[v]
		if p < 0 {
			continue
		}
		if !g.HasEdge(int(p), v) {
			t.Fatalf("tree edge (%d,%d) not in graph", p, v)
		}
		if f.Post[p] <= f.Post[v] {
			t.Fatalf("parent %d post %d <= child %d post %d", p, f.Post[p], v, f.Post[v])
		}
		if f.MinPost[p] > f.MinPost[v] {
			t.Fatalf("MinPost not monotone at (%d,%d)", p, v)
		}
	}
	// Subtree of v covers exactly [MinPost[v], Post[v]].
	for v := 0; v < n; v++ {
		count := 0
		for u := 0; u < n; u++ {
			inChain := false
			for w := int32(u); w >= 0; w = f.Parent[w] {
				if w == int32(v) {
					inChain = true
					break
				}
			}
			inRange := f.Post[u] >= f.MinPost[v] && f.Post[u] <= f.Post[v]
			if inChain != inRange {
				t.Fatalf("subtree range mismatch: v=%d u=%d chain=%v range=%v",
					v, u, inChain, inRange)
			}
			if inChain {
				count++
			}
		}
		if int64(count) != int64(f.Post[v]-f.MinPost[v]+1) {
			t.Fatalf("subtree of %d not contiguous", v)
		}
	}
	// Tree-edge marks agree with parents.
	treeEdges := 0
	for u := 0; u < n; u++ {
		for i, v := range g.Out(u) {
			if f.IsTreeEdge(u, i) {
				treeEdges++
				if f.Parent[v] != int32(u) {
					t.Fatalf("marked tree edge (%d,%d) but parent is %d", u, v, f.Parent[v])
				}
			}
		}
	}
	roots := 0
	for v := 0; v < n; v++ {
		if f.Parent[v] < 0 {
			roots++
		}
	}
	if treeEdges != n-roots {
		t.Fatalf("tree has %d edges for %d vertices and %d roots", treeEdges, n, roots)
	}
	// Non-tree edges complete the edge set.
	if got := len(f.NonTreeEdges()); got != g.NumEdges()-treeEdges {
		t.Fatalf("NonTreeEdges = %d, want %d", got, g.NumEdges()-treeEdges)
	}
}

func TestSpanningForestPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		g := randomDAG(rng, n, rng.Intn(3*n))
		for _, policy := range []ForestPolicy{ForestDFS, ForestBFS} {
			f := NewSpanningForest(g, policy)
			checkForestInvariants(t, g, f)
		}
	}
}

func TestSpanningForestDFSEdgesPointBackwards(t *testing.T) {
	// Under the DFS policy every graph edge goes from a higher to a lower
	// post number — the property Algorithm 1's non-tree-edge ordering
	// relies on.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, rng.Intn(4*n))
		f := NewSpanningForest(g, ForestDFS)
		g.Edges(func(u, v int) {
			if f.Post[v] >= f.Post[u] {
				t.Fatalf("trial %d: edge (%d,%d) with post %d >= %d",
					trial, u, v, f.Post[v], f.Post[u])
			}
		})
	}
}

func TestSpanningForestPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on cyclic input")
		}
	}()
	NewSpanningForest(FromEdges(2, [][2]int{{0, 1}, {1, 0}}), ForestDFS)
}

func TestAncestors(t *testing.T) {
	// Chain 0 -> 1 -> 2.
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	f := NewSpanningForest(g, ForestDFS)
	var anc []int
	f.Ancestors(2, func(w int) { anc = append(anc, w) })
	if len(anc) != 2 || anc[0] != 1 || anc[1] != 0 {
		t.Errorf("Ancestors(2) = %v, want [1 0]", anc)
	}
}

func TestForestFromParents(t *testing.T) {
	// The paper's Figure 3 forest; see labeling tests for the full
	// fixture. Here: a diamond where we force the spanning tree shape.
	g := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	f := ForestFromParents(g, []int32{-1, 0, 0, 2}, []int32{0})
	checkForestInvariants(t, g, f)
	if f.Parent[3] != 2 {
		t.Errorf("Parent[3] = %d, want 2", f.Parent[3])
	}
	// Post-order with children by id: subtree(1)={1}, subtree(2)={3,2}:
	// post: 1->1, 3->2, 2->3, 0->4.
	want := []int32{4, 1, 3, 2}
	for v, p := range want {
		if f.Post[v] != p {
			t.Errorf("Post[%d] = %d, want %d", v, f.Post[v], p)
		}
	}
}

func TestForestFromParentsValidation(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	for name, fn := range map[string]func(){
		"bad-length": func() { ForestFromParents(g, []int32{-1, 0}, []int32{0}) },
		"phantom-edge": func() {
			ForestFromParents(g, []int32{-1, 0, 0}, []int32{0})
		},
		"root-mismatch": func() {
			ForestFromParents(g, []int32{-1, 0, 1}, []int32{0, 2})
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}
