// Package graph implements the directed-graph substrate of the geosocial
// reachability library: a compact adjacency representation, traversals,
// topological ordering, Tarjan's strongly-connected-components algorithm
// and DAG condensation (paper §5).
//
// Vertices are dense integer ids in [0, NumVertices). The package is
// deliberately free of any spatial knowledge; geosocial concerns live in
// internal/dataset and internal/core.
package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It tolerates
// duplicate edges (deduplicated on Build) and self-loops (dropped on
// Build, as they carry no reachability information).
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the directed edge (from, to). It panics if either
// endpoint is out of range, as that is always a programming error.
func (b *Builder) AddEdge(from, to int) {
	if from < 0 || from >= b.n || to < 0 || to >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, b.n))
	}
	b.edges = append(b.edges, [2]int32{int32(from), int32(to)})
}

// NumVertices returns the number of vertices the builder was created with.
func (b *Builder) NumVertices() int { return b.n }

// Build finalizes the builder into an immutable Graph in compressed
// sparse row (CSR) form, for both out- and in-adjacency. Duplicate edges
// and self-loops are discarded.
func (b *Builder) Build() *Graph {
	edges := b.edges
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	// Deduplicate and drop self-loops in place.
	w := 0
	for i, e := range edges {
		if e[0] == e[1] {
			continue
		}
		if i > 0 && w > 0 && edges[w-1] == e {
			continue
		}
		edges[w] = e
		w++
	}
	edges = edges[:w]

	g := &Graph{
		n:      b.n,
		outOff: make([]int32, b.n+1),
		outAdj: make([]int32, len(edges)),
		inOff:  make([]int32, b.n+1),
		inAdj:  make([]int32, len(edges)),
	}
	for _, e := range edges {
		g.outOff[e[0]+1]++
		g.inOff[e[1]+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	outPos := make([]int32, b.n)
	inPos := make([]int32, b.n)
	copy(outPos, g.outOff[:b.n])
	copy(inPos, g.inOff[:b.n])
	for _, e := range edges {
		g.outAdj[outPos[e[0]]] = e[1]
		outPos[e[0]]++
		g.inAdj[inPos[e[1]]] = e[0]
		inPos[e[1]]++
	}
	return g
}

// Graph is an immutable directed graph in CSR form. Construct one with a
// Builder or FromEdges.
type Graph struct {
	n      int
	outOff []int32 // len n+1; outAdj[outOff[v]:outOff[v+1]] are v's successors
	outAdj []int32
	inOff  []int32 // len n+1; inAdj[inOff[v]:inOff[v+1]] are v's predecessors
	inAdj  []int32
}

// FromEdges builds a graph with n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// NumVertices returns the number of vertices in g.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of (deduplicated) directed edges in g.
func (g *Graph) NumEdges() int { return len(g.outAdj) }

// Out returns the successors of v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Out(v int) []int32 {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// In returns the predecessors of v. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) In(v int) []int32 {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v int) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v int) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// Edges calls fn for every edge (u, v) of g, grouped by source vertex.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Out(u) {
			fn(u, int(v))
		}
	}
}

// Reverse returns a new graph with every edge direction flipped. The
// reversed graph drives the construction of the reversed interval-based
// labeling used by 3DReach-Rev (paper §4.2).
func (g *Graph) Reverse() *Graph {
	r := &Graph{
		n:      g.n,
		outOff: g.inOff,
		outAdj: g.inAdj,
		inOff:  g.outOff,
		inAdj:  g.outAdj,
	}
	return r
}

// Roots returns the vertices with zero incoming edges, in increasing id
// order. These become the spanning-forest roots of Algorithm 1.
func (g *Graph) Roots() []int {
	var roots []int
	for v := 0; v < g.n; v++ {
		if g.InDegree(v) == 0 {
			roots = append(roots, v)
		}
	}
	return roots
}

// HasEdge reports whether the edge (u, v) exists. It runs in
// O(log outdeg(u)) using the sorted CSR layout.
func (g *Graph) HasEdge(u, v int) bool {
	adj := g.Out(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= int32(v) })
	return i < len(adj) && adj[i] == int32(v)
}

// MemoryBytes returns the approximate in-memory footprint of g's CSR
// arrays, used by the index-size accounting of Table 4.
func (g *Graph) MemoryBytes() int64 {
	return int64(4 * (len(g.outOff) + len(g.outAdj) + len(g.inOff) + len(g.inAdj)))
}
