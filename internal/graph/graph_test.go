package graph

import (
	"math/rand"
	"testing"
)

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	b.AddEdge(1, 3)
	g := b.Build()
	if got := g.NumEdges(); got != 2 {
		t.Fatalf("NumEdges = %d, want 2", got)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 3) {
		t.Error("expected edges missing")
	}
	if g.HasEdge(2, 2) {
		t.Error("self loop retained")
	}
	if g.HasEdge(1, 0) {
		t.Error("phantom reverse edge")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {0, 2}, {3, 2}, {2, 4}})
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 || g.OutDegree(4) != 0 {
		t.Error("degree mismatch")
	}
	out := g.Out(0)
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Errorf("Out(0) = %v", out)
	}
	in := g.In(2)
	if len(in) != 2 || in[0] != 0 || in[1] != 3 {
		t.Errorf("In(2) = %v", in)
	}
}

func TestReverse(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	g.Edges(func(u, v int) {
		if !r.HasEdge(v, u) {
			t.Errorf("reversed edge (%d,%d) missing", v, u)
		}
	})
}

func TestRoots(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {2, 1}, {1, 3}})
	roots := g.Roots()
	want := []int{0, 2, 4}
	if len(roots) != len(want) {
		t.Fatalf("Roots = %v, want %v", roots, want)
	}
	for i := range want {
		if roots[i] != want[i] {
			t.Fatalf("Roots = %v, want %v", roots, want)
		}
	}
}

func TestBFSEarlyStop(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	visited := 0
	completed := g.BFS(0, func(v int) bool {
		visited++
		return v != 2
	})
	if completed {
		t.Error("BFS should report early stop")
	}
	if visited != 3 {
		t.Errorf("visited %d vertices, want 3", visited)
	}
}

func TestCanReachAndReachable(t *testing.T) {
	g := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if !g.CanReach(0, 2) || g.CanReach(0, 3) || !g.CanReach(0, 0) {
		t.Error("CanReach wrong")
	}
	r := g.Reachable(0)
	for v, want := range []bool{true, true, true, false, false, false} {
		if r[v] != want {
			t.Errorf("Reachable(0)[%d] = %v", v, r[v])
		}
	}
}

func TestTopoOrder(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	order, ok := g.TopoOrder()
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	g.Edges(func(u, v int) {
		if pos[u] >= pos[v] {
			t.Errorf("edge (%d,%d) violates topo order", u, v)
		}
	})

	cyclic := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if _, ok := cyclic.TopoOrder(); ok {
		t.Error("cycle not detected")
	}
	if cyclic.IsDAG() {
		t.Error("IsDAG wrong for cycle")
	}
}

func TestSCCsSimple(t *testing.T) {
	// Two 2-cycles and one singleton.
	g := FromEdges(5, [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}, {3, 4}})
	comp, count := g.SCCs()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[3] {
		t.Errorf("components wrong: %v", comp)
	}
	// Reverse topological ids: edge C(0,1) -> C(2,3) -> C(4).
	if !(comp[0] > comp[2] && comp[2] > comp[4]) {
		t.Errorf("component ids not reverse-topological: %v", comp)
	}
}

// randomGraph returns a random directed graph.
func randomGraph(rng *rand.Rand, n, edges int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < edges; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

// randomDAG returns a random DAG (edges only from lower to higher id
// after a random relabeling).
func randomDAG(rng *rand.Rand, n, edges int) *Graph {
	perm := rng.Perm(n)
	b := NewBuilder(n)
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if perm[u] > perm[v] {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

func TestSCCsRandomizedAgainstReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(4*n))
		comp, _ := g.SCCs()
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = g.Reachable(v)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := comp[u] == comp[v]
				mutual := reach[u][v] && reach[v][u]
				if same != mutual {
					t.Fatalf("trial %d: comp(%d)==comp(%d) is %v but mutual reach is %v",
						trial, u, v, same, mutual)
				}
			}
		}
	}
}

func TestCondensePreservesReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(3*n))
		c := g.Condense()
		if !c.DAG.IsDAG() {
			t.Fatal("condensation not a DAG")
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				want := g.CanReach(u, v)
				got := c.DAG.CanReach(int(c.Comp[u]), int(c.Comp[v]))
				if got != want {
					t.Fatalf("trial %d: reach(%d,%d) = %v after condensation, want %v",
						trial, u, v, got, want)
				}
			}
		}
		// Members partition the vertex set.
		seen := make([]bool, n)
		for cid, members := range c.Members {
			for _, v := range members {
				if seen[v] {
					t.Fatal("vertex in two components")
				}
				seen[v] = true
				if c.Comp[v] != int32(cid) {
					t.Fatal("Members/Comp inconsistent")
				}
			}
		}
		for v, s := range seen {
			if !s {
				t.Fatalf("vertex %d in no component", v)
			}
		}
	}
}

func TestCondensationStats(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 0}, {1, 2}, {3, 4}})
	c := g.Condense()
	if c.NumComponents() != 4 {
		t.Errorf("NumComponents = %d, want 4", c.NumComponents())
	}
	if c.LargestComponentSize() != 2 {
		t.Errorf("LargestComponentSize = %d, want 2", c.LargestComponentSize())
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}})
	if g.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
}
