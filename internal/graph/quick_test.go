package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// edgeSpec is a quick-generated directed graph description.
type edgeSpec struct {
	N     uint8
	Pairs []uint16
}

func (s edgeSpec) graph() *Graph {
	n := int(s.N%40) + 1
	b := NewBuilder(n)
	for _, p := range s.Pairs {
		u := int(p>>8) % n
		v := int(p&0xff) % n
		b.AddEdge(u, v)
	}
	return b.Build()
}

func (s edgeSpec) dag() *Graph {
	n := int(s.N%40) + 1
	b := NewBuilder(n)
	for _, p := range s.Pairs {
		u := int(p>>8) % n
		v := int(p&0xff) % n
		if u > v {
			u, v = v, u
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}

func TestQuickReverseIsInvolution(t *testing.T) {
	f := func(s edgeSpec) bool {
		g := s.graph()
		rr := g.Reverse().Reverse()
		if rr.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(u, v int) {
			if !rr.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickReachabilityTransitive(t *testing.T) {
	f := func(s edgeSpec, seed int64) bool {
		g := s.graph()
		n := g.NumVertices()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if g.CanReach(a, b) && g.CanReach(b, c) && !g.CanReach(a, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickCondensationIsAcyclicAndMinimal(t *testing.T) {
	f := func(s edgeSpec) bool {
		g := s.graph()
		c := g.Condense()
		if !c.DAG.IsDAG() {
			return false
		}
		// Condensing a DAG is the identity on vertex count.
		c2 := c.DAG.Condense()
		return c2.NumComponents() == c.DAG.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickTopoOrderSortsAllDAGs(t *testing.T) {
	f := func(s edgeSpec) bool {
		g := s.dag()
		order, ok := g.TopoOrder()
		if !ok {
			return false
		}
		pos := make([]int, g.NumVertices())
		for i, v := range order {
			pos[v] = i
		}
		sorted := true
		g.Edges(func(u, v int) {
			if pos[u] >= pos[v] {
				sorted = false
			}
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickForestSubtreesContiguous(t *testing.T) {
	f := func(s edgeSpec, bfs bool) bool {
		g := s.dag()
		policy := ForestDFS
		if bfs {
			policy = ForestBFS
		}
		forest := NewSpanningForest(g, policy)
		// Every subtree covers the contiguous post range
		// [MinPost, Post]; spot-check via parents.
		for v := 0; v < g.NumVertices(); v++ {
			p := forest.Parent[v]
			if p < 0 {
				continue
			}
			if forest.MinPost[p] > forest.MinPost[v] || forest.Post[p] <= forest.Post[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
