package graph

// SCCs computes the strongly connected components of g using an iterative
// version of Tarjan's algorithm (recursion-free so that million-vertex
// social cores do not overflow the goroutine stack).
//
// The result assigns every vertex a component id in [0, count). Component
// ids are in reverse topological order of the condensation: if the
// condensation has an edge C1 -> C2 then id(C1) > id(C2). Callers that
// need a topological order of components can therefore iterate ids
// downwards.
func (g *Graph) SCCs() (comp []int32, count int) {
	const unvisited = -1
	n := g.n
	comp = make([]int32, n)
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}

	var next int32
	stack := make([]int32, 0, 64)

	// Explicit DFS frames: vertex and position within its out-list.
	type frame struct {
		v   int32
		pos int32
	}
	frames := make([]frame, 0, 64)

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames, frame{v: int32(root)})
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			adj := g.Out(int(f.v))
			advanced := false
			for int(f.pos) < len(adj) {
				u := adj[f.pos]
				f.pos++
				if index[u] == unvisited {
					index[u] = next
					lowlink[u] = next
					next++
					stack = append(stack, u)
					onStack[u] = true
					frames = append(frames, frame{v: u})
					advanced = true
					break
				}
				if onStack[u] && lowlink[f.v] > index[u] {
					lowlink[f.v] = index[u]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			v := f.v
			frames = frames[:len(frames)-1]
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(count)
					if w == v {
						break
					}
				}
				count++
			}
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if lowlink[p] > lowlink[v] {
					lowlink[p] = lowlink[v]
				}
			}
		}
	}
	return comp, count
}

// Condensation holds the DAG obtained by collapsing every strongly
// connected component of a graph into a single super-vertex, together
// with the mapping between original vertices and components (paper §5).
type Condensation struct {
	// DAG is the condensed graph; vertex ids are component ids.
	DAG *Graph
	// Comp maps each original vertex to its component id.
	Comp []int32
	// Members lists the original vertices of every component.
	Members [][]int32
}

// Condense computes the SCC condensation of g.
func (g *Graph) Condense() *Condensation {
	comp, count := g.SCCs()
	members := make([][]int32, count)
	sizes := make([]int32, count)
	for _, c := range comp {
		sizes[c]++
	}
	for c := range members {
		members[c] = make([]int32, 0, sizes[c])
	}
	for v, c := range comp {
		members[c] = append(members[c], int32(v))
	}

	b := NewBuilder(count)
	g.Edges(func(u, v int) {
		cu, cv := comp[u], comp[v]
		if cu != cv {
			b.AddEdge(int(cu), int(cv))
		}
	})
	return &Condensation{DAG: b.Build(), Comp: comp, Members: members}
}

// LargestComponentSize returns the number of vertices in the biggest SCC.
func (c *Condensation) LargestComponentSize() int {
	max := 0
	for _, m := range c.Members {
		if len(m) > max {
			max = len(m)
		}
	}
	return max
}

// NumComponents returns the number of strongly connected components.
func (c *Condensation) NumComponents() int { return len(c.Members) }
