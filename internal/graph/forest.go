package graph

// ForestPolicy selects how the spanning forest of a DAG is grown.
// The paper's future work (§8) mentions studying the role of the spanning
// forest shape; the library exposes the two natural policies as an
// ablation knob (rrbench -exp ablation-forest).
type ForestPolicy int

const (
	// ForestDFS grows each spanning tree depth-first (the default; it
	// keeps subtree post-order ranges contiguous and tends to give long
	// chains, which compress well).
	ForestDFS ForestPolicy = iota
	// ForestBFS grows each spanning tree breadth-first (shallow trees).
	ForestBFS
)

// SpanningForest is a rooted spanning forest of a DAG, together with the
// post-order numbering Algorithm 1 assigns to its vertices.
//
// Post-order numbers are 1-based and dense: they form exactly the range
// [1, NumVertices], matching the paper's running example (Table 1).
type SpanningForest struct {
	// Parent[v] is v's parent in its spanning tree, or -1 for roots.
	Parent []int32
	// Post[v] is the post-order traversal number of v (1-based).
	Post []int32
	// MinPost[v] is the smallest post-order number in v's subtree. The
	// subtree of v covers exactly the contiguous post-order interval
	// [MinPost[v], Post[v]] — the tree label of Agrawal et al.
	MinPost []int32
	// Order lists the vertices by increasing post-order number, i.e.
	// Order[i] is the vertex with post-order number i+1.
	Order []int32
	// Roots lists the root of each spanning tree in visit order.
	Roots []int32
	// TreeEdge[e-index] is not stored; use IsTreeEdge.
	isTreeChild []bool // indexed like the CSR out-array of the source graph
	g           *Graph
}

// NewSpanningForest computes a spanning forest of the DAG g and the
// post-order numbering of its vertices (Algorithm 1, lines 1–4).
//
// Every vertex with zero in-degree becomes a root. Vertices that are not
// reachable from any zero-in-degree vertex cannot exist in a DAG, so the
// forest always spans all of g. NewSpanningForest panics if g has a cycle.
func NewSpanningForest(g *Graph, policy ForestPolicy) *SpanningForest {
	if !g.IsDAG() {
		panic("graph: NewSpanningForest requires a DAG; condense SCCs first")
	}
	n := g.NumVertices()
	f := &SpanningForest{
		Parent:      make([]int32, n),
		Post:        make([]int32, n),
		MinPost:     make([]int32, n),
		Order:       make([]int32, 0, n),
		isTreeChild: make([]bool, g.NumEdges()),
		g:           g,
	}
	for i := range f.Parent {
		f.Parent[i] = -1
	}
	visited := make([]bool, n)

	// First grow the trees (choosing tree edges), then post-order each.
	children := make([][]int32, n)
	grow := func(root int) {
		visited[root] = true
		if policy == ForestBFS {
			queue := []int32{int32(root)}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				base := g.outOff[v]
				for i, u := range g.Out(int(v)) {
					if !visited[u] {
						visited[u] = true
						f.Parent[u] = v
						f.isTreeChild[int(base)+i] = true
						children[v] = append(children[v], u)
						queue = append(queue, u)
					}
				}
			}
			return
		}
		// DFS, iterative.
		type frame struct {
			v   int32
			pos int32
		}
		frames := []frame{{v: int32(root)}}
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			adj := g.Out(int(fr.v))
			advanced := false
			for int(fr.pos) < len(adj) {
				u := adj[fr.pos]
				edgeIdx := int(g.outOff[fr.v]) + int(fr.pos)
				fr.pos++
				if !visited[u] {
					visited[u] = true
					f.Parent[u] = fr.v
					f.isTreeChild[edgeIdx] = true
					children[fr.v] = append(children[fr.v], u)
					frames = append(frames, frame{v: u})
					advanced = true
					break
				}
			}
			if !advanced {
				frames = frames[:len(frames)-1]
			}
		}
	}

	var roots []int32
	for v := 0; v < n; v++ {
		if g.InDegree(v) == 0 {
			roots = append(roots, int32(v))
		}
	}
	// A DAG with n > 0 vertices always has at least one zero-in-degree
	// vertex, and every vertex is reachable from the set of such vertices.
	for _, r := range roots {
		if !visited[r] {
			grow(int(r))
		}
	}
	f.Roots = roots

	// Post-order numbering, tree by tree (Algorithm 1, lines 2–4).
	next := int32(1)
	for _, r := range roots {
		next = f.postorder(int(r), children, next)
	}
	return f
}

// postorder assigns post-order numbers to the subtree rooted at root,
// starting from next; it returns the next unused number. Iterative.
func (f *SpanningForest) postorder(root int, children [][]int32, next int32) int32 {
	type frame struct {
		v   int32
		pos int32
	}
	frames := []frame{{v: int32(root)}}
	for len(frames) > 0 {
		fr := &frames[len(frames)-1]
		kids := children[fr.v]
		if int(fr.pos) < len(kids) {
			u := kids[fr.pos]
			fr.pos++
			frames = append(frames, frame{v: u})
			continue
		}
		// All children numbered; number fr.v.
		v := fr.v
		frames = frames[:len(frames)-1]
		f.Post[v] = next
		min := next
		for _, u := range kids {
			if f.MinPost[u] < min {
				min = f.MinPost[u]
			}
		}
		f.MinPost[v] = min
		f.Order = append(f.Order, v)
		next++
	}
	return next
}

// ForestFromParents builds a SpanningForest from an explicit parent
// assignment: parent[v] is v's tree parent or -1 for roots. Children are
// visited in increasing vertex-id order during the post-order numbering;
// roots are numbered in the order given. The assignment must form a
// forest over exactly the vertices of g whose tree edges exist in g, or
// ForestFromParents panics. Tests use this to reproduce the paper's
// hand-picked example forest (Figure 3).
func ForestFromParents(g *Graph, parent []int32, roots []int32) *SpanningForest {
	n := g.NumVertices()
	if len(parent) != n {
		panic("graph: ForestFromParents: parent length mismatch")
	}
	f := &SpanningForest{
		Parent:      append([]int32(nil), parent...),
		Post:        make([]int32, n),
		MinPost:     make([]int32, n),
		Order:       make([]int32, 0, n),
		Roots:       append([]int32(nil), roots...),
		isTreeChild: make([]bool, g.NumEdges()),
		g:           g,
	}
	children := make([][]int32, n)
	rootCount := 0
	for v := 0; v < n; v++ {
		p := parent[v]
		if p < 0 {
			rootCount++
			continue
		}
		if !g.HasEdge(int(p), v) {
			panic("graph: ForestFromParents: tree edge missing from graph")
		}
		children[p] = append(children[p], int32(v)) // ids arrive in order
		for i, u := range g.Out(int(p)) {
			if int(u) == v {
				f.isTreeChild[int(g.outOff[p])+i] = true
			}
		}
	}
	if rootCount != len(roots) {
		panic("graph: ForestFromParents: root count mismatch")
	}
	next := int32(1)
	for _, r := range roots {
		if parent[r] >= 0 {
			panic("graph: ForestFromParents: listed root has a parent")
		}
		next = f.postorder(int(r), children, next)
	}
	if int(next) != n+1 {
		panic("graph: ForestFromParents: parent assignment does not span the graph")
	}
	return f
}

// IsTreeEdge reports whether the i-th outgoing edge of u (in the order
// returned by Graph.Out) is a spanning-tree edge.
func (f *SpanningForest) IsTreeEdge(u, i int) bool {
	return f.isTreeChild[int(f.g.outOff[u])+i]
}

// NonTreeEdges returns all edges of the underlying graph that are not part
// of the spanning forest, i.e. the set E_NF of Algorithm 1 (line 19).
func (f *SpanningForest) NonTreeEdges() [][2]int32 {
	var edges [][2]int32
	g := f.g
	for u := 0; u < g.NumVertices(); u++ {
		for i, v := range g.Out(u) {
			if !f.IsTreeEdge(u, i) {
				edges = append(edges, [2]int32{int32(u), v})
			}
		}
	}
	return edges
}

// VertexAt returns the vertex with the given 1-based post-order number.
func (f *SpanningForest) VertexAt(post int32) int32 {
	return f.Order[post-1]
}

// Ancestors calls fn for every proper ancestor of v in the spanning
// forest, walking the parent chain from v's parent to the root.
func (f *SpanningForest) Ancestors(v int, fn func(w int)) {
	for w := f.Parent[v]; w >= 0; w = f.Parent[w] {
		fn(int(w))
	}
}
