package planner

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/labeling"
)

func testPrep(t *testing.T, seed int64) (*dataset.Prepared, *labeling.Labeling) {
	t.Helper()
	net := dataset.Generate(dataset.GenConfig{
		Name:        "planner-test",
		Users:       400,
		Venues:      300,
		AvgFriends:  4,
		AvgCheckins: 2,
		Regime:      dataset.Fragmented,
		Seed:        seed,
	})
	prep := dataset.Prepare(net)
	return prep, labeling.Build(prep.DAG, labeling.Options{})
}

func randomRegion(rng *rand.Rand, space geom.Rect) geom.Rect {
	w := space.Width() * (0.01 + 0.25*rng.Float64())
	h := space.Height() * (0.01 + 0.25*rng.Float64())
	x := space.Min.X + rng.Float64()*(space.Width()-w)
	y := space.Min.Y + rng.Float64()*(space.Height()-h)
	return geom.NewRect(x, y, x+w, y+h)
}

// TestRegionBoundsBracketExact is the estimator accuracy bounds test:
// the histogram's lower/upper bounds must bracket the true |P ∩ R| for
// arbitrary regions, including degenerate and out-of-space ones.
func TestRegionBoundsBracketExact(t *testing.T) {
	prep, fwd := testPrep(t, 7)
	est := NewEstimator(prep, fwd)
	space := prep.Net.Space()
	rng := rand.New(rand.NewSource(99))

	exact := func(r geom.Rect) float64 {
		var n float64
		for v, s := range prep.Net.Spatial {
			if s && r.ContainsPoint(prep.Net.Points[v]) {
				n++
			}
		}
		return n
	}

	regions := []geom.Rect{
		space, // whole space: lo == hi == |P|
		geom.NewRect(space.Max.X+1, space.Max.Y+1, space.Max.X+2, space.Max.Y+2), // disjoint
	}
	for i := 0; i < 300; i++ {
		regions = append(regions, randomRegion(rng, space))
	}
	for _, r := range regions {
		lo, hi := est.RegionBounds(r)
		ex := exact(r)
		if lo > ex || ex > hi {
			t.Fatalf("region %v: bounds [%g, %g] miss exact %g", r, lo, hi, ex)
		}
		if got := est.RegionCount(r); got < lo || got > hi {
			t.Fatalf("region %v: midpoint %g outside [%g, %g]", r, got, lo, hi)
		}
	}
	if lo, hi := est.RegionBounds(space); lo != est.TotalSpatial() || hi != est.TotalSpatial() {
		t.Fatalf("whole space: want tight bounds at %g, got [%g, %g]", est.TotalSpatial(), lo, hi)
	}
}

// TestDescendantMassMatchesLabeling checks the mass estimator is the
// labeling's exact descendant count, not an approximation.
func TestDescendantMassMatchesLabeling(t *testing.T) {
	prep, fwd := testPrep(t, 11)
	est := NewEstimator(prep, fwd)
	for v := 0; v < prep.Net.NumVertices(); v += 17 {
		want := float64(fwd.DescendantCount(int(prep.Comp[v])))
		if got := est.DescendantMass(v); got != want {
			t.Fatalf("vertex %d: mass %g, labeling says %g", v, got, want)
		}
		if got := est.LabelCount(v); got != len(fwd.Labels[prep.Comp[v]]) {
			t.Fatalf("vertex %d: label count %d, labeling says %d", v, got, len(fwd.Labels[prep.Comp[v]]))
		}
	}
}

// TestModelConvergence is the feedback-loop test: concurrent observers
// reporting a fixed per-unit cost must pull the EMA coefficient to it.
// Run under -race (ci.sh does) to exercise the CAS loop.
func TestModelConvergence(t *testing.T) {
	m := NewModel(3, 0.2, -1)
	trueCost := []float64{5e-8, 2e-6, 4e-7}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				member := rng.Intn(3)
				work := 1 + rng.Float64()*1000
				m.Observe(member, work, trueCost[member]*(1+work))
			}
		}(g)
	}
	wg.Wait()
	for i, want := range trueCost {
		got := m.Coef(i)
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("member %d: coefficient %g did not converge to %g", i, got, want)
		}
	}
}

// TestObserveIgnoresGarbage checks non-positive and NaN observations
// leave the coefficient untouched.
func TestObserveIgnoresGarbage(t *testing.T) {
	m := NewModel(1, 0.5, -1)
	before := m.Coef(0)
	m.Observe(0, 10, 0)
	m.Observe(0, 10, -1)
	m.Observe(0, 10, math.NaN())
	if got := m.Coef(0); got != before {
		t.Fatalf("garbage observation moved coefficient %g -> %g", before, got)
	}
	m.SetCoef(0, math.Inf(1))
	m.SetCoef(0, -3)
	if got := m.Coef(0); got != before {
		t.Fatalf("garbage SetCoef moved coefficient %g -> %g", before, got)
	}
}

// TestChooseArgminAndExplore checks cost-based routing picks the
// cheapest member and that exploration ticks cycle through all members.
func TestChooseArgminAndExplore(t *testing.T) {
	m := NewModel(3, 0.2, -1)
	m.SetCoef(0, 1e-6)
	m.SetCoef(1, 1e-8) // cheapest per unit
	m.SetCoef(2, 1e-7)
	works := []float64{10, 10, 10}
	for i := 0; i < 20; i++ {
		choice, explored := m.Choose(works)
		if explored {
			t.Fatal("exploration fired with exploreEvery disabled")
		}
		if choice != 1 {
			t.Fatalf("choice %d, want cheapest member 1", choice)
		}
	}

	// Member 1 stays cheapest, but every 4th query must explore, and
	// exploration must visit every member eventually.
	me := NewModel(3, 0.2, 4)
	me.SetCoef(0, 1e-6)
	me.SetCoef(1, 1e-8)
	me.SetCoef(2, 1e-7)
	seen := map[int]bool{}
	explorations := 0
	for i := 0; i < 40; i++ {
		choice, explored := me.Choose(works)
		if explored {
			explorations++
			seen[choice] = true
		} else if choice != 1 {
			t.Fatalf("non-exploration choice %d, want 1", choice)
		}
	}
	if explorations != 10 {
		t.Fatalf("got %d explorations over 40 queries at every=4, want 10", explorations)
	}
	if len(seen) != 3 {
		t.Fatalf("exploration visited %d members, want all 3", len(seen))
	}
}

// TestPlannerPlan exercises the allocating Plan path end to end over a
// real dataset: works match EstimateWorks, the choice matches the
// model, and predictions are populated for every candidate.
func TestPlannerPlan(t *testing.T) {
	prep, fwd := testPrep(t, 13)
	est := NewEstimator(prep, fwd)
	members := []Member{
		{Name: "SocReach", Kind: WorkDescendants},
		{Name: "3DReach-Rev", Kind: WorkPlane},
		{Name: "SpaReach-INT", Kind: WorkCandidates},
	}
	p := New(est, NewModel(len(members), 0, -1), members)

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		v := rng.Intn(prep.Net.NumVertices())
		r := randomRegion(rng, prep.Net.Space())
		pl := p.Plan(v, r)
		if len(pl.Candidates) != len(members) {
			t.Fatalf("plan has %d candidates, want %d", len(pl.Candidates), len(members))
		}
		var buf [MaxMembers]float64
		works := p.EstimateWorks(v, r, buf[:])
		best, cost := 0, math.Inf(1)
		for j := range members {
			if c := p.Model().Predict(j, works[j]); c < cost {
				best, cost = j, c
			}
			if pl.Candidates[j].Work != works[j] {
				t.Fatalf("candidate %d work %g, want %g", j, pl.Candidates[j].Work, works[j])
			}
			if pl.Candidates[j].PredictedSeconds <= 0 {
				t.Fatalf("candidate %d has non-positive prediction", j)
			}
		}
		if pl.Choice != best || pl.Explored {
			t.Fatalf("plan chose %d (explored=%v), argmin is %d", pl.Choice, pl.Explored, best)
		}
		if pl.PredictedSeconds != pl.Candidates[best].PredictedSeconds {
			t.Fatal("plan prediction does not match chosen candidate")
		}
	}
}

func BenchmarkEstimateWorks(b *testing.B) {
	net := dataset.Generate(dataset.GenConfig{
		Name: "bench", Users: 2000, Venues: 1500,
		AvgFriends: 5, AvgCheckins: 2, Seed: 3,
	})
	prep := dataset.Prepare(net)
	fwd := labeling.Build(prep.DAG, labeling.Options{})
	est := NewEstimator(prep, fwd)
	p := New(est, NewModel(3, 0, -1), []Member{
		{Name: "SocReach", Kind: WorkDescendants},
		{Name: "3DReach-Rev", Kind: WorkPlane},
		{Name: "SpaReach-INT", Kind: WorkCandidates},
	})
	r := geom.NewRect(0.2, 0.2, 0.4, 0.4)
	var buf [MaxMembers]float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		works := p.EstimateWorks(i%net.NumVertices(), r, buf[:])
		p.Choose(works)
	}
}
