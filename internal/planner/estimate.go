// Package planner implements the cost-based adaptive query planner
// behind the Auto method: per-query routing across a set of
// complementary RangeReach engines. The paper's experiments (§6) show
// that no single method dominates — SocReach wins when the query
// vertex's descendant set is small, 3DReach-Rev on small or selective
// regions, and the spatial-first SpaReach variants on regions with few
// candidates — so a server facing mixed workloads should pick the
// winning engine per query instead of pinning one at build time.
//
// The planner is two-staged:
//
//  1. A static cost model. Cheap estimators computed at build time — a
//     spatial histogram over a grid partitioning (for the region
//     selectivity |P ∩ R|) and the per-vertex interval mass Σ(post−l+1)
//     of the labeling (the exact descendant count |D(v)|) — feed a
//     linear per-engine cost model cost = coef · (1 + work), whose
//     per-unit coefficients are calibrated by a microbenchmark at build.
//  2. An online feedback loop. After every routed query the observed
//     wall-clock time updates the chosen engine's coefficient through an
//     exponential moving average (optionally with ε-greedy exploration
//     so rarely-chosen engines keep fresh coefficients), so the model
//     self-corrects on the real workload.
package planner

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/labeling"
)

// histLevels sizes the estimator's grid hierarchy: level 0 holds
// 2^(histLevels-1) = 64 cells per axis, enough resolution for the
// paper's 1–20% region extents while the prefix table stays ~34KB.
const histLevels = 7

// Estimator holds the build-time statistics the cost model consumes:
// a spatial histogram with prefix sums for O(1) region-selectivity
// estimates, and per-component descendant masses from the forward
// interval labeling.
type Estimator struct {
	hier   *grid.Hierarchy
	side   int32
	prefix []float64 // (side+1)×(side+1) summed-area table of cell counts

	totalSpatial float64
	logP         float64 // log2(2 + |P|), the index-descent work unit

	comp   []int32   // original vertex -> component (shared with Prepared)
	mass   []float64 // per component: |D(c)| = Σ(hi−lo+1) over L(c)
	labels []int32   // per component: |L(c)|
}

// NewEstimator derives the estimator from a prepared network and its
// forward interval labeling. The labeling is only read; it is typically
// the same one the SocReach / SpaReach-INT members are built on.
func NewEstimator(prep *dataset.Prepared, fwd *labeling.Labeling) *Estimator {
	h := grid.NewHierarchy(prep.Net.Space(), histLevels)
	side := h.SideCells(0)
	e := &Estimator{
		hier:   h,
		side:   side,
		comp:   prep.Comp,
		mass:   make([]float64, prep.NumComponents()),
		labels: make([]int32, prep.NumComponents()),
	}

	counts := make([]float64, int(side)*int(side))
	for v, s := range prep.Net.Spatial {
		if !s {
			continue
		}
		c := h.CellAt(prep.Net.Points[v], 0)
		counts[int(c.X)*int(side)+int(c.Y)]++
		e.totalSpatial++
	}
	e.logP = math.Log2(2 + e.totalSpatial)

	// Summed-area table: prefix[(x)*(side+1)+y] = Σ counts over cells
	// [0,x) × [0,y), making any cell-rectangle sum four lookups.
	w := int(side) + 1
	e.prefix = make([]float64, w*w)
	for x := 0; x < int(side); x++ {
		var row float64
		for y := 0; y < int(side); y++ {
			row += counts[x*int(side)+y]
			e.prefix[(x+1)*w+y+1] = e.prefix[x*w+y+1] + row
		}
	}

	for c := 0; c < prep.NumComponents(); c++ {
		e.mass[c] = float64(fwd.DescendantCount(c))
		e.labels[c] = int32(len(fwd.Labels[c]))
	}
	return e
}

// cellRectSum sums the histogram over the inclusive cell rectangle
// [x0,x1]×[y0,y1] in O(1) via the summed-area table.
func (e *Estimator) cellRectSum(x0, y0, x1, y1 int32) float64 {
	if x1 < x0 || y1 < y0 {
		return 0
	}
	w := int(e.side) + 1
	return e.prefix[int(x1+1)*w+int(y1+1)] -
		e.prefix[int(x0)*w+int(y1+1)] -
		e.prefix[int(x1+1)*w+int(y0)] +
		e.prefix[int(x0)*w+int(y0)]
}

// RegionBounds returns histogram-derived lower and upper bounds on
// |P ∩ R|: lo sums the cells fully contained in r (every point of such
// a cell witnesses r), hi sums every cell r touches (no point outside
// those cells can lie in r). The exact count always satisfies
// lo ≤ exact ≤ hi; the gap is the boundary ring of the region.
func (e *Estimator) RegionBounds(r geom.Rect) (lo, hi float64) {
	if e.totalSpatial == 0 || !r.Valid() || !r.Intersects(e.hier.Space()) {
		return 0, 0
	}
	cLo := e.hier.CellAt(r.Min, 0)
	cHi := e.hier.CellAt(r.Max, 0)
	hi = e.cellRectSum(cLo.X, cLo.Y, cHi.X, cHi.Y)

	// A boundary row/column is fully covered only when r extends past
	// the cell's near edge (clamping can make that true at the space
	// boundary); otherwise the inner rectangle starts one cell in.
	ix0, iy0, ix1, iy1 := cLo.X, cLo.Y, cHi.X, cHi.Y
	if r.Min.X > e.hier.Rect(grid.Cell{Level: 0, X: cLo.X, Y: cLo.Y}).Min.X {
		ix0++
	}
	if r.Min.Y > e.hier.Rect(grid.Cell{Level: 0, X: cLo.X, Y: cLo.Y}).Min.Y {
		iy0++
	}
	if r.Max.X < e.hier.Rect(grid.Cell{Level: 0, X: cHi.X, Y: cHi.Y}).Max.X {
		ix1--
	}
	if r.Max.Y < e.hier.Rect(grid.Cell{Level: 0, X: cHi.X, Y: cHi.Y}).Max.Y {
		iy1--
	}
	lo = e.cellRectSum(ix0, iy0, ix1, iy1)
	return lo, hi
}

// RegionCount estimates |P ∩ R|, the number of spatial vertices inside
// the region: the midpoint of RegionBounds.
func (e *Estimator) RegionCount(r geom.Rect) float64 {
	lo, hi := e.RegionBounds(r)
	return (lo + hi) / 2
}

// DescendantMass returns |D(v)| for the original vertex v — the exact
// descendant count of its component, precomputed from the labeling's
// interval mass Σ(hi−lo+1).
func (e *Estimator) DescendantMass(v int) float64 { return e.mass[e.comp[v]] }

// LabelCount returns |L(v)| for the original vertex v.
func (e *Estimator) LabelCount(v int) int { return int(e.labels[e.comp[v]]) }

// TotalSpatial returns |P|.
func (e *Estimator) TotalSpatial() float64 { return e.totalSpatial }

// LogP returns log2(2+|P|), the tree-descent work unit of the model.
func (e *Estimator) LogP() float64 { return e.logP }

// MemoryBytes returns the estimator's footprint (prefix table plus the
// per-component arrays; the component map is shared with the network).
func (e *Estimator) MemoryBytes() int64 {
	return int64(8*len(e.prefix) + 8*len(e.mass) + 4*len(e.labels))
}
