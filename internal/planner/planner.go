package planner

import (
	"math"
	"sync/atomic"

	"repro/internal/geom"
)

// WorkKind selects which work estimate a member engine's cost model
// consumes. Each kind maps to the dominant term of the corresponding
// algorithm's query complexity (paper §3–§5).
type WorkKind uint8

const (
	// WorkDescendants — cost grows with |D(v)|: SocReach enumerates the
	// descendant set, GeoReach's pruning degenerates towards it.
	WorkDescendants WorkKind = iota
	// WorkCandidates — cost grows with |P ∩ R|: the spatial-first
	// SpaReach variants probe reachability once per candidate.
	WorkCandidates
	// WorkCuboids — cost grows with |L(v)|·log|P|: 3DReach runs one
	// 3D range query per label interval.
	WorkCuboids
	// WorkPlane — one plane query over the reversed-label segments:
	// the log|P| tree descent. The query early-exits on the first
	// segment cut, so larger regions tend to get *cheaper*, not more
	// expensive — the residual region dependence has no stable sign and
	// is left to the coefficient feedback rather than modeled with a
	// term whose trend would mislead the argmin at regime crossovers.
	WorkPlane
)

// Member describes one engine under the planner: its display name and
// which work estimate drives its cost.
type Member struct {
	Name string
	Kind WorkKind
}

// MaxMembers bounds the composite fan-out; work buffers are
// stack-allocated at this size on the hot path.
const MaxMembers = 8

// DefaultAlpha is the EMA smoothing factor of the feedback loop.
const DefaultAlpha = 0.2

// DefaultExploreEvery routes every Nth query round-robin instead of by
// cost, so rarely-chosen members keep fresh coefficients.
const DefaultExploreEvery = 64

// DefaultReviewEvery is the pinned-mode cadence: once the model pins a
// member, callers may skip estimation entirely, but every Nth query
// should still take the full estimate/observe path so the pin stays
// honest under workload drift.
const DefaultReviewEvery = 16

// DefaultObserveEvery samples feedback on the unpinned full path: only
// every Nth routed query is timed and folded into the EMA. Routing
// quality needs the per-query argmin, but the feedback loop does not
// need every sample — and the two clock reads plus the CAS are the
// dominant cost of the full path, so sampling them keeps mixed regimes
// (where per-query winners genuinely alternate and no pin can form)
// close to the best fixed member.
const DefaultObserveEvery = 4

// DefaultPinnedExploreEvery is the pinned-mode exploration cadence:
// every Nth query routes round-robin to a member other than the pinned
// one so their coefficients keep tracking the live workload. Without
// it, a pinned planner only observes the others once per
// exploreEvery·reviewEvery queries — far too slowly to notice a regime
// change that made one of them the new winner. At 1/32 the probes cost
// well under a percent of throughput (they displace a pinned-member
// call, and only the slowest member at its worst regime is ~20× the
// pinned latency) while halving the time a stale coefficient survives.
const DefaultPinnedExploreEvery = 32

// pinAfter is the number of consecutive identical argmin winners after
// which the model pins. Low enough to reach the fast path quickly on a
// stable workload, high enough that a few noisy wins don't lock in a
// misroute.
const pinAfter = 4

// unpinMargin is the pin hysteresis: a challenger only breaks an
// existing pin when its predicted cost is at least this much cheaper
// (0.85 = 15% cheaper). Near-ties keep the pin — routing to either
// side of a tie costs almost nothing, while flapping between them
// costs the fast path; a flap itself is cheap (a few re-estimated
// queries until the streak re-pins), so the margin stays tight.
const unpinMargin = 0.85

// initialCoef seeds each member at 100ns per work unit — the right
// order of magnitude for in-memory index probes, and immediately
// overwritten by calibration or feedback.
const initialCoef = 1e-7

// Model is the per-engine linear cost model with online feedback:
// predicted seconds = coef · (1 + work). Coefficients live as float64
// bits in atomics so concurrent queries can read and update them
// without locks (same CAS pattern as metrics.Histogram.sum).
type Model struct {
	coefs        []atomic.Uint64
	alpha        float64
	exploreEvery uint64
	tick         atomic.Uint64

	// pinned is the fast-path lock-on: member index + 1, 0 when unpinned.
	// streak packs the last argmin winner (high 32 bits) and how many
	// consecutive times it won (low 32). Both tolerate racy lost updates
	// — pinning is an optimization, never a correctness property.
	pinned atomic.Int32
	streak atomic.Uint64
}

// NewModel returns a model for n members. alpha ≤ 0 selects
// DefaultAlpha; exploreEvery < 0 disables exploration, 0 selects
// DefaultExploreEvery.
func NewModel(n int, alpha float64, exploreEvery int) *Model {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultAlpha
	}
	var every uint64
	switch {
	case exploreEvery < 0:
		every = 0
	case exploreEvery == 0:
		every = DefaultExploreEvery
	default:
		every = uint64(exploreEvery)
	}
	m := &Model{
		coefs:        make([]atomic.Uint64, n),
		alpha:        alpha,
		exploreEvery: every,
	}
	for i := range m.coefs {
		m.coefs[i].Store(math.Float64bits(initialCoef))
	}
	return m
}

// Coef returns member i's current seconds-per-unit coefficient.
func (m *Model) Coef(i int) float64 { return math.Float64frombits(m.coefs[i].Load()) }

// SetCoef overwrites member i's coefficient (calibration, persistence).
func (m *Model) SetCoef(i int, c float64) {
	if c > 0 && !math.IsInf(c, 0) && !math.IsNaN(c) {
		m.coefs[i].Store(math.Float64bits(c))
	}
}

// Predict returns the modeled seconds for member i at the given work.
func (m *Model) Predict(i int, work float64) float64 { return m.Coef(i) * (1 + work) }

// Choose picks the member with the lowest predicted cost for the given
// works, except on exploration ticks where it cycles round-robin. The
// second result reports whether this was an exploration pick.
func (m *Model) Choose(works []float64) (int, bool) {
	t := m.tick.Add(1)
	if m.exploreEvery > 0 && t%m.exploreEvery == 0 {
		return int((t / m.exploreEvery) % uint64(len(works))), true
	}
	best, bestCost := 0, math.Inf(1)
	for i, w := range works {
		if c := m.Predict(i, w); c < bestCost {
			best, bestCost = i, c
		}
	}
	m.notePick(best, works)
	return best, false
}

// notePick tracks the argmin streak behind Pinned: pinAfter consecutive
// identical winners pin the model; a challenger unpins it only when it
// beats the pinned member's prediction by unpinMargin (hysteresis).
// Near-tie losses credit the streak holder instead of resetting it —
// when two members alternate within the margin, the planner should pin
// one of them (either is fine, a tie costs almost nothing) rather than
// pay the full estimation path forever. Exploration picks never reach
// here, so forced round-robin choices cannot break a legitimate pin.
func (m *Model) notePick(w int, works []float64) {
	s := m.streak.Load()
	if holder := int(s >> 32); m.pinned.Load() == 0 &&
		s != 0 && holder != w && holder < len(works) &&
		m.Predict(w, works[w]) >= unpinMargin*m.Predict(holder, works[holder]) {
		// Near-tie while unpinned: the streak survives the coin flip so
		// tie regimes still converge to a pin. While pinned, streaks
		// accumulate honestly — a persistently (even marginally) better
		// challenger takes the pin over via pinAfter without ever
		// passing through an unpinned stretch.
		w = holder
	}
	if int(s>>32) == w {
		c := (s & 0xffffffff) + 1
		m.streak.Store(uint64(w)<<32 | c)
		if c >= pinAfter {
			m.pinned.Store(int32(w) + 1)
		}
		return
	}
	m.streak.Store(uint64(w)<<32 | 1)
	if p := m.pinned.Load(); p > 0 {
		i := int(p) - 1
		if i == w {
			return // the argmin re-confirmed the pinned member
		}
		if i < len(works) &&
			m.Predict(w, works[w]) >= unpinMargin*m.Predict(i, works[i]) {
			return // near-tie: keep the pin, avoid flapping
		}
	}
	m.pinned.Store(0)
}

// Pinned returns the member the model has locked onto, if any. Callers
// on the hot path may route straight to it without estimating, as long
// as they keep feeding full evaluations at some cadence
// (DefaultReviewEvery) so the pin can be revised.
func (m *Model) Pinned() (int, bool) {
	p := m.pinned.Load()
	return int(p) - 1, p > 0
}

// Observe folds one measured query into member i's coefficient with a
// geometric EMA: coef ← coef·(target/coef)^α, target = seconds/(1+work).
// The EMA runs in log space because per-query latencies are heavy-
// tailed: an arithmetic EMA tracks the mean of the samples, so a single
// slow outlier inflates the coefficient by its full magnitude and takes
// many clean samples to decay, while the geometric form tracks the
// median-like center and shifts only by the outlier's ratio, damped.
// A CAS loop keeps concurrent updates lock-free; a failed CAS retries
// against the fresh value.
func (m *Model) Observe(i int, work, seconds float64) {
	if seconds <= 0 || math.IsNaN(seconds) {
		return
	}
	target := seconds / (1 + work)
	for {
		old := m.coefs[i].Load()
		cur := math.Float64frombits(old)
		next := cur * math.Pow(target/cur, m.alpha)
		if m.coefs[i].CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Planner glues the estimators to the cost model for a fixed member
// set. It is safe for concurrent use.
type Planner struct {
	est     *Estimator
	model   *Model
	members []Member
}

// New assembles a planner. members must be 1..MaxMembers entries.
func New(est *Estimator, model *Model, members []Member) *Planner {
	return &Planner{est: est, model: model, members: members}
}

// Members returns the planner's member descriptors.
func (p *Planner) Members() []Member { return p.members }

// Model returns the underlying cost model (for persistence and tests).
func (p *Planner) Model() *Model { return p.model }

// Estimator returns the underlying estimator.
func (p *Planner) Estimator() *Estimator { return p.est }

// EstimateWorks fills out[i] with member i's work estimate for query
// (v, r) and returns out[:len(members)]. Region-dependent estimates are
// computed once and shared. Callers on the hot path pass a stack
// buffer of MaxMembers.
func (p *Planner) EstimateWorks(v int, r geom.Rect, out []float64) []float64 {
	out = out[:len(p.members)]
	regionCount := -1.0 // lazy: only SpaReach/Plane members pay for it
	region := func() float64 {
		if regionCount < 0 {
			regionCount = p.est.RegionCount(r)
		}
		return regionCount
	}
	for i, mem := range p.members {
		switch mem.Kind {
		case WorkDescendants:
			// Descendant scans early-exit on the first in-region hit:
			// with uniform venues the scan length is geometric with
			// success probability |P∩R|/|P|, so the expected work is the
			// smaller of the full descendant set and the expected tries
			// to a hit. Without the cap, large regions make SocReach
			// look expensive exactly when it is at its fastest.
			w := p.est.DescendantMass(v)
			if rc := region(); rc > 0 {
				if tries := p.est.TotalSpatial() / rc; tries < w {
					w = tries
				}
			}
			out[i] = w
		case WorkCandidates:
			out[i] = region()
		case WorkCuboids:
			out[i] = float64(p.est.LabelCount(v)) * p.est.LogP()
		case WorkPlane:
			out[i] = p.est.LogP()
		}
	}
	return out
}

// Choose runs the cost model over precomputed works.
func (p *Planner) Choose(works []float64) (int, bool) { return p.model.Choose(works) }

// Pinned reports the model's fast-path lock-on, if any.
func (p *Planner) Pinned() (int, bool) { return p.model.Pinned() }

// Observe feeds one measured query back into the model.
func (p *Planner) Observe(i int, work, seconds float64) { p.model.Observe(i, work, seconds) }

// Candidate is one member's slice of a Plan.
type Candidate struct {
	Name             string
	Work             float64
	PredictedSeconds float64
}

// Plan is the allocating, introspection-friendly form of a routing
// decision, used by Explain and tests; the hot path in core.Auto calls
// EstimateWorks/Choose directly instead.
type Plan struct {
	Choice           int
	Explored         bool
	PredictedSeconds float64
	Candidates       []Candidate
}

// Plan evaluates the full decision for (v, r).
func (p *Planner) Plan(v int, r geom.Rect) Plan {
	var buf [MaxMembers]float64
	works := p.EstimateWorks(v, r, buf[:])
	choice, explored := p.Choose(works)
	pl := Plan{
		Choice:     choice,
		Explored:   explored,
		Candidates: make([]Candidate, len(p.members)),
	}
	for i, mem := range p.members {
		pl.Candidates[i] = Candidate{
			Name:             mem.Name,
			Work:             works[i],
			PredictedSeconds: p.model.Predict(i, works[i]),
		}
	}
	pl.PredictedSeconds = pl.Candidates[choice].PredictedSeconds
	return pl
}
